// RTI -- Radio Tomographic Imaging (Wilson & Patwari, IEEE TMC 2010),
// the model-based comparator in the paper's Fig. 5.
//
// RTI inverts the per-link RSS *change* y = ambient - current into an
// attenuation image x over the grid:
//
//   y = W x + n,   W(i, j) = 1 / sqrt(d_i)   if grid j lies inside
//                             link i's excess-path ellipse (width lambda),
//                             0 otherwise
//
// regularized least squares (Tikhonov with a spatial smoothness prior):
//
//   x^ = (W^T W + alpha (Dx^T Dx + Dy^T Dy) + eps I)^{-1} W^T y
//
// The target estimate is the attenuation-weighted centroid of the
// top-valued pixels.  RTI needs no fingerprint survey at all -- but its
// accuracy is bounded by the imaging resolution and by multipath model
// error, which is why the paper finds it coarser than fingerprinting.
//
// Two solver backends:
//  - Direct: dense Cholesky of the N x N normal matrix, factored once
//    (fast per-observation; fine up to a few hundred grid cells);
//  - Iterative: the weight model stays sparse (each ellipse covers a
//    thin band) and each image is solved by conjugate gradients with
//    on-the-fly Laplacian application -- scales to Fig. 4-size areas
//    (thousands of cells) where the dense factorization would not.
#pragma once

#include <cstddef>
#include <vector>

#include "tafloc/linalg/matrix.h"
#include "tafloc/linalg/sparse.h"
#include "tafloc/loc/localizer.h"
#include "tafloc/sim/deployment.h"

namespace tafloc {

enum class RtiSolver { Direct, Iterative };

struct RtiConfig {
  double ellipse_width_m = 0.4;   ///< lambda: excess-path width of the weight ellipse.
  double regularization = 3.0;    ///< alpha: smoothness prior weight.
  double ridge = 1e-3;            ///< eps: keeps the normal matrix SPD.
  double top_fraction = 0.08;     ///< fraction of brightest pixels in the centroid.
  RtiSolver solver = RtiSolver::Direct;
  double cg_tolerance = 1e-8;     ///< Iterative backend stopping criterion.
  std::size_t cg_max_iterations = 500;
};

class RtiLocalizer : public Localizer {
 public:
  /// `ambient` is the current target-free RSS per link (same order as
  /// deployment links).  The weight model (and, for the Direct backend,
  /// the factored regularized inverse) is precomputed here.
  RtiLocalizer(const Deployment& deployment, Vector ambient, const RtiConfig& config = {});

  Point2 localize(std::span<const double> rss) const override;
  std::string name() const override { return "RTI"; }

  /// Reconstructed attenuation image for an observation (tests / demos).
  Vector image(std::span<const double> rss) const;

  /// Multi-target extension: threshold the image at
  /// `blob_threshold_fraction` of its peak, split the bright pixels
  /// into 4-connected components, and return the weighted centroid of
  /// the up-to-`max_targets` heaviest components (heaviest first).
  /// With max_targets == 1 this reduces to (roughly) localize().
  std::vector<Point2> localize_multi(std::span<const double> rss, std::size_t max_targets,
                                     double blob_threshold_fraction = 0.5) const;

  /// Dense weight model (Direct backend only; throws std::logic_error
  /// for the Iterative backend, which never densifies).
  const Matrix& weight_model() const;

  /// Sparse weight model (available for both backends).
  const SparseMatrix& sparse_weight_model() const noexcept { return w_sparse_; }

 private:
  Vector solve_direct(const Vector& wty) const;
  Vector solve_iterative(const Vector& wty) const;

  GridMap grid_;
  Vector ambient_;
  RtiConfig config_;
  SparseMatrix w_sparse_;  ///< M x N ellipse weight model (always built).
  Matrix w_dense_;         ///< Direct backend only.
  Matrix chol_;            ///< Direct backend: Cholesky factor of the normal matrix.
};

}  // namespace tafloc
