// RASS -- "A Real-Time, Accurate and Scalable System for Tracking
// Transceiver-free Objects" (Zhang et al., IEEE TPDS 2013), the
// fingerprint-using comparator in the paper's Fig. 5.
//
// RASS localizes from *signal dynamics* (the per-link difference between
// ambient and current RSS):
//   1. influential-link selection: links whose dynamic exceeds a
//      threshold are considered affected by the target;
//   2. coarse estimate: dynamic-weighted centroid of the influential
//      links' midpoints;
//   3. refinement: fingerprint matching restricted to grids near the
//      coarse estimate (the grid-classification step of the original
//      system, realized here as local weighted-KNN over the
//      fingerprint database).
//
// The refinement step is what ages: with a stale database RASS degrades
// ("RASS w/o rec."); feeding it TafLoc's reconstructed database
// ("RASS w/ rec.") restores it -- the paper's point that the
// reconstruction scheme transfers to other systems.
#pragma once

#include <cstddef>

#include "tafloc/fingerprint/database.h"
#include "tafloc/loc/localizer.h"
#include "tafloc/sim/deployment.h"

namespace tafloc {

struct RassConfig {
  double dynamic_threshold_db = 1.5; ///< minimum dynamic to call a link influential.
  double refine_radius_m = 1.5;      ///< fingerprint search radius around the coarse estimate.
  std::size_t knn_k = 3;             ///< neighbours in the refinement.
  double coarse_weight = 0.2;        ///< blend of coarse vs refined estimate.
};

class RassLocalizer : public Localizer {
 public:
  /// `database` may be stale (w/o reconstruction) or reconstructed
  /// (w/ reconstruction); `current_ambient` is the fresh target-free RSS
  /// (RASS tracks dynamics in real time, so this is always current).
  RassLocalizer(const Deployment& deployment, const FingerprintDatabase& database,
                Vector current_ambient, const RassConfig& config = {},
                std::string variant_name = "RASS");

  Point2 localize(std::span<const double> rss) const override;
  std::string name() const override { return name_; }

  /// The coarse (step-2) estimate alone (tests / diagnostics).
  Point2 coarse_estimate(std::span<const double> rss) const;

 private:
  const Deployment& deployment_;
  Matrix fingerprints_;
  Vector current_ambient_;
  RassConfig config_;
  std::string name_;
};

}  // namespace tafloc
