#include "tafloc/baselines/rti.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "tafloc/linalg/cg.h"
#include "tafloc/linalg/cholesky.h"
#include "tafloc/util/check.h"

namespace tafloc {

RtiLocalizer::RtiLocalizer(const Deployment& deployment, Vector ambient, const RtiConfig& config)
    : grid_(deployment.grid()), ambient_(std::move(ambient)), config_(config) {
  TAFLOC_CHECK_ARG(ambient_.size() == deployment.num_links(),
                   "ambient vector must have one entry per link");
  TAFLOC_CHECK_ARG(config.ellipse_width_m > 0.0, "ellipse width must be positive");
  TAFLOC_CHECK_ARG(config.regularization >= 0.0, "regularization must be non-negative");
  TAFLOC_CHECK_ARG(config.ridge > 0.0, "ridge must be positive");
  TAFLOC_CHECK_ARG(config.top_fraction > 0.0 && config.top_fraction <= 1.0,
                   "top fraction must be in (0, 1]");
  TAFLOC_CHECK_ARG(config.cg_tolerance > 0.0, "CG tolerance must be positive");
  TAFLOC_CHECK_ARG(config.cg_max_iterations > 0, "CG iteration cap must be positive");

  const std::size_t m = deployment.num_links();
  const std::size_t n = grid_.num_cells();

  // Ellipse weight model, assembled sparse (each link covers a band).
  std::vector<Triplet> triplets;
  for (std::size_t i = 0; i < m; ++i) {
    const Segment& link = deployment.links()[i];
    const double inv_sqrt_d = 1.0 / std::sqrt(std::max(link.length(), 1e-6));
    for (std::size_t j = 0; j < n; ++j) {
      if (within_link_ellipse(grid_.center(j), link, config.ellipse_width_m))
        triplets.push_back({i, j, inv_sqrt_d});
    }
  }
  w_sparse_ = SparseMatrix(m, n, std::move(triplets));

  if (config.solver == RtiSolver::Direct) {
    w_dense_ = w_sparse_.to_dense();
    // Regularized normal matrix Q = W^T W + alpha * Laplacian + eps I,
    // where the Laplacian sums (e_a - e_b)(e_a - e_b)^T over 4-neighbour
    // grid pairs (the Dx^T Dx + Dy^T Dy 'difference image' prior).
    Matrix q(n, n);
    gram_product_into(w_dense_.view(), w_dense_.view(), q.view());
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t nb : grid_.neighbors4(j)) {
        if (nb < j) continue;  // count each pair once
        q(j, j) += config.regularization;
        q(nb, nb) += config.regularization;
        q(j, nb) -= config.regularization;
        q(nb, j) -= config.regularization;
      }
      q(j, j) += config.ridge;
    }
    chol_ = cholesky_factor(q);
  }
}

const Matrix& RtiLocalizer::weight_model() const {
  TAFLOC_CHECK_STATE(config_.solver == RtiSolver::Direct,
                     "the dense weight model exists only for the Direct backend");
  return w_dense_;
}

Vector RtiLocalizer::solve_direct(const Vector& wty) const {
  return cholesky_solve(chol_, wty);
}

Vector RtiLocalizer::solve_iterative(const Vector& wty) const {
  const std::size_t n = grid_.num_cells();
  const auto apply = [&](const Vector& x) -> Vector {
    // Q x = W^T (W x) + alpha * Laplacian(x) + eps x, all matrix-free.
    const Vector wx = w_sparse_.multiply(x);
    Vector y = w_sparse_.multiply_transposed(wx);
    for (std::size_t j = 0; j < n; ++j) {
      double lap = 0.0;
      const auto neighbors = grid_.neighbors4(j);
      for (std::size_t nb : neighbors) lap += x[j] - x[nb];
      y[j] += config_.regularization * lap + config_.ridge * x[j];
    }
    return y;
  };
  CgOptions opts;
  opts.relative_tolerance = config_.cg_tolerance;
  opts.max_iterations = config_.cg_max_iterations;
  const Vector x0(n, 0.0);
  return conjugate_gradient(apply, wty, x0, opts).x;
}

Vector RtiLocalizer::image(std::span<const double> rss) const {
  TAFLOC_CHECK_ARG(rss.size() == ambient_.size(), "observation length mismatch");
  // y = RSS change attributable to the target (positive = attenuation).
  Vector y(rss.size());
  for (std::size_t i = 0; i < rss.size(); ++i) y[i] = ambient_[i] - rss[i];
  const Vector wty = w_sparse_.multiply_transposed(y);
  return config_.solver == RtiSolver::Direct ? solve_direct(wty) : solve_iterative(wty);
}

std::vector<Point2> RtiLocalizer::localize_multi(std::span<const double> rss,
                                                 std::size_t max_targets,
                                                 double blob_threshold_fraction) const {
  TAFLOC_CHECK_ARG(max_targets >= 1, "must ask for at least one target");
  TAFLOC_CHECK_ARG(blob_threshold_fraction > 0.0 && blob_threshold_fraction < 1.0,
                   "blob threshold fraction must be in (0, 1)");
  const Vector img = image(rss);
  const std::size_t n = img.size();

  double peak = 0.0;
  for (double v : img) peak = std::max(peak, v);
  if (peak <= 0.0) return {};  // empty image: nobody visible
  const double cut = blob_threshold_fraction * peak;

  // 4-connected components over the bright pixels (flood fill).
  std::vector<int> component(n, -1);
  struct Blob {
    double weight = 0.0;
    double wx = 0.0, wy = 0.0;
  };
  std::vector<Blob> blobs;
  std::vector<std::size_t> stack;
  for (std::size_t start = 0; start < n; ++start) {
    if (component[start] != -1 || img[start] < cut) continue;
    const int id = static_cast<int>(blobs.size());
    blobs.emplace_back();
    stack.push_back(start);
    component[start] = id;
    while (!stack.empty()) {
      const std::size_t j = stack.back();
      stack.pop_back();
      Blob& blob = blobs[static_cast<std::size_t>(id)];
      const Point2 c = grid_.center(j);
      blob.weight += img[j];
      blob.wx += img[j] * c.x;
      blob.wy += img[j] * c.y;
      for (std::size_t nb : grid_.neighbors4(j)) {
        if (component[nb] == -1 && img[nb] >= cut) {
          component[nb] = id;
          stack.push_back(nb);
        }
      }
    }
  }

  std::sort(blobs.begin(), blobs.end(),
            [](const Blob& a, const Blob& b) { return a.weight > b.weight; });
  std::vector<Point2> out;
  for (const Blob& b : blobs) {
    if (out.size() == max_targets) break;
    out.push_back({b.wx / b.weight, b.wy / b.weight});
  }
  return out;
}

Point2 RtiLocalizer::localize(std::span<const double> rss) const {
  const Vector img = image(rss);
  const std::size_t n = img.size();
  const auto top =
      std::max<std::size_t>(1, static_cast<std::size_t>(config_.top_fraction *
                                                        static_cast<double>(n)));
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::partial_sort(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(top), order.end(),
                    [&](std::size_t a, std::size_t b) { return img[a] > img[b]; });

  double wx = 0.0, wy = 0.0, wsum = 0.0;
  for (std::size_t k = 0; k < top; ++k) {
    const std::size_t j = order[k];
    const double weight = std::max(img[j], 0.0);
    const Point2 c = grid_.center(j);
    wx += weight * c.x;
    wy += weight * c.y;
    wsum += weight;
  }
  if (wsum <= 0.0) return grid_.center(order[0]);  // flat image: fall back to the brightest pixel
  return {wx / wsum, wy / wsum};
}

}  // namespace tafloc
