#include "tafloc/baselines/rass.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "tafloc/util/check.h"

namespace tafloc {

RassLocalizer::RassLocalizer(const Deployment& deployment, const FingerprintDatabase& database,
                             Vector current_ambient, const RassConfig& config,
                             std::string variant_name)
    : deployment_(deployment),
      fingerprints_(database.fingerprints()),
      current_ambient_(std::move(current_ambient)),
      config_(config),
      name_(std::move(variant_name)) {
  TAFLOC_CHECK_ARG(fingerprints_.rows() == deployment.num_links(),
                   "database link count must match the deployment");
  TAFLOC_CHECK_ARG(fingerprints_.cols() == deployment.num_grids(),
                   "database grid count must match the deployment");
  TAFLOC_CHECK_ARG(current_ambient_.size() == deployment.num_links(),
                   "ambient vector must have one entry per link");
  TAFLOC_CHECK_ARG(config.dynamic_threshold_db > 0.0, "dynamic threshold must be positive");
  TAFLOC_CHECK_ARG(config.refine_radius_m > 0.0, "refine radius must be positive");
  TAFLOC_CHECK_ARG(config.knn_k >= 1, "knn k must be at least 1");
  TAFLOC_CHECK_ARG(config.coarse_weight >= 0.0 && config.coarse_weight <= 1.0,
                   "coarse weight must be in [0, 1]");
}

Point2 RassLocalizer::coarse_estimate(std::span<const double> rss) const {
  TAFLOC_CHECK_ARG(rss.size() == current_ambient_.size(), "observation length mismatch");
  double wx = 0.0, wy = 0.0, wsum = 0.0;
  double best_dynamic = -1.0;
  std::size_t best_link = 0;
  for (std::size_t i = 0; i < rss.size(); ++i) {
    const double dynamic = current_ambient_[i] - rss[i];  // positive = attenuated
    if (dynamic > best_dynamic) {
      best_dynamic = dynamic;
      best_link = i;
    }
    if (dynamic < config_.dynamic_threshold_db) continue;
    const Point2 mid = midpoint(deployment_.links()[i].a, deployment_.links()[i].b);
    wx += dynamic * mid.x;
    wy += dynamic * mid.y;
    wsum += dynamic;
  }
  if (wsum <= 0.0) {
    // No link crossed the threshold: fall back to the most-affected link.
    return midpoint(deployment_.links()[best_link].a, deployment_.links()[best_link].b);
  }
  return {wx / wsum, wy / wsum};
}

Point2 RassLocalizer::localize(std::span<const double> rss) const {
  const Point2 coarse = coarse_estimate(rss);

  // Refinement: weighted KNN over fingerprint columns whose grid centre
  // lies within refine_radius of the coarse estimate.
  const GridMap& grid = deployment_.grid();
  std::vector<std::size_t> candidates;
  for (std::size_t j = 0; j < grid.num_cells(); ++j) {
    if (distance(grid.center(j), coarse) <= config_.refine_radius_m) candidates.push_back(j);
  }
  if (candidates.empty()) return coarse;

  std::vector<double> dist(candidates.size());
  for (std::size_t c = 0; c < candidates.size(); ++c) {
    const ConstVectorView col = fingerprints_.col_view(candidates[c]);
    double s = 0.0;
    for (std::size_t i = 0; i < col.size(); ++i) {
      const double d = rss[i] - col[i];
      s += d * d;
    }
    dist[c] = std::sqrt(s);
  }
  const std::size_t k = std::min(config_.knn_k, candidates.size());
  std::vector<std::size_t> order(candidates.size());
  std::iota(order.begin(), order.end(), 0);
  std::partial_sort(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(k), order.end(),
                    [&](std::size_t a, std::size_t b) { return dist[a] < dist[b]; });

  double wx = 0.0, wy = 0.0, wsum = 0.0;
  for (std::size_t t = 0; t < k; ++t) {
    const std::size_t j = candidates[order[t]];
    const double w = 1.0 / (dist[order[t]] + 1e-6);
    const Point2 c = grid.center(j);
    wx += w * c.x;
    wy += w * c.y;
    wsum += w;
  }
  const Point2 refined{wx / wsum, wy / wsum};
  const double cw = config_.coarse_weight;
  return {cw * coarse.x + (1.0 - cw) * refined.x, cw * coarse.y + (1.0 - cw) * refined.y};
}

}  // namespace tafloc
