// Workspace -- an arena of reusable Matrix / Vector buffers.
//
// Iterative solvers (LoLi-IR's CG matvecs, SVT's residual updates, the
// LRR ISTA loop) need the same handful of temporaries on every
// iteration.  Allocating them fresh each time puts the allocator on the
// hot path and fragments the heap; a Workspace instead *leases* buffers
// out of a pool, shrinking each allocation profile to its first
// iteration.  Every lease is RAII: when the handle dies the buffer goes
// back to the pool (contents intact) and the next lease of a fitting
// size reuses it with zero heap traffic.
//
// The allocation counter is the verification hook: `allocations()`
// counts every time the pool had to create or grow a buffer, so a
// steady-state loop can assert that its per-iteration delta is zero
// (see LoliIrResult::workspace_allocations_steady).
//
// A Workspace is single-threaded by design: it belongs to the
// orchestrating thread of a solver; parallel kernels receive plain
// spans/matrices, never the workspace itself.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "tafloc/linalg/matrix.h"

namespace tafloc {

class Counter;
class Gauge;
class MetricRegistry;

class Workspace {
 public:
  /// With a non-null, enabled `telemetry`, the arena mirrors its
  /// activity into exec.workspace.* metrics (allocations and lease
  /// counters, pooled-bytes high-water gauge).  The registry handles
  /// are resolved once here, so instrumented leases cost one pointer
  /// test plus a relaxed add.
  explicit Workspace(MetricRegistry* telemetry = nullptr);
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// RAII handle to a leased buffer; releases it back to the pool on
  /// destruction.  Movable, not copyable.
  template <class T>
  class Lease {
   public:
    Lease(Lease&& other) noexcept
        : workspace_(other.workspace_), slot_(other.slot_), value_(other.value_) {
      other.workspace_ = nullptr;
      other.value_ = nullptr;
    }
    Lease& operator=(Lease&&) = delete;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() {
      if (workspace_ != nullptr) workspace_->release(*this);
    }

    T& operator*() const noexcept { return *value_; }
    T* operator->() const noexcept { return value_; }
    T& get() const noexcept { return *value_; }

   private:
    friend class Workspace;
    Lease(Workspace* workspace, std::size_t slot, T* value) noexcept
        : workspace_(workspace), slot_(slot), value_(value) {}

    Workspace* workspace_;
    std::size_t slot_;
    T* value_;
  };

  using MatrixLease = Lease<Matrix>;
  using VectorLease = Lease<Vector>;

  /// Lease a rows x cols matrix, zero-filled (like a fresh
  /// Matrix(rows, cols)).  Reuses the best-fitting free buffer; only
  /// allocates when none has the capacity.
  MatrixLease matrix(std::size_t rows, std::size_t cols);

  /// Lease a length-n vector, zero-filled.
  VectorLease vector(std::size_t n);

  /// Number of times a lease had to allocate or grow heap storage.
  std::size_t allocations() const noexcept { return allocations_; }

  /// Number of currently outstanding leases.
  std::size_t outstanding() const noexcept { return outstanding_; }

  /// Buffers held in the pool (in use + free).
  std::size_t pooled_buffers() const noexcept {
    return matrix_slots_.size() + vector_slots_.size();
  }

  /// Heap bytes currently backing the pool's buffers (capacity, not
  /// live size) -- the value the bytes high-water gauge tracks.
  std::size_t pooled_bytes() const noexcept { return pooled_bytes_; }

 private:
  template <class T>
  struct Slot {
    T value;
    bool in_use = false;
  };

  void release(const MatrixLease& lease);
  void release(const VectorLease& lease);

  /// Account a capacity change of a pool buffer and refresh the gauge.
  void track_capacity(std::size_t before_elems, std::size_t after_elems);

  // unique_ptr slots keep leased addresses stable while the pool grows.
  std::vector<std::unique_ptr<Slot<Matrix>>> matrix_slots_;
  std::vector<std::unique_ptr<Slot<Vector>>> vector_slots_;
  std::size_t allocations_ = 0;
  std::size_t outstanding_ = 0;
  std::size_t pooled_bytes_ = 0;

  // Telemetry mirrors (null when detached or disabled).
  Counter* allocations_counter_ = nullptr;
  Counter* leases_counter_ = nullptr;
  Gauge* bytes_gauge_ = nullptr;
};

}  // namespace tafloc
