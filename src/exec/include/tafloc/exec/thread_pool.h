// Fixed-size thread pool with deterministic fork-join loops.
//
// Design goals, in order:
//  1. Determinism -- parallel_for hands out index *ranges*, so a kernel
//     that keeps each output element's accumulation order internal to
//     one range produces bit-identical results at any thread count;
//     parallel_reduce fixes its chunk boundaries from the grain alone
//     (never from the thread count) and combines partials in chunk
//     order, so its rounding is also thread-count independent.
//  2. Simplicity -- no work stealing, no lock-free queues: one mutex,
//     two condition variables, a chunk counter.  TSan-clean by
//     construction.
//  3. Graceful nesting -- a parallel_for issued from inside a pool task
//     runs inline on the calling thread (same results, no deadlock), so
//     batch drivers can parallelize over items whose kernels are
//     themselves parallel.
//
// A pool of size 1 never spawns threads and runs every loop inline --
// this is the "threads = 1 means bit-identical legacy behaviour" mode.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tafloc {

class MetricRegistry;

class ThreadPool {
 public:
  /// A pool of `threads` >= 1 concurrency: `threads - 1` workers are
  /// spawned and the submitting thread participates in every loop.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Concurrency level (worker threads + the submitting thread).
  std::size_t size() const noexcept { return threads_; }

  /// Run body(chunk_begin, chunk_end) over a partition of [begin, end)
  /// into contiguous ranges of at least `grain` indices.  Blocks until
  /// every range is done; rethrows the first exception a range threw.
  /// Ranges are disjoint, so bodies may write to per-index outputs
  /// without synchronization.
  void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t)>& body);

  /// Map [begin, end) in fixed chunks of `grain` indices (the last one
  /// shorter) and fold the per-chunk values left-to-right in chunk
  /// order: combine(...combine(init, map(c0)), map(c1)...).  Chunk
  /// boundaries depend only on `grain`, so the rounding of the fold is
  /// identical at every thread count.
  template <class T, class Map, class Combine>
  T parallel_reduce(std::size_t begin, std::size_t end, std::size_t grain, T init,
                    const Map& map, const Combine& combine) {
    if (end <= begin) return init;
    if (grain == 0) grain = 1;
    const std::size_t n = end - begin;
    const std::size_t chunks = (n + grain - 1) / grain;
    std::vector<T> partial(chunks);
    run_chunks(chunks, [&](std::size_t c) {
      const std::size_t lo = begin + c * grain;
      const std::size_t hi = lo + std::min(grain, end - lo);
      partial[c] = map(lo, hi);
    });
    T acc = std::move(init);
    for (std::size_t c = 0; c < chunks; ++c) acc = combine(std::move(acc), std::move(partial[c]));
    return acc;
  }

  /// True when the calling thread is currently executing a pool task
  /// (loops issued now would run inline).
  static bool in_pool_task() noexcept;

  /// The process-global pool used by the linalg / recon / loc kernels.
  /// Created on first use with the automatic thread count (TAFLOC_THREADS
  /// environment variable, else hardware_concurrency); resized by
  /// set_global_threads() in exec_config.h.
  static ThreadPool& global();

  /// Run task(0) ... task(count - 1), distributed over the pool, in
  /// unspecified order; blocks until all are done.  Building block for
  /// parallel_for / parallel_reduce, exposed for irregular workloads.
  void run_chunks(std::size_t count, const std::function<void(std::size_t)>& task);

  /// Point-in-time execution statistics.  Kept as relaxed atomics the
  /// pool updates once per batch (two adds + one high-water CAS), so
  /// the counts are exact and the hot loops pay nothing per chunk.
  struct Stats {
    std::uint64_t batches = 0;           ///< run_chunks() calls (inline ones included).
    std::uint64_t chunks_run = 0;        ///< total chunks dispatched over all batches.
    std::uint64_t max_batch_chunks = 0;  ///< deepest chunk queue a batch ever posted.
  };
  Stats stats() const noexcept;

  /// Copy stats() into `registry` as exec.pool.* gauges.  Telemetry is
  /// per-TafLocSystem while the pool is process-wide, so systems sample
  /// the shared pool at snapshot time instead of the pool pushing into
  /// any registry.
  void sample_into(MetricRegistry& registry) const;

 private:
  void worker_loop();
  /// Pull and run chunks of the current batch until none remain.
  /// `lock` must hold mu_; temporarily released around each task.
  void drain_batch(std::unique_lock<std::mutex>& lock);

  const std::size_t threads_;
  std::vector<std::thread> workers_;

  std::mutex submit_mu_;  ///< serializes run_chunks() callers.

  std::mutex mu_;  ///< guards everything below.
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  bool stop_ = false;
  std::uint64_t generation_ = 0;  ///< bumped per batch so workers never re-enter an old one.
  const std::function<void(std::size_t)>* task_ = nullptr;
  std::size_t chunk_count_ = 0;
  std::size_t next_chunk_ = 0;
  std::size_t finished_ = 0;
  std::exception_ptr error_;

  std::atomic<std::uint64_t> stat_batches_{0};
  std::atomic<std::uint64_t> stat_chunks_run_{0};
  std::atomic<std::uint64_t> stat_max_batch_chunks_{0};
};

}  // namespace tafloc
