// Execution configuration shared by every parallel kernel in the
// library.  A single knob -- the worker thread count -- is plumbed from
// TafLocConfig (or the TAFLOC_THREADS environment variable) down to the
// global ThreadPool that the linalg / recon / loc kernels draw from.
//
// Determinism contract: every parallel kernel in this library
// partitions work so that the floating-point operation order of each
// output element is independent of the thread count, so results are
// bit-identical at threads = 1, 4 or 64.  threads = 1 additionally runs
// the exact sequential code paths (no pool involvement at all).
#pragma once

#include <cstddef>

namespace tafloc {

struct ExecConfig {
  /// Worker thread count for the global pool.  0 = automatic: the
  /// TAFLOC_THREADS environment variable if set, otherwise
  /// std::thread::hardware_concurrency().  1 = fully sequential legacy
  /// behaviour (bit-identical to the pre-exec-layer code).
  std::size_t threads = 0;
};

/// Turn an ExecConfig thread request into a concrete count >= 1,
/// applying the TAFLOC_THREADS / hardware_concurrency fallbacks.
std::size_t resolve_thread_count(const ExecConfig& config = {});

/// Resize the process-global pool (see ThreadPool::global()).  0 uses
/// the same automatic resolution as resolve_thread_count.  Not safe to
/// call while parallel kernels are running on other threads.
void set_global_threads(std::size_t threads);

/// Current size of the process-global pool.
std::size_t global_thread_count();

}  // namespace tafloc
