// Execution configuration shared by every parallel kernel in the
// library.  A single knob -- the worker thread count -- is plumbed from
// TafLocConfig (or the TAFLOC_THREADS environment variable) down to the
// global ThreadPool that the linalg / recon / loc kernels draw from.
//
// Determinism contract: every parallel kernel in this library
// partitions work so that the floating-point operation order of each
// output element is independent of the thread count, so results are
// bit-identical at threads = 1, 4 or 64.  threads = 1 additionally runs
// the exact sequential code paths (no pool involvement at all).
#pragma once

#include <cstddef>
#include <cstdint>

namespace tafloc {

/// Which implementation table the linalg hot-path kernels dispatch to
/// (see linalg/backend.h for the table itself and the resolution
/// rules).  An execution knob, not a numerics knob: every backend is
/// bit-identical to the scalar reference on the same inputs.
enum class KernelBackend : std::uint8_t {
  kAuto = 0,    ///< TAFLOC_KERNEL_BACKEND env if set, else best supported.
  kScalar = 1,  ///< portable reference kernels (any CPU).
  kAvx2 = 2,    ///< AVX2 vector kernels (requires runtime CPU support).
};

struct ExecConfig {
  /// Worker thread count for the global pool.  0 = automatic: the
  /// TAFLOC_THREADS environment variable if set, otherwise
  /// std::thread::hardware_concurrency().  1 = fully sequential legacy
  /// behaviour (bit-identical to the pre-exec-layer code).
  std::size_t threads = 0;
  /// Kernel dispatch table for the linalg hot paths.  kAuto leaves the
  /// process-wide selection alone (TAFLOC_KERNEL_BACKEND environment
  /// variable, falling back to CPU detection); any other value forces
  /// that backend at system construction, like `threads`.
  KernelBackend kernel_backend = KernelBackend::kAuto;
};

/// Turn an ExecConfig thread request into a concrete count >= 1,
/// applying the TAFLOC_THREADS / hardware_concurrency fallbacks.
std::size_t resolve_thread_count(const ExecConfig& config = {});

/// Resize the process-global pool (see ThreadPool::global()).  0 uses
/// the same automatic resolution as resolve_thread_count.  Not safe to
/// call while parallel kernels are running on other threads.
void set_global_threads(std::size_t threads);

/// Current size of the process-global pool.
std::size_t global_thread_count();

}  // namespace tafloc
