// JobQueue -- the asynchronous front of the execution core: a small
// supervised worker that runs queued jobs off the serving thread.
//
// The fork-join ThreadPool is the wrong shape for a zone recalibration:
// run_chunks() blocks its caller and serializes whole batches, so a
// LoLi-IR solve submitted through it would hold the pool (and the
// serving thread) for the entire update.  JobQueue decouples admission
// from execution: the serving thread enqueues a closure and returns
// immediately; a dedicated worker dequeues jobs FIFO and runs them.
// The job body is free to use the global ThreadPool internally -- a
// JobQueue worker is not a pool task, so nested parallel_for calls get
// the full pool, interleaving kernel-by-kernel with any concurrent
// serving traffic instead of excluding it.
//
// Supervision contract (dinit-style: a misbehaving service must never
// take the supervisor down): a job that throws is caught, logged and
// counted in failed(); the worker keeps draining the queue.  Completion
// hooks fire on the worker thread -- keep them cheap (set a flag, poke
// an event-loop wakeup fd) and do the real commit on the serving
// thread.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace tafloc {

class JobQueue {
 public:
  /// One FIFO worker by default; `name` prefixes log lines.
  explicit JobQueue(std::string name = "jobs", std::size_t workers = 1);
  /// Finishes every queued job, then joins (see shutdown()).
  ~JobQueue();

  JobQueue(const JobQueue&) = delete;
  JobQueue& operator=(const JobQueue&) = delete;

  /// Enqueue `job`; returns its id (1-based admission order).  Throws
  /// std::runtime_error after shutdown().
  std::uint64_t submit(std::function<void()> job);

  /// Block until the queue is empty and every worker is idle.
  void wait_idle();

  /// Stop admissions, finish everything already queued, join workers.
  /// Idempotent; the destructor calls it.
  void shutdown();

  std::size_t workers() const noexcept { return workers_count_; }
  /// Jobs admitted / finished cleanly / swallowed an exception.
  std::uint64_t submitted() const;
  std::uint64_t completed() const;
  std::uint64_t failed() const;
  /// Queued-but-not-started jobs right now.
  std::size_t pending() const;
  /// True when nothing is queued and nothing is running.
  bool idle() const;

 private:
  void worker_loop();

  const std::string name_;
  const std::size_t workers_count_;
  std::vector<std::thread> threads_;

  mutable std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_idle_;
  std::deque<std::function<void()>> queue_;
  std::size_t running_ = 0;
  bool stopping_ = false;
  std::uint64_t submitted_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t failed_ = 0;
};

}  // namespace tafloc
