#include "tafloc/exec/job_queue.h"

#include <exception>
#include <stdexcept>
#include <utility>

#include "tafloc/util/check.h"
#include "tafloc/util/log.h"

namespace tafloc {

JobQueue::JobQueue(std::string name, std::size_t workers)
    : name_(std::move(name)), workers_count_(workers == 0 ? 1 : workers) {
  threads_.reserve(workers_count_);
  for (std::size_t i = 0; i < workers_count_; ++i)
    threads_.emplace_back([this] { worker_loop(); });
}

JobQueue::~JobQueue() { shutdown(); }

std::uint64_t JobQueue::submit(std::function<void()> job) {
  TAFLOC_CHECK_ARG(job != nullptr, "job must not be null");
  std::uint64_t id;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) throw std::runtime_error("JobQueue '" + name_ + "': submit after shutdown");
    queue_.push_back(std::move(job));
    id = ++submitted_;
  }
  cv_work_.notify_one();
  return id;
}

void JobQueue::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && running_ == 0; });
}

void JobQueue::shutdown() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ && threads_.empty()) return;
    stopping_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& t : threads_)
    if (t.joinable()) t.join();
  threads_.clear();
}

std::uint64_t JobQueue::submitted() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return submitted_;
}

std::uint64_t JobQueue::completed() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return completed_;
}

std::uint64_t JobQueue::failed() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return failed_;
}

std::size_t JobQueue::pending() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

bool JobQueue::idle() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return queue_.empty() && running_ == 0;
}

void JobQueue::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_work_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stopping_) return;
      continue;
    }
    std::function<void()> job = std::move(queue_.front());
    queue_.pop_front();
    ++running_;
    lock.unlock();
    bool ok = true;
    try {
      job();
    } catch (const std::exception& e) {
      ok = false;
      TAFLOC_LOG_ERROR << "JobQueue '" << name_ << "': job threw: " << e.what();
    } catch (...) {
      ok = false;
      TAFLOC_LOG_ERROR << "JobQueue '" << name_ << "': job threw a non-exception";
    }
    lock.lock();
    --running_;
    if (ok)
      ++completed_;
    else
      ++failed_;
    if (queue_.empty() && running_ == 0) cv_idle_.notify_all();
  }
}

}  // namespace tafloc
