#include "tafloc/exec/thread_pool.h"

#include <cstdlib>
#include <memory>

#include "tafloc/exec/exec_config.h"
#include "tafloc/telemetry/metrics.h"
#include "tafloc/util/check.h"

namespace tafloc {

namespace {

/// Set while the current thread executes a pool task; loops issued from
/// such a context run inline to avoid self-deadlock on the batch state.
thread_local bool t_in_pool_task = false;

struct PoolTaskScope {
  PoolTaskScope() { t_in_pool_task = true; }
  ~PoolTaskScope() { t_in_pool_task = false; }
};

std::size_t clamp_threads(std::size_t n) {
  constexpr std::size_t kMax = 256;
  if (n < 1) return 1;
  return n > kMax ? kMax : n;
}

/// Global pool storage; guarded so set_global_threads can swap it.
std::mutex g_pool_mu;
std::unique_ptr<ThreadPool> g_pool;  // NOLINT: intentionally leaked-on-exit singleton slot

}  // namespace

bool ThreadPool::in_pool_task() noexcept { return t_in_pool_task; }

ThreadPool::ThreadPool(std::size_t threads) : threads_(clamp_threads(threads)) {
  workers_.reserve(threads_ - 1);
  for (std::size_t i = 0; i + 1 < threads_; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  std::uint64_t seen = 0;
  for (;;) {
    cv_work_.wait(lock, [&] { return stop_ || generation_ != seen; });
    if (stop_) return;
    seen = generation_;
    drain_batch(lock);
  }
}

void ThreadPool::drain_batch(std::unique_lock<std::mutex>& lock) {
  while (next_chunk_ < chunk_count_) {
    const std::size_t index = next_chunk_++;
    lock.unlock();
    std::exception_ptr err;
    {
      PoolTaskScope scope;
      try {
        (*task_)(index);
      } catch (...) {
        err = std::current_exception();
      }
    }
    lock.lock();
    if (err && !error_) error_ = err;
    if (++finished_ == chunk_count_) cv_done_.notify_all();
  }
}

void ThreadPool::run_chunks(std::size_t count, const std::function<void(std::size_t)>& task) {
  TAFLOC_CHECK_ARG(static_cast<bool>(task), "run_chunks needs a task");
  if (count == 0) return;
  stat_batches_.fetch_add(1, std::memory_order_relaxed);
  stat_chunks_run_.fetch_add(count, std::memory_order_relaxed);
  std::uint64_t seen_max = stat_max_batch_chunks_.load(std::memory_order_relaxed);
  while (seen_max < count && !stat_max_batch_chunks_.compare_exchange_weak(
                                 seen_max, count, std::memory_order_relaxed)) {
  }
  // Sequential modes: a size-1 pool, a single chunk, or a call from
  // inside a pool task (nested loops run inline -- same results, since
  // every kernel's output is range-partitioned).
  if (threads_ == 1 || count == 1 || t_in_pool_task) {
    for (std::size_t i = 0; i < count; ++i) task(i);
    return;
  }

  std::lock_guard<std::mutex> submit_lock(submit_mu_);
  std::unique_lock<std::mutex> lock(mu_);
  task_ = &task;
  chunk_count_ = count;
  next_chunk_ = 0;
  finished_ = 0;
  error_ = nullptr;
  ++generation_;
  cv_work_.notify_all();
  drain_batch(lock);  // the submitting thread is one of the `size()` lanes
  cv_done_.wait(lock, [&] { return finished_ == chunk_count_; });
  task_ = nullptr;
  const std::exception_ptr err = error_;
  error_ = nullptr;
  lock.unlock();
  if (err) std::rethrow_exception(err);
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                              const std::function<void(std::size_t, std::size_t)>& body) {
  if (end <= begin) return;
  if (grain == 0) grain = 1;
  const std::size_t n = end - begin;
  // Enough chunks to balance load, never so many that per-chunk
  // overhead dominates; chunk boundaries only affect scheduling, not
  // results (ranges are disjoint and order-free by contract).
  std::size_t chunks = (n + grain - 1) / grain;
  const std::size_t max_chunks = threads_ * 4;
  if (chunks > max_chunks) chunks = max_chunks;
  const std::size_t per = (n + chunks - 1) / chunks;
  run_chunks(chunks, [&](std::size_t c) {
    const std::size_t lo = begin + c * per;
    if (lo >= end) return;
    const std::size_t hi = lo + std::min(per, end - lo);
    body(lo, hi);
  });
}

ThreadPool::Stats ThreadPool::stats() const noexcept {
  return {stat_batches_.load(std::memory_order_relaxed),
          stat_chunks_run_.load(std::memory_order_relaxed),
          stat_max_batch_chunks_.load(std::memory_order_relaxed)};
}

void ThreadPool::sample_into(MetricRegistry& registry) const {
  if (!registry.enabled()) return;
  const Stats s = stats();
  registry.gauge("exec.pool.threads").set(static_cast<double>(size()));
  registry.gauge("exec.pool.batches").set(static_cast<double>(s.batches));
  registry.gauge("exec.pool.chunks_run").set(static_cast<double>(s.chunks_run));
  registry.gauge("exec.pool.max_batch_chunks").set(static_cast<double>(s.max_batch_chunks));
}

ThreadPool& ThreadPool::global() {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  if (!g_pool) g_pool = std::make_unique<ThreadPool>(resolve_thread_count());
  return *g_pool;
}

std::size_t resolve_thread_count(const ExecConfig& config) {
  if (config.threads != 0) return clamp_threads(config.threads);
  if (const char* env = std::getenv("TAFLOC_THREADS")) {
    char* end = nullptr;
    const unsigned long parsed = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && parsed >= 1) return clamp_threads(parsed);
  }
  return clamp_threads(std::thread::hardware_concurrency());
}

void set_global_threads(std::size_t threads) {
  const std::size_t resolved = resolve_thread_count(ExecConfig{threads});
  std::lock_guard<std::mutex> lock(g_pool_mu);
  if (g_pool && g_pool->size() == resolved) return;
  g_pool = std::make_unique<ThreadPool>(resolved);
}

std::size_t global_thread_count() { return ThreadPool::global().size(); }

}  // namespace tafloc
