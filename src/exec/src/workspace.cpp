#include "tafloc/exec/workspace.h"

#include <algorithm>

#include "tafloc/telemetry/metrics.h"
#include "tafloc/util/check.h"

namespace tafloc {

namespace {

/// Best-fit over the free slots: the smallest capacity that holds
/// `needed` elements.  Returns the slot count when nothing fits.
template <class Slots, class CapacityOf>
std::size_t find_best_fit(const Slots& slots, std::size_t needed, const CapacityOf& capacity_of) {
  std::size_t best = slots.size();
  std::size_t best_capacity = 0;
  for (std::size_t i = 0; i < slots.size(); ++i) {
    if (slots[i]->in_use) continue;
    const std::size_t cap = capacity_of(*slots[i]);
    if (cap < needed) continue;
    if (best == slots.size() || cap < best_capacity) {
      best = i;
      best_capacity = cap;
    }
  }
  return best;
}

}  // namespace

Workspace::Workspace(MetricRegistry* telemetry)
    : allocations_counter_(registry_counter(telemetry, "exec.workspace.allocations")),
      leases_counter_(registry_counter(telemetry, "exec.workspace.leases")),
      bytes_gauge_(registry_gauge(telemetry, "exec.workspace.bytes_highwater")) {}

void Workspace::track_capacity(std::size_t before_elems, std::size_t after_elems) {
  if (after_elems > before_elems) pooled_bytes_ += (after_elems - before_elems) * sizeof(double);
  if (bytes_gauge_ != nullptr) bytes_gauge_->set_max(static_cast<double>(pooled_bytes_));
}

Workspace::MatrixLease Workspace::matrix(std::size_t rows, std::size_t cols) {
  TAFLOC_CHECK_ARG(rows > 0 && cols > 0, "workspace matrices must be non-empty");
  const std::size_t needed = rows * cols;
  std::size_t slot = find_best_fit(matrix_slots_, needed,
                                   [](const Slot<Matrix>& s) { return s.value.capacity(); });
  if (slot == matrix_slots_.size()) {
    // No free buffer is big enough: grow the largest free one (keeps the
    // pool small when sizes ramp up) or create a new slot.
    std::size_t grow = matrix_slots_.size();
    for (std::size_t i = 0; i < matrix_slots_.size(); ++i) {
      if (matrix_slots_[i]->in_use) continue;
      if (grow == matrix_slots_.size() ||
          matrix_slots_[i]->value.capacity() > matrix_slots_[grow]->value.capacity())
        grow = i;
    }
    if (grow == matrix_slots_.size()) {
      matrix_slots_.push_back(std::make_unique<Slot<Matrix>>());
      grow = matrix_slots_.size() - 1;
    }
    slot = grow;
    ++allocations_;
    if (allocations_counter_ != nullptr) allocations_counter_->add();
  }
  Slot<Matrix>& s = *matrix_slots_[slot];
  const std::size_t before = s.value.capacity();
  s.value.resize(rows, cols);
  s.value.fill(0.0);
  track_capacity(before, s.value.capacity());
  s.in_use = true;
  ++outstanding_;
  if (leases_counter_ != nullptr) leases_counter_->add();
  return MatrixLease(this, slot, &s.value);
}

Workspace::VectorLease Workspace::vector(std::size_t n) {
  TAFLOC_CHECK_ARG(n > 0, "workspace vectors must be non-empty");
  std::size_t slot = find_best_fit(vector_slots_, n,
                                   [](const Slot<Vector>& s) { return s.value.capacity(); });
  if (slot == vector_slots_.size()) {
    std::size_t grow = vector_slots_.size();
    for (std::size_t i = 0; i < vector_slots_.size(); ++i) {
      if (vector_slots_[i]->in_use) continue;
      if (grow == vector_slots_.size() ||
          vector_slots_[i]->value.capacity() > vector_slots_[grow]->value.capacity())
        grow = i;
    }
    if (grow == vector_slots_.size()) {
      vector_slots_.push_back(std::make_unique<Slot<Vector>>());
      grow = vector_slots_.size() - 1;
    }
    slot = grow;
    ++allocations_;
    if (allocations_counter_ != nullptr) allocations_counter_->add();
  }
  Slot<Vector>& s = *vector_slots_[slot];
  const std::size_t before = s.value.capacity();
  s.value.assign(n, 0.0);
  track_capacity(before, s.value.capacity());
  s.in_use = true;
  ++outstanding_;
  if (leases_counter_ != nullptr) leases_counter_->add();
  return VectorLease(this, slot, &s.value);
}

void Workspace::release(const MatrixLease& lease) {
  matrix_slots_[lease.slot_]->in_use = false;
  --outstanding_;
}

void Workspace::release(const VectorLease& lease) {
  vector_slots_[lease.slot_]->in_use = false;
  --outstanding_;
}

}  // namespace tafloc
