#include "tafloc/storage/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "tafloc/storage/kill_point.h"

namespace tafloc::storage {

namespace {

constexpr char kMagic[] = "TFLCWAL1";  // 8 bytes, file type + format version.
constexpr std::size_t kMagicBytes = 8;

[[noreturn]] void io_error(const std::string& what, const std::string& path) {
  throw std::runtime_error("wal: " + what + " '" + path + "': " + std::strerror(errno));
}

void write_all(int fd, const char* data, std::size_t size, const std::string& path) {
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      io_error("write to", path);
    }
    written += static_cast<std::size_t>(n);
  }
}

}  // namespace

WalWriter::WalWriter(std::string path, std::uint64_t next_seq, std::size_t fsync_every)
    : path_(std::move(path)), next_seq_(next_seq), fsync_every_(fsync_every == 0 ? 1 : fsync_every) {
  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) io_error("cannot open", path_);
  struct stat st{};
  if (::fstat(fd_, &st) != 0) io_error("cannot stat", path_);
  if (st.st_size == 0) {
    write_all(fd_, kMagic, kMagicBytes, path_);
    if (::fsync(fd_) != 0) io_error("fsync of", path_);
  }
}

WalWriter::~WalWriter() {
  if (fd_ >= 0) {
    if (pending_ > 0) ::fsync(fd_);  // best effort; destructors must not throw.
    ::close(fd_);
  }
}

std::uint64_t WalWriter::append(std::uint32_t type, std::string_view payload) {
  const std::uint64_t seq = next_seq_++;
  const std::string frame = encode_frame(type, seq, payload);
  // Two half-writes around the mid-append kill point: the drill's torn
  // record is a *real* torn record, produced by the production write
  // path itself, not synthesized by a test.
  const std::size_t half = frame.size() / 2;
  write_all(fd_, frame.data(), half, path_);
  maybe_kill(KillPoint::kWalMidAppend);
  write_all(fd_, frame.data() + half, frame.size() - half, path_);
  maybe_kill(KillPoint::kWalAfterAppend);
  ++appended_;
  if (++pending_ >= fsync_every_) sync();
  return seq;
}

void WalWriter::sync() {
  if (pending_ == 0) return;
  if (::fsync(fd_) != 0) io_error("fsync of", path_);
  pending_ = 0;
  ++fsyncs_;
}

WalReadResult read_wal(const std::string& path) {
  WalReadResult result;
  std::string bytes;
  if (!read_file_bytes(path, bytes)) {
    result.missing = true;
    return result;
  }
  if (bytes.size() < kMagicBytes || bytes.compare(0, kMagicBytes, kMagic) != 0) {
    // An empty file (created but never even headered) reads as a clean
    // empty log; anything else headerless is corruption.
    if (!bytes.empty()) {
      result.corrupt = true;
      result.error = "bad magic";
    }
    return result;
  }
  std::size_t pos = kMagicBytes;
  for (;;) {
    Frame frame;
    std::string why;
    const FrameStatus status = decode_frame(bytes, pos, frame, &why);
    if (status == FrameStatus::kEof) break;
    if (status == FrameStatus::kTorn) {
      result.torn_tail = true;
      result.error = why;
      break;
    }
    if (status == FrameStatus::kCorrupt) {
      result.corrupt = true;
      result.error = why;
      break;
    }
    result.records.push_back(std::move(frame));
  }
  return result;
}

}  // namespace tafloc::storage
