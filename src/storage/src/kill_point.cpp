#include "tafloc/storage/kill_point.h"

#include <cstdlib>
#include <stdexcept>

namespace tafloc::storage {

namespace {

// Plain (non-atomic) state: arming happens before the traffic that
// trips it, always from the drill's single thread.
KillPoint armed_point = KillPoint::kNone;
std::uint64_t armed_hits = 0;
std::uint64_t hit_count = 0;

}  // namespace

std::string kill_point_name(KillPoint point) {
  switch (point) {
    case KillPoint::kNone: return "none";
    case KillPoint::kSnapshotTempWritten: return "snapshot-temp-written";
    case KillPoint::kSnapshotBeforeRename: return "snapshot-before-rename";
    case KillPoint::kSnapshotAfterRename: return "snapshot-after-rename";
    case KillPoint::kWalMidAppend: return "wal-mid-append";
    case KillPoint::kWalAfterAppend: return "wal-after-append";
  }
  return "unknown";
}

KillPoint kill_point_from_name(const std::string& name) {
  for (const KillPoint p :
       {KillPoint::kNone, KillPoint::kSnapshotTempWritten, KillPoint::kSnapshotBeforeRename,
        KillPoint::kSnapshotAfterRename, KillPoint::kWalMidAppend, KillPoint::kWalAfterAppend}) {
    if (kill_point_name(p) == name) return p;
  }
  throw std::invalid_argument("unknown kill point '" + name + "'");
}

void arm_kill_point(KillPoint point, std::uint64_t hits) {
  armed_point = point;
  armed_hits = hits;
  hit_count = 0;
}

void disarm_kill_point() {
  armed_point = KillPoint::kNone;
  armed_hits = 0;
  hit_count = 0;
}

void maybe_kill(KillPoint point) {
  if (armed_point != point) return;
  if (++hit_count >= armed_hits) std::_Exit(kKillExitCode);
}

}  // namespace tafloc::storage
