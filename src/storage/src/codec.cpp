#include "tafloc/storage/codec.h"

#include <stdexcept>

namespace tafloc::storage {

namespace {

[[noreturn]] void malformed(const std::string& what) {
  throw std::runtime_error("storage payload: malformed input: " + what);
}

}  // namespace

void ByteWriter::put_u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
}

void ByteWriter::put_u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
}

void ByteWriter::put_bytes(std::span<const std::uint8_t> bytes) {
  buf_.append(reinterpret_cast<const char*>(bytes.data()), bytes.size());
}

void ByteWriter::put_f64_span(std::span<const double> values) {
  put_u64(values.size());
  for (const double v : values) put_f64(v);
}

void ByteWriter::put_size_span(std::span<const std::size_t> values) {
  put_u64(values.size());
  for (const std::size_t v : values) put_u64(v);
}

void ByteWriter::put_u8_span(std::span<const std::uint8_t> values) {
  put_u64(values.size());
  put_bytes(values);
}

void ByteReader::need(std::size_t n, const char* what) const {
  if (data_.size() - pos_ < n) malformed(std::string(what) + " (truncated payload)");
}

std::uint8_t ByteReader::get_u8() {
  need(1, "u8");
  return static_cast<std::uint8_t>(data_[pos_++]);
}

std::uint32_t ByteReader::get_u32() {
  need(4, "u32");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(data_[pos_ + i])) << (8 * i);
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::get_u64() {
  need(8, "u64");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(data_[pos_ + i])) << (8 * i);
  pos_ += 8;
  return v;
}

void ByteReader::require_elements(std::uint64_t count, std::size_t elem_size,
                                  const char* what) const {
  if (count > kMaxElements) malformed(std::string(what) + " (absurd element count)");
  if (count * elem_size > data_.size() - pos_)
    malformed(std::string(what) + " (declared size exceeds payload)");
}

std::vector<double> ByteReader::get_f64_vector() {
  const std::uint64_t n = get_u64();
  require_elements(n, 8, "f64 vector");
  std::vector<double> out(static_cast<std::size_t>(n));
  for (double& v : out) v = get_f64();
  return out;
}

std::vector<std::size_t> ByteReader::get_size_vector() {
  const std::uint64_t n = get_u64();
  require_elements(n, 8, "size vector");
  std::vector<std::size_t> out(static_cast<std::size_t>(n));
  for (std::size_t& v : out) v = static_cast<std::size_t>(get_u64());
  return out;
}

std::vector<std::uint8_t> ByteReader::get_u8_vector() {
  const std::uint64_t n = get_u64();
  require_elements(n, 1, "u8 vector");
  std::vector<std::uint8_t> out(static_cast<std::size_t>(n));
  for (std::uint8_t& v : out) v = get_u8();
  return out;
}

void ByteReader::expect_exhausted(const char* what) const {
  if (pos_ != data_.size())
    malformed(std::string(what) + " (trailing bytes after payload)");
}

}  // namespace tafloc::storage
