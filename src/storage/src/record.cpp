#include "tafloc/storage/record.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "tafloc/storage/kill_point.h"
#include "tafloc/util/crc32c.h"

namespace tafloc::storage {

namespace {

void put_u32_le(std::string& buf, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
}

void put_u64_le(std::string& buf, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
}

std::uint32_t get_u32_le(std::string_view buf, std::size_t pos) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(buf[pos + i])) << (8 * i);
  return v;
}

std::uint64_t get_u64_le(std::string_view buf, std::size_t pos) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(buf[pos + i])) << (8 * i);
  return v;
}

void set_error(std::string* error, const char* what) {
  if (error != nullptr) *error = what;
}

[[noreturn]] void io_error(const std::string& what, const std::string& path) {
  throw std::runtime_error("storage io: " + what + " '" + path + "': " +
                           std::strerror(errno));
}

}  // namespace

const char* frame_status_name(FrameStatus status) {
  switch (status) {
    case FrameStatus::kOk: return "ok";
    case FrameStatus::kEof: return "eof";
    case FrameStatus::kTorn: return "torn";
    case FrameStatus::kCorrupt: return "corrupt";
  }
  return "unknown";
}

std::string encode_frame(std::uint32_t type, std::uint64_t seq, std::string_view payload) {
  if (payload.size() > kMaxFrameBytes - 12)
    throw std::invalid_argument("encode_frame: payload exceeds kMaxFrameBytes");
  std::string body;
  body.reserve(12 + payload.size());
  put_u32_le(body, type);
  put_u64_le(body, seq);
  body.append(payload);

  std::string out;
  out.reserve(8 + body.size());
  put_u32_le(out, static_cast<std::uint32_t>(body.size()));
  put_u32_le(out, crc32c(body.data(), body.size()));
  out.append(body);
  return out;
}

FrameStatus decode_frame(std::string_view buf, std::size_t& pos, Frame& out,
                         std::string* error) {
  const std::size_t remaining = buf.size() - pos;
  if (remaining == 0) return FrameStatus::kEof;
  if (remaining < 8) {
    set_error(error, "truncated frame prefix");
    return FrameStatus::kTorn;
  }
  const std::uint32_t len = get_u32_le(buf, pos);
  const std::uint32_t crc = get_u32_le(buf, pos + 4);
  if (len < 12 || len > kMaxFrameBytes) {
    set_error(error, "absurd frame length");
    return FrameStatus::kCorrupt;
  }
  if (remaining - 8 < len) {
    set_error(error, "truncated frame body");
    return FrameStatus::kTorn;
  }
  const std::string_view body = buf.substr(pos + 8, len);
  if (crc32c(body.data(), body.size()) != crc) {
    set_error(error, "checksum mismatch");
    return FrameStatus::kCorrupt;
  }
  out.type = get_u32_le(body, 0);
  out.seq = get_u64_le(body, 4);
  out.payload.assign(body.substr(12));
  pos += 8 + len;
  return FrameStatus::kOk;
}

bool read_file_bytes(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::string bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  if (in.bad()) throw std::runtime_error("storage io: read of '" + path + "' failed");
  out = std::move(bytes);
  return true;
}

void atomic_write_file(const std::string& path, std::string_view bytes) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) io_error("cannot create", tmp);
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      io_error("write to", tmp);
    }
    written += static_cast<std::size_t>(n);
  }
  maybe_kill(KillPoint::kSnapshotTempWritten);
  if (::fsync(fd) != 0) {
    ::close(fd);
    io_error("fsync of", tmp);
  }
  if (::close(fd) != 0) io_error("close of", tmp);
  maybe_kill(KillPoint::kSnapshotBeforeRename);
  if (::rename(tmp.c_str(), path.c_str()) != 0) io_error("rename to", path);
  maybe_kill(KillPoint::kSnapshotAfterRename);

  // The rename is only durable once the directory entry is: fsync the
  // parent so a power cut after commit cannot resurrect the old file.
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int dirfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dirfd >= 0) {
    ::fsync(dirfd);  // best effort: some filesystems reject directory fsync.
    ::close(dirfd);
  }
}

}  // namespace tafloc::storage
