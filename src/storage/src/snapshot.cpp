#include "tafloc/storage/snapshot.h"

#include <utility>

#include "tafloc/storage/codec.h"
#include "tafloc/storage/record.h"
#include "tafloc/util/check.h"

namespace tafloc::storage {

namespace {

constexpr char kMagic[] = "TFLCSNP1";          // 8 bytes, file type + format version.
constexpr std::size_t kMagicBytes = 8;
constexpr std::uint32_t kSnapshotFrameType = 0x534e4150;  // "SNAP"

/// Validate one slot file's bytes; returns nullopt with a reason on
/// any deviation -- there is no "partially valid" snapshot.
std::optional<SnapshotData> parse_snapshot(const std::string& bytes, std::string& why) {
  if (bytes.size() < kMagicBytes || bytes.compare(0, kMagicBytes, kMagic) != 0) {
    why = "bad magic";
    return std::nullopt;
  }
  std::size_t pos = kMagicBytes;
  Frame frame;
  std::string frame_error;
  const FrameStatus status = decode_frame(bytes, pos, frame, &frame_error);
  if (status != FrameStatus::kOk) {
    why = std::string(frame_status_name(status)) + " frame: " + frame_error;
    return std::nullopt;
  }
  if (frame.type != kSnapshotFrameType) {
    why = "unexpected frame type";
    return std::nullopt;
  }
  if (pos != bytes.size()) {
    why = "trailing bytes after snapshot frame";
    return std::nullopt;
  }
  SnapshotData snap;
  snap.sequence = frame.seq;
  try {
    ByteReader reader(frame.payload);
    snap.generation = reader.get_u64();
    snap.payload = frame.payload.substr(8);
  } catch (const std::exception& e) {
    why = e.what();
    return std::nullopt;
  }
  return snap;
}

}  // namespace

SnapshotStore::SnapshotStore(std::string dir, std::string base)
    : dir_(std::move(dir)), base_(std::move(base)) {
  TAFLOC_CHECK_ARG(!dir_.empty(), "snapshot directory must not be empty");
  TAFLOC_CHECK_ARG(!base_.empty(), "snapshot basename must not be empty");
}

std::string SnapshotStore::slot_path(unsigned slot) const {
  return dir_ + "/" + base_ + "-" + std::to_string(slot % 2) + ".tfs";
}

void SnapshotStore::commit(const SnapshotData& snap) const {
  ByteWriter header;
  header.put_u64(snap.generation);
  std::string frame_payload = header.take();
  frame_payload += snap.payload;

  std::string bytes(kMagic, kMagicBytes);
  bytes += encode_frame(kSnapshotFrameType, snap.sequence, frame_payload);
  atomic_write_file(slot_path(static_cast<unsigned>(snap.generation % 2)), bytes);
}

SnapshotStore::LoadResult SnapshotStore::load_latest() const {
  LoadResult result;
  for (unsigned slot = 0; slot < 2; ++slot) {
    const std::string path = slot_path(slot);
    std::string bytes;
    if (!read_file_bytes(path, bytes)) continue;  // missing slot: not an error.
    std::string why;
    std::optional<SnapshotData> snap = parse_snapshot(bytes, why);
    if (!snap.has_value()) {
      ++result.slots_rejected;
      result.errors.push_back(path + ": " + why);
      // A rejected slot is a generation we can no longer reach; if the
      // other slot wins it will necessarily be older (the slots
      // alternate), so any rejection means degraded recovery.
      result.fell_back = true;
      continue;
    }
    if (!result.snapshot.has_value() || snap->generation > result.snapshot->generation)
      result.snapshot = std::move(*snap);
  }
  return result;
}

}  // namespace tafloc::storage
