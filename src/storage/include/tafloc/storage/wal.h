// Write-ahead log -- append-only checksummed record stream with
// batched fsync and torn-tail-tolerant replay.
//
// The WAL captures the cheap, frequent zone mutations between
// snapshots: ambient scheduler observations, link-health-driving
// query readings, and update inputs.  Appends go straight to the file
// descriptor (no stdio buffering -- a crash must leave exactly the
// bytes that were written), with an fsync every `fsync_every` records
// so the steady-state cost is amortized; sync() forces one, and the
// durability layer calls it before anything irreversible (running an
// update whose inputs must survive).
//
// Replay (read_wal) walks frames until the log ends: a torn final
// record -- the signature of dying mid-append -- is dropped and
// flagged, mid-file corruption (bit flip, zero-page) stops replay at
// the last trustworthy record and is flagged separately.  Nothing
// invalid is ever returned as a record.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "tafloc/storage/record.h"

namespace tafloc::storage {

class WalWriter {
 public:
  /// Opens `path` for append (creating it, with a magic header, when
  /// absent or empty).  `next_seq` is the sequence number the first
  /// append will carry.  Throws std::runtime_error on I/O failure.
  WalWriter(std::string path, std::uint64_t next_seq, std::size_t fsync_every = 8);
  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Append one record; returns the sequence number it was assigned.
  std::uint64_t append(std::uint32_t type, std::string_view payload);

  /// Force the batched fsync now (no-op when nothing is pending).
  void sync();

  std::uint64_t next_seq() const noexcept { return next_seq_; }
  const std::string& path() const noexcept { return path_; }
  std::size_t records_appended() const noexcept { return appended_; }
  std::size_t fsyncs() const noexcept { return fsyncs_; }

 private:
  std::string path_;
  int fd_ = -1;
  std::uint64_t next_seq_;
  std::size_t fsync_every_;
  std::size_t pending_ = 0;
  std::size_t appended_ = 0;
  std::size_t fsyncs_ = 0;
};

struct WalReadResult {
  std::vector<Frame> records;  ///< every intact record, in file order.
  bool torn_tail = false;      ///< final record incomplete (dropped).
  bool corrupt = false;        ///< checksum/framing corruption (replay stopped there).
  bool missing = false;        ///< file absent (an empty, clean log).
  std::string error;           ///< reason for torn/corrupt, for logs.
};

/// Read every intact record of `path`.  Missing file is a clean empty
/// log; corrupt contents are reported, never thrown and never loaded.
WalReadResult read_wal(const std::string& path);

}  // namespace tafloc::storage
