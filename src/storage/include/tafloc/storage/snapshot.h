// SnapshotStore -- two-generation checksummed snapshot files with
// atomic commit.
//
// A snapshot is one frame (record.h) wrapped in a magic header,
// committed via write-temp / fsync / rename / dir-fsync, so a reader
// only ever sees a complete old file or a complete new one.  Two slots
// (`<base>-0.tfs`, `<base>-1.tfs`) alternate by generation parity:
// committing generation G overwrites the *older* slot, so the previous
// generation survives as the fallback when G's file fails its
// checksum (bit flip, zero-page, torn rename on a dying disk).
//
// load_latest() reads both slots, rejects anything invalid with a
// reason, and returns the valid snapshot with the highest generation --
// flagging whether it had to fall back past a newer-but-corrupt slot.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace tafloc::storage {

struct SnapshotData {
  std::uint64_t generation = 0;  ///< monotonic commit count.
  std::uint64_t sequence = 0;    ///< WAL sequence the payload covers.
  std::string payload;           ///< opaque zone payload (see tafloc durability).
};

class SnapshotStore {
 public:
  /// `dir` must exist; files are `<dir>/<base>-{0,1}.tfs`.
  explicit SnapshotStore(std::string dir, std::string base = "snap");

  /// Atomically commit `snap` into the slot `generation % 2`.
  /// Throws std::runtime_error on I/O failure.
  void commit(const SnapshotData& snap) const;

  struct LoadResult {
    /// Highest-generation valid snapshot; nullopt when no slot is valid.
    std::optional<SnapshotData> snapshot;
    /// True when a present-but-invalid slot was newer than the one
    /// returned (or newer than nothing): recovery degraded a generation.
    bool fell_back = false;
    /// Slots that existed but failed validation (checksum, torn, magic).
    std::size_t slots_rejected = 0;
    /// One human-readable reason per rejected slot.
    std::vector<std::string> errors;
  };

  /// Never throws on corrupt contents -- corruption is data here, not
  /// an exception; only unreadable-but-present files (I/O errors) throw.
  LoadResult load_latest() const;

  std::string slot_path(unsigned slot) const;

 private:
  std::string dir_;
  std::string base_;
};

}  // namespace tafloc::storage
