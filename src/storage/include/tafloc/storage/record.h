// Checksummed record framing -- the one wire format under snapshots
// and the write-ahead log.
//
// Frame layout (all integers little-endian):
//
//   [u32 len ][u32 crc32c][u32 type][u64 seq][payload ...]
//              \_________ crc covers these `len` bytes _________/
//
// `len` counts everything after the crc (type + seq + payload, so
// len >= 12).  Decoding distinguishes three failure shapes because
// recovery treats them differently:
//
//   kTorn    -- the buffer ends mid-frame (a crash between write()s or
//               a truncated file).  Expected at the tail of a WAL that
//               died mid-append; everything before it is good.
//   kCorrupt -- the frame is structurally complete but lies: checksum
//               mismatch (bit flip), or an absurd/garbage length
//               (zero-page over the header).  Nothing at or past this
//               point can be trusted -- framing itself may be lost.
//   kEof     -- clean end exactly on a frame boundary.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace tafloc::storage {

/// Hard upper bound on one frame's `len`; a declared length beyond it
/// is treated as corruption, never allocated.
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 30;  // 1 GiB

/// Bytes of frame header before the payload (len + crc + type + seq).
inline constexpr std::size_t kFrameHeaderBytes = 20;

struct Frame {
  std::uint32_t type = 0;
  std::uint64_t seq = 0;
  std::string payload;
};

enum class FrameStatus { kOk, kEof, kTorn, kCorrupt };

/// Name for logs ("ok" / "eof" / "torn" / "corrupt").
const char* frame_status_name(FrameStatus status);

/// Encode one frame as bytes ready to append to a file.
std::string encode_frame(std::uint32_t type, std::uint64_t seq, std::string_view payload);

/// Decode the frame starting at `pos`.  On kOk fills `out` and
/// advances `pos` past the frame; otherwise `pos` is left at the bad
/// frame and `error` (optional) says why.  Never throws, never
/// allocates from untrusted lengths.
FrameStatus decode_frame(std::string_view buf, std::size_t& pos, Frame& out,
                         std::string* error = nullptr);

// -- small file helpers shared by the snapshot store and the WAL --

/// Entire file as bytes; std::nullopt-like contract via bool: returns
/// false when the file cannot be opened (missing counts), throws
/// std::runtime_error on a read error of an open file.
bool read_file_bytes(const std::string& path, std::string& out);

/// Crash-safe whole-file replace: write `bytes` to `path.tmp`, fsync,
/// rename over `path`, fsync the parent directory.  A kill at any of
/// the instrumented points leaves either the complete old file or the
/// complete new one.  Throws std::runtime_error on I/O failure.
void atomic_write_file(const std::string& path, std::string_view bytes);

}  // namespace tafloc::storage
