// Bounds-checked binary codec for persisted payloads.
//
// ByteWriter builds a payload byte string; ByteReader walks one and
// throws std::runtime_error the moment a read would run past the end
// or a declared size is absurd -- a truncated or garbage payload can
// never turn into a silent bad_alloc or out-of-bounds read.  Integers
// are little-endian fixed width; doubles travel as their IEEE-754 bit
// pattern, so a round trip is bit-exact (NaN payloads included).
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace tafloc::storage {

/// Upper bound on any single element count declared inside a payload
/// (vector lengths, matrix dims).  Far above anything TafLoc stores,
/// far below what would make a hostile header allocate the machine.
inline constexpr std::uint64_t kMaxElements = 1ull << 28;  // 268M

class ByteWriter {
 public:
  void put_u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  void put_f64(double v) { put_u64(std::bit_cast<std::uint64_t>(v)); }
  void put_bytes(std::span<const std::uint8_t> bytes);

  /// Length-prefixed (u64) sequence of doubles / sizes / bytes.
  void put_f64_span(std::span<const double> values);
  void put_size_span(std::span<const std::size_t> values);
  void put_u8_span(std::span<const std::uint8_t> values);

  const std::string& bytes() const noexcept { return buf_; }
  std::string take() noexcept { return std::move(buf_); }
  std::size_t size() const noexcept { return buf_.size(); }

 private:
  std::string buf_;
};

class ByteReader {
 public:
  explicit ByteReader(std::string_view payload) : data_(payload) {}

  std::uint8_t get_u8();
  std::uint32_t get_u32();
  std::uint64_t get_u64();
  double get_f64() { return std::bit_cast<double>(get_u64()); }

  /// Length-prefixed counterparts of the writer's span forms; the
  /// declared length is validated against kMaxElements AND the bytes
  /// actually remaining before anything is allocated.
  std::vector<double> get_f64_vector();
  std::vector<std::size_t> get_size_vector();
  std::vector<std::uint8_t> get_u8_vector();

  /// Declared-count guard for callers that encode their own shapes:
  /// throws unless `count` elements of `elem_size` bytes are sane and
  /// actually present in the remaining payload.
  void require_elements(std::uint64_t count, std::size_t elem_size, const char* what) const;

  std::size_t remaining() const noexcept { return data_.size() - pos_; }
  bool exhausted() const noexcept { return pos_ == data_.size(); }
  /// Throws unless the payload was consumed exactly (trailing garbage
  /// is as suspicious as truncation).
  void expect_exhausted(const char* what) const;

 private:
  void need(std::size_t n, const char* what) const;

  std::string_view data_;
  std::size_t pos_ = 0;
};

}  // namespace tafloc::storage
