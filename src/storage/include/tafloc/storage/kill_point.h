// Crash kill points -- the hooks the durability drill uses to die at
// the worst possible moments.
//
// The commit protocol's crash-safety claims ("a kill -9 between the
// temp write and the rename loses nothing", "a torn WAL tail is
// dropped, never loaded") are only worth something if a test can
// actually kill the process *inside* those windows.  The storage layer
// threads `maybe_kill(point)` calls through every such window; in
// production they are a disarmed counter test (one branch on a bool).
// The CrashInjector (src/sim) arms one point with a hit count, and the
// process exits via _Exit -- no destructors, no stream flushes, no
// atexit -- which is as close to kill -9 as an in-process hook gets.
#pragma once

#include <cstdint>
#include <string>

namespace tafloc::storage {

enum class KillPoint : std::uint8_t {
  kNone = 0,
  kSnapshotTempWritten,   ///< temp file fully written, before fsync.
  kSnapshotBeforeRename,  ///< temp fsynced, before rename into place.
  kSnapshotAfterRename,   ///< renamed, before the directory fsync.
  kWalMidAppend,          ///< half a WAL frame written (the torn record).
  kWalAfterAppend,        ///< frame written, before its batched fsync.
};

/// Name for logs / CLI flags ("snapshot-temp-written", ...).
std::string kill_point_name(KillPoint point);
/// Inverse of kill_point_name; throws std::invalid_argument on unknown.
KillPoint kill_point_from_name(const std::string& name);

/// Arm: the `hits`-th maybe_kill(point) call terminates the process
/// with _Exit(kKillExitCode).  Replaces any previous arming.
void arm_kill_point(KillPoint point, std::uint64_t hits = 1);
/// Disarm (tests that survive the drill).
void disarm_kill_point();
/// Called by the storage layer inside each commit window.
void maybe_kill(KillPoint point);

/// Exit code of an armed kill, distinguishable from assertion deaths.
inline constexpr int kKillExitCode = 137;  // what kill -9 yields in a shell.

}  // namespace tafloc::storage
