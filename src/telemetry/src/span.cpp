#include "tafloc/telemetry/span.h"

namespace tafloc {

namespace {

/// Per-thread nesting level of live spans; spans from pool workers each
/// get their own depth chain (the trace records the thread hash, so a
/// dump can separate the chains).
thread_local std::uint32_t t_span_depth = 0;

}  // namespace

std::uint32_t ScopedSpan::current_depth() noexcept { return t_span_depth; }

ScopedSpan::ScopedSpan(MetricRegistry* registry, std::string_view name) noexcept
    : name_(name) {
  if (registry == nullptr || !registry->enabled()) return;  // two branches, no clock read
  registry_ = registry;
  histogram_ = &registry->histogram(name);
  depth_ = t_span_depth++;
  start_ns_ = registry->now_ns();
}

ScopedSpan::~ScopedSpan() {
  if (registry_ == nullptr) return;
  const std::uint64_t duration_ns = registry_->now_ns() - start_ns_;
  histogram_->observe(static_cast<double>(duration_ns) * 1e-9);
  registry_->record_span(name_, depth_, start_ns_, duration_ns);
  --t_span_depth;
}

}  // namespace tafloc
