#include "tafloc/telemetry/metrics.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <ostream>
#include <sstream>
#include <thread>

#include "tafloc/util/check.h"

namespace tafloc {

namespace detail {

void atomic_add(std::atomic<double>& target, double delta) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + delta, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& target, double value) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (cur < value &&
         !target.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& target, double value) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (cur > value &&
         !target.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

}  // namespace detail

namespace {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// JSON string escaping for metric/span names.
std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Shortest round-trip double for JSON; non-finite values become null
/// (strict parsers reject bare NaN/Infinity tokens).
std::string json_double(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

// ---------------- Histogram ----------------

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  TAFLOC_CHECK_ARG(!bounds_.empty(), "histogram needs at least one bucket bound");
  for (std::size_t i = 0; i + 1 < bounds_.size(); ++i)
    TAFLOC_CHECK_ARG(bounds_[i] < bounds_[i + 1],
                     "histogram bounds must be strictly increasing");
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
}

std::vector<double> Histogram::default_bounds() {
  // Sub-decade steps (1, 1.5, 2, 3, 5, 7) x 10^e across 1e-9 .. 1e3:
  // fine enough that an interpolated p99 of a microsecond-scale latency
  // is meaningful, wide enough for residuals and second-scale solves.
  static const double steps[] = {1.0, 1.5, 2.0, 3.0, 5.0, 7.0};
  std::vector<double> bounds;
  for (int e = -9; e <= 2; ++e) {
    const double decade = std::pow(10.0, e);
    for (const double s : steps) bounds.push_back(s * decade);
  }
  bounds.push_back(1e3);
  return bounds;
}

void Histogram::observe(double v) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const std::size_t index = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  detail::atomic_add(sum_, v);
  detail::atomic_min(min_, v);
  detail::atomic_max(max_, v);
}

double Histogram::min() const noexcept {
  return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double Histogram::max() const noexcept {
  return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

double Histogram::mean() const noexcept {
  const std::uint64_t c = count();
  return c == 0 ? 0.0 : sum() / static_cast<double>(c);
}

double Histogram::quantile(double q) const noexcept {
  const std::uint64_t total = count();
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(total);
  std::uint64_t cum_before = 0;
  for (std::size_t i = 0; i < num_buckets(); ++i) {
    const std::uint64_t in_bucket = bucket_count(i);
    if (in_bucket == 0) continue;
    if (static_cast<double>(cum_before + in_bucket) >= rank) {
      // Interpolate within the bucket, entries spread uniformly.
      const double lower = i == 0 ? min() : bounds_[i - 1];
      const double upper = i < bounds_.size() ? bounds_[i] : max();
      const double frac =
          (rank - static_cast<double>(cum_before)) / static_cast<double>(in_bucket);
      const double v = lower + (upper - lower) * std::clamp(frac, 0.0, 1.0);
      return std::clamp(v, min(), max());
    }
    cum_before += in_bucket;
  }
  return max();
}

// ---------------- MetricRegistry ----------------

MetricRegistry::MetricRegistry(const TelemetryConfig& config)
    : config_(config), epoch_ns_(steady_now_ns()) {
  noop_histogram_ = std::make_unique<Histogram>(std::vector<double>{1.0});
}

template <class T, class Make>
T& MetricRegistry::find_or_create(
    std::map<std::string, std::unique_ptr<T>, std::less<>>& metrics, std::string_view name,
    const Make& make) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = metrics.find(name);
  if (it != metrics.end()) return *it->second;
  return *metrics.emplace(std::string(name), make()).first->second;
}

Counter& MetricRegistry::counter(std::string_view name) {
  if (!enabled()) return noop_counter_;
  return find_or_create(counters_, name, [] { return std::make_unique<Counter>(); });
}

Gauge& MetricRegistry::gauge(std::string_view name) {
  if (!enabled()) return noop_gauge_;
  return find_or_create(gauges_, name, [] { return std::make_unique<Gauge>(); });
}

Histogram& MetricRegistry::histogram(std::string_view name) {
  if (!enabled()) return *noop_histogram_;
  return find_or_create(histograms_, name,
                        [] { return std::make_unique<Histogram>(Histogram::default_bounds()); });
}

Histogram& MetricRegistry::histogram(std::string_view name, std::vector<double> upper_bounds) {
  if (!enabled()) return *noop_histogram_;
  return find_or_create(histograms_, name, [&] {
    return std::make_unique<Histogram>(std::move(upper_bounds));
  });
}

std::size_t MetricRegistry::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

std::uint64_t MetricRegistry::now_ns() const noexcept { return steady_now_ns() - epoch_ns_; }

void MetricRegistry::record_span(std::string_view name, std::uint32_t depth,
                                 std::uint64_t start_ns, std::uint64_t duration_ns) {
  if (!enabled() || config_.trace_capacity == 0) return;
  SpanRecord record{std::string(name), depth,
                    std::hash<std::thread::id>{}(std::this_thread::get_id()), start_ns,
                    duration_ns};
  const std::lock_guard<std::mutex> lock(mu_);
  spans_recorded_.fetch_add(1, std::memory_order_relaxed);
  if (trace_.size() < config_.trace_capacity) {
    trace_.push_back(std::move(record));
  } else {
    // Wraparound evicts the oldest span; count the loss so trace gaps
    // under load are diagnosable instead of silent.
    spans_dropped_.fetch_add(1, std::memory_order_relaxed);
    trace_[trace_head_] = std::move(record);
    trace_head_ = (trace_head_ + 1) % trace_.size();
  }
}

std::vector<SpanRecord> MetricRegistry::trace() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanRecord> out;
  out.reserve(trace_.size());
  for (std::size_t i = 0; i < trace_.size(); ++i)
    out.push_back(trace_[(trace_head_ + i) % trace_.size()]);
  return out;
}

std::string MetricRegistry::text_dump() const {
  std::ostringstream out;
  const std::lock_guard<std::mutex> lock(mu_);
  out << "telemetry: " << (enabled() ? "enabled" : "disabled") << ", "
      << counters_.size() + gauges_.size() + histograms_.size() << " metrics, "
      << spans_recorded() << " spans recorded, " << spans_dropped() << " dropped";
  if (!config_.zone.empty()) out << ", zone=" << config_.zone;
  out << '\n';
  for (const auto& [name, c] : counters_)
    out << "  counter    " << name << " = " << c->value() << '\n';
  for (const auto& [name, g] : gauges_)
    out << "  gauge      " << name << " = " << g->value() << '\n';
  for (const auto& [name, h] : histograms_) {
    out << "  histogram  " << name << "  count=" << h->count() << " mean=" << h->mean()
        << " min=" << h->min() << " max=" << h->max() << " p50=" << h->quantile(0.5)
        << " p95=" << h->quantile(0.95) << " p99=" << h->quantile(0.99) << '\n';
  }
  return out.str();
}

void MetricRegistry::snapshot_json(std::ostream& out) const {
  const std::lock_guard<std::mutex> lock(mu_);
  // Zone attribution rides every line so a stream concatenating several
  // registries stays per-line attributable; the empty-label format is
  // byte-identical to the historical (library) one.
  std::string zone_field;
  if (!config_.zone.empty()) zone_field = ",\"zone\":\"" + json_escape(config_.zone) + "\"";
  out << "{\"type\":\"snapshot\",\"enabled\":" << (enabled() ? "true" : "false")
      << ",\"metrics\":" << counters_.size() + gauges_.size() + histograms_.size()
      << ",\"spans_recorded\":" << spans_recorded()
      << ",\"spans_dropped\":" << spans_dropped() << ",\"uptime_ns\":" << now_ns()
      << zone_field << "}\n";
  for (const auto& [name, c] : counters_) {
    out << "{\"type\":\"counter\",\"name\":\"" << json_escape(name)
        << "\",\"value\":" << c->value() << zone_field << "}\n";
  }
  for (const auto& [name, g] : gauges_) {
    out << "{\"type\":\"gauge\",\"name\":\"" << json_escape(name)
        << "\",\"value\":" << json_double(g->value()) << zone_field << "}\n";
  }
  for (const auto& [name, h] : histograms_) {
    out << "{\"type\":\"histogram\",\"name\":\"" << json_escape(name)
        << "\",\"count\":" << h->count() << ",\"sum\":" << json_double(h->sum())
        << ",\"min\":" << json_double(h->min()) << ",\"max\":" << json_double(h->max())
        << ",\"mean\":" << json_double(h->mean())
        << ",\"p50\":" << json_double(h->quantile(0.5))
        << ",\"p95\":" << json_double(h->quantile(0.95))
        << ",\"p99\":" << json_double(h->quantile(0.99)) << zone_field << "}\n";
  }
  for (std::size_t i = 0; i < trace_.size(); ++i) {
    const SpanRecord& s = trace_[(trace_head_ + i) % trace_.size()];
    out << "{\"type\":\"span\",\"name\":\"" << json_escape(s.name)
        << "\",\"depth\":" << s.depth << ",\"thread\":" << s.thread
        << ",\"start_ns\":" << s.start_ns << ",\"duration_ns\":" << s.duration_ns
        << zone_field << "}\n";
  }
}

std::string MetricRegistry::snapshot_json() const {
  std::ostringstream out;
  snapshot_json(out);
  return out.str();
}

MetricRegistry::Snapshot MetricRegistry::snapshot() const {
  Snapshot snap;
  const std::lock_guard<std::mutex> lock(mu_);
  snap.enabled = enabled();
  snap.zone = config_.zone;
  snap.uptime_ns = now_ns();
  snap.spans_recorded = spans_recorded();
  snap.spans_dropped = spans_dropped();
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) snap.counters.emplace_back(name, c->value());
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) snap.gauges.emplace_back(name, g->value());
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSummary s;
    s.name = name;
    s.count = h->count();
    s.sum = h->sum();
    s.min = h->min();
    s.max = h->max();
    s.p50 = h->quantile(0.5);
    s.p95 = h->quantile(0.95);
    s.p99 = h->quantile(0.99);
    snap.histograms.push_back(std::move(s));
  }
  return snap;
}

// ---------------- optional-registry helpers ----------------

Counter* registry_counter(MetricRegistry* registry, std::string_view name) {
  return registry != nullptr && registry->enabled() ? &registry->counter(name) : nullptr;
}

Gauge* registry_gauge(MetricRegistry* registry, std::string_view name) {
  return registry != nullptr && registry->enabled() ? &registry->gauge(name) : nullptr;
}

Histogram* registry_histogram(MetricRegistry* registry, std::string_view name) {
  return registry != nullptr && registry->enabled() ? &registry->histogram(name) : nullptr;
}

}  // namespace tafloc
