#include "tafloc/telemetry/trace.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "tafloc/telemetry/metrics.h"

namespace tafloc {

namespace trace_detail {

namespace {
thread_local ActiveTrace* t_active = nullptr;
}  // namespace

ActiveTrace* active() noexcept { return t_active; }
void set_active(ActiveTrace* trace) noexcept { t_active = trace; }

std::uint64_t steady_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace trace_detail

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// Same escaping rules as the metrics JSONL exporter (stage names are
/// literals, but the zone label and state come from config/runtime).
void json_escape_into(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_json_double(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

}  // namespace

// ---------------- TraceRecord ----------------

void TraceRecord::set_state(const char* name) noexcept {
  std::snprintf(state, sizeof(state), "%s", name == nullptr ? "" : name);
}

void TraceRecord::add_stage(const char* name, std::uint32_t depth,
                            std::uint64_t start_ns_rel, std::uint64_t duration_ns) noexcept {
  if (stage_count >= kTraceMaxStages) {
    ++stages_dropped;
    return;
  }
  stages[stage_count++] = TraceStageRecord{name, depth, start_ns_rel, duration_ns};
}

// ---------------- TraceRing ----------------

TraceRing::TraceRing(std::size_t capacity) {
  if (capacity == 0) return;
  capacity_ = round_up_pow2(capacity);
  mask_ = capacity_ - 1;
  slots_ = std::make_unique<Slot[]>(capacity_);
}

void TraceRing::push(const TraceRecord& record) noexcept {
  if (capacity_ == 0) return;
  const std::uint64_t ticket = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[ticket & mask_];
  // Seqlock write: odd while the copy is in flight.  There is one
  // writer (the serving thread), so the increment never races another
  // writer; readers that observe an odd value or a seq change drop the
  // slot instead of returning a torn record.
  const std::uint64_t seq = slot.seq.load(std::memory_order_relaxed);
  slot.seq.store(seq + 1, std::memory_order_release);
  std::atomic_thread_fence(std::memory_order_release);
  slot.record = record;
  std::atomic_thread_fence(std::memory_order_release);
  slot.seq.store(seq + 2, std::memory_order_release);
}

std::uint64_t TraceRing::overwritten() const noexcept {
  const std::uint64_t total = pushed();
  return total > capacity_ ? total - capacity_ : 0;
}

std::vector<TraceRecord> TraceRing::snapshot(std::size_t max) const {
  std::vector<TraceRecord> out;
  if (capacity_ == 0) return out;
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const std::uint64_t retained = std::min<std::uint64_t>(head, capacity_);
  const std::uint64_t want = std::min<std::uint64_t>(retained, max);
  out.reserve(want);
  // Oldest first within the requested newest-`max` window.
  for (std::uint64_t ticket = head - want; ticket < head; ++ticket) {
    const Slot& slot = slots_[ticket & mask_];
    const std::uint64_t seq_before = slot.seq.load(std::memory_order_acquire);
    if (seq_before % 2 != 0) continue;  // writer mid-copy.
    std::atomic_thread_fence(std::memory_order_acquire);
    TraceRecord copy = slot.record;
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_acquire) != seq_before) continue;  // torn.
    out.push_back(copy);
  }
  return out;
}

// ---------------- SlowLog ----------------

SlowLog::SlowLog(std::size_t capacity) : capacity_(capacity) {
  if (capacity_ > 0) entries_ = std::make_unique<TraceRecord[]>(capacity_);
}

bool SlowLog::append(const TraceRecord& record) noexcept {
  if (capacity_ == 0) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  const std::uint64_t index = reserved_.fetch_add(1, std::memory_order_relaxed);
  if (index >= capacity_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  entries_[index] = record;
  committed_.fetch_add(1, std::memory_order_release);
  return true;
}

std::size_t SlowLog::size() const noexcept {
  return static_cast<std::size_t>(
      std::min<std::uint64_t>(committed_.load(std::memory_order_acquire), capacity_));
}

std::vector<TraceRecord> SlowLog::entries() const {
  const std::size_t n = size();
  std::vector<TraceRecord> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(entries_[i]);
  return out;
}

// ---------------- Tracer ----------------

Tracer::Tracer(const TracerConfig& config, MetricRegistry* metrics)
    : config_(config),
      slow_threshold_ns_(config.slow_threshold_ms <= 0.0
                             ? 0
                             : static_cast<std::uint64_t>(config.slow_threshold_ms * 1e6)),
      epoch_ns_(trace_detail::steady_ns()),
      ring_(config.ring_capacity),
      slow_log_(config.slow_threshold_ms > 0.0 ? config.slow_log_capacity : 0),
      requests_counter_(registry_counter(metrics, "trace.requests")),
      sampled_counter_(registry_counter(metrics, "trace.sampled")),
      slow_counter_(registry_counter(metrics, "trace.slow")),
      slow_dropped_counter_(registry_counter(metrics, "trace.slowlog_dropped")) {}

std::uint64_t Tracer::now_ns() const noexcept {
  return trace_detail::steady_ns() - epoch_ns_;
}

void Tracer::finish(TraceRecord& record) noexcept {
  if (requests_counter_ != nullptr) requests_counter_->add();
  if (record.sampled) {
    if (sampled_counter_ != nullptr) sampled_counter_->add();
    ring_.push(record);
  }
  if (slow_threshold_ns_ > 0 && record.total_ns >= slow_threshold_ns_) {
    record.slow = true;
    if (slow_counter_ != nullptr) slow_counter_->add();
    if (!slow_log_.append(record) && slow_dropped_counter_ != nullptr)
      slow_dropped_counter_->add();
  }
}

std::string Tracer::record_json(const TraceRecord& record, const std::string& zone) {
  std::string out;
  out.reserve(256 + 96 * record.stage_count);
  out += "{\"type\":\"trace\"";
  if (!zone.empty()) {
    out += ",\"zone\":\"";
    json_escape_into(out, zone.c_str());
    out += '"';
  }
  out += ",\"trace_id\":";
  append_u64(out, record.trace_id);
  out += ",\"seq\":";
  append_u64(out, record.seq);
  out += ",\"start_ns\":";
  append_u64(out, record.start_ns);
  out += ",\"queue_wait_ns\":";
  append_u64(out, record.queue_wait_ns);
  out += ",\"total_ns\":";
  append_u64(out, record.total_ns);
  out += ",\"confidence\":";
  append_json_double(out, record.confidence);
  out += ",\"links_used\":";
  append_u64(out, record.links_used);
  out += ",\"links_total\":";
  append_u64(out, record.links_total);
  out += ",\"state\":\"";
  json_escape_into(out, record.state);
  out += "\",\"served\":";
  out += record.served ? "true" : "false";
  out += ",\"degraded\":";
  out += record.degraded ? "true" : "false";
  out += ",\"sampled\":";
  out += record.sampled ? "true" : "false";
  out += ",\"slow\":";
  out += record.slow ? "true" : "false";
  out += ",\"fault_injected\":";
  out += record.fault_injected ? "true" : "false";
  out += ",\"stages_dropped\":";
  append_u64(out, record.stages_dropped);
  out += ",\"stages\":[";
  for (std::uint32_t i = 0; i < record.stage_count; ++i) {
    const TraceStageRecord& stage = record.stages[i];
    if (i > 0) out += ',';
    out += "{\"name\":\"";
    json_escape_into(out, stage.name == nullptr ? "" : stage.name);
    out += "\",\"depth\":";
    append_u64(out, stage.depth);
    out += ",\"start_ns\":";
    append_u64(out, stage.start_ns);
    out += ",\"duration_ns\":";
    append_u64(out, stage.duration_ns);
    out += '}';
  }
  out += "]}\n";
  return out;
}

std::string Tracer::ring_json(std::size_t max) const {
  std::string out;
  for (const TraceRecord& record : ring_.snapshot(max))
    out += record_json(record, config_.zone);
  return out;
}

std::string Tracer::slow_json() const {
  std::string out;
  for (const TraceRecord& record : slow_log_.entries())
    out += record_json(record, config_.zone);
  return out;
}

// ---------------- TraceScope ----------------

TraceScope::TraceScope(Tracer& tracer, const TraceContext& ctx,
                       std::uint64_t queue_wait_ns) noexcept
    : tracer_(tracer) {
  if (!tracer_.active()) return;  // fully off: no clock read, no install.
  live_ = true;
  const std::uint64_t seq = tracer_.begin_request();
  record_.seq = seq;
  record_.trace_id = ctx.trace_id != 0 ? ctx.trace_id : seq + 1;
  record_.queue_wait_ns = queue_wait_ns;
  record_.sampled = tracer_.should_sample(ctx, seq);
  record_.start_ns = tracer_.now_ns();
  if (tracer_.wants_stages(record_.sampled)) {
    active_.record = &record_;
    active_.request_start_abs_ns = trace_detail::steady_ns();
    previous_ = trace_detail::active();
    trace_detail::set_active(&active_);
    installed_ = true;
  }
}

TraceScope::~TraceScope() {
  if (!live_) return;
  if (installed_) {
    trace_detail::set_active(previous_);
    record_.total_ns = trace_detail::steady_ns() - active_.request_start_abs_ns;
  } else {
    record_.total_ns = tracer_.now_ns() - record_.start_ns;
  }
  tracer_.finish(record_);
}

}  // namespace tafloc
