// ScopedSpan -- RAII stage timer.
//
//   void TafLocSystem::update(...) {
//     ScopedSpan span(telemetry_ptr(), "system.update_seconds");
//     ...
//   }
//
// On destruction the elapsed wall time lands in the histogram of the
// same name AND in the registry's per-thread-nested stage trace: each
// thread carries a nesting depth, so a trace dump reconstructs the
// call-stage tree (system.update_seconds at depth 0 containing
// recon.loli_ir.solve_seconds at depth 1, ...).
//
// A null or disabled registry short-circuits before the first clock
// read -- a disabled span is two branches, no timing, no allocation.
//
// ScopedSpan resolves its histogram by name (one registry mutex hop per
// span).  That is fine for stage-level spans; per-query paths (the KNN
// matcher) cache a Histogram* at attach time and time themselves.
#pragma once

#include <cstdint>
#include <string_view>

#include "tafloc/telemetry/metrics.h"

namespace tafloc {

class ScopedSpan {
 public:
  /// `name` must outlive the span (string literals in practice).
  ScopedSpan(MetricRegistry* registry, std::string_view name) noexcept;
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// True when this span is live (registry present and enabled).
  bool active() const noexcept { return registry_ != nullptr; }

  /// Nesting depth of the innermost active span on this thread (the
  /// depth the NEXT span would record); exposed for tests.
  static std::uint32_t current_depth() noexcept;

 private:
  MetricRegistry* registry_ = nullptr;  ///< null when short-circuited.
  Histogram* histogram_ = nullptr;
  std::string_view name_;
  std::uint64_t start_ns_ = 0;
  std::uint32_t depth_ = 0;
};

}  // namespace tafloc
