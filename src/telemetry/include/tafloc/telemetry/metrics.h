// Telemetry substrate: a thread-safe MetricRegistry of counters, gauges
// and fixed-bucket histograms, with human-readable and JSONL exporters.
//
// Ownership model (mirrors the logger's no-env-coupling rule): there is
// NO process-global registry.  Each TafLocSystem owns one; library code
// receives a `MetricRegistry*` through its config struct and treats
// nullptr as "telemetry off".  Hot paths cache the Counter* / Histogram*
// handles once (registry lookups take a mutex; metric operations do
// not), so the steady-state cost of an enabled counter is one relaxed
// atomic add and of a disabled one a single branch on a null pointer.
//
// Determinism contract: metrics only *observe* -- no instrumented kernel
// may branch on a metric value, so localization and reconstruction
// outputs are bit-identical with telemetry enabled or disabled at any
// thread count (asserted in test_exec_determinism).
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace tafloc {

namespace detail {

/// CAS helpers for atomic doubles (portable stand-ins for the C++20
/// floating fetch_add/fetch_max, which libstdc++ lowers to the same
/// loop).
void atomic_add(std::atomic<double>& target, double delta) noexcept;
void atomic_max(std::atomic<double>& target, double value) noexcept;
void atomic_min(std::atomic<double>& target, double value) noexcept;

}  // namespace detail

/// Monotonic event counter.  All operations are relaxed atomics:
/// concurrent adds never lose increments (totals are exact) and cost no
/// fences on the hot path.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const noexcept { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-value (or high-water) instrument for point-in-time readings:
/// staleness in dB, arena bytes, queue depths.
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  /// Raise-only update (high-water marks).
  void set_max(double v) noexcept { detail::atomic_max(value_, v); }
  double value() const noexcept { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: values land in the first bucket whose upper
/// bound is >= the value (one overflow bucket past the last bound).
/// Counts, sum and min/max are exact under concurrency; quantiles are
/// interpolated within a bucket, so they are accurate to one bucket
/// width (the percentile test bounds them against a sorted reference).
class Histogram {
 public:
  /// `upper_bounds` must be non-empty and strictly increasing.
  explicit Histogram(std::vector<double> upper_bounds);

  /// Log-spaced bounds 1e-9 .. 1e3 in sub-decade (1, 1.5, 2, 3, 5, 7)
  /// steps -- wide enough for latencies in seconds and dimensionless
  /// residuals alike.
  static std::vector<double> default_bounds();

  void observe(double v) noexcept;

  std::uint64_t count() const noexcept { return count_.load(std::memory_order_relaxed); }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  /// Smallest / largest observed value (0 when empty).
  double min() const noexcept;
  double max() const noexcept;
  double mean() const noexcept;
  /// Interpolated quantile, q in [0, 1]; 0 when empty.
  double quantile(double q) const noexcept;

  const std::vector<double>& bounds() const noexcept { return bounds_; }
  std::uint64_t bucket_count(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  /// bounds().size() + 1 (the overflow bucket).
  std::size_t num_buckets() const noexcept { return bounds_.size() + 1; }

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

/// One completed ScopedSpan, kept in the registry's bounded trace ring.
struct SpanRecord {
  std::string name;
  std::uint32_t depth = 0;       ///< nesting level on the recording thread.
  std::uint64_t thread = 0;      ///< hashed std::thread::id.
  std::uint64_t start_ns = 0;    ///< relative to registry creation.
  std::uint64_t duration_ns = 0;
};

struct TelemetryConfig {
  /// false: the registry stays empty -- metric lookups return inert
  /// instances, spans short-circuit before reading the clock, snapshots
  /// are empty.  The instrumented hot paths then cost one null/flag
  /// branch each (the KNN overhead microbench keeps this honest).
  bool enabled = true;
  /// Completed spans retained in the stage-trace ring (oldest evicted).
  std::size_t trace_capacity = 1024;
  /// Zone attribution label.  When non-empty, every exported line --
  /// snapshot header, counters, gauges, histograms, spans -- carries a
  /// `"zone":"<id>"` field, so one JSONL stream concatenating several
  /// registries (taflocd) stays attributable per zone.  Empty (the
  /// library default) leaves the export byte-identical to the unlabeled
  /// format.
  std::string zone;
};

/// Named metric store.  Lookup creates on first use and returns a
/// reference that stays valid for the registry's lifetime (metrics are
/// node-allocated), so callers cache the pointer outside their loops.
/// Metric names follow the `layer.component.op` convention (DESIGN.md
/// section 8); latency histograms carry a `_seconds` suffix.
class MetricRegistry {
 public:
  explicit MetricRegistry(const TelemetryConfig& config = {});
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  bool enabled() const noexcept { return config_.enabled; }
  const TelemetryConfig& config() const noexcept { return config_; }
  /// Zone attribution label ("" = unlabeled library registry).
  const std::string& zone() const noexcept { return config_.zone; }

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// Histogram with default_bounds().
  Histogram& histogram(std::string_view name);
  /// Histogram with explicit bounds; the bounds of an existing name win.
  Histogram& histogram(std::string_view name, std::vector<double> upper_bounds);

  /// Number of registered metrics (0 while disabled).
  std::size_t size() const;

  // -- stage trace (fed by ScopedSpan) --
  void record_span(std::string_view name, std::uint32_t depth, std::uint64_t start_ns,
                   std::uint64_t duration_ns);
  /// Total spans ever recorded (monotonic; the ring only keeps the tail).
  std::uint64_t spans_recorded() const noexcept {
    return spans_recorded_.load(std::memory_order_relaxed);
  }
  /// Spans evicted from the ring by wraparound -- overflow under load
  /// is visible, not silent (exported as `spans_dropped` in snapshots).
  std::uint64_t spans_dropped() const noexcept {
    return spans_dropped_.load(std::memory_order_relaxed);
  }
  /// Retained trace tail, oldest first.
  std::vector<SpanRecord> trace() const;

  /// Nanoseconds of monotonic clock since the registry was created
  /// (the time base of every SpanRecord).
  std::uint64_t now_ns() const noexcept;

  // -- exporters --
  /// Aligned human-readable dump (one metric per line).
  std::string text_dump() const;
  /// JSONL: one self-describing JSON object per line -- a snapshot
  /// header, then every counter/gauge/histogram (sorted by name), then
  /// the retained spans.  Each line parses standalone, so snapshots
  /// diff cleanly across runs.
  std::string snapshot_json() const;
  void snapshot_json(std::ostream& out) const;

  /// Structured point-in-time copy for wire export (kMetricsResponse):
  /// names + values only, no JSON, so the daemon can encode it into a
  /// packet without re-parsing its own snapshot.
  struct HistogramSummary {
    std::string name;
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
  };
  struct Snapshot {
    bool enabled = false;
    std::string zone;
    std::uint64_t uptime_ns = 0;
    std::uint64_t spans_recorded = 0;
    std::uint64_t spans_dropped = 0;
    std::vector<std::pair<std::string, std::uint64_t>> counters;  ///< sorted by name.
    std::vector<std::pair<std::string, double>> gauges;           ///< sorted by name.
    std::vector<HistogramSummary> histograms;                     ///< sorted by name.
  };
  Snapshot snapshot() const;

 private:
  template <class T, class Make>
  T& find_or_create(std::map<std::string, std::unique_ptr<T>, std::less<>>& metrics,
                    std::string_view name, const Make& make);

  TelemetryConfig config_;
  std::uint64_t epoch_ns_;  ///< steady_clock at construction.

  mutable std::mutex mu_;  ///< guards the maps and the trace ring.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;

  std::vector<SpanRecord> trace_;  ///< ring buffer of size <= trace_capacity.
  std::size_t trace_head_ = 0;     ///< next eviction slot once full.
  std::atomic<std::uint64_t> spans_recorded_{0};
  std::atomic<std::uint64_t> spans_dropped_{0};

  // Inert instances handed out while disabled, so callers never branch
  // on registry state and the maps never grow.
  Counter noop_counter_;
  Gauge noop_gauge_;
  std::unique_ptr<Histogram> noop_histogram_;
};

/// Lookup helpers for optional registries: nullptr (or a disabled
/// registry) yields nullptr, so hot paths guard with one pointer test.
Counter* registry_counter(MetricRegistry* registry, std::string_view name);
Gauge* registry_gauge(MetricRegistry* registry, std::string_view name);
Histogram* registry_histogram(MetricRegistry* registry, std::string_view name);

}  // namespace tafloc
