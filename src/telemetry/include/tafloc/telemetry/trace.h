// Request tracing: per-request stage-timing records that cross the
// process boundary (wire -> ControlServer -> Zone -> TafLocSystem ->
// matcher), a bounded lock-free trace ring, and a slow-query log.
//
// Relationship to ScopedSpan (span.h): spans are *ambient* stage
// telemetry -- every call lands in the registry's ring regardless of
// which request caused it.  Traces are *per-request*: a TraceScope is
// opened when a localize request is admitted, stages recorded while it
// is live attach to THAT request, and the completed TraceRecord carries
// the request outcome (confidence, degraded, zone state) next to its
// stage timings.  A stage site instruments once with TraceStage and is
// inert (one thread-local load + branch, no clock read) unless a scope
// is live on the calling thread -- so the library hot paths pay nothing
// when tracing is off or the caller is not the serving thread.
//
// Determinism contract (same as metrics.h): tracing only observes.  No
// serving code may branch on a trace value, so localization results are
// bit-identical with tracing off, sampled, or at 100%.
//
// Concurrency: the daemon serves from one thread, so ring writes are
// single-writer; readers (the same thread in taflocd, arbitrary threads
// in tests) validate a per-slot seqlock and drop slots caught
// mid-write.  The slow log is append-only with a reservation ticket --
// once full it counts drops instead of blocking or evicting.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

namespace tafloc {

class Counter;
class MetricRegistry;

/// Client-settable request identity, carried over the wire.
struct TraceContext {
  /// 0 = unset; the zone assigns its request ordinal + 1 so every trace
  /// line has a stable non-zero id.
  std::uint64_t trace_id = 0;
  /// Client-forced sampling: record this request's trace even when the
  /// zone's periodic sampler would skip it.
  bool sampled = false;
};

/// Stage slots per trace record.  The record is a fixed-size POD so the
/// ring can copy it without allocation; overflow stages are counted in
/// `stages_dropped`, never silently lost.
inline constexpr std::size_t kTraceMaxStages = 16;

struct TraceStageRecord {
  const char* name = nullptr;  ///< string literal at the instrumentation site.
  std::uint32_t depth = 0;     ///< nesting level within the request.
  std::uint64_t start_ns = 0;  ///< relative to the request start.
  std::uint64_t duration_ns = 0;
};

/// One completed request.  Trivially copyable by design (seqlock ring
/// slots are copied while readers race); the zone state is a truncated
/// inline string for the same reason.
struct TraceRecord {
  std::uint64_t trace_id = 0;
  std::uint64_t seq = 0;           ///< per-zone request ordinal (0-based).
  std::uint64_t start_ns = 0;      ///< relative to tracer creation.
  std::uint64_t queue_wait_ns = 0; ///< socket read -> dispatch start.
  std::uint64_t total_ns = 0;      ///< admission -> response ready.
  double confidence = 0.0;
  std::uint32_t links_used = 0;
  std::uint32_t links_total = 0;
  char state[16] = {0};            ///< zone lifecycle state at admission.
  bool served = false;
  bool degraded = false;
  bool sampled = false;            ///< landed in the trace ring.
  bool slow = false;               ///< crossed the slow-query threshold.
  bool fault_injected = false;     ///< artificially delayed (drills).
  std::uint32_t stage_count = 0;
  std::uint32_t stages_dropped = 0;
  std::array<TraceStageRecord, kTraceMaxStages> stages{};

  void set_state(const char* name) noexcept;
  void add_stage(const char* name, std::uint32_t depth, std::uint64_t start_ns_rel,
                 std::uint64_t duration_ns) noexcept;
};

static_assert(std::is_trivially_copyable_v<TraceRecord>,
              "ring slots are copied under a seqlock; the record must stay POD");

/// Bounded lock-free ring of completed trace records.  Single-writer
/// wait-free push (the serving thread); concurrent readers take a
/// best-effort snapshot, skipping any slot whose seqlock shows a write
/// in progress.  Capacity is rounded up to a power of two.
class TraceRing {
 public:
  /// capacity 0 disables the ring (push becomes a no-op).
  explicit TraceRing(std::size_t capacity);

  void push(const TraceRecord& record) noexcept;

  /// Records pushed over the ring's lifetime (monotonic).
  std::uint64_t pushed() const noexcept {
    return head_.load(std::memory_order_relaxed);
  }
  /// Records evicted by wraparound.
  std::uint64_t overwritten() const noexcept;
  std::size_t capacity() const noexcept { return capacity_; }

  /// Retained tail, oldest first, at most `max` newest records.  Slots
  /// caught mid-write are skipped rather than torn.
  std::vector<TraceRecord> snapshot(std::size_t max = static_cast<std::size_t>(-1)) const;

 private:
  struct Slot {
    /// Seqlock: odd while the writer is copying into `record`.
    std::atomic<std::uint64_t> seq{0};
    TraceRecord record;
  };

  std::size_t capacity_ = 0;  ///< power of two (or 0 = disabled).
  std::size_t mask_ = 0;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> head_{0};  ///< next ticket.
};

/// Threshold-triggered full-trace log.  Append-only and bounded: once
/// the capacity is reached further slow requests increment `dropped()`
/// and are discarded -- the serving thread never blocks and earlier
/// evidence is never evicted.
class SlowLog {
 public:
  /// capacity 0 disables the log.
  explicit SlowLog(std::size_t capacity);

  bool append(const TraceRecord& record) noexcept;

  std::size_t capacity() const noexcept { return capacity_; }
  /// Entries retained (<= capacity).
  std::size_t size() const noexcept;
  /// Slow requests discarded because the log was full.
  std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }
  /// Retained entries, oldest first.
  std::vector<TraceRecord> entries() const;

 private:
  std::size_t capacity_ = 0;
  std::unique_ptr<TraceRecord[]> entries_;
  std::atomic<std::uint64_t> reserved_{0};   ///< append tickets handed out.
  std::atomic<std::uint64_t> committed_{0};  ///< entries fully written.
  std::atomic<std::uint64_t> dropped_{0};
};

struct TracerConfig {
  /// Completed sampled traces retained (rounded up to a power of two;
  /// 0 disables the ring).
  std::size_t ring_capacity = 256;
  /// Slow-query log entries retained (0 disables the slow log).
  std::size_t slow_log_capacity = 64;
  /// Periodic sampler: 0 = off, 1 = every request, N = every Nth.
  /// Client-forced TraceContext::sampled is honored regardless.
  std::uint64_t sample_every = 0;
  /// Requests slower than this land in the slow log (0 = off).
  double slow_threshold_ms = 0.0;
  /// Zone attribution label for exported JSONL lines.
  std::string zone;
};

/// Per-zone trace pipeline: sampling decision, record routing (ring +
/// slow log), accounting counters, JSONL export.
class Tracer {
 public:
  explicit Tracer(const TracerConfig& config = {}, MetricRegistry* metrics = nullptr);
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  const TracerConfig& config() const noexcept { return config_; }
  /// True when any sink can fire (periodic sampling, slow log, or a
  /// client-forced sample with a live ring).
  bool active() const noexcept {
    return config_.sample_every > 0 || slow_threshold_ns_ > 0 || ring_.capacity() > 0;
  }
  /// True when stages are worth capturing for this request.
  bool wants_stages(bool sampled) const noexcept {
    return sampled || slow_threshold_ns_ > 0;
  }
  std::uint64_t slow_threshold_ns() const noexcept { return slow_threshold_ns_; }

  /// Hands out the request ordinal (also the periodic-sampling phase).
  std::uint64_t begin_request() noexcept {
    return next_seq_.fetch_add(1, std::memory_order_relaxed);
  }
  bool should_sample(const TraceContext& ctx, std::uint64_t seq) const noexcept {
    if (ctx.sampled && ring_.capacity() > 0) return true;
    return config_.sample_every > 0 && seq % config_.sample_every == 0;
  }

  /// Nanoseconds since the tracer was created (the time base of
  /// TraceRecord::start_ns).
  std::uint64_t now_ns() const noexcept;

  /// Routes a completed record: ring when sampled, slow log when past
  /// the threshold (sets record.slow), accounting counters always.
  void finish(TraceRecord& record) noexcept;

  const TraceRing& ring() const noexcept { return ring_; }
  const SlowLog& slow_log() const noexcept { return slow_log_; }
  std::uint64_t requests() const noexcept {
    return next_seq_.load(std::memory_order_relaxed);
  }

  /// One JSONL object (newline-terminated) per record:
  ///   {"type":"trace","zone":...,"trace_id":...,"stages":[...],...}
  static std::string record_json(const TraceRecord& record, const std::string& zone);
  /// Newest `max` sampled traces as JSONL, oldest first.
  std::string ring_json(std::size_t max = static_cast<std::size_t>(-1)) const;
  /// Slow-log entries as JSONL, oldest first, plus nothing else (the
  /// drop counter is exported through the metric registry).
  std::string slow_json() const;

 private:
  TracerConfig config_;
  std::uint64_t slow_threshold_ns_ = 0;
  std::uint64_t epoch_ns_ = 0;
  TraceRing ring_;
  SlowLog slow_log_;
  std::atomic<std::uint64_t> next_seq_{0};

  // Cached accounting handles (null when metrics are absent/disabled).
  Counter* requests_counter_ = nullptr;
  Counter* sampled_counter_ = nullptr;
  Counter* slow_counter_ = nullptr;
  Counter* slow_dropped_counter_ = nullptr;
};

namespace trace_detail {

/// The trace being built on this thread, installed by TraceScope.
struct ActiveTrace {
  TraceRecord* record = nullptr;
  std::uint64_t request_start_abs_ns = 0;  ///< absolute steady-clock ns.
  std::uint32_t depth = 0;
};

ActiveTrace* active() noexcept;
void set_active(ActiveTrace* trace) noexcept;
std::uint64_t steady_ns() noexcept;

}  // namespace trace_detail

/// RAII request scope: opens a TraceRecord, installs it as the
/// thread's active trace (when stages are wanted), and on destruction
/// stamps the total latency and hands the record to the tracer.
class TraceScope {
 public:
  TraceScope(Tracer& tracer, const TraceContext& ctx, std::uint64_t queue_wait_ns) noexcept;
  ~TraceScope();

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  /// Outcome fields the caller fills before the scope closes.
  TraceRecord& record() noexcept { return record_; }
  bool sampled() const noexcept { return record_.sampled; }
  /// True when stages recorded on this thread attach to this request.
  bool capturing() const noexcept { return installed_; }

 private:
  Tracer& tracer_;
  TraceRecord record_{};
  trace_detail::ActiveTrace active_{};
  trace_detail::ActiveTrace* previous_ = nullptr;
  bool installed_ = false;
  bool live_ = false;  ///< false when the tracer is fully inactive.
};

/// RAII stage timer for the request trace.  One thread-local load and a
/// branch when no trace is being captured on this thread -- safe to
/// leave in library hot paths.
class TraceStage {
 public:
  /// `name` must be a string literal (the record stores the pointer).
  explicit TraceStage(const char* name) noexcept {
    active_ = trace_detail::active();
    if (active_ == nullptr) return;
    name_ = name;
    depth_ = active_->depth++;
    start_abs_ns_ = trace_detail::steady_ns();
  }
  ~TraceStage() {
    if (active_ == nullptr) return;
    --active_->depth;
    const std::uint64_t end = trace_detail::steady_ns();
    active_->record->add_stage(name_, depth_,
                               start_abs_ns_ - active_->request_start_abs_ns,
                               end - start_abs_ns_);
  }

  TraceStage(const TraceStage&) = delete;
  TraceStage& operator=(const TraceStage&) = delete;

 private:
  trace_detail::ActiveTrace* active_ = nullptr;
  const char* name_ = nullptr;
  std::uint64_t start_abs_ns_ = 0;
  std::uint32_t depth_ = 0;
};

}  // namespace tafloc
