#include "tafloc/rf/geometry.h"

#include <algorithm>

namespace tafloc {

double distance(Point2 a, Point2 b) noexcept {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

double norm(Point2 p) noexcept { return std::sqrt(p.x * p.x + p.y * p.y); }

Point2 midpoint(Point2 a, Point2 b) noexcept { return {(a.x + b.x) * 0.5, (a.y + b.y) * 0.5}; }

double point_segment_distance(Point2 p, const Segment& s) noexcept {
  const Point2 d = s.b - s.a;
  const double len_sq = d.x * d.x + d.y * d.y;
  if (len_sq == 0.0) return distance(p, s.a);
  double t = ((p.x - s.a.x) * d.x + (p.y - s.a.y) * d.y) / len_sq;
  t = std::clamp(t, 0.0, 1.0);
  return distance(p, {s.a.x + t * d.x, s.a.y + t * d.y});
}

double excess_path_length(Point2 p, const Segment& link) noexcept {
  return distance(p, link.a) + distance(p, link.b) - link.length();
}

bool within_link_ellipse(Point2 p, const Segment& link, double lambda) noexcept {
  return excess_path_length(p, link) < lambda;
}

}  // namespace tafloc
