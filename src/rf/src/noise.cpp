#include "tafloc/rf/noise.h"

#include "tafloc/util/check.h"
#include "tafloc/util/quantize.h"

namespace tafloc {

NoiseModel::NoiseModel(const NoiseConfig& config) : config_(config) {
  TAFLOC_CHECK_ARG(config.stddev_db >= 0.0, "noise stddev must be non-negative");
  TAFLOC_CHECK_ARG(config.quantization_step_db >= 0.0, "quantization step must be non-negative");
}

double NoiseModel::quantize(double rss_dbm) const noexcept {
  // Shared library-wide rounding convention (ties away from zero) --
  // see util/quantize.h for why this must match the fingerprint tier.
  return quantize_to_step(rss_dbm, config_.quantization_step_db);
}

double NoiseModel::corrupt(double rss_dbm, Rng& rng) const {
  return quantize(rss_dbm + rng.normal(0.0, config_.stddev_db));
}

}  // namespace tafloc
