#include "tafloc/rf/noise.h"

#include <cmath>

#include "tafloc/util/check.h"

namespace tafloc {

NoiseModel::NoiseModel(const NoiseConfig& config) : config_(config) {
  TAFLOC_CHECK_ARG(config.stddev_db >= 0.0, "noise stddev must be non-negative");
  TAFLOC_CHECK_ARG(config.quantization_step_db >= 0.0, "quantization step must be non-negative");
}

double NoiseModel::quantize(double rss_dbm) const noexcept {
  if (config_.quantization_step_db == 0.0) return rss_dbm;
  return std::round(rss_dbm / config_.quantization_step_db) * config_.quantization_step_db;
}

double NoiseModel::corrupt(double rss_dbm, Rng& rng) const {
  return quantize(rss_dbm + rng.normal(0.0, config_.stddev_db));
}

}  // namespace tafloc
