#include "tafloc/rf/pathloss.h"

#include <cmath>

#include "tafloc/util/check.h"

namespace tafloc {

LogDistancePathLoss::LogDistancePathLoss(const PathLossConfig& config) : config_(config) {
  TAFLOC_CHECK_ARG(config.reference_distance_m > 0.0, "reference distance must be positive");
  TAFLOC_CHECK_ARG(config.path_loss_exponent > 0.0, "path loss exponent must be positive");
}

double LogDistancePathLoss::rss_dbm(double distance_m) const {
  TAFLOC_CHECK_ARG(distance_m > 0.0, "link distance must be positive");
  // Clamp to the reference distance: the model is not meaningful below d0.
  const double d = std::max(distance_m, config_.reference_distance_m);
  return config_.tx_power_dbm - config_.reference_loss_db -
         10.0 * config_.path_loss_exponent * std::log10(d / config_.reference_distance_m);
}

}  // namespace tafloc
