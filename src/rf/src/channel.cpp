#include "tafloc/rf/channel.h"

#include <cmath>
#include <numbers>

#include "tafloc/util/check.h"

namespace tafloc {

Channel::Channel(std::vector<Segment> links, const ChannelConfig& config, std::uint64_t seed)
    : links_(std::move(links)),
      config_(config),
      path_loss_(config.path_loss),
      shadowing_(config.shadowing),
      drift_(links_.empty() ? 1 : links_.size(), config.drift, seed),
      noise_(config.noise) {
  TAFLOC_CHECK_ARG(!links_.empty(), "a channel needs at least one link");
  for (const Segment& l : links_)
    TAFLOC_CHECK_ARG(l.length() > 0.0, "links must have positive length");
  TAFLOC_CHECK_ARG(config.perturbation.at_45_days_db >= 0.0,
                   "perturbation amplitude must be non-negative");
  TAFLOC_CHECK_ARG(config.perturbation.spatial_period_m > 0.0,
                   "perturbation period must be positive");

  // Same power-law exponent as the ambient drift: both stem from the
  // same slow environmental processes.
  perturbation_alpha_ = std::log(config.drift.magnitude_at_45_days_db /
                                 config.drift.magnitude_at_5_days_db) /
                        std::log(45.0 / 5.0);
  TAFLOC_CHECK_ARG(config.link_sensitivity_spread >= 0.0 && config.link_sensitivity_spread < 1.0,
                   "link sensitivity spread must be in [0, 1)");
  TAFLOC_CHECK_ARG(config.static_ripple_db >= 0.0, "static ripple must be non-negative");
  TAFLOC_CHECK_ARG(config.multipath_ghost_db >= 0.0, "ghost amplitude must be non-negative");

  Rng rng(seed ^ 0x5eedf1e1dULL);
  harmonics_.reserve(links_.size());
  ripple_harmonics_.reserve(links_.size());
  sensitivity_.reserve(links_.size());
  for (std::size_t i = 0; i < links_.size(); ++i) {
    const double angle = rng.uniform(0.0, 2.0 * std::numbers::pi);
    harmonics_.push_back(Harmonic{std::cos(angle), std::sin(angle),
                                  rng.uniform(0.0, 2.0 * std::numbers::pi)});
    const double ripple_angle = rng.uniform(0.0, 2.0 * std::numbers::pi);
    ripple_harmonics_.push_back(Harmonic{std::cos(ripple_angle), std::sin(ripple_angle),
                                         rng.uniform(0.0, 2.0 * std::numbers::pi)});
    const double ghost_angle = rng.uniform(0.0, 2.0 * std::numbers::pi);
    ghost_harmonics_.push_back(Harmonic{std::cos(ghost_angle), std::sin(ghost_angle),
                                        rng.uniform(0.0, 2.0 * std::numbers::pi)});
    sensitivity_.push_back(
        rng.uniform(1.0 - config.link_sensitivity_spread, 1.0 + config.link_sensitivity_spread));
  }
}

double Channel::perturbation_db(std::size_t link, Point2 target, double t_days) const {
  TAFLOC_CHECK_BOUNDS(link, links_.size(), "channel link index");
  TAFLOC_CHECK_ARG(t_days >= 0.0, "elapsed time must be non-negative");
  if (config_.perturbation.at_45_days_db == 0.0 || t_days == 0.0) return 0.0;
  const double amp =
      config_.perturbation.at_45_days_db * std::pow(t_days / 45.0, perturbation_alpha_);
  const Harmonic& h = harmonics_[link];
  const double k = 2.0 * std::numbers::pi / config_.perturbation.spatial_period_m;
  return amp * std::sin(k * (h.ux * target.x + h.uy * target.y) + h.phase);
}

const Segment& Channel::link(std::size_t i) const {
  TAFLOC_CHECK_BOUNDS(i, links_.size(), "channel link index");
  return links_[i];
}

double Channel::expected_rss(std::size_t link, std::optional<Point2> target,
                             double t_days) const {
  TAFLOC_CHECK_BOUNDS(link, links_.size(), "channel link index");
  const Segment& seg = links_[link];
  double rss = path_loss_.rss_dbm(seg) + drift_.ambient_offset_db(link, t_days);
  if (target) rss -= target_response_db(link, *target, t_days);
  return rss;
}

double Channel::expected_rss_multi(std::size_t link, std::span<const Point2> targets,
                                   double t_days) const {
  TAFLOC_CHECK_BOUNDS(link, links_.size(), "channel link index");
  double rss = path_loss_.rss_dbm(links_[link]) + drift_.ambient_offset_db(link, t_days);
  for (const Point2& target : targets) rss -= target_response_db(link, target, t_days);
  return rss;
}

double Channel::measure_multi(std::size_t link, std::span<const Point2> targets, double t_days,
                              Rng& rng) const {
  return noise_.corrupt(expected_rss_multi(link, targets, t_days), rng);
}

double Channel::target_response_db(std::size_t link, Point2 target, double t_days) const {
  TAFLOC_CHECK_BOUNDS(link, links_.size(), "channel link index");
  const Segment& seg = links_[link];
  const double geometric = shadowing_.attenuation_db(seg, target);
  // Coupling in [0, 1]: how strongly this target position interacts
  // with the link.  Multipath ripple and the temporal perturbation act
  // only through blocked/detoured paths, so both are gated by it.
  const double coupling = std::min(geometric / shadowing_.config().max_attenuation_db, 1.0);

  const double k = 2.0 * std::numbers::pi / config_.perturbation.spatial_period_m;
  const Harmonic& r = ripple_harmonics_[link];
  const double ripple = config_.static_ripple_db *
                        std::sin(k * (r.ux * target.x + r.uy * target.y) + r.phase);

  // Ghost field uses a shorter wavelength (multipath fine structure).
  const Harmonic& g = ghost_harmonics_[link];
  const double kg = 1.7 * k;
  const double ghost = config_.multipath_ghost_db *
                       std::sin(kg * (g.ux * target.x + g.uy * target.y) + g.phase);

  // The temporal perturbation reshuffles the multipath sum everywhere,
  // somewhat more strongly for links the target couples to.
  const double perturb_gate = 0.4 + 0.6 * coupling;

  return drift_.attenuation_scale(link, t_days) * sensitivity_[link] * geometric +
         coupling * ripple + ghost -
         perturb_gate * perturbation_db(link, target, t_days);
}

double Channel::measure(std::size_t link, std::optional<Point2> target, double t_days,
                        Rng& rng) const {
  return noise_.corrupt(expected_rss(link, target, t_days), rng);
}

double Channel::measure_mean(std::size_t link, std::optional<Point2> target, double t_days,
                             std::size_t samples, Rng& rng) const {
  TAFLOC_CHECK_ARG(samples > 0, "measure_mean needs at least one sample");
  double sum = 0.0;
  for (std::size_t s = 0; s < samples; ++s) sum += measure(link, target, t_days, rng);
  return sum / static_cast<double>(samples);
}

}  // namespace tafloc
