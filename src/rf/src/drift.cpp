#include "tafloc/rf/drift.h"

#include <algorithm>
#include <cmath>

#include "tafloc/util/check.h"
#include "tafloc/util/rng.h"

namespace tafloc {

TemporalDriftModel::TemporalDriftModel(std::size_t num_links, const DriftConfig& config,
                                       std::uint64_t seed)
    : config_(config) {
  TAFLOC_CHECK_ARG(num_links > 0, "drift model needs at least one link");
  TAFLOC_CHECK_ARG(config.magnitude_at_5_days_db > 0.0, "5-day anchor must be positive");
  TAFLOC_CHECK_ARG(config.magnitude_at_45_days_db >= config.magnitude_at_5_days_db,
                   "drift magnitude must be non-decreasing between the anchors");
  TAFLOC_CHECK_ARG(config.shared_fraction >= 0.0 && config.shared_fraction <= 1.0,
                   "shared fraction must be in [0, 1]");
  TAFLOC_CHECK_ARG(config.link_scale_stddev >= 0.0, "link scale stddev must be non-negative");
  TAFLOC_CHECK_ARG(config.attenuation_drift_fraction >= 0.0 &&
                       config.attenuation_drift_fraction < 1.0,
                   "attenuation drift fraction must be in [0, 1)");
  TAFLOC_CHECK_ARG(config.horizon_days > 0.0, "horizon must be positive");

  // g(t) = m5 * (t/5)^alpha with g(45) = m45  =>  alpha = ln(m45/m5)/ln(9).
  alpha_ = std::log(config.magnitude_at_45_days_db / config.magnitude_at_5_days_db) /
           std::log(45.0 / 5.0);

  Rng rng(seed);
  const double shared_sign = rng.bernoulli(0.5) ? 1.0 : -1.0;
  const double shared_mag = std::abs(rng.normal(1.0, config.link_scale_stddev));
  const double shared = shared_sign * shared_mag;

  directions_.resize(num_links);
  attenuation_directions_.resize(num_links);
  double sum_abs = 0.0;
  for (std::size_t i = 0; i < num_links; ++i) {
    const double own_sign = rng.bernoulli(0.5) ? 1.0 : -1.0;
    const double own = own_sign * std::abs(rng.normal(1.0, config.link_scale_stddev));
    directions_[i] = config.shared_fraction * shared + (1.0 - config.shared_fraction) * own;
    sum_abs += std::abs(directions_[i]);
    attenuation_directions_[i] = rng.uniform(-1.0, 1.0);
  }
  // Normalize so mean_i |d_i| == 1: the model's mean drift magnitude is
  // then exactly g(t).
  const double mean_abs = sum_abs / static_cast<double>(num_links);
  if (mean_abs > 0.0) {
    for (double& d : directions_) d /= mean_abs;
  } else {
    // Degenerate draw (all zero): fall back to alternating unit drift.
    for (std::size_t i = 0; i < num_links; ++i) directions_[i] = (i % 2 == 0) ? 1.0 : -1.0;
  }
}

double TemporalDriftModel::expected_magnitude_db(double t_days) const {
  TAFLOC_CHECK_ARG(t_days >= 0.0, "elapsed time must be non-negative");
  if (t_days == 0.0) return 0.0;
  return config_.magnitude_at_5_days_db * std::pow(t_days / 5.0, alpha_);
}

double TemporalDriftModel::ambient_offset_db(std::size_t link, double t_days) const {
  TAFLOC_CHECK_BOUNDS(link, directions_.size(), "drift link index");
  return directions_[link] * expected_magnitude_db(t_days);
}

double TemporalDriftModel::attenuation_scale(std::size_t link, double t_days) const {
  TAFLOC_CHECK_BOUNDS(link, attenuation_directions_.size(), "drift link index");
  TAFLOC_CHECK_ARG(t_days >= 0.0, "elapsed time must be non-negative");
  const double wander = config_.attenuation_drift_fraction *
                        std::min(t_days / config_.horizon_days, 2.0) *
                        attenuation_directions_[link];
  return std::max(1.0 + wander, 0.3);
}

}  // namespace tafloc
