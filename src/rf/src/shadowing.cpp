#include "tafloc/rf/shadowing.h"

#include <cmath>

#include "tafloc/util/check.h"

namespace tafloc {

TargetShadowingModel::TargetShadowingModel(const ShadowingConfig& config) : config_(config) {
  TAFLOC_CHECK_ARG(config.max_attenuation_db >= 0.0, "max attenuation must be non-negative");
  TAFLOC_CHECK_ARG(config.decay_m > 0.0, "decay length must be positive");
  TAFLOC_CHECK_ARG(config.los_block_db >= 0.0, "LoS block loss must be non-negative");
  TAFLOC_CHECK_ARG(config.body_radius_m >= 0.0, "body radius must be non-negative");
}

bool TargetShadowingModel::blocks_los(const Segment& link, Point2 target) const noexcept {
  return point_segment_distance(target, link) <= config_.body_radius_m;
}

double TargetShadowingModel::attenuation_db(const Segment& link, Point2 target) const noexcept {
  const double excess = excess_path_length(target, link);
  double att = config_.max_attenuation_db * std::exp(-excess / config_.decay_m);
  if (blocks_los(link, target)) att += config_.los_block_db;
  return att;
}

}  // namespace tafloc
