// Temporal RSS drift: why fingerprints expire.
//
// The paper measures that, with *no* change in the environment, RSS
// drifts ~2.5 dBm after 5 days and ~6 dBm after 45 days (temperature /
// humidity).  We model the drift of link i at elapsed time t (days) as
//
//   ambient_offset(i, t) = d_i * g(t),      g(t) = m5 * (t / 5)^alpha
//
// with alpha chosen so that g(45) = m45 -- a power law through the
// paper's two anchor points -- and d_i a per-link signed direction that
// mixes one shared component (drift is strongly correlated across links
// because it has a common physical cause) with a per-link component.
// The directions are normalized so that mean_i |d_i| == 1 exactly,
// making the model's average drift magnitude match g(t) by
// construction.
//
// A second, slower effect makes the *target-induced attenuation* scale
// wander a few tens of percent over the horizon: this part is NOT a
// per-link row offset, so it cannot be fully recovered from fresh
// reference columns alone -- it is what makes reconstruction error grow
// with elapsed time (paper Fig. 3) and what the continuity / similarity
// priors have to absorb.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace tafloc {

/// Parameters of the drift model.
struct DriftConfig {
  double magnitude_at_5_days_db = 2.5;   ///< paper's 5-day anchor.
  double magnitude_at_45_days_db = 6.0;  ///< paper's 45-day anchor.
  double link_scale_stddev = 0.25;       ///< spread of |d_i| before normalization.
  double shared_fraction = 0.6;          ///< weight of the across-link common component.
  double attenuation_drift_fraction = 0.45; ///< attenuation scale drift at the horizon.
  double horizon_days = 90.0;            ///< evaluation horizon (paper: 3 months).
};

/// TemporalDriftModel -- deterministic given (num_links, config, seed).
class TemporalDriftModel {
 public:
  TemporalDriftModel(std::size_t num_links, const DriftConfig& config, std::uint64_t seed);

  /// Additive drift (dBm) of link `link`'s ambient RSS after t_days >= 0.
  double ambient_offset_db(std::size_t link, double t_days) const;

  /// Multiplicative factor applied to the target attenuation of `link`
  /// after t_days (1.0 at t = 0; always >= 0.3).
  double attenuation_scale(std::size_t link, double t_days) const;

  /// Calibrated mean drift magnitude g(t); equals the config anchors at
  /// 5 and 45 days.
  double expected_magnitude_db(double t_days) const;

  std::size_t num_links() const noexcept { return directions_.size(); }
  const DriftConfig& config() const noexcept { return config_; }

 private:
  DriftConfig config_;
  double alpha_;                    ///< power-law exponent through the anchors.
  std::vector<double> directions_;  ///< d_i, mean |d_i| == 1.
  std::vector<double> attenuation_directions_;  ///< v_i in [-1, 1].
};

}  // namespace tafloc
