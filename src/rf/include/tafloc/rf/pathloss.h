// Log-distance path-loss model: the ambient (target-free) RSS of a link.
//
//   RSS(d) = P_tx - PL(d0) - 10 eta log10(d / d0)
//
// Default parameters are typical for 2.4 GHz indoor WiFi at the power
// level of the paper's Atheros AR9331 nodes.
#pragma once

#include "tafloc/rf/geometry.h"

namespace tafloc {

/// Parameters of the log-distance model.
struct PathLossConfig {
  double tx_power_dbm = 15.0;        ///< transmit power (AR9331-class radio).
  double reference_distance_m = 1.0; ///< d0 in the model.
  double reference_loss_db = 40.0;   ///< free-space-ish loss at d0, 2.4 GHz.
  double path_loss_exponent = 2.5;   ///< indoor LoS-dominated exponent eta.
};

/// LogDistancePathLoss -- stateless once configured; validates its
/// parameters at construction.
class LogDistancePathLoss {
 public:
  explicit LogDistancePathLoss(const PathLossConfig& config = {});

  /// Ambient RSS in dBm at link length `distance_m` (> 0).
  double rss_dbm(double distance_m) const;

  /// Ambient RSS for a link segment.
  double rss_dbm(const Segment& link) const { return rss_dbm(link.length()); }

  const PathLossConfig& config() const noexcept { return config_; }

 private:
  PathLossConfig config_;
};

}  // namespace tafloc
