// Target-induced shadowing: how much a person standing at a point
// attenuates a link's RSS.
//
// We use the exponential excess-path-length model standard in the DfL
// literature (and implicitly assumed by the paper's three fingerprint
// properties):
//
//   attenuation(p) = phi * exp(-excess_path_length(p) / decay_m)
//                    [+ los_block_db when p is within body_radius of the
//                     direct path]
//
// This generates exactly the structure TafLoc exploits: a clear RSS
// decrease when the direct path is blocked ("largely-distorted"
// entries), continuous variation as the target moves along a link, and
// similar values on adjacent links for the same target position.
#pragma once

#include "tafloc/rf/geometry.h"

namespace tafloc {

/// Parameters of the shadowing model.
struct ShadowingConfig {
  double max_attenuation_db = 8.0; ///< phi: attenuation with target on the LoS.
  double decay_m = 0.18;           ///< spatial decay of the detour ellipse.
  double los_block_db = 3.0;       ///< extra body-blockage loss on the LoS.
  double body_radius_m = 0.25;     ///< torso radius for the LoS block test.
};

/// TargetShadowingModel -- stateless once configured.
class TargetShadowingModel {
 public:
  explicit TargetShadowingModel(const ShadowingConfig& config = {});

  /// Attenuation (dB, >= 0) caused by a target at `target` on `link`.
  double attenuation_db(const Segment& link, Point2 target) const noexcept;

  /// True if the target body intersects the direct path of the link.
  bool blocks_los(const Segment& link, Point2 target) const noexcept;

  const ShadowingConfig& config() const noexcept { return config_; }

 private:
  ShadowingConfig config_;
};

}  // namespace tafloc
