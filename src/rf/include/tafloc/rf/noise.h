// Measurement noise: fast per-sample RSS fluctuation.
//
// The paper states measurement noise is "usually within 1~4 dBm"; we
// default to a Gaussian with sigma = 1.2 dB (so ~99% of samples fall
// within +/- 3.6 dB) and optional quantization to the integer-dBm
// reporting granularity of commodity WiFi chipsets.
#pragma once

#include "tafloc/util/rng.h"

namespace tafloc {

/// Parameters of the noise model.
struct NoiseConfig {
  double stddev_db = 1.2;          ///< Gaussian sigma of one RSS sample.
  double quantization_step_db = 0.0; ///< 0 disables quantization; 1.0 = integer dBm.
};

/// NoiseModel -- draws noise from a caller-supplied Rng (no hidden state).
class NoiseModel {
 public:
  explicit NoiseModel(const NoiseConfig& config = {});

  /// One noisy observation of the true value `rss_dbm`.
  double corrupt(double rss_dbm, Rng& rng) const;

  /// Quantize a value to the configured step (identity when step == 0).
  /// Ties round away from zero -- the library-wide convention shared
  /// with the fingerprint scan tier (util/quantize.h), so quantized
  /// readings re-quantize stably instead of drifting one LSB.
  double quantize(double rss_dbm) const noexcept;

  const NoiseConfig& config() const noexcept { return config_; }

 private:
  NoiseConfig config_;
};

}  // namespace tafloc
