// 2-D geometry primitives for link / target layouts.
//
// All coordinates are in metres in the monitoring-area frame (origin at
// the south-west corner, x east, y north), matching the paper's Fig. 2
// room sketch.
#pragma once

#include <cmath>

namespace tafloc {

/// A point (or displacement) in the plane.
struct Point2 {
  double x = 0.0;
  double y = 0.0;

  friend Point2 operator+(Point2 a, Point2 b) noexcept { return {a.x + b.x, a.y + b.y}; }
  friend Point2 operator-(Point2 a, Point2 b) noexcept { return {a.x - b.x, a.y - b.y}; }
  friend Point2 operator*(Point2 a, double s) noexcept { return {a.x * s, a.y * s}; }
  friend Point2 operator*(double s, Point2 a) noexcept { return a * s; }
  friend bool operator==(Point2 a, Point2 b) noexcept { return a.x == b.x && a.y == b.y; }
};

/// Euclidean distance between two points.
double distance(Point2 a, Point2 b) noexcept;

/// Euclidean norm of a displacement.
double norm(Point2 p) noexcept;

/// Midpoint of the segment ab.
Point2 midpoint(Point2 a, Point2 b) noexcept;

/// A line segment (used for radio links: a = transmitter, b = receiver).
struct Segment {
  Point2 a;
  Point2 b;

  /// Segment length |ab|.
  double length() const noexcept { return distance(a, b); }
};

/// Shortest distance from point p to the segment (not the infinite line).
double point_segment_distance(Point2 p, const Segment& s) noexcept;

/// Excess path length of the reflected/diffracted path through p:
/// |ap| + |pb| - |ab|.  Zero exactly on the segment, grows with the
/// ellipse of constant detour around the link -- the standard DfL
/// shadowing coordinate (Wilson & Patwari 2010).
double excess_path_length(Point2 p, const Segment& link) noexcept;

/// True if p lies inside the ellipse of excess path length `lambda`
/// around the link (the RTI weight-model membership test).
bool within_link_ellipse(Point2 p, const Segment& link, double lambda) noexcept;

}  // namespace tafloc
