// Channel -- the composed RF simulator: path loss + target shadowing +
// temporal drift + measurement noise over a fixed set of links.
//
// This is the hardware substitute for the paper's Atheros AR9331
// testbed (see DESIGN.md, substitution table).  Everything downstream
// (fingerprint surveys, real-time measurements, all benches) observes
// RSS exclusively through this class.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "tafloc/rf/drift.h"
#include "tafloc/rf/geometry.h"
#include "tafloc/rf/noise.h"
#include "tafloc/rf/pathloss.h"
#include "tafloc/rf/shadowing.h"
#include "tafloc/util/rng.h"

namespace tafloc {

/// Slow environmental change that is NOT a per-link offset: a smooth
/// spatial perturbation of the *target-induced* RSS that grows over
/// time (furniture moves, humidity changes the multipath structure a
/// blocked link sees).  This component is exactly what the LRR
/// correlation matrix cannot track -- it is the reason reconstruction
/// error grows with elapsed time (paper Fig. 3) and what the
/// continuity/similarity priors have to absorb.  Modeled per link as a
/// low-order harmonic field over the target position whose amplitude
/// follows the drift power law.
struct PerturbationConfig {
  double at_45_days_db = 3.5;     ///< field amplitude after 45 days.
  double spatial_period_m = 3.0;  ///< wavelength of the harmonic field.
};

/// Aggregated configuration of all channel components.
struct ChannelConfig {
  PathLossConfig path_loss;
  ShadowingConfig shadowing;
  DriftConfig drift;
  NoiseConfig noise;
  PerturbationConfig perturbation;
  /// Per-link sensitivity spread: link i's target attenuation is scaled
  /// by s_i ~ U(1 - spread, 1 + spread).  Antenna patterns, node
  /// placement and chipset calibration make real links respond
  /// unequally; fingerprints learn s_i implicitly, a geometric weight
  /// model (RTI) cannot.
  double link_sensitivity_spread = 0.3;
  /// Static multipath ripple: a time-invariant smooth spatial field per
  /// link added to the target response (amplitude in dB, applied with
  /// the same coupling factor as the perturbation).  This is the
  /// static multipath structure that makes measured fingerprints richer
  /// than any geometric model -- the reason fingerprint-based DfL
  /// out-localizes model-based imaging.
  double static_ripple_db = 1.2;
  /// Multipath ghost response: a body anywhere in the room perturbs the
  /// multipath sum of EVERY link a little, including links whose direct
  /// path is nowhere near the target ("ghost" responses, the documented
  /// failure mode of geometric imaging).  Static smooth field per link,
  /// NOT gated by LoS coupling.
  double multipath_ghost_db = 3.0;
};

/// Channel over a fixed link set.  Deterministic given (links, config,
/// seed); noise draws come from caller-provided Rngs so concurrent
/// consumers stay reproducible.
class Channel {
 public:
  /// `links` must be non-empty; each link must have positive length.
  Channel(std::vector<Segment> links, const ChannelConfig& config, std::uint64_t seed);

  std::size_t num_links() const noexcept { return links_.size(); }
  const Segment& link(std::size_t i) const;
  const std::vector<Segment>& links() const noexcept { return links_; }

  /// Noise-free expected RSS of `link` at elapsed time `t_days`, with an
  /// optional device-free target present at `target`.
  double expected_rss(std::size_t link, std::optional<Point2> target, double t_days) const;

  /// Noise-free expected RSS with SEVERAL device-free targets present
  /// (their responses add in dB -- a good approximation for separated
  /// bodies).  An empty span equals the ambient RSS.
  double expected_rss_multi(std::size_t link, std::span<const Point2> targets,
                            double t_days) const;

  /// One noisy measurement.
  double measure(std::size_t link, std::optional<Point2> target, double t_days, Rng& rng) const;

  /// One noisy measurement with several targets present.
  double measure_multi(std::size_t link, std::span<const Point2> targets, double t_days,
                       Rng& rng) const;

  /// Mean of `samples` noisy measurements (the paper's survey procedure
  /// averages 100 one-per-second samples per grid).
  double measure_mean(std::size_t link, std::optional<Point2> target, double t_days,
                      std::size_t samples, Rng& rng) const;

  /// The perturbation-field contribution for a target at `target` on
  /// `link` at time t_days (diagnostic; already included in
  /// expected_rss when a target is present).
  double perturbation_db(std::size_t link, Point2 target, double t_days) const;

  /// The full target response (attenuation + ripple + perturbation, in
  /// dB of RSS decrease) of `link` for a target at `target`.
  double target_response_db(std::size_t link, Point2 target, double t_days) const;

  const ChannelConfig& config() const noexcept { return config_; }
  const TemporalDriftModel& drift() const noexcept { return drift_; }
  const TargetShadowingModel& shadowing() const noexcept { return shadowing_; }
  const LogDistancePathLoss& path_loss() const noexcept { return path_loss_; }

 private:
  std::vector<Segment> links_;
  ChannelConfig config_;
  LogDistancePathLoss path_loss_;
  TargetShadowingModel shadowing_;
  TemporalDriftModel drift_;
  NoiseModel noise_;
  /// Per-link harmonic field parameters (u, v, phase).
  struct Harmonic {
    double ux, uy, phase;
  };
  std::vector<Harmonic> harmonics_;         ///< time-growing perturbation fields.
  std::vector<Harmonic> ripple_harmonics_;  ///< static multipath ripple fields.
  std::vector<Harmonic> ghost_harmonics_;   ///< non-local multipath ghost fields.
  std::vector<double> sensitivity_;         ///< per-link s_i.
  double perturbation_alpha_;  ///< power-law exponent (shared with drift anchors).
};

}  // namespace tafloc
