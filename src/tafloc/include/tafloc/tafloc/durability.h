// Zone durability -- the types shared by TafLocSystem's snapshot/WAL
// commit path and the UpdateScheduler's ambient write-ahead logging.
//
// Persistence model (DESIGN.md section 10):
//
//   snapshot  = full zone state (fingerprint database + link health +
//               LRR correlation + reference set + distortion mask +
//               scheduler accumulators), committed atomically into two
//               alternating generations (storage/snapshot.h);
//   WAL       = the cheap mutations since the last snapshot: ambient
//               scheduler samples, health-driving query readings, and
//               the raw inputs of fingerprint updates (storage/wal.h).
//
// Recovery = newest valid snapshot + in-order replay of every intact
// WAL record with a sequence number the snapshot does not already
// cover.  Updates are replayed by re-running the (deterministic)
// LoLi-IR reconstruction on the logged inputs, so the recovered
// database is bit-identical to the pre-crash one.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "tafloc/linalg/matrix.h"

namespace tafloc {

// -- WAL record types (the u32 `type` of each storage::Frame) --

inline constexpr std::uint32_t kWalAmbient = 1;  ///< scheduler ambient sample.
inline constexpr std::uint32_t kWalObserve = 2;  ///< localize_degraded() link readings.
inline constexpr std::uint32_t kWalUpdate = 3;   ///< update() raw inputs.
inline constexpr std::uint32_t kWalNotify = 4;   ///< scheduler notify_updated().

/// kWalAmbient / kWalNotify payload: a timestamped per-link vector.
struct AmbientRecord {
  double t_days = 0.0;
  Vector ambient;
};
std::string encode_ambient_record(double t_days, std::span<const double> ambient);
AmbientRecord decode_ambient_record(std::string_view payload);

/// kWalObserve payload: one query's per-link readings (NaN included --
/// the bits drive the LinkHealth state machine on replay exactly as
/// they did live).
std::string encode_observe_record(std::span<const double> rss);
Vector decode_observe_record(std::string_view payload);

/// kWalUpdate payload: the update's raw inputs, pre-sanitization; the
/// replay re-runs sanitization and the solver against the identically
/// recovered link-health state.
struct UpdateRecord {
  double t_days = 0.0;
  Matrix reference_columns;
  Vector ambient;
};
std::string encode_update_record(double t_days, const Matrix& reference_columns,
                                 std::span<const double> ambient);
UpdateRecord decode_update_record(std::string_view payload);

// -- system-facing configuration and recovery reporting --

struct DurabilityConfig {
  /// Zone state directory (created if absent): `snap-{0,1}.tfs`
  /// snapshot generations plus `wal-<generation>.log` segments.
  std::string dir;
  /// WAL records per batched fsync (1 = sync every append).
  std::size_t wal_fsync_every = 8;
};

struct RecoveryReport {
  enum class Outcome {
    kClean,          ///< snapshot loaded, empty WAL: nothing was in flight.
    kReplayed,       ///< snapshot + K WAL records replayed.
    kFellBack,       ///< newest snapshot rejected (checksum); older generation used.
    kUnrecoverable,  ///< no valid snapshot; the zone needs a fresh survey.
  };
  Outcome outcome = Outcome::kUnrecoverable;
  std::size_t replayed_records = 0;   ///< WAL records applied on top of the snapshot.
  std::size_t skipped_records = 0;    ///< WAL records the snapshot already covered.
  bool torn_wal_tail = false;         ///< the log died mid-append (tail dropped).
  bool corrupt_wal = false;           ///< mid-log corruption (replay stopped there).
  std::uint64_t snapshot_generation = 0;
  std::uint64_t sequence = 0;         ///< zone sequence after recovery.
  std::string detail;                 ///< human-readable reasons (logs / drill output).
};

const char* recovery_outcome_name(RecoveryReport::Outcome outcome);

}  // namespace tafloc
