// TafLocSystem -- the end-to-end system facade.
//
// Lifecycle (mirrors the paper's deployment):
//
//   1. calibrate(full_survey, ambient, t0)
//        one labour-intensive full survey; learns the reference
//        locations (column-pivoted QR), the LRR correlation Z, and the
//        distortion mask from the data.
//   2. update(fresh_reference_columns, fresh_ambient, t)
//        the low-cost refresh: n reference grids re-surveyed + one
//        ambient scan; runs LoLi-IR and swaps in the reconstructed
//        fingerprint matrix.
//   3. localize(rss)
//        weighted-KNN fingerprint matching against the current matrix.
//
// TafLocSystem implements Localizer so the Fig. 5 harness can drive it
// uniformly alongside RTI and RASS.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "tafloc/exec/exec_config.h"
#include "tafloc/fingerprint/database.h"
#include "tafloc/fingerprint/distortion.h"
#include "tafloc/fingerprint/reference.h"
#include "tafloc/loc/localizer.h"
#include "tafloc/loc/matcher.h"
#include "tafloc/recon/loli_ir.h"
#include "tafloc/recon/lrr.h"
#include "tafloc/sim/collector.h"
#include "tafloc/sim/deployment.h"
#include "tafloc/tafloc/durability.h"
#include "tafloc/telemetry/metrics.h"

namespace tafloc {

class UpdateScheduler;

namespace storage {
class SnapshotStore;
class WalWriter;
}  // namespace storage

/// Everything calibrate() (plus any later updates) learned -- enough to
/// restore a working system in a fresh process without re-surveying.
/// Serialized as plain text (see linalg/io.h for the matrix format).
struct TafLocState {
  Matrix fingerprints;
  Vector ambient;
  double surveyed_at_days = 0.0;
  Matrix correlation;  ///< the LRR Z matrix (n x N).
  std::vector<std::size_t> reference_indices;
  Matrix mask_undistorted;

  /// Stream / file round-trip; loading throws std::runtime_error on
  /// malformed input.
  void save(std::ostream& out) const;
  static TafLocState load(std::istream& in);
  void save_file(const std::string& path) const;
  static TafLocState load_file(const std::string& path);
};

struct TafLocConfig {
  std::size_t reference_count = 0;  ///< 0 = automatic (numeric rank of the survey).
  ReferencePolicy reference_policy = ReferencePolicy::QrPivot;
  DistortionConfig distortion;
  LoliIrConfig solver;
  double lrr_ridge = 1e-6;
  std::size_t knn_k = 3;            ///< localization matcher neighbours.
  bool mask_pairwise = true;        ///< restrict G/H terms to the distorted support.
  /// Serve KNN queries through the int8 pre-pass + exact re-rank
  /// (matcher.h) when the database's QuantizedTier is ready.  Results
  /// are provably identical either way; this only trades scan speed.
  bool quantized_scan = true;
  /// Initial re-rank candidate budget as a multiple of knn_k (see
  /// KnnMatcher::set_rerank_multiplier).  Speed knob only.
  std::size_t knn_rerank_alpha = 4;
  /// Execution-core settings: threads == 0 leaves the process-wide pool
  /// alone (TAFLOC_THREADS env or hardware concurrency); threads == 1
  /// forces the sequential legacy path.  Applied at system construction.
  ExecConfig exec;
  /// Observability settings.  Each system owns its own MetricRegistry
  /// (no process-wide telemetry state); with enabled == false the
  /// registry stays inert and every instrumented path short-circuits.
  /// Telemetry never changes results -- localization and reconstruction
  /// are bit-identical with it on or off, at any thread count.
  TelemetryConfig telemetry;
};

class TafLocSystem : public Localizer {
 public:
  /// The deployment must outlive the system.
  explicit TafLocSystem(const Deployment& deployment, const TafLocConfig& config = {});
  /// Movable (factory helpers / containers); re-points the matcher's
  /// borrowed link-health reference at the moved-to database.
  TafLocSystem(TafLocSystem&& other) noexcept;
  TafLocSystem& operator=(TafLocSystem&&) = delete;
  ~TafLocSystem() override;

  /// One-time calibration from a full survey (M x N) and the
  /// same-epoch ambient scan, at elapsed time `t_days`.
  void calibrate(const Matrix& full_survey, Vector ambient, double t_days);

  /// Diagnostics of one fingerprint update.
  struct UpdateReport {
    LoliIrResult solver;
    double updated_at_days = 0.0;
    std::size_t references_surveyed = 0;
  };

  /// Low-cost update from freshly surveyed reference columns (M x n, in
  /// reference_locations() order) and a fresh ambient scan.  Rows of
  /// links the LinkHealth mask marks dead -- or whose fresh readings are
  /// non-finite, which marks them dead here -- are excluded from the
  /// reconstruction's data/reference terms (LoLi-IR row_observed) and
  /// patched from the current database, so an update with faulty links
  /// degrades gracefully instead of aborting or poisoning the matrix.
  /// Equivalent to stage_update + solve_staged_update + commit_update
  /// run back to back (bit-identical results).
  UpdateReport update(const Matrix& fresh_reference_columns, Vector fresh_ambient,
                      double t_days);

  // -- staged (off-thread) updates: the daemon's supervised resurvey --
  //
  // A recalibration must never block serving, so the expensive solve is
  // split out of the swap:
  //
  //   StagedUpdate staged = system.stage_update(cols, ambient, t);
  //       // serving thread: WAL append + sanitization + problem build.
  //   system.solve_staged_update(staged);
  //       // ANY thread: pure LoLi-IR solve; touches no system state, so
  //       // localize()/localize_degraded() keep answering from the old
  //       // matrix meanwhile.
  //   report = system.commit_update(std::move(staged));
  //       // serving thread: atomic swap of the reconstructed matrix,
  //       // telemetry, snapshot.  Serialized against save().
  //
  // At most one update may be staged at a time (stage_update throws on
  // a second).  A durable save() issued between stage and commit stamps
  // its coverage *before* the staged WAL record, so recovery replays
  // the in-flight update instead of losing it.

  /// An update admitted but not yet applied.  Opaque to callers beyond
  /// the diagnostics below; move-only bookkeeping travels through it
  /// from stage to commit.
  struct StagedUpdate {
    double t_days = 0.0;
    std::size_t references_surveyed = 0;
    LoliIrProblem problem;
    Vector sanitized_ambient;
    LoliIrResult solver;     ///< filled by solve_staged_update.
    bool solved = false;
    std::uint64_t wal_seq = 0;  ///< the kWalUpdate record (0 when not durable).
  };

  /// Admission: write-ahead-log the raw inputs, run fault sanitization
  /// (non-finite fresh rows mark their link dead) and build the solver
  /// problem from the CURRENT database.  Call on the serving thread.
  StagedUpdate stage_update(const Matrix& fresh_reference_columns, Vector fresh_ambient,
                            double t_days);

  /// The expensive part: runs LoLi-IR on the staged problem.  Reads no
  /// mutable system state -- safe to run on a worker thread while the
  /// serving thread keeps localizing against the old matrix.
  void solve_staged_update(StagedUpdate& staged) const;

  /// Swap the reconstructed matrix in, publish telemetry, and (when
  /// durable) commit a snapshot.  Serialized against save() -- a drain
  /// mid-recalibration sees either the old matrix or the new one, never
  /// a torn state.  Call on the serving thread.
  UpdateReport commit_update(StagedUpdate staged);

  /// Discard a staged update without applying it (solver failure in a
  /// supervised job).  The WAL record already written stays in the log,
  /// so a crash-recovery replay MAY apply the abandoned update -- the
  /// recovered state is consistent, just not bit-identical to a live
  /// process that dropped it.
  void abandon_staged_update(const StagedUpdate& staged) noexcept;

  /// True while an update is staged but not yet committed or abandoned.
  bool update_staged() const noexcept;

  /// Convenience: perform the reference survey + ambient scan through a
  /// collector, then update.
  UpdateReport update_with_collector(const FingerprintCollector& collector, double t_days,
                                     Rng& rng);

  // -- Localizer interface --
  Point2 localize(std::span<const double> rss) const override;
  /// Batched localization through the matcher's parallel scan; results
  /// match element-wise localize() calls exactly.
  std::vector<Point2> localize_batch(std::span<const Vector> rss_batch) const override;
  std::string name() const override { return "TafLoc"; }

  /// One degraded-mode answer: the estimate plus how much of the
  /// deployment actually produced it.
  struct DegradedResult {
    Point2 point{0.0, 0.0};
    std::size_t links_used = 0;       ///< healthy links in the distance scan.
    std::size_t links_total = 0;      ///< deployment link count.
    std::size_t gated_neighbors = 0;  ///< KNN neighbours dropped by the spatial gate.
    /// links_used / links_total; 0 when the query was unservable.
    double confidence = 0.0;
    bool degraded = false;            ///< at least one link was masked out.
    bool served = false;              ///< false only when every link is dead.
  };

  /// Fault-tolerant serving path.  Feeds `rss` through the database's
  /// LinkHealth state machine (NaN / stuck links transition to Dead),
  /// then matches over the surviving links only.  Never throws on link
  /// faults: with every link dead it returns the area centre with
  /// confidence 0 and served == false instead of aborting the process.
  /// Telemetry: system.degraded_queries / system.unservable_queries
  /// counters, system.links_dead / system.links_alive gauges, and a
  /// system.degraded_fraction gauge over this system's query history.
  /// With all links healthy the estimate is bit-identical to localize().
  DegradedResult localize_degraded(std::span<const double> rss);

  /// True once calibrate() has run.
  bool calibrated() const noexcept { return database_.has_value(); }

  /// True when localize() currently serves through the quantized
  /// pre-pass (quantized_scan enabled, calibrated, and the database's
  /// int8 tier is ready).  Surfaced in zone status / taflocctl.
  bool quantized_tier_active() const noexcept;

  /// Chosen reference grid indices (available after calibration).
  const std::vector<std::size_t>& reference_locations() const;

  /// Current fingerprint database (available after calibration).
  const FingerprintDatabase& database() const;

  /// The per-link serving mask shared by the matcher, the reconstruction
  /// (row_observed) and the degraded serving path.  Pin links dead here
  /// (operator drain) or let localize_degraded()'s observe() calls drive
  /// it.  Available after calibration.
  LinkHealth& link_health();
  const LinkHealth& link_health() const;

  /// The learned LRR model (available after calibration).
  const LrrModel& lrr() const;

  /// The distortion mask learned at calibration.
  const DistortionMask& distortion_mask() const;

  // -- durability (snapshot + WAL crash recovery; DESIGN.md section 10) --

  /// Open (creating if needed) the zone state directory and arm the
  /// durability path: calibrate()/update() commit checksummed snapshot
  /// generations, and localize_degraded() / an attached scheduler
  /// write-ahead-log their state-changing inputs between snapshots.
  /// Call before calibrate() on a fresh zone, or before recover() on a
  /// restarted one.
  void attach_durability(const DurabilityConfig& config);

  /// Include `scheduler` in snapshots and point its ambient WAL at
  /// this system's log.  The scheduler must outlive the system (or be
  /// detached with nullptr first).  Attach before save()/recover() so
  /// the scheduler's accumulators ride the same recovery path.
  void attach_scheduler(UpdateScheduler* scheduler);

  bool durable() const noexcept { return store_ != nullptr; }

  /// Commit a snapshot of the full zone state now and rotate the WAL.
  /// Requires attach_durability() and a calibrated system.  Thread-safe
  /// against a concurrent commit_update(): the snapshot captures either
  /// the pre-swap or the post-swap state, and while an update is staged
  /// the coverage stamp stops just before its WAL record so recovery
  /// still replays it.
  void save();

  /// Restore this system from the zone directory: newest valid
  /// snapshot generation (falling back one generation when the newest
  /// fails its checksum), then in-order replay of every intact WAL
  /// record the snapshot does not cover; finishes by committing a
  /// fresh snapshot of the recovered state.  On kUnrecoverable the
  /// system is left uncalibrated (re-survey).  Outcome is mirrored
  /// into the telemetry registry (durability.recovery.*).
  RecoveryReport recover();

  /// WAL sequence the next durable mutation will carry.
  std::uint64_t durable_sequence() const noexcept;

  /// Snapshot of the learned state (requires a calibrated system).
  TafLocState export_state() const;

  /// Restore a previously exported state (shapes must match this
  /// system's deployment); leaves the system calibrated and ready to
  /// update()/localize() without any survey.
  void import_state(const TafLocState& state);

  const TafLocConfig& config() const noexcept { return config_; }
  const Deployment& deployment() const noexcept { return deployment_; }

  /// This system's metric registry: solver iteration counters, stage
  /// spans, per-query latency histograms, scheduler gauges (when an
  /// UpdateScheduler is attached to it) all land here.
  MetricRegistry& telemetry() noexcept { return *telemetry_; }
  const MetricRegistry& telemetry() const noexcept { return *telemetry_; }

  /// JSONL snapshot of every metric plus the recent span trace; samples
  /// the shared thread pool's exec.pool.* gauges first so the export is
  /// self-contained.  One JSON object per line (see MetricRegistry::
  /// snapshot_json for the schema).
  std::string telemetry_snapshot_json() const;

 private:
  void rebuild_matcher();

  // -- durability internals (all no-ops until attach_durability) --
  /// Body of save(); commit_mu_ must be held.
  void save_locked();
  std::string wal_segment_path(std::uint64_t generation) const;
  void rotate_wal(std::uint64_t generation);
  std::string encode_zone_payload() const;
  void install_zone_payload(std::string_view payload);
  void replay_wal(std::uint64_t from_seq, RecoveryReport& report);

  const Deployment& deployment_;
  TafLocConfig config_;
  std::optional<FingerprintDatabase> database_;
  std::optional<LrrModel> lrr_;
  std::optional<DistortionMask> mask_;
  std::vector<std::size_t> reference_indices_;
  std::vector<PairwiseTerm> continuity_;
  std::vector<PairwiseTerm> similarity_;
  std::unique_ptr<KnnMatcher> matcher_;
  std::unique_ptr<MetricRegistry> telemetry_;  ///< per-system, never global.

  // Degraded-serving bookkeeping (mirrored into telemetry when attached).
  std::size_t degraded_query_count_ = 0;
  std::size_t total_degraded_calls_ = 0;

  // Durability state (see attach_durability / save / recover).
  DurabilityConfig durability_;
  std::unique_ptr<storage::SnapshotStore> store_;
  std::unique_ptr<storage::WalWriter> wal_;
  UpdateScheduler* scheduler_ = nullptr;  ///< snapshotted + WAL-fed when set.
  std::uint64_t oldest_wal_gen_ = 1;      ///< oldest segment possibly still on disk.
  std::uint64_t generation_ = 0;          ///< last committed snapshot generation.
  std::uint64_t next_seq_ = 1;            ///< next WAL sequence number.
  bool replaying_ = false;                ///< recovery replay: no re-logging/snapshots.

  // Staged-update supervision: commit_mu_ serializes the swap (commit_
  // update) against save(), and the staged bookkeeping keeps a snapshot
  // taken mid-recalibration from claiming coverage of the in-flight
  // update's WAL record.
  mutable std::mutex commit_mu_;
  bool staged_pending_ = false;   ///< one update staged, not yet committed.
  std::uint64_t staged_seq_ = 0;  ///< its WAL sequence (durable systems).
};

}  // namespace tafloc
