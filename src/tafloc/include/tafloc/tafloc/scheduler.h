// UpdateScheduler -- the "time-adaptive" part of TafLoc: decide WHEN to
// run the low-cost fingerprint update.
//
// The trigger signal is free: the per-link ambient RSS (no target, no
// human labour) can be scanned any time, and the dominant fingerprint
// staleness is exactly the ambient drift (per-link offsets).  The
// scheduler tracks the mean absolute ambient change since the last
// update and requests a refresh when it crosses a threshold -- so a
// quiet month costs nothing while a week of fast drift (weather swing,
// furniture moved) triggers an early update.  Interval clamps bound
// both the update rate and the worst-case staleness.
#pragma once

#include <cstddef>
#include <span>

#include "tafloc/linalg/matrix.h"
#include "tafloc/storage/codec.h"

namespace tafloc {

class Counter;
class Gauge;
class MetricRegistry;

namespace storage {
class WalWriter;
}  // namespace storage

struct SchedulerConfig {
  double staleness_threshold_db = 3.0;  ///< trigger level for the mean ambient drift.
  double min_interval_days = 1.0;       ///< never update more often than this.
  double max_interval_days = 45.0;      ///< always update at least this often.
};

class UpdateScheduler {
 public:
  /// Start from the ambient scan taken at the last (or initial) update.
  UpdateScheduler(Vector ambient_at_update, double updated_at_days,
                  const SchedulerConfig& config = {});

  /// Feed a cheap ambient scan at time `t_days`; returns true when an
  /// update should run now.  A sample timestamped before the latest one
  /// (out-of-order telemetry delivery) is dropped -- warn log, a
  /// scheduler.dropped_observations count, return false -- rather than
  /// killing the serving process.  Non-finite per-link entries (dead
  /// links) are excluded from the staleness mean; a scan with no finite
  /// entry at all is dropped the same way.
  bool observe_ambient(std::span<const double> ambient, double t_days);

  /// Out-of-order / unusable samples dropped so far (mirrors the
  /// scheduler.dropped_observations counter when telemetry is attached).
  std::size_t dropped_observations() const noexcept { return dropped_; }
  /// Per-reason drop counts (each also exported as its own counter --
  /// scheduler.dropped_out_of_order / scheduler.dropped_nan -- so the
  /// JSONL snapshot distinguishes clock problems from dead radios).
  std::size_t dropped_out_of_order() const noexcept { return dropped_out_of_order_; }
  std::size_t dropped_nan() const noexcept { return dropped_nan_; }

  /// Mean absolute per-link ambient change since the last update, from
  /// the most recent observation (0 before any observation).
  double estimated_staleness_db() const noexcept { return staleness_; }

  /// Record that an update ran (resets the baseline and the clock).
  void notify_updated(Vector fresh_ambient, double t_days);

  double last_update_days() const noexcept { return updated_at_; }
  /// Timestamp of the latest *accepted* ambient observation (equals
  /// last_update_days() right after an update); dropped samples never
  /// move it.
  double last_observation_days() const noexcept { return last_observation_; }
  /// The ambient scan taken at the last update -- the reference the
  /// staleness mean (and the ingest movement gate) compares against.
  const Vector& baseline() const noexcept { return baseline_; }
  const SchedulerConfig& config() const noexcept { return config_; }
  /// Live-apply new trigger thresholds (taflocd config reload); the
  /// baseline and accumulators are untouched, so the next observation
  /// is judged against the new thresholds only.
  void set_config(const SchedulerConfig& config) noexcept { config_ = config; }

  /// Point scheduler.* metrics at `registry` (typically the owning
  /// TafLocSystem's): staleness gauge in dB, observation / trigger
  /// counters, last-trigger-time gauge, and one timestamped
  /// "scheduler.update_trigger" event in the span trace per trigger.
  /// nullptr or a disabled registry detaches.
  void attach_telemetry(MetricRegistry* registry);

  /// Point the ambient write-ahead log at `wal` (typically the owning
  /// TafLocSystem's): every observe_ambient() input is appended -- and
  /// durable within the WAL's fsync batch -- *before* it mutates the
  /// staleness accumulators, so replay after a crash reproduces this
  /// scheduler's state exactly.  nullptr detaches (and during recovery
  /// replay, so replayed samples are not re-logged).
  void attach_wal(storage::WalWriter* wal) noexcept { wal_ = wal; }

  /// Serialize the adaptive state -- baseline ambient (bit-exact),
  /// last-update clock, staleness accumulator, drop counts, config.
  void save(storage::ByteWriter& out) const;
  /// Overwrite this scheduler's state from a payload written by save()
  /// (in place: telemetry/WAL attachments survive).  Throws
  /// std::runtime_error on truncated or inconsistent input.
  void restore(storage::ByteReader& in);

  /// Exact state equality, attachments excluded (persistence tests).
  friend bool operator==(const UpdateScheduler& a, const UpdateScheduler& b) noexcept;

 private:
  Vector baseline_;
  double updated_at_;
  double last_observation_ = 0.0;
  double staleness_ = 0.0;
  std::size_t dropped_ = 0;
  std::size_t dropped_out_of_order_ = 0;
  std::size_t dropped_nan_ = 0;
  SchedulerConfig config_;

  // Telemetry handles (all null when detached; see attach_telemetry).
  MetricRegistry* telemetry_ = nullptr;
  Gauge* staleness_gauge_ = nullptr;
  Gauge* last_trigger_gauge_ = nullptr;
  Counter* observation_counter_ = nullptr;
  Counter* trigger_counter_ = nullptr;
  Counter* dropped_counter_ = nullptr;
  Counter* dropped_out_of_order_counter_ = nullptr;
  Counter* dropped_nan_counter_ = nullptr;

  storage::WalWriter* wal_ = nullptr;  ///< ambient WAL (null when not durable).
};

}  // namespace tafloc
