#include "tafloc/tafloc/system.h"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "tafloc/exec/thread_pool.h"
#include "tafloc/linalg/backend.h"
#include "tafloc/linalg/io.h"
#include "tafloc/recon/operators.h"
#include "tafloc/storage/snapshot.h"
#include "tafloc/storage/wal.h"
#include "tafloc/tafloc/scheduler.h"
#include "tafloc/telemetry/span.h"
#include "tafloc/telemetry/trace.h"
#include "tafloc/util/check.h"
#include "tafloc/util/log.h"

namespace tafloc {

namespace {
constexpr const char* kStateHeader = "tafloc-state-v1";
constexpr std::uint32_t kZonePayloadVersion = 1;
}  // namespace

void TafLocState::save(std::ostream& out) const {
  out << kStateHeader << '\n';
  out << "surveyed_at " << surveyed_at_days << '\n';
  save_matrix(fingerprints, out);
  save_vector(ambient, out);
  save_matrix(correlation, out);
  out << "references " << reference_indices.size() << '\n';
  for (std::size_t i = 0; i < reference_indices.size(); ++i) {
    if (i > 0) out << ' ';
    out << reference_indices[i];
  }
  out << '\n';
  save_matrix(mask_undistorted, out);
}

TafLocState TafLocState::load(std::istream& in) {
  const auto fail = [](const std::string& what) -> void {
    throw std::runtime_error("TafLocState::load: malformed input: " + what);
  };
  std::string token;
  if (!(in >> token) || token != kStateHeader) fail("missing header");
  TafLocState state;
  if (!(in >> token) || token != "surveyed_at") fail("missing surveyed_at");
  if (!(in >> state.surveyed_at_days) || state.surveyed_at_days < 0.0)
    fail("bad surveyed_at value");
  state.fingerprints = load_matrix(in);
  state.ambient = load_vector(in);
  state.correlation = load_matrix(in);
  if (!(in >> token) || token != "references") fail("missing references");
  long long count = -1;
  if (!(in >> count) || count <= 0) fail("bad reference count");
  state.reference_indices.resize(static_cast<std::size_t>(count));
  for (std::size_t& idx : state.reference_indices) {
    if (!(in >> idx)) fail("truncated reference indices");
  }
  state.mask_undistorted = load_matrix(in);
  return state;
}

void TafLocState::save_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open '" + path + "' for writing");
  save(out);
  if (!out) throw std::runtime_error("write to '" + path + "' failed");
}

TafLocState TafLocState::load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open '" + path + "' for reading");
  return load(in);
}

TafLocSystem::TafLocSystem(const Deployment& deployment, const TafLocConfig& config)
    : deployment_(deployment),
      config_(config),
      telemetry_(std::make_unique<MetricRegistry>(config.telemetry)) {
  TAFLOC_CHECK_ARG(config.knn_k >= 1, "knn k must be at least 1");
  TAFLOC_CHECK_ARG(config.knn_rerank_alpha >= 1, "knn re-rank multiplier must be at least 1");
  if (config_.exec.threads != 0) set_global_threads(config_.exec.threads);
  // Kernel backend selection is process-wide like the thread pool:
  // kAuto leaves the resolved default (TAFLOC_KERNEL_BACKEND env, else
  // CPU detection) alone; an explicit request pins it.
  if (config_.exec.kernel_backend != KernelBackend::kAuto)
    set_kernel_backend(config_.exec.kernel_backend);
  if (telemetry_->enabled())
    telemetry_->gauge("kernel.backend")
        .set(static_cast<double>(static_cast<int>(active_kernel_backend())));
  // Route the solver's recon.* metrics into this system's registry.
  // The pointer is stable for the system's lifetime (unique_ptr owner).
  config_.solver.telemetry = telemetry_.get();
}

TafLocSystem::TafLocSystem(TafLocSystem&& other) noexcept
    : deployment_(other.deployment_),
      config_(std::move(other.config_)),
      database_(std::move(other.database_)),
      lrr_(std::move(other.lrr_)),
      mask_(std::move(other.mask_)),
      reference_indices_(std::move(other.reference_indices_)),
      continuity_(std::move(other.continuity_)),
      similarity_(std::move(other.similarity_)),
      matcher_(std::move(other.matcher_)),
      telemetry_(std::move(other.telemetry_)),
      degraded_query_count_(other.degraded_query_count_),
      total_degraded_calls_(other.total_degraded_calls_),
      durability_(std::move(other.durability_)),
      store_(std::move(other.store_)),
      wal_(std::move(other.wal_)),
      scheduler_(other.scheduler_),
      oldest_wal_gen_(other.oldest_wal_gen_),
      generation_(other.generation_),
      next_seq_(other.next_seq_),
      replaying_(other.replaying_),
      staged_pending_(other.staged_pending_),
      staged_seq_(other.staged_seq_) {
  // The moved-from shell must not detach our scheduler's WAL in its
  // destructor, and both borrowed raw pointers must follow the move:
  // the solver's telemetry sink, and the matcher's link-health mask
  // (the LinkHealth object lives inline in the optional database).
  other.scheduler_ = nullptr;
  config_.solver.telemetry = telemetry_.get();
  if (matcher_ != nullptr && database_.has_value()) {
    matcher_->attach_link_health(&database_->link_health());
    // Same re-point for the quantized tier (it also lives inline in the
    // optional database, so the move relocated it).
    if (config_.quantized_scan) matcher_->attach_quantized_tier(&database_->quantized_tier());
  }
}

// Out of line: the durability members' types are incomplete in the header.
TafLocSystem::~TafLocSystem() {
  // The WAL holds a raw pointer into an externally owned scheduler;
  // sever it so a longer-lived scheduler cannot append to a dead log.
  if (scheduler_ != nullptr) scheduler_->attach_wal(nullptr);
}

void TafLocSystem::calibrate(const Matrix& full_survey, Vector ambient, double t_days) {
  TAFLOC_CHECK_ARG(full_survey.rows() == deployment_.num_links(),
                   "survey must have one row per link");
  TAFLOC_CHECK_ARG(full_survey.cols() == deployment_.num_grids(),
                   "survey must have one column per grid");
  ScopedSpan span(telemetry_.get(), "system.calibrate_seconds");

  // Distortion structure, learned from the data (no geometry needed).
  const DistortionDetector detector(config_.distortion);
  mask_ = detector.detect_from_data(full_survey, ambient);

  // Reference locations: maximal linearly independent columns.
  std::size_t count = config_.reference_count;
  if (count == 0) count = suggest_reference_count(full_survey);
  count = std::min(count, full_survey.cols());
  reference_indices_ =
      select_reference_locations(full_survey, count, config_.reference_policy, nullptr);

  // LRR correlation matrix from the initial survey.
  LrrOptions lrr_options;
  lrr_options.ridge = config_.lrr_ridge;
  lrr_options.telemetry = telemetry_.get();
  lrr_.emplace(full_survey, reference_indices_, lrr_options);

  // Property-iii pair sets, fixed by the learned distortion structure.
  const DistortionMask* mask_ptr = config_.mask_pairwise ? &*mask_ : nullptr;
  continuity_ = continuity_pairs(deployment_, mask_ptr);
  similarity_ = similarity_pairs(deployment_, mask_ptr);

  database_.emplace(full_survey, std::move(ambient), t_days);
  rebuild_matcher();
  if (telemetry_->enabled()) {
    telemetry_->counter("system.calibrations").add();
    telemetry_->gauge("system.last_survey_days").set(t_days);
  }
  // A calibrated zone is immediately durable: generation 1 is the
  // baseline every later WAL record replays onto.
  if (durable() && !replaying_) save();
}

TafLocSystem::UpdateReport TafLocSystem::update(const Matrix& fresh_reference_columns,
                                                Vector fresh_ambient, double t_days) {
  ScopedSpan span(telemetry_.get(), "system.update_seconds");
  StagedUpdate staged = stage_update(fresh_reference_columns, std::move(fresh_ambient), t_days);
  solve_staged_update(staged);
  return commit_update(std::move(staged));
}

TafLocSystem::StagedUpdate TafLocSystem::stage_update(const Matrix& fresh_reference_columns,
                                                      Vector fresh_ambient, double t_days) {
  TAFLOC_CHECK_STATE(calibrated(), "update() requires a prior calibrate()");
  TAFLOC_CHECK_ARG(fresh_reference_columns.rows() == deployment_.num_links(),
                   "reference columns must have one row per link");
  TAFLOC_CHECK_ARG(fresh_reference_columns.cols() == reference_indices_.size(),
                   "reference column count must match the calibrated reference set");
  TAFLOC_CHECK_ARG(fresh_ambient.size() == deployment_.num_links(),
                   "ambient vector must have one entry per link");
  ScopedSpan span(telemetry_.get(), "system.stage_update_seconds");
  const std::lock_guard<std::mutex> lock(commit_mu_);
  TAFLOC_CHECK_STATE(!staged_pending_, "one update is already staged; commit or abandon it");

  StagedUpdate staged;
  staged.t_days = t_days;
  staged.references_surveyed = reference_indices_.size();

  if (durable() && wal_ != nullptr && !replaying_) {
    // Write-ahead: the raw survey inputs are durable before anything
    // mutates, so a crash anywhere inside the (expensive) solver
    // replays this update from the log and lands on the same matrix.
    staged.wal_seq = wal_->append(
        kWalUpdate, encode_update_record(t_days, fresh_reference_columns, fresh_ambient));
    wal_->sync();
  }

  // Fault sanitization.  A dead link cannot survey anything: its rows in
  // the fresh inputs are garbage (NaN from the radio, or stale).  First
  // flag any link whose fresh readings are non-finite, then patch every
  // dead row from the current database so the solver only ever sees
  // finite numbers -- the reconstruction itself excludes those rows
  // through row_observed below, so the patched values act purely as a
  // stay-where-you-were prior, never as observations.
  LinkHealth& health = database_->link_health();
  Matrix ref_cols = fresh_reference_columns;
  for (std::size_t i = 0; i < deployment_.num_links(); ++i) {
    bool finite = std::isfinite(fresh_ambient[i]);
    for (std::size_t j = 0; finite && j < ref_cols.cols(); ++j)
      finite = std::isfinite(ref_cols(i, j));
    if (!finite && health.usable(i)) {
      TAFLOC_LOG_WARN << "update: link " << i
                      << " reported non-finite survey data; marking dead";
      health.mark_dead(i);
    }
  }
  const std::span<const std::uint8_t> usable = health.usable_bytes();
  if (!health.all_usable()) {
    for (std::size_t i = 0; i < deployment_.num_links(); ++i) {
      if (usable[i] != 0) continue;
      fresh_ambient[i] = database_->ambient()[i];
      for (std::size_t j = 0; j < ref_cols.cols(); ++j)
        ref_cols(i, j) = database_->fingerprints()(i, reference_indices_[j]);
    }
  }

  LoliIrProblem& problem = staged.problem;
  problem.mask_undistorted = mask_->undistorted;
  problem.known = known_entry_matrix(*mask_, fresh_ambient);
  problem.prediction = lrr_->predict(ref_cols);
  problem.reference_indices = reference_indices_;
  problem.continuity = continuity_;
  problem.similarity = similarity_;
  if (!health.all_usable()) {
    // Dead rows leave the data and reference terms (see loli_ir.h); the
    // LRR term still spans them, so give it the previous fingerprints as
    // the prediction there -- the best available prior for a row with no
    // fresh information.
    problem.row_observed.assign(usable.begin(), usable.end());
    for (std::size_t i = 0; i < deployment_.num_links(); ++i) {
      if (usable[i] != 0) continue;
      for (std::size_t j = 0; j < deployment_.num_grids(); ++j)
        problem.prediction(i, j) = database_->fingerprints()(i, j);
    }
  }
  problem.reference_columns = std::move(ref_cols);
  staged.sanitized_ambient = std::move(fresh_ambient);
  staged_pending_ = true;
  staged_seq_ = staged.wal_seq;
  return staged;
}

void TafLocSystem::solve_staged_update(StagedUpdate& staged) const {
  ScopedSpan span(telemetry_.get(), "system.solve_update_seconds");
  staged.solver = loli_ir_reconstruct(staged.problem, config_.solver);
  staged.solved = true;
}

TafLocSystem::UpdateReport TafLocSystem::commit_update(StagedUpdate staged) {
  TAFLOC_CHECK_STATE(staged.solved, "commit_update() requires solve_staged_update()");
  ScopedSpan span(telemetry_.get(), "system.commit_update_seconds");
  const std::lock_guard<std::mutex> lock(commit_mu_);
  TAFLOC_CHECK_STATE(staged_pending_, "no update is staged");
  staged_pending_ = false;

  UpdateReport report;
  report.solver = std::move(staged.solver);
  report.updated_at_days = staged.t_days;
  report.references_surveyed = staged.references_surveyed;

  database_->update(report.solver.x, std::move(staged.sanitized_ambient), staged.t_days);
  rebuild_matcher();
  if (telemetry_->enabled()) {
    telemetry_->counter("system.updates").add();
    telemetry_->gauge("system.last_update_days").set(staged.t_days);
    // Post-update reconstruction quality: the solver objective at the
    // accepted iterate (lower is better; see loli_ir.h for the terms).
    telemetry_->gauge("system.post_update_objective").set(report.solver.objective);
  }
  // The refreshed matrix supersedes the WAL: snapshot it and rotate.
  if (durable() && !replaying_) save_locked();
  return report;
}

void TafLocSystem::abandon_staged_update(const StagedUpdate& staged) noexcept {
  (void)staged;
  const std::lock_guard<std::mutex> lock(commit_mu_);
  if (!staged_pending_) return;
  staged_pending_ = false;
  TAFLOC_LOG_WARN << "staged update abandoned (wal seq "
                  << (staged.wal_seq != 0 ? std::to_string(staged.wal_seq) : "none")
                  << "); a recovery replay may still apply it";
}

bool TafLocSystem::update_staged() const noexcept {
  const std::lock_guard<std::mutex> lock(commit_mu_);
  return staged_pending_;
}

TafLocSystem::UpdateReport TafLocSystem::update_with_collector(
    const FingerprintCollector& collector, double t_days, Rng& rng) {
  TAFLOC_CHECK_STATE(calibrated(), "update_with_collector() requires a prior calibrate()");
  const Matrix fresh = collector.survey_grids(reference_indices_, t_days, rng);
  Vector ambient = collector.ambient_scan(t_days, rng);
  return update(fresh, std::move(ambient), t_days);
}

bool TafLocSystem::quantized_tier_active() const noexcept {
  return matcher_ != nullptr && matcher_->quantized_active();
}

Point2 TafLocSystem::localize(std::span<const double> rss) const {
  TAFLOC_CHECK_STATE(matcher_ != nullptr, "localize() requires a prior calibrate()");
  return matcher_->localize(rss);
}

std::vector<Point2> TafLocSystem::localize_batch(std::span<const Vector> rss_batch) const {
  TAFLOC_CHECK_STATE(matcher_ != nullptr, "localize_batch() requires a prior calibrate()");
  return matcher_->localize_batch(rss_batch);
}

TafLocSystem::DegradedResult TafLocSystem::localize_degraded(std::span<const double> rss) {
  TAFLOC_CHECK_STATE(matcher_ != nullptr, "localize_degraded() requires a prior calibrate()");
  TAFLOC_CHECK_ARG(rss.size() == deployment_.num_links(), "rss must have one entry per link");

  // Every real-time reading drives the health state machine: NaNs kill
  // their link for this query, stuck links accumulate towards Suspect /
  // Dead, recovered links heal.  Durable zones log the reading first --
  // the mask a recovered process serves with must match the one the
  // dead process was serving with.
  if (durable() && wal_ != nullptr && !replaying_)
    wal_->append(kWalObserve, encode_observe_record(rss));
  LinkHealth& health = database_->link_health();
  {
    TraceStage stage("system.health");
    health.observe(rss);
  }

  DegradedResult out;
  out.links_total = health.num_links();
  out.degraded = !health.all_usable();
  ++total_degraded_calls_;
  if (out.degraded) ++degraded_query_count_;

  {
    TraceStage match_stage("system.match");
    if (health.usable_count() == 0) {
      // Nothing left to match against.  The least-wrong answer with zero
      // information is the area centre; served == false tells the caller
      // this estimate carries no signal.
      TAFLOC_LOG_WARN << "localize_degraded: all " << out.links_total
                      << " links dead; returning area centre";
      out.point = {0.5 * deployment_.grid().width(), 0.5 * deployment_.grid().height()};
    } else {
      MatchStats stats;
      out.point = matcher_->localize(rss, &stats);
      out.links_used = stats.links_used;
      out.gated_neighbors = stats.gated_out;
      out.confidence =
          static_cast<double>(out.links_used) / static_cast<double>(out.links_total);
      out.served = true;
    }
  }

  if (telemetry_->enabled()) {
    if (out.degraded) telemetry_->counter("system.degraded_queries").add();
    if (!out.served) telemetry_->counter("system.unservable_queries").add();
    telemetry_->gauge("system.links_dead").set(static_cast<double>(health.dead_count()));
    telemetry_->gauge("system.links_alive").set(static_cast<double>(health.usable_count()));
    telemetry_->gauge("system.degraded_fraction")
        .set(static_cast<double>(degraded_query_count_) /
             static_cast<double>(total_degraded_calls_));
  }
  return out;
}

const std::vector<std::size_t>& TafLocSystem::reference_locations() const {
  TAFLOC_CHECK_STATE(calibrated(), "reference locations exist only after calibrate()");
  return reference_indices_;
}

const FingerprintDatabase& TafLocSystem::database() const {
  TAFLOC_CHECK_STATE(calibrated(), "database exists only after calibrate()");
  return *database_;
}

LinkHealth& TafLocSystem::link_health() {
  TAFLOC_CHECK_STATE(calibrated(), "link health exists only after calibrate()");
  return database_->link_health();
}

const LinkHealth& TafLocSystem::link_health() const {
  TAFLOC_CHECK_STATE(calibrated(), "link health exists only after calibrate()");
  return database_->link_health();
}

const LrrModel& TafLocSystem::lrr() const {
  TAFLOC_CHECK_STATE(lrr_.has_value(), "LRR model exists only after calibrate()");
  return *lrr_;
}

const DistortionMask& TafLocSystem::distortion_mask() const {
  TAFLOC_CHECK_STATE(mask_.has_value(), "distortion mask exists only after calibrate()");
  return *mask_;
}

TafLocState TafLocSystem::export_state() const {
  TAFLOC_CHECK_STATE(calibrated(), "export_state() requires a prior calibrate()");
  TafLocState state;
  state.fingerprints = database_->fingerprints();
  state.ambient = database_->ambient();
  state.surveyed_at_days = database_->surveyed_at_days();
  state.correlation = lrr_->correlation();
  state.reference_indices = reference_indices_;
  state.mask_undistorted = mask_->undistorted;
  return state;
}

void TafLocSystem::import_state(const TafLocState& state) {
  TAFLOC_CHECK_ARG(state.fingerprints.rows() == deployment_.num_links(),
                   "state fingerprints must have one row per link");
  TAFLOC_CHECK_ARG(state.fingerprints.cols() == deployment_.num_grids(),
                   "state fingerprints must have one column per grid");
  TAFLOC_CHECK_ARG(state.ambient.size() == deployment_.num_links(),
                   "state ambient vector must have one entry per link");
  TAFLOC_CHECK_ARG(state.mask_undistorted.same_shape(state.fingerprints),
                   "state mask shape must match the fingerprints");
  TAFLOC_CHECK_ARG(state.correlation.cols() == deployment_.num_grids(),
                   "state correlation must have one column per grid");
  for (double v : state.mask_undistorted.data())
    TAFLOC_CHECK_ARG(v == 0.0 || v == 1.0, "state mask entries must be 0 or 1");

  mask_.emplace();
  mask_->undistorted = state.mask_undistorted;
  mask_->distorted = Matrix(state.mask_undistorted.rows(), state.mask_undistorted.cols());
  for (std::size_t i = 0; i < mask_->undistorted.rows(); ++i)
    for (std::size_t j = 0; j < mask_->undistorted.cols(); ++j)
      mask_->distorted(i, j) = 1.0 - mask_->undistorted(i, j);

  reference_indices_ = state.reference_indices;
  lrr_.emplace(LrrModel::from_correlation(state.correlation, state.reference_indices));

  const DistortionMask* mask_ptr = config_.mask_pairwise ? &*mask_ : nullptr;
  continuity_ = continuity_pairs(deployment_, mask_ptr);
  similarity_ = similarity_pairs(deployment_, mask_ptr);

  database_.emplace(state.fingerprints, state.ambient, state.surveyed_at_days);
  rebuild_matcher();
}

void TafLocSystem::rebuild_matcher() {
  // Borrowing matcher: it scans the database's fingerprint storage
  // directly (zero-copy).  Safe because every database_->update() /
  // emplace() is immediately followed by this rebuild, so the view
  // never outlives the storage it points at.
  matcher_ = std::make_unique<KnnMatcher>(database_->fingerprints_view(), deployment_.grid(),
                                          std::min(config_.knn_k, deployment_.num_grids()),
                                          /*weighted=*/true);
  matcher_->attach_telemetry(telemetry_.get());
  // Same lifetime argument as the fingerprint view: the health mask
  // lives inside database_, and every database_ re-emplace runs through
  // this rebuild.  With all links usable the matcher takes its exact
  // unmasked code path, so attaching here never changes healthy results.
  matcher_->attach_link_health(&database_->link_health());
  // The int8 scan tier is rebuilt by the database on the same
  // update()/emplace() that triggered this rebuild, so attaching it
  // here keeps the two consistent at every point a query can observe.
  // Results are provably unchanged (see matcher.h); only speed differs.
  if (config_.quantized_scan) {
    matcher_->attach_quantized_tier(&database_->quantized_tier());
    matcher_->set_rerank_multiplier(config_.knn_rerank_alpha);
  }
  if (telemetry_->enabled())
    telemetry_->gauge("fingerprint.quantized_tier").set(quantized_tier_active() ? 1.0 : 0.0);
}

// -- durability (DESIGN.md section 10) --

void TafLocSystem::attach_durability(const DurabilityConfig& config) {
  TAFLOC_CHECK_ARG(!config.dir.empty(), "durability dir must not be empty");
  TAFLOC_CHECK_ARG(config.wal_fsync_every >= 1, "wal_fsync_every must be >= 1");
  std::filesystem::create_directories(config.dir);
  durability_ = config;
  store_ = std::make_unique<storage::SnapshotStore>(config.dir);
  // Resume the counters from whatever is already on disk, so an
  // attach-then-calibrate on a dirty directory commits a generation
  // strictly newer than anything a later recover() could prefer.
  const storage::SnapshotStore::LoadResult existing = store_->load_latest();
  if (existing.snapshot.has_value()) {
    generation_ = existing.snapshot->generation;
    next_seq_ = existing.snapshot->sequence + 1;
    oldest_wal_gen_ = generation_ >= 2 ? generation_ - 1 : 1;
  }
}

void TafLocSystem::attach_scheduler(UpdateScheduler* scheduler) {
  if (scheduler_ != nullptr && scheduler_ != scheduler) scheduler_->attach_wal(nullptr);
  scheduler_ = scheduler;
  if (scheduler_ != nullptr) scheduler_->attach_wal(wal_.get());
}

std::uint64_t TafLocSystem::durable_sequence() const noexcept {
  return wal_ != nullptr ? wal_->next_seq() : next_seq_;
}

std::string TafLocSystem::wal_segment_path(std::uint64_t generation) const {
  return durability_.dir + "/wal-" + std::to_string(generation) + ".log";
}

void TafLocSystem::rotate_wal(std::uint64_t generation) {
  // Close (final fsync) the outgoing segment before opening the next.
  wal_.reset();
  // A stale segment with this generation's name can exist after a
  // fallback recovery (the dead timeline's future); it must not be
  // appended to, so start the segment from scratch.
  std::error_code ec;
  std::filesystem::remove(wal_segment_path(generation), ec);
  wal_ = std::make_unique<storage::WalWriter>(wal_segment_path(generation), next_seq_,
                                              durability_.wal_fsync_every);
  if (scheduler_ != nullptr) scheduler_->attach_wal(wal_.get());
  // Keep current + previous segments: falling back one snapshot
  // generation must still find every record past that snapshot.  While
  // an update is staged, keep everything -- its WAL record may live in
  // an older segment and must survive until a snapshot covers it; the
  // next unstaged rotation catches up on the deferred deletions.
  if (!staged_pending_) {
    while (oldest_wal_gen_ + 2 <= generation) {
      std::filesystem::remove(wal_segment_path(oldest_wal_gen_), ec);
      ++oldest_wal_gen_;
    }
  }
}

std::string TafLocSystem::encode_zone_payload() const {
  storage::ByteWriter w;
  w.put_u32(kZonePayloadVersion);
  database_->save(w);
  save_matrix_binary(lrr_->correlation(), w);
  w.put_size_span(reference_indices_);
  save_matrix_binary(mask_->undistorted, w);
  if (scheduler_ != nullptr) {
    w.put_u8(1);
    storage::ByteWriter sw;
    scheduler_->save(sw);
    const std::string blob = sw.take();
    w.put_u8_span(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(blob.data()), blob.size()));
  } else {
    w.put_u8(0);
  }
  return w.take();
}

void TafLocSystem::install_zone_payload(std::string_view payload) {
  storage::ByteReader r(payload);
  const std::uint32_t version = r.get_u32();
  if (version != kZonePayloadVersion)
    throw std::runtime_error("zone payload: unsupported version " + std::to_string(version));
  FingerprintDatabase db = FingerprintDatabase::load(r);
  TafLocState state;
  state.fingerprints = db.fingerprints();
  state.ambient = db.ambient();
  state.surveyed_at_days = db.surveyed_at_days();
  state.correlation = load_matrix_binary(r);
  state.reference_indices = r.get_size_vector();
  state.mask_undistorted = load_matrix_binary(r);
  const bool has_scheduler_blob = r.get_u8() != 0;
  std::vector<std::uint8_t> scheduler_blob;
  if (has_scheduler_blob) scheduler_blob = r.get_u8_vector();
  r.expect_exhausted("zone payload");

  // import_state runs the full shape/consistency validation and
  // rebuilds every derived structure; the link-health state machine is
  // the one piece it resets, so restore it on top (shape already
  // verified against the deployment by the load above + import checks).
  import_state(state);
  database_->link_health() = db.link_health();

  if (has_scheduler_blob) {
    if (scheduler_ != nullptr) {
      storage::ByteReader sr(std::string_view(
          reinterpret_cast<const char*>(scheduler_blob.data()), scheduler_blob.size()));
      scheduler_->restore(sr);
      sr.expect_exhausted("scheduler blob");
    } else {
      TAFLOC_LOG_WARN << "snapshot carries scheduler state but no scheduler is "
                         "attached; its accumulators are dropped";
    }
  }
}

void TafLocSystem::save() {
  const std::lock_guard<std::mutex> lock(commit_mu_);
  save_locked();
}

void TafLocSystem::save_locked() {
  TAFLOC_CHECK_STATE(durable(), "save() requires attach_durability()");
  TAFLOC_CHECK_STATE(calibrated(), "save() requires a calibrated system");
  if (wal_ != nullptr) {
    // Appends advance the writer's counter; resync ours so the
    // snapshot's covered-sequence stamp and the next segment's first
    // sequence line up with what is actually in the log.
    wal_->sync();
    next_seq_ = wal_->next_seq();
  }
  storage::SnapshotData snap;
  snap.generation = generation_ + 1;
  // Every record up to the stamp is reflected in the payload.  While an
  // update is staged but not committed, the payload is still the
  // pre-swap matrix, so coverage stops just before the staged kWalUpdate
  // record -- recovery replays the in-flight update instead of losing it
  // (a drain mid-recalibration depends on this).
  snap.sequence = (staged_pending_ && staged_seq_ != 0) ? staged_seq_ - 1 : next_seq_ - 1;
  snap.payload = encode_zone_payload();
  store_->commit(snap);
  generation_ = snap.generation;
  rotate_wal(generation_);
  if (telemetry_->enabled()) {
    telemetry_->counter("durability.snapshots").add();
    telemetry_->gauge("durability.generation").set(static_cast<double>(generation_));
    telemetry_->gauge("durability.sequence").set(static_cast<double>(snap.sequence));
  }
}

RecoveryReport TafLocSystem::recover() {
  TAFLOC_CHECK_STATE(durable(), "recover() requires attach_durability()");
  RecoveryReport report;
  const storage::SnapshotStore::LoadResult loaded = store_->load_latest();
  for (const std::string& err : loaded.errors) {
    TAFLOC_LOG_WARN << "snapshot slot rejected: " << err;
    if (!report.detail.empty()) report.detail += "; ";
    report.detail += err;
  }
  if (!loaded.snapshot.has_value()) {
    report.outcome = RecoveryReport::Outcome::kUnrecoverable;
    if (!report.detail.empty()) report.detail += "; ";
    report.detail += loaded.slots_rejected > 0 ? "every snapshot slot failed validation"
                                               : "no snapshot present";
    if (telemetry_->enabled())
      telemetry_->counter("durability.recovery.unrecoverable").add();
    return report;
  }

  const storage::SnapshotData& snap = *loaded.snapshot;
  install_zone_payload(snap.payload);  // throws on malformed payload.
  generation_ = snap.generation;
  next_seq_ = snap.sequence + 1;
  report.snapshot_generation = snap.generation;

  // Replay with re-logging and re-snapshotting suppressed; the replay
  // dispatches through the exact live entry points, so the recovered
  // state is bit-identical to the pre-crash one.
  if (scheduler_ != nullptr) scheduler_->attach_wal(nullptr);
  replaying_ = true;
  try {
    replay_wal(snap.sequence, report);
  } catch (...) {
    replaying_ = false;
    throw;
  }
  replaying_ = false;

  report.sequence = next_seq_ - 1;
  if (loaded.fell_back)
    report.outcome = RecoveryReport::Outcome::kFellBack;
  else if (report.replayed_records > 0)
    report.outcome = RecoveryReport::Outcome::kReplayed;
  else
    report.outcome = RecoveryReport::Outcome::kClean;

  // Epilogue: the recovered state becomes the newest generation, so the
  // next crash recovers from here instead of re-replaying history.
  save();

  if (telemetry_->enabled()) {
    telemetry_->counter(std::string("durability.recovery.") +
                        recovery_outcome_name(report.outcome))
        .add();
    telemetry_->counter("durability.recovery.replayed_records")
        .add(static_cast<std::uint64_t>(report.replayed_records));
    if (report.torn_wal_tail) telemetry_->counter("durability.recovery.torn_tail").add();
    if (report.corrupt_wal) telemetry_->counter("durability.recovery.corrupt_wal").add();
  }
  return report;
}

void TafLocSystem::replay_wal(std::uint64_t from_seq, RecoveryReport& report) {
  namespace fs = std::filesystem;
  // Collect records from every retained segment (current + previous
  // generation; after a fallback also the dead timeline's segment --
  // its records still carry valid sequence numbers past the snapshot).
  std::vector<storage::Frame> records;
  std::error_code ec;
  for (const fs::directory_entry& entry : fs::directory_iterator(durability_.dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("wal-", 0) != 0 || name.size() < 9 ||
        name.compare(name.size() - 4, 4, ".log") != 0)
      continue;
    storage::WalReadResult segment = storage::read_wal(entry.path().string());
    if (segment.torn_tail) {
      report.torn_wal_tail = true;
      TAFLOC_LOG_WARN << name << ": " << segment.error;
    }
    if (segment.corrupt) {
      report.corrupt_wal = true;
      TAFLOC_LOG_WARN << name << ": " << segment.error;
      if (!report.detail.empty()) report.detail += "; ";
      report.detail += name + ": " + segment.error;
    }
    for (storage::Frame& frame : segment.records) records.push_back(std::move(frame));
  }
  std::sort(records.begin(), records.end(),
            [](const storage::Frame& a, const storage::Frame& b) { return a.seq < b.seq; });

  // Strictly sequential replay: a gap means the missing record's
  // durability is unknown (mid-segment corruption, deleted segment), so
  // nothing after it can be trusted either.
  std::uint64_t expected = from_seq + 1;
  for (const storage::Frame& frame : records) {
    if (frame.seq <= from_seq) {
      ++report.skipped_records;
      continue;
    }
    if (frame.seq != expected) {
      if (!report.detail.empty()) report.detail += "; ";
      report.detail += "sequence gap: expected " + std::to_string(expected) + ", found " +
                       std::to_string(frame.seq) + "; replay stopped";
      TAFLOC_LOG_WARN << "WAL " << report.detail;
      break;
    }
    switch (frame.type) {
      case kWalAmbient: {
        const AmbientRecord rec = decode_ambient_record(frame.payload);
        if (scheduler_ != nullptr)
          scheduler_->observe_ambient(rec.ambient, rec.t_days);
        else
          TAFLOC_LOG_WARN << "WAL ambient record " << frame.seq
                          << " dropped: no scheduler attached";
        break;
      }
      case kWalNotify: {
        AmbientRecord rec = decode_ambient_record(frame.payload);
        if (scheduler_ != nullptr)
          scheduler_->notify_updated(std::move(rec.ambient), rec.t_days);
        else
          TAFLOC_LOG_WARN << "WAL notify record " << frame.seq
                          << " dropped: no scheduler attached";
        break;
      }
      case kWalObserve: {
        const Vector rss = decode_observe_record(frame.payload);
        if (rss.size() != deployment_.num_links())
          throw std::runtime_error("WAL observe record: link count mismatch");
        database_->link_health().observe(rss);
        break;
      }
      case kWalUpdate: {
        UpdateRecord rec = decode_update_record(frame.payload);
        update(rec.reference_columns, std::move(rec.ambient), rec.t_days);
        break;
      }
      default: {
        if (!report.detail.empty()) report.detail += "; ";
        report.detail += "unknown WAL record type " + std::to_string(frame.type) + " at seq " +
                         std::to_string(frame.seq) + "; replay stopped";
        TAFLOC_LOG_WARN << "WAL " << report.detail;
        next_seq_ = expected;
        return;
      }
    }
    ++report.replayed_records;
    ++expected;
  }
  next_seq_ = expected;
}

std::string TafLocSystem::telemetry_snapshot_json() const {
  ThreadPool::global().sample_into(*telemetry_);
  return telemetry_->snapshot_json();
}

}  // namespace tafloc
