#include "tafloc/tafloc/durability.h"

#include <stdexcept>

#include "tafloc/linalg/io.h"
#include "tafloc/storage/codec.h"

namespace tafloc {

std::string encode_ambient_record(double t_days, std::span<const double> ambient) {
  storage::ByteWriter w;
  w.put_f64(t_days);
  w.put_f64_span(ambient);
  return w.take();
}

AmbientRecord decode_ambient_record(std::string_view payload) {
  storage::ByteReader r(payload);
  AmbientRecord rec;
  rec.t_days = r.get_f64();
  rec.ambient = r.get_f64_vector();
  r.expect_exhausted("ambient record");
  if (rec.ambient.empty()) throw std::runtime_error("ambient record: empty vector");
  return rec;
}

std::string encode_observe_record(std::span<const double> rss) {
  storage::ByteWriter w;
  w.put_f64_span(rss);
  return w.take();
}

Vector decode_observe_record(std::string_view payload) {
  storage::ByteReader r(payload);
  Vector rss = r.get_f64_vector();
  r.expect_exhausted("observe record");
  if (rss.empty()) throw std::runtime_error("observe record: empty vector");
  return rss;
}

std::string encode_update_record(double t_days, const Matrix& reference_columns,
                                 std::span<const double> ambient) {
  storage::ByteWriter w;
  w.put_f64(t_days);
  save_matrix_binary(reference_columns, w);
  w.put_f64_span(ambient);
  return w.take();
}

UpdateRecord decode_update_record(std::string_view payload) {
  storage::ByteReader r(payload);
  UpdateRecord rec;
  rec.t_days = r.get_f64();
  rec.reference_columns = load_matrix_binary(r);
  rec.ambient = r.get_f64_vector();
  r.expect_exhausted("update record");
  if (rec.ambient.empty() || rec.reference_columns.rows() != rec.ambient.size())
    throw std::runtime_error("update record: inconsistent shapes");
  return rec;
}

const char* recovery_outcome_name(RecoveryReport::Outcome outcome) {
  switch (outcome) {
    case RecoveryReport::Outcome::kClean: return "clean";
    case RecoveryReport::Outcome::kReplayed: return "replayed";
    case RecoveryReport::Outcome::kFellBack: return "fell-back";
    case RecoveryReport::Outcome::kUnrecoverable: return "unrecoverable";
  }
  return "unknown";
}

}  // namespace tafloc
