#include "tafloc/tafloc/scheduler.h"

#include <cmath>
#include <stdexcept>

#include "tafloc/storage/wal.h"
#include "tafloc/tafloc/durability.h"
#include "tafloc/telemetry/metrics.h"
#include "tafloc/util/check.h"
#include "tafloc/util/log.h"

namespace tafloc {

UpdateScheduler::UpdateScheduler(Vector ambient_at_update, double updated_at_days,
                                 const SchedulerConfig& config)
    : baseline_(std::move(ambient_at_update)),
      updated_at_(updated_at_days),
      last_observation_(updated_at_days),
      config_(config) {
  TAFLOC_CHECK_ARG(!baseline_.empty(), "scheduler needs at least one link");
  TAFLOC_CHECK_ARG(updated_at_days >= 0.0, "update time must be non-negative");
  TAFLOC_CHECK_ARG(config.staleness_threshold_db > 0.0, "staleness threshold must be positive");
  TAFLOC_CHECK_ARG(config.min_interval_days >= 0.0, "min interval must be non-negative");
  TAFLOC_CHECK_ARG(config.max_interval_days > config.min_interval_days,
                   "max interval must exceed min interval");
}

void UpdateScheduler::attach_telemetry(MetricRegistry* registry) {
  telemetry_ = (registry != nullptr && registry->enabled()) ? registry : nullptr;
  staleness_gauge_ = registry_gauge(telemetry_, "scheduler.staleness_db");
  last_trigger_gauge_ = registry_gauge(telemetry_, "scheduler.last_trigger_days");
  observation_counter_ = registry_counter(telemetry_, "scheduler.observations");
  trigger_counter_ = registry_counter(telemetry_, "scheduler.update_triggers");
  dropped_counter_ = registry_counter(telemetry_, "scheduler.dropped_observations");
  dropped_out_of_order_counter_ =
      registry_counter(telemetry_, "scheduler.dropped_out_of_order");
  dropped_nan_counter_ = registry_counter(telemetry_, "scheduler.dropped_nan");
}

bool UpdateScheduler::observe_ambient(std::span<const double> ambient, double t_days) {
  TAFLOC_CHECK_ARG(ambient.size() == baseline_.size(), "ambient vector size mismatch");
  if (wal_ != nullptr) {
    // Write-ahead: the raw sample is logged (dropped ones included, so
    // replay reproduces the drop accounting too) before any state of
    // this scheduler changes.
    wal_->append(kWalAmbient, encode_ambient_record(t_days, ambient));
  }
  if (t_days < last_observation_) {
    // Out-of-order telemetry delivery is routine in a real deployment;
    // a stale sample carries no scheduling information -- drop it.
    TAFLOC_LOG_WARN << "scheduler: dropping out-of-order ambient sample at day " << t_days
                    << " (latest observation is day " << last_observation_ << ")";
    ++dropped_;
    ++dropped_out_of_order_;
    if (dropped_counter_ != nullptr) dropped_counter_->add();
    if (dropped_out_of_order_counter_ != nullptr) dropped_out_of_order_counter_->add();
    return false;
  }

  // Staleness over the finite entries only: a dead link parks NaN in
  // the scan, and one NaN must not poison the mean into a permanent
  // (or permanently suppressed) trigger.
  double sum = 0.0;
  std::size_t finite = 0;
  for (std::size_t i = 0; i < ambient.size(); ++i) {
    const double d = ambient[i] - baseline_[i];
    if (!std::isfinite(d)) continue;
    sum += std::abs(d);
    ++finite;
  }
  if (finite == 0) {
    TAFLOC_LOG_WARN << "scheduler: dropping ambient sample at day " << t_days
                    << " with no finite entries";
    ++dropped_;
    ++dropped_nan_;
    if (dropped_counter_ != nullptr) dropped_counter_->add();
    if (dropped_nan_counter_ != nullptr) dropped_nan_counter_->add();
    return false;
  }
  last_observation_ = t_days;
  staleness_ = sum / static_cast<double>(finite);

  const double age = t_days - updated_at_;
  bool trigger;
  if (age < config_.min_interval_days) {
    trigger = false;
  } else if (age >= config_.max_interval_days) {
    trigger = true;
  } else {
    trigger = staleness_ > config_.staleness_threshold_db;
  }
  if (telemetry_ != nullptr) {
    observation_counter_->add();
    staleness_gauge_->set(staleness_);
    if (trigger) {
      trigger_counter_->add();
      last_trigger_gauge_->set(t_days);
      // A zero-duration span: the timestamped update-trigger event in
      // the exported trace.
      telemetry_->record_span("scheduler.update_trigger", 0, telemetry_->now_ns(), 0);
    }
  }
  return trigger;
}

void UpdateScheduler::notify_updated(Vector fresh_ambient, double t_days) {
  TAFLOC_CHECK_ARG(fresh_ambient.size() == baseline_.size(), "ambient vector size mismatch");
  TAFLOC_CHECK_ARG(t_days >= updated_at_, "update times must not go back in time");
  if (wal_ != nullptr) wal_->append(kWalNotify, encode_ambient_record(t_days, fresh_ambient));
  baseline_ = std::move(fresh_ambient);
  updated_at_ = t_days;
  last_observation_ = t_days;
  staleness_ = 0.0;
  if (staleness_gauge_ != nullptr) staleness_gauge_->set(0.0);
}

void UpdateScheduler::save(storage::ByteWriter& out) const {
  out.put_f64_span(baseline_);
  out.put_f64(updated_at_);
  out.put_f64(last_observation_);
  out.put_f64(staleness_);
  out.put_u64(dropped_);
  out.put_u64(dropped_out_of_order_);
  out.put_u64(dropped_nan_);
  out.put_f64(config_.staleness_threshold_db);
  out.put_f64(config_.min_interval_days);
  out.put_f64(config_.max_interval_days);
}

void UpdateScheduler::restore(storage::ByteReader& in) {
  // Decode into locals and validate before committing anything: a
  // payload rejected halfway through must leave this scheduler exactly
  // as it was, not half-overwritten.
  Vector baseline = in.get_f64_vector();
  if (baseline.empty())
    throw std::runtime_error("UpdateScheduler::restore: empty baseline");
  const double updated_at = in.get_f64();
  const double last_observation = in.get_f64();
  const double staleness = in.get_f64();
  const std::size_t dropped = static_cast<std::size_t>(in.get_u64());
  const std::size_t dropped_out_of_order = static_cast<std::size_t>(in.get_u64());
  const std::size_t dropped_nan = static_cast<std::size_t>(in.get_u64());
  SchedulerConfig config;
  config.staleness_threshold_db = in.get_f64();
  config.min_interval_days = in.get_f64();
  config.max_interval_days = in.get_f64();
  // A NaN last_observation_ would silently disable the out-of-order
  // drop (every `t_days < last_observation_` comparison is false), so
  // non-finite clocks are corruption, not state.  The clocks must also
  // be mutually consistent: observations never predate the update that
  // reset them.
  if (!std::isfinite(updated_at) || !std::isfinite(last_observation) ||
      !std::isfinite(staleness) || !std::isfinite(config.staleness_threshold_db) ||
      !std::isfinite(config.min_interval_days) || !std::isfinite(config.max_interval_days))
    throw std::runtime_error("UpdateScheduler::restore: non-finite payload values");
  if (!(updated_at >= 0.0) || !(last_observation >= updated_at) || !(staleness >= 0.0) ||
      !(config.staleness_threshold_db > 0.0) || !(config.min_interval_days >= 0.0) ||
      !(config.max_interval_days > config.min_interval_days))
    throw std::runtime_error("UpdateScheduler::restore: inconsistent payload values");
  baseline_ = std::move(baseline);
  updated_at_ = updated_at;
  last_observation_ = last_observation;
  staleness_ = staleness;
  dropped_ = dropped;
  dropped_out_of_order_ = dropped_out_of_order;
  dropped_nan_ = dropped_nan;
  config_ = config;
  if (staleness_gauge_ != nullptr) staleness_gauge_->set(staleness_);
}

bool operator==(const UpdateScheduler& a, const UpdateScheduler& b) noexcept {
  return a.baseline_ == b.baseline_ && a.updated_at_ == b.updated_at_ &&
         a.last_observation_ == b.last_observation_ && a.staleness_ == b.staleness_ &&
         a.dropped_ == b.dropped_ && a.dropped_out_of_order_ == b.dropped_out_of_order_ &&
         a.dropped_nan_ == b.dropped_nan_ &&
         a.config_.staleness_threshold_db == b.config_.staleness_threshold_db &&
         a.config_.min_interval_days == b.config_.min_interval_days &&
         a.config_.max_interval_days == b.config_.max_interval_days;
}

}  // namespace tafloc
