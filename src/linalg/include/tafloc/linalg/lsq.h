// Linear and ridge least-squares solvers.
#pragma once

#include "tafloc/linalg/matrix.h"

namespace tafloc {

/// Minimize ||a x - b||_2 for a tall or square full-column-rank matrix
/// (a.rows() >= a.cols()) via Householder QR.
Vector solve_least_squares(const Matrix& a, std::span<const double> b);

/// Minimize ||a x - b||^2 + lambda ||x||^2 (lambda >= 0; lambda > 0
/// works for any shape / rank).  Solved through the regularized normal
/// equations with Cholesky.
Vector solve_ridge(const Matrix& a, std::span<const double> b, double lambda);

/// Matrix right-hand-side ridge: minimize ||a X - B||_F^2 + lambda ||X||_F^2.
/// The Gram matrix is factored once and reused across B's columns.
Matrix solve_ridge_matrix(const Matrix& a, const Matrix& b, double lambda);

/// Residual norm ||a x - b||_2 (diagnostic helper).
double residual_norm(const Matrix& a, std::span<const double> x, std::span<const double> b);

}  // namespace tafloc
