// Symmetric eigendecomposition (classical Jacobi rotations), dominant
// eigenpair via power iteration, and the Moore-Penrose pseudo-inverse.
//
// Used by the nuclear-norm LRR solver (proximal steps), by tests as an
// independent cross-check of the SVD (singular values of A are the
// square roots of the eigenvalues of A^T A), and generally available as
// substrate.
#pragma once

#include <cstddef>

#include "tafloc/linalg/matrix.h"

namespace tafloc {

/// A = V * diag(lambda) * V^T with orthonormal V, eigenvalues sorted
/// descending (by value, not magnitude).
struct EigResult {
  Vector eigenvalues;
  Matrix eigenvectors;  ///< columns are the eigenvectors, same order.
};

struct EigOptions {
  double tolerance = 1e-12;     ///< off-diagonal magnitude target (relative).
  std::size_t max_sweeps = 60;
};

/// Eigendecomposition of a symmetric matrix (symmetry is checked up to
/// a tolerance; throws std::invalid_argument otherwise).
EigResult eig_symmetric(const Matrix& a, const EigOptions& options = {});

/// Dominant eigenpair by power iteration (matrix must be square; the
/// dominant eigenvalue must be strictly largest in magnitude for
/// convergence -- reported through `converged`).
struct PowerIterationResult {
  double eigenvalue = 0.0;
  Vector eigenvector;
  std::size_t iterations = 0;
  bool converged = false;
};

PowerIterationResult power_iteration(const Matrix& a, std::size_t max_iterations = 1000,
                                     double tolerance = 1e-10);

/// Moore-Penrose pseudo-inverse via SVD: singular values below
/// rel_tol * sigma_max are treated as zero.
Matrix pseudo_inverse(const Matrix& a, double rel_tol = 1e-12);

/// 2-norm condition number sigma_max / sigma_min (infinity if
/// sigma_min is zero to working precision).
double condition_number(const Matrix& a);

}  // namespace tafloc
