// Assorted matrix operations used by the reconstruction solvers:
// soft-thresholding (the SVT proximal step), difference operators (the
// paper's continuity matrix G and similarity matrix H), rank utilities
// and deterministic random-matrix factories for tests and benches.
#pragma once

#include <cstddef>

#include "tafloc/linalg/matrix.h"
#include "tafloc/util/rng.h"

namespace tafloc {

/// Scalar soft-threshold: sign(x) * max(|x| - tau, 0).
double soft_threshold(double x, double tau) noexcept;

/// Singular-value soft-threshold (the proximal operator of the nuclear
/// norm): U * max(Sigma - tau, 0) * V^T.  tau must be >= 0.
Matrix singular_value_shrink(const Matrix& a, double tau);

/// Destination-passing shrink: writes into `out` (resized; reuses the
/// buffer across solver iterations).  `out` must not alias `a`.
/// Identical arithmetic to singular_value_shrink.
void singular_value_shrink_into(const Matrix& a, double tau, Matrix& out);

/// First-difference operator D (size (n-1) x n): (D x)_i = x_{i+1} - x_i.
/// Requires n >= 2.  Left-multiplying by D differences the rows of a
/// matrix (the paper's H); right-multiplying by D^T differences its
/// columns (the paper's G).
Matrix first_difference_operator(std::size_t n);

/// Second-difference operator (size (n-2) x n): x_{i} - 2 x_{i+1} + x_{i+2}.
/// Requires n >= 3.
Matrix second_difference_operator(std::size_t n);

/// Numeric rank via SVD.
std::size_t numeric_rank(const Matrix& a, double rel_tol = 1e-10);

/// Matrix with i.i.d. standard normal entries.
Matrix random_gaussian(std::size_t rows, std::size_t cols, Rng& rng);

/// Random matrix of exact rank `rank`: product of two Gaussian factors
/// (rank <= min(rows, cols)); entries scaled so the Frobenius norm is
/// about sqrt(rows * cols).
Matrix random_low_rank(std::size_t rows, std::size_t cols, std::size_t rank, Rng& rng);

/// Random matrix with orthonormal columns (rows >= cols), from QR of a
/// Gaussian matrix.
Matrix random_orthonormal(std::size_t rows, std::size_t cols, Rng& rng);

}  // namespace tafloc
