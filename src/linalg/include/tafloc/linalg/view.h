// Non-owning strided views over dense row-major storage.
//
// The fingerprint pipeline is dominated by repeated sub-matrix slicing
// of one large RSS matrix (column scans in the matchers, reference
// sub-blocks in the solvers).  These views make every such slice
// zero-copy: a view is a (pointer, shape, row-stride) triple into
// storage owned by someone else -- the same tensor-view discipline a
// training stack uses.
//
// Lifetime contract: a view is valid only while the viewed storage is
// alive AND unreallocated.  Matrix::resize() within capacity keeps
// views alive; growing past capacity, move-assignment and destruction
// invalidate them.  Views are cheap value types -- pass them by value.
//
// Stride contract: rows are `row_stride` elements apart; elements
// within a row are contiguous.  A full row-major matrix has
// row_stride == cols; a block or column-range view of it has
// row_stride == the parent's cols.  Vector views carry their own
// element stride so a matrix column (stride == row_stride) is a view,
// not a copy.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "tafloc/util/check.h"

// Element access is unchecked (and noexcept) in release builds; debug
// builds bounds-check, which throws.
#ifdef NDEBUG
#define TAFLOC_MATRIX_ACCESS_NOEXCEPT noexcept
#else
#define TAFLOC_MATRIX_ACCESS_NOEXCEPT noexcept(false)
#endif

namespace tafloc {

/// Read-only strided vector view: `size` elements, `stride` apart.
class ConstVectorView {
 public:
  ConstVectorView() = default;
  ConstVectorView(const double* data, std::size_t size, std::size_t stride = 1) noexcept
      : data_(data), size_(size), stride_(stride) {}
  /// Contiguous storage (spans, Vector via span) views with stride 1.
  ConstVectorView(std::span<const double> s) noexcept : data_(s.data()), size_(s.size()) {}

  std::size_t size() const noexcept { return size_; }
  std::size_t stride() const noexcept { return stride_; }
  const double* data() const noexcept { return data_; }
  bool empty() const noexcept { return size_ == 0; }
  bool contiguous() const noexcept { return stride_ == 1 || size_ <= 1; }

  double operator[](std::size_t i) const TAFLOC_MATRIX_ACCESS_NOEXCEPT {
#ifndef NDEBUG
    TAFLOC_CHECK_BOUNDS(i, size_, "VectorView index");
#endif
    return data_[i * stride_];
  }

  /// Owning copy (the explicit "I need a contiguous buffer" escape).
  std::vector<double> to_vector() const {
    std::vector<double> v(size_);
    for (std::size_t i = 0; i < size_; ++i) v[i] = data_[i * stride_];
    return v;
  }

 private:
  const double* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t stride_ = 1;
};

/// Mutable strided vector view.
class VectorView {
 public:
  VectorView() = default;
  VectorView(double* data, std::size_t size, std::size_t stride = 1) noexcept
      : data_(data), size_(size), stride_(stride) {}
  VectorView(std::span<double> s) noexcept : data_(s.data()), size_(s.size()) {}

  std::size_t size() const noexcept { return size_; }
  std::size_t stride() const noexcept { return stride_; }
  double* data() const noexcept { return data_; }
  bool empty() const noexcept { return size_ == 0; }
  bool contiguous() const noexcept { return stride_ == 1 || size_ <= 1; }

  double& operator[](std::size_t i) const TAFLOC_MATRIX_ACCESS_NOEXCEPT {
#ifndef NDEBUG
    TAFLOC_CHECK_BOUNDS(i, size_, "VectorView index");
#endif
    return data_[i * stride_];
  }

  void fill(double value) const noexcept {
    for (std::size_t i = 0; i < size_; ++i) data_[i * stride_] = value;
  }

  operator ConstVectorView() const noexcept { return {data_, size_, stride_}; }

 private:
  double* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t stride_ = 1;
};

/// Read-only view of a row-major matrix (or a block of one): rows are
/// `row_stride` elements apart, each row contiguous.
class ConstMatrixView {
 public:
  ConstMatrixView() = default;
  ConstMatrixView(const double* data, std::size_t rows, std::size_t cols,
                  std::size_t row_stride) noexcept
      : data_(data), rows_(rows), cols_(cols), row_stride_(row_stride) {}

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t row_stride() const noexcept { return row_stride_; }
  std::size_t size() const noexcept { return rows_ * cols_; }
  bool empty() const noexcept { return rows_ == 0 || cols_ == 0; }
  const double* data() const noexcept { return data_; }
  /// True when the viewed elements form one contiguous range.
  bool contiguous() const noexcept { return row_stride_ == cols_ || rows_ <= 1; }

  double operator()(std::size_t r, std::size_t c) const TAFLOC_MATRIX_ACCESS_NOEXCEPT {
#ifndef NDEBUG
    TAFLOC_CHECK_BOUNDS(r, rows_, "MatrixView row");
    TAFLOC_CHECK_BOUNDS(c, cols_, "MatrixView col");
#endif
    return data_[r * row_stride_ + c];
  }

  /// Pointer to the start of row r (rows are contiguous).
  const double* row_ptr(std::size_t r) const noexcept { return data_ + r * row_stride_; }
  /// Row r as a contiguous span.
  std::span<const double> row_span(std::size_t r) const {
    TAFLOC_CHECK_BOUNDS(r, rows_, "MatrixView row");
    return {row_ptr(r), cols_};
  }
  /// Column j as a strided vector view (stride == row_stride).
  ConstVectorView col_view(std::size_t j) const {
    TAFLOC_CHECK_BOUNDS(j, cols_, "MatrixView col");
    return {data_ + j, rows_, row_stride_};
  }
  /// The (nr x nc) block starting at (r0, c0), sharing this storage.
  ConstMatrixView block_view(std::size_t r0, std::size_t c0, std::size_t nr,
                             std::size_t nc) const {
    TAFLOC_CHECK_ARG(r0 + nr <= rows_ && c0 + nc <= cols_, "block view exceeds matrix bounds");
    return {data_ + r0 * row_stride_ + c0, nr, nc, row_stride_};
  }
  /// The contiguous column range [c0, c0 + nc), all rows.
  ConstMatrixView columns_view(std::size_t c0, std::size_t nc) const {
    return block_view(0, c0, rows_, nc);
  }

  bool same_shape(const ConstMatrixView& other) const noexcept {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  /// One-past-the-end of the viewed storage (for aliasing checks).
  const double* storage_end() const noexcept {
    return empty() ? data_ : data_ + (rows_ - 1) * row_stride_ + cols_;
  }

 private:
  const double* data_ = nullptr;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t row_stride_ = 0;
};

/// Mutable view of a row-major matrix (or a block of one).
class MatrixView {
 public:
  MatrixView() = default;
  MatrixView(double* data, std::size_t rows, std::size_t cols, std::size_t row_stride) noexcept
      : data_(data), rows_(rows), cols_(cols), row_stride_(row_stride) {}

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t row_stride() const noexcept { return row_stride_; }
  std::size_t size() const noexcept { return rows_ * cols_; }
  bool empty() const noexcept { return rows_ == 0 || cols_ == 0; }
  double* data() const noexcept { return data_; }
  bool contiguous() const noexcept { return row_stride_ == cols_ || rows_ <= 1; }

  double& operator()(std::size_t r, std::size_t c) const TAFLOC_MATRIX_ACCESS_NOEXCEPT {
#ifndef NDEBUG
    TAFLOC_CHECK_BOUNDS(r, rows_, "MatrixView row");
    TAFLOC_CHECK_BOUNDS(c, cols_, "MatrixView col");
#endif
    return data_[r * row_stride_ + c];
  }

  double* row_ptr(std::size_t r) const noexcept { return data_ + r * row_stride_; }
  std::span<double> row_span(std::size_t r) const {
    TAFLOC_CHECK_BOUNDS(r, rows_, "MatrixView row");
    return {row_ptr(r), cols_};
  }
  VectorView col_view(std::size_t j) const {
    TAFLOC_CHECK_BOUNDS(j, cols_, "MatrixView col");
    return {data_ + j, rows_, row_stride_};
  }
  MatrixView block_view(std::size_t r0, std::size_t c0, std::size_t nr, std::size_t nc) const {
    TAFLOC_CHECK_ARG(r0 + nr <= rows_ && c0 + nc <= cols_, "block view exceeds matrix bounds");
    return {data_ + r0 * row_stride_ + c0, nr, nc, row_stride_};
  }
  MatrixView columns_view(std::size_t c0, std::size_t nc) const {
    return block_view(0, c0, rows_, nc);
  }

  void fill(double value) const noexcept {
    for (std::size_t r = 0; r < rows_; ++r) {
      double* p = row_ptr(r);
      for (std::size_t c = 0; c < cols_; ++c) p[c] = value;
    }
  }

  bool same_shape(const ConstMatrixView& other) const noexcept {
    return rows_ == other.rows() && cols_ == other.cols();
  }

  double* storage_end() const noexcept {
    return empty() ? data_ : data_ + (rows_ - 1) * row_stride_ + cols_;
  }

  operator ConstMatrixView() const noexcept { return {data_, rows_, cols_, row_stride_}; }

 private:
  double* data_ = nullptr;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t row_stride_ = 0;
};

}  // namespace tafloc
