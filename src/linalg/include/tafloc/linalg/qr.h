// Householder QR decomposition, plain and column-pivoted.
//
// The column-pivoted (rank-revealing) variant is the engine behind
// TafLoc's reference-location selection: the first n pivot columns of
// the fingerprint matrix are its "maximal linearly independent" columns
// in the greedy sense the paper describes.
#pragma once

#include <cstddef>
#include <vector>

#include "tafloc/linalg/matrix.h"

namespace tafloc {

/// Thin QR: a (m x n) = q (m x k) * r (k x n) with k = min(m, n),
/// q having orthonormal columns and r upper trapezoidal.
struct QrDecomposition {
  Matrix q;
  Matrix r;
};

/// Compute the thin Householder QR of a non-empty matrix.
QrDecomposition qr_decompose(const Matrix& a);

/// Column-pivoted thin QR: a * P = q * r, where P permutes columns so
/// that |r(0,0)| >= |r(1,1)| >= ...  The permutation is returned as the
/// list of original column indices in pivot order.
struct PivotedQr {
  Matrix q;
  Matrix r;
  /// permutation[k] = original column index chosen at pivot step k.
  std::vector<std::size_t> permutation;

  /// Numeric rank: number of diagonal entries of r with
  /// |r(k,k)| > rel_tol * |r(0,0)|.  Returns 0 for an all-zero matrix.
  std::size_t rank(double rel_tol = 1e-10) const;
};

/// Compute the column-pivoted thin QR of a non-empty matrix.
PivotedQr qr_decompose_pivoted(const Matrix& a);

/// Solve the upper-triangular system r x = b by back substitution.
/// r must be square with non-zero diagonal; b.size() == r.rows().
Vector solve_upper_triangular(const Matrix& r, std::span<const double> b);

}  // namespace tafloc
