// Free-function kernels on Vector (std::vector<double>).
#pragma once

#include <span>

#include "tafloc/linalg/matrix.h"

namespace tafloc {

/// Dot product; spans must have equal length.
double dot(std::span<const double> a, std::span<const double> b);

/// Euclidean norm.
double norm2(std::span<const double> v) noexcept;

/// Largest absolute component (infinity norm); 0 for an empty span.
double norm_inf(std::span<const double> v) noexcept;

/// y += alpha * x (equal lengths).
void axpy(double alpha, std::span<const double> x, std::span<double> y);

/// v *= alpha.
void scale(std::span<double> v, double alpha) noexcept;

/// Element-wise difference a - b as a new vector (equal lengths).
Vector subtract(std::span<const double> a, std::span<const double> b);

/// Element-wise sum a + b as a new vector (equal lengths).
Vector add(std::span<const double> a, std::span<const double> b);

/// Euclidean distance between two equal-length vectors.
double distance2(std::span<const double> a, std::span<const double> b);

/// Normalize v to unit Euclidean norm in place; returns the original
/// norm.  A zero vector is left unchanged and 0 is returned.
double normalize(std::span<double> v) noexcept;

/// True if every component is finite (no NaN / infinity).
bool all_finite(std::span<const double> v) noexcept;

}  // namespace tafloc
