// Conjugate gradient for symmetric positive (semi-)definite operators
// given only as a matvec callback -- the inner solver of each LoLi-IR
// half-step, where forming the full normal-equation matrix over all of
// vec(L) or vec(R) would be wasteful.
#pragma once

#include <cstddef>
#include <functional>

#include "tafloc/linalg/matrix.h"

namespace tafloc {

/// Result of a CG run.
struct CgResult {
  Vector x;                  ///< final iterate.
  std::size_t iterations = 0;
  bool converged = false;    ///< residual criterion met within the cap.
  double residual_norm = 0.0;
};

/// Options controlling the iteration.
struct CgOptions {
  double relative_tolerance = 1e-10;  ///< stop when ||r|| <= tol * ||b||.
  std::size_t max_iterations = 0;     ///< 0 means "dimension of the system".
};

/// Apply-callback type: y = A x for the SPD operator A.
using LinearOperator = std::function<Vector(const Vector&)>;

/// Destination-passing apply-callback: write A x into `out`
/// (pre-sized); must not retain either span.
using LinearOperatorInto =
    std::function<void(std::span<const double> x, std::span<double> out)>;

/// Iteration outcome of the in-place solver (the iterate itself lives
/// in the caller's buffer).
struct CgSummary {
  std::size_t iterations = 0;
  bool converged = false;
  double residual_norm = 0.0;
};

/// Reusable scratch for conjugate_gradient_in_place: three work vectors
/// the solver resizes as needed.  Hoist one instance outside an
/// iteration loop (or back it with Workspace leases) and the solver
/// performs no heap allocation after the first call.
struct CgScratch {
  Vector r, p, ap;
};

/// Solve A x = b with CG starting from x0 (pass an all-zero vector when
/// no better guess exists).  The operator must be symmetric positive
/// (semi-)definite; a breakdown (p^T A p <= 0) stops the iteration with
/// converged == false.
CgResult conjugate_gradient(const LinearOperator& apply, std::span<const double> b,
                            std::span<const double> x0, const CgOptions& options = {});

/// Allocation-free CG: `x` holds the initial guess on entry and the
/// final iterate on exit; all temporaries come from `scratch`.
/// Identical arithmetic to conjugate_gradient (the value API is a thin
/// wrapper over this one).
CgSummary conjugate_gradient_in_place(const LinearOperatorInto& apply, std::span<const double> b,
                                      std::span<double> x, CgScratch& scratch,
                                      const CgOptions& options = {});

}  // namespace tafloc
