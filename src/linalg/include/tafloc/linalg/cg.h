// Conjugate gradient for symmetric positive (semi-)definite operators
// given only as a matvec callback -- the inner solver of each LoLi-IR
// half-step, where forming the full normal-equation matrix over all of
// vec(L) or vec(R) would be wasteful.
#pragma once

#include <cstddef>
#include <functional>

#include "tafloc/linalg/matrix.h"

namespace tafloc {

/// Result of a CG run.
struct CgResult {
  Vector x;                  ///< final iterate.
  std::size_t iterations = 0;
  bool converged = false;    ///< residual criterion met within the cap.
  double residual_norm = 0.0;
};

/// Options controlling the iteration.
struct CgOptions {
  double relative_tolerance = 1e-10;  ///< stop when ||r|| <= tol * ||b||.
  std::size_t max_iterations = 0;     ///< 0 means "dimension of the system".
};

/// Apply-callback type: y = A x for the SPD operator A.
using LinearOperator = std::function<Vector(const Vector&)>;

/// Solve A x = b with CG starting from x0 (pass an all-zero vector when
/// no better guess exists).  The operator must be symmetric positive
/// (semi-)definite; a breakdown (p^T A p <= 0) stops the iteration with
/// converged == false.
CgResult conjugate_gradient(const LinearOperator& apply, std::span<const double> b,
                            std::span<const double> x0, const CgOptions& options = {});

}  // namespace tafloc
