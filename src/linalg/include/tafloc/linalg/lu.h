// LU factorization with partial pivoting (general square solves,
// determinants and inverses -- used by the RTI baseline's regularized
// inverse and by tests as an independent cross-check of Cholesky).
#pragma once

#include <vector>

#include "tafloc/linalg/matrix.h"

namespace tafloc {

/// Compact LU factorization: P a = L U stored in one matrix (unit lower
/// triangle implicit), with the row permutation and its sign.
class LuDecomposition {
 public:
  /// Factor a non-empty square matrix.  Throws std::domain_error if the
  /// matrix is singular to working precision.
  explicit LuDecomposition(const Matrix& a);

  /// Solve a x = b.
  Vector solve(std::span<const double> b) const;

  /// Solve a X = B for each column of B.
  Matrix solve_matrix(const Matrix& b) const;

  /// Determinant of the factored matrix.
  double determinant() const noexcept;

  /// Inverse of the factored matrix.
  Matrix inverse() const;

  std::size_t dimension() const noexcept { return lu_.rows(); }

 private:
  Matrix lu_;
  std::vector<std::size_t> pivot_;
  int permutation_sign_ = 1;
};

/// Convenience: solve a x = b in one call.
Vector solve_linear(const Matrix& a, std::span<const double> b);

}  // namespace tafloc
