// Compressed sparse row (CSR) matrix.
//
// The RTI weight model is naturally sparse (each link's ellipse covers
// a thin band of grid cells); at Fig. 4 scale (60 links x 3600 cells) a
// dense normal-equation solve stops being reasonable, so the iterative
// RTI variant assembles W sparse and solves with CG using CSR matvecs.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "tafloc/linalg/matrix.h"

namespace tafloc {

/// One (row, col, value) entry for assembly.
struct Triplet {
  std::size_t row;
  std::size_t col;
  double value;
};

class SparseMatrix {
 public:
  /// Empty 0x0 matrix.
  SparseMatrix() = default;

  /// Assemble from triplets (duplicates are summed; zeros after summing
  /// are kept -- call prune() to drop them).
  SparseMatrix(std::size_t rows, std::size_t cols, std::vector<Triplet> triplets);

  /// Convert from a dense matrix, dropping entries with |x| <= tol.
  static SparseMatrix from_dense(const Matrix& dense, double tol = 0.0);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  /// Number of stored entries.
  std::size_t nnz() const noexcept { return values_.size(); }

  /// y = A x.
  Vector multiply(std::span<const double> x) const;

  /// y = A^T x.
  Vector multiply_transposed(std::span<const double> x) const;

  /// Element lookup (O(log nnz_row)); zero for non-stored entries.
  double at(std::size_t row, std::size_t col) const;

  /// Densify (tests / small matrices only).
  Matrix to_dense() const;

  /// Remove stored entries with |x| <= tol.
  void prune(double tol = 0.0);

  /// Row slice access for iteration: column indices and values of `row`.
  std::span<const std::size_t> row_indices(std::size_t row) const;
  std::span<const double> row_values(std::size_t row) const;

  /// Frobenius norm over stored entries.
  double frobenius_norm() const noexcept;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> row_start_;  ///< size rows_+1.
  std::vector<std::size_t> col_;
  std::vector<double> values_;
};

}  // namespace tafloc
