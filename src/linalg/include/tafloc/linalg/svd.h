// Thin singular value decomposition via one-sided Jacobi rotations.
//
// A (m x n) = U (m x k) * diag(sigma) (k x k) * V^T (k x n), k = min(m, n),
// sigma sorted descending, U and V with orthonormal columns.  One-sided
// Jacobi is chosen over bidiagonalization for its simplicity and very
// high relative accuracy; fingerprint matrices here are small enough
// (tens of links x up to a few thousand grids) that its O(m n^2) sweeps
// are cheap on the minor dimension.
#pragma once

#include <cstddef>

#include "tafloc/linalg/matrix.h"

namespace tafloc {

struct SvdResult {
  Matrix u;      ///< m x k, orthonormal columns.
  Vector sigma;  ///< k singular values, descending, non-negative.
  Matrix v;      ///< n x k, orthonormal columns.

  /// Reconstruct U * diag(sigma) * V^T truncated to the leading `rank`
  /// singular triplets (rank = 0 means use all of them).
  Matrix reconstruct(std::size_t rank = 0) const;

  /// Destination-passing reconstruct: resizes `out` (no allocation
  /// within capacity) and writes the same result, same accumulation
  /// order, as reconstruct().
  void reconstruct_into(Matrix& out, std::size_t rank = 0) const;

  /// Number of singular values > rel_tol * sigma[0] (0 if sigma[0] == 0).
  std::size_t numeric_rank(double rel_tol = 1e-10) const;

  /// Nuclear norm: sum of singular values.
  double nuclear_norm() const noexcept;
};

/// Options controlling the Jacobi iteration.
struct SvdOptions {
  double tolerance = 1e-12;    ///< relative off-diagonal tolerance.
  std::size_t max_sweeps = 60; ///< hard sweep cap (convergence is quadratic).
};

/// Compute the thin SVD of a non-empty matrix.  Throws
/// std::runtime_error if the Jacobi sweeps fail to converge (which for
/// the default cap indicates pathological input such as NaNs).
SvdResult svd_decompose(const Matrix& a, const SvdOptions& options = {});

/// Best rank-`rank` approximation of `a` in Frobenius norm (Eckart-Young).
Matrix truncated_svd_approximation(const Matrix& a, std::size_t rank);

}  // namespace tafloc
