// Dense row-major matrix of double.
//
// This is the numeric workhorse of the whole library: fingerprint
// matrices (M links x N grids), factor matrices L/R, RTI weight models
// and all solver internals are built on it.  The type is a regular
// value type (copyable, movable, equality-comparable) per Core
// Guidelines C.11; element access is bounds-checked in debug builds and
// via at() always.
#pragma once

#include <algorithm>
#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "tafloc/linalg/view.h"
#include "tafloc/util/check.h"

namespace tafloc {

/// Dense column vector, stored as a plain std::vector<double>.
using Vector = std::vector<double>;

class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() = default;

  /// rows x cols matrix with every element set to `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// Build from nested initializer lists; all rows must have equal length.
  static Matrix from_rows(std::initializer_list<std::initializer_list<double>> rows);

  /// n x n identity.
  static Matrix identity(std::size_t n);

  /// Diagonal matrix from a vector of diagonal entries.
  static Matrix diagonal(std::span<const double> diag);

  /// Column matrix (n x 1) from a vector.
  static Matrix column(std::span<const double> v);

  /// Owning copy of a (possibly strided) view.
  explicit Matrix(ConstMatrixView v);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  /// Total element count (rows * cols).
  std::size_t size() const noexcept { return data_.size(); }
  bool empty() const noexcept { return data_.empty(); }

  /// Unchecked-in-release element access (debug builds bounds-check).
  double& operator()(std::size_t r, std::size_t c) TAFLOC_MATRIX_ACCESS_NOEXCEPT {
#ifndef NDEBUG
    TAFLOC_CHECK_BOUNDS(r, rows_, "Matrix row");
    TAFLOC_CHECK_BOUNDS(c, cols_, "Matrix col");
#endif
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const TAFLOC_MATRIX_ACCESS_NOEXCEPT {
#ifndef NDEBUG
    TAFLOC_CHECK_BOUNDS(r, rows_, "Matrix row");
    TAFLOC_CHECK_BOUNDS(c, cols_, "Matrix col");
#endif
    return data_[r * cols_ + c];
  }

  /// Always-checked element access.
  double at(std::size_t r, std::size_t c) const;
  double& at(std::size_t r, std::size_t c);

  /// Copy of row r / column c as a Vector.
  Vector row(std::size_t r) const;
  Vector col(std::size_t c) const;

  /// Overwrite row r / column c.  Span length must match.
  void set_row(std::size_t r, std::span<const double> values);
  void set_col(std::size_t c, std::span<const double> values);
  /// Overwrite column c from a (possibly strided) view -- the zero-copy
  /// column-to-column transfer.
  void set_col(std::size_t c, ConstVectorView values);

  /// Contiguous storage (row-major).
  std::span<double> data() noexcept { return data_; }
  std::span<const double> data() const noexcept { return data_; }

  // -- non-owning views (valid while this matrix is alive and its
  // storage unreallocated; see view.h for the lifetime contract) --

  /// View of the whole matrix (row_stride == cols).
  ConstMatrixView view() const noexcept { return {data_.data(), rows_, cols_, cols_}; }
  MatrixView view() noexcept { return {data_.data(), rows_, cols_, cols_}; }

  /// Implicit conversion so view-based kernels accept a Matrix directly.
  operator ConstMatrixView() const noexcept { return view(); }
  operator MatrixView() noexcept { return view(); }

  /// Column c as a strided vector view (no copy, unlike col()).
  ConstVectorView col_view(std::size_t c) const { return view().col_view(c); }
  VectorView col_view(std::size_t c) { return view().col_view(c); }

  /// Row r as a contiguous span (rows of a row-major matrix are dense).
  std::span<const double> row_span(std::size_t r) const { return view().row_span(r); }
  std::span<double> row_span(std::size_t r) { return view().row_span(r); }

  /// The (nr x nc) block starting at (r0, c0), sharing this storage
  /// (no copy, unlike submatrix()).
  ConstMatrixView block_view(std::size_t r0, std::size_t c0, std::size_t nr,
                             std::size_t nc) const {
    return view().block_view(r0, c0, nr, nc);
  }
  MatrixView block_view(std::size_t r0, std::size_t c0, std::size_t nr, std::size_t nc) {
    return view().block_view(r0, c0, nr, nc);
  }

  /// The contiguous column range [c0, c0 + nc), all rows.
  ConstMatrixView columns_view(std::size_t c0, std::size_t nc) const {
    return view().columns_view(c0, nc);
  }
  MatrixView columns_view(std::size_t c0, std::size_t nc) { return view().columns_view(c0, nc); }

  /// Reshape in place to rows x cols.  Contents are reinterpreted in
  /// flattened row-major order: the first min(old, new) elements keep
  /// their values and any tail beyond the old size is zero
  /// (std::vector::resize value-initializes) -- pair with fill() when
  /// fresh contents are needed.  No allocation happens while
  /// rows * cols stays within capacity() -- the property Workspace
  /// leasing (and view stability) relies on.
  void resize(std::size_t rows, std::size_t cols) {
    TAFLOC_CHECK_ARG((rows == 0) == (cols == 0),
                     "a matrix must have both dimensions zero or both positive");
    rows_ = rows;
    cols_ = cols;
    data_.resize(rows * cols);
  }

  /// Set every element to `value`.
  void fill(double value) noexcept { std::fill(data_.begin(), data_.end(), value); }

  /// Element capacity of the underlying storage.
  std::size_t capacity() const noexcept { return data_.capacity(); }

  /// New matrix that is the transpose of this one.
  Matrix transposed() const;

  /// Copy of the block starting at (r0, c0) of shape (nr, nc).
  Matrix submatrix(std::size_t r0, std::size_t c0, std::size_t nr, std::size_t nc) const;

  /// New matrix whose columns are this matrix's columns at `indices`
  /// (in the given order; duplicates allowed).
  Matrix select_columns(std::span<const std::size_t> indices) const;

  /// New matrix whose rows are this matrix's rows at `indices`.
  Matrix select_rows(std::span<const std::size_t> indices) const;

  /// Shape predicate.
  bool same_shape(const Matrix& other) const noexcept {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  // -- in-place arithmetic (shapes must match where applicable) --
  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double scalar) noexcept;

  /// Element-wise (Hadamard) product.
  Matrix hadamard(const Matrix& other) const;

  /// Sum over all elements of the element-wise product (the Frobenius
  /// inner product <this, other>).
  double frobenius_dot(const Matrix& other) const;

  /// Frobenius norm sqrt(sum x_ij^2).
  double frobenius_norm() const noexcept;

  /// Largest absolute element; 0 for an empty matrix.
  double max_abs() const noexcept;

  /// Sum of all elements.
  double sum() const noexcept;

  /// Exact element-wise equality (used by tests on constructed values).
  friend bool operator==(const Matrix& a, const Matrix& b) noexcept {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

  /// Human-readable dump (for diagnostics / test failure messages).
  std::string to_string(int decimals = 3) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

// -- free arithmetic --

/// Matrix sum / difference; shapes must match.
Matrix operator+(Matrix a, const Matrix& b);
Matrix operator-(Matrix a, const Matrix& b);

/// Scalar scaling.
Matrix operator*(Matrix a, double s);
Matrix operator*(double s, Matrix a);

/// Matrix product (a.cols() must equal b.rows()).
Matrix operator*(const Matrix& a, const Matrix& b);

/// Matrix-vector product (a.cols() must equal x.size()).
Vector multiply(const Matrix& a, std::span<const double> x);

/// Transposed matrix-vector product: a^T x (a.rows() must equal x.size()).
Vector multiply_transposed(const Matrix& a, std::span<const double> x);

/// a^T * b computed without forming a.transposed() (a.rows() == b.rows()).
Matrix gram_product(const Matrix& a, const Matrix& b);

/// a * b^T computed without forming b.transposed() (a.cols() == b.cols()).
Matrix outer_product(const Matrix& a, const Matrix& b);

/// Maximum absolute difference between two same-shaped matrices.
double max_abs_diff(const Matrix& a, const Matrix& b);

// -- destination-passing kernels --
//
// The in-place counterparts of the value-returning operations above.
// The fundamental forms operate on *views*: inputs are ConstMatrixView
// (a Matrix converts implicitly; a block/column-range view plugs in
// with zero copies) and the output is a pre-shaped MatrixView --
// shapes are checked, never resized, so a kernel can write straight
// into a block of a larger matrix.  The owning-Matrix overloads below
// them are one-line wrappers that resize `out` (so a Workspace-leased
// buffer is reused without allocation) and forward to the view form.
//
// Each kernel runs blocked/tiled with the outer loop parallelized on
// the global ThreadPool.  Work is partitioned by *output rows*, and
// each output element's floating-point accumulation order is identical
// to the sequential kernel's, so results are bit-identical at every
// thread count -- and identical whether operands are owning matrices,
// views of them, or views into larger strided storage.
//
// The innermost row primitives (the axpy inside gemm / gram /
// transposed matvec / add_scaled, and the hadamard row) dispatch
// through the pluggable KernelOps table (backend.h): scalar reference
// or AVX2, selected via ExecConfig::kernel_backend or the
// TAFLOC_KERNEL_BACKEND environment variable.  Backends preserve the
// per-element operation sequence exactly (no FMA, no lane-shared
// accumulators), so kernel results are ALSO bit-identical across
// backends; dot-product reductions (matrix-vector multiply,
// outer_product) stay scalar everywhere for the same reason.
//
// Aliasing: where "out must not alias an input" is stated, debug
// builds verify it (std::invalid_argument on overlap of the viewed
// storage ranges); release builds trust the caller.

/// out = a * b (blocked gemm; out pre-shaped a.rows() x b.cols(); out
/// must not alias a or b).
void multiply_into(ConstMatrixView a, ConstMatrixView b, MatrixView out);

/// out = a^T * b without forming transposes (out pre-shaped
/// a.cols() x b.cols(); out must not alias a or b).
void gram_product_into(ConstMatrixView a, ConstMatrixView b, MatrixView out);

/// out = a * b^T without forming transposes (out pre-shaped
/// a.rows() x b.rows(); out must not alias a or b).
void outer_product_into(ConstMatrixView a, ConstMatrixView b, MatrixView out);

/// out = a^T (out pre-shaped a.cols() x a.rows(); must not alias a).
void transposed_into(ConstMatrixView a, MatrixView out);

/// out = a o b element-wise (out pre-shaped; may alias a or b when the
/// strides line up, e.g. all three are views of equal shape).
void hadamard_into(ConstMatrixView a, ConstMatrixView b, MatrixView out);

/// y += s * x element-wise (the matrix axpy; shapes must match).
void add_scaled_into(ConstMatrixView x, double s, MatrixView y);

/// Copy src into dst (shapes must match; strided-to-strided).
void copy_into(ConstMatrixView src, MatrixView dst);

/// Gather arbitrary columns of src (in index order, duplicates
/// allowed) into the pre-shaped dst (src.rows() x indices.size()) --
/// the no-allocation replacement for select_columns() when the
/// destination is leased.
void gather_columns_into(ConstMatrixView src, std::span<const std::size_t> indices,
                         MatrixView dst);

// Owning-Matrix overloads: resize `out` and forward to the view form.
void multiply_into(const Matrix& a, const Matrix& b, Matrix& out);
void gram_product_into(const Matrix& a, const Matrix& b, Matrix& out);
void outer_product_into(const Matrix& a, const Matrix& b, Matrix& out);
void transposed_into(const Matrix& a, Matrix& out);
void hadamard_into(const Matrix& a, const Matrix& b, Matrix& out);
void gather_columns_into(const Matrix& src, std::span<const std::size_t> indices, Matrix& dst);

/// y = a * x (parallel over rows; y resized to a.rows()).
void multiply_into(ConstMatrixView a, std::span<const double> x, Vector& y);

/// y = a^T x (parallel over output entries; y resized to a.cols()).
void multiply_transposed_into(ConstMatrixView a, std::span<const double> x, Vector& y);

/// Frobenius norm of (a - b) without forming the difference.
double frobenius_diff_norm(ConstMatrixView a, ConstMatrixView b);

}  // namespace tafloc
