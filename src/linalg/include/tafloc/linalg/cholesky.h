// Cholesky factorization and solves for symmetric positive definite
// systems (the normal equations of every ridge subproblem in LoLi-IR
// and the LRR correlation-matrix fit).
#pragma once

#include "tafloc/linalg/matrix.h"

namespace tafloc {

/// Lower-triangular Cholesky factor L with a = L L^T.  `a` must be
/// square and symmetric positive definite; throws std::domain_error if
/// a non-positive pivot is met (matrix not SPD within roundoff).
Matrix cholesky_factor(const Matrix& a);

/// Solve a x = b given the factor L from cholesky_factor(a).
Vector cholesky_solve(const Matrix& l, std::span<const double> b);

/// Solve a X = B column-by-column given the factor L (B: n x k).
Matrix cholesky_solve_matrix(const Matrix& l, const Matrix& b);

/// Convenience: factor + solve in one call.
Vector solve_spd(const Matrix& a, std::span<const double> b);

}  // namespace tafloc
