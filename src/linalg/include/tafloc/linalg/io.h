// Serialization for matrices and vectors.
//
// Text format (whitespace separated, full double precision):
//   matrix <rows> <cols>\n  <row-major values...>
//   vector <size>\n         <values...>
// Used to persist TafLoc's calibration state (fingerprints, correlation
// matrix, masks) so a deployment survives process restarts.
//
// Binary format (storage/codec.h ByteWriter/ByteReader, little-endian,
// IEEE-754 bit patterns): the payload form the durability layer embeds
// in snapshots and WAL records.  Round trips are bit-exact, which the
// text format's decimal round trip is not required to be.
//
// Both loaders are hardened against hostile input: dimension headers
// are validated against kMaxLoadElements *before* any allocation, so a
// truncated, garbage or adversarial stream yields std::runtime_error --
// never bad_alloc, UB, or a silent short read.
#pragma once

#include <iosfwd>
#include <string>

#include "tafloc/linalg/matrix.h"
#include "tafloc/storage/codec.h"

namespace tafloc {

/// Largest rows * cols (or vector length) a loader will allocate for.
/// Generous for any TafLoc deployment; small enough that a garbage
/// header cannot drive the allocator into the ground.
inline constexpr std::uint64_t kMaxLoadElements = storage::kMaxElements;

/// Write / read a matrix.  Loading throws std::runtime_error on
/// malformed input (wrong tag, bad/absurd dimensions, missing values).
void save_matrix(const Matrix& m, std::ostream& out);
Matrix load_matrix(std::istream& in);

/// Write / read a vector.
void save_vector(std::span<const double> v, std::ostream& out);
Vector load_vector(std::istream& in);

/// File-path conveniences (throw std::runtime_error when the file
/// cannot be opened).
void save_matrix_file(const Matrix& m, const std::string& path);
Matrix load_matrix_file(const std::string& path);

/// Binary (bit-exact) forms over a storage payload buffer.  Loading
/// throws std::runtime_error on truncated or absurd input.
void save_matrix_binary(const Matrix& m, storage::ByteWriter& out);
Matrix load_matrix_binary(storage::ByteReader& in);
void save_vector_binary(std::span<const double> v, storage::ByteWriter& out);
Vector load_vector_binary(storage::ByteReader& in);

}  // namespace tafloc
