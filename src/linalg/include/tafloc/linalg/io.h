// Plain-text serialization for matrices and vectors.
//
// Format (whitespace separated, full double precision):
//   matrix <rows> <cols>\n  <row-major values...>
//   vector <size>\n         <values...>
// Used to persist TafLoc's calibration state (fingerprints, correlation
// matrix, masks) so a deployment survives process restarts.
#pragma once

#include <iosfwd>
#include <string>

#include "tafloc/linalg/matrix.h"

namespace tafloc {

/// Write / read a matrix.  Loading throws std::runtime_error on
/// malformed input (wrong tag, bad dimensions, missing values).
void save_matrix(const Matrix& m, std::ostream& out);
Matrix load_matrix(std::istream& in);

/// Write / read a vector.
void save_vector(std::span<const double> v, std::ostream& out);
Vector load_vector(std::istream& in);

/// File-path conveniences (throw std::runtime_error when the file
/// cannot be opened).
void save_matrix_file(const Matrix& m, const std::string& path);
Matrix load_matrix_file(const std::string& path);

}  // namespace tafloc
