// Pluggable kernel backends for the linalg hot paths.
//
// Every `*_into` kernel in matrix.cpp keeps its own loop structure (the
// blocking, the parallel partitioning, the zero-skips) and dispatches
// only its innermost row primitive through the process-wide KernelOps
// table below.  Two tables ship:
//
//   scalar -- portable reference loops; runs on any CPU.
//   avx2   -- AVX2 vector loops, selected at runtime via
//             __builtin_cpu_supports("avx2"); compiled with GCC/Clang
//             function target attributes, so no special build flags are
//             needed and non-x86 builds simply never offer it.
//
// Bit-identity contract (the reason this file is small): a backend may
// only vectorize a primitive when every output element's floating-point
// operation sequence is EXACTLY the scalar reference's.
//
//   * axpy (y[j] += a * x[j]) and hadamard (out[j] = a[j] * b[j]) are
//     element-wise over the output index: lanes never share an
//     accumulator, and the AVX2 code uses separate multiply and add
//     instructions (never FMA -- a fused contraction rounds once where
//     mul+add rounds twice, which would break scalar/AVX2 identity).
//   * The int8 distance kernels are exact integer arithmetic, so any
//     summation order gives the same answer.
//   * Dot-product reductions (matrix-vector multiply, outer_product)
//     CANNOT be vectorized under this contract -- SIMD lane partial
//     sums reorder the accumulation -- so they stay scalar in every
//     backend and are not in this table.
//
// Selection: `TAFLOC_KERNEL_BACKEND` (scalar | avx2 | auto) or
// ExecConfig::kernel_backend via set_kernel_backend(); kAuto picks the
// best supported table.  Forcing kScalar reproduces the pre-backend
// results bit-for-bit -- CI runs the whole test suite that way.
#pragma once

#include <cstddef>
#include <cstdint>

#include "tafloc/exec/exec_config.h"

namespace tafloc {

/// The dispatch table: one row primitive per hot inner loop.
struct KernelOps {
  KernelBackend id = KernelBackend::kScalar;
  const char* name = "scalar";

  /// y[j] += a * x[j] for j in [0, n).  The gemm / gram / transposed
  /// matvec / add_scaled inner loop.  x and y must not alias.
  void (*axpy)(double a, const double* x, double* y, std::size_t n);

  /// out[j] = a[j] * b[j] for j in [0, n).
  void (*hadamard)(const double* a, const double* b, double* out, std::size_t n);

  /// Sum over j of (a[j] - b[j])^2, exact 64-bit integer arithmetic.
  /// The quantized fingerprint pre-pass inner loop.
  std::uint64_t (*dist_sq_i8)(const std::int8_t* a, const std::int8_t* b, std::size_t n);

  /// Masked variant: entries with usable[j] == 0 contribute nothing.
  std::uint64_t (*dist_sq_i8_masked)(const std::int8_t* a, const std::int8_t* b,
                                     const std::uint8_t* usable, std::size_t n);
};

/// True when this CPU can run the AVX2 table (always false on non-x86
/// builds).
bool cpu_supports_avx2() noexcept;

/// Turn a backend request into a concrete choice: kAuto consults the
/// TAFLOC_KERNEL_BACKEND environment variable (scalar | avx2 | auto;
/// unset or empty means auto) and falls back to the best supported
/// table.  Throws std::invalid_argument when the request (explicit or
/// from the environment) names an unsupported or unknown backend.
KernelBackend resolve_kernel_backend(KernelBackend requested = KernelBackend::kAuto);

/// Install the process-wide dispatch table (kAuto re-runs the automatic
/// resolution).  Cheap atomic store; callers running concurrent kernels
/// may observe either table mid-switch -- both produce identical bits.
void set_kernel_backend(KernelBackend requested);

/// The backend currently installed (resolving lazily on first use).
KernelBackend active_kernel_backend() noexcept;

const char* kernel_backend_name(KernelBackend backend) noexcept;

/// The active dispatch table (resolving lazily on first use).
const KernelOps& kernel_ops() noexcept;

/// A specific table, for tests that compare backends side by side.
/// Throws std::invalid_argument for kAuto or an unsupported backend.
const KernelOps& kernel_ops(KernelBackend backend);

}  // namespace tafloc
