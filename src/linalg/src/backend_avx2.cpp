// The AVX2 kernel table (see backend.h for the bit-identity contract).
//
// Compiled into every build via GCC/Clang function target attributes --
// no -mavx2 build flag, so the rest of the binary stays baseline
// x86-64 (or non-x86) and the table is only handed out after
// __builtin_cpu_supports("avx2") says the instructions exist.
//
// Floating-point lanes use SEPARATE multiply and add instructions, not
// FMA: the scalar reference rounds after the multiply and again after
// the add, and a fused contraction would round once -- bit-identity
// with the scalar backend is the whole contract.  (The CPU may well
// have FMA; we detect it for telemetry honesty but deliberately never
// emit it in these kernels.)  The int8 kernels are exact integer
// arithmetic, so vectorizing them is unconditionally safe.

#include "tafloc/linalg/backend.h"

#include <algorithm>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define TAFLOC_HAVE_AVX2_BACKEND 1
#include <immintrin.h>
#endif

namespace tafloc {

#ifdef TAFLOC_HAVE_AVX2_BACKEND

namespace {

__attribute__((target("avx2"))) void axpy_avx2(double a, const double* x, double* y,
                                               std::size_t n) {
  const __m256d va = _mm256_set1_pd(a);
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256d vx = _mm256_loadu_pd(x + j);
    __m256d vy = _mm256_loadu_pd(y + j);
    // mul then add, matching the scalar reference's two roundings.
    vy = _mm256_add_pd(vy, _mm256_mul_pd(va, vx));
    _mm256_storeu_pd(y + j, vy);
  }
  for (; j < n; ++j) y[j] += a * x[j];
}

__attribute__((target("avx2"))) void hadamard_avx2(const double* a, const double* b, double* out,
                                                   std::size_t n) {
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4)
    _mm256_storeu_pd(out + j, _mm256_mul_pd(_mm256_loadu_pd(a + j), _mm256_loadu_pd(b + j)));
  for (; j < n; ++j) out[j] = a[j] * b[j];
}

/// Elements per int32-lane accumulation block: each _mm256_madd_epi16
/// adds at most 2 * 254^2 per lane per step, so a block of 2^14
/// elements stays below 2^31 per lane with a wide margin.
constexpr std::size_t kI8Chunk = std::size_t{1} << 14;

__attribute__((target("avx2"))) inline std::uint64_t hsum_epi32(__m256i v) {
  const __m128i lo = _mm256_castsi256_si128(v);
  const __m128i hi = _mm256_extracti128_si256(v, 1);
  __m128i s = _mm_add_epi32(lo, hi);
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(1, 0, 3, 2)));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(2, 3, 0, 1)));
  return static_cast<std::uint64_t>(static_cast<std::uint32_t>(_mm_cvtsi128_si32(s)));
}

__attribute__((target("avx2"))) std::uint64_t dist_sq_i8_avx2(const std::int8_t* a,
                                                              const std::int8_t* b,
                                                              std::size_t n) {
  std::uint64_t total = 0;
  std::size_t j = 0;
  while (j < n) {
    const std::size_t chunk_end = std::min(n, j + kI8Chunk);
    __m256i acc = _mm256_setzero_si256();
    for (; j + 16 <= chunk_end; j += 16) {
      const __m256i va =
          _mm256_cvtepi8_epi16(_mm_loadu_si128(reinterpret_cast<const __m128i*>(a + j)));
      const __m256i vb =
          _mm256_cvtepi8_epi16(_mm_loadu_si128(reinterpret_cast<const __m128i*>(b + j)));
      const __m256i d = _mm256_sub_epi16(va, vb);  // |d| <= 254 fits int16
      acc = _mm256_add_epi32(acc, _mm256_madd_epi16(d, d));
    }
    total += hsum_epi32(acc);
    for (; j < chunk_end; ++j) {
      const std::int32_t d = static_cast<std::int32_t>(a[j]) - static_cast<std::int32_t>(b[j]);
      total += static_cast<std::uint64_t>(d * d);
    }
  }
  return total;
}

__attribute__((target("avx2"))) std::uint64_t dist_sq_i8_masked_avx2(const std::int8_t* a,
                                                                     const std::int8_t* b,
                                                                     const std::uint8_t* usable,
                                                                     std::size_t n) {
  std::uint64_t total = 0;
  std::size_t j = 0;
  while (j < n) {
    const std::size_t chunk_end = std::min(n, j + kI8Chunk);
    __m256i acc = _mm256_setzero_si256();
    for (; j + 16 <= chunk_end; j += 16) {
      const __m256i va =
          _mm256_cvtepi8_epi16(_mm_loadu_si128(reinterpret_cast<const __m128i*>(a + j)));
      const __m256i vb =
          _mm256_cvtepi8_epi16(_mm_loadu_si128(reinterpret_cast<const __m128i*>(b + j)));
      const __m256i mask16 =
          _mm256_cvtepi8_epi16(_mm_loadu_si128(reinterpret_cast<const __m128i*>(usable + j)));
      // 0xFFFF where the link is dead (mask byte 0); zero those diffs.
      const __m256i dead = _mm256_cmpeq_epi16(mask16, _mm256_setzero_si256());
      const __m256i d = _mm256_andnot_si256(dead, _mm256_sub_epi16(va, vb));
      acc = _mm256_add_epi32(acc, _mm256_madd_epi16(d, d));
    }
    total += hsum_epi32(acc);
    for (; j < chunk_end; ++j) {
      if (usable[j] == 0) continue;
      const std::int32_t d = static_cast<std::int32_t>(a[j]) - static_cast<std::int32_t>(b[j]);
      total += static_cast<std::uint64_t>(d * d);
    }
  }
  return total;
}

constexpr KernelOps kAvx2Ops{KernelBackend::kAvx2, "avx2", axpy_avx2, hadamard_avx2,
                             dist_sq_i8_avx2, dist_sq_i8_masked_avx2};

}  // namespace

const KernelOps* detail_avx2_kernel_table() noexcept {
  return __builtin_cpu_supports("avx2") ? &kAvx2Ops : nullptr;
}

#else  // TAFLOC_HAVE_AVX2_BACKEND not defined

const KernelOps* detail_avx2_kernel_table() noexcept { return nullptr; }

#endif

}  // namespace tafloc
