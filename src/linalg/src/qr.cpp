#include "tafloc/linalg/qr.h"

#include <algorithm>
#include <cmath>

#include "tafloc/util/check.h"

namespace tafloc {

namespace {

/// One Householder reflector for column j of `a`, eliminating entries
/// below the diagonal.  Returns (v, beta) with H = I - beta v v^T; v is
/// zero above row j and v[j] = 1.
struct Reflector {
  Vector v;
  double beta = 0.0;
};

Reflector make_reflector(const Matrix& a, std::size_t j) {
  const std::size_t m = a.rows();
  Reflector h;
  h.v.assign(m, 0.0);
  double norm_sq = 0.0;
  for (std::size_t i = j; i < m; ++i) {
    h.v[i] = a(i, j);
    norm_sq += h.v[i] * h.v[i];
  }
  const double alpha = std::sqrt(norm_sq);
  if (alpha == 0.0) {
    h.beta = 0.0;
    return h;
  }
  // Choose the sign that avoids cancellation.
  const double pivot = h.v[j];
  const double sign = pivot >= 0.0 ? 1.0 : -1.0;
  h.v[j] = pivot + sign * alpha;
  double v_norm_sq = norm_sq - pivot * pivot + h.v[j] * h.v[j];
  if (v_norm_sq == 0.0) {
    h.beta = 0.0;
    return h;
  }
  h.beta = 2.0 / v_norm_sq;
  return h;
}

/// Apply H = I - beta v v^T to columns [c0, a.cols()) of `a`.
void apply_reflector(Matrix& a, const Reflector& h, std::size_t c0) {
  if (h.beta == 0.0) return;
  const std::size_t m = a.rows();
  for (std::size_t c = c0; c < a.cols(); ++c) {
    double s = 0.0;
    for (std::size_t i = 0; i < m; ++i) s += h.v[i] * a(i, c);
    s *= h.beta;
    if (s == 0.0) continue;
    for (std::size_t i = 0; i < m; ++i) a(i, c) -= s * h.v[i];
  }
}

/// Accumulate Q (thin, m x k) from the stored reflectors by applying
/// them in reverse to the first k identity columns.
Matrix accumulate_q(const std::vector<Reflector>& reflectors, std::size_t m, std::size_t k) {
  Matrix q(m, k);
  for (std::size_t c = 0; c < k; ++c) q(c, c) = 1.0;
  for (std::size_t step = reflectors.size(); step > 0; --step) {
    apply_reflector(q, reflectors[step - 1], 0);
  }
  return q;
}

Matrix extract_r(const Matrix& a, std::size_t k) {
  Matrix r(k, a.cols());
  for (std::size_t i = 0; i < k; ++i)
    for (std::size_t j = i; j < a.cols(); ++j) r(i, j) = a(i, j);
  return r;
}

}  // namespace

QrDecomposition qr_decompose(const Matrix& a) {
  TAFLOC_CHECK_ARG(!a.empty(), "cannot factor an empty matrix");
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  const std::size_t k = std::min(m, n);
  Matrix work = a;
  std::vector<Reflector> reflectors;
  reflectors.reserve(k);
  for (std::size_t j = 0; j < k; ++j) {
    Reflector h = make_reflector(work, j);
    apply_reflector(work, h, j);
    reflectors.push_back(std::move(h));
  }
  return QrDecomposition{accumulate_q(reflectors, m, k), extract_r(work, k)};
}

PivotedQr qr_decompose_pivoted(const Matrix& a) {
  TAFLOC_CHECK_ARG(!a.empty(), "cannot factor an empty matrix");
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  const std::size_t k = std::min(m, n);
  Matrix work = a;
  std::vector<std::size_t> perm(n);
  for (std::size_t j = 0; j < n; ++j) perm[j] = j;

  // Squared norms of the trailing (below-step) part of each column,
  // downdated as the factorization proceeds.
  Vector col_norm_sq(n, 0.0);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i < m; ++i) col_norm_sq[j] += work(i, j) * work(i, j);

  std::vector<Reflector> reflectors;
  reflectors.reserve(k);

  auto swap_columns = [&](std::size_t c1, std::size_t c2) {
    if (c1 == c2) return;
    for (std::size_t i = 0; i < m; ++i) std::swap(work(i, c1), work(i, c2));
    std::swap(col_norm_sq[c1], col_norm_sq[c2]);
    std::swap(perm[c1], perm[c2]);
  };

  for (std::size_t j = 0; j < k; ++j) {
    // Pivot: bring the column with the largest remaining norm to front.
    std::size_t best = j;
    for (std::size_t c = j + 1; c < n; ++c)
      if (col_norm_sq[c] > col_norm_sq[best]) best = c;
    swap_columns(j, best);

    Reflector h = make_reflector(work, j);
    apply_reflector(work, h, j);
    reflectors.push_back(std::move(h));

    // Downdate trailing column norms; recompute when cancellation makes
    // the running value unreliable.
    for (std::size_t c = j + 1; c < n; ++c) {
      const double rjc = work(j, c);
      col_norm_sq[c] -= rjc * rjc;
      if (col_norm_sq[c] < 1e-12 * std::abs(rjc * rjc) || col_norm_sq[c] < 0.0) {
        double fresh = 0.0;
        for (std::size_t i = j + 1; i < m; ++i) fresh += work(i, c) * work(i, c);
        col_norm_sq[c] = fresh;
      }
    }
  }

  PivotedQr out;
  out.q = accumulate_q(reflectors, m, k);
  out.r = extract_r(work, k);
  out.permutation = std::move(perm);
  return out;
}

std::size_t PivotedQr::rank(double rel_tol) const {
  TAFLOC_CHECK_ARG(rel_tol >= 0.0, "rank tolerance must be non-negative");
  const std::size_t k = std::min(r.rows(), r.cols());
  if (k == 0) return 0;
  const double head = std::abs(r(0, 0));
  if (head == 0.0) return 0;
  std::size_t rank = 0;
  for (std::size_t i = 0; i < k; ++i) {
    if (std::abs(r(i, i)) > rel_tol * head) ++rank;
  }
  return rank;
}

Vector solve_upper_triangular(const Matrix& r, std::span<const double> b) {
  TAFLOC_CHECK_ARG(r.rows() == r.cols(), "triangular solve needs a square matrix");
  TAFLOC_CHECK_ARG(r.rows() == b.size(), "right-hand side length mismatch");
  const std::size_t n = r.rows();
  Vector x(b.begin(), b.end());
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    double s = x[i];
    for (std::size_t j = i + 1; j < n; ++j) s -= r(i, j) * x[j];
    TAFLOC_CHECK_ARG(r(i, i) != 0.0, "singular triangular matrix");
    x[i] = s / r(i, i);
  }
  return x;
}

}  // namespace tafloc
