#include "tafloc/linalg/eig.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "tafloc/linalg/svd.h"
#include "tafloc/linalg/vector_ops.h"
#include "tafloc/util/check.h"

namespace tafloc {

EigResult eig_symmetric(const Matrix& a, const EigOptions& options) {
  TAFLOC_CHECK_ARG(a.rows() == a.cols() && !a.empty(), "eig needs a non-empty square matrix");
  TAFLOC_CHECK_ARG(options.tolerance > 0.0, "tolerance must be positive");
  const std::size_t n = a.rows();
  const double scale = std::max(a.max_abs(), 1e-300);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j)
      TAFLOC_CHECK_ARG(std::abs(a(i, j) - a(j, i)) <= 1e-9 * scale,
                       "matrix must be symmetric");

  Matrix w = a;
  Matrix v = Matrix::identity(n);

  for (std::size_t sweep = 0; sweep < options.max_sweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j) off = std::max(off, std::abs(w(i, j)));
    if (off <= options.tolerance * scale) break;

    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = w(p, q);
        if (std::abs(apq) <= 1e-300) continue;
        const double theta = (w(q, q) - w(p, p)) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(1.0 + theta * theta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;

        // W <- J^T W J for the (p, q) rotation J.
        for (std::size_t k = 0; k < n; ++k) {
          const double wkp = w(k, p);
          const double wkq = w(k, q);
          w(k, p) = c * wkp - s * wkq;
          w(k, q) = s * wkp + c * wkq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double wpk = w(p, k);
          const double wqk = w(q, k);
          w(p, k) = c * wpk - s * wqk;
          w(q, k) = s * wpk + c * wqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort descending by eigenvalue.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return w(x, x) > w(y, y); });

  EigResult out;
  out.eigenvalues.resize(n);
  out.eigenvectors = Matrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    out.eigenvalues[j] = w(order[j], order[j]);
    for (std::size_t i = 0; i < n; ++i) out.eigenvectors(i, j) = v(i, order[j]);
  }
  return out;
}

PowerIterationResult power_iteration(const Matrix& a, std::size_t max_iterations,
                                     double tolerance) {
  TAFLOC_CHECK_ARG(a.rows() == a.cols() && !a.empty(),
                   "power iteration needs a non-empty square matrix");
  TAFLOC_CHECK_ARG(tolerance > 0.0, "tolerance must be positive");
  const std::size_t n = a.rows();

  PowerIterationResult out;
  // Deterministic start with energy in every coordinate.
  out.eigenvector.assign(n, 1.0);
  for (std::size_t i = 0; i < n; ++i)
    out.eigenvector[i] += 0.01 * static_cast<double>(i + 1) / static_cast<double>(n);
  normalize(out.eigenvector);

  double prev = std::numeric_limits<double>::infinity();
  for (std::size_t it = 0; it < max_iterations; ++it) {
    Vector next = multiply(a, out.eigenvector);
    const double norm = normalize(next);
    if (norm == 0.0) {  // vector in the null space: eigenvalue 0
      out.eigenvalue = 0.0;
      out.converged = true;
      out.iterations = it + 1;
      return out;
    }
    // Rayleigh quotient for the signed eigenvalue.
    const Vector av = multiply(a, next);
    out.eigenvalue = dot(next, av);
    out.eigenvector = std::move(next);
    out.iterations = it + 1;
    if (std::abs(out.eigenvalue - prev) <= tolerance * std::max(std::abs(out.eigenvalue), 1.0)) {
      out.converged = true;
      return out;
    }
    prev = out.eigenvalue;
  }
  return out;
}

Matrix pseudo_inverse(const Matrix& a, double rel_tol) {
  TAFLOC_CHECK_ARG(!a.empty(), "pseudo-inverse of an empty matrix is undefined");
  TAFLOC_CHECK_ARG(rel_tol >= 0.0, "tolerance must be non-negative");
  const SvdResult svd = svd_decompose(a);
  const double cutoff = rel_tol * (svd.sigma.empty() ? 0.0 : svd.sigma[0]);
  // pinv = V * diag(1/sigma) * U^T.
  Matrix out(a.cols(), a.rows());
  for (std::size_t t = 0; t < svd.sigma.size(); ++t) {
    if (svd.sigma[t] <= cutoff || svd.sigma[t] == 0.0) continue;
    const double inv = 1.0 / svd.sigma[t];
    for (std::size_t i = 0; i < a.cols(); ++i) {
      const double vit = svd.v(i, t) * inv;
      if (vit == 0.0) continue;
      for (std::size_t j = 0; j < a.rows(); ++j) out(i, j) += vit * svd.u(j, t);
    }
  }
  return out;
}

double condition_number(const Matrix& a) {
  const SvdResult svd = svd_decompose(a);
  const double smax = svd.sigma.front();
  const double smin = svd.sigma.back();
  // Below relative machine precision the matrix is singular for every
  // practical purpose.
  if (smin <= smax * 1e-14 || smin == 0.0) return std::numeric_limits<double>::infinity();
  return smax / smin;
}

}  // namespace tafloc
