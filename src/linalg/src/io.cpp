#include "tafloc/linalg/io.h"

#include <fstream>
#include <iomanip>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace tafloc {

namespace {

[[noreturn]] void malformed(const std::string& what) {
  throw std::runtime_error("linalg load: malformed input: " + what);
}

void expect_tag(std::istream& in, const char* tag) {
  std::string got;
  if (!(in >> got) || got != tag) malformed("expected tag '" + std::string(tag) + "'");
}

/// Reject dimension headers no real file could carry *before* any
/// allocation happens: negative, or so large that resize() would throw
/// bad_alloc (or overflow rows * cols) on a stream that is plainly
/// garbage rather than big.
void check_dimensions(long long rows, long long cols) {
  if (rows < 0 || cols < 0) malformed("matrix dimensions");
  const auto r = static_cast<std::uint64_t>(rows);
  const auto c = static_cast<std::uint64_t>(cols);
  if (r > kMaxLoadElements || c > kMaxLoadElements || (c != 0 && r > kMaxLoadElements / c))
    malformed("absurd matrix dimensions");
}

}  // namespace

void save_matrix(const Matrix& m, std::ostream& out) {
  out << "matrix " << m.rows() << ' ' << m.cols() << '\n';
  out << std::setprecision(17);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) {
      if (c > 0) out << ' ';
      out << m(r, c);
    }
    out << '\n';
  }
}

Matrix load_matrix(std::istream& in) {
  expect_tag(in, "matrix");
  long long rows = -1, cols = -1;
  if (!(in >> rows >> cols)) malformed("matrix dimensions");
  check_dimensions(rows, cols);
  if ((rows == 0) != (cols == 0)) malformed("half-empty matrix shape");
  if (rows == 0) return Matrix();
  Matrix m(static_cast<std::size_t>(rows), static_cast<std::size_t>(cols));
  for (double& x : m.data()) {
    if (!(in >> x)) malformed("matrix values (truncated?)");
  }
  return m;
}

void save_vector(std::span<const double> v, std::ostream& out) {
  out << "vector " << v.size() << '\n';
  out << std::setprecision(17);
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i > 0) out << ' ';
    out << v[i];
  }
  out << '\n';
}

Vector load_vector(std::istream& in) {
  expect_tag(in, "vector");
  long long size = -1;
  if (!(in >> size) || size < 0) malformed("vector size");
  if (static_cast<std::uint64_t>(size) > kMaxLoadElements) malformed("absurd vector size");
  Vector v(static_cast<std::size_t>(size));
  for (double& x : v) {
    if (!(in >> x)) malformed("vector values (truncated?)");
  }
  return v;
}

void save_matrix_file(const Matrix& m, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open '" + path + "' for writing");
  save_matrix(m, out);
  if (!out) throw std::runtime_error("write to '" + path + "' failed");
}

Matrix load_matrix_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open '" + path + "' for reading");
  return load_matrix(in);
}

void save_matrix_binary(const Matrix& m, storage::ByteWriter& out) {
  out.put_u64(m.rows());
  out.put_u64(m.cols());
  for (const double x : m.data()) out.put_f64(x);
}

Matrix load_matrix_binary(storage::ByteReader& in) {
  const std::uint64_t rows = in.get_u64();
  const std::uint64_t cols = in.get_u64();
  if (rows > kMaxLoadElements || cols > kMaxLoadElements ||
      (cols != 0 && rows > kMaxLoadElements / cols))
    malformed("absurd binary matrix dimensions");
  if ((rows == 0) != (cols == 0)) malformed("half-empty binary matrix shape");
  in.require_elements(rows * cols, 8, "binary matrix values");
  if (rows == 0) return Matrix();
  Matrix m(static_cast<std::size_t>(rows), static_cast<std::size_t>(cols));
  for (double& x : m.data()) x = in.get_f64();
  return m;
}

void save_vector_binary(std::span<const double> v, storage::ByteWriter& out) {
  out.put_f64_span(v);
}

Vector load_vector_binary(storage::ByteReader& in) { return in.get_f64_vector(); }

}  // namespace tafloc
