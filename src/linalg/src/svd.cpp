#include "tafloc/linalg/svd.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "tafloc/util/check.h"

namespace tafloc {

namespace {

/// One-sided Jacobi on a tall (m >= n) matrix `a`, returning U (m x n),
/// sigma (n) and V (n x n) with a = U diag(sigma) V^T, unsorted.
struct JacobiOut {
  Matrix u;
  Vector sigma;
  Matrix v;
};

JacobiOut one_sided_jacobi(Matrix a, const SvdOptions& options) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  Matrix v = Matrix::identity(n);

  // Column dot products are recomputed per pair; columns are accessed
  // strided, so cache a column-major copy for locality.
  Matrix at = a.transposed();  // n x m, row j = column j of a

  bool converged = false;
  for (std::size_t sweep = 0; sweep < options.max_sweeps && !converged; ++sweep) {
    converged = true;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        double alpha = 0.0, beta = 0.0, gamma = 0.0;
        for (std::size_t i = 0; i < m; ++i) {
          const double ap = at(p, i);
          const double aq = at(q, i);
          alpha += ap * ap;
          beta += aq * aq;
          gamma += ap * aq;
        }
        if (std::abs(gamma) <= options.tolerance * std::sqrt(alpha * beta)) continue;
        converged = false;

        // Jacobi rotation that zeroes the (p, q) Gram entry.
        const double zeta = (beta - alpha) / (2.0 * gamma);
        const double t = (zeta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(zeta) + std::sqrt(1.0 + zeta * zeta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;

        for (std::size_t i = 0; i < m; ++i) {
          const double ap = at(p, i);
          const double aq = at(q, i);
          at(p, i) = c * ap - s * aq;
          at(q, i) = s * ap + c * aq;
        }
        for (std::size_t i = 0; i < n; ++i) {
          const double vp = v(i, p);
          const double vq = v(i, q);
          v(i, p) = c * vp - s * vq;
          v(i, q) = s * vp + c * vq;
        }
      }
    }
  }
  if (!converged) {
    // One extra check: treat as converged if the worst pair is tiny in
    // absolute terms (handles denormal-scale matrices); otherwise fail.
    double worst = 0.0;
    for (std::size_t p = 0; p + 1 < n; ++p)
      for (std::size_t q = p + 1; q < n; ++q) {
        double gamma = 0.0;
        for (std::size_t i = 0; i < m; ++i) gamma += at(p, i) * at(q, i);
        worst = std::max(worst, std::abs(gamma));
      }
    if (worst > 1e-8) throw std::runtime_error("svd_decompose: Jacobi sweeps did not converge");
  }

  JacobiOut out;
  out.sigma.assign(n, 0.0);
  out.u = Matrix(m, n);
  for (std::size_t j = 0; j < n; ++j) {
    double norm_sq = 0.0;
    for (std::size_t i = 0; i < m; ++i) norm_sq += at(j, i) * at(j, i);
    const double sigma = std::sqrt(norm_sq);
    out.sigma[j] = sigma;
    if (sigma > 0.0) {
      for (std::size_t i = 0; i < m; ++i) out.u(i, j) = at(j, i) / sigma;
    }
  }
  out.v = std::move(v);
  return out;
}

/// Replace any zero columns of u (from zero singular values) with unit
/// vectors orthogonal to the non-zero columns, so U always has
/// orthonormal columns.
void complete_orthonormal_columns(Matrix& u) {
  const std::size_t m = u.rows();
  const std::size_t k = u.cols();
  for (std::size_t j = 0; j < k; ++j) {
    double norm_sq = 0.0;
    for (std::size_t i = 0; i < m; ++i) norm_sq += u(i, j) * u(i, j);
    if (norm_sq > 0.5) continue;  // already a unit column
    // Try canonical basis vectors, Gram-Schmidt against all other columns.
    for (std::size_t cand = 0; cand < m; ++cand) {
      Vector e(m, 0.0);
      e[cand] = 1.0;
      for (std::size_t c = 0; c < k; ++c) {
        if (c == j) continue;
        double proj = 0.0;
        for (std::size_t i = 0; i < m; ++i) proj += e[i] * u(i, c);
        for (std::size_t i = 0; i < m; ++i) e[i] -= proj * u(i, c);
      }
      double n2 = 0.0;
      for (double x : e) n2 += x * x;
      if (n2 > 1e-6) {
        const double inv = 1.0 / std::sqrt(n2);
        for (std::size_t i = 0; i < m; ++i) u(i, j) = e[i] * inv;
        break;
      }
    }
  }
}

}  // namespace

SvdResult svd_decompose(const Matrix& a, const SvdOptions& options) {
  TAFLOC_CHECK_ARG(!a.empty(), "cannot decompose an empty matrix");
  for (double v : a.data())
    TAFLOC_CHECK_ARG(std::isfinite(v), "matrix contains non-finite values");
  TAFLOC_CHECK_ARG(options.tolerance > 0.0, "SVD tolerance must be positive");
  TAFLOC_CHECK_ARG(options.max_sweeps > 0, "SVD sweep cap must be positive");

  const bool transpose = a.rows() < a.cols();
  JacobiOut jac = one_sided_jacobi(transpose ? a.transposed() : a, options);

  // Sort singular triplets descending.
  const std::size_t k = jac.sigma.size();
  std::vector<std::size_t> order(k);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return jac.sigma[x] > jac.sigma[y]; });

  SvdResult out;
  out.sigma.assign(k, 0.0);
  Matrix u_sorted(jac.u.rows(), k);
  Matrix v_sorted(jac.v.rows(), k);
  for (std::size_t j = 0; j < k; ++j) {
    out.sigma[j] = jac.sigma[order[j]];
    for (std::size_t i = 0; i < jac.u.rows(); ++i) u_sorted(i, j) = jac.u(i, order[j]);
    for (std::size_t i = 0; i < jac.v.rows(); ++i) v_sorted(i, j) = jac.v(i, order[j]);
  }
  complete_orthonormal_columns(u_sorted);

  if (transpose) {
    out.u = std::move(v_sorted);
    out.v = std::move(u_sorted);
  } else {
    out.u = std::move(u_sorted);
    out.v = std::move(v_sorted);
  }
  return out;
}

Matrix SvdResult::reconstruct(std::size_t rank) const {
  Matrix out;
  reconstruct_into(out, rank);
  return out;
}

void SvdResult::reconstruct_into(Matrix& out, std::size_t rank) const {
  const std::size_t k = sigma.size();
  const std::size_t use = (rank == 0 || rank > k) ? k : rank;
  out.resize(u.rows(), v.rows());
  out.fill(0.0);
  for (std::size_t t = 0; t < use; ++t) {
    const double s = sigma[t];
    if (s == 0.0) continue;
    for (std::size_t i = 0; i < u.rows(); ++i) {
      const double uis = u(i, t) * s;
      if (uis == 0.0) continue;
      for (std::size_t j = 0; j < v.rows(); ++j) out(i, j) += uis * v(j, t);
    }
  }
}

std::size_t SvdResult::numeric_rank(double rel_tol) const {
  TAFLOC_CHECK_ARG(rel_tol >= 0.0, "rank tolerance must be non-negative");
  if (sigma.empty() || sigma[0] == 0.0) return 0;
  std::size_t rank = 0;
  for (double s : sigma)
    if (s > rel_tol * sigma[0]) ++rank;
  return rank;
}

double SvdResult::nuclear_norm() const noexcept {
  double s = 0.0;
  for (double x : sigma) s += x;
  return s;
}

Matrix truncated_svd_approximation(const Matrix& a, std::size_t rank) {
  TAFLOC_CHECK_ARG(rank > 0, "truncation rank must be positive");
  return svd_decompose(a).reconstruct(rank);
}

}  // namespace tafloc
