#include "tafloc/linalg/sparse.h"

#include <algorithm>
#include <cmath>

#include "tafloc/util/check.h"

namespace tafloc {

SparseMatrix::SparseMatrix(std::size_t rows, std::size_t cols, std::vector<Triplet> triplets)
    : rows_(rows), cols_(cols) {
  TAFLOC_CHECK_ARG((rows == 0) == (cols == 0),
                   "a matrix must have both dimensions zero or both positive");
  for (const Triplet& t : triplets) {
    TAFLOC_CHECK_BOUNDS(t.row, rows_, "sparse triplet row");
    TAFLOC_CHECK_BOUNDS(t.col, cols_, "sparse triplet col");
  }
  std::sort(triplets.begin(), triplets.end(), [](const Triplet& a, const Triplet& b) {
    return a.row != b.row ? a.row < b.row : a.col < b.col;
  });

  row_start_.assign(rows_ + 1, 0);
  col_.reserve(triplets.size());
  values_.reserve(triplets.size());
  for (std::size_t i = 0; i < triplets.size();) {
    std::size_t j = i + 1;
    double sum = triplets[i].value;
    while (j < triplets.size() && triplets[j].row == triplets[i].row &&
           triplets[j].col == triplets[i].col) {
      sum += triplets[j].value;
      ++j;
    }
    col_.push_back(triplets[i].col);
    values_.push_back(sum);
    ++row_start_[triplets[i].row + 1];
    i = j;
  }
  for (std::size_t r = 0; r < rows_; ++r) row_start_[r + 1] += row_start_[r];
}

SparseMatrix SparseMatrix::from_dense(const Matrix& dense, double tol) {
  TAFLOC_CHECK_ARG(tol >= 0.0, "tolerance must be non-negative");
  std::vector<Triplet> triplets;
  for (std::size_t r = 0; r < dense.rows(); ++r)
    for (std::size_t c = 0; c < dense.cols(); ++c)
      if (std::abs(dense(r, c)) > tol) triplets.push_back({r, c, dense(r, c)});
  return SparseMatrix(dense.rows(), dense.cols(), std::move(triplets));
}

Vector SparseMatrix::multiply(std::span<const double> x) const {
  TAFLOC_CHECK_ARG(x.size() == cols_, "sparse matvec dimension mismatch");
  Vector y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double s = 0.0;
    for (std::size_t k = row_start_[r]; k < row_start_[r + 1]; ++k) s += values_[k] * x[col_[k]];
    y[r] = s;
  }
  return y;
}

Vector SparseMatrix::multiply_transposed(std::span<const double> x) const {
  TAFLOC_CHECK_ARG(x.size() == rows_, "sparse transposed matvec dimension mismatch");
  Vector y(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double xr = x[r];
    if (xr == 0.0) continue;
    for (std::size_t k = row_start_[r]; k < row_start_[r + 1]; ++k) y[col_[k]] += values_[k] * xr;
  }
  return y;
}

double SparseMatrix::at(std::size_t row, std::size_t col) const {
  TAFLOC_CHECK_BOUNDS(row, rows_, "sparse row");
  TAFLOC_CHECK_BOUNDS(col, cols_, "sparse col");
  const auto begin = col_.begin() + static_cast<std::ptrdiff_t>(row_start_[row]);
  const auto end = col_.begin() + static_cast<std::ptrdiff_t>(row_start_[row + 1]);
  const auto it = std::lower_bound(begin, end, col);
  if (it == end || *it != col) return 0.0;
  return values_[static_cast<std::size_t>(it - col_.begin())];
}

Matrix SparseMatrix::to_dense() const {
  TAFLOC_CHECK_ARG(rows_ > 0 && cols_ > 0, "cannot densify an empty sparse matrix");
  Matrix out(rows_, cols_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t k = row_start_[r]; k < row_start_[r + 1]; ++k)
      out(r, col_[k]) = values_[k];
  return out;
}

void SparseMatrix::prune(double tol) {
  TAFLOC_CHECK_ARG(tol >= 0.0, "tolerance must be non-negative");
  std::vector<std::size_t> new_start(rows_ + 1, 0);
  std::vector<std::size_t> new_col;
  std::vector<double> new_values;
  new_col.reserve(col_.size());
  new_values.reserve(values_.size());
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = row_start_[r]; k < row_start_[r + 1]; ++k) {
      if (std::abs(values_[k]) > tol) {
        new_col.push_back(col_[k]);
        new_values.push_back(values_[k]);
        ++new_start[r + 1];
      }
    }
  }
  for (std::size_t r = 0; r < rows_; ++r) new_start[r + 1] += new_start[r];
  row_start_ = std::move(new_start);
  col_ = std::move(new_col);
  values_ = std::move(new_values);
}

std::span<const std::size_t> SparseMatrix::row_indices(std::size_t row) const {
  TAFLOC_CHECK_BOUNDS(row, rows_, "sparse row");
  return {col_.data() + row_start_[row], row_start_[row + 1] - row_start_[row]};
}

std::span<const double> SparseMatrix::row_values(std::size_t row) const {
  TAFLOC_CHECK_BOUNDS(row, rows_, "sparse row");
  return {values_.data() + row_start_[row], row_start_[row + 1] - row_start_[row]};
}

double SparseMatrix::frobenius_norm() const noexcept {
  double s = 0.0;
  for (double v : values_) s += v * v;
  return std::sqrt(s);
}

}  // namespace tafloc
