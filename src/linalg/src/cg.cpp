#include "tafloc/linalg/cg.h"

#include <cmath>

#include "tafloc/linalg/vector_ops.h"
#include "tafloc/util/check.h"

namespace tafloc {

CgSummary conjugate_gradient_in_place(const LinearOperatorInto& apply, std::span<const double> b,
                                      std::span<double> x, CgScratch& scratch,
                                      const CgOptions& options) {
  TAFLOC_CHECK_ARG(static_cast<bool>(apply), "CG needs a non-empty operator");
  TAFLOC_CHECK_ARG(b.size() == x.size(), "initial guess length mismatch");
  TAFLOC_CHECK_ARG(!b.empty(), "CG system must be non-empty");
  TAFLOC_CHECK_ARG(options.relative_tolerance > 0.0, "CG tolerance must be positive");

  const std::size_t n = b.size();
  const std::size_t max_iter = options.max_iterations == 0 ? n : options.max_iterations;

  Vector& r = scratch.r;
  Vector& p = scratch.p;
  Vector& ap = scratch.ap;
  r.resize(n);
  p.resize(n);
  ap.resize(n);

  CgSummary out;

  apply(x, ap);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - ap[i];

  const double b_norm = norm2(b);
  const double threshold = options.relative_tolerance * (b_norm > 0.0 ? b_norm : 1.0);

  double r_dot = dot(r, r);
  out.residual_norm = std::sqrt(r_dot);
  if (out.residual_norm <= threshold) {
    out.converged = true;
    return out;
  }

  std::copy(r.begin(), r.end(), p.begin());
  for (std::size_t it = 0; it < max_iter; ++it) {
    apply(p, ap);
    const double p_ap = dot(p, ap);
    if (p_ap <= 0.0) break;  // operator not SPD on this subspace
    const double alpha = r_dot / p_ap;
    axpy(alpha, p, x);
    axpy(-alpha, ap, r);
    const double r_dot_new = dot(r, r);
    ++out.iterations;
    out.residual_norm = std::sqrt(r_dot_new);
    if (out.residual_norm <= threshold) {
      out.converged = true;
      return out;
    }
    const double beta = r_dot_new / r_dot;
    for (std::size_t i = 0; i < n; ++i) p[i] = r[i] + beta * p[i];
    r_dot = r_dot_new;
  }
  return out;
}

CgResult conjugate_gradient(const LinearOperator& apply, std::span<const double> b,
                            std::span<const double> x0, const CgOptions& options) {
  TAFLOC_CHECK_ARG(static_cast<bool>(apply), "CG needs a non-empty operator");
  CgResult out;
  out.x.assign(x0.begin(), x0.end());
  CgScratch scratch;
  Vector in(b.size());
  const LinearOperatorInto apply_into = [&](std::span<const double> v, std::span<double> y) {
    std::copy(v.begin(), v.end(), in.begin());
    const Vector result = apply(in);
    TAFLOC_CHECK_ARG(result.size() == y.size(), "operator returned a vector of wrong length");
    std::copy(result.begin(), result.end(), y.begin());
  };
  const CgSummary summary = conjugate_gradient_in_place(apply_into, b, out.x, scratch, options);
  out.iterations = summary.iterations;
  out.converged = summary.converged;
  out.residual_norm = summary.residual_norm;
  return out;
}

}  // namespace tafloc