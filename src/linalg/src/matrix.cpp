#include "tafloc/linalg/matrix.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

namespace tafloc {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {
  TAFLOC_CHECK_ARG((rows == 0) == (cols == 0),
                   "a matrix must have both dimensions zero or both positive");
}

Matrix Matrix::from_rows(std::initializer_list<std::initializer_list<double>> rows) {
  const std::size_t nr = rows.size();
  TAFLOC_CHECK_ARG(nr > 0, "from_rows needs at least one row");
  const std::size_t nc = rows.begin()->size();
  TAFLOC_CHECK_ARG(nc > 0, "from_rows needs at least one column");
  Matrix m(nr, nc);
  std::size_t r = 0;
  for (const auto& row : rows) {
    TAFLOC_CHECK_ARG(row.size() == nc, "all rows must have the same length");
    std::size_t c = 0;
    for (double v : row) m(r, c++) = v;
    ++r;
  }
  return m;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::diagonal(std::span<const double> diag) {
  Matrix m(diag.size(), diag.size());
  for (std::size_t i = 0; i < diag.size(); ++i) m(i, i) = diag[i];
  return m;
}

Matrix Matrix::column(std::span<const double> v) {
  Matrix m(v.size(), 1);
  for (std::size_t i = 0; i < v.size(); ++i) m(i, 0) = v[i];
  return m;
}

double Matrix::at(std::size_t r, std::size_t c) const {
  TAFLOC_CHECK_BOUNDS(r, rows_, "Matrix row");
  TAFLOC_CHECK_BOUNDS(c, cols_, "Matrix col");
  return data_[r * cols_ + c];
}

double& Matrix::at(std::size_t r, std::size_t c) {
  TAFLOC_CHECK_BOUNDS(r, rows_, "Matrix row");
  TAFLOC_CHECK_BOUNDS(c, cols_, "Matrix col");
  return data_[r * cols_ + c];
}

Vector Matrix::row(std::size_t r) const {
  TAFLOC_CHECK_BOUNDS(r, rows_, "Matrix row");
  return Vector(data_.begin() + static_cast<std::ptrdiff_t>(r * cols_),
                data_.begin() + static_cast<std::ptrdiff_t>((r + 1) * cols_));
}

Vector Matrix::col(std::size_t c) const {
  TAFLOC_CHECK_BOUNDS(c, cols_, "Matrix col");
  Vector v(rows_);
  for (std::size_t r = 0; r < rows_; ++r) v[r] = data_[r * cols_ + c];
  return v;
}

void Matrix::set_row(std::size_t r, std::span<const double> values) {
  TAFLOC_CHECK_BOUNDS(r, rows_, "Matrix row");
  TAFLOC_CHECK_ARG(values.size() == cols_, "row length mismatch");
  std::copy(values.begin(), values.end(), data_.begin() + static_cast<std::ptrdiff_t>(r * cols_));
}

void Matrix::set_col(std::size_t c, std::span<const double> values) {
  TAFLOC_CHECK_BOUNDS(c, cols_, "Matrix col");
  TAFLOC_CHECK_ARG(values.size() == rows_, "column length mismatch");
  for (std::size_t r = 0; r < rows_; ++r) data_[r * cols_ + c] = values[r];
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = data_[r * cols_ + c];
  return t;
}

Matrix Matrix::submatrix(std::size_t r0, std::size_t c0, std::size_t nr, std::size_t nc) const {
  TAFLOC_CHECK_ARG(r0 + nr <= rows_ && c0 + nc <= cols_, "submatrix exceeds matrix bounds");
  TAFLOC_CHECK_ARG(nr > 0 && nc > 0, "submatrix must be non-empty");
  Matrix s(nr, nc);
  for (std::size_t r = 0; r < nr; ++r)
    for (std::size_t c = 0; c < nc; ++c) s(r, c) = data_[(r0 + r) * cols_ + (c0 + c)];
  return s;
}

Matrix Matrix::select_columns(std::span<const std::size_t> indices) const {
  TAFLOC_CHECK_ARG(!indices.empty(), "select_columns needs at least one index");
  Matrix s(rows_, indices.size());
  for (std::size_t k = 0; k < indices.size(); ++k) {
    TAFLOC_CHECK_BOUNDS(indices[k], cols_, "select_columns index");
    for (std::size_t r = 0; r < rows_; ++r) s(r, k) = data_[r * cols_ + indices[k]];
  }
  return s;
}

Matrix Matrix::select_rows(std::span<const std::size_t> indices) const {
  TAFLOC_CHECK_ARG(!indices.empty(), "select_rows needs at least one index");
  Matrix s(indices.size(), cols_);
  for (std::size_t k = 0; k < indices.size(); ++k) {
    TAFLOC_CHECK_BOUNDS(indices[k], rows_, "select_rows index");
    for (std::size_t c = 0; c < cols_; ++c) s(k, c) = data_[indices[k] * cols_ + c];
  }
  return s;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  TAFLOC_CHECK_ARG(same_shape(other), "matrix addition requires equal shapes");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  TAFLOC_CHECK_ARG(same_shape(other), "matrix subtraction requires equal shapes");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double scalar) noexcept {
  for (double& x : data_) x *= scalar;
  return *this;
}

Matrix Matrix::hadamard(const Matrix& other) const {
  TAFLOC_CHECK_ARG(same_shape(other), "Hadamard product requires equal shapes");
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] *= other.data_[i];
  return out;
}

double Matrix::frobenius_dot(const Matrix& other) const {
  TAFLOC_CHECK_ARG(same_shape(other), "Frobenius inner product requires equal shapes");
  double s = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) s += data_[i] * other.data_[i];
  return s;
}

double Matrix::frobenius_norm() const noexcept {
  double s = 0.0;
  for (double x : data_) s += x * x;
  return std::sqrt(s);
}

double Matrix::max_abs() const noexcept {
  double m = 0.0;
  for (double x : data_) m = std::max(m, std::abs(x));
  return m;
}

double Matrix::sum() const noexcept {
  double s = 0.0;
  for (double x : data_) s += x;
  return s;
}

std::string Matrix::to_string(int decimals) const {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(decimals);
  oss << rows_ << "x" << cols_ << " [\n";
  for (std::size_t r = 0; r < rows_; ++r) {
    oss << "  ";
    for (std::size_t c = 0; c < cols_; ++c) {
      if (c > 0) oss << ' ';
      oss << std::setw(decimals + 6) << data_[r * cols_ + c];
    }
    oss << '\n';
  }
  oss << "]";
  return oss.str();
}

Matrix operator+(Matrix a, const Matrix& b) {
  a += b;
  return a;
}

Matrix operator-(Matrix a, const Matrix& b) {
  a -= b;
  return a;
}

Matrix operator*(Matrix a, double s) {
  a *= s;
  return a;
}

Matrix operator*(double s, Matrix a) {
  a *= s;
  return a;
}

Matrix operator*(const Matrix& a, const Matrix& b) {
  TAFLOC_CHECK_ARG(a.cols() == b.rows(), "matrix product inner dimensions must agree");
  Matrix c(a.rows(), b.cols());
  // i-k-j loop order keeps the innermost accesses contiguous for
  // row-major storage.
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) c(i, j) += aik * b(k, j);
    }
  }
  return c;
}

Vector multiply(const Matrix& a, std::span<const double> x) {
  TAFLOC_CHECK_ARG(a.cols() == x.size(), "matrix-vector product dimension mismatch");
  Vector y(a.rows(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < a.cols(); ++j) s += a(i, j) * x[j];
    y[i] = s;
  }
  return y;
}

Vector multiply_transposed(const Matrix& a, std::span<const double> x) {
  TAFLOC_CHECK_ARG(a.rows() == x.size(), "transposed matrix-vector product dimension mismatch");
  Vector y(a.cols(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double xi = x[i];
    if (xi == 0.0) continue;
    for (std::size_t j = 0; j < a.cols(); ++j) y[j] += a(i, j) * xi;
  }
  return y;
}

Matrix gram_product(const Matrix& a, const Matrix& b) {
  TAFLOC_CHECK_ARG(a.rows() == b.rows(), "gram_product requires equal row counts");
  Matrix c(a.cols(), b.cols());
  for (std::size_t k = 0; k < a.rows(); ++k) {
    for (std::size_t i = 0; i < a.cols(); ++i) {
      const double aki = a(k, i);
      if (aki == 0.0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) c(i, j) += aki * b(k, j);
    }
  }
  return c;
}

Matrix outer_product(const Matrix& a, const Matrix& b) {
  TAFLOC_CHECK_ARG(a.cols() == b.cols(), "outer_product requires equal column counts");
  Matrix c(a.rows(), b.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.rows(); ++j) {
      double s = 0.0;
      for (std::size_t k = 0; k < a.cols(); ++k) s += a(i, k) * b(j, k);
      c(i, j) = s;
    }
  }
  return c;
}

double max_abs_diff(const Matrix& a, const Matrix& b) {
  TAFLOC_CHECK_ARG(a.same_shape(b), "max_abs_diff requires equal shapes");
  double m = 0.0;
  for (std::size_t i = 0; i < a.data().size(); ++i)
    m = std::max(m, std::abs(a.data()[i] - b.data()[i]));
  return m;
}

}  // namespace tafloc
