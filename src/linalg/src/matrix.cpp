#include "tafloc/linalg/matrix.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <iomanip>
#include <sstream>

#include "tafloc/exec/thread_pool.h"
#include "tafloc/linalg/backend.h"

namespace tafloc {

namespace {

/// Row grain sized so each parallel chunk carries roughly this many
/// floating-point operations -- below that, fork-join overhead beats
/// the speedup and the loop runs inline.
constexpr std::size_t kKernelGrainFlops = 1 << 15;

std::size_t row_grain(std::size_t flops_per_row) {
  return std::max<std::size_t>(1, kKernelGrainFlops / std::max<std::size_t>(flops_per_row, 1));
}

#ifndef NDEBUG
/// True when the storage ranges of two views overlap.  Conservative:
/// compares the [data, storage_end) envelopes, so two interleaved
/// column views of one matrix count as overlapping -- exactly the
/// situation the "must not alias" kernels cannot handle.
bool views_overlap(ConstMatrixView a, ConstMatrixView b) {
  if (a.empty() || b.empty()) return false;
  const std::less<const double*> lt;
  return lt(a.data(), b.storage_end()) && lt(b.data(), a.storage_end());
}
#endif

}  // namespace

Matrix::Matrix(ConstMatrixView v)
    : rows_(v.empty() ? 0 : v.rows()),
      cols_(v.empty() ? 0 : v.cols()),
      data_(v.empty() ? 0 : v.rows() * v.cols()) {
  for (std::size_t r = 0; r < rows_; ++r)
    std::copy(v.row_ptr(r), v.row_ptr(r) + cols_,
              data_.begin() + static_cast<std::ptrdiff_t>(r * cols_));
}

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {
  TAFLOC_CHECK_ARG((rows == 0) == (cols == 0),
                   "a matrix must have both dimensions zero or both positive");
}

Matrix Matrix::from_rows(std::initializer_list<std::initializer_list<double>> rows) {
  const std::size_t nr = rows.size();
  TAFLOC_CHECK_ARG(nr > 0, "from_rows needs at least one row");
  const std::size_t nc = rows.begin()->size();
  TAFLOC_CHECK_ARG(nc > 0, "from_rows needs at least one column");
  Matrix m(nr, nc);
  std::size_t r = 0;
  for (const auto& row : rows) {
    TAFLOC_CHECK_ARG(row.size() == nc, "all rows must have the same length");
    std::size_t c = 0;
    for (double v : row) m(r, c++) = v;
    ++r;
  }
  return m;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::diagonal(std::span<const double> diag) {
  Matrix m(diag.size(), diag.size());
  for (std::size_t i = 0; i < diag.size(); ++i) m(i, i) = diag[i];
  return m;
}

Matrix Matrix::column(std::span<const double> v) {
  Matrix m(v.size(), 1);
  for (std::size_t i = 0; i < v.size(); ++i) m(i, 0) = v[i];
  return m;
}

double Matrix::at(std::size_t r, std::size_t c) const {
  TAFLOC_CHECK_BOUNDS(r, rows_, "Matrix row");
  TAFLOC_CHECK_BOUNDS(c, cols_, "Matrix col");
  return data_[r * cols_ + c];
}

double& Matrix::at(std::size_t r, std::size_t c) {
  TAFLOC_CHECK_BOUNDS(r, rows_, "Matrix row");
  TAFLOC_CHECK_BOUNDS(c, cols_, "Matrix col");
  return data_[r * cols_ + c];
}

Vector Matrix::row(std::size_t r) const {
  TAFLOC_CHECK_BOUNDS(r, rows_, "Matrix row");
  return Vector(data_.begin() + static_cast<std::ptrdiff_t>(r * cols_),
                data_.begin() + static_cast<std::ptrdiff_t>((r + 1) * cols_));
}

Vector Matrix::col(std::size_t c) const {
  TAFLOC_CHECK_BOUNDS(c, cols_, "Matrix col");
  Vector v(rows_);
  for (std::size_t r = 0; r < rows_; ++r) v[r] = data_[r * cols_ + c];
  return v;
}

void Matrix::set_row(std::size_t r, std::span<const double> values) {
  TAFLOC_CHECK_BOUNDS(r, rows_, "Matrix row");
  TAFLOC_CHECK_ARG(values.size() == cols_, "row length mismatch");
  std::copy(values.begin(), values.end(), data_.begin() + static_cast<std::ptrdiff_t>(r * cols_));
}

void Matrix::set_col(std::size_t c, std::span<const double> values) {
  TAFLOC_CHECK_BOUNDS(c, cols_, "Matrix col");
  TAFLOC_CHECK_ARG(values.size() == rows_, "column length mismatch");
  for (std::size_t r = 0; r < rows_; ++r) data_[r * cols_ + c] = values[r];
}

void Matrix::set_col(std::size_t c, ConstVectorView values) {
  TAFLOC_CHECK_BOUNDS(c, cols_, "Matrix col");
  TAFLOC_CHECK_ARG(values.size() == rows_, "column length mismatch");
  const double* p = values.data();
  const std::size_t st = values.stride();
  for (std::size_t r = 0; r < rows_; ++r) data_[r * cols_ + c] = p[r * st];
}

Matrix Matrix::transposed() const {
  Matrix t;
  transposed_into(*this, t);
  return t;
}

Matrix Matrix::submatrix(std::size_t r0, std::size_t c0, std::size_t nr, std::size_t nc) const {
  TAFLOC_CHECK_ARG(r0 + nr <= rows_ && c0 + nc <= cols_, "submatrix exceeds matrix bounds");
  TAFLOC_CHECK_ARG(nr > 0 && nc > 0, "submatrix must be non-empty");
  Matrix s(nr, nc);
  for (std::size_t r = 0; r < nr; ++r)
    for (std::size_t c = 0; c < nc; ++c) s(r, c) = data_[(r0 + r) * cols_ + (c0 + c)];
  return s;
}

Matrix Matrix::select_columns(std::span<const std::size_t> indices) const {
  TAFLOC_CHECK_ARG(!indices.empty(), "select_columns needs at least one index");
  Matrix s(rows_, indices.size());
  for (std::size_t k = 0; k < indices.size(); ++k) {
    TAFLOC_CHECK_BOUNDS(indices[k], cols_, "select_columns index");
    for (std::size_t r = 0; r < rows_; ++r) s(r, k) = data_[r * cols_ + indices[k]];
  }
  return s;
}

Matrix Matrix::select_rows(std::span<const std::size_t> indices) const {
  TAFLOC_CHECK_ARG(!indices.empty(), "select_rows needs at least one index");
  Matrix s(indices.size(), cols_);
  for (std::size_t k = 0; k < indices.size(); ++k) {
    TAFLOC_CHECK_BOUNDS(indices[k], rows_, "select_rows index");
    for (std::size_t c = 0; c < cols_; ++c) s(k, c) = data_[indices[k] * cols_ + c];
  }
  return s;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  TAFLOC_CHECK_ARG(same_shape(other), "matrix addition requires equal shapes");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  TAFLOC_CHECK_ARG(same_shape(other), "matrix subtraction requires equal shapes");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double scalar) noexcept {
  for (double& x : data_) x *= scalar;
  return *this;
}

Matrix Matrix::hadamard(const Matrix& other) const {
  TAFLOC_CHECK_ARG(same_shape(other), "Hadamard product requires equal shapes");
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] *= other.data_[i];
  return out;
}

double Matrix::frobenius_dot(const Matrix& other) const {
  TAFLOC_CHECK_ARG(same_shape(other), "Frobenius inner product requires equal shapes");
  double s = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) s += data_[i] * other.data_[i];
  return s;
}

double Matrix::frobenius_norm() const noexcept {
  double s = 0.0;
  for (double x : data_) s += x * x;
  return std::sqrt(s);
}

double Matrix::max_abs() const noexcept {
  double m = 0.0;
  for (double x : data_) m = std::max(m, std::abs(x));
  return m;
}

double Matrix::sum() const noexcept {
  double s = 0.0;
  for (double x : data_) s += x;
  return s;
}

std::string Matrix::to_string(int decimals) const {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(decimals);
  oss << rows_ << "x" << cols_ << " [\n";
  for (std::size_t r = 0; r < rows_; ++r) {
    oss << "  ";
    for (std::size_t c = 0; c < cols_; ++c) {
      if (c > 0) oss << ' ';
      oss << std::setw(decimals + 6) << data_[r * cols_ + c];
    }
    oss << '\n';
  }
  oss << "]";
  return oss.str();
}

Matrix operator+(Matrix a, const Matrix& b) {
  a += b;
  return a;
}

Matrix operator-(Matrix a, const Matrix& b) {
  a -= b;
  return a;
}

Matrix operator*(Matrix a, double s) {
  a *= s;
  return a;
}

Matrix operator*(double s, Matrix a) {
  a *= s;
  return a;
}

Matrix operator*(const Matrix& a, const Matrix& b) {
  Matrix c;
  multiply_into(a, b, c);
  return c;
}

Vector multiply(const Matrix& a, std::span<const double> x) {
  Vector y;
  multiply_into(a, x, y);
  return y;
}

Vector multiply_transposed(const Matrix& a, std::span<const double> x) {
  Vector y;
  multiply_transposed_into(a, x, y);
  return y;
}

Matrix gram_product(const Matrix& a, const Matrix& b) {
  Matrix c;
  gram_product_into(a, b, c);
  return c;
}

Matrix outer_product(const Matrix& a, const Matrix& b) {
  Matrix c;
  outer_product_into(a, b, c);
  return c;
}

double max_abs_diff(const Matrix& a, const Matrix& b) {
  TAFLOC_CHECK_ARG(a.same_shape(b), "max_abs_diff requires equal shapes");
  double m = 0.0;
  for (std::size_t i = 0; i < a.data().size(); ++i)
    m = std::max(m, std::abs(a.data()[i] - b.data()[i]));
  return m;
}

// ---------------- destination-passing kernels ----------------
//
// The view forms below are the real kernels; the owning-Matrix
// overloads resize the destination and forward.  Strided access goes
// through row_ptr() (rows are contiguous within a view), so the inner
// loops and the per-output-element accumulation order are exactly the
// contiguous kernels' -- bit-identity holds across thread counts AND
// across owning-vs-view operands.

void multiply_into(ConstMatrixView a, ConstMatrixView b, MatrixView out) {
  TAFLOC_CHECK_ARG(a.cols() == b.rows(), "matrix product inner dimensions must agree");
  TAFLOC_CHECK_ARG(out.rows() == a.rows() && out.cols() == b.cols(),
                   "multiply_into destination shape mismatch");
#ifndef NDEBUG
  TAFLOC_CHECK_ARG(!views_overlap(out, a) && !views_overlap(out, b),
                   "multiply_into destination must not alias an input");
#endif
  out.fill(0.0);
  const std::size_t kk = a.cols();
  const std::size_t nc = b.cols();
  const KernelOps& ops = kernel_ops();
  // Cache-blocked/tiled gemm.  Three levels:
  //   * row panels (kPanel output rows) keep a hot set of C rows while
  //     B rows stream through;
  //   * k blocks (kKBlock) bound the slice of B live in cache per panel
  //     pass;
  //   * j tiles (kJTile) bound the C/B row segments to a cache-friendly
  //     width when the output is very wide (the 10^4-cell fingerprint
  //     scans), at the cost of re-reading A once per tile.
  // Per output element the accumulation still runs over k in strictly
  // increasing order -- identical to the classic i-k-j loop -- and the
  // inner row update dispatches to the backend's axpy, which is
  // element-wise over j.  The result is therefore bitwise independent
  // of panel/block/tile sizes, thread count AND backend choice.
  constexpr std::size_t kPanel = 8;
  constexpr std::size_t kKBlock = 256;
  constexpr std::size_t kJTile = 2048;
  ThreadPool::global().parallel_for(
      0, a.rows(), row_grain(kk * nc), [&](std::size_t r0, std::size_t r1) {
        for (std::size_t j0 = 0; j0 < nc; j0 += kJTile) {
          const std::size_t jn = std::min(kJTile, nc - j0);
          for (std::size_t i0 = r0; i0 < r1; i0 += kPanel) {
            const std::size_t ilim = std::min(i0 + kPanel, r1);
            for (std::size_t k0 = 0; k0 < kk; k0 += kKBlock) {
              const std::size_t klim = std::min(k0 + kKBlock, kk);
              for (std::size_t k = k0; k < klim; ++k) {
                const double* brow = b.row_ptr(k) + j0;
                for (std::size_t i = i0; i < ilim; ++i) {
                  const double aik = a.row_ptr(i)[k];
                  if (aik == 0.0) continue;
                  ops.axpy(aik, brow, out.row_ptr(i) + j0, jn);
                }
              }
            }
          }
        }
      });
}

void multiply_into(ConstMatrixView a, std::span<const double> x, Vector& y) {
  TAFLOC_CHECK_ARG(a.cols() == x.size(), "matrix-vector product dimension mismatch");
  y.assign(a.rows(), 0.0);
  // Dot-product reduction: SIMD lane partial sums would reorder the
  // accumulation, so this kernel stays scalar in EVERY backend (see
  // backend.h) -- it is deliberately not dispatched.
  ThreadPool::global().parallel_for(
      0, a.rows(), row_grain(a.cols()), [&](std::size_t r0, std::size_t r1) {
        for (std::size_t i = r0; i < r1; ++i) {
          const double* arow = a.row_ptr(i);
          double s = 0.0;
          for (std::size_t j = 0; j < a.cols(); ++j) s += arow[j] * x[j];
          y[i] = s;
        }
      });
}

void multiply_transposed_into(ConstMatrixView a, std::span<const double> x, Vector& y) {
  TAFLOC_CHECK_ARG(a.rows() == x.size(), "transposed matrix-vector product dimension mismatch");
  y.assign(a.cols(), 0.0);
  // Partitioned over *output* entries: every lane scans all rows but
  // only accumulates its own span of y, preserving the sequential
  // per-entry accumulation order (increasing i).  The row update is the
  // backend axpy -- element-wise over j, so lanes and vector widths
  // never share an accumulator.
  const KernelOps& ops = kernel_ops();
  ThreadPool::global().parallel_for(
      0, a.cols(), row_grain(2 * a.rows()), [&](std::size_t c0, std::size_t c1) {
        for (std::size_t i = 0; i < a.rows(); ++i) {
          const double xi = x[i];
          if (xi == 0.0) continue;
          ops.axpy(xi, a.row_ptr(i) + c0, y.data() + c0, c1 - c0);
        }
      });
}

void gram_product_into(ConstMatrixView a, ConstMatrixView b, MatrixView out) {
  TAFLOC_CHECK_ARG(a.rows() == b.rows(), "gram_product requires equal row counts");
  TAFLOC_CHECK_ARG(out.rows() == a.cols() && out.cols() == b.cols(),
                   "gram_product_into destination shape mismatch");
#ifndef NDEBUG
  TAFLOC_CHECK_ARG(!views_overlap(out, a) && !views_overlap(out, b),
                   "gram_product_into destination must not alias an input");
#endif
  out.fill(0.0);
  const std::size_t kk = a.rows();
  const std::size_t nc = b.cols();
  const KernelOps& ops = kernel_ops();
  ThreadPool::global().parallel_for(
      0, a.cols(), row_grain(kk * nc), [&](std::size_t r0, std::size_t r1) {
        // k outermost (as in the sequential kernel) keeps per-element
        // accumulation order identical; the i loop covers only this
        // lane's output rows, and the row update is the element-wise
        // backend axpy (bit-identical across backends, see backend.h).
        for (std::size_t k = 0; k < kk; ++k) {
          const double* arow = a.row_ptr(k);
          const double* brow = b.row_ptr(k);
          for (std::size_t i = r0; i < r1; ++i) {
            const double aki = arow[i];
            if (aki == 0.0) continue;
            ops.axpy(aki, brow, out.row_ptr(i), nc);
          }
        }
      });
}

void outer_product_into(ConstMatrixView a, ConstMatrixView b, MatrixView out) {
  TAFLOC_CHECK_ARG(a.cols() == b.cols(), "outer_product requires equal column counts");
  TAFLOC_CHECK_ARG(out.rows() == a.rows() && out.cols() == b.rows(),
                   "outer_product_into destination shape mismatch");
#ifndef NDEBUG
  TAFLOC_CHECK_ARG(!views_overlap(out, a) && !views_overlap(out, b),
                   "outer_product_into destination must not alias an input");
#endif
  const std::size_t kk = a.cols();
  ThreadPool::global().parallel_for(
      0, a.rows(), row_grain(kk * b.rows()), [&](std::size_t r0, std::size_t r1) {
        for (std::size_t i = r0; i < r1; ++i) {
          const double* arow = a.row_ptr(i);
          double* crow = out.row_ptr(i);
          for (std::size_t j = 0; j < b.rows(); ++j) {
            const double* brow = b.row_ptr(j);
            double s = 0.0;
            for (std::size_t k = 0; k < kk; ++k) s += arow[k] * brow[k];
            crow[j] = s;
          }
        }
      });
}

void transposed_into(ConstMatrixView a, MatrixView out) {
  TAFLOC_CHECK_ARG(out.rows() == a.cols() && out.cols() == a.rows(),
                   "transposed_into destination shape mismatch");
#ifndef NDEBUG
  TAFLOC_CHECK_ARG(!views_overlap(out, a),
                   "transposed_into destination must not alias the input");
#endif
  ThreadPool::global().parallel_for(
      0, a.cols(), row_grain(a.rows()), [&](std::size_t c0, std::size_t c1) {
        for (std::size_t c = c0; c < c1; ++c) {
          double* orow = out.row_ptr(c);
          for (std::size_t r = 0; r < a.rows(); ++r) orow[r] = a.row_ptr(r)[c];
        }
      });
}

void hadamard_into(ConstMatrixView a, ConstMatrixView b, MatrixView out) {
  TAFLOC_CHECK_ARG(a.same_shape(b), "Hadamard product requires equal shapes");
  TAFLOC_CHECK_ARG(out.same_shape(a), "hadamard_into destination shape mismatch");
  const KernelOps& ops = kernel_ops();
  for (std::size_t r = 0; r < a.rows(); ++r)
    ops.hadamard(a.row_ptr(r), b.row_ptr(r), out.row_ptr(r), a.cols());
}

void add_scaled_into(ConstMatrixView x, double s, MatrixView y) {
  TAFLOC_CHECK_ARG(y.same_shape(x), "add_scaled_into requires equal shapes");
  const KernelOps& ops = kernel_ops();
  for (std::size_t r = 0; r < x.rows(); ++r) ops.axpy(s, x.row_ptr(r), y.row_ptr(r), x.cols());
}

void copy_into(ConstMatrixView src, MatrixView dst) {
  TAFLOC_CHECK_ARG(dst.same_shape(src), "copy_into requires equal shapes");
#ifndef NDEBUG
  TAFLOC_CHECK_ARG(dst.data() == src.data() || !views_overlap(dst, src),
                   "copy_into source and destination must not partially overlap");
#endif
  for (std::size_t r = 0; r < src.rows(); ++r)
    std::copy(src.row_ptr(r), src.row_ptr(r) + src.cols(), dst.row_ptr(r));
}

void gather_columns_into(ConstMatrixView src, std::span<const std::size_t> indices,
                         MatrixView dst) {
  TAFLOC_CHECK_ARG(!indices.empty(), "gather_columns_into needs at least one index");
  TAFLOC_CHECK_ARG(dst.rows() == src.rows() && dst.cols() == indices.size(),
                   "gather_columns_into destination shape mismatch");
#ifndef NDEBUG
  TAFLOC_CHECK_ARG(!views_overlap(dst, src),
                   "gather_columns_into destination must not alias the source");
#endif
  // Same k-outer / r-inner order as Matrix::select_columns.
  for (std::size_t k = 0; k < indices.size(); ++k) {
    TAFLOC_CHECK_BOUNDS(indices[k], src.cols(), "gather_columns_into index");
    for (std::size_t r = 0; r < src.rows(); ++r) dst.row_ptr(r)[k] = src.row_ptr(r)[indices[k]];
  }
}

double frobenius_diff_norm(ConstMatrixView a, ConstMatrixView b) {
  TAFLOC_CHECK_ARG(a.same_shape(b), "frobenius_diff_norm requires equal shapes");
  // Row-major traversal, so the accumulation order matches the flat
  // loop over contiguous storage exactly.
  double s = 0.0;
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const double* ap = a.row_ptr(r);
    const double* bp = b.row_ptr(r);
    for (std::size_t c = 0; c < a.cols(); ++c) {
      const double d = ap[c] - bp[c];
      s += d * d;
    }
  }
  return std::sqrt(s);
}

// Owning-Matrix wrappers: resize the destination, then forward.

void multiply_into(const Matrix& a, const Matrix& b, Matrix& out) {
  TAFLOC_CHECK_ARG(a.cols() == b.rows(), "matrix product inner dimensions must agree");
  TAFLOC_CHECK_ARG(&out != &a && &out != &b, "multiply_into destination must not alias an input");
  out.resize(a.rows(), b.cols());
  multiply_into(a.view(), b.view(), out.view());
}

void gram_product_into(const Matrix& a, const Matrix& b, Matrix& out) {
  TAFLOC_CHECK_ARG(a.rows() == b.rows(), "gram_product requires equal row counts");
  TAFLOC_CHECK_ARG(&out != &a && &out != &b,
                   "gram_product_into destination must not alias an input");
  out.resize(a.cols(), b.cols());
  gram_product_into(a.view(), b.view(), out.view());
}

void outer_product_into(const Matrix& a, const Matrix& b, Matrix& out) {
  TAFLOC_CHECK_ARG(a.cols() == b.cols(), "outer_product requires equal column counts");
  TAFLOC_CHECK_ARG(&out != &a && &out != &b,
                   "outer_product_into destination must not alias an input");
  out.resize(a.rows(), b.rows());
  outer_product_into(a.view(), b.view(), out.view());
}

void transposed_into(const Matrix& a, Matrix& out) {
  TAFLOC_CHECK_ARG(&out != &a, "transposed_into destination must not alias the input");
  out.resize(a.cols(), a.rows());
  transposed_into(a.view(), out.view());
}

void hadamard_into(const Matrix& a, const Matrix& b, Matrix& out) {
  TAFLOC_CHECK_ARG(a.same_shape(b), "Hadamard product requires equal shapes");
  out.resize(a.rows(), a.cols());
  hadamard_into(a.view(), b.view(), out.view());
}

void gather_columns_into(const Matrix& src, std::span<const std::size_t> indices, Matrix& dst) {
  TAFLOC_CHECK_ARG(!indices.empty(), "gather_columns_into needs at least one index");
  TAFLOC_CHECK_ARG(&dst != &src, "gather_columns_into destination must not alias the source");
  dst.resize(src.rows(), indices.size());
  gather_columns_into(src.view(), indices, dst.view());
}

}  // namespace tafloc
