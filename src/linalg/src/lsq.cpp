#include "tafloc/linalg/lsq.h"

#include "tafloc/linalg/cholesky.h"
#include "tafloc/linalg/qr.h"
#include "tafloc/linalg/vector_ops.h"
#include "tafloc/util/check.h"

namespace tafloc {

Vector solve_least_squares(const Matrix& a, std::span<const double> b) {
  TAFLOC_CHECK_ARG(a.rows() >= a.cols(), "least squares needs rows >= cols (else use ridge)");
  TAFLOC_CHECK_ARG(a.rows() == b.size(), "right-hand side length mismatch");
  const QrDecomposition qr = qr_decompose(a);
  // x = R^{-1} Q^T b.
  const Vector qtb = multiply_transposed(qr.q, b);
  return solve_upper_triangular(qr.r, qtb);
}

Vector solve_ridge(const Matrix& a, std::span<const double> b, double lambda) {
  TAFLOC_CHECK_ARG(lambda >= 0.0, "ridge parameter must be non-negative");
  TAFLOC_CHECK_ARG(a.rows() == b.size(), "right-hand side length mismatch");
  Matrix gram = gram_product(a, a);  // A^T A
  for (std::size_t i = 0; i < gram.rows(); ++i) gram(i, i) += lambda;
  const Vector atb = multiply_transposed(a, b);
  return cholesky_solve(cholesky_factor(gram), atb);
}

Matrix solve_ridge_matrix(const Matrix& a, const Matrix& b, double lambda) {
  TAFLOC_CHECK_ARG(lambda >= 0.0, "ridge parameter must be non-negative");
  TAFLOC_CHECK_ARG(a.rows() == b.rows(), "right-hand side row count mismatch");
  Matrix gram = gram_product(a, a);
  for (std::size_t i = 0; i < gram.rows(); ++i) gram(i, i) += lambda;
  const Matrix l = cholesky_factor(gram);
  const Matrix atb = gram_product(a, b);  // A^T B
  return cholesky_solve_matrix(l, atb);
}

double residual_norm(const Matrix& a, std::span<const double> x, std::span<const double> b) {
  const Vector ax = multiply(a, x);
  return distance2(ax, b);
}

}  // namespace tafloc
