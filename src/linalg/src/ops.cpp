#include "tafloc/linalg/ops.h"

#include <algorithm>
#include <cmath>

#include "tafloc/linalg/qr.h"
#include "tafloc/linalg/svd.h"
#include "tafloc/util/check.h"

namespace tafloc {

double soft_threshold(double x, double tau) noexcept {
  if (x > tau) return x - tau;
  if (x < -tau) return x + tau;
  return 0.0;
}

Matrix singular_value_shrink(const Matrix& a, double tau) {
  Matrix out;
  singular_value_shrink_into(a, tau, out);
  return out;
}

void singular_value_shrink_into(const Matrix& a, double tau, Matrix& out) {
  TAFLOC_CHECK_ARG(tau >= 0.0, "shrinkage threshold must be non-negative");
  TAFLOC_CHECK_ARG(&out != &a, "singular_value_shrink_into destination must not alias the input");
  SvdResult svd = svd_decompose(a);
  for (double& s : svd.sigma) s = std::max(s - tau, 0.0);
  svd.reconstruct_into(out);
}

Matrix first_difference_operator(std::size_t n) {
  TAFLOC_CHECK_ARG(n >= 2, "first-difference operator needs n >= 2");
  Matrix d(n - 1, n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    d(i, i) = -1.0;
    d(i, i + 1) = 1.0;
  }
  return d;
}

Matrix second_difference_operator(std::size_t n) {
  TAFLOC_CHECK_ARG(n >= 3, "second-difference operator needs n >= 3");
  Matrix d(n - 2, n);
  for (std::size_t i = 0; i + 2 < n; ++i) {
    d(i, i) = 1.0;
    d(i, i + 1) = -2.0;
    d(i, i + 2) = 1.0;
  }
  return d;
}

std::size_t numeric_rank(const Matrix& a, double rel_tol) {
  return svd_decompose(a).numeric_rank(rel_tol);
}

Matrix random_gaussian(std::size_t rows, std::size_t cols, Rng& rng) {
  TAFLOC_CHECK_ARG(rows > 0 && cols > 0, "random matrix must be non-empty");
  Matrix m(rows, cols);
  for (double& x : m.data()) x = rng.normal();
  return m;
}

Matrix random_low_rank(std::size_t rows, std::size_t cols, std::size_t rank, Rng& rng) {
  TAFLOC_CHECK_ARG(rank > 0 && rank <= std::min(rows, cols),
                   "rank must be in [1, min(rows, cols)]");
  const Matrix left = random_gaussian(rows, rank, rng);
  const Matrix right = random_gaussian(rank, cols, rng);
  Matrix m = left * right;
  // Normalize so E[x_ij^2] ~ 1 regardless of rank.
  m *= 1.0 / std::sqrt(static_cast<double>(rank));
  return m;
}

Matrix random_orthonormal(std::size_t rows, std::size_t cols, Rng& rng) {
  TAFLOC_CHECK_ARG(rows >= cols, "random_orthonormal needs rows >= cols");
  const Matrix g = random_gaussian(rows, cols, rng);
  return qr_decompose(g).q;
}

}  // namespace tafloc
