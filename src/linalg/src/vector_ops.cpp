#include "tafloc/linalg/vector_ops.h"

#include <algorithm>
#include <cmath>

#include "tafloc/util/check.h"

namespace tafloc {

double dot(std::span<const double> a, std::span<const double> b) {
  TAFLOC_CHECK_ARG(a.size() == b.size(), "dot product requires equal lengths");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm2(std::span<const double> v) noexcept {
  double s = 0.0;
  for (double x : v) s += x * x;
  return std::sqrt(s);
}

double norm_inf(std::span<const double> v) noexcept {
  double m = 0.0;
  for (double x : v) m = std::max(m, std::abs(x));
  return m;
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  TAFLOC_CHECK_ARG(x.size() == y.size(), "axpy requires equal lengths");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scale(std::span<double> v, double alpha) noexcept {
  for (double& x : v) x *= alpha;
}

Vector subtract(std::span<const double> a, std::span<const double> b) {
  TAFLOC_CHECK_ARG(a.size() == b.size(), "subtract requires equal lengths");
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Vector add(std::span<const double> a, std::span<const double> b) {
  TAFLOC_CHECK_ARG(a.size() == b.size(), "add requires equal lengths");
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

double distance2(std::span<const double> a, std::span<const double> b) {
  TAFLOC_CHECK_ARG(a.size() == b.size(), "distance2 requires equal lengths");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return std::sqrt(s);
}

double normalize(std::span<double> v) noexcept {
  const double n = norm2(v);
  if (n > 0.0) scale(v, 1.0 / n);
  return n;
}

bool all_finite(std::span<const double> v) noexcept {
  for (double x : v) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}

}  // namespace tafloc
