#include "tafloc/linalg/backend.h"

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "tafloc/util/check.h"

namespace tafloc {

/// The AVX2 table, or nullptr when this build/CPU cannot run it
/// (defined in backend_avx2.cpp so the vector intrinsics live in one
/// translation unit).
const KernelOps* detail_avx2_kernel_table() noexcept;

namespace {

// ---------------- scalar reference kernels ----------------
//
// These loops ARE the semantics: every other backend must reproduce
// their per-element operation order bit-for-bit.

void axpy_scalar(double a, const double* x, double* y, std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) y[j] += a * x[j];
}

void hadamard_scalar(const double* a, const double* b, double* out, std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) out[j] = a[j] * b[j];
}

std::uint64_t dist_sq_i8_scalar(const std::int8_t* a, const std::int8_t* b, std::size_t n) {
  std::uint64_t total = 0;
  for (std::size_t j = 0; j < n; ++j) {
    const std::int32_t d = static_cast<std::int32_t>(a[j]) - static_cast<std::int32_t>(b[j]);
    total += static_cast<std::uint64_t>(d * d);
  }
  return total;
}

std::uint64_t dist_sq_i8_masked_scalar(const std::int8_t* a, const std::int8_t* b,
                                       const std::uint8_t* usable, std::size_t n) {
  std::uint64_t total = 0;
  for (std::size_t j = 0; j < n; ++j) {
    if (usable[j] == 0) continue;
    const std::int32_t d = static_cast<std::int32_t>(a[j]) - static_cast<std::int32_t>(b[j]);
    total += static_cast<std::uint64_t>(d * d);
  }
  return total;
}

constexpr KernelOps kScalarOps{KernelBackend::kScalar, "scalar", axpy_scalar, hadamard_scalar,
                               dist_sq_i8_scalar, dist_sq_i8_masked_scalar};

const KernelOps* avx2_table() { return detail_avx2_kernel_table(); }

/// The process-wide selection.  nullptr = not resolved yet; the first
/// kernel_ops() call resolves kAuto (environment + CPU detection) once
/// and caches the winner.
std::atomic<const KernelOps*> g_active{nullptr};

KernelBackend env_backend_request() {
  const char* env = std::getenv("TAFLOC_KERNEL_BACKEND");
  if (env == nullptr || *env == '\0') return KernelBackend::kAuto;
  const std::string value(env);
  if (value == "auto") return KernelBackend::kAuto;
  if (value == "scalar") return KernelBackend::kScalar;
  if (value == "avx2") return KernelBackend::kAvx2;
  throw std::invalid_argument("TAFLOC_KERNEL_BACKEND='" + value +
                              "' is not one of auto | scalar | avx2");
}

const KernelOps* table_for(KernelBackend backend) {
  switch (backend) {
    case KernelBackend::kScalar:
      return &kScalarOps;
    case KernelBackend::kAvx2:
      return avx2_table();
    case KernelBackend::kAuto:
      break;
  }
  return nullptr;
}

}  // namespace

bool cpu_supports_avx2() noexcept { return avx2_table() != nullptr; }

KernelBackend resolve_kernel_backend(KernelBackend requested) {
  if (requested == KernelBackend::kAuto) {
    requested = env_backend_request();
    if (requested == KernelBackend::kAuto)
      return cpu_supports_avx2() ? KernelBackend::kAvx2 : KernelBackend::kScalar;
  }
  if (table_for(requested) == nullptr)
    throw std::invalid_argument(std::string("kernel backend '") +
                                kernel_backend_name(requested) +
                                "' is not supported on this CPU/build");
  return requested;
}

void set_kernel_backend(KernelBackend requested) {
  const KernelOps* table = table_for(resolve_kernel_backend(requested));
  TAFLOC_CHECK_ARG(table != nullptr, "resolved kernel backend has no dispatch table");
  g_active.store(table, std::memory_order_release);
}

const KernelOps& kernel_ops() noexcept {
  const KernelOps* table = g_active.load(std::memory_order_acquire);
  if (table == nullptr) {
    // First use: resolve the automatic selection.  A malformed
    // TAFLOC_KERNEL_BACKEND value aborts via the argument check rather
    // than silently running a backend the operator did not ask for.
    try {
      table = table_for(resolve_kernel_backend(KernelBackend::kAuto));
    } catch (const std::invalid_argument&) {
      table = &kScalarOps;  // unreachable for env values naming real backends
    }
    g_active.store(table, std::memory_order_release);
  }
  return *table;
}

const KernelOps& kernel_ops(KernelBackend backend) {
  const KernelOps* table = table_for(backend);
  if (table == nullptr)
    throw std::invalid_argument(std::string("kernel backend '") + kernel_backend_name(backend) +
                                "' is not available");
  return *table;
}

KernelBackend active_kernel_backend() noexcept { return kernel_ops().id; }

const char* kernel_backend_name(KernelBackend backend) noexcept {
  switch (backend) {
    case KernelBackend::kAuto:
      return "auto";
    case KernelBackend::kScalar:
      return "scalar";
    case KernelBackend::kAvx2:
      return "avx2";
  }
  return "unknown";
}

}  // namespace tafloc
