#include "tafloc/linalg/cholesky.h"

#include <cmath>
#include <stdexcept>

#include "tafloc/util/check.h"

namespace tafloc {

Matrix cholesky_factor(const Matrix& a) {
  TAFLOC_CHECK_ARG(a.rows() == a.cols() && !a.empty(), "Cholesky needs a non-empty square matrix");
  for (double v : a.data())
    TAFLOC_CHECK_ARG(std::isfinite(v), "matrix contains non-finite values");
  const std::size_t n = a.rows();
  Matrix l(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double s = a(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= l(i, k) * l(j, k);
      if (i == j) {
        if (s <= 0.0)
          throw std::domain_error("cholesky_factor: matrix is not positive definite (pivot " +
                                  std::to_string(s) + " at " + std::to_string(i) + ")");
        l(i, i) = std::sqrt(s);
      } else {
        l(i, j) = s / l(j, j);
      }
    }
  }
  return l;
}

Vector cholesky_solve(const Matrix& l, std::span<const double> b) {
  TAFLOC_CHECK_ARG(l.rows() == l.cols(), "Cholesky factor must be square");
  TAFLOC_CHECK_ARG(l.rows() == b.size(), "right-hand side length mismatch");
  const std::size_t n = l.rows();
  // Forward substitution: L y = b.
  Vector y(b.begin(), b.end());
  for (std::size_t i = 0; i < n; ++i) {
    double s = y[i];
    for (std::size_t k = 0; k < i; ++k) s -= l(i, k) * y[k];
    y[i] = s / l(i, i);
  }
  // Back substitution: L^T x = y.
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    double s = y[i];
    for (std::size_t k = i + 1; k < n; ++k) s -= l(k, i) * y[k];
    y[i] = s / l(i, i);
  }
  return y;
}

Matrix cholesky_solve_matrix(const Matrix& l, const Matrix& b) {
  TAFLOC_CHECK_ARG(l.rows() == b.rows(), "right-hand side row count mismatch");
  Matrix x(b.rows(), b.cols());
  for (std::size_t c = 0; c < b.cols(); ++c) {
    const Vector xc = cholesky_solve(l, b.col(c));
    x.set_col(c, xc);
  }
  return x;
}

Vector solve_spd(const Matrix& a, std::span<const double> b) {
  return cholesky_solve(cholesky_factor(a), b);
}

}  // namespace tafloc
