#include "tafloc/linalg/lu.h"

#include <cmath>
#include <stdexcept>

#include "tafloc/util/check.h"

namespace tafloc {

LuDecomposition::LuDecomposition(const Matrix& a) : lu_(a) {
  TAFLOC_CHECK_ARG(a.rows() == a.cols() && !a.empty(), "LU needs a non-empty square matrix");
  for (double v : lu_.data())
    TAFLOC_CHECK_ARG(std::isfinite(v), "matrix contains non-finite values");
  const std::size_t n = lu_.rows();
  pivot_.resize(n);

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivot: largest magnitude in column k at/below the diagonal.
    std::size_t p = k;
    double best = std::abs(lu_(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double v = std::abs(lu_(i, k));
      if (v > best) {
        best = v;
        p = i;
      }
    }
    if (best == 0.0) throw std::domain_error("LuDecomposition: matrix is singular");
    pivot_[k] = p;
    if (p != k) {
      for (std::size_t j = 0; j < n; ++j) std::swap(lu_(k, j), lu_(p, j));
      permutation_sign_ = -permutation_sign_;
    }
    const double inv_pivot = 1.0 / lu_(k, k);
    for (std::size_t i = k + 1; i < n; ++i) {
      lu_(i, k) *= inv_pivot;
      const double lik = lu_(i, k);
      if (lik == 0.0) continue;
      for (std::size_t j = k + 1; j < n; ++j) lu_(i, j) -= lik * lu_(k, j);
    }
  }
}

Vector LuDecomposition::solve(std::span<const double> b) const {
  const std::size_t n = lu_.rows();
  TAFLOC_CHECK_ARG(b.size() == n, "right-hand side length mismatch");
  Vector x(b.begin(), b.end());
  // Apply the row permutation.
  for (std::size_t k = 0; k < n; ++k) std::swap(x[k], x[pivot_[k]]);
  // Forward substitution (unit lower triangle).
  for (std::size_t i = 1; i < n; ++i) {
    double s = x[i];
    for (std::size_t j = 0; j < i; ++j) s -= lu_(i, j) * x[j];
    x[i] = s;
  }
  // Back substitution.
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    double s = x[i];
    for (std::size_t j = i + 1; j < n; ++j) s -= lu_(i, j) * x[j];
    x[i] = s / lu_(i, i);
  }
  return x;
}

Matrix LuDecomposition::solve_matrix(const Matrix& b) const {
  TAFLOC_CHECK_ARG(b.rows() == lu_.rows(), "right-hand side row count mismatch");
  Matrix x(b.rows(), b.cols());
  for (std::size_t c = 0; c < b.cols(); ++c) x.set_col(c, solve(b.col(c)));
  return x;
}

double LuDecomposition::determinant() const noexcept {
  double det = static_cast<double>(permutation_sign_);
  for (std::size_t i = 0; i < lu_.rows(); ++i) det *= lu_(i, i);
  return det;
}

Matrix LuDecomposition::inverse() const { return solve_matrix(Matrix::identity(lu_.rows())); }

Vector solve_linear(const Matrix& a, std::span<const double> b) {
  return LuDecomposition(a).solve(b);
}

}  // namespace tafloc
