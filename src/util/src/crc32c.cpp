#include "tafloc/util/crc32c.h"

#include <array>

namespace tafloc {

namespace {

// Castagnoli polynomial, reflected form.
constexpr std::uint32_t kPoly = 0x82f63b78u;

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit)
      crc = (crc & 1u) != 0 ? (crc >> 1) ^ kPoly : crc >> 1;
    table[i] = crc;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTable = make_table();

}  // namespace

std::uint32_t crc32c(std::span<const std::uint8_t> data, std::uint32_t seed) noexcept {
  std::uint32_t crc = ~seed;
  for (const std::uint8_t byte : data) crc = (crc >> 8) ^ kTable[(crc ^ byte) & 0xffu];
  return ~crc;
}

std::uint32_t crc32c(const void* data, std::size_t size, std::uint32_t seed) noexcept {
  return crc32c({static_cast<const std::uint8_t*>(data), size}, seed);
}

}  // namespace tafloc
