#include "tafloc/util/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "tafloc/util/check.h"

namespace tafloc {

RunningStats::RunningStats() noexcept
    : min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {}

void RunningStats::add(double x) noexcept {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double mean(std::span<const double> xs) {
  TAFLOC_CHECK_ARG(!xs.empty(), "mean of an empty sample is undefined");
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double sample_stddev(std::span<const double> xs) {
  TAFLOC_CHECK_ARG(xs.size() >= 2, "sample stddev needs at least two observations");
  RunningStats st;
  for (double x : xs) st.add(x);
  return st.stddev();
}

double percentile(std::span<const double> xs, double p) {
  TAFLOC_CHECK_ARG(!xs.empty(), "percentile of an empty sample is undefined");
  TAFLOC_CHECK_ARG(p >= 0.0 && p <= 100.0, "percentile must be in [0, 100]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

double rms(std::span<const double> xs) {
  TAFLOC_CHECK_ARG(!xs.empty(), "rms of an empty sample is undefined");
  double s = 0.0;
  for (double x : xs) s += x * x;
  return std::sqrt(s / static_cast<double>(xs.size()));
}

}  // namespace tafloc
