#include "tafloc/util/csv.h"

#include <sstream>
#include <stdexcept>

namespace tafloc {

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open '" + path + "' for writing");
}

std::string CsvWriter::escape(const std::string& field) {
  const bool needs_quoting = field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quoting) return field;
  std::string quoted = "\"";
  for (char c : field) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << escape(fields[i]);
  }
  out_ << '\n';
}

void CsvWriter::write_row(std::initializer_list<std::string> fields) {
  write_row(std::vector<std::string>(fields));
}

void CsvWriter::write_numeric_row(const std::vector<double>& values) {
  std::ostringstream oss;
  oss.precision(17);
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) oss << ',';
    oss << values[i];
  }
  out_ << oss.str() << '\n';
}

void CsvWriter::flush() { out_.flush(); }

}  // namespace tafloc
