#include "tafloc/util/cdf.h"

#include <algorithm>
#include <cmath>

#include "tafloc/util/check.h"

namespace tafloc {

EmpiricalCdf::EmpiricalCdf(std::span<const double> samples)
    : sorted_(samples.begin(), samples.end()) {
  TAFLOC_CHECK_ARG(!sorted_.empty(), "cannot build a CDF from an empty sample");
  std::sort(sorted_.begin(), sorted_.end());
  double s = 0.0;
  for (double x : sorted_) s += x;
  mean_ = s / static_cast<double>(sorted_.size());
}

double EmpiricalCdf::at(double x) const noexcept {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

double EmpiricalCdf::quantile(double q) const {
  TAFLOC_CHECK_ARG(q >= 0.0 && q <= 1.0, "quantile level must be in [0, 1]");
  if (q == 0.0) return sorted_.front();
  const double target = q * static_cast<double>(sorted_.size());
  auto rank = static_cast<std::size_t>(std::ceil(target));
  rank = std::min(std::max<std::size_t>(rank, 1), sorted_.size());
  return sorted_[rank - 1];
}

std::vector<std::pair<double, double>> EmpiricalCdf::curve(double lo, double hi,
                                                           std::size_t points) const {
  TAFLOC_CHECK_ARG(points >= 2, "a CDF curve needs at least two points");
  TAFLOC_CHECK_ARG(lo < hi, "curve range must be non-empty");
  std::vector<std::pair<double, double>> out;
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double x = lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(points - 1);
    out.emplace_back(x, at(x));
  }
  return out;
}

}  // namespace tafloc
