#include "tafloc/util/interp.h"

#include <algorithm>

#include "tafloc/util/check.h"

namespace tafloc {

LinearInterpolator::LinearInterpolator(std::span<const double> xs, std::span<const double> ys)
    : xs_(xs.begin(), xs.end()), ys_(ys.begin(), ys.end()) {
  TAFLOC_CHECK_ARG(!xs_.empty(), "interpolator needs at least one knot");
  TAFLOC_CHECK_ARG(xs_.size() == ys_.size(), "xs and ys must have equal length");
  for (std::size_t i = 1; i < xs_.size(); ++i)
    TAFLOC_CHECK_ARG(xs_[i - 1] < xs_[i], "knot abscissae must be strictly increasing");
}

double LinearInterpolator::operator()(double x) const noexcept {
  if (x <= xs_.front()) return ys_.front();
  if (x >= xs_.back()) return ys_.back();
  const auto it = std::upper_bound(xs_.begin(), xs_.end(), x);
  const std::size_t hi = static_cast<std::size_t>(it - xs_.begin());
  const std::size_t lo = hi - 1;
  const double t = (x - xs_[lo]) / (xs_[hi] - xs_[lo]);
  return ys_[lo] * (1.0 - t) + ys_[hi] * t;
}

}  // namespace tafloc
