#include "tafloc/util/rng.h"

#include <algorithm>

#include "tafloc/util/check.h"

namespace tafloc {

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  SplitMix64 sm(seed);
  std::seed_seq seq{static_cast<std::uint32_t>(sm.next()), static_cast<std::uint32_t>(sm.next()),
                    static_cast<std::uint32_t>(sm.next()), static_cast<std::uint32_t>(sm.next()),
                    static_cast<std::uint32_t>(sm.next()), static_cast<std::uint32_t>(sm.next())};
  engine_.seed(seq);
}

double Rng::uniform(double lo, double hi) {
  TAFLOC_CHECK_ARG(lo < hi, "uniform range must be non-empty");
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

double Rng::uniform01() { return std::uniform_real_distribution<double>(0.0, 1.0)(engine_); }

double Rng::normal() { return std::normal_distribution<double>(0.0, 1.0)(engine_); }

double Rng::normal(double mean, double sigma) {
  TAFLOC_CHECK_ARG(sigma >= 0.0, "standard deviation must be non-negative");
  if (sigma == 0.0) return mean;
  return std::normal_distribution<double>(mean, sigma)(engine_);
}

std::size_t Rng::index(std::size_t n) {
  TAFLOC_CHECK_ARG(n > 0, "cannot draw an index from an empty range");
  return std::uniform_int_distribution<std::size_t>(0, n - 1)(engine_);
}

std::int64_t Rng::integer(std::int64_t lo, std::int64_t hi) {
  TAFLOC_CHECK_ARG(lo <= hi, "integer range must be non-empty");
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
}

bool Rng::bernoulli(double p) {
  TAFLOC_CHECK_ARG(p >= 0.0 && p <= 1.0, "probability must be in [0, 1]");
  return std::bernoulli_distribution(p)(engine_);
}

Rng Rng::fork() {
  SplitMix64 sm(seed_ ^ (0xa5a5a5a5a5a5a5a5ULL + ++fork_counter_));
  // Mix in one draw from the parent so forks after different histories
  // differ even with the same counter value after copying.
  return Rng(sm.next() ^ engine_());
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n, std::size_t k) {
  TAFLOC_CHECK_ARG(k <= n, "cannot sample more elements than the population holds");
  std::vector<std::size_t> pool(n);
  for (std::size_t i = 0; i < n; ++i) pool[i] = i;
  // Partial Fisher-Yates: only the first k swaps are needed.
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + index(n - i);
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

void Rng::shuffle(std::vector<std::size_t>& v) {
  if (v.size() < 2) return;
  for (std::size_t i = v.size() - 1; i > 0; --i) {
    const std::size_t j = index(i + 1);
    std::swap(v[i], v[j]);
  }
}

}  // namespace tafloc
