#include "tafloc/util/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace tafloc {

void AsciiTable::set_header(std::vector<std::string> header) { header_ = std::move(header); }

void AsciiTable::add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

std::string AsciiTable::num(double value, int decimals) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(decimals) << value;
  return oss.str();
}

std::string AsciiTable::render() const {
  std::size_t columns = header_.size();
  for (const auto& row : rows_) columns = std::max(columns, row.size());
  if (columns == 0) return "(empty table)\n";

  std::vector<std::size_t> width(columns, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  auto rule = [&]() {
    std::string s = "+";
    for (std::size_t c = 0; c < columns; ++c) s += std::string(width[c] + 2, '-') + "+";
    return s + "\n";
  };
  auto line = [&](const std::vector<std::string>& row) {
    std::string s = "|";
    for (std::size_t c = 0; c < columns; ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      s += " " + cell + std::string(width[c] - cell.size(), ' ') + " |";
    }
    return s + "\n";
  };

  std::string out = rule();
  if (!header_.empty()) {
    out += line(header_);
    out += rule();
  }
  for (const auto& row : rows_) out += line(row);
  out += rule();
  return out;
}

}  // namespace tafloc
