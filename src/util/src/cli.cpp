#include "tafloc/util/cli.h"

#include <cstdlib>
#include <stdexcept>

namespace tafloc {

ArgParser::ArgParser(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positionals_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq == std::string::npos) {
      values_[body] = "";
    } else {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
    }
  }
}

bool ArgParser::has(const std::string& key) const { return values_.count(key) > 0; }

std::string ArgParser::get_string(const std::string& key, const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

double ArgParser::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0')
    throw std::invalid_argument("--" + key + " expects a number, got '" + it->second + "'");
  return v;
}

long ArgParser::get_long(const std::string& key, long fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const long v = std::strtol(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0')
    throw std::invalid_argument("--" + key + " expects an integer, got '" + it->second + "'");
  return v;
}

bool ArgParser::get_bool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  if (v.empty() || v == "1" || v == "true" || v == "yes") return true;
  if (v == "0" || v == "false" || v == "no") return false;
  throw std::invalid_argument("--" + key + " expects a boolean, got '" + v + "'");
}

}  // namespace tafloc
