#include "tafloc/util/log.h"

#include <atomic>
#include <iostream>
#include <mutex>

namespace tafloc {

namespace {

std::atomic<LogLevel> g_level{LogLevel::Info};

std::mutex& sink_mutex() {
  static std::mutex m;
  return m;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF  ";
  }
  return "?????";
}

}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() noexcept { return g_level.load(std::memory_order_relaxed); }

void log_message(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  const std::lock_guard<std::mutex> lock(sink_mutex());
  std::cerr << "[tafloc " << level_name(level) << "] " << message << '\n';
}

}  // namespace tafloc
