#include "tafloc/util/log.h"

#include <atomic>
#include <chrono>
#include <cstdio>

namespace tafloc {

namespace {

std::atomic<LogLevel> g_level{LogLevel::Info};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF  ";
  }
  return "?????";
}

/// Seconds of monotonic clock since the first log call -- a drift-free
/// relative timestamp that lines up with telemetry span timestamps.
double elapsed_seconds() {
  static const std::chrono::steady_clock::time_point start = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() noexcept { return g_level.load(std::memory_order_relaxed); }

void log_message(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  // The whole line -- prefix, message, newline -- is formatted first and
  // emitted with a single fwrite: stdio locks the stream per call, so
  // concurrent loggers never interleave within a line and need no
  // additional mutex.
  char prefix[64];
  std::snprintf(prefix, sizeof(prefix), "[tafloc %s +%.3fs] ", level_name(level),
                elapsed_seconds());
  std::string line;
  line.reserve(sizeof(prefix) + message.size() + 1);
  line += prefix;
  line += message;
  line += '\n';
  std::fwrite(line.data(), 1, line.size(), stderr);
  std::fflush(stderr);
}

}  // namespace tafloc
