#include "tafloc/util/log.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>

namespace tafloc {

namespace {

std::atomic<LogLevel> g_level{LogLevel::Info};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF  ";
  }
  return "?????";
}

/// Seconds of monotonic clock since the first log call -- a drift-free
/// relative timestamp that lines up with telemetry span timestamps.
double elapsed_seconds() {
  static const std::chrono::steady_clock::time_point start = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

/// Wall-clock UTC as ISO-8601 with milliseconds, so logs from separate
/// daemon runs can be correlated with exported JSONL snapshots (the
/// monotonic offset alone resets every process start).
void format_wall_clock(char* out, std::size_t out_size) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto millis = std::chrono::duration_cast<std::chrono::milliseconds>(
                          now.time_since_epoch())
                          .count() %
                      1000;
  std::tm tm_utc{};
  gmtime_r(&secs, &tm_utc);
  char date[32];
  std::strftime(date, sizeof(date), "%Y-%m-%dT%H:%M:%S", &tm_utc);
  std::snprintf(out, out_size, "%s.%03dZ", date, static_cast<int>(millis));
}

}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() noexcept { return g_level.load(std::memory_order_relaxed); }

void log_message(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  // The whole line -- prefix, message, newline -- is formatted first and
  // emitted with a single fwrite: stdio locks the stream per call, so
  // concurrent loggers never interleave within a line and need no
  // additional mutex.
  char wall[40];
  format_wall_clock(wall, sizeof(wall));
  char prefix[96];
  std::snprintf(prefix, sizeof(prefix), "[tafloc %s %s +%.3fs] ", level_name(level), wall,
                elapsed_seconds());
  std::string line;
  line.reserve(sizeof(prefix) + message.size() + 1);
  line += prefix;
  line += message;
  line += '\n';
  std::fwrite(line.data(), 1, line.size(), stderr);
  std::fflush(stderr);
}

}  // namespace tafloc
