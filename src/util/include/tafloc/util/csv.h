// Minimal CSV writer for machine-readable experiment output.
#pragma once

#include <fstream>
#include <initializer_list>
#include <string>
#include <vector>

namespace tafloc {

/// CsvWriter -- writes rows to a file (or any owned ofstream).  Fields
/// containing commas, quotes or newlines are quoted per RFC 4180.
class CsvWriter {
 public:
  /// Open `path` for writing; throws std::runtime_error on failure.
  explicit CsvWriter(const std::string& path);

  /// Write one row of string fields.
  void write_row(const std::vector<std::string>& fields);
  void write_row(std::initializer_list<std::string> fields);

  /// Write one row of numeric fields with full double precision.
  void write_numeric_row(const std::vector<double>& values);

  /// Flush the underlying stream.
  void flush();

  /// Quote a single field if needed (exposed for testing).
  static std::string escape(const std::string& field);

 private:
  std::ofstream out_;
};

}  // namespace tafloc
