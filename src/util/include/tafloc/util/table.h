// ASCII table rendering for bench / example output.
//
// Benches print the paper's tables and figure series in this format so
// the reproduction can be eyeballed straight from the terminal.
#pragma once

#include <string>
#include <vector>

namespace tafloc {

/// AsciiTable -- accumulate a header plus rows of strings, then render
/// with column-aligned monospace borders.
class AsciiTable {
 public:
  /// Set the header row (column titles).  May be called once, before rows.
  void set_header(std::vector<std::string> header);

  /// Append one data row.  Rows may have fewer cells than the header;
  /// missing cells render empty.  Rows wider than the header widen the
  /// table.
  void add_row(std::vector<std::string> row);

  /// Convenience: format a double with `decimals` fractional digits.
  static std::string num(double value, int decimals = 2);

  /// Render the table to a string (with trailing newline).
  std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tafloc
