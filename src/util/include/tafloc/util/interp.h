// Piecewise-linear interpolation over a monotone knot sequence.
//
// Used by the drift model (anchored to the paper's measured drift at
// 5 and 45 days) and by CDF resampling in the benches.
#pragma once

#include <span>
#include <vector>

namespace tafloc {

/// LinearInterpolator -- y(x) linear between knots, clamped outside the
/// knot range (constant extrapolation).
class LinearInterpolator {
 public:
  /// Build from strictly increasing xs and matching ys (same length >= 1).
  LinearInterpolator(std::span<const double> xs, std::span<const double> ys);

  /// Interpolated value at x.
  double operator()(double x) const noexcept;

  /// Knot count.
  std::size_t size() const noexcept { return xs_.size(); }

 private:
  std::vector<double> xs_;
  std::vector<double> ys_;
};

}  // namespace tafloc
