// Tiny command-line argument parser for examples and bench binaries.
//
// Supports `--key=value` and `--flag` forms.  Unknown keys are kept and
// can be listed (google-benchmark flags pass through untouched).
#pragma once

#include <map>
#include <string>
#include <vector>

namespace tafloc {

/// ArgParser -- parse argv once, then query typed values with defaults.
class ArgParser {
 public:
  /// Parse `argv[1..argc)`.  Arguments not starting with "--" are
  /// collected as positionals.
  ArgParser(int argc, const char* const* argv);

  /// True if `--key` or `--key=...` was present.
  bool has(const std::string& key) const;

  /// String value of `--key=value`; `fallback` when absent.
  std::string get_string(const std::string& key, const std::string& fallback) const;

  /// Numeric value; throws std::invalid_argument when present but unparsable.
  double get_double(const std::string& key, double fallback) const;
  long get_long(const std::string& key, long fallback) const;

  /// Boolean: `--key` alone or `--key=true/false/1/0`.
  bool get_bool(const std::string& key, bool fallback) const;

  /// Positional (non --) arguments in order.
  const std::vector<std::string>& positionals() const noexcept { return positionals_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positionals_;
};

}  // namespace tafloc
