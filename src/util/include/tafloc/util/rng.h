// Deterministic random number generation for reproducible experiments.
//
// Every stochastic component in the library takes an explicit Rng (or a
// seed from which it derives one); there is no global RNG state.  An Rng
// can spawn statistically independent child streams (`fork`) so that,
// e.g., per-link noise processes stay decoupled from the target motion
// trace no matter how many draws each consumes.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace tafloc {

/// SplitMix64 -- tiny, high-quality 64-bit mixing function.  Used both
/// as a seed expander for `Rng` and as a cheap standalone generator.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  /// Next 64 pseudo-random bits.
  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Rng -- seeded wrapper over std::mt19937_64 with the distributions the
/// library needs.  Copyable (copies duplicate the stream state).
class Rng {
 public:
  /// Construct from a 64-bit seed; the seed is expanded through
  /// SplitMix64 so that nearby seeds give unrelated streams.
  explicit Rng(std::uint64_t seed);

  /// Uniform double in [lo, hi).  Requires lo < hi.
  double uniform(double lo, double hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Standard normal draw.
  double normal();

  /// Normal draw with the given mean and standard deviation (sigma >= 0).
  double normal(double mean, double sigma);

  /// Uniform integer in [0, n).  Requires n > 0.
  std::size_t index(std::size_t n);

  /// Uniform integer in [lo, hi] inclusive.  Requires lo <= hi.
  std::int64_t integer(std::int64_t lo, std::int64_t hi);

  /// Bernoulli draw with success probability p in [0, 1].
  bool bernoulli(double p);

  /// Derive an independent child stream.  Successive calls yield
  /// distinct streams; the parent's own sequence is unaffected apart
  /// from consuming one internal counter step.
  Rng fork();

  /// k distinct indices sampled uniformly from [0, n) without
  /// replacement, in random order.  Requires k <= n.
  std::vector<std::size_t> sample_without_replacement(std::size_t n, std::size_t k);

  /// Shuffle a vector of indices in place.
  void shuffle(std::vector<std::size_t>& v);

 private:
  std::mt19937_64 engine_;
  std::uint64_t fork_counter_ = 0;
  std::uint64_t seed_;
};

}  // namespace tafloc
