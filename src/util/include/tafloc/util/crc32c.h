// CRC32C (Castagnoli) -- the checksum of the durability layer.
//
// Every persisted record (snapshot frames, WAL entries) carries a
// CRC32C over its payload so torn writes, truncation and bit flips are
// *detected* on read instead of silently corrupting a recovered zone.
// CRC32C is chosen over plain CRC32 for its better error-detection
// properties on short records and because it matches what storage
// systems (ext4 metadata, iSCSI, LevelDB) use -- a hardware SSE4.2 path
// can be dropped in later without changing any file format.
//
// This implementation is the portable slice-by-1 table variant: ~1
// byte/cycle, far faster than the record sizes here need.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace tafloc {

/// CRC32C of `data`, continuing from `seed` (pass a previous crc32c()
/// result to checksum split buffers as one stream; 0 starts fresh).
std::uint32_t crc32c(std::span<const std::uint8_t> data, std::uint32_t seed = 0) noexcept;

/// Convenience over raw memory.
std::uint32_t crc32c(const void* data, std::size_t size, std::uint32_t seed = 0) noexcept;

}  // namespace tafloc
