// Contract-checking helpers (Core Guidelines I.5 / I.7).
//
// TAFLOC_CHECK_ARG   -- validate a caller-supplied argument; throws
//                       std::invalid_argument on violation.
// TAFLOC_CHECK_STATE -- validate an internal invariant or object state;
//                       throws std::logic_error on violation.
// TAFLOC_CHECK_BOUNDS-- validate an index against a size; throws
//                       std::out_of_range on violation.
//
// All checks are always on: the library is used for scientific
// reproduction where silent out-of-contract behaviour would invalidate
// results, and the checked paths are never in inner numeric loops.
#pragma once

#include <stdexcept>
#include <string>

namespace tafloc {

namespace detail {

[[noreturn]] inline void throw_invalid_argument(const char* expr, const std::string& msg) {
  throw std::invalid_argument(std::string("argument check failed: ") + expr +
                              (msg.empty() ? "" : (": " + msg)));
}

[[noreturn]] inline void throw_logic_error(const char* expr, const std::string& msg) {
  throw std::logic_error(std::string("state check failed: ") + expr +
                         (msg.empty() ? "" : (": " + msg)));
}

[[noreturn]] inline void throw_out_of_range(const std::string& what, std::size_t index,
                                            std::size_t size) {
  throw std::out_of_range(what + ": index " + std::to_string(index) + " >= size " +
                          std::to_string(size));
}

}  // namespace detail

}  // namespace tafloc

#define TAFLOC_CHECK_ARG(expr, msg)                            \
  do {                                                         \
    if (!(expr)) ::tafloc::detail::throw_invalid_argument(#expr, (msg)); \
  } while (false)

#define TAFLOC_CHECK_STATE(expr, msg)                          \
  do {                                                         \
    if (!(expr)) ::tafloc::detail::throw_logic_error(#expr, (msg)); \
  } while (false)

#define TAFLOC_CHECK_BOUNDS(index, size, what)                 \
  do {                                                         \
    if ((index) >= (size))                                     \
      ::tafloc::detail::throw_out_of_range((what), (index), (size)); \
  } while (false)
