// Empirical cumulative distribution function over a finite sample.
//
// Used everywhere the paper reports a CDF (Fig. 3 reconstruction error,
// Fig. 5 localization error): collect raw per-trial values, then query
// F(x), percentiles, and fixed-grid series for table / CSV output.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace tafloc {

/// EmpiricalCdf -- immutable once built; all queries are O(log n).
class EmpiricalCdf {
 public:
  /// Build from a (not necessarily sorted) non-empty sample.
  explicit EmpiricalCdf(std::span<const double> samples);

  /// Number of samples.
  std::size_t size() const noexcept { return sorted_.size(); }

  /// F(x) = fraction of samples <= x, in [0, 1].
  double at(double x) const noexcept;

  /// Inverse CDF: smallest sample value v with F(v) >= q, q in (0, 1].
  /// q = 0 returns the minimum sample.
  double quantile(double q) const;

  /// Median, i.e. quantile(0.5).
  double median() const { return quantile(0.5); }

  /// Mean of the underlying sample.
  double mean() const noexcept { return mean_; }

  /// Smallest / largest sample.
  double min() const noexcept { return sorted_.front(); }
  double max() const noexcept { return sorted_.back(); }

  /// Evaluate F on `points` equally spaced x-values covering [lo, hi].
  /// Returns pairs (x, F(x)) suitable for plotting a CDF curve.
  std::vector<std::pair<double, double>> curve(double lo, double hi, std::size_t points) const;

  /// The sorted sample (ascending); useful for exact-step CDF export.
  const std::vector<double>& sorted_samples() const noexcept { return sorted_; }

 private:
  std::vector<double> sorted_;
  double mean_;
};

}  // namespace tafloc
