// Streaming statistics and percentile helpers.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace tafloc {

/// RunningStats -- Welford-style single-pass mean/variance with min/max.
/// Numerically stable; O(1) memory.
class RunningStats {
 public:
  /// Add one observation.
  void add(double x) noexcept;

  /// Merge another accumulator into this one (parallel-reduction safe).
  void merge(const RunningStats& other) noexcept;

  /// Number of observations added so far.
  std::size_t count() const noexcept { return count_; }
  /// Mean of the observations; 0 when empty.
  double mean() const noexcept { return mean_; }
  /// Unbiased sample variance; 0 when fewer than two observations.
  double variance() const noexcept;
  /// Square root of variance().
  double stddev() const noexcept;
  /// Smallest observation; +inf when empty.
  double min() const noexcept { return min_; }
  /// Largest observation; -inf when empty.
  double max() const noexcept { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_;
  double max_;

 public:
  RunningStats() noexcept;
};

/// Mean of a sample.  Requires a non-empty span.
double mean(std::span<const double> xs);

/// Unbiased sample standard deviation.  Requires at least two elements.
double sample_stddev(std::span<const double> xs);

/// p-th percentile (p in [0,100]) using linear interpolation between
/// order statistics.  Requires a non-empty span; does not need xs sorted.
double percentile(std::span<const double> xs, double p);

/// Median (50th percentile).
double median(std::span<const double> xs);

/// Root-mean-square of a sample.  Requires a non-empty span.
double rms(std::span<const double> xs);

}  // namespace tafloc
