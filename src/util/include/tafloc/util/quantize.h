// The ONE rounding convention shared by every quantizer in the
// library: ties round away from zero (std::round), never to even.
//
// Two quantizers exist -- NoiseModel::quantize (the simulated radio's
// integer-dBm reporting) and the fingerprint database's int8 scan tier
// (fingerprint/quantized.h) -- and they meet: simulated readings pass
// through the radio quantizer, land in the fingerprint matrix, and are
// re-quantized into the scan tier.  If the two disagreed on ties
// (ties-away vs ties-even), a reading sitting exactly between two
// levels would round differently on the two passes and the tier would
// carry a permanent one-LSB offset against the matrix it mirrors.
// With both quantizers on round_ties_away, a value already on a level
// grid re-quantizes to exactly that level (round(k) == k), so
// integer-dBm data round-trips through the int8 tier bit-exactly
// whenever the tier's scale is 1 dB and its offset is on the integer
// grid -- asserted in test_fingerprint_quantized.
#pragma once

#include <cmath>

namespace tafloc {

/// std::round semantics, named for what matters here: 0.5 -> 1,
/// -0.5 -> -1, 2.5 -> 3 (ties-to-even would give 0, 0, 2).
inline double round_ties_away(double v) noexcept { return std::round(v); }

/// Snap `v` to the nearest multiple of `step` (ties away from zero).
/// step == 0 disables quantization (returns v unchanged).
inline double quantize_to_step(double v, double step) noexcept {
  if (step == 0.0) return v;
  return round_ties_away(v / step) * step;
}

}  // namespace tafloc
