// Minimal leveled logger.
//
// Libraries log through this to keep dependencies at zero; the sink is
// stderr.  The level is process-wide but explicitly set by the binary's
// main() (no hidden environment coupling), defaulting to Info.
#pragma once

#include <sstream>
#include <string>

namespace tafloc {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Set the minimum level that is emitted.
void set_log_level(LogLevel level) noexcept;

/// Currently configured minimum level.
LogLevel log_level() noexcept;

/// Emit one message at `level` (no-op when below the configured level).
/// The prefix carries both wall-clock UTC (ISO-8601, for correlating
/// runs with exported snapshots) and the monotonic offset since the
/// first log call (drift-free, lines up with telemetry spans):
///   [tafloc INFO  2026-08-09T12:34:56.789Z +1.234s] message
void log_message(LogLevel level, const std::string& message);

namespace detail {

/// Stream-style helper: collects one message and emits it on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail

}  // namespace tafloc

#define TAFLOC_LOG_DEBUG ::tafloc::detail::LogLine(::tafloc::LogLevel::Debug)
#define TAFLOC_LOG_INFO ::tafloc::detail::LogLine(::tafloc::LogLevel::Info)
#define TAFLOC_LOG_WARN ::tafloc::detail::LogLine(::tafloc::LogLevel::Warn)
#define TAFLOC_LOG_ERROR ::tafloc::detail::LogLine(::tafloc::LogLevel::Error)
