// Survey time-cost model (paper section 3, "Time cost to update the
// fingerprint"): each surveyed grid costs samples_per_grid *
// sample_period seconds of human labour, so
//
//   full survey of an L x L area:  100 * (L / 0.6)^2 / 3600 hours
//   TafLoc reference survey:       100 * n_ref       / 3600 hours
//
// (2.78 h vs 0.28 h for the 6 m x 6 m example in the paper).
#pragma once

#include <cstddef>

namespace tafloc {

/// Cost parameters; the defaults are the paper's protocol.
struct SurveyCostModel {
  std::size_t samples_per_grid = 100;
  double sample_period_s = 1.0;
  double walk_overhead_s = 0.0;  ///< optional per-grid repositioning time.

  /// Hours to survey `num_grids` grids.
  double hours_for_grids(std::size_t num_grids) const;

  /// Hours for a full survey of a square area of the given edge length
  /// and cell size (number of grids = (edge / cell)^2).
  double full_survey_hours(double edge_m, double cell_m = 0.6) const;

  /// Hours for TafLoc's reference-only update.
  double reference_survey_hours(std::size_t num_reference_locations) const;
};

}  // namespace tafloc
