// FaultInjector -- a seeded schedule of link faults for robustness
// drills.  Models the ways a real low-cost radio deployment breaks:
//
//   - dead links:  a fixed random subset reports NaN on every query
//                  (node powered off, antenna gone);
//   - NaN bursts:  a healthy link starts emitting NaN for a stretch of
//                  queries, then recovers (driver reboot, interference);
//   - stuck links: a fixed random subset freezes at its first observed
//                  reading and repeats it verbatim (firmware hang --
//                  the symptom LinkHealth's exact-repeat detector
//                  exists for);
//   - RSS spikes:  occasional +-spike_db outliers on otherwise healthy
//                  links (burst interference), finite so they must be
//                  absorbed, not masked.
//
// Everything is driven by one seed, so a drill is exactly reproducible:
// same seed + same query sequence = same corrupted readings.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "tafloc/util/rng.h"

namespace tafloc {

struct FaultConfig {
  double dead_fraction = 0.0;        ///< fraction of links dead outright (NaN forever).
  double nan_burst_rate = 0.0;       ///< per-query chance a healthy link starts a NaN burst.
  std::size_t nan_burst_length = 5;  ///< queries a burst lasts once started.
  double stuck_fraction = 0.0;       ///< fraction of links frozen at their first reading.
  double spike_rate = 0.0;           ///< per-link per-query chance of an RSS spike.
  double spike_db = 20.0;            ///< spike magnitude in dB (sign is random).
};

class FaultInjector {
 public:
  /// Draws the dead and stuck subsets once, from `seed`.
  FaultInjector(std::size_t num_links, const FaultConfig& config, std::uint64_t seed);

  /// Corrupt one per-link reading in place according to the schedule.
  /// `rss` must have one entry per link.
  void apply(std::span<double> rss);

  std::size_t num_links() const noexcept { return is_dead_.size(); }
  const FaultConfig& config() const noexcept { return config_; }

  /// The fixed fault subsets (ascending indices).
  const std::vector<std::size_t>& dead_links() const noexcept { return dead_; }
  const std::vector<std::size_t>& stuck_links() const noexcept { return stuck_; }

  /// Totals across every apply() call so far.
  std::size_t queries_seen() const noexcept { return queries_; }
  std::size_t corrupted_entries() const noexcept { return corrupted_; }

 private:
  FaultConfig config_;
  Rng rng_;
  std::vector<std::uint8_t> is_dead_;
  std::vector<std::uint8_t> is_stuck_;
  std::vector<std::size_t> dead_;
  std::vector<std::size_t> stuck_;
  std::vector<double> stuck_value_;
  std::vector<std::uint8_t> has_stuck_value_;
  std::vector<std::size_t> burst_remaining_;
  std::size_t queries_ = 0;
  std::size_t corrupted_ = 0;
};

}  // namespace tafloc
