// FingerprintCollector -- simulates the survey campaigns and real-time
// measurements the paper performs on its testbed.
//
// A *full survey* walks the target through every grid cell and records
// the mean of `samples_per_grid` RSS samples per (link, grid) pair --
// one column of the fingerprint matrix per grid.  A *reference survey*
// does the same for a chosen subset of grids only.  An *ambient scan*
// records each link with no target present (cheap: no human walking,
// used to detect distorted entries).  A *real-time observation* is a
// short burst with the target at an arbitrary position.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "tafloc/linalg/matrix.h"
#include "tafloc/rf/channel.h"
#include "tafloc/sim/deployment.h"
#include "tafloc/util/rng.h"

namespace tafloc {

/// Survey parameters (paper: 100 samples at one per second per grid).
struct SurveyConfig {
  std::size_t samples_per_grid = 100;
  std::size_t samples_per_realtime = 5;
  double sample_period_s = 1.0;
  /// Per-(link, placement) repeatability offset: a person never stands
  /// in a grid exactly the same way twice, so every target placement
  /// shifts each link's mean RSS by ~N(0, sigma).  This is the dominant
  /// part of the paper's "noise is usually within 1~4 dBm" remark and
  /// it does NOT average out with more samples of the same placement.
  double repeatability_stddev_db = 1.0;
};

class FingerprintCollector {
 public:
  /// The channel's links must match the deployment's links.
  FingerprintCollector(const Deployment& deployment, const Channel& channel,
                       const SurveyConfig& config = {});

  /// Full fingerprint survey at elapsed time t_days: M x N matrix whose
  /// column j is the mean RSS per link with the target at grid j's centre.
  Matrix survey_all(double t_days, Rng& rng) const;

  /// Survey only `grids`: M x |grids| matrix in the given grid order.
  Matrix survey_grids(std::span<const std::size_t> grids, double t_days, Rng& rng) const;

  /// Ambient (target-free) per-link mean RSS at t_days.
  Vector ambient_scan(double t_days, Rng& rng) const;

  /// Noise-free ground-truth fingerprint matrix at t_days (what an
  /// infinite-sample survey would converge to); used to score
  /// reconstruction error.
  Matrix ground_truth(double t_days) const;

  /// Real-time measurement vector Y (M x 1) for a target at `target`.
  Vector observe(Point2 target, double t_days, Rng& rng) const;

  /// Real-time measurement with several device-free targets present
  /// (for the multi-target RTI extension; may be empty = ambient).
  Vector observe_multi(std::span<const Point2> targets, double t_days, Rng& rng) const;

  /// Ambient observation (no target), same burst length as observe().
  Vector observe_ambient(double t_days, Rng& rng) const;

  const Deployment& deployment() const noexcept { return deployment_; }
  const Channel& channel() const noexcept { return channel_; }
  const SurveyConfig& config() const noexcept { return config_; }

 private:
  const Deployment& deployment_;
  const Channel& channel_;
  SurveyConfig config_;
};

}  // namespace tafloc
