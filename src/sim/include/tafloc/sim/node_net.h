// NodeNetwork -- simulate the edge side of the ingest path: a fleet of
// cheap sensor nodes that each own a slice of the deployment's links,
// batch their readings, and flush them towards taflocd.
//
// Links are partitioned round-robin across the nodes (link i belongs
// to node i % num_nodes), every node keeps its own monotonic sequence
// counter, and one scan round shares a single t_days timestamp -- the
// assembler's merge key.  The perturbation helper reproduces real
// transport behaviour for torture tests and the load harness:
// duplicated batches (retransmit on any doubt) and shuffled delivery
// order (multi-hop reordering).  Perturbation only *repeats and
// reorders* batches; it never invents sequences, so a perturbed stream
// must produce bit-identical localization results to clean delivery.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "tafloc/ingest/batch.h"
#include "tafloc/util/rng.h"

namespace tafloc {

class NodeNetwork {
 public:
  /// Throws std::invalid_argument when num_links or num_nodes is zero
  /// (more nodes than links is fine -- the surplus nodes stay silent).
  NodeNetwork(std::size_t num_links, std::size_t num_nodes);

  std::size_t num_links() const noexcept { return num_links_; }
  std::size_t num_nodes() const noexcept { return num_nodes_; }

  /// Split one per-link scan `y` (size num_links) into per-node batches
  /// stamped t_days, advancing every contributing node's sequence
  /// counter.  Nodes with no links emit no batch.
  std::vector<ingest::NodeBatch> emit_round(std::span<const double> y, double t_days);

  /// Transport torture: duplicate each batch with probability
  /// `dup_fraction` (appended verbatim -- same sequences, the dedup
  /// target), then shuffle delivery order when `shuffle` is set.
  static void perturb(std::vector<ingest::NodeBatch>& batches, double dup_fraction,
                      bool shuffle, Rng& rng);

 private:
  std::size_t num_links_;
  std::size_t num_nodes_;
  std::vector<std::uint64_t> next_sequence_;  ///< per node.
};

}  // namespace tafloc
