// Scenario -- a reproducible bundle of deployment + channel, the unit
// every example and bench starts from.
#pragma once

#include <cstdint>
#include <memory>

#include "tafloc/rf/channel.h"
#include "tafloc/sim/collector.h"
#include "tafloc/sim/deployment.h"

namespace tafloc {

/// Owns a deployment and the channel simulating its radio environment.
/// (The Channel and FingerprintCollector reference the Deployment, so
/// the three are bundled to keep lifetimes trivially correct.)
class Scenario {
 public:
  /// Build from any deployment with explicit channel config and seed.
  Scenario(Deployment deployment, const ChannelConfig& config, std::uint64_t seed,
           const SurveyConfig& survey = {});

  /// The paper's Fig. 2 room with default channel parameters.
  static Scenario paper_room(std::uint64_t seed);

  /// Square area of the given edge (Fig. 4 sweep member).
  static Scenario square_area(double edge_m, std::uint64_t seed);

  const Deployment& deployment() const noexcept { return *deployment_; }
  const Channel& channel() const noexcept { return *channel_; }
  const FingerprintCollector& collector() const noexcept { return *collector_; }

 private:
  std::unique_ptr<Deployment> deployment_;
  std::unique_ptr<Channel> channel_;
  std::unique_ptr<FingerprintCollector> collector_;
};

}  // namespace tafloc
