// Target motion traces for evaluation: random held-out positions,
// grid-centre sequences, and a waypoint walk for the tracking examples.
#pragma once

#include <cstddef>
#include <vector>

#include "tafloc/rf/geometry.h"
#include "tafloc/sim/grid.h"
#include "tafloc/util/rng.h"

namespace tafloc {

/// `count` positions uniform over the grid's area (continuous -- i.e.
/// generally NOT at grid centres, which is what makes localization
/// "fine-grained" rather than classification).
std::vector<Point2> random_positions(const GridMap& grid, std::size_t count, Rng& rng);

/// `count` distinct grid indices chosen uniformly (count <= num_cells).
std::vector<std::size_t> random_grid_sequence(const GridMap& grid, std::size_t count, Rng& rng);

/// Random waypoint walk: straight segments between uniformly drawn
/// waypoints at `speed_mps`, sampled every `dt_s`; returns `count`
/// positions starting from a random point.
std::vector<Point2> waypoint_walk(const GridMap& grid, std::size_t count, double speed_mps,
                                  double dt_s, Rng& rng);

}  // namespace tafloc
