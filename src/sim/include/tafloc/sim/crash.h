// CrashInjector -- seeded crash/corruption scenarios for durability
// drills.  Two failure families, matching what actually kills zone
// state in the field:
//
//   - process death: the process is killed at a storage kill point
//     (mid-snapshot-commit, mid-WAL-append, ...).  The injector picks
//     a kill point and a hit count from one seed and arms the
//     storage-layer hook; the process then dies with
//     storage::kKillExitCode the moment the durability path crosses
//     that point for the chosen time.
//
//   - file corruption: bytes already on disk go bad (torn sector,
//     bit rot, zero-page on a dying SSD).  Static helpers mutate a
//     file in place -- truncate to a prefix, flip one bit, zero a
//     page -- so tests can prove the checksums catch every variant.
//
// Everything derives from one seed: same seed = same kill point, same
// hit count, same corrupted byte.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "tafloc/storage/kill_point.h"

namespace tafloc {

class CrashInjector {
 public:
  /// Draws a kill point and hit count (1..max_hits per point kind)
  /// from `seed`.  Nothing is armed until arm() runs.
  explicit CrashInjector(std::uint64_t seed, std::size_t max_hits = 3);

  /// The scenario this seed drew.
  storage::KillPoint kill_point() const noexcept { return point_; }
  std::size_t hits() const noexcept { return hits_; }

  /// Arm the storage-layer kill hook: the process _Exit()s with
  /// storage::kKillExitCode when the drawn point fires for the
  /// hits()-th time.
  void arm() const;

  /// Disarm any armed kill point (storage::disarm_kill_point).
  static void disarm();

  // -- on-disk corruption (return false when the file is missing or
  //    too short to corrupt as asked; nothing is modified then) --

  /// Truncate `path` to `keep_bytes` (torn write / lost tail).
  static bool truncate_file(const std::string& path, std::size_t keep_bytes);
  /// Flip one bit of the byte at `offset` (bit rot).
  static bool flip_bit(const std::string& path, std::size_t offset);
  /// Overwrite `length` bytes at `offset` with zeros (zero-page).
  static bool zero_range(const std::string& path, std::size_t offset, std::size_t length);

 private:
  storage::KillPoint point_;
  std::size_t hits_;
};

}  // namespace tafloc
