// Deployment -- the physical layout: monitored area grid + radio links.
//
// The paper deploys "M links on the two sides of the monitoring area"
// (Fig. 2: WiFi transceivers along the walls of a 9 m x 12 m room, 10
// links covering 96 grids of 0.6 m).  `two_sided` reproduces that
// family: transceiver pairs on two opposite walls with parallel links
// crossing the whole area; `paper_room` is the exact Fig. 2 instance.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "tafloc/rf/geometry.h"
#include "tafloc/sim/grid.h"

namespace tafloc {

class Deployment {
 public:
  /// Assemble from a grid map and explicit links (validated non-empty,
  /// positive-length).
  Deployment(GridMap grid, std::vector<Segment> links);

  /// Two-sided layout: `num_links` horizontal links spanning the area
  /// from the west wall (x = -margin) to the east wall (x = width +
  /// margin), evenly spaced in y.  This covers every grid row with
  /// nearby links, giving adjacent links the "similarity" property the
  /// paper exploits.  Note: with ONLY parallel links the along-link
  /// coordinate is weakly observable; use `perimeter` for localization.
  static Deployment two_sided(double width_m, double height_m, double cell_m,
                              std::size_t num_links, double margin_m = 0.3);

  /// Perimeter layout (the Fig. 2 room: transceivers along the walls):
  /// ceil(num_links / 2) horizontal links (west-east, evenly spaced in
  /// y, listed first, south to north) followed by floor(num_links / 2)
  /// vertical links (south-north, evenly spaced in x, west to east).
  /// Crossing orientations make both coordinates observable.
  static Deployment perimeter(double width_m, double height_m, double cell_m,
                              std::size_t num_links, double margin_m = 0.3);

  /// The Fig. 2 experiment: 10 links over 96 grids of 0.6 m (12 x 8
  /// cells = 7.2 m x 4.8 m monitored region inside the 9 m x 12 m room).
  static Deployment paper_room();

  /// Square layout for the Fig. 4 area sweep: edge_m x edge_m area,
  /// 0.6 m cells, one link per 0.6 m of edge (10 links at 6 m -- the
  /// paper's density).
  static Deployment square_area(double edge_m);

  /// Frequency diversity: each physical link measured on `copies` WiFi
  /// channels (the AR9331 can hop).  Realized as `copies` virtual links
  /// per physical link (channel fading differs per frequency, so each
  /// copy gets its own multipath draw from the Channel's seed).  Link
  /// ordering: all copies of link 0, then all copies of link 1, ...
  static Deployment with_diversity(const Deployment& base, std::size_t copies);

  const GridMap& grid() const noexcept { return grid_; }
  const std::vector<Segment>& links() const noexcept { return links_; }
  std::size_t num_links() const noexcept { return links_.size(); }
  std::size_t num_grids() const noexcept { return grid_.num_cells(); }

  /// Index (into links()) of the link whose direct path passes closest
  /// to point p.
  std::size_t nearest_link(Point2 p) const;

  /// Pairs of spatially adjacent, (near-)parallel links -- the "adjacent
  /// links" of the paper's similarity property.  Each link is paired
  /// with its nearest parallel neighbour; pairs are deduplicated and
  /// returned with the smaller index first.
  std::vector<std::pair<std::size_t, std::size_t>> adjacent_link_pairs() const;

  /// True if link i runs predominantly west-east (|dx| >= |dy|).
  bool link_is_horizontal(std::size_t i) const;

 private:
  GridMap grid_;
  std::vector<Segment> links_;
};

}  // namespace tafloc
