// GridMap -- the discretization of the monitoring area into N location
// grids (paper: 0.6 m x 0.6 m cells, 96 grids in the Fig. 2 room).
//
// Grid cells are indexed row-major: j = iy * nx + ix, with ix advancing
// east (+x) and iy advancing north (+y).  Columns of the fingerprint
// matrix follow this ordering, so consecutive indices within a row of
// cells are spatial neighbours -- the ordering the paper's continuity
// operator G relies on.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "tafloc/rf/geometry.h"

namespace tafloc {

class GridMap {
 public:
  /// Area of width_m x height_m metres split into square cells of
  /// cell_m.  Both extents must be (near-)integer multiples of cell_m.
  GridMap(double width_m, double height_m, double cell_m);

  double width() const noexcept { return width_; }
  double height() const noexcept { return height_; }
  double cell_size() const noexcept { return cell_; }

  /// Cells along x / along y / total.
  std::size_t nx() const noexcept { return nx_; }
  std::size_t ny() const noexcept { return ny_; }
  std::size_t num_cells() const noexcept { return nx_ * ny_; }

  /// Centre point of cell j.
  Point2 center(std::size_t j) const;

  /// Row-major index from integer cell coordinates.
  std::size_t index(std::size_t ix, std::size_t iy) const;

  /// Integer cell coordinates of index j.
  std::size_t ix_of(std::size_t j) const;
  std::size_t iy_of(std::size_t j) const;

  /// Cell containing point p, or nullopt when p is outside the area.
  std::optional<std::size_t> cell_of(Point2 p) const noexcept;

  /// 4-neighbourhood (N/S/E/W) of cell j, only in-bounds neighbours.
  std::vector<std::size_t> neighbors4(std::size_t j) const;

  /// True if cells a and b share an edge.
  bool adjacent(std::size_t a, std::size_t b) const;

  /// Centres of all cells, in index order.
  std::vector<Point2> all_centers() const;

 private:
  double width_;
  double height_;
  double cell_;
  std::size_t nx_;
  std::size_t ny_;
};

}  // namespace tafloc
