#include "tafloc/sim/grid.h"

#include <cmath>

#include "tafloc/util/check.h"

namespace tafloc {

namespace {

std::size_t cells_along(double extent_m, double cell_m, const char* axis) {
  const double raw = extent_m / cell_m;
  const double rounded = std::round(raw);
  TAFLOC_CHECK_ARG(rounded >= 1.0 && std::abs(raw - rounded) < 1e-9,
                   std::string("area extent along ") + axis +
                       " must be a positive integer multiple of the cell size");
  return static_cast<std::size_t>(rounded);
}

}  // namespace

GridMap::GridMap(double width_m, double height_m, double cell_m)
    : width_(width_m), height_(height_m), cell_(cell_m) {
  TAFLOC_CHECK_ARG(cell_m > 0.0, "cell size must be positive");
  TAFLOC_CHECK_ARG(width_m > 0.0 && height_m > 0.0, "area extents must be positive");
  nx_ = cells_along(width_m, cell_m, "x");
  ny_ = cells_along(height_m, cell_m, "y");
}

Point2 GridMap::center(std::size_t j) const {
  TAFLOC_CHECK_BOUNDS(j, num_cells(), "grid cell index");
  const std::size_t ix = j % nx_;
  const std::size_t iy = j / nx_;
  return {(static_cast<double>(ix) + 0.5) * cell_, (static_cast<double>(iy) + 0.5) * cell_};
}

std::size_t GridMap::index(std::size_t ix, std::size_t iy) const {
  TAFLOC_CHECK_BOUNDS(ix, nx_, "grid ix");
  TAFLOC_CHECK_BOUNDS(iy, ny_, "grid iy");
  return iy * nx_ + ix;
}

std::size_t GridMap::ix_of(std::size_t j) const {
  TAFLOC_CHECK_BOUNDS(j, num_cells(), "grid cell index");
  return j % nx_;
}

std::size_t GridMap::iy_of(std::size_t j) const {
  TAFLOC_CHECK_BOUNDS(j, num_cells(), "grid cell index");
  return j / nx_;
}

std::optional<std::size_t> GridMap::cell_of(Point2 p) const noexcept {
  if (p.x < 0.0 || p.y < 0.0 || p.x >= width_ || p.y >= height_) return std::nullopt;
  const auto ix = static_cast<std::size_t>(p.x / cell_);
  const auto iy = static_cast<std::size_t>(p.y / cell_);
  if (ix >= nx_ || iy >= ny_) return std::nullopt;  // guard the x == width edge
  return iy * nx_ + ix;
}

std::vector<std::size_t> GridMap::neighbors4(std::size_t j) const {
  TAFLOC_CHECK_BOUNDS(j, num_cells(), "grid cell index");
  const std::size_t ix = j % nx_;
  const std::size_t iy = j / nx_;
  std::vector<std::size_t> out;
  out.reserve(4);
  if (ix > 0) out.push_back(j - 1);
  if (ix + 1 < nx_) out.push_back(j + 1);
  if (iy > 0) out.push_back(j - nx_);
  if (iy + 1 < ny_) out.push_back(j + nx_);
  return out;
}

bool GridMap::adjacent(std::size_t a, std::size_t b) const {
  TAFLOC_CHECK_BOUNDS(a, num_cells(), "grid cell index");
  TAFLOC_CHECK_BOUNDS(b, num_cells(), "grid cell index");
  const auto axi = a % nx_, ayi = a / nx_;
  const auto bxi = b % nx_, byi = b / nx_;
  const std::size_t dx = axi > bxi ? axi - bxi : bxi - axi;
  const std::size_t dy = ayi > byi ? ayi - byi : byi - ayi;
  return dx + dy == 1;
}

std::vector<Point2> GridMap::all_centers() const {
  std::vector<Point2> out;
  out.reserve(num_cells());
  for (std::size_t j = 0; j < num_cells(); ++j) out.push_back(center(j));
  return out;
}

}  // namespace tafloc
