#include "tafloc/sim/survey_cost.h"

#include <cmath>

#include "tafloc/util/check.h"

namespace tafloc {

double SurveyCostModel::hours_for_grids(std::size_t num_grids) const {
  TAFLOC_CHECK_ARG(sample_period_s > 0.0, "sample period must be positive");
  TAFLOC_CHECK_ARG(walk_overhead_s >= 0.0, "walk overhead must be non-negative");
  const double per_grid_s =
      static_cast<double>(samples_per_grid) * sample_period_s + walk_overhead_s;
  return static_cast<double>(num_grids) * per_grid_s / 3600.0;
}

double SurveyCostModel::full_survey_hours(double edge_m, double cell_m) const {
  TAFLOC_CHECK_ARG(edge_m > 0.0 && cell_m > 0.0, "edge and cell size must be positive");
  const double cells_per_side = std::round(edge_m / cell_m);
  TAFLOC_CHECK_ARG(cells_per_side >= 1.0, "area must contain at least one cell");
  return hours_for_grids(static_cast<std::size_t>(cells_per_side * cells_per_side));
}

double SurveyCostModel::reference_survey_hours(std::size_t num_reference_locations) const {
  return hours_for_grids(num_reference_locations);
}

}  // namespace tafloc
