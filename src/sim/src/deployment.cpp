#include "tafloc/sim/deployment.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "tafloc/util/check.h"

namespace tafloc {

Deployment::Deployment(GridMap grid, std::vector<Segment> links)
    : grid_(std::move(grid)), links_(std::move(links)) {
  TAFLOC_CHECK_ARG(!links_.empty(), "a deployment needs at least one link");
  for (const Segment& l : links_)
    TAFLOC_CHECK_ARG(l.length() > 0.0, "links must have positive length");
}

Deployment Deployment::two_sided(double width_m, double height_m, double cell_m,
                                 std::size_t num_links, double margin_m) {
  TAFLOC_CHECK_ARG(num_links >= 2, "a two-sided deployment needs at least two links");
  TAFLOC_CHECK_ARG(margin_m >= 0.0, "margin must be non-negative");
  GridMap grid(width_m, height_m, cell_m);
  std::vector<Segment> links;
  links.reserve(num_links);
  // Links evenly spaced in y across (0, height): link k sits at
  // y = (k + 0.5) * height / num_links, so every band of grid rows has
  // a link through or next to it.
  for (std::size_t k = 0; k < num_links; ++k) {
    const double y =
        (static_cast<double>(k) + 0.5) * height_m / static_cast<double>(num_links);
    links.push_back(Segment{{-margin_m, y}, {width_m + margin_m, y}});
  }
  return Deployment(std::move(grid), std::move(links));
}

Deployment Deployment::perimeter(double width_m, double height_m, double cell_m,
                                 std::size_t num_links, double margin_m) {
  TAFLOC_CHECK_ARG(num_links >= 2, "a perimeter deployment needs at least two links");
  TAFLOC_CHECK_ARG(margin_m >= 0.0, "margin must be non-negative");
  GridMap grid(width_m, height_m, cell_m);
  const std::size_t nh = (num_links + 1) / 2;
  const std::size_t nv = num_links - nh;
  std::vector<Segment> links;
  links.reserve(num_links);
  // Links are slightly slanted in alternating directions (transceivers
  // on opposite walls are rarely at matching positions).  The crossing
  // angles break the mirror symmetries that would otherwise make
  // distinct locations produce near-identical fingerprints.
  const double h_slant = height_m / 8.0;
  const double v_slant = width_m / 8.0;
  auto clamp = [](double v, double lo, double hi) { return std::min(std::max(v, lo), hi); };
  for (std::size_t k = 0; k < nh; ++k) {
    const double y = (static_cast<double>(k) + 0.5) * height_m / static_cast<double>(nh);
    const double slant = (k % 2 == 0 ? 1.0 : -1.0) * h_slant;
    links.push_back(Segment{{-margin_m, clamp(y - slant / 2.0, 0.0, height_m)},
                            {width_m + margin_m, clamp(y + slant / 2.0, 0.0, height_m)}});
  }
  for (std::size_t k = 0; k < nv; ++k) {
    const double x = (static_cast<double>(k) + 0.5) * width_m / static_cast<double>(nv);
    const double slant = (k % 2 == 0 ? 1.0 : -1.0) * v_slant;
    links.push_back(Segment{{clamp(x - slant / 2.0, 0.0, width_m), -margin_m},
                            {clamp(x + slant / 2.0, 0.0, width_m), height_m + margin_m}});
  }
  return Deployment(std::move(grid), std::move(links));
}

Deployment Deployment::paper_room() {
  // 96 grids of 0.6 m arranged 12 x 8; 10 links from wall transceivers.
  return perimeter(7.2, 4.8, 0.6, 10);
}

Deployment Deployment::square_area(double edge_m) {
  TAFLOC_CHECK_ARG(edge_m >= 1.2, "square area edge must be at least two cells");
  const double cell = 0.6;
  const auto num_links = static_cast<std::size_t>(std::round(edge_m / cell));
  return perimeter(edge_m, edge_m, cell, std::max<std::size_t>(num_links, 2));
}

Deployment Deployment::with_diversity(const Deployment& base, std::size_t copies) {
  TAFLOC_CHECK_ARG(copies >= 1, "diversity needs at least one copy");
  std::vector<Segment> links;
  links.reserve(base.num_links() * copies);
  for (const Segment& l : base.links()) {
    for (std::size_t c = 0; c < copies; ++c) links.push_back(l);
  }
  return Deployment(base.grid(), std::move(links));
}

bool Deployment::link_is_horizontal(std::size_t i) const {
  TAFLOC_CHECK_BOUNDS(i, links_.size(), "link index");
  const Point2 d = links_[i].b - links_[i].a;
  return std::abs(d.x) >= std::abs(d.y);
}

std::vector<std::pair<std::size_t, std::size_t>> Deployment::adjacent_link_pairs() const {
  // Group links by orientation (near-parallel, |cos angle| > 0.95 with
  // the group's representative), sort each group by its perpendicular
  // offset, and pair consecutive links: adjacency in the parallel stack.
  const std::size_t m = links_.size();
  std::vector<Point2> dirs(m);
  std::vector<Point2> mids(m);
  for (std::size_t i = 0; i < m; ++i) {
    Point2 d = links_[i].b - links_[i].a;
    const double len = norm(d);
    dirs[i] = d * (1.0 / len);
    mids[i] = midpoint(links_[i].a, links_[i].b);
  }

  std::vector<std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < m; ++i) {
    bool placed = false;
    for (auto& group : groups) {
      const Point2 rep = dirs[group.front()];
      const double cos_angle = std::abs(rep.x * dirs[i].x + rep.y * dirs[i].y);
      if (cos_angle > 0.95) {
        group.push_back(i);
        placed = true;
        break;
      }
    }
    if (!placed) groups.push_back({i});
  }

  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  for (auto& group : groups) {
    if (group.size() < 2) continue;
    const Point2 rep = dirs[group.front()];
    const Point2 normal{-rep.y, rep.x};
    std::sort(group.begin(), group.end(), [&](std::size_t a, std::size_t b) {
      return mids[a].x * normal.x + mids[a].y * normal.y <
             mids[b].x * normal.x + mids[b].y * normal.y;
    });
    for (std::size_t k = 0; k + 1 < group.size(); ++k) {
      const auto pair = std::minmax(group[k], group[k + 1]);
      pairs.emplace_back(pair.first, pair.second);
    }
  }
  return pairs;
}

std::size_t Deployment::nearest_link(Point2 p) const {
  std::size_t best = 0;
  double best_dist = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < links_.size(); ++i) {
    const double d = point_segment_distance(p, links_[i]);
    if (d < best_dist) {
      best_dist = d;
      best = i;
    }
  }
  return best;
}

}  // namespace tafloc
