#include "tafloc/sim/fault.h"

#include <algorithm>
#include <limits>

#include "tafloc/util/check.h"

namespace tafloc {

namespace {
constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

std::size_t count_from_fraction(std::size_t n, double fraction) {
  return static_cast<std::size_t>(fraction * static_cast<double>(n) + 0.5);
}
}  // namespace

FaultInjector::FaultInjector(std::size_t num_links, const FaultConfig& config,
                             std::uint64_t seed)
    : config_(config),
      rng_(seed),
      is_dead_(num_links, 0),
      is_stuck_(num_links, 0),
      stuck_value_(num_links, 0.0),
      has_stuck_value_(num_links, 0),
      burst_remaining_(num_links, 0) {
  TAFLOC_CHECK_ARG(num_links > 0, "fault injector needs at least one link");
  TAFLOC_CHECK_ARG(config.dead_fraction >= 0.0 && config.dead_fraction <= 1.0,
                   "dead fraction must be in [0, 1]");
  TAFLOC_CHECK_ARG(config.stuck_fraction >= 0.0 && config.stuck_fraction <= 1.0,
                   "stuck fraction must be in [0, 1]");
  TAFLOC_CHECK_ARG(config.nan_burst_rate >= 0.0 && config.nan_burst_rate <= 1.0,
                   "NaN burst rate must be in [0, 1]");
  TAFLOC_CHECK_ARG(config.spike_rate >= 0.0 && config.spike_rate <= 1.0,
                   "spike rate must be in [0, 1]");

  dead_ = rng_.sample_without_replacement(num_links, count_from_fraction(num_links, config.dead_fraction));
  std::sort(dead_.begin(), dead_.end());
  for (std::size_t i : dead_) is_dead_[i] = 1;

  // Stuck links are drawn from the survivors so the two fault classes
  // never overlap (a dead link's NaN hides any stuck behaviour anyway).
  std::vector<std::size_t> alive;
  alive.reserve(num_links - dead_.size());
  for (std::size_t i = 0; i < num_links; ++i)
    if (is_dead_[i] == 0) alive.push_back(i);
  const std::size_t stuck_count =
      std::min(alive.size(), count_from_fraction(num_links, config.stuck_fraction));
  for (std::size_t pick : rng_.sample_without_replacement(alive.size(), stuck_count))
    stuck_.push_back(alive[pick]);
  std::sort(stuck_.begin(), stuck_.end());
  for (std::size_t i : stuck_) is_stuck_[i] = 1;
}

void FaultInjector::apply(std::span<double> rss) {
  TAFLOC_CHECK_ARG(rss.size() == is_dead_.size(), "reading must have one entry per link");
  ++queries_;
  for (std::size_t i = 0; i < rss.size(); ++i) {
    if (is_dead_[i] != 0) {
      rss[i] = kNan;
      ++corrupted_;
      continue;
    }
    if (burst_remaining_[i] > 0) {
      --burst_remaining_[i];
      rss[i] = kNan;
      ++corrupted_;
      continue;
    }
    if (config_.nan_burst_rate > 0.0 && rng_.bernoulli(config_.nan_burst_rate)) {
      // Burst starts on this query and lasts nan_burst_length in total.
      burst_remaining_[i] = config_.nan_burst_length > 0 ? config_.nan_burst_length - 1 : 0;
      rss[i] = kNan;
      ++corrupted_;
      continue;
    }
    if (is_stuck_[i] != 0) {
      if (has_stuck_value_[i] == 0) {
        stuck_value_[i] = rss[i];
        has_stuck_value_[i] = 1;
      }
      rss[i] = stuck_value_[i];
      ++corrupted_;
      continue;
    }
    if (config_.spike_rate > 0.0 && rng_.bernoulli(config_.spike_rate)) {
      rss[i] += rng_.bernoulli(0.5) ? config_.spike_db : -config_.spike_db;
      ++corrupted_;
    }
  }
}

}  // namespace tafloc
