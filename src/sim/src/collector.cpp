#include "tafloc/sim/collector.h"

#include "tafloc/util/check.h"

namespace tafloc {

FingerprintCollector::FingerprintCollector(const Deployment& deployment, const Channel& channel,
                                           const SurveyConfig& config)
    : deployment_(deployment), channel_(channel), config_(config) {
  TAFLOC_CHECK_ARG(channel.num_links() == deployment.num_links(),
                   "channel and deployment must agree on the link count");
  TAFLOC_CHECK_ARG(config.samples_per_grid > 0, "samples per grid must be positive");
  TAFLOC_CHECK_ARG(config.samples_per_realtime > 0, "samples per observation must be positive");
  TAFLOC_CHECK_ARG(config.sample_period_s > 0.0, "sample period must be positive");
  TAFLOC_CHECK_ARG(config.repeatability_stddev_db >= 0.0,
                   "repeatability stddev must be non-negative");
}

Matrix FingerprintCollector::survey_all(double t_days, Rng& rng) const {
  const std::size_t n = deployment_.num_grids();
  std::vector<std::size_t> all(n);
  for (std::size_t j = 0; j < n; ++j) all[j] = j;
  return survey_grids(all, t_days, rng);
}

Matrix FingerprintCollector::survey_grids(std::span<const std::size_t> grids, double t_days,
                                          Rng& rng) const {
  TAFLOC_CHECK_ARG(!grids.empty(), "survey needs at least one grid");
  const std::size_t m = deployment_.num_links();
  Matrix x(m, grids.size());
  for (std::size_t k = 0; k < grids.size(); ++k) {
    TAFLOC_CHECK_BOUNDS(grids[k], deployment_.num_grids(), "survey grid index");
    const Point2 target = deployment_.grid().center(grids[k]);
    for (std::size_t i = 0; i < m; ++i) {
      x(i, k) = channel_.measure_mean(i, target, t_days, config_.samples_per_grid, rng) +
                rng.normal(0.0, config_.repeatability_stddev_db);
    }
  }
  return x;
}

Vector FingerprintCollector::ambient_scan(double t_days, Rng& rng) const {
  const std::size_t m = deployment_.num_links();
  Vector out(m);
  for (std::size_t i = 0; i < m; ++i) {
    out[i] = channel_.measure_mean(i, std::nullopt, t_days, config_.samples_per_grid, rng);
  }
  return out;
}

Matrix FingerprintCollector::ground_truth(double t_days) const {
  const std::size_t m = deployment_.num_links();
  const std::size_t n = deployment_.num_grids();
  Matrix x(m, n);
  for (std::size_t j = 0; j < n; ++j) {
    const Point2 target = deployment_.grid().center(j);
    for (std::size_t i = 0; i < m; ++i) x(i, j) = channel_.expected_rss(i, target, t_days);
  }
  return x;
}

Vector FingerprintCollector::observe(Point2 target, double t_days, Rng& rng) const {
  const std::size_t m = deployment_.num_links();
  Vector y(m);
  for (std::size_t i = 0; i < m; ++i) {
    y[i] = channel_.measure_mean(i, target, t_days, config_.samples_per_realtime, rng) +
           rng.normal(0.0, config_.repeatability_stddev_db);
  }
  return y;
}

Vector FingerprintCollector::observe_multi(std::span<const Point2> targets, double t_days,
                                           Rng& rng) const {
  const std::size_t m = deployment_.num_links();
  Vector y(m, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    double sum = 0.0;
    for (std::size_t s = 0; s < config_.samples_per_realtime; ++s)
      sum += channel_.measure_multi(i, targets, t_days, rng);
    y[i] = sum / static_cast<double>(config_.samples_per_realtime) +
           (targets.empty() ? 0.0 : rng.normal(0.0, config_.repeatability_stddev_db));
  }
  return y;
}

Vector FingerprintCollector::observe_ambient(double t_days, Rng& rng) const {
  const std::size_t m = deployment_.num_links();
  Vector y(m);
  for (std::size_t i = 0; i < m; ++i) {
    y[i] = channel_.measure_mean(i, std::nullopt, t_days, config_.samples_per_realtime, rng);
  }
  return y;
}

}  // namespace tafloc
