#include "tafloc/sim/node_net.h"

#include "tafloc/util/check.h"

namespace tafloc {

NodeNetwork::NodeNetwork(std::size_t num_links, std::size_t num_nodes)
    : num_links_(num_links), num_nodes_(num_nodes), next_sequence_(num_nodes, 1) {
  TAFLOC_CHECK_ARG(num_links > 0, "node network needs at least one link");
  TAFLOC_CHECK_ARG(num_nodes > 0, "node network needs at least one node");
}

std::vector<ingest::NodeBatch> NodeNetwork::emit_round(std::span<const double> y,
                                                       double t_days) {
  TAFLOC_CHECK_ARG(y.size() == num_links_, "scan size must match the link count");
  std::vector<ingest::NodeBatch> batches;
  const std::size_t active = std::min(num_links_, num_nodes_);
  batches.reserve(active);
  for (std::size_t node = 0; node < active; ++node) {
    ingest::NodeBatch batch;
    batch.node_id = static_cast<std::uint32_t>(node);
    for (std::size_t link = node; link < num_links_; link += num_nodes_) {
      ingest::NodeReading r;
      r.link = static_cast<std::uint32_t>(link);
      r.rss = y[link];
      r.sequence = next_sequence_[node]++;
      r.t_days = t_days;
      batch.readings.push_back(r);
    }
    batches.push_back(std::move(batch));
  }
  return batches;
}

void NodeNetwork::perturb(std::vector<ingest::NodeBatch>& batches, double dup_fraction,
                          bool shuffle, Rng& rng) {
  TAFLOC_CHECK_ARG(dup_fraction >= 0.0 && dup_fraction <= 1.0,
                   "dup fraction must be in [0, 1]");
  const std::size_t original = batches.size();
  for (std::size_t i = 0; i < original; ++i) {
    if (rng.bernoulli(dup_fraction)) batches.push_back(batches[i]);
  }
  if (shuffle && batches.size() > 1) {
    // Fisher-Yates over the batches via the index shuffle the Rng
    // already provides, so the draw count stays deterministic.
    std::vector<std::size_t> order(batches.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    rng.shuffle(order);
    std::vector<ingest::NodeBatch> shuffled;
    shuffled.reserve(batches.size());
    for (const std::size_t idx : order) shuffled.push_back(std::move(batches[idx]));
    batches = std::move(shuffled);
  }
}

}  // namespace tafloc
