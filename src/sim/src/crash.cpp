#include "tafloc/sim/crash.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <vector>

#include "tafloc/util/rng.h"

namespace tafloc {

namespace {

constexpr storage::KillPoint kKillPoints[] = {
    storage::KillPoint::kSnapshotTempWritten, storage::KillPoint::kSnapshotBeforeRename,
    storage::KillPoint::kSnapshotAfterRename, storage::KillPoint::kWalMidAppend,
    storage::KillPoint::kWalAfterAppend,
};
constexpr std::size_t kNumKillPoints = sizeof(kKillPoints) / sizeof(kKillPoints[0]);

// Read-modify-write a whole file.  Returns false (file untouched) when
// it is missing or shorter than the mutation needs.
bool rewrite_file(const std::string& path, std::size_t min_bytes,
                  void (*mutate)(std::vector<char>&, std::size_t, std::size_t),
                  std::size_t offset, std::size_t length) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  in.close();
  if (bytes.size() < min_bytes) return false;
  mutate(bytes, offset, length);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return out.good();
}

}  // namespace

CrashInjector::CrashInjector(std::uint64_t seed, std::size_t max_hits) {
  SplitMix64 mix(seed);
  point_ = kKillPoints[mix.next() % kNumKillPoints];
  hits_ = max_hits == 0 ? 1 : 1 + mix.next() % max_hits;
}

void CrashInjector::arm() const { storage::arm_kill_point(point_, hits_); }

void CrashInjector::disarm() { storage::disarm_kill_point(); }

bool CrashInjector::truncate_file(const std::string& path, std::size_t keep_bytes) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  if (ec || size < keep_bytes) return false;
  std::filesystem::resize_file(path, keep_bytes, ec);
  return !ec;
}

bool CrashInjector::flip_bit(const std::string& path, std::size_t offset) {
  return rewrite_file(
      path, offset + 1,
      [](std::vector<char>& bytes, std::size_t off, std::size_t) {
        bytes[off] = static_cast<char>(bytes[off] ^ 0x10);
      },
      offset, 0);
}

bool CrashInjector::zero_range(const std::string& path, std::size_t offset,
                               std::size_t length) {
  return rewrite_file(
      path, offset + length,
      [](std::vector<char>& bytes, std::size_t off, std::size_t len) {
        for (std::size_t i = 0; i < len; ++i) bytes[off + i] = 0;
      },
      offset, length);
}

}  // namespace tafloc
