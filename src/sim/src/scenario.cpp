#include "tafloc/sim/scenario.h"

namespace tafloc {

Scenario::Scenario(Deployment deployment, const ChannelConfig& config, std::uint64_t seed,
                   const SurveyConfig& survey)
    : deployment_(std::make_unique<Deployment>(std::move(deployment))) {
  channel_ = std::make_unique<Channel>(deployment_->links(), config, seed);
  collector_ = std::make_unique<FingerprintCollector>(*deployment_, *channel_, survey);
}

Scenario Scenario::paper_room(std::uint64_t seed) {
  return Scenario(Deployment::paper_room(), ChannelConfig{}, seed);
}

Scenario Scenario::square_area(double edge_m, std::uint64_t seed) {
  return Scenario(Deployment::square_area(edge_m), ChannelConfig{}, seed);
}

}  // namespace tafloc
