#include "tafloc/sim/trace.h"

#include <cmath>

#include "tafloc/util/check.h"

namespace tafloc {

std::vector<Point2> random_positions(const GridMap& grid, std::size_t count, Rng& rng) {
  TAFLOC_CHECK_ARG(count > 0, "trace needs at least one position");
  std::vector<Point2> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back({rng.uniform(0.0, grid.width()), rng.uniform(0.0, grid.height())});
  }
  return out;
}

std::vector<std::size_t> random_grid_sequence(const GridMap& grid, std::size_t count, Rng& rng) {
  TAFLOC_CHECK_ARG(count > 0, "sequence needs at least one grid");
  return rng.sample_without_replacement(grid.num_cells(), count);
}

std::vector<Point2> waypoint_walk(const GridMap& grid, std::size_t count, double speed_mps,
                                  double dt_s, Rng& rng) {
  TAFLOC_CHECK_ARG(count > 0, "walk needs at least one position");
  TAFLOC_CHECK_ARG(speed_mps > 0.0 && dt_s > 0.0, "speed and step must be positive");
  std::vector<Point2> out;
  out.reserve(count);
  Point2 pos{rng.uniform(0.0, grid.width()), rng.uniform(0.0, grid.height())};
  Point2 goal{rng.uniform(0.0, grid.width()), rng.uniform(0.0, grid.height())};
  const double step = speed_mps * dt_s;
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(pos);
    double remaining = step;
    while (remaining > 0.0) {
      const double to_goal = distance(pos, goal);
      if (to_goal <= remaining) {
        pos = goal;
        remaining -= to_goal;
        goal = {rng.uniform(0.0, grid.width()), rng.uniform(0.0, grid.height())};
      } else {
        const Point2 dir = (goal - pos) * (1.0 / to_goal);
        pos = pos + dir * remaining;
        remaining = 0.0;
      }
    }
  }
  return out;
}

}  // namespace tafloc
