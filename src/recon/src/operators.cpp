#include "tafloc/recon/operators.h"

#include "tafloc/util/check.h"

namespace tafloc {

namespace {

void check_mask(const DistortionMask* mask, std::size_t num_links, std::size_t num_grids) {
  if (mask == nullptr) return;
  TAFLOC_CHECK_ARG(mask->distorted.rows() == num_links && mask->distorted.cols() == num_grids,
                   "mask shape must be links x grids");
}

bool pair_distorted(const DistortionMask* mask, std::size_t link, std::size_t j1,
                    std::size_t j2) {
  return mask == nullptr ||
         (mask->distorted(link, j1) != 0.0 && mask->distorted(link, j2) != 0.0);
}

}  // namespace

std::vector<PairwiseTerm> continuity_pairs(const Deployment& deployment,
                                           const DistortionMask* mask) {
  const GridMap& grid = deployment.grid();
  const std::size_t m = deployment.num_links();
  check_mask(mask, m, grid.num_cells());

  std::vector<PairwiseTerm> pairs;
  for (std::size_t i = 0; i < m; ++i) {
    if (deployment.link_is_horizontal(i)) {
      for (std::size_t iy = 0; iy < grid.ny(); ++iy) {
        for (std::size_t ix = 0; ix + 1 < grid.nx(); ++ix) {
          const std::size_t j1 = grid.index(ix, iy);
          const std::size_t j2 = grid.index(ix + 1, iy);
          if (pair_distorted(mask, i, j1, j2)) pairs.push_back(PairwiseTerm{i, j1, i, j2});
        }
      }
    } else {
      for (std::size_t ix = 0; ix < grid.nx(); ++ix) {
        for (std::size_t iy = 0; iy + 1 < grid.ny(); ++iy) {
          const std::size_t j1 = grid.index(ix, iy);
          const std::size_t j2 = grid.index(ix, iy + 1);
          if (pair_distorted(mask, i, j1, j2)) pairs.push_back(PairwiseTerm{i, j1, i, j2});
        }
      }
    }
  }
  return pairs;
}

std::vector<PairwiseTerm> similarity_pairs(const Deployment& deployment,
                                           const DistortionMask* mask) {
  const std::size_t n = deployment.num_grids();
  check_mask(mask, deployment.num_links(), n);

  std::vector<PairwiseTerm> pairs;
  for (const auto& [i1, i2] : deployment.adjacent_link_pairs()) {
    for (std::size_t j = 0; j < n; ++j) {
      if (mask != nullptr &&
          (mask->distorted(i1, j) == 0.0 || mask->distorted(i2, j) == 0.0))
        continue;
      pairs.push_back(PairwiseTerm{i1, j, i2, j});
    }
  }
  return pairs;
}

Matrix continuity_operator(const GridMap& grid) {
  const std::size_t n = grid.num_cells();
  const std::size_t pairs_per_row = grid.nx() - 1;
  TAFLOC_CHECK_ARG(pairs_per_row >= 1, "grid needs at least two cells per row");
  const std::size_t p = pairs_per_row * grid.ny();
  Matrix g(n, p);
  std::size_t col = 0;
  for (std::size_t iy = 0; iy < grid.ny(); ++iy) {
    for (std::size_t ix = 0; ix + 1 < grid.nx(); ++ix) {
      g(grid.index(ix, iy), col) = 1.0;
      g(grid.index(ix + 1, iy), col) = -1.0;
      ++col;
    }
  }
  return g;
}

Matrix similarity_operator(std::size_t num_links) {
  TAFLOC_CHECK_ARG(num_links >= 2, "similarity operator needs at least two links");
  Matrix h(num_links - 1, num_links);
  for (std::size_t i = 0; i + 1 < num_links; ++i) {
    h(i, i) = 1.0;
    h(i, i + 1) = -1.0;
  }
  return h;
}

double pairwise_energy(const Matrix& x, const std::vector<PairwiseTerm>& pairs) {
  double s = 0.0;
  for (const PairwiseTerm& p : pairs) {
    const double d = x(p.row1, p.col1) - x(p.row2, p.col2);
    s += d * d;
  }
  return s;
}

double pairwise_energy_relative(const Matrix& x, const Matrix& anchor,
                                const std::vector<PairwiseTerm>& pairs) {
  TAFLOC_CHECK_ARG(anchor.same_shape(x), "anchor shape must match x");
  double s = 0.0;
  for (const PairwiseTerm& p : pairs) {
    const double d = (x(p.row1, p.col1) - x(p.row2, p.col2)) -
                     (anchor(p.row1, p.col1) - anchor(p.row2, p.col2));
    s += d * d;
  }
  return s;
}

}  // namespace tafloc
