#include "tafloc/recon/loli_ir.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "tafloc/exec/thread_pool.h"
#include "tafloc/exec/workspace.h"
#include "tafloc/linalg/svd.h"
#include "tafloc/telemetry/metrics.h"
#include "tafloc/telemetry/span.h"
#include "tafloc/telemetry/trace.h"
#include "tafloc/util/check.h"

namespace tafloc {

namespace {

/// Shape/contents validation of a problem instance.
void validate(const LoliIrProblem& p) {
  TAFLOC_CHECK_ARG(!p.known.empty(), "X_I must be non-empty");
  TAFLOC_CHECK_ARG(p.mask_undistorted.same_shape(p.known), "mask shape must match X_I");
  TAFLOC_CHECK_ARG(p.prediction.same_shape(p.known), "prediction shape must match X_I");
  for (double v : p.mask_undistorted.data())
    TAFLOC_CHECK_ARG(v == 0.0 || v == 1.0, "mask entries must be 0 or 1");
  TAFLOC_CHECK_ARG(p.reference_columns.rows() == p.known.rows(),
                   "reference columns must have one row per link");
  for (std::size_t idx : p.reference_indices)
    TAFLOC_CHECK_BOUNDS(idx, p.known.cols(), "reference grid index");
  TAFLOC_CHECK_ARG(p.reference_columns.cols() == p.reference_indices.size(),
                   "reference column count must match index count");
  auto check_pairs = [&](const std::vector<PairwiseTerm>& pairs) {
    for (const PairwiseTerm& t : pairs) {
      TAFLOC_CHECK_BOUNDS(t.row1, p.known.rows(), "pair row");
      TAFLOC_CHECK_BOUNDS(t.row2, p.known.rows(), "pair row");
      TAFLOC_CHECK_BOUNDS(t.col1, p.known.cols(), "pair col");
      TAFLOC_CHECK_BOUNDS(t.col2, p.known.cols(), "pair col");
    }
  };
  check_pairs(p.continuity);
  check_pairs(p.similarity);
  if (!p.row_observed.empty()) {
    TAFLOC_CHECK_ARG(p.row_observed.size() == p.known.rows(),
                     "row_observed must have one entry per link");
    bool any = false;
    for (std::uint8_t v : p.row_observed) {
      TAFLOC_CHECK_ARG(v == 0 || v == 1, "row_observed entries must be 0 or 1");
      any = any || v == 1;
    }
    TAFLOC_CHECK_ARG(any, "row_observed must keep at least one link observed");
  }
}

/// nullptr when every row is observed (the bit-identical fast path),
/// else the per-row 0/1 flags.
const std::uint8_t* observed_rows(const LoliIrProblem& p) {
  if (p.row_observed.empty()) return nullptr;
  for (std::uint8_t v : p.row_observed)
    if (v == 0) return p.row_observed.data();
  return nullptr;
}

void validate(const LoliIrConfig& c) {
  TAFLOC_CHECK_ARG(c.lambda > 0.0, "lambda must be positive (it keeps the subproblems SPD)");
  TAFLOC_CHECK_ARG(c.data_weight >= 0.0 && c.lrr_weight >= 0.0 && c.continuity_weight >= 0.0 &&
                       c.similarity_weight >= 0.0 && c.reference_weight >= 0.0,
                   "objective weights must be non-negative");
  TAFLOC_CHECK_ARG(c.max_outer_iterations > 0, "outer iteration cap must be positive");
  TAFLOC_CHECK_ARG(c.outer_tolerance > 0.0, "outer tolerance must be positive");
  TAFLOC_CHECK_ARG(c.max_rank > 0, "max rank must be positive");
}

/// The initialization matrix: LRR prediction, overwritten by the known
/// undistorted entries and the freshly measured reference columns --
/// except on unobserved (dead-link) rows, which keep the prediction:
/// their measurements are by definition garbage.
Matrix initial_estimate(const LoliIrProblem& p, const std::uint8_t* obs) {
  Matrix x0 = p.prediction;
  for (std::size_t i = 0; i < x0.rows(); ++i) {
    if (obs != nullptr && obs[i] == 0) continue;
    for (std::size_t j = 0; j < x0.cols(); ++j)
      if (p.mask_undistorted(i, j) == 1.0) x0(i, j) = p.known(i, j);
  }
  for (std::size_t k = 0; k < p.reference_indices.size(); ++k) {
    const std::size_t g = p.reference_indices[k];
    if (obs == nullptr) {
      x0.set_col(g, p.reference_columns.col_view(k));
    } else {
      for (std::size_t i = 0; i < x0.rows(); ++i)
        if (obs[i] != 0) x0(i, g) = p.reference_columns(i, k);
    }
  }
  return x0;
}

/// Pairwise-term grain: one chunk per pool lane once the scatter work is
/// big enough to beat fork-join overhead; otherwise one chunk (inline).
std::size_t pairwise_grain(std::size_t target_rows, std::size_t pairs, std::size_t rank) {
  const std::size_t lanes = ThreadPool::global().size();
  if (lanes <= 1 || pairs * rank < (std::size_t{1} << 14)) return target_rows;
  return std::max<std::size_t>(1, (target_rows + lanes - 1) / lanes);
}

/// G/H accumulation of the L-step matvec: each lane owns a disjoint
/// range of y's rows (links) and applies exactly the contributions
/// landing there, scanning the shared term lists.  Per-row contribution
/// order equals the sequential loop's (continuity first, then
/// similarity, each in term order), so results are bit-identical at any
/// thread count.
void accumulate_pairwise_l(const LoliIrProblem& p, const LoliIrConfig& c, const Matrix& lw,
                           const Matrix& r, Matrix& y) {
  const bool has_cont = c.continuity_weight > 0.0 && !p.continuity.empty();
  const bool has_sim = c.similarity_weight > 0.0 && !p.similarity.empty();
  if (!has_cont && !has_sim) return;
  const std::size_t rank = lw.cols();
  const std::size_t grain =
      pairwise_grain(y.rows(), p.continuity.size() + p.similarity.size(), rank);
  ThreadPool::global().parallel_for(0, y.rows(), grain, [&](std::size_t r0, std::size_t r1) {
    if (has_cont) {
      for (const PairwiseTerm& t : p.continuity) {
        // rows equal for continuity pairs (same link).
        if (t.row1 < r0 || t.row1 >= r1) continue;
        double s = 0.0;
        for (std::size_t k = 0; k < rank; ++k)
          s += lw(t.row1, k) * (r(t.col1, k) - r(t.col2, k));
        s *= c.continuity_weight;
        for (std::size_t k = 0; k < rank; ++k)
          y(t.row1, k) += s * (r(t.col1, k) - r(t.col2, k));
      }
    }
    if (has_sim) {
      for (const PairwiseTerm& t : p.similarity) {
        // cols equal for similarity pairs (same grid); the two link
        // rows may fall in different lanes, each applying its own half.
        const bool in1 = t.row1 >= r0 && t.row1 < r1;
        const bool in2 = t.row2 >= r0 && t.row2 < r1;
        if (!in1 && !in2) continue;
        double s = 0.0;
        for (std::size_t k = 0; k < rank; ++k)
          s += (lw(t.row1, k) - lw(t.row2, k)) * r(t.col1, k);
        s *= c.similarity_weight;
        for (std::size_t k = 0; k < rank; ++k) {
          if (in1) y(t.row1, k) += s * r(t.col1, k);
          if (in2) y(t.row2, k) -= s * r(t.col1, k);
        }
      }
    }
  });
}

/// R-step counterpart: lanes own ranges of y's rows (grids).
void accumulate_pairwise_r(const LoliIrProblem& p, const LoliIrConfig& c, const Matrix& l,
                           const Matrix& rw, Matrix& y) {
  const bool has_cont = c.continuity_weight > 0.0 && !p.continuity.empty();
  const bool has_sim = c.similarity_weight > 0.0 && !p.similarity.empty();
  if (!has_cont && !has_sim) return;
  const std::size_t rank = rw.cols();
  const std::size_t grain =
      pairwise_grain(y.rows(), p.continuity.size() + p.similarity.size(), rank);
  ThreadPool::global().parallel_for(0, y.rows(), grain, [&](std::size_t g0, std::size_t g1) {
    if (has_cont) {
      for (const PairwiseTerm& t : p.continuity) {
        const bool in1 = t.col1 >= g0 && t.col1 < g1;
        const bool in2 = t.col2 >= g0 && t.col2 < g1;
        if (!in1 && !in2) continue;
        double s = 0.0;
        for (std::size_t k = 0; k < rank; ++k)
          s += l(t.row1, k) * (rw(t.col1, k) - rw(t.col2, k));
        s *= c.continuity_weight;
        for (std::size_t k = 0; k < rank; ++k) {
          if (in1) y(t.col1, k) += s * l(t.row1, k);
          if (in2) y(t.col2, k) -= s * l(t.row1, k);
        }
      }
    }
    if (has_sim) {
      for (const PairwiseTerm& t : p.similarity) {
        if (t.col1 < g0 || t.col1 >= g1) continue;
        double s = 0.0;
        for (std::size_t k = 0; k < rank; ++k)
          s += (l(t.row1, k) - l(t.row2, k)) * rw(t.col1, k);
        s *= c.similarity_weight;
        for (std::size_t k = 0; k < rank; ++k)
          y(t.col1, k) += s * (l(t.row1, k) - l(t.row2, k));
      }
    }
  });
}

/// Objective evaluated against a precomputed X = L R^T (so the solver's
/// bookkeeping step reuses its workspace copy instead of re-forming it).
/// `obs` == nullptr means every row observed; unobserved rows are
/// excluded from the data and reference terms (see row_observed).
double objective_given_x(const LoliIrProblem& p, const LoliIrConfig& c, const Matrix& l,
                         const Matrix& r, const Matrix& x, const std::uint8_t* obs) {
  double f = c.lambda * (l.frobenius_norm() * l.frobenius_norm() +
                         r.frobenius_norm() * r.frobenius_norm());
  if (c.data_weight > 0.0) {
    double s = 0.0;
    for (std::size_t i = 0; i < x.rows(); ++i) {
      if (obs != nullptr && obs[i] == 0) continue;
      for (std::size_t j = 0; j < x.cols(); ++j)
        if (p.mask_undistorted(i, j) == 1.0) {
          const double d = x(i, j) - p.known(i, j);
          s += d * d;
        }
    }
    f += c.data_weight * s;
  }
  if (c.lrr_weight > 0.0) {
    const double nrm = frobenius_diff_norm(x, p.prediction);
    f += c.lrr_weight * nrm * nrm;
  }
  if (c.reference_weight > 0.0) {
    double s = 0.0;
    for (std::size_t k = 0; k < p.reference_indices.size(); ++k) {
      const std::size_t j = p.reference_indices[k];
      for (std::size_t i = 0; i < x.rows(); ++i) {
        if (obs != nullptr && obs[i] == 0) continue;
        const double d = x(i, j) - p.reference_columns(i, k);
        s += d * d;
      }
    }
    f += c.reference_weight * s;
  }
  const auto pair_term = [&](const std::vector<PairwiseTerm>& pairs) {
    return c.anchor_pairwise_to_prediction ? pairwise_energy_relative(x, p.prediction, pairs)
                                           : pairwise_energy(x, pairs);
  };
  if (c.continuity_weight > 0.0) f += c.continuity_weight * pair_term(p.continuity);
  if (c.similarity_weight > 0.0) f += c.similarity_weight * pair_term(p.similarity);
  return f;
}

}  // namespace

double loli_ir_objective(const LoliIrProblem& p, const LoliIrConfig& c, const Matrix& l,
                         const Matrix& r) {
  const Matrix x = outer_product(l, r);  // L R^T
  return objective_given_x(p, c, l, r, x, observed_rows(p));
}

LoliIrResult loli_ir_reconstruct(const LoliIrProblem& p, const LoliIrConfig& c) {
  validate(p);
  validate(c);
  ScopedSpan solve_span(c.telemetry, "recon.loli_ir.solve_seconds");
  // Request-scoped twin of the ambient span: when a trace is live on
  // this thread (a traced request triggered a synchronous reconstruct),
  // the solve lands in that request's stage list too.
  TraceStage solve_stage("recon.loli_ir.solve");
  Counter* tel_cg_iters = registry_counter(c.telemetry, "recon.loli_ir.cg_iterations");
  Histogram* tel_sweep = registry_histogram(c.telemetry, "recon.loli_ir.sweep_rel_change");

  const std::size_t m = p.known.rows();
  const std::size_t n = p.known.cols();
  const std::size_t nref = p.reference_indices.size();
  // Non-null only when some link row is genuinely unobserved; every
  // masked branch below keys off this, so the all-observed solve runs
  // the exact pre-mask instruction sequence (bit-identity).
  const std::uint8_t* obs = observed_rows(p);

  // ---- initialization: truncated SVD of the patched prediction ----
  const Matrix x0 = initial_estimate(p, obs);
  SvdResult svd;
  {
    ScopedSpan svd_span(c.telemetry, "recon.loli_ir.init_svd_seconds");
    svd = svd_decompose(x0);
  }
  std::size_t rank = c.rank;
  if (rank == 0) rank = std::max<std::size_t>(svd.numeric_rank(1e-3), 1);
  rank = std::min({rank, c.max_rank, m, n});

  Matrix l(m, rank);
  Matrix r(n, rank);
  for (std::size_t t = 0; t < rank; ++t) {
    const double root = std::sqrt(std::max(svd.sigma[t], 1e-12));
    for (std::size_t i = 0; i < m; ++i) l(i, t) = svd.u(i, t) * root;
    for (std::size_t j = 0; j < n; ++j) r(j, t) = svd.v(j, t) * root;
  }

  // ---- workspace: every per-iteration temporary is leased once here
  // and reused across all outer iterations and CG matvecs; the arena
  // counter proves the steady-state loop performs no heap allocation.
  Workspace ws(c.telemetry);
  auto known_masked_lease = ws.matrix(m, n);  // B o X_I
  Matrix& known_masked = *known_masked_lease;
  // Effective data mask and reference anchors: with unobserved rows the
  // solver reads row-zeroed copies, so dead-link measurements drop out
  // of every term below without touching the caller's problem.
  std::optional<Workspace::MatrixLease> bmask_lease;
  std::optional<Workspace::MatrixLease> ref_eff_lease;
  const Matrix* bmask = &p.mask_undistorted;
  const Matrix* ref_cols = &p.reference_columns;
  if (obs == nullptr) {
    hadamard_into(p.mask_undistorted, p.known, known_masked);
  } else {
    bmask_lease.emplace(ws.matrix(m, n));
    Matrix& bm = **bmask_lease;
    for (std::size_t i = 0; i < m; ++i)
      for (std::size_t j = 0; j < n; ++j) {
        bm(i, j) = obs[i] != 0 ? p.mask_undistorted(i, j) : 0.0;
        // Explicit select, not a Hadamard product: `known` may carry
        // NaN on dead rows, and 0 * NaN would poison the RHS.
        known_masked(i, j) = bm(i, j) == 1.0 ? p.known(i, j) : 0.0;
      }
    bmask = &bm;
    if (nref > 0) {
      ref_eff_lease.emplace(ws.matrix(m, nref));
      Matrix& re = **ref_eff_lease;
      for (std::size_t i = 0; i < m; ++i)
        for (std::size_t k = 0; k < nref; ++k)
          re(i, k) = obs[i] != 0 ? p.reference_columns(i, k) : 0.0;
      ref_cols = &re;
    }
  }

  auto lw_lease = ws.matrix(m, rank);   // CG iterate, reshaped (L-step)
  auto yl_lease = ws.matrix(m, rank);   // L-step matvec output
  auto rw_lease = ws.matrix(n, rank);   // CG iterate, reshaped (R-step)
  auto yr_lease = ws.matrix(n, rank);   // R-step matvec output
  auto xw_lease = ws.matrix(m, n);      // current L R^T inside matvecs
  auto w_lease = ws.matrix(m, n);       // B o (L R^T)
  auto tmp_l_lease = ws.matrix(m, rank);
  auto tmp_r_lease = ws.matrix(n, rank);
  auto rtr_lease = ws.matrix(rank, rank);
  auto ltl_lease = ws.matrix(rank, rank);
  auto rhs_l_lease = ws.matrix(m, rank);
  auto rhs_r_lease = ws.matrix(n, rank);
  auto x_now_lease = ws.matrix(m, n);
  auto x_prev_lease = ws.matrix(m, n);
  std::optional<Workspace::MatrixLease> r_ref_lease;
  std::optional<Workspace::MatrixLease> x_ref_lease;
  if (nref > 0) {
    r_ref_lease.emplace(ws.matrix(nref, rank));
    x_ref_lease.emplace(ws.matrix(m, nref));
  }
  Matrix& lw = *lw_lease;
  Matrix& yl = *yl_lease;
  Matrix& rw = *rw_lease;
  Matrix& yr = *yr_lease;
  Matrix& xw = *xw_lease;
  Matrix& w = *w_lease;
  Matrix& tmp_l = *tmp_l_lease;
  Matrix& tmp_r = *tmp_r_lease;
  Matrix& rtr = *rtr_lease;
  Matrix& ltl = *ltl_lease;
  Matrix& rhs_l = *rhs_l_lease;
  Matrix& rhs_r = *rhs_r_lease;
  Matrix& x_now = *x_now_lease;
  Matrix& x_prev = *x_prev_lease;
  CgScratch cg_scratch;  // capacity settles after the first iteration

  LoliIrResult out;
  outer_product_into(l, r, x_prev);

  // Both CG operators capture only stable references (lease-backed
  // buffers and the factors), so one std::function apiece serves every
  // outer iteration -- the loop body itself never heap-allocates.
  const LinearOperatorInto apply_l = [&](std::span<const double> v, std::span<double> y_out) {
    std::copy(v.begin(), v.end(), lw.data().begin());
    for (std::size_t i = 0; i < yl.size(); ++i)
      yl.data()[i] = lw.data()[i] * c.lambda;
    outer_product_into(lw, r, xw);
    if (c.data_weight > 0.0) {
      hadamard_into(*bmask, xw, w);
      multiply_into(w, r, tmp_l);
      add_scaled_into(tmp_l, c.data_weight, yl);
    }
    if (c.lrr_weight > 0.0) {
      multiply_into(lw, rtr, tmp_l);
      add_scaled_into(tmp_l, c.lrr_weight, yl);
    }
    if (c.reference_weight > 0.0 && nref > 0) {
      Matrix& r_ref = **r_ref_lease;
      Matrix& x_ref = **x_ref_lease;
      outer_product_into(lw, r_ref, x_ref);  // m x nref
      if (obs != nullptr) {
        // Unobserved rows contribute nothing to the reference normal
        // operator (matching their zeroed RHS).
        for (std::size_t i = 0; i < m; ++i)
          if (obs[i] == 0)
            for (std::size_t kk = 0; kk < nref; ++kk) x_ref(i, kk) = 0.0;
      }
      multiply_into(x_ref, r_ref, tmp_l);
      add_scaled_into(tmp_l, c.reference_weight, yl);
    }
    accumulate_pairwise_l(p, c, lw, r, yl);
    std::copy(yl.data().begin(), yl.data().end(), y_out.begin());
  };
  const LinearOperatorInto apply_r = [&](std::span<const double> v, std::span<double> y_out) {
    std::copy(v.begin(), v.end(), rw.data().begin());
    for (std::size_t i = 0; i < yr.size(); ++i)
      yr.data()[i] = rw.data()[i] * c.lambda;
    outer_product_into(l, rw, xw);  // m x n
    if (c.data_weight > 0.0) {
      hadamard_into(*bmask, xw, w);
      gram_product_into(w, l, tmp_r);  // W^T L
      add_scaled_into(tmp_r, c.data_weight, yr);
    }
    if (c.lrr_weight > 0.0) {
      multiply_into(rw, ltl, tmp_r);
      add_scaled_into(tmp_r, c.lrr_weight, yr);
    }
    if (c.reference_weight > 0.0) {
      for (std::size_t k = 0; k < nref; ++k) {
        const std::size_t g = p.reference_indices[k];
        // contribution nu * L^T (L R_g^T) to row g of the normal matvec
        for (std::size_t t = 0; t < rank; ++t) {
          double acc = 0.0;
          if (obs == nullptr) {
            for (std::size_t i = 0; i < m; ++i) acc += l(i, t) * xw(i, g);
          } else {
            for (std::size_t i = 0; i < m; ++i)
              if (obs[i] != 0) acc += l(i, t) * xw(i, g);
          }
          yr(g, t) += c.reference_weight * acc;
        }
      }
    }
    accumulate_pairwise_r(p, c, l, rw, yr);
    std::copy(yr.data().begin(), yr.data().end(), y_out.begin());
  };

  std::size_t warmup_allocations = ws.allocations();

  for (std::size_t outer = 0; outer < c.max_outer_iterations; ++outer) {
    // ================= L-step: fix R, solve for L =================
    {
      gram_product_into(r, r, rtr);  // rank x rank
      if (nref > 0) {
        Matrix& r_ref = **r_ref_lease;
        for (std::size_t k = 0; k < nref; ++k)
          r_ref.set_row(k, r.row_span(p.reference_indices[k]));
      }

      rhs_l.fill(0.0);
      if (c.data_weight > 0.0) {
        multiply_into(known_masked, r, tmp_l);
        add_scaled_into(tmp_l, c.data_weight, rhs_l);
      }
      if (c.lrr_weight > 0.0) {
        multiply_into(p.prediction, r, tmp_l);
        add_scaled_into(tmp_l, c.lrr_weight, rhs_l);
      }
      if (c.reference_weight > 0.0 && nref > 0) {
        multiply_into(*ref_cols, **r_ref_lease, tmp_l);
        add_scaled_into(tmp_l, c.reference_weight, rhs_l);
      }
      // Anchored pairwise terms penalize deviations of X^ differences
      // from the prediction's differences: the anchor contributes to
      // the RHS.  (Unanchored terms have a zero RHS.)
      if (c.anchor_pairwise_to_prediction && c.continuity_weight > 0.0) {
        for (const PairwiseTerm& t : p.continuity) {
          const double coef = c.continuity_weight *
                              (p.prediction(t.row1, t.col1) - p.prediction(t.row2, t.col2));
          if (coef == 0.0) continue;
          for (std::size_t k = 0; k < rank; ++k)
            rhs_l(t.row1, k) += coef * (r(t.col1, k) - r(t.col2, k));
        }
      }
      if (c.anchor_pairwise_to_prediction && c.similarity_weight > 0.0) {
        for (const PairwiseTerm& t : p.similarity) {
          const double coef = c.similarity_weight *
                              (p.prediction(t.row1, t.col1) - p.prediction(t.row2, t.col2));
          if (coef == 0.0) continue;
          for (std::size_t k = 0; k < rank; ++k) {
            rhs_l(t.row1, k) += coef * r(t.col1, k);
            rhs_l(t.row2, k) -= coef * r(t.col1, k);
          }
        }
      }

      const CgSummary cg = conjugate_gradient_in_place(apply_l, rhs_l.data(), l.data(),
                                                       cg_scratch, c.cg);
      if (tel_cg_iters != nullptr) tel_cg_iters->add(cg.iterations);
    }

    // ================= R-step: fix L, solve for R =================
    {
      gram_product_into(l, l, ltl);  // rank x rank

      rhs_r.fill(0.0);
      if (c.data_weight > 0.0) {
        gram_product_into(known_masked, l, tmp_r);
        add_scaled_into(tmp_r, c.data_weight, rhs_r);
      }
      if (c.lrr_weight > 0.0) {
        gram_product_into(p.prediction, l, tmp_r);
        add_scaled_into(tmp_r, c.lrr_weight, rhs_r);
      }
      if (c.reference_weight > 0.0) {
        for (std::size_t k = 0; k < nref; ++k) {
          const std::size_t g = p.reference_indices[k];
          for (std::size_t t = 0; t < rank; ++t) {
            double acc = 0.0;
            for (std::size_t i = 0; i < m; ++i) acc += l(i, t) * (*ref_cols)(i, k);
            rhs_r(g, t) += c.reference_weight * acc;
          }
        }
      }
      if (c.anchor_pairwise_to_prediction && c.continuity_weight > 0.0) {
        for (const PairwiseTerm& t : p.continuity) {
          const double coef = c.continuity_weight *
                              (p.prediction(t.row1, t.col1) - p.prediction(t.row2, t.col2));
          if (coef == 0.0) continue;
          for (std::size_t k = 0; k < rank; ++k) {
            rhs_r(t.col1, k) += coef * l(t.row1, k);
            rhs_r(t.col2, k) -= coef * l(t.row1, k);
          }
        }
      }
      if (c.anchor_pairwise_to_prediction && c.similarity_weight > 0.0) {
        for (const PairwiseTerm& t : p.similarity) {
          const double coef = c.similarity_weight *
                              (p.prediction(t.row1, t.col1) - p.prediction(t.row2, t.col2));
          if (coef == 0.0) continue;
          for (std::size_t k = 0; k < rank; ++k)
            rhs_r(t.col1, k) += coef * (l(t.row1, k) - l(t.row2, k));
        }
      }

      const CgSummary cg = conjugate_gradient_in_place(apply_r, rhs_r.data(), r.data(),
                                                       cg_scratch, c.cg);
      if (tel_cg_iters != nullptr) tel_cg_iters->add(cg.iterations);
    }

    // ================= convergence bookkeeping =================
    outer_product_into(l, r, x_now);
    out.objective_trace.push_back(objective_given_x(p, c, l, r, x_now, obs));
    out.outer_iterations = outer + 1;
    const double denom = std::max(x_prev.frobenius_norm(), 1e-12);
    const double rel_change = frobenius_diff_norm(x_now, x_prev) / denom;
    if (tel_sweep != nullptr) tel_sweep->observe(rel_change);
    x_prev = x_now;
    if (outer == 0) warmup_allocations = ws.allocations();
    if (rel_change < c.outer_tolerance) {
      out.converged = true;
      break;
    }
  }

  out.x = x_prev;
  out.l = std::move(l);
  out.r = std::move(r);
  out.rank = rank;
  out.objective = out.objective_trace.empty() ? 0.0 : out.objective_trace.back();
  out.workspace_allocations = ws.allocations();
  out.workspace_allocations_steady = ws.allocations() - warmup_allocations;
  if (c.telemetry != nullptr && c.telemetry->enabled()) {
    c.telemetry->counter("recon.loli_ir.solves").add();
    c.telemetry->counter("recon.loli_ir.outer_iterations").add(out.outer_iterations);
    c.telemetry->counter("recon.loli_ir.workspace_allocations").add(out.workspace_allocations);
    c.telemetry->counter("recon.loli_ir.workspace_allocations_steady")
        .add(out.workspace_allocations_steady);
    c.telemetry->gauge("recon.loli_ir.rank").set(static_cast<double>(out.rank));
    c.telemetry->gauge("recon.loli_ir.last_objective").set(out.objective);
  }
  return out;
}

}  // namespace tafloc