#include "tafloc/recon/loli_ir.h"

#include <algorithm>
#include <cmath>

#include "tafloc/linalg/svd.h"
#include "tafloc/util/check.h"

namespace tafloc {

namespace {

/// Shape/contents validation of a problem instance.
void validate(const LoliIrProblem& p) {
  TAFLOC_CHECK_ARG(!p.known.empty(), "X_I must be non-empty");
  TAFLOC_CHECK_ARG(p.mask_undistorted.same_shape(p.known), "mask shape must match X_I");
  TAFLOC_CHECK_ARG(p.prediction.same_shape(p.known), "prediction shape must match X_I");
  for (double v : p.mask_undistorted.data())
    TAFLOC_CHECK_ARG(v == 0.0 || v == 1.0, "mask entries must be 0 or 1");
  TAFLOC_CHECK_ARG(p.reference_columns.rows() == p.known.rows(),
                   "reference columns must have one row per link");
  for (std::size_t idx : p.reference_indices)
    TAFLOC_CHECK_BOUNDS(idx, p.known.cols(), "reference grid index");
  TAFLOC_CHECK_ARG(p.reference_columns.cols() == p.reference_indices.size(),
                   "reference column count must match index count");
  auto check_pairs = [&](const std::vector<PairwiseTerm>& pairs) {
    for (const PairwiseTerm& t : pairs) {
      TAFLOC_CHECK_BOUNDS(t.row1, p.known.rows(), "pair row");
      TAFLOC_CHECK_BOUNDS(t.row2, p.known.rows(), "pair row");
      TAFLOC_CHECK_BOUNDS(t.col1, p.known.cols(), "pair col");
      TAFLOC_CHECK_BOUNDS(t.col2, p.known.cols(), "pair col");
    }
  };
  check_pairs(p.continuity);
  check_pairs(p.similarity);
}

void validate(const LoliIrConfig& c) {
  TAFLOC_CHECK_ARG(c.lambda > 0.0, "lambda must be positive (it keeps the subproblems SPD)");
  TAFLOC_CHECK_ARG(c.data_weight >= 0.0 && c.lrr_weight >= 0.0 && c.continuity_weight >= 0.0 &&
                       c.similarity_weight >= 0.0 && c.reference_weight >= 0.0,
                   "objective weights must be non-negative");
  TAFLOC_CHECK_ARG(c.max_outer_iterations > 0, "outer iteration cap must be positive");
  TAFLOC_CHECK_ARG(c.outer_tolerance > 0.0, "outer tolerance must be positive");
  TAFLOC_CHECK_ARG(c.max_rank > 0, "max rank must be positive");
}

/// The initialization matrix: LRR prediction, overwritten by the known
/// undistorted entries and the freshly measured reference columns.
Matrix initial_estimate(const LoliIrProblem& p) {
  Matrix x0 = p.prediction;
  for (std::size_t i = 0; i < x0.rows(); ++i)
    for (std::size_t j = 0; j < x0.cols(); ++j)
      if (p.mask_undistorted(i, j) == 1.0) x0(i, j) = p.known(i, j);
  for (std::size_t k = 0; k < p.reference_indices.size(); ++k)
    x0.set_col(p.reference_indices[k], p.reference_columns.col(k));
  return x0;
}

Matrix reshape(const Vector& v, std::size_t rows, std::size_t cols) {
  Matrix m(rows, cols);
  std::copy(v.begin(), v.end(), m.data().begin());
  return m;
}

Vector flatten(const Matrix& m) { return Vector(m.data().begin(), m.data().end()); }

/// Rows of R at the reference grid indices (n x rank).
Matrix reference_rows(const Matrix& r, const std::vector<std::size_t>& idx) {
  return r.select_rows(idx);
}

}  // namespace

double loli_ir_objective(const LoliIrProblem& p, const LoliIrConfig& c, const Matrix& l,
                         const Matrix& r) {
  const Matrix x = outer_product(l, r);  // L R^T
  double f = c.lambda * (l.frobenius_norm() * l.frobenius_norm() +
                         r.frobenius_norm() * r.frobenius_norm());
  if (c.data_weight > 0.0) {
    double s = 0.0;
    for (std::size_t i = 0; i < x.rows(); ++i)
      for (std::size_t j = 0; j < x.cols(); ++j)
        if (p.mask_undistorted(i, j) == 1.0) {
          const double d = x(i, j) - p.known(i, j);
          s += d * d;
        }
    f += c.data_weight * s;
  }
  if (c.lrr_weight > 0.0) {
    const Matrix d = x - p.prediction;
    f += c.lrr_weight * d.frobenius_norm() * d.frobenius_norm();
  }
  if (c.reference_weight > 0.0) {
    double s = 0.0;
    for (std::size_t k = 0; k < p.reference_indices.size(); ++k) {
      const std::size_t j = p.reference_indices[k];
      for (std::size_t i = 0; i < x.rows(); ++i) {
        const double d = x(i, j) - p.reference_columns(i, k);
        s += d * d;
      }
    }
    f += c.reference_weight * s;
  }
  const auto pair_term = [&](const std::vector<PairwiseTerm>& pairs) {
    return c.anchor_pairwise_to_prediction ? pairwise_energy_relative(x, p.prediction, pairs)
                                           : pairwise_energy(x, pairs);
  };
  if (c.continuity_weight > 0.0) f += c.continuity_weight * pair_term(p.continuity);
  if (c.similarity_weight > 0.0) f += c.similarity_weight * pair_term(p.similarity);
  return f;
}

LoliIrResult loli_ir_reconstruct(const LoliIrProblem& p, const LoliIrConfig& c) {
  validate(p);
  validate(c);

  const std::size_t m = p.known.rows();
  const std::size_t n = p.known.cols();

  // ---- initialization: truncated SVD of the patched prediction ----
  const Matrix x0 = initial_estimate(p);
  const SvdResult svd = svd_decompose(x0);
  std::size_t rank = c.rank;
  if (rank == 0) rank = std::max<std::size_t>(svd.numeric_rank(1e-3), 1);
  rank = std::min({rank, c.max_rank, m, n});

  Matrix l(m, rank);
  Matrix r(n, rank);
  for (std::size_t t = 0; t < rank; ++t) {
    const double root = std::sqrt(std::max(svd.sigma[t], 1e-12));
    for (std::size_t i = 0; i < m; ++i) l(i, t) = svd.u(i, t) * root;
    for (std::size_t j = 0; j < n; ++j) r(j, t) = svd.v(j, t) * root;
  }

  // ---- precomputed right-hand-side building blocks ----
  const Matrix known_masked = p.mask_undistorted.hadamard(p.known);  // B o X_I

  LoliIrResult out;
  Matrix x_prev = outer_product(l, r);

  for (std::size_t outer = 0; outer < c.max_outer_iterations; ++outer) {
    // ================= L-step: fix R, solve for L =================
    {
      const Matrix rtr = gram_product(r, r);  // rank x rank
      const Matrix r_ref = reference_rows(r, p.reference_indices);

      auto apply = [&](const Vector& v) -> Vector {
        const Matrix lw = reshape(v, m, rank);
        Matrix y = lw * c.lambda;
        const Matrix xw = outer_product(lw, r);
        if (c.data_weight > 0.0) {
          const Matrix w = p.mask_undistorted.hadamard(xw);
          y += (w * r) * c.data_weight;
        }
        if (c.lrr_weight > 0.0) y += (lw * rtr) * c.lrr_weight;
        if (c.reference_weight > 0.0 && !p.reference_indices.empty()) {
          const Matrix x_ref = outer_product(lw, r_ref);  // m x nref
          y += (x_ref * r_ref) * c.reference_weight;
        }
        if (c.continuity_weight > 0.0) {
          for (const PairwiseTerm& t : p.continuity) {
            // rows equal for continuity pairs (same link).
            double s = 0.0;
            for (std::size_t k = 0; k < rank; ++k)
              s += lw(t.row1, k) * (r(t.col1, k) - r(t.col2, k));
            s *= c.continuity_weight;
            for (std::size_t k = 0; k < rank; ++k)
              y(t.row1, k) += s * (r(t.col1, k) - r(t.col2, k));
          }
        }
        if (c.similarity_weight > 0.0) {
          for (const PairwiseTerm& t : p.similarity) {
            // cols equal for similarity pairs (same grid).
            double s = 0.0;
            for (std::size_t k = 0; k < rank; ++k)
              s += (lw(t.row1, k) - lw(t.row2, k)) * r(t.col1, k);
            s *= c.similarity_weight;
            for (std::size_t k = 0; k < rank; ++k) {
              y(t.row1, k) += s * r(t.col1, k);
              y(t.row2, k) -= s * r(t.col1, k);
            }
          }
        }
        return flatten(y);
      };

      Matrix rhs(m, rank);
      if (c.data_weight > 0.0) rhs += (known_masked * r) * c.data_weight;
      if (c.lrr_weight > 0.0) rhs += (p.prediction * r) * c.lrr_weight;
      if (c.reference_weight > 0.0 && !p.reference_indices.empty())
        rhs += (p.reference_columns * r_ref) * c.reference_weight;
      // Anchored pairwise terms penalize deviations of X^ differences
      // from the prediction's differences: the anchor contributes to
      // the RHS.  (Unanchored terms have a zero RHS.)
      if (c.anchor_pairwise_to_prediction && c.continuity_weight > 0.0) {
        for (const PairwiseTerm& t : p.continuity) {
          const double coef = c.continuity_weight *
                              (p.prediction(t.row1, t.col1) - p.prediction(t.row2, t.col2));
          if (coef == 0.0) continue;
          for (std::size_t k = 0; k < rank; ++k)
            rhs(t.row1, k) += coef * (r(t.col1, k) - r(t.col2, k));
        }
      }
      if (c.anchor_pairwise_to_prediction && c.similarity_weight > 0.0) {
        for (const PairwiseTerm& t : p.similarity) {
          const double coef = c.similarity_weight *
                              (p.prediction(t.row1, t.col1) - p.prediction(t.row2, t.col2));
          if (coef == 0.0) continue;
          for (std::size_t k = 0; k < rank; ++k) {
            rhs(t.row1, k) += coef * r(t.col1, k);
            rhs(t.row2, k) -= coef * r(t.col1, k);
          }
        }
      }

      const CgResult cg = conjugate_gradient(apply, flatten(rhs), flatten(l), c.cg);
      l = reshape(cg.x, m, rank);
    }

    // ================= R-step: fix L, solve for R =================
    {
      const Matrix ltl = gram_product(l, l);  // rank x rank

      auto apply = [&](const Vector& v) -> Vector {
        const Matrix rw = reshape(v, n, rank);
        Matrix y = rw * c.lambda;
        const Matrix xw = outer_product(l, rw);  // m x n
        if (c.data_weight > 0.0) {
          const Matrix w = p.mask_undistorted.hadamard(xw);
          y += gram_product(w, l) * c.data_weight;  // W^T L
        }
        if (c.lrr_weight > 0.0) y += (rw * ltl) * c.lrr_weight;
        if (c.reference_weight > 0.0) {
          for (std::size_t k = 0; k < p.reference_indices.size(); ++k) {
            const std::size_t g = p.reference_indices[k];
            // contribution nu * L^T (L R_g^T) to row g of the normal matvec
            for (std::size_t t = 0; t < rank; ++t) {
              double acc = 0.0;
              for (std::size_t i = 0; i < m; ++i) acc += l(i, t) * xw(i, g);
              y(g, t) += c.reference_weight * acc;
            }
          }
        }
        if (c.continuity_weight > 0.0) {
          for (const PairwiseTerm& t : p.continuity) {
            double s = 0.0;
            for (std::size_t k = 0; k < rank; ++k)
              s += l(t.row1, k) * (rw(t.col1, k) - rw(t.col2, k));
            s *= c.continuity_weight;
            for (std::size_t k = 0; k < rank; ++k) {
              y(t.col1, k) += s * l(t.row1, k);
              y(t.col2, k) -= s * l(t.row1, k);
            }
          }
        }
        if (c.similarity_weight > 0.0) {
          for (const PairwiseTerm& t : p.similarity) {
            double s = 0.0;
            for (std::size_t k = 0; k < rank; ++k)
              s += (l(t.row1, k) - l(t.row2, k)) * rw(t.col1, k);
            s *= c.similarity_weight;
            for (std::size_t k = 0; k < rank; ++k)
              y(t.col1, k) += s * (l(t.row1, k) - l(t.row2, k));
          }
        }
        return flatten(y);
      };

      Matrix rhs(n, rank);
      if (c.data_weight > 0.0) rhs += gram_product(known_masked, l) * c.data_weight;
      if (c.lrr_weight > 0.0) rhs += gram_product(p.prediction, l) * c.lrr_weight;
      if (c.reference_weight > 0.0) {
        for (std::size_t k = 0; k < p.reference_indices.size(); ++k) {
          const std::size_t g = p.reference_indices[k];
          for (std::size_t t = 0; t < rank; ++t) {
            double acc = 0.0;
            for (std::size_t i = 0; i < m; ++i) acc += l(i, t) * p.reference_columns(i, k);
            rhs(g, t) += c.reference_weight * acc;
          }
        }
      }
      if (c.anchor_pairwise_to_prediction && c.continuity_weight > 0.0) {
        for (const PairwiseTerm& t : p.continuity) {
          const double coef = c.continuity_weight *
                              (p.prediction(t.row1, t.col1) - p.prediction(t.row2, t.col2));
          if (coef == 0.0) continue;
          for (std::size_t k = 0; k < rank; ++k) {
            rhs(t.col1, k) += coef * l(t.row1, k);
            rhs(t.col2, k) -= coef * l(t.row1, k);
          }
        }
      }
      if (c.anchor_pairwise_to_prediction && c.similarity_weight > 0.0) {
        for (const PairwiseTerm& t : p.similarity) {
          const double coef = c.similarity_weight *
                              (p.prediction(t.row1, t.col1) - p.prediction(t.row2, t.col2));
          if (coef == 0.0) continue;
          for (std::size_t k = 0; k < rank; ++k)
            rhs(t.col1, k) += coef * (l(t.row1, k) - l(t.row2, k));
        }
      }

      const CgResult cg = conjugate_gradient(apply, flatten(rhs), flatten(r), c.cg);
      r = reshape(cg.x, n, rank);
    }

    // ================= convergence bookkeeping =================
    const Matrix x_now = outer_product(l, r);
    out.objective_trace.push_back(loli_ir_objective(p, c, l, r));
    out.outer_iterations = outer + 1;
    const double denom = std::max(x_prev.frobenius_norm(), 1e-12);
    const double rel_change = (x_now - x_prev).frobenius_norm() / denom;
    x_prev = x_now;
    if (rel_change < c.outer_tolerance) {
      out.converged = true;
      break;
    }
  }

  out.x = std::move(x_prev);
  out.l = std::move(l);
  out.r = std::move(r);
  out.rank = rank;
  out.objective = out.objective_trace.empty() ? 0.0 : out.objective_trace.back();
  return out;
}

}  // namespace tafloc
