#include "tafloc/recon/lrr.h"

#include <cmath>

#include "tafloc/exec/workspace.h"
#include "tafloc/linalg/lsq.h"
#include "tafloc/linalg/ops.h"
#include "tafloc/linalg/svd.h"
#include "tafloc/telemetry/metrics.h"
#include "tafloc/telemetry/span.h"
#include "tafloc/util/check.h"

namespace tafloc {

LrrModel::LrrModel(const Matrix& x0, std::vector<std::size_t> reference_indices, double ridge)
    : LrrModel(x0, std::move(reference_indices), [&] {
        LrrOptions o;
        o.ridge = ridge;
        return o;
      }()) {}

LrrModel::LrrModel(const Matrix& x0, std::vector<std::size_t> reference_indices,
                   const LrrOptions& options)
    : reference_indices_(std::move(reference_indices)) {
  TAFLOC_CHECK_ARG(!x0.empty(), "initial fingerprint matrix must be non-empty");
  TAFLOC_CHECK_ARG(!reference_indices_.empty(), "LRR needs at least one reference column");
  for (std::size_t idx : reference_indices_)
    TAFLOC_CHECK_BOUNDS(idx, x0.cols(), "reference column index");
  fit(x0, options);
}

LrrModel LrrModel::from_correlation(Matrix z, std::vector<std::size_t> reference_indices) {
  TAFLOC_CHECK_ARG(!z.empty(), "correlation matrix must be non-empty");
  TAFLOC_CHECK_ARG(z.rows() == reference_indices.size(),
                   "correlation matrix must have one row per reference index");
  for (std::size_t idx : reference_indices)
    TAFLOC_CHECK_BOUNDS(idx, z.cols(), "reference column index");
  LrrModel model;
  model.z_ = std::move(z);
  model.reference_indices_ = std::move(reference_indices);
  model.training_residual_ = 0.0;  // unknown without the training data
  model.solver_iterations_ = 0;
  return model;
}

void LrrModel::fit(const Matrix& x0, const LrrOptions& options) {
  ScopedSpan fit_span(options.telemetry, "recon.lrr.fit_seconds");
  // Every fit-scoped buffer -- including the gathered reference block
  // XR0 -- comes from one workspace arena, so the ISTA loop below runs
  // allocation-free after its first iteration (the counters verify it).
  Workspace ws(options.telemetry);
  auto xr0_lease = ws.matrix(x0.rows(), reference_indices_.size());
  Matrix& xr0 = *xr0_lease;
  gather_columns_into(x0.view(), reference_indices_, xr0.view());

  switch (options.solver) {
    case LrrSolver::Ridge: {
      TAFLOC_CHECK_ARG(options.ridge > 0.0, "LRR ridge must be positive");
      z_ = solve_ridge_matrix(xr0, x0, options.ridge);
      solver_iterations_ = 1;
      break;
    }
    case LrrSolver::NuclearNorm: {
      TAFLOC_CHECK_ARG(options.nuclear_lambda > 0.0, "nuclear lambda must be positive");
      TAFLOC_CHECK_ARG(options.max_iterations > 0, "iteration cap must be positive");
      TAFLOC_CHECK_ARG(options.tolerance > 0.0, "tolerance must be positive");

      // ISTA on f(Z) = lambda ||X0 - XR0 Z||_F^2 + ||Z||_*:
      //   Z <- shrink_{1/L}(Z - (1/L) * grad),  grad = 2 lambda XR0^T (XR0 Z - X0),
      //   L = 2 lambda sigma_max(XR0)^2 (the Lipschitz constant of grad).
      const SvdResult xr_svd = svd_decompose(xr0);
      const double sigma_max = xr_svd.sigma.front();
      TAFLOC_CHECK_ARG(sigma_max > 0.0, "reference columns are all zero");
      const double lipschitz = 2.0 * options.nuclear_lambda * sigma_max * sigma_max;
      const double step = 1.0 / lipschitz;

      // Warm start from the ridge solution.
      z_ = solve_ridge_matrix(xr0, x0, 1e-6);
      const double z_scale = std::max(z_.frobenius_norm(), 1e-12);

      // ISTA temporaries (residual, gradient, proximal point and the
      // shrink destination) are leased once from the workspace arena
      // and reused every iteration.
      auto resid_lease = ws.matrix(x0.rows(), x0.cols());
      auto grad_lease = ws.matrix(z_.rows(), z_.cols());
      auto next_lease = ws.matrix(z_.rows(), z_.cols());
      auto shrunk_lease = ws.matrix(z_.rows(), z_.cols());
      Matrix& residual = *resid_lease;
      Matrix& grad = *grad_lease;
      Matrix& next = *next_lease;
      Matrix& shrunk = *shrunk_lease;

      std::size_t warmup_allocations = ws.allocations();
      for (std::size_t it = 0; it < options.max_iterations; ++it) {
        multiply_into(xr0, z_, residual);  // XR0 Z
        for (std::size_t i = 0; i < residual.size(); ++i)
          residual.data()[i] -= x0.data()[i];
        gram_product_into(xr0, residual, grad);
        grad *= 2.0 * options.nuclear_lambda;
        for (std::size_t i = 0; i < next.size(); ++i)
          next.data()[i] = z_.data()[i] - grad.data()[i] * step;
        singular_value_shrink_into(next, step, shrunk);
        const double change = frobenius_diff_norm(shrunk, z_) / z_scale;
        z_ = shrunk;
        solver_iterations_ = it + 1;
        if (it == 0) warmup_allocations = ws.allocations();
        if (change < options.tolerance) break;
      }
      workspace_allocations_steady_ = ws.allocations() - warmup_allocations;
      break;
    }
  }

  const Matrix fit_matrix = xr0 * z_;
  const double denom = x0.frobenius_norm();
  training_residual_ = denom > 0.0 ? (fit_matrix - x0).frobenius_norm() / denom : 0.0;
  workspace_allocations_ = ws.allocations();
  if (options.telemetry != nullptr && options.telemetry->enabled()) {
    options.telemetry->counter("recon.lrr.fits").add();
    options.telemetry->counter("recon.lrr.ista_iterations").add(solver_iterations_);
    options.telemetry->gauge("recon.lrr.training_residual").set(training_residual_);
  }
}

Matrix LrrModel::predict(const Matrix& fresh_reference_columns) const {
  TAFLOC_CHECK_ARG(fresh_reference_columns.cols() == reference_indices_.size(),
                   "reference column count mismatch");
  return fresh_reference_columns * z_;
}

}  // namespace tafloc
