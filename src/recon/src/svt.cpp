#include "tafloc/recon/svt.h"

#include <cmath>

#include "tafloc/exec/workspace.h"
#include "tafloc/linalg/ops.h"
#include "tafloc/telemetry/metrics.h"
#include "tafloc/telemetry/span.h"
#include "tafloc/util/check.h"

namespace tafloc {

SvtResult svt_complete(const Matrix& x_known, const Matrix& mask, const SvtOptions& options) {
  TAFLOC_CHECK_ARG(!x_known.empty(), "SVT input must be non-empty");
  TAFLOC_CHECK_ARG(mask.same_shape(x_known), "mask shape must match the data");
  TAFLOC_CHECK_ARG(options.tolerance > 0.0, "SVT tolerance must be positive");
  TAFLOC_CHECK_ARG(options.max_iterations > 0, "SVT iteration cap must be positive");

  ScopedSpan solve_span(options.telemetry, "recon.svt.solve_seconds");
  Histogram* tel_shrink = registry_histogram(options.telemetry, "recon.svt.shrink_seconds");
  const auto record_outcome = [&](const SvtResult& r) {
    if (options.telemetry == nullptr || !options.telemetry->enabled()) return;
    options.telemetry->counter("recon.svt.solves").add();
    options.telemetry->counter("recon.svt.iterations").add(r.iterations);
    options.telemetry->gauge("recon.svt.last_residual").set(r.residual);
  };

  for (double v : mask.data()) TAFLOC_CHECK_ARG(v == 0.0 || v == 1.0, "mask entries must be 0 or 1");
  // Link-fault masking: rows flagged unobserved drop out of the mask
  // entirely, so their (possibly NaN) measurements never anchor the
  // completion.  nullptr = all rows observed, the bit-identical path.
  const std::uint8_t* obs = nullptr;
  if (!options.row_observed.empty()) {
    TAFLOC_CHECK_ARG(options.row_observed.size() == x_known.rows(),
                     "row_observed must have one entry per link");
    for (std::uint8_t v : options.row_observed)
      TAFLOC_CHECK_ARG(v == 0 || v == 1, "row_observed entries must be 0 or 1");
    for (std::uint8_t v : options.row_observed)
      if (v == 0) {
        obs = options.row_observed.data();
        break;
      }
  }
  Matrix mask_eff_storage;
  const Matrix* bmask = &mask;
  if (obs != nullptr) {
    mask_eff_storage = Matrix(x_known.rows(), x_known.cols(), 0.0);
    for (std::size_t i = 0; i < x_known.rows(); ++i)
      if (obs[i] != 0)
        for (std::size_t j = 0; j < x_known.cols(); ++j)
          mask_eff_storage(i, j) = mask(i, j);
    bmask = &mask_eff_storage;
  }

  std::size_t observed = 0;
  for (double v : bmask->data())
    if (v == 1.0) ++observed;
  TAFLOC_CHECK_ARG(observed > 0, "SVT needs at least one observed entry");

  const double m = static_cast<double>(x_known.rows());
  const double n = static_cast<double>(x_known.cols());
  const double observed_fraction = static_cast<double>(observed) / (m * n);
  // tau trades off recovery bias (small tau over-shrinks; SVT solves
  // min tau ||X||_* + 0.5 ||X||_F^2, exact completion only as tau grows)
  // against iteration count.  20 sqrt(m n) keeps the bias negligible at
  // the matrix sizes used here while converging in a few hundred steps.
  const double tau = options.tau > 0.0 ? options.tau : 20.0 * std::sqrt(m * n);
  const double delta = options.step > 0.0 ? options.step : 1.2 / observed_fraction;

  // Per-iteration temporaries come from a workspace arena: the dual
  // iterate, the observed-entry data, and the masked residual each get
  // one buffer for the whole run.
  Workspace ws(options.telemetry);
  auto data_lease = ws.matrix(x_known.rows(), x_known.cols());
  auto y_lease = ws.matrix(x_known.rows(), x_known.cols());
  auto resid_lease = ws.matrix(x_known.rows(), x_known.cols());
  Matrix& data = *data_lease;
  Matrix& y = *y_lease;
  Matrix& resid = *resid_lease;

  if (obs == nullptr) {
    hadamard_into(mask, x_known, data);
  } else {
    // Explicit select, not a Hadamard product: dead-row entries of
    // x_known may be NaN, and 0 * NaN would poison the data norm.
    for (std::size_t i = 0; i < data.size(); ++i)
      data.data()[i] = bmask->data()[i] == 1.0 ? x_known.data()[i] : 0.0;
  }
  const double data_norm = data.frobenius_norm();
  TAFLOC_CHECK_ARG(data_norm > 0.0, "observed entries are all zero; nothing to complete");

  // Kick-start Y so the first shrink does not annihilate everything
  // (standard SVT warm start): Y0 = k0 * delta * data with k0 chosen so
  // ||Y0||_2 just exceeds tau.
  SvtResult out;
  y = data;
  {
    const double k0 = std::ceil(tau / (delta * data_norm));
    y *= std::max(k0, 1.0) * delta;
  }

  for (std::size_t it = 0; it < options.max_iterations; ++it) {
    // Destination-passing shrink: out.x's buffer is reused every
    // iteration once its capacity settles.
    if (tel_shrink != nullptr) {
      const std::uint64_t t0 = options.telemetry->now_ns();
      singular_value_shrink_into(y, tau, out.x);
      tel_shrink->observe(static_cast<double>(options.telemetry->now_ns() - t0) * 1e-9);
    } else {
      singular_value_shrink_into(y, tau, out.x);
    }
    // Residual on the observed entries only.
    for (std::size_t i = 0; i < resid.size(); ++i)
      resid.data()[i] = bmask->data()[i] * out.x.data()[i] - data.data()[i];
    const double rel = resid.frobenius_norm() / data_norm;
    out.iterations = it + 1;
    out.residual = rel;
    if (rel <= options.tolerance) {
      out.converged = true;
      record_outcome(out);
      return out;
    }
    add_scaled_into(resid, -delta, y);
  }
  record_outcome(out);
  return out;
}

}  // namespace tafloc
