#include "tafloc/recon/error.h"

#include <cmath>

#include "tafloc/util/check.h"

namespace tafloc {

std::vector<double> entrywise_abs_errors(const Matrix& reconstructed, const Matrix& truth) {
  TAFLOC_CHECK_ARG(reconstructed.same_shape(truth), "matrices must have equal shapes");
  std::vector<double> out;
  out.reserve(reconstructed.size());
  for (std::size_t i = 0; i < reconstructed.data().size(); ++i)
    out.push_back(std::abs(reconstructed.data()[i] - truth.data()[i]));
  return out;
}

std::vector<double> entrywise_abs_errors_distorted(const Matrix& reconstructed,
                                                   const Matrix& truth,
                                                   const DistortionMask& mask) {
  TAFLOC_CHECK_ARG(reconstructed.same_shape(truth), "matrices must have equal shapes");
  TAFLOC_CHECK_ARG(mask.distorted.same_shape(truth), "mask shape must match the matrices");
  std::vector<double> out;
  for (std::size_t i = 0; i < reconstructed.rows(); ++i)
    for (std::size_t j = 0; j < reconstructed.cols(); ++j)
      if (mask.distorted(i, j) != 0.0)
        out.push_back(std::abs(reconstructed(i, j) - truth(i, j)));
  return out;
}

double mean_abs_error(const Matrix& reconstructed, const Matrix& truth) {
  const std::vector<double> errs = entrywise_abs_errors(reconstructed, truth);
  double s = 0.0;
  for (double e : errs) s += e;
  return s / static_cast<double>(errs.size());
}

double rms_error(const Matrix& reconstructed, const Matrix& truth) {
  const std::vector<double> errs = entrywise_abs_errors(reconstructed, truth);
  double s = 0.0;
  for (double e : errs) s += e * e;
  return std::sqrt(s / static_cast<double>(errs.size()));
}

}  // namespace tafloc
