// Reconstruction error metrics (paper Fig. 3 reports the CDF and the
// mean of per-entry |reconstructed - true| in dBm).
#pragma once

#include <vector>

#include "tafloc/fingerprint/distortion.h"
#include "tafloc/linalg/matrix.h"

namespace tafloc {

/// Per-entry absolute errors |a - b| flattened into a vector (all
/// entries; shapes must match).
std::vector<double> entrywise_abs_errors(const Matrix& reconstructed, const Matrix& truth);

/// Per-entry absolute errors restricted to the distorted support of
/// `mask` (the entries reconstruction actually has to recover; the
/// undistorted ones are measured).
std::vector<double> entrywise_abs_errors_distorted(const Matrix& reconstructed,
                                                   const Matrix& truth,
                                                   const DistortionMask& mask);

/// Mean absolute error over all entries.
double mean_abs_error(const Matrix& reconstructed, const Matrix& truth);

/// Root-mean-square error over all entries.
double rms_error(const Matrix& reconstructed, const Matrix& truth);

}  // namespace tafloc
