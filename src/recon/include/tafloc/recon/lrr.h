// Low-Rank Representation model (fingerprint property ii):
//
//   X ~= X_R * Z
//
// Z (n x N) is the correlation between the n reference columns and all
// N columns of the fingerprint matrix.  Because the dominant temporal
// drift is (approximately) a per-link additive offset, the *linear
// relation between columns survives the drift*: Z is learned once from
// the initial full survey and reused at every update with only the
// reference columns re-measured.
//
// Two solvers for Z:
//  - Ridge (default):   Z = argmin ||X0 - XR0 Z||_F^2 + rho ||Z||_F^2
//    (closed form; what TafLocSystem uses).
//  - NuclearNorm:       Z = argmin ||Z||_* + lambda ||X0 - XR0 Z||_F^2
//    -- the literature's actual Low-Rank Representation objective
//    (Liu, Lin & Yu 2010), solved by proximal gradient (ISTA) with
//    singular-value shrinkage.  Exposed for the solver ablation.
#pragma once

#include <cstddef>
#include <vector>

#include "tafloc/linalg/matrix.h"

namespace tafloc {

class MetricRegistry;

enum class LrrSolver { Ridge, NuclearNorm };

struct LrrOptions {
  LrrSolver solver = LrrSolver::Ridge;
  double ridge = 1e-6;           ///< Ridge solver: Tikhonov weight rho.
  double nuclear_lambda = 20.0;  ///< NuclearNorm solver: data-fit weight.
  std::size_t max_iterations = 300;  ///< NuclearNorm solver: ISTA cap.
  double tolerance = 1e-6;       ///< NuclearNorm: relative change stop.
  /// Optional metrics sink (recon.lrr.* series: fit span, fit/ISTA
  /// iteration counters, training-residual gauge).  Not owned; nullptr
  /// or disabled = no overhead, identical results.
  MetricRegistry* telemetry = nullptr;
};

class LrrModel {
 public:
  /// Learn Z from the initial survey `x0` (M x N) and the chosen
  /// reference column indices (each < N) with the ridge solver.
  LrrModel(const Matrix& x0, std::vector<std::size_t> reference_indices, double ridge = 1e-6);

  /// Learn Z with explicit solver options.
  LrrModel(const Matrix& x0, std::vector<std::size_t> reference_indices,
           const LrrOptions& options);

  /// Rebuild a model from a previously learned correlation matrix (the
  /// deserialization path; no training data needed).  `z` must have one
  /// row per reference index.
  static LrrModel from_correlation(Matrix z, std::vector<std::size_t> reference_indices);

  /// Predict the full fingerprint matrix from freshly measured
  /// reference columns (M x n, same column order as reference_indices()).
  Matrix predict(const Matrix& fresh_reference_columns) const;

  /// Training residual ||X0 - XR0 * Z||_F / ||X0||_F.
  double training_residual() const noexcept { return training_residual_; }

  /// Iterations the solver used (1 for the closed-form ridge).
  std::size_t solver_iterations() const noexcept { return solver_iterations_; }

  /// Workspace arena allocations during fit: total, and those after the
  /// first ISTA iteration (steady state).  With every buffer leased
  /// before the loop the steady count is 0 -- the zero-allocation
  /// verification hook for the NuclearNorm solver.
  std::size_t workspace_allocations() const noexcept { return workspace_allocations_; }
  std::size_t workspace_allocations_steady() const noexcept {
    return workspace_allocations_steady_;
  }

  const Matrix& correlation() const noexcept { return z_; }
  const std::vector<std::size_t>& reference_indices() const noexcept {
    return reference_indices_;
  }
  std::size_t num_references() const noexcept { return reference_indices_.size(); }
  std::size_t num_grids() const noexcept { return z_.cols(); }

 private:
  LrrModel() = default;  // for from_correlation

  void fit(const Matrix& x0, const LrrOptions& options);

  std::vector<std::size_t> reference_indices_;
  Matrix z_;  ///< n x N.
  double training_residual_ = 0.0;
  std::size_t solver_iterations_ = 1;
  std::size_t workspace_allocations_ = 0;
  std::size_t workspace_allocations_steady_ = 0;
};

}  // namespace tafloc
