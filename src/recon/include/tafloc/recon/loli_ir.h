// LoLi-IR: the paper's fingerprint-matrix reconstruction algorithm
// (Low-rank / Linear-representation Iterative Reconstruction).
//
// The fingerprint matrix estimate is factored as X^ = L R^T and found by
// minimizing the paper's objective
//
//   min_{L,R}  lambda (||L||_F^2 + ||R||_F^2)
//            + w_d  ||B o (L R^T) - X_I||_F^2          (undistorted entries)
//            + mu   ||L R^T - X_R Z||_F^2              (LRR prediction)
//            + nu   ||(L R^T)_ref - X_R||_F^2          (fresh reference columns)
//            + gamma * continuity  + delta * similarity (distorted entries)
//
// by alternating minimization: with R fixed the objective is a ridge
// least-squares problem in L (and vice versa), solved by conjugate
// gradients on the normal equations, with matvecs assembled from the
// problem terms directly (no giant Kronecker matrices).  Initialization
// is the truncated SVD of the LRR prediction with known entries and
// reference columns substituted in.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "tafloc/linalg/cg.h"
#include "tafloc/linalg/matrix.h"
#include "tafloc/recon/operators.h"

namespace tafloc {

class MetricRegistry;

/// Solver weights and iteration controls.  Defaults are the values used
/// throughout the evaluation (see DESIGN.md).
struct LoliIrConfig {
  std::size_t rank = 0;      ///< factorization rank; 0 = numeric rank of the init.
  std::size_t max_rank = 12; ///< cap for the automatic rank choice.
  double lambda = 1e-3;             ///< factor ridge (nuclear-norm surrogate).
  double data_weight = 0.5;         ///< w_d (X_I is ambient-approximate, so < mu).
  double lrr_weight = 1.0;          ///< mu.
  double continuity_weight = 0.15;  ///< gamma.
  double similarity_weight = 0.15;  ///< delta.
  double reference_weight = 8.0;    ///< nu.
  std::size_t max_outer_iterations = 40;
  double outer_tolerance = 1e-5;    ///< relative change of X^ between outer iterations.
  CgOptions cg{1e-8, 400};          ///< inner ridge solves.
  /// false (paper's literal formulation): penalize raw differences of
  /// X^ on the distorted support -- a flatness prior.  true: penalize
  /// differences of the correction X^ - X_R Z instead, trusting the
  /// prediction's spatial gradient (useful when the prediction is clean
  /// but incomplete; see the objective-terms ablation bench).
  bool anchor_pairwise_to_prediction = false;
  /// Optional metrics sink (recon.loli_ir.* series: solve/init-SVD
  /// spans, outer/CG iteration counters, per-sweep relative-change
  /// histogram, workspace-allocation counters).  Not owned; nullptr
  /// or a disabled registry means zero instrumentation overhead.
  /// Telemetry only observes -- results are bit-identical either way.
  MetricRegistry* telemetry = nullptr;
};

/// Everything the solver needs about one reconstruction instance.
struct LoliIrProblem {
  Matrix known;             ///< X_I (M x N), meaningful where mask == 1.
  Matrix mask_undistorted;  ///< B (M x N), entries 0/1.
  Matrix prediction;        ///< X_R * Z (M x N).
  Matrix reference_columns; ///< fresh X_R (M x n).
  std::vector<std::size_t> reference_indices;  ///< grid index of each X_R column.
  std::vector<PairwiseTerm> continuity;        ///< property-iii pairs along links.
  std::vector<PairwiseTerm> similarity;        ///< property-iii pairs across links.
  /// Link-fault mask: one 0/1 entry per row (link); empty = all rows
  /// observed.  Rows flagged 0 are treated as *unobserved* -- excluded
  /// from the data term (their `mask_undistorted` row is ignored, and
  /// any NaN parked in `known` there is harmless) and from the
  /// reference anchors, so a dead link's garbage measurements never
  /// anchor the reconstruction.  The LRR prediction term still spans
  /// all rows: patch `prediction`'s dead rows with the best available
  /// prior (e.g. the previous fingerprint rows) so those rows stay
  /// well-posed and finite.  Empty or all-ones is bit-identical to the
  /// maskless solve.
  std::vector<std::uint8_t> row_observed;
};

struct LoliIrResult {
  Matrix x;  ///< reconstructed fingerprint matrix L R^T.
  Matrix l;  ///< M x rank factor.
  Matrix r;  ///< N x rank factor.
  std::size_t rank = 0;
  std::size_t outer_iterations = 0;
  bool converged = false;
  double objective = 0.0;
  std::vector<double> objective_trace;  ///< objective after each outer iteration.
  /// Workspace-arena diagnostics: total buffer allocations over the
  /// whole solve, and the portion after the first outer iteration.
  /// The steady count being 0 is the zero-allocation guarantee of the
  /// iteration loop (every later iteration reuses warm-up buffers).
  std::size_t workspace_allocations = 0;
  std::size_t workspace_allocations_steady = 0;
};

/// Run the solver.  Throws std::invalid_argument on inconsistent shapes
/// or indices; never returns silently-invalid output (non-convergence
/// is reported through `converged` with the best iterate in `x`).
LoliIrResult loli_ir_reconstruct(const LoliIrProblem& problem, const LoliIrConfig& config = {});

/// Evaluate the objective at a given factor pair (exposed for tests:
/// monotone decrease of the alternation is a checked invariant).
double loli_ir_objective(const LoliIrProblem& problem, const LoliIrConfig& config,
                         const Matrix& l, const Matrix& r);

}  // namespace tafloc
