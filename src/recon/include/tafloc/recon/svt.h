// Singular Value Thresholding (Cai, Candes & Shen 2010): the matrix
// completion solver for fingerprint property (i) alone,
//
//   min rank(X^)  s.t.  B o X^ = X_I
//
// relaxed to nuclear-norm minimization.  In TafLoc's evaluation this is
// the "rough" reconstruction the paper says rank minimization gives by
// itself; LoLi-IR improves on it with the LRR and continuity/similarity
// terms.  Also used directly by the solver-ablation bench.
#pragma once

#include <cstddef>

#include "tafloc/linalg/matrix.h"

namespace tafloc {

class MetricRegistry;

struct SvtOptions {
  double tau = 0.0;           ///< shrinkage threshold; 0 = 5 * sqrt(m * n).
  double step = 0.0;          ///< gradient step delta; 0 = 1.2 / observed fraction.
  double tolerance = 1e-4;    ///< stop when ||B o (X - X_I)||_F <= tol * ||X_I||_F.
  std::size_t max_iterations = 2000;
  /// Optional metrics sink (recon.svt.* series: solve span, per-iteration
  /// SVD-shrink time histogram, iteration counter, residual gauge).
  /// Not owned; nullptr or disabled = no overhead, identical results.
  MetricRegistry* telemetry = nullptr;
};

struct SvtResult {
  Matrix x;                   ///< completed matrix.
  std::size_t iterations = 0;
  bool converged = false;
  double residual = 0.0;      ///< final relative residual on observed entries.
};

/// Complete `x_known` (values meaningful where mask == 1) to a low-rank
/// matrix.  `mask` entries must be 0 or 1 and at least one entry must be
/// observed.
SvtResult svt_complete(const Matrix& x_known, const Matrix& mask, const SvtOptions& options = {});

}  // namespace tafloc
