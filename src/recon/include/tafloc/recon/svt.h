// Singular Value Thresholding (Cai, Candes & Shen 2010): the matrix
// completion solver for fingerprint property (i) alone,
//
//   min rank(X^)  s.t.  B o X^ = X_I
//
// relaxed to nuclear-norm minimization.  In TafLoc's evaluation this is
// the "rough" reconstruction the paper says rank minimization gives by
// itself; LoLi-IR improves on it with the LRR and continuity/similarity
// terms.  Also used directly by the solver-ablation bench.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "tafloc/linalg/matrix.h"

namespace tafloc {

class MetricRegistry;

struct SvtOptions {
  double tau = 0.0;           ///< shrinkage threshold; 0 = 5 * sqrt(m * n).
  double step = 0.0;          ///< gradient step delta; 0 = 1.2 / observed fraction.
  double tolerance = 1e-4;    ///< stop when ||B o (X - X_I)||_F <= tol * ||X_I||_F.
  std::size_t max_iterations = 2000;
  /// Link-fault mask: one 0/1 entry per row (link); empty = all rows
  /// observed.  Rows flagged 0 are treated as fully unobserved -- their
  /// mask row is ignored (dead-link measurements, NaN included, never
  /// anchor the completion) and the low-rank structure of the healthy
  /// rows fills them in.  Empty or all-ones is bit-identical to the
  /// unmasked solve.
  std::vector<std::uint8_t> row_observed;
  /// Optional metrics sink (recon.svt.* series: solve span, per-iteration
  /// SVD-shrink time histogram, iteration counter, residual gauge).
  /// Not owned; nullptr or disabled = no overhead, identical results.
  MetricRegistry* telemetry = nullptr;
};

struct SvtResult {
  Matrix x;                   ///< completed matrix.
  std::size_t iterations = 0;
  bool converged = false;
  double residual = 0.0;      ///< final relative residual on observed entries.
};

/// Complete `x_known` (values meaningful where mask == 1) to a low-rank
/// matrix.  `mask` entries must be 0 or 1 and at least one entry must be
/// observed.
SvtResult svt_complete(const Matrix& x_known, const Matrix& mask, const SvtOptions& options = {});

}  // namespace tafloc
