// Continuity and similarity structure (fingerprint property iii).
//
// The paper encodes them as matrix operators: ||X_D G||_F^2 penalizes
// differences between a link's RSS at *neighbouring locations along the
// link* (G acts on columns), and ||H X_D||_F^2 penalizes differences
// between *adjacent links* at the same location (H acts on rows).
// Because X_D is only the largely-distorted part, the operators are
// really sets of entry pairs restricted to the distorted support;
// LoLi-IR consumes them in that pairwise form:
//
//  - continuity: for each link, grid-neighbour pairs along the link's
//    dominant axis (west-east pairs for horizontal links, south-north
//    pairs for vertical ones);
//  - similarity: for each spatially adjacent parallel link pair, the
//    same-grid entry pair.
//
// Dense unmasked G and H builders matching the paper's notation are
// exposed too (tests + ablations; they assume horizontal links).
#pragma once

#include <cstddef>
#include <vector>

#include "tafloc/fingerprint/distortion.h"
#include "tafloc/linalg/matrix.h"
#include "tafloc/sim/deployment.h"
#include "tafloc/sim/grid.h"

namespace tafloc {

/// One quadratic penalty (X(row1, col1) - X(row2, col2))^2.
struct PairwiseTerm {
  std::size_t row1, col1;
  std::size_t row2, col2;
};

/// Continuity pairs for a deployment: per link, neighbouring-grid pairs
/// along the link's dominant axis.  When `mask` is non-null, only pairs
/// with BOTH entries in the distorted support are emitted (the paper's
/// X_D restriction).
std::vector<PairwiseTerm> continuity_pairs(const Deployment& deployment,
                                           const DistortionMask* mask = nullptr);

/// Similarity pairs for a deployment: per adjacent parallel link pair
/// (Deployment::adjacent_link_pairs), the same-grid entry pairs;
/// optionally restricted to the distorted support.
std::vector<PairwiseTerm> similarity_pairs(const Deployment& deployment,
                                           const DistortionMask* mask = nullptr);

/// Dense continuity operator G (N x P, one column per east-west
/// neighbour pair): column p has +1 at the pair's first grid and -1 at
/// the second, so ||X G||_F^2 sums squared differences along rows.
Matrix continuity_operator(const GridMap& grid);

/// Dense similarity operator H (Q x M, one row per consecutive link
/// pair): ||H X||_F^2 sums squared differences across adjacent rows.
Matrix similarity_operator(std::size_t num_links);

/// Sum of squared pairwise differences of `x` over `pairs` (the value
/// the operators above measure; used by tests and the objective).
double pairwise_energy(const Matrix& x, const std::vector<PairwiseTerm>& pairs);

/// Pairwise energy of the *correction field* x - anchor: sum over pairs
/// of ((x_a - x_b) - (anchor_a - anchor_b))^2.  LoLi-IR penalizes this
/// rather than the raw differences: the LRR prediction (anchor) carries
/// the systematic spatial gradient of the attenuation, and property iii
/// says the *remaining deviation* varies smoothly.
double pairwise_energy_relative(const Matrix& x, const Matrix& anchor,
                                const std::vector<PairwiseTerm>& pairs);

}  // namespace tafloc
