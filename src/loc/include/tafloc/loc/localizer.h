// Localizer -- the single interface every localization system in this
// repository implements (TafLoc's matcher, RTI, RASS).  Fig. 5's
// comparison harness drives all of them through this type.
#pragma once

#include <span>
#include <string>

#include "tafloc/rf/geometry.h"

namespace tafloc {

class Localizer {
 public:
  virtual ~Localizer() = default;

  /// Estimate the target position from one real-time RSS vector
  /// (one entry per link, same link order as the deployment).
  virtual Point2 localize(std::span<const double> rss) const = 0;

  /// Human-readable system name for reports.
  virtual std::string name() const = 0;

 protected:
  Localizer() = default;
  Localizer(const Localizer&) = default;
  Localizer& operator=(const Localizer&) = default;
};

}  // namespace tafloc
