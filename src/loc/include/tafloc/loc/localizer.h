// Localizer -- the single interface every localization system in this
// repository implements (TafLoc's matcher, RTI, RASS).  Fig. 5's
// comparison harness drives all of them through this type.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "tafloc/linalg/matrix.h"
#include "tafloc/rf/geometry.h"

namespace tafloc {

class Localizer {
 public:
  virtual ~Localizer() = default;

  /// Estimate the target position from one real-time RSS vector
  /// (one entry per link, same link order as the deployment).
  virtual Point2 localize(std::span<const double> rss) const = 0;

  /// Estimate positions for a batch of observations.  Overrides may
  /// process queries concurrently but must return exactly what
  /// element-wise localize() calls would; this default is sequential.
  virtual std::vector<Point2> localize_batch(std::span<const Vector> rss_batch) const {
    std::vector<Point2> out(rss_batch.size());
    for (std::size_t i = 0; i < rss_batch.size(); ++i) out[i] = localize(rss_batch[i]);
    return out;
  }

  /// Human-readable system name for reports.
  virtual std::string name() const = 0;

 protected:
  Localizer() = default;
  Localizer(const Localizer&) = default;
  Localizer& operator=(const Localizer&) = default;
};

}  // namespace tafloc
