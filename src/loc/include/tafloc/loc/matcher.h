// Fingerprint matchers: estimate the target location by comparing a
// real-time RSS vector Y against the columns of the fingerprint matrix
// (paper section 2, last paragraph).
//
// Three matchers, all implementing Localizer:
//  - NnMatcher:  nearest column, returns that grid's centre (coarse).
//  - KnnMatcher: inverse-distance weighted centroid of the k nearest
//    grids -- sub-grid ("fine-grained") estimates; TafLoc's default.
//  - BayesMatcher: Gaussian-likelihood posterior mean over all grids.
//
// Each matcher reads fingerprints through a ConstMatrixView, so it can
// either own its matrix (the Matrix constructors move one in) or
// borrow the caller's storage zero-copy (the view constructors; the
// caller must keep that storage alive and unreallocated -- see view.h).
// Fault tolerance: NnMatcher and KnnMatcher optionally consult a
// LinkHealth mask (attach_link_health).  Dead links are excluded from
// the distance scan and the remaining sum is renormalized by the
// surviving link count, so distances stay on the full-deployment scale
// and the match degrades instead of aborting on a NaN from a dead
// link.  With no mask attached -- or a mask with every link usable --
// the scan takes the exact pre-mask code path, so results are
// bit-identical to a maskless build.  BayesMatcher keeps the strict
// all-links contract (its posterior is calibrated against the full
// link set); route degraded traffic through NN/KNN.
//
// Two-tier scan: KnnMatcher can additionally attach a QuantizedTier
// (attach_quantized_tier).  Queries then rank every grid with an int8
// integer distance first and re-rank only a widened candidate prefix
// with the exact float kernel; the quantization error bound drives the
// widening, so the served top-k (indices, distances, weights) is
// provably bit-identical to the full float scan -- the tier changes
// speed, never results.  See quantized.h and the proof sketch in
// matcher.cpp.
#pragma once

#include <cstddef>
#include <span>

#include "tafloc/fingerprint/link_health.h"
#include "tafloc/fingerprint/quantized.h"
#include "tafloc/linalg/matrix.h"
#include "tafloc/loc/localizer.h"
#include "tafloc/sim/grid.h"

namespace tafloc {

class Counter;
class Histogram;
class MetricRegistry;

/// Per-query diagnostics of one KNN match, filled by
/// KnnMatcher::localize(rss, &stats) for the degraded serving path.
struct MatchStats {
  std::size_t links_used = 0;    ///< links contributing to the distance scan.
  std::size_t gated_out = 0;     ///< neighbours dropped by the spatial gate.
  bool centroid_fallback = false;  ///< weight sum degenerated; anchor returned.
};

/// Owning-or-borrowed fingerprint matrix: adopts a Matrix, or borrows a
/// caller-owned view.  Copies re-point the view at the copied storage;
/// moves keep it valid because std::vector moves preserve the heap
/// pointer.
class FingerprintRef {
 public:
  FingerprintRef() = default;
  explicit FingerprintRef(Matrix owned) : storage_(std::move(owned)), view_(storage_.view()) {}
  explicit FingerprintRef(ConstMatrixView borrowed) noexcept : view_(borrowed) {}

  FingerprintRef(const FingerprintRef& other)
      : storage_(other.storage_), view_(other.owning() ? storage_.view() : other.view_) {}
  FingerprintRef& operator=(const FingerprintRef& other) {
    if (this != &other) {
      storage_ = other.storage_;
      view_ = other.owning() ? storage_.view() : other.view_;
    }
    return *this;
  }
  FingerprintRef(FingerprintRef&&) noexcept = default;
  FingerprintRef& operator=(FingerprintRef&&) noexcept = default;

  ConstMatrixView view() const noexcept { return view_; }
  bool owning() const noexcept { return !storage_.empty(); }

 private:
  Matrix storage_;
  ConstMatrixView view_;
};

/// Nearest-neighbour matcher.
class NnMatcher : public Localizer {
 public:
  /// `fingerprints` is M x N with one column per grid of `grid`.
  NnMatcher(Matrix fingerprints, GridMap grid);
  /// Borrowing variant: the viewed storage must outlive the matcher.
  NnMatcher(ConstMatrixView fingerprints, GridMap grid);

  Point2 localize(std::span<const double> rss) const override;
  std::string name() const override { return "NN"; }

  /// Index of the best-matching grid (exposed for tests).
  std::size_t nearest_grid(std::span<const double> rss) const;

  /// Consult `health` (not owned; must outlive the matcher) when
  /// scanning: dead links are skipped and the distance renormalized.
  /// nullptr detaches (strict all-links contract, the default).
  void attach_link_health(const LinkHealth* health) noexcept { health_ = health; }

 private:
  FingerprintRef fingerprints_;
  GridMap grid_;
  const LinkHealth* health_ = nullptr;
};

/// k-nearest-neighbour matcher with inverse-distance weighting and a
/// spatial gate: fingerprint-space neighbours are only averaged into
/// the estimate if they are also spatially near the best match --
/// fingerprint collisions between far-apart cells would otherwise pull
/// the centroid to nowhere.
class KnnMatcher : public Localizer {
 public:
  /// k must be in [1, N].  With weighted == false the plain centroid of
  /// the surviving grid centres is returned.  spatial_gate_m <= 0
  /// disables the gate.
  KnnMatcher(Matrix fingerprints, GridMap grid, std::size_t k, bool weighted = true,
             double spatial_gate_m = 1.0);
  /// Borrowing variant: the viewed storage must outlive the matcher.
  KnnMatcher(ConstMatrixView fingerprints, GridMap grid, std::size_t k, bool weighted = true,
             double spatial_gate_m = 1.0);

  Point2 localize(std::span<const double> rss) const override;
  /// localize() that also reports per-query diagnostics (spatial-gate
  /// drops, link count, centroid fallback); stats may be nullptr.
  Point2 localize(std::span<const double> rss, MatchStats* stats) const;
  /// Parallelizes over queries (and the per-query column scan when the
  /// batch is small); same results as sequential localize() calls.
  std::vector<Point2> localize_batch(std::span<const Vector> rss_batch) const override;
  std::string name() const override;

  /// Consult `health` (not owned; must outlive the matcher) when
  /// scanning: dead links are skipped and the distance renormalized by
  /// the surviving link count.  nullptr detaches (strict contract).
  void attach_link_health(const LinkHealth* health) noexcept { health_ = health; }

  /// Use `tier` (not owned; must outlive the matcher) as the scan's
  /// first pass: an int8 integer distance ranks every grid, then the k
  /// nearest are re-ranked with the exact float kernel over a widened
  /// candidate set.  The widening is driven by the tier's quantization
  /// error bound, so the returned top-k -- indices AND distances, hence
  /// the inverse-distance weights -- is PROVABLY identical to the full
  /// float scan (the re-rank keeps doubling the candidate set until the
  /// bound certifies it, degenerating to the full exact scan in the
  /// worst case).  A tier that is not ready() or whose shape disagrees
  /// with the fingerprint view is ignored for that query -- faults and
  /// mid-update windows fall back to the float path, never abort.
  /// nullptr detaches (pure float scan, the pre-refactor behaviour).
  void attach_quantized_tier(const QuantizedTier* tier) noexcept { quantized_ = tier; }

  /// True when the next query would take the quantized pre-pass.
  bool quantized_active() const noexcept {
    return quantized_ != nullptr && quantized_->ready() &&
           quantized_->num_links() == fingerprints_.view().rows() &&
           quantized_->num_grids() == fingerprints_.view().cols();
  }

  /// Initial re-rank candidate budget, as a multiple of k (candidates =
  /// max(k * alpha, k + 8), capped at N).  Larger alpha means fewer
  /// widening rounds on noisy data at the cost of more exact distance
  /// evaluations per query.  alpha must be >= 1; results never depend
  /// on it (the widening proof does not either), only the speed does.
  void set_rerank_multiplier(std::size_t alpha);

  /// Indices of the k best-matching grids, best first (for tests).
  std::vector<std::size_t> nearest_grids(std::span<const double> rss) const;

  /// Process-wide count of per-query scratch (re)allocations: the
  /// distance/order buffers are thread_local and grow monotonically, so
  /// after a warm-up query this counter stays flat -- the Workspace-
  /// style proof that localize() performs zero heap allocations.
  static std::size_t scratch_allocations() noexcept;

  /// Point loc.knn.* metrics at `registry` (per-query latency
  /// histogram, query/batch counters, scratch-allocation mirror).  The
  /// metric handles are resolved once here -- the per-query path does a
  /// clock read plus relaxed atomics, never a registry lookup.  nullptr
  /// or a disabled registry detaches (zero overhead, same results).
  void attach_telemetry(MetricRegistry* registry);

 private:
  /// Column scan + partial sort into the thread-local scratch; returns
  /// the k best indices (a span into that scratch, valid until the next
  /// call on this thread).
  std::span<const std::size_t> nearest_in_scratch(std::span<const double> rss) const;

  FingerprintRef fingerprints_;
  GridMap grid_;
  std::size_t k_;
  bool weighted_;
  double spatial_gate_m_;
  const LinkHealth* health_ = nullptr;
  const QuantizedTier* quantized_ = nullptr;
  std::size_t rerank_alpha_ = 4;

  // Telemetry handles (all null when detached; see attach_telemetry).
  MetricRegistry* telemetry_ = nullptr;
  Histogram* query_hist_ = nullptr;
  Counter* query_counter_ = nullptr;
  Histogram* batch_hist_ = nullptr;
  Counter* batch_query_counter_ = nullptr;
  Counter* scratch_alloc_counter_ = nullptr;
  Counter* gated_counter_ = nullptr;
  Counter* fallback_counter_ = nullptr;
  Counter* prepass_counter_ = nullptr;
  Counter* widen_counter_ = nullptr;
};

/// Gaussian-likelihood matcher: p(Y | grid j) ~ exp(-||Y - x_j||^2 /
/// (2 sigma^2 M)); the estimate is the posterior-probability-weighted
/// centroid.
class BayesMatcher : public Localizer {
 public:
  BayesMatcher(Matrix fingerprints, GridMap grid, double sigma_db = 2.0);
  /// Borrowing variant: the viewed storage must outlive the matcher.
  BayesMatcher(ConstMatrixView fingerprints, GridMap grid, double sigma_db = 2.0);

  Point2 localize(std::span<const double> rss) const override;
  std::string name() const override { return "Bayes"; }

  /// Posterior over grids for a given observation (sums to 1; tests).
  Vector posterior(std::span<const double> rss) const;

 private:
  FingerprintRef fingerprints_;
  GridMap grid_;
  double sigma_;
};

}  // namespace tafloc
