// Fingerprint matchers: estimate the target location by comparing a
// real-time RSS vector Y against the columns of the fingerprint matrix
// (paper section 2, last paragraph).
//
// Three matchers, all implementing Localizer:
//  - NnMatcher:  nearest column, returns that grid's centre (coarse).
//  - KnnMatcher: inverse-distance weighted centroid of the k nearest
//    grids -- sub-grid ("fine-grained") estimates; TafLoc's default.
//  - BayesMatcher: Gaussian-likelihood posterior mean over all grids.
#pragma once

#include <cstddef>

#include "tafloc/linalg/matrix.h"
#include "tafloc/loc/localizer.h"
#include "tafloc/sim/grid.h"

namespace tafloc {

/// Nearest-neighbour matcher.
class NnMatcher : public Localizer {
 public:
  /// `fingerprints` is M x N with one column per grid of `grid`.
  NnMatcher(Matrix fingerprints, GridMap grid);

  Point2 localize(std::span<const double> rss) const override;
  std::string name() const override { return "NN"; }

  /// Index of the best-matching grid (exposed for tests).
  std::size_t nearest_grid(std::span<const double> rss) const;

 private:
  Matrix fingerprints_;
  GridMap grid_;
};

/// k-nearest-neighbour matcher with inverse-distance weighting and a
/// spatial gate: fingerprint-space neighbours are only averaged into
/// the estimate if they are also spatially near the best match --
/// fingerprint collisions between far-apart cells would otherwise pull
/// the centroid to nowhere.
class KnnMatcher : public Localizer {
 public:
  /// k must be in [1, N].  With weighted == false the plain centroid of
  /// the surviving grid centres is returned.  spatial_gate_m <= 0
  /// disables the gate.
  KnnMatcher(Matrix fingerprints, GridMap grid, std::size_t k, bool weighted = true,
             double spatial_gate_m = 1.0);

  Point2 localize(std::span<const double> rss) const override;
  /// Parallelizes over queries (and the per-query column scan when the
  /// batch is small); same results as sequential localize() calls.
  std::vector<Point2> localize_batch(std::span<const Vector> rss_batch) const override;
  std::string name() const override;

  /// Indices of the k best-matching grids, best first (for tests).
  std::vector<std::size_t> nearest_grids(std::span<const double> rss) const;

 private:
  Matrix fingerprints_;
  GridMap grid_;
  std::size_t k_;
  bool weighted_;
  double spatial_gate_m_;
};

/// Gaussian-likelihood matcher: p(Y | grid j) ~ exp(-||Y - x_j||^2 /
/// (2 sigma^2 M)); the estimate is the posterior-probability-weighted
/// centroid.
class BayesMatcher : public Localizer {
 public:
  BayesMatcher(Matrix fingerprints, GridMap grid, double sigma_db = 2.0);

  Point2 localize(std::span<const double> rss) const override;
  std::string name() const override { return "Bayes"; }

  /// Posterior over grids for a given observation (sums to 1; tests).
  Vector posterior(std::span<const double> rss) const;

 private:
  Matrix fingerprints_;
  GridMap grid_;
  double sigma_;
};

}  // namespace tafloc
