// Localization accuracy metrics (paper Fig. 5 reports the error CDF).
#pragma once

#include <span>
#include <vector>

#include "tafloc/loc/localizer.h"
#include "tafloc/rf/geometry.h"

namespace tafloc {

/// Euclidean localization error of one estimate.
double localization_error(Point2 estimate, Point2 truth) noexcept;

/// Errors of a localizer over paired (observation, truth) test points;
/// observations[i] is the RSS vector measured with the target at
/// truths[i].  Sizes must match and be non-zero.
std::vector<double> evaluate_localizer(const Localizer& localizer,
                                       std::span<const std::vector<double>> observations,
                                       std::span<const Point2> truths);

/// Summary statistics of an error sample.
struct ErrorSummary {
  double mean = 0.0;
  double median = 0.0;
  double p80 = 0.0;
  double p95 = 0.0;
  double max = 0.0;
};

/// Compute the summary; errors must be non-empty.
ErrorSummary summarize_errors(std::span<const double> errors);

}  // namespace tafloc
