// EmaTracker -- exponential smoothing of successive position estimates
// for the tracking examples (elderly care / intruder): device-free
// targets move slowly relative to the observation rate, so smoothing
// trades a little lag for much lower jitter.
#pragma once

#include <optional>

#include "tafloc/rf/geometry.h"

namespace tafloc {

class EmaTracker {
 public:
  /// alpha in (0, 1]: weight of the newest estimate (1 = no smoothing).
  explicit EmaTracker(double alpha = 0.5);

  /// Fold in a new raw estimate; returns the smoothed position.
  Point2 update(Point2 estimate);

  /// Latest smoothed position, if any update has been seen.
  std::optional<Point2> position() const noexcept { return state_; }

  /// Forget all history.
  void reset() noexcept { state_.reset(); }

 private:
  double alpha_;
  std::optional<Point2> state_;
};

}  // namespace tafloc
