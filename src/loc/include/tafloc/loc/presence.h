// PresenceDetector -- is anybody inside the monitored area?
//
// Device-free localization only makes sense once presence is
// established: an empty room should produce no location estimates.
// Presence is scored as the RMS of per-link signal dynamics (ambient
// minus current RSS); the detection threshold is calibrated from
// target-free observations (mean + k sigma of the empty-room score) so
// the false-positive rate is controlled without manual tuning, and a
// hysteresis band keeps the decision from chattering at the boundary.
#pragma once

#include <cstddef>
#include <span>

#include "tafloc/linalg/matrix.h"

namespace tafloc {

struct PresenceConfig {
  double sigma_multiplier = 4.0;  ///< threshold = mean + k * sigma of empty scores.
  double hysteresis_db = 0.3;     ///< release threshold sits this far below the set threshold.
  std::size_t min_calibration_samples = 5;
};

class PresenceDetector {
 public:
  /// `ambient` is the current target-free per-link RSS baseline.
  PresenceDetector(Vector ambient, const PresenceConfig& config = {});

  /// RMS signal dynamics of one observation against the baseline.
  double score(std::span<const double> rss) const;

  /// Feed one known-empty observation to the threshold calibration.
  void calibrate_empty(std::span<const double> rss);

  /// True once enough empty observations were seen.
  bool calibrated() const noexcept;

  /// Detection threshold (set level); throws if not calibrated.
  double threshold() const;

  /// Stateful detection with hysteresis: returns the current presence
  /// decision after folding in one observation.
  bool update(std::span<const double> rss);

  /// Stateless check against the set threshold (no hysteresis).
  bool is_present(std::span<const double> rss) const;

  /// Replace the ambient baseline (e.g. after a TafLoc update's fresh
  /// ambient scan); keeps the calibration.
  void set_ambient(Vector ambient);

  /// Latest decision (false before any update()).
  bool present() const noexcept { return present_; }

 private:
  Vector ambient_;
  PresenceConfig config_;
  // Streaming mean/variance of empty-room scores.
  std::size_t n_empty_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  bool present_ = false;
};

}  // namespace tafloc
