#include "tafloc/loc/matcher.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>

#include "tafloc/exec/thread_pool.h"
#include "tafloc/linalg/backend.h"
#include "tafloc/linalg/vector_ops.h"
#include "tafloc/telemetry/metrics.h"
#include "tafloc/telemetry/trace.h"
#include "tafloc/util/check.h"

namespace tafloc {

namespace {

void validate_shapes(ConstMatrixView fingerprints, const GridMap& grid) {
  TAFLOC_CHECK_ARG(!fingerprints.empty(), "fingerprint matrix must be non-empty");
  TAFLOC_CHECK_ARG(fingerprints.cols() == grid.num_cells(),
                   "fingerprint matrix must have one column per grid cell");
}

/// Squared Euclidean distance between the observation and a fingerprint
/// column (a strided view into the matrix -- no copy).
double column_distance_sq(ConstVectorView col, std::span<const double> rss) {
  const double* p = col.data();
  const std::size_t st = col.stride();
  double s = 0.0;
  for (std::size_t i = 0; i < col.size(); ++i) {
    const double d = rss[i] - p[i * st];
    s += d * d;
  }
  return s;
}

/// Masked variant: only usable links contribute, and the partial sum is
/// rescaled by `scale` = total / usable so distances stay on the same
/// scale as a full scan (the inverse-distance weights and the spatial
/// gate then behave consistently as links die).
double column_distance_sq_masked(ConstVectorView col, std::span<const double> rss,
                                 std::span<const std::uint8_t> usable, double scale) {
  const double* p = col.data();
  const std::size_t st = col.stride();
  double s = 0.0;
  for (std::size_t i = 0; i < col.size(); ++i) {
    if (usable[i] == 0) continue;
    const double d = rss[i] - p[i * st];
    s += d * d;
  }
  return s * scale;
}

/// Resolve the mask for one query: nullptr when the scan can take the
/// exact unmasked code path (no health attached, or every link usable),
/// so the all-healthy case stays bit-identical to a maskless build.
const LinkHealth* active_mask(const LinkHealth* health, ConstMatrixView fp) {
  if (health == nullptr || health->all_usable()) return nullptr;
  TAFLOC_CHECK_ARG(health->num_links() == fp.rows(),
                   "link health mask must have one entry per link");
  TAFLOC_CHECK_ARG(health->usable_count() > 0, "no usable links left to match against");
  return health;
}

/// Finite check restricted to usable links: a NaN parked on a dead link
/// is exactly the fault the mask exists for, not a contract violation.
bool usable_entries_finite(std::span<const double> rss, std::span<const std::uint8_t> usable) {
  for (std::size_t i = 0; i < rss.size(); ++i)
    if (usable[i] != 0 && !std::isfinite(rss[i])) return false;
  return true;
}

/// Per-thread KNN scratch: the distance and candidate-order buffers of
/// the column scan, plus the quantized pre-pass buffers (query levels,
/// padded mask, per-link residuals, integer distances and their order).
/// thread_local so concurrent localize_batch lanes never contend; grows
/// monotonically, so queries after the first on a thread allocate
/// nothing.
struct KnnScratch {
  std::vector<double> dist;
  std::vector<std::size_t> order;
  std::vector<std::int8_t> qvalues;
  std::vector<std::uint8_t> qmask;
  std::vector<double> qresidual;
  std::vector<std::uint64_t> qdist;
  std::vector<std::size_t> qorder;
};

KnnScratch& knn_scratch() {
  thread_local KnnScratch s;
  return s;
}

/// Process-wide scratch-allocation count.  A telemetry Counter rather
/// than a raw atomic: the static accessor stays a thin value() read,
/// and attached per-matcher registries mirror the same increments into
/// their own loc.knn.scratch_allocations series.
Counter& knn_scratch_allocation_counter() {
  static Counter counter;
  return counter;
}

/// Two-tier scan: int8 integer pre-pass over every grid, exact float
/// re-rank over a provably sufficient candidate prefix.
///
/// Why the result equals the full float scan, bit for bit:
///   * Let s be the tier's scale.  For a usable link i the query's
///     dequantization error e_i = residual[i] + s/2 bounds
///     | |y_i - x_ij| - s*|q_i - c_ij| | for every column j (stored
///     levels are exact to s/2 by construction; the query residual
///     already includes any clamp excess).  Summing in quadrature,
///     every column obeys  | ||dy|| - s*sqrt(qdist_j) | <= E  with
///     E = sqrt(sum e_i^2)  over usable links.
///   * The candidate prefix holds the m smallest integer distances, so
///     every EXCLUDED column j has s*sqrt(qdist_j) >= s*sqrt(T) where T
///     is the prefix's largest integer distance, hence an exact root
///     distance >= sqrt(mask_scale) * (s*sqrt(T) - E).
///   * If the k-th best EXACT distance inside the prefix is strictly
///     below that floor, no excluded column can enter the top-k: the
///     exact re-rank of the prefix IS the full scan's top-k.  Exact
///     distances come from the very same column_distance_sq kernels and
///     the sort uses the same (distance, index) tie rule, so indices,
///     distances, and therefore downstream weights are bit-identical.
///   * Otherwise the prefix doubles and the test repeats; at m == n the
///     "prefix" is the whole grid set and re-ranking it is literally
///     the exact scan, so termination is unconditional.  E is inflated
///     by one ulp-scale epsilon before use so float rounding in the
///     bookkeeping (never in the served distances) can only widen.
///
/// Fills s.order[0..k) with the winners and s.dist[j] with their exact
/// distances (other s.dist entries are stale).  Caller has resized
/// s.dist/s.order to n and validated shapes, finiteness, and the tier.
void quantized_scan(ConstMatrixView fp, std::span<const double> rss, const LinkHealth* mask,
                    const QuantizedTier& tier, std::size_t k, std::size_t alpha, KnnScratch& s,
                    Counter* widen_counter) {
  const std::size_t n = fp.cols();
  const std::size_t rows = fp.rows();
  const std::size_t padded = tier.padded_links();

  std::span<const std::uint8_t> usable{};
  double mask_scale = 1.0;
  const std::uint8_t* mask_bytes = nullptr;
  if (mask != nullptr) {
    usable = mask->usable_bytes();
    mask_scale = static_cast<double>(rows) / static_cast<double>(mask->usable_count());
    // Padded copy of the mask: pad bytes 0, so the masked integer
    // kernel ignores the padding just like it ignores dead links.
    s.qmask.assign(padded, 0);
    std::copy(usable.begin(), usable.end(), s.qmask.begin());
    mask_bytes = s.qmask.data();
  }
  tier.quantize_observation(rss, usable, s.qvalues, s.qresidual);

  const double scale = tier.scale();
  double err_sq = 0.0;
  for (std::size_t i = 0; i < rows; ++i) {
    if (mask != nullptr && usable[i] == 0) continue;
    const double e = s.qresidual[i] + 0.5 * scale;
    err_sq += e * e;
  }
  const double err = std::sqrt(err_sq) * (1.0 + 1e-9) + 1e-9;
  const double root_scale = std::sqrt(mask_scale);

  // Integer pre-pass over every grid.  Each distance is an independent
  // exact integer, so the parallel split cannot perturb anything.
  s.qdist.resize(n);
  s.qorder.resize(n);
  {
    TraceStage prepass_stage("loc.prepass");
    const KernelOps& ops = kernel_ops();
    const std::int8_t* query = s.qvalues.data();
    const std::size_t grain =
        std::max<std::size_t>(1, (std::size_t{1} << 15) / std::max<std::size_t>(padded, 1));
    ThreadPool::global().parallel_for(0, n, grain, [&](std::size_t j0, std::size_t j1) {
      if (mask_bytes == nullptr) {
        for (std::size_t j = j0; j < j1; ++j)
          s.qdist[j] = ops.dist_sq_i8(query, tier.cell_data(j), padded);
      } else {
        for (std::size_t j = j0; j < j1; ++j)
          s.qdist[j] = ops.dist_sq_i8_masked(query, tier.cell_data(j), mask_bytes, padded);
      }
    });
  }

  TraceStage rerank_stage("loc.rerank");
  std::size_t m = std::min(n, std::max(k * alpha, k + 8));
  while (true) {
    // Rank the integer distances with the same (value, index) tie rule
    // as the exact sort, take the m best as candidates.
    std::iota(s.qorder.begin(), s.qorder.end(), 0);
    std::partial_sort(s.qorder.begin(), s.qorder.begin() + static_cast<std::ptrdiff_t>(m),
                      s.qorder.end(), [&](std::size_t a, std::size_t b) {
                        return s.qdist[a] != s.qdist[b] ? s.qdist[a] < s.qdist[b] : a < b;
                      });
    // Exact re-rank: the same column kernels as the float scan, so the
    // surviving distances (and the weights derived from them) match a
    // full scan bit for bit.
    ThreadPool::global().parallel_for(0, m, 64, [&](std::size_t c0, std::size_t c1) {
      for (std::size_t c = c0; c < c1; ++c) {
        const std::size_t j = s.qorder[c];
        s.dist[j] = mask == nullptr
                        ? column_distance_sq(fp.col_view(j), rss)
                        : column_distance_sq_masked(fp.col_view(j), rss, usable, mask_scale);
      }
    });
    std::partial_sort(s.qorder.begin(), s.qorder.begin() + static_cast<std::ptrdiff_t>(k),
                      s.qorder.begin() + static_cast<std::ptrdiff_t>(m),
                      [&](std::size_t a, std::size_t b) {
                        return s.dist[a] != s.dist[b] ? s.dist[a] < s.dist[b] : a < b;
                      });
    if (m == n) break;  // re-ranked everything: this IS the exact scan
    const double threshold_root =
        scale * std::sqrt(static_cast<double>(s.qdist[s.qorder[m - 1]]));
    const double excluded_floor = root_scale * (threshold_root - err);
    const double kth_root = std::sqrt(s.dist[s.qorder[k - 1]]);
    if (kth_root < excluded_floor) break;  // proof holds; equality widens
    if (widen_counter != nullptr) widen_counter->add();
    m = std::min(n, m * 2);
  }
  std::copy(s.qorder.begin(), s.qorder.begin() + static_cast<std::ptrdiff_t>(k),
            s.order.begin());
}

}  // namespace

// ---------------- NnMatcher ----------------

NnMatcher::NnMatcher(Matrix fingerprints, GridMap grid)
    : fingerprints_(std::move(fingerprints)), grid_(std::move(grid)) {
  validate_shapes(fingerprints_.view(), grid_);
}

NnMatcher::NnMatcher(ConstMatrixView fingerprints, GridMap grid)
    : fingerprints_(fingerprints), grid_(std::move(grid)) {
  validate_shapes(fingerprints_.view(), grid_);
}

std::size_t NnMatcher::nearest_grid(std::span<const double> rss) const {
  const ConstMatrixView fp = fingerprints_.view();
  TAFLOC_CHECK_ARG(rss.size() == fp.rows(), "observation length mismatch");
  const LinkHealth* mask = active_mask(health_, fp);
  if (mask == nullptr) {
    TAFLOC_CHECK_ARG(all_finite(rss), "observation contains non-finite values");
    std::size_t best = 0;
    double best_d = column_distance_sq(fp.col_view(0), rss);
    for (std::size_t j = 1; j < fp.cols(); ++j) {
      const double d = column_distance_sq(fp.col_view(j), rss);
      if (d < best_d) {
        best_d = d;
        best = j;
      }
    }
    return best;
  }
  const std::span<const std::uint8_t> usable = mask->usable_bytes();
  TAFLOC_CHECK_ARG(usable_entries_finite(rss, usable),
                   "observation contains non-finite values on usable links");
  const double scale =
      static_cast<double>(fp.rows()) / static_cast<double>(mask->usable_count());
  std::size_t best = 0;
  double best_d = column_distance_sq_masked(fp.col_view(0), rss, usable, scale);
  for (std::size_t j = 1; j < fp.cols(); ++j) {
    const double d = column_distance_sq_masked(fp.col_view(j), rss, usable, scale);
    if (d < best_d) {
      best_d = d;
      best = j;
    }
  }
  return best;
}

Point2 NnMatcher::localize(std::span<const double> rss) const {
  return grid_.center(nearest_grid(rss));
}

// ---------------- KnnMatcher ----------------

KnnMatcher::KnnMatcher(Matrix fingerprints, GridMap grid, std::size_t k, bool weighted,
                       double spatial_gate_m)
    : fingerprints_(std::move(fingerprints)),
      grid_(std::move(grid)),
      k_(k),
      weighted_(weighted),
      spatial_gate_m_(spatial_gate_m) {
  validate_shapes(fingerprints_.view(), grid_);
  TAFLOC_CHECK_ARG(k_ >= 1 && k_ <= fingerprints_.view().cols(),
                   "k must be in [1, number of grids]");
}

KnnMatcher::KnnMatcher(ConstMatrixView fingerprints, GridMap grid, std::size_t k, bool weighted,
                       double spatial_gate_m)
    : fingerprints_(fingerprints),
      grid_(std::move(grid)),
      k_(k),
      weighted_(weighted),
      spatial_gate_m_(spatial_gate_m) {
  validate_shapes(fingerprints_.view(), grid_);
  TAFLOC_CHECK_ARG(k_ >= 1 && k_ <= fingerprints_.view().cols(),
                   "k must be in [1, number of grids]");
}

std::string KnnMatcher::name() const {
  return (weighted_ ? "WKNN-k" : "KNN-k") + std::to_string(k_);
}

std::size_t KnnMatcher::scratch_allocations() noexcept {
  return static_cast<std::size_t>(knn_scratch_allocation_counter().value());
}

void KnnMatcher::attach_telemetry(MetricRegistry* registry) {
  telemetry_ = (registry != nullptr && registry->enabled()) ? registry : nullptr;
  query_hist_ = registry_histogram(telemetry_, "loc.knn.query_seconds");
  query_counter_ = registry_counter(telemetry_, "loc.knn.queries");
  batch_hist_ = registry_histogram(telemetry_, "loc.knn.batch_seconds");
  batch_query_counter_ = registry_counter(telemetry_, "loc.knn.batch_queries");
  scratch_alloc_counter_ = registry_counter(telemetry_, "loc.knn.scratch_allocations");
  gated_counter_ = registry_counter(telemetry_, "loc.knn.gated_neighbors");
  fallback_counter_ = registry_counter(telemetry_, "loc.knn.centroid_fallbacks");
  prepass_counter_ = registry_counter(telemetry_, "loc.knn.prepass_queries");
  widen_counter_ = registry_counter(telemetry_, "loc.knn.rerank_widenings");
}

void KnnMatcher::set_rerank_multiplier(std::size_t alpha) {
  TAFLOC_CHECK_ARG(alpha >= 1, "re-rank multiplier must be at least 1");
  rerank_alpha_ = alpha;
}

std::span<const std::size_t> KnnMatcher::nearest_in_scratch(std::span<const double> rss) const {
  const ConstMatrixView fp = fingerprints_.view();
  TAFLOC_CHECK_ARG(rss.size() == fp.rows(), "observation length mismatch");
  const LinkHealth* mask = active_mask(health_, fp);
  if (mask == nullptr) {
    TAFLOC_CHECK_ARG(all_finite(rss), "observation contains non-finite values");
  } else {
    TAFLOC_CHECK_ARG(usable_entries_finite(rss, mask->usable_bytes()),
                     "observation contains non-finite values on usable links");
  }
  const std::size_t n = fp.cols();
  KnnScratch& s = knn_scratch();
  // The quantized tier is consulted per query: a tier that vanished
  // (detach), went not-ready (non-finite entries mid-fault), or changed
  // shape (borrowed view re-pointed before re-attach) silently falls
  // back to the float scan for this query.
  const QuantizedTier* tier = quantized_;
  if (tier != nullptr &&
      (!tier->ready() || tier->num_links() != fp.rows() || tier->num_grids() != n))
    tier = nullptr;
  const bool scratch_grown =
      s.dist.capacity() < n || s.order.capacity() < n ||
      (tier != nullptr &&
       (s.qvalues.capacity() < tier->padded_links() || s.qmask.capacity() < tier->padded_links() ||
        s.qresidual.capacity() < fp.rows() || s.qdist.capacity() < n || s.qorder.capacity() < n));
  if (scratch_grown) {
    knn_scratch_allocation_counter().add();
    if (scratch_alloc_counter_ != nullptr) scratch_alloc_counter_->add();
  }
  s.dist.resize(n);
  s.order.resize(n);
  if (tier != nullptr) {
    if (prepass_counter_ != nullptr) prepass_counter_->add();
    quantized_scan(fp, rss, mask, *tier, k_, rerank_alpha_, s, widen_counter_);
    return {s.order.data(), k_};
  }
  TraceStage scan_stage("loc.scan");
  std::vector<double>& dist = s.dist;
  // Each distance is an independent scalar: the scan parallelizes over
  // columns without changing any accumulation order.
  const std::size_t grain =
      std::max<std::size_t>(1, (std::size_t{1} << 14) / std::max<std::size_t>(fp.rows(), 1));
  if (mask == nullptr) {
    ThreadPool::global().parallel_for(0, n, grain, [&](std::size_t j0, std::size_t j1) {
      for (std::size_t j = j0; j < j1; ++j) dist[j] = column_distance_sq(fp.col_view(j), rss);
    });
  } else {
    const std::span<const std::uint8_t> usable = mask->usable_bytes();
    const double scale =
        static_cast<double>(fp.rows()) / static_cast<double>(mask->usable_count());
    ThreadPool::global().parallel_for(0, n, grain, [&](std::size_t j0, std::size_t j1) {
      for (std::size_t j = j0; j < j1; ++j)
        dist[j] = column_distance_sq_masked(fp.col_view(j), rss, usable, scale);
    });
  }
  std::iota(s.order.begin(), s.order.end(), 0);
  // Index tie-break: duplicate fingerprint columns produce exactly equal
  // distances, and std::partial_sort is not stable -- without the tie
  // rule the winning neighbour set would be implementation-defined.
  std::partial_sort(s.order.begin(), s.order.begin() + static_cast<std::ptrdiff_t>(k_),
                    s.order.end(), [&](std::size_t a, std::size_t b) {
                      return dist[a] != dist[b] ? dist[a] < dist[b] : a < b;
                    });
  return {s.order.data(), k_};
}

std::vector<std::size_t> KnnMatcher::nearest_grids(std::span<const double> rss) const {
  const std::span<const std::size_t> nearest = nearest_in_scratch(rss);
  return {nearest.begin(), nearest.end()};
}

Point2 KnnMatcher::localize(std::span<const double> rss) const {
  return localize(rss, nullptr);
}

Point2 KnnMatcher::localize(std::span<const double> rss, MatchStats* stats) const {
  // Cached-handle timing, not a ScopedSpan: per-query overhead while
  // attached is two clock reads plus relaxed atomics, no registry
  // lookup; while detached, a single null test.
  const std::uint64_t t0 = telemetry_ != nullptr ? telemetry_->now_ns() : 0;
  const std::span<const std::size_t> nearest = nearest_in_scratch(rss);
  const std::vector<double>& dist = knn_scratch().dist;
  const Point2 anchor = grid_.center(nearest.front());
  double wx = 0.0, wy = 0.0, wsum = 0.0;
  std::size_t gated = 0;
  for (std::size_t j : nearest) {
    const Point2 c = grid_.center(j);
    // Gate out fingerprint collisions: neighbours in signal space that
    // are far from the best match in physical space.
    if (spatial_gate_m_ > 0.0 && distance(c, anchor) > spatial_gate_m_) {
      ++gated;
      continue;
    }
    double w = 1.0;
    if (weighted_) {
      // Reuse the scan's stored distance: sqrt of the same double is
      // bit-identical to recomputing the column scan.
      const double d = std::sqrt(dist[j]);
      w = 1.0 / (d + 1e-6);
    }
    wx += w * c.x;
    wy += w * c.y;
    wsum += w;
  }
  // wsum can degenerate even though the anchor always passes the gate:
  // a finite-but-huge observation overflows the squared distance to
  // +inf and every weight underflows to 0.  The weighted centroid would
  // then be NaN/NaN -- fall back to the anchor instead.
  const bool fallback = !(wsum > 0.0) || !std::isfinite(wsum);
  if (stats != nullptr) {
    const LinkHealth* mask = active_mask(health_, fingerprints_.view());
    stats->links_used = mask == nullptr ? fingerprints_.view().rows() : mask->usable_count();
    stats->gated_out = gated;
    stats->centroid_fallback = fallback;
  }
  if (telemetry_ != nullptr) {
    query_hist_->observe(static_cast<double>(telemetry_->now_ns() - t0) * 1e-9);
    query_counter_->add();
    if (gated > 0) gated_counter_->add(gated);
    if (fallback) fallback_counter_->add();
  }
  if (fallback) return anchor;
  return {wx / wsum, wy / wsum};
}

std::vector<Point2> KnnMatcher::localize_batch(std::span<const Vector> rss_batch) const {
  const std::uint64_t t0 = telemetry_ != nullptr ? telemetry_->now_ns() : 0;
  std::vector<Point2> out(rss_batch.size());
  // One query per chunk: each output slot is written by exactly one
  // lane, and the inner column scan runs inline inside pool tasks (each
  // lane on its own thread-local scratch).
  ThreadPool::global().parallel_for(0, rss_batch.size(), 1, [&](std::size_t b0, std::size_t b1) {
    for (std::size_t i = b0; i < b1; ++i) out[i] = localize(rss_batch[i]);
  });
  if (telemetry_ != nullptr) {
    batch_hist_->observe(static_cast<double>(telemetry_->now_ns() - t0) * 1e-9);
    batch_query_counter_->add(rss_batch.size());
  }
  return out;
}

// ---------------- BayesMatcher ----------------

BayesMatcher::BayesMatcher(Matrix fingerprints, GridMap grid, double sigma_db)
    : fingerprints_(std::move(fingerprints)), grid_(std::move(grid)), sigma_(sigma_db) {
  validate_shapes(fingerprints_.view(), grid_);
  TAFLOC_CHECK_ARG(sigma_ > 0.0, "likelihood sigma must be positive");
}

BayesMatcher::BayesMatcher(ConstMatrixView fingerprints, GridMap grid, double sigma_db)
    : fingerprints_(fingerprints), grid_(std::move(grid)), sigma_(sigma_db) {
  validate_shapes(fingerprints_.view(), grid_);
  TAFLOC_CHECK_ARG(sigma_ > 0.0, "likelihood sigma must be positive");
}

Vector BayesMatcher::posterior(std::span<const double> rss) const {
  const ConstMatrixView fp = fingerprints_.view();
  TAFLOC_CHECK_ARG(rss.size() == fp.rows(), "observation length mismatch");
  TAFLOC_CHECK_ARG(all_finite(rss), "observation contains non-finite values");
  const std::size_t n = fp.cols();
  const double m = static_cast<double>(fp.rows());
  Vector log_lik(n);
  double max_ll = -std::numeric_limits<double>::infinity();
  for (std::size_t j = 0; j < n; ++j) {
    log_lik[j] = -column_distance_sq(fp.col_view(j), rss) / (2.0 * sigma_ * sigma_ * m);
    max_ll = std::max(max_ll, log_lik[j]);
  }
  double z = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    log_lik[j] = std::exp(log_lik[j] - max_ll);  // now an unnormalized probability
    z += log_lik[j];
  }
  for (double& p : log_lik) p /= z;
  return log_lik;
}

Point2 BayesMatcher::localize(std::span<const double> rss) const {
  const Vector post = posterior(rss);
  double wx = 0.0, wy = 0.0;
  for (std::size_t j = 0; j < post.size(); ++j) {
    const Point2 c = grid_.center(j);
    wx += post[j] * c.x;
    wy += post[j] * c.y;
  }
  return {wx, wy};
}

}  // namespace tafloc
