#include "tafloc/loc/presence.h"

#include <cmath>

#include "tafloc/util/check.h"

namespace tafloc {

PresenceDetector::PresenceDetector(Vector ambient, const PresenceConfig& config)
    : ambient_(std::move(ambient)), config_(config) {
  TAFLOC_CHECK_ARG(!ambient_.empty(), "presence detector needs at least one link");
  TAFLOC_CHECK_ARG(config.sigma_multiplier > 0.0, "sigma multiplier must be positive");
  TAFLOC_CHECK_ARG(config.hysteresis_db >= 0.0, "hysteresis must be non-negative");
  TAFLOC_CHECK_ARG(config.min_calibration_samples >= 2,
                   "threshold calibration needs at least two samples");
}

double PresenceDetector::score(std::span<const double> rss) const {
  TAFLOC_CHECK_ARG(rss.size() == ambient_.size(), "observation length mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < rss.size(); ++i) {
    const double d = ambient_[i] - rss[i];
    s += d * d;
  }
  return std::sqrt(s / static_cast<double>(rss.size()));
}

void PresenceDetector::calibrate_empty(std::span<const double> rss) {
  const double x = score(rss);
  ++n_empty_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_empty_);
  m2_ += delta * (x - mean_);
}

bool PresenceDetector::calibrated() const noexcept {
  return n_empty_ >= config_.min_calibration_samples;
}

double PresenceDetector::threshold() const {
  TAFLOC_CHECK_STATE(calibrated(), "presence threshold requires calibration samples");
  const double variance = m2_ / static_cast<double>(n_empty_ - 1);
  return mean_ + config_.sigma_multiplier * std::sqrt(variance);
}

bool PresenceDetector::is_present(std::span<const double> rss) const {
  return score(rss) > threshold();
}

bool PresenceDetector::update(std::span<const double> rss) {
  const double x = score(rss);
  const double set_level = threshold();
  const double release_level = set_level - config_.hysteresis_db;
  if (present_) {
    if (x < release_level) present_ = false;
  } else {
    if (x > set_level) present_ = true;
  }
  return present_;
}

void PresenceDetector::set_ambient(Vector ambient) {
  TAFLOC_CHECK_ARG(ambient.size() == ambient_.size(), "ambient vector size must not change");
  ambient_ = std::move(ambient);
}

}  // namespace tafloc
