#include "tafloc/loc/tracker.h"

#include "tafloc/util/check.h"

namespace tafloc {

EmaTracker::EmaTracker(double alpha) : alpha_(alpha) {
  TAFLOC_CHECK_ARG(alpha > 0.0 && alpha <= 1.0, "EMA alpha must be in (0, 1]");
}

Point2 EmaTracker::update(Point2 estimate) {
  if (!state_) {
    state_ = estimate;
  } else {
    state_ = Point2{alpha_ * estimate.x + (1.0 - alpha_) * state_->x,
                    alpha_ * estimate.y + (1.0 - alpha_) * state_->y};
  }
  return *state_;
}

}  // namespace tafloc
