#include "tafloc/loc/metrics.h"

#include "tafloc/util/check.h"
#include "tafloc/util/stats.h"

namespace tafloc {

double localization_error(Point2 estimate, Point2 truth) noexcept {
  return distance(estimate, truth);
}

std::vector<double> evaluate_localizer(const Localizer& localizer,
                                       std::span<const std::vector<double>> observations,
                                       std::span<const Point2> truths) {
  TAFLOC_CHECK_ARG(observations.size() == truths.size(),
                   "observations and truths must pair up");
  TAFLOC_CHECK_ARG(!observations.empty(), "evaluation needs at least one test point");
  std::vector<double> errors;
  errors.reserve(observations.size());
  for (std::size_t i = 0; i < observations.size(); ++i) {
    const Point2 estimate = localizer.localize(observations[i]);
    errors.push_back(localization_error(estimate, truths[i]));
  }
  return errors;
}

ErrorSummary summarize_errors(std::span<const double> errors) {
  TAFLOC_CHECK_ARG(!errors.empty(), "cannot summarize an empty error sample");
  ErrorSummary s;
  s.mean = mean(errors);
  s.median = percentile(errors, 50.0);
  s.p80 = percentile(errors, 80.0);
  s.p95 = percentile(errors, 95.0);
  s.max = percentile(errors, 100.0);
  return s;
}

}  // namespace tafloc
