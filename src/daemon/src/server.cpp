#include "tafloc/daemon/server.h"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "tafloc/util/check.h"
#include "tafloc/util/log.h"

namespace tafloc::daemon {

// -- ZoneManager --

ZoneManager::ZoneManager(const DaemonConfig& config) : jobs_("taflocd", 1) {
  TAFLOC_CHECK_ARG(!config.zones.empty(), "daemon needs at least one zone");
  zones_.reserve(config.zones.size());
  for (const ZoneConfig& zc : config.zones) {
    zones_.push_back(std::make_unique<Zone>(zc, &jobs_));
  }
}

ZoneManager::~ZoneManager() {
  // Zones reference jobs_; make sure no solve is in flight before the
  // members destruct (Zone's own dtor also waits, belt and braces).
  jobs_.shutdown();
}

std::size_t ZoneManager::start_all() {
  std::size_t serving = 0;
  for (auto& zone : zones_) {
    try {
      zone->start();
      ++serving;
    } catch (const std::exception& e) {
      TAFLOC_LOG_ERROR << "zone '" << zone->name() << "' failed to start: " << e.what();
      zone->drain();
    }
  }
  return serving;
}

Zone* ZoneManager::find(const std::string& name) {
  for (auto& zone : zones_) {
    if (zone->name() == name) return zone.get();
  }
  return nullptr;
}

void ZoneManager::poll_all() {
  for (auto& zone : zones_) zone->poll();
}

void ZoneManager::drain_all() {
  for (auto& zone : zones_) zone->drain();
}

std::string ZoneManager::reload(const DaemonConfig& fresh) {
  std::size_t applied = 0;
  std::string ignored;
  for (const ZoneConfig& zc : fresh.zones) {
    if (Zone* zone = find(zc.name)) {
      zone->apply_scheduler_config(zc.scheduler);
      ++applied;
    } else {
      ignored += (ignored.empty() ? "" : ", ") + zc.name;
    }
  }
  std::string summary = "reload: scheduler config applied to " + std::to_string(applied) +
                        " zone(s)";
  if (!ignored.empty()) summary += "; new zones ignored (restart required): " + ignored;
  for (const auto& zone : zones_) {
    if (fresh.find_zone(zone->name()) == nullptr) {
      summary += "; zone '" + zone->name() + "' no longer in config (kept until restart)";
    }
  }
  return summary;
}

namespace {

void write_text_file(const std::string& path, const std::string& body) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("telemetry export: cannot open " + path);
  out << body;
  if (!out) throw std::runtime_error("telemetry export: write failed for " + path);
}

}  // namespace

std::size_t ZoneManager::export_telemetry(const std::string& dir) const {
  namespace fs = std::filesystem;
  fs::create_directories(dir);
  std::size_t written = 0;
  for (const auto& zone : zones_) {
    write_text_file((fs::path(dir) / (zone->name() + ".jsonl")).string(),
                    zone->telemetry_json());
    ++written;
    // Trace artifacts only when the zone captured anything -- a zone
    // with tracing off leaves no empty files behind.
    const Tracer& tracer = zone->tracer();
    if (tracer.ring().pushed() > 0) {
      write_text_file((fs::path(dir) / (zone->name() + ".trace.jsonl")).string(),
                      tracer.ring_json());
      ++written;
    }
    if (tracer.slow_log().size() > 0) {
      write_text_file((fs::path(dir) / (zone->name() + ".slow.jsonl")).string(),
                      tracer.slow_json());
      ++written;
    }
  }
  return written;
}

// -- ControlServer --

namespace {

void set_nonblocking_fd(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw std::runtime_error("control server: fcntl(O_NONBLOCK) failed");
  }
}

}  // namespace

ControlServer::ControlServer(ZoneManager& zones, EventLoop& loop, std::string socket_path)
    : zones_(zones), loop_(loop), socket_path_(std::move(socket_path)) {
  TAFLOC_CHECK_ARG(!socket_path_.empty(), "control server needs a socket path");
}

ControlServer::~ControlServer() { close(); }

void ControlServer::open() {
  TAFLOC_CHECK_STATE(listen_fd_ < 0, "control server already open");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path_.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("control server: socket path too long: " + socket_path_);
  }
  std::memcpy(addr.sun_path, socket_path_.c_str(), socket_path_.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::runtime_error(std::string("control server: socket() failed: ") +
                             std::strerror(errno));
  }
  ::unlink(socket_path_.c_str());  // replace a stale socket from a dead daemon.
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error("control server: bind(" + socket_path_ +
                             ") failed: " + std::strerror(err));
  }
  if (::listen(fd, 16) != 0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error(std::string("control server: listen() failed: ") +
                             std::strerror(err));
  }
  set_nonblocking_fd(fd);
  listen_fd_ = fd;
  loop_.add_fd(listen_fd_, POLLIN, [this](short revents) { handle_accept(revents); });
  TAFLOC_LOG_INFO << "taflocd listening on " << socket_path_;
}

void ControlServer::stop_admissions() {
  if (listen_fd_ < 0) return;
  loop_.remove_fd(listen_fd_);
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::unlink(socket_path_.c_str());
}

void ControlServer::close() {
  stop_admissions();
  while (!conns_.empty()) close_connection(conns_.begin()->first);
}

void ControlServer::handle_accept(short revents) {
  if ((revents & POLLIN) == 0) return;
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ECONNABORTED) return;
      TAFLOC_LOG_WARN << "control server: accept failed: " << std::strerror(errno);
      return;
    }
    try {
      set_nonblocking_fd(fd);
      conns_.emplace(fd, Connection{});
      loop_.add_fd(fd, POLLIN, [this, fd](short re) { handle_connection(fd, re); });
    } catch (const std::exception& e) {
      TAFLOC_LOG_WARN << "control server: dropping connection: " << e.what();
      conns_.erase(fd);
      ::close(fd);
    }
  }
}

void ControlServer::handle_connection(int fd, short revents) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  if ((revents & (POLLERR | POLLHUP | POLLNVAL)) != 0 && (revents & POLLIN) == 0) {
    close_connection(fd);
    return;
  }

  char buf[4096];
  bool peer_gone = false;
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n > 0) {
      it->second.buffer.append(buf, static_cast<std::size_t>(n));
      it->second.received_ns = trace_detail::steady_ns();
      if (it->second.buffer.size() > kMaxConnectionBuffer) {
        TAFLOC_LOG_WARN << "control server: connection exceeded buffer cap; closing";
        close_connection(fd);
        return;
      }
      continue;
    }
    if (n == 0) {  // peer closed; serve whatever is already buffered.
      peer_gone = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    close_connection(fd);
    return;
  }

  // Serve every complete packet in the buffer.
  for (;;) {
    storage::Frame frame;
    std::string error;
    const ExtractResult result = extract_packet(it->second.buffer, frame, &error);
    if (result == ExtractResult::kNeedMore) break;
    if (result == ExtractResult::kCorrupt) {
      // Framing is lost on this byte stream: one error packet (best
      // effort -- the CRC already failed, the peer may be gone), then
      // close.  Other connections and every zone are unaffected.
      TAFLOC_LOG_WARN << "control server: corrupt packet (" << error << "); closing connection";
      ErrorResponse res;
      res.status = WireStatus::kBadRequest;
      res.message = "corrupt frame: " + error;
      (void)send_all(fd, res.encode(0));
      close_connection(fd);
      return;
    }
    const std::string response = dispatch(frame, it->second.received_ns);
    if (!send_all(fd, response)) {
      close_connection(fd);
      return;
    }
    // A shutdown packet's handler runs after its response is on the
    // wire; it may have closed every connection (including this one).
    it = conns_.find(fd);
    if (it == conns_.end()) return;
  }
  if (peer_gone) close_connection(fd);
}

void ControlServer::close_connection(int fd) {
  loop_.remove_fd(fd);
  conns_.erase(fd);
  ::close(fd);
}

bool ControlServer::send_all(int fd, std::string_view bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + sent, bytes.size() - sent);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Responses are small; give the kernel a moment to drain.
      struct pollfd pfd{fd, POLLOUT, 0};
      if (::poll(&pfd, 1, 1000) <= 0) return false;
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

std::string ControlServer::dispatch(const storage::Frame& frame, std::uint64_t received_ns) {
  const std::uint64_t seq = frame.seq;
  try {
    switch (static_cast<PacketType>(frame.type)) {
      case PacketType::kLocalizeRequest: {
        const LocalizeRequest req = LocalizeRequest::decode(frame);
        Zone* zone = zones_.find(req.zone);
        LocalizeResponse res;
        if (zone == nullptr) {
          res.status = WireStatus::kUnknownZone;
          res.message = "no zone '" + req.zone + "'";
        } else if (!zone->admissible()) {
          zone->note_shed();
          res.status = WireStatus::kNotServing;
          res.message = std::string("zone is ") + zone_state_name(zone->state());
        } else {
          const std::uint64_t queue_wait_ns =
              received_ns > 0 ? trace_detail::steady_ns() - received_ns : 0;
          const TraceContext trace{req.trace_id, req.trace_sampled};
          const TafLocSystem::DegradedResult r = zone->localize(req.rss, trace, queue_wait_ns);
          res.x = r.point.x;
          res.y = r.point.y;
          res.confidence = r.confidence;
          res.served = r.served;
          res.degraded = r.degraded;
          res.links_used = r.links_used;
        }
        return res.encode(seq);
      }
      case PacketType::kAmbientRequest: {
        const AmbientRequest req = AmbientRequest::decode(frame);
        Zone* zone = zones_.find(req.zone);
        AmbientResponse res;
        if (zone == nullptr) {
          res.status = WireStatus::kUnknownZone;
          res.message = "no zone '" + req.zone + "'";
        } else {
          const Zone::AmbientResult r = zone->observe_ambient(req.ambient, req.t_days);
          if (!r.accepted) {
            res.status = WireStatus::kNotServing;
            res.message = std::string("zone is ") + zone_state_name(zone->state());
          }
          res.accepted = r.accepted;
          res.sample_accepted = r.sample_accepted;
          res.triggered = r.triggered;
          res.staleness_db = r.staleness_db;
        }
        return res.encode(seq);
      }
      case PacketType::kBatchIngestRequest: {
        const BatchIngestRequest req = BatchIngestRequest::decode(frame);
        Zone* zone = zones_.find(req.zone);
        BatchIngestResponse res;
        if (zone == nullptr) {
          res.status = WireStatus::kUnknownZone;
          res.message = "no zone '" + req.zone + "'";
        } else if (!zone->admissible()) {
          zone->note_shed();
          res.status = WireStatus::kNotServing;
          res.message = std::string("zone is ") + zone_state_name(zone->state());
        } else {
          const Zone::IngestResult r = zone->ingest_batch(req.batch);
          res.readings = r.readings;
          res.dups_dropped = r.dups_dropped;
          res.stale_dropped = r.stale_dropped;
          res.bad_readings = r.bad_readings;
          res.rounds_completed = r.rounds_completed;
          res.gated_ambient = r.gated_ambient;
          res.admitted_queries = r.admitted_queries;
          res.last_motion_db = r.last_motion_db;
          res.queries.reserve(r.queries.size());
          for (const Zone::IngestResult::Query& q : r.queries) {
            IngestQuery wq;
            wq.t_days = q.t_days;
            wq.motion_db = q.motion_db;
            wq.x = q.result.point.x;
            wq.y = q.result.point.y;
            wq.confidence = q.result.confidence;
            wq.served = q.result.served;
            wq.degraded = q.result.degraded;
            wq.links_used = q.result.links_used;
            res.queries.push_back(wq);
          }
        }
        return res.encode(seq);
      }
      case PacketType::kResurveyRequest: {
        const ResurveyRequest req = ResurveyRequest::decode(frame);
        Zone* zone = zones_.find(req.zone);
        ResurveyResponse res;
        if (zone == nullptr) {
          res.status = WireStatus::kUnknownZone;
          res.message = "no zone '" + req.zone + "'";
        } else {
          res.accepted = zone->request_resurvey(req.t_days);
          if (!res.accepted) {
            res.message = zone->update_in_flight()
                              ? "an update is already in flight"
                              : std::string("zone is ") + zone_state_name(zone->state());
          }
        }
        return res.encode(seq);
      }
      case PacketType::kStatusRequest: {
        const StatusRequest req = StatusRequest::decode(frame);
        StatusResponse res;
        if (!req.zone.empty() && zones_.find(req.zone) == nullptr) {
          res.status = WireStatus::kUnknownZone;
          res.message = "no zone '" + req.zone + "'";
          return res.encode(seq);
        }
        for (const auto& zone : zones_.zones()) {
          if (!req.zone.empty() && zone->name() != req.zone) continue;
          const Zone::Status s = zone->status();
          ZoneStatus z;
          z.zone = zone->name();
          z.state = zone_state_name(s.state);
          z.queries = s.queries;
          z.updates_committed = s.updates_committed;
          z.updates_failed = s.updates_failed;
          z.update_in_flight = s.update_in_flight;
          z.staleness_db = s.staleness_db;
          z.clock_days = s.clock_days;
          z.wal_sequence = s.wal_sequence;
          z.kernel_backend = s.kernel_backend;
          z.quantized_tier = s.quantized_tier;
          z.slo_ok = s.slo_ok;
          z.slo_violated = s.slo_violated;
          z.slo_budget_remaining = s.slo_budget_remaining;
          z.slo_degraded = s.slo_degraded;
          z.last_error = s.last_error;
          res.zones.push_back(std::move(z));
        }
        return res.encode(seq);
      }
      case PacketType::kProbeRequest: {
        const ProbeRequest req = ProbeRequest::decode(frame);
        Zone* zone = zones_.find(req.zone);
        ProbeResponse res;
        if (zone == nullptr) {
          res.status = WireStatus::kUnknownZone;
          res.message = "no zone '" + req.zone + "'";
        } else if (!zone->admissible()) {
          zone->note_shed();
          res.status = WireStatus::kNotServing;
          res.message = std::string("zone is ") + zone_state_name(zone->state());
        } else {
          const Zone::ProbeResult r = zone->probe();
          res.truth_x = r.truth.x;
          res.truth_y = r.truth.y;
          res.estimate_x = r.estimate.x;
          res.estimate_y = r.estimate.y;
          res.error_m = r.error_m;
          res.degraded = r.degraded;
        }
        return res.encode(seq);
      }
      case PacketType::kMetricsRequest: {
        const MetricsRequest req = MetricsRequest::decode(frame);
        MetricsResponse res;
        if (!req.zone.empty() && zones_.find(req.zone) == nullptr) {
          res.status = WireStatus::kUnknownZone;
          res.message = "no zone '" + req.zone + "'";
          return res.encode(seq);
        }
        for (const auto& zone : zones_.zones()) {
          if (!req.zone.empty() && zone->name() != req.zone) continue;
          const MetricRegistry::Snapshot snap = zone->system().telemetry().snapshot();
          ZoneMetrics m;
          m.zone = zone->name();
          m.state = zone_state_name(zone->state());
          m.uptime_ns = snap.uptime_ns;
          m.spans_recorded = snap.spans_recorded;
          m.spans_dropped = snap.spans_dropped;
          m.counters = snap.counters;
          m.gauges = snap.gauges;
          m.histograms.reserve(snap.histograms.size());
          for (const MetricRegistry::HistogramSummary& h : snap.histograms) {
            m.histograms.push_back(
                WireHistogram{h.name, h.count, h.sum, h.min, h.max, h.p50, h.p95, h.p99});
          }
          res.zones.push_back(std::move(m));
        }
        return res.encode(seq);
      }
      case PacketType::kTraceRequest: {
        const TraceRequest req = TraceRequest::decode(frame);
        Zone* zone = zones_.find(req.zone);
        TraceResponse res;
        if (zone == nullptr) {
          res.status = WireStatus::kUnknownZone;
          res.message = "no zone '" + req.zone + "'";
          return res.encode(seq);
        }
        const Tracer& tracer = zone->tracer();
        if (req.slow) {
          res.jsonl = tracer.slow_json();
          res.total_recorded = tracer.slow_log().size();
          res.dropped = tracer.slow_log().dropped();
        } else {
          res.jsonl = tracer.ring_json(static_cast<std::size_t>(req.max));
          res.total_recorded = tracer.ring().pushed();
          res.dropped = tracer.ring().overwritten();
        }
        return res.encode(seq);
      }
      case PacketType::kAdminRequest: {
        const AdminRequest req = AdminRequest::decode(frame);
        AdminResponse res;
        switch (req.op) {
          case AdminOp::kDrain:
            if (req.zone.empty()) {
              zones_.drain_all();
              res.message = "all zones drained";
            } else if (Zone* zone = zones_.find(req.zone)) {
              zone->drain();
              res.message = "zone '" + req.zone + "' drained";
            } else {
              res.status = WireStatus::kUnknownZone;
              res.message = "no zone '" + req.zone + "'";
            }
            break;
          case AdminOp::kReload:
            if (reload_handler_) {
              res.message = reload_handler_();
            } else {
              res.status = WireStatus::kBadRequest;
              res.message = "reload not supported by this server";
            }
            break;
          case AdminOp::kShutdown: {
            res.message = "shutting down";
            std::string encoded = res.encode(seq);
            // Answer first, then tear down: the handler typically
            // drains every zone and stops the loop, closing this
            // connection with it.
            if (shutdown_handler_) {
              auto handler = shutdown_handler_;
              loop_.post([handler] { handler(); });
            }
            return encoded;
          }
        }
        return res.encode(seq);
      }
      default: {
        ErrorResponse res;
        res.status = WireStatus::kBadRequest;
        res.message = std::string("unexpected packet type ") +
                      packet_type_name(static_cast<PacketType>(frame.type)) + " (" +
                      std::to_string(frame.type) + ")";
        return res.encode(seq);
      }
    }
  } catch (const std::invalid_argument& e) {
    ErrorResponse res;
    res.status = WireStatus::kBadRequest;
    res.message = e.what();
    return res.encode(seq);
  } catch (const std::runtime_error& e) {
    // Version skew and malformed payloads land here via wire decode.
    ErrorResponse res;
    res.status = WireStatus::kBadRequest;
    res.message = e.what();
    return res.encode(seq);
  } catch (const std::exception& e) {
    ErrorResponse res;
    res.status = WireStatus::kInternalError;
    res.message = e.what();
    return res.encode(seq);
  }
}

}  // namespace tafloc::daemon
