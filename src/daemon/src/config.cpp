#include "tafloc/daemon/config.h"

#include <cstddef>
#include <fstream>
#include <istream>
#include <sstream>
#include <stdexcept>

namespace tafloc::daemon {

namespace {

[[noreturn]] void fail(std::size_t line_no, const std::string& what) {
  throw std::runtime_error("config line " + std::to_string(line_no) + ": " + what);
}

std::string strip(std::string_view s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && (s[begin] == ' ' || s[begin] == '\t')) ++begin;
  while (end > begin && (s[end - 1] == ' ' || s[end - 1] == '\t' || s[end - 1] == '\r')) --end;
  return std::string(s.substr(begin, end - begin));
}

double parse_double(const std::string& value, std::size_t line_no, const std::string& key) {
  try {
    std::size_t consumed = 0;
    const double parsed = std::stod(value, &consumed);
    if (consumed != value.size()) fail(line_no, key + ": trailing garbage in '" + value + "'");
    return parsed;
  } catch (const std::invalid_argument&) {
    fail(line_no, key + ": not a number: '" + value + "'");
  } catch (const std::out_of_range&) {
    fail(line_no, key + ": out of range: '" + value + "'");
  }
}

std::uint64_t parse_u64(const std::string& value, std::size_t line_no, const std::string& key) {
  // std::stoull silently negates "-1" into 2^64-1; an unsigned knob fed
  // a negative value must fail loudly, not wrap into "practically off"
  // (or "practically always"), so reject the sign before parsing.
  if (!value.empty() && value[0] == '-') {
    fail(line_no, key + ": must be a non-negative integer, got '" + value + "'");
  }
  try {
    std::size_t consumed = 0;
    const unsigned long long parsed = std::stoull(value, &consumed);
    if (consumed != value.size()) fail(line_no, key + ": trailing garbage in '" + value + "'");
    return parsed;
  } catch (const std::invalid_argument&) {
    fail(line_no, key + ": not an integer: '" + value + "'");
  } catch (const std::out_of_range&) {
    fail(line_no, key + ": out of range: '" + value + "'");
  }
}

bool parse_bool(const std::string& value, std::size_t line_no, const std::string& key) {
  if (value == "true" || value == "1" || value == "on" || value == "yes") return true;
  if (value == "false" || value == "0" || value == "off" || value == "no") return false;
  fail(line_no, key + ": not a boolean: '" + value + "'");
}

}  // namespace

DaemonConfig DaemonConfig::parse(std::istream& in) {
  DaemonConfig config;
  ZoneConfig* zone = nullptr;  // null while in the daemon-wide preamble.
  std::string raw;
  std::size_t line_no = 0;

  while (std::getline(in, raw)) {
    ++line_no;
    const std::string line = strip(raw);
    if (line.empty() || line[0] == '#') continue;

    if (line.front() == '[') {
      if (line.back() != ']') fail(line_no, "unterminated section header: '" + line + "'");
      const std::string header = strip(line.substr(1, line.size() - 2));
      if (header.rfind("zone ", 0) != 0) {
        fail(line_no, "unknown section '" + header + "' (expected [zone <name>])");
      }
      const std::string name = strip(header.substr(5));
      if (name.empty()) fail(line_no, "zone section needs a name");
      if (config.find_zone(name) != nullptr) fail(line_no, "duplicate zone '" + name + "'");
      config.zones.push_back(ZoneConfig{});
      zone = &config.zones.back();
      zone->name = name;
      continue;
    }

    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) fail(line_no, "expected key = value, got '" + line + "'");
    const std::string key = strip(line.substr(0, eq));
    const std::string value = strip(line.substr(eq + 1));
    if (key.empty()) fail(line_no, "empty key");

    if (zone == nullptr) {
      if (key == "socket") {
        config.socket_path = value;
      } else if (key == "telemetry_dir") {
        config.telemetry_dir = value;
      } else {
        fail(line_no, "unknown daemon key '" + key + "'");
      }
      continue;
    }

    if (key == "seed") {
      zone->seed = parse_u64(value, line_no, key);
    } else if (key == "state_dir") {
      zone->state_dir = value;
    } else if (key == "staleness_threshold_db") {
      zone->scheduler.staleness_threshold_db = parse_double(value, line_no, key);
    } else if (key == "min_interval_days") {
      zone->scheduler.min_interval_days = parse_double(value, line_no, key);
    } else if (key == "max_interval_days") {
      zone->scheduler.max_interval_days = parse_double(value, line_no, key);
    } else if (key == "telemetry") {
      zone->telemetry = parse_bool(value, line_no, key);
    } else if (key == "trace_sample_every") {
      zone->trace_sample_every = parse_u64(value, line_no, key);
    } else if (key == "trace_ring_capacity") {
      zone->trace_ring_capacity = parse_u64(value, line_no, key);
    } else if (key == "slow_query_ms") {
      zone->slow_query_ms = parse_double(value, line_no, key);
      if (zone->slow_query_ms < 0.0) fail(line_no, "slow_query_ms must be >= 0");
    } else if (key == "slow_log_capacity") {
      zone->slow_log_capacity = parse_u64(value, line_no, key);
    } else if (key == "slo_deadline_ms") {
      zone->slo_deadline_ms = parse_double(value, line_no, key);
      if (zone->slo_deadline_ms < 0.0) fail(line_no, "slo_deadline_ms must be >= 0");
    } else if (key == "slo_target") {
      zone->slo_target = parse_double(value, line_no, key);
      if (zone->slo_target <= 0.0 || zone->slo_target > 1.0)
        fail(line_no, "slo_target must be in (0, 1]");
    } else if (key == "fault_slow_every") {
      zone->fault_slow_every = parse_u64(value, line_no, key);
    } else if (key == "fault_slow_ms") {
      zone->fault_slow_ms = parse_double(value, line_no, key);
      if (zone->fault_slow_ms < 0.0) fail(line_no, "fault_slow_ms must be >= 0");
    } else if (key == "motion_threshold_db") {
      zone->ingest.motion_threshold_db = parse_double(value, line_no, key);
      if (zone->ingest.motion_threshold_db < 0.0) fail(line_no, "motion_threshold_db must be >= 0");
    } else if (key == "ingest_dedup_window") {
      zone->ingest.dedup_window = parse_u64(value, line_no, key);
      if (zone->ingest.dedup_window == 0) fail(line_no, "ingest_dedup_window must be >= 1");
    } else if (key == "ingest_max_pending_rounds") {
      zone->ingest.max_pending_rounds = parse_u64(value, line_no, key);
      if (zone->ingest.max_pending_rounds == 0)
        fail(line_no, "ingest_max_pending_rounds must be >= 1");
    } else {
      fail(line_no, "unknown zone key '" + key + "'");
    }
  }

  if (config.socket_path.empty()) {
    throw std::runtime_error("config: missing required daemon key 'socket'");
  }
  if (config.zones.empty()) {
    throw std::runtime_error("config: at least one [zone <name>] section is required");
  }
  return config;
}

DaemonConfig DaemonConfig::load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("config: cannot open '" + path + "'");
  return parse(in);
}

const ZoneConfig* DaemonConfig::find_zone(const std::string& name) const {
  for (const ZoneConfig& z : zones) {
    if (z.name == name) return &z;
  }
  return nullptr;
}

}  // namespace tafloc::daemon
