#include "tafloc/daemon/wire.h"

#include <stdexcept>

#include "tafloc/storage/codec.h"
#include "tafloc/util/check.h"

namespace tafloc::daemon {

namespace {

using storage::ByteReader;
using storage::ByteWriter;

void put_string(ByteWriter& out, std::string_view s) {
  out.put_u8_span({reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
}

std::string get_string(ByteReader& in) {
  const std::vector<std::uint8_t> bytes = in.get_u8_vector();
  return {reinterpret_cast<const char*>(bytes.data()), bytes.size()};
}

/// Every payload opens with the wire version; decoding any packet from
/// another protocol generation fails here, before a single field is
/// trusted.
ByteWriter begin_payload() {
  ByteWriter out;
  out.put_u32(kWireVersion);
  return out;
}

ByteReader open_payload(const storage::Frame& frame, PacketType expected) {
  if (frame.type != static_cast<std::uint32_t>(expected)) {
    throw std::runtime_error(std::string("wire: expected ") + packet_type_name(expected) +
                             ", got packet type " + std::to_string(frame.type));
  }
  ByteReader in(frame.payload);
  const std::uint32_t version = in.get_u32();
  if (version != kWireVersion) {
    throw std::runtime_error("wire: version " + std::to_string(version) +
                             " not supported (this daemon speaks version " +
                             std::to_string(kWireVersion) + ")");
  }
  return in;
}

std::string finish(PacketType type, std::uint64_t seq, ByteWriter& out) {
  return storage::encode_frame(static_cast<std::uint32_t>(type), seq, out.bytes());
}

WireStatus get_status(ByteReader& in) {
  const std::uint8_t raw = in.get_u8();
  if (raw > static_cast<std::uint8_t>(WireStatus::kInternalError)) {
    throw std::runtime_error("wire: unknown status code " + std::to_string(raw));
  }
  return static_cast<WireStatus>(raw);
}

}  // namespace

const char* packet_type_name(PacketType type) {
  switch (type) {
    case PacketType::kError: return "error";
    case PacketType::kLocalizeRequest: return "localize-request";
    case PacketType::kLocalizeResponse: return "localize-response";
    case PacketType::kAmbientRequest: return "ambient-request";
    case PacketType::kAmbientResponse: return "ambient-response";
    case PacketType::kResurveyRequest: return "resurvey-request";
    case PacketType::kResurveyResponse: return "resurvey-response";
    case PacketType::kStatusRequest: return "status-request";
    case PacketType::kStatusResponse: return "status-response";
    case PacketType::kAdminRequest: return "admin-request";
    case PacketType::kAdminResponse: return "admin-response";
    case PacketType::kProbeRequest: return "probe-request";
    case PacketType::kProbeResponse: return "probe-response";
    case PacketType::kMetricsRequest: return "metrics-request";
    case PacketType::kMetricsResponse: return "metrics-response";
    case PacketType::kTraceRequest: return "trace-request";
    case PacketType::kTraceResponse: return "trace-response";
    case PacketType::kBatchIngestRequest: return "batch-ingest-request";
    case PacketType::kBatchIngestResponse: return "batch-ingest-response";
  }
  return "unknown";
}

const char* wire_status_name(WireStatus status) {
  switch (status) {
    case WireStatus::kOk: return "ok";
    case WireStatus::kUnknownZone: return "unknown-zone";
    case WireStatus::kNotServing: return "not-serving";
    case WireStatus::kBadRequest: return "bad-request";
    case WireStatus::kInternalError: return "internal-error";
  }
  return "unknown";
}

const char* admin_op_name(AdminOp op) {
  switch (op) {
    case AdminOp::kDrain: return "drain";
    case AdminOp::kReload: return "reload";
    case AdminOp::kShutdown: return "shutdown";
  }
  return "unknown";
}

// -- requests --

std::string LocalizeRequest::encode(std::uint64_t seq) const {
  ByteWriter out = begin_payload();
  put_string(out, zone);
  out.put_f64_span(rss);
  out.put_u64(trace_id);
  out.put_u8(trace_sampled ? 1 : 0);
  return finish(PacketType::kLocalizeRequest, seq, out);
}

LocalizeRequest LocalizeRequest::decode(const storage::Frame& frame) {
  ByteReader in = open_payload(frame, PacketType::kLocalizeRequest);
  LocalizeRequest req;
  req.zone = get_string(in);
  req.rss = in.get_f64_vector();
  req.trace_id = in.get_u64();
  req.trace_sampled = in.get_u8() != 0;
  in.expect_exhausted("localize request");
  return req;
}

std::string AmbientRequest::encode(std::uint64_t seq) const {
  ByteWriter out = begin_payload();
  put_string(out, zone);
  out.put_f64_span(ambient);
  out.put_f64(t_days);
  return finish(PacketType::kAmbientRequest, seq, out);
}

AmbientRequest AmbientRequest::decode(const storage::Frame& frame) {
  ByteReader in = open_payload(frame, PacketType::kAmbientRequest);
  AmbientRequest req;
  req.zone = get_string(in);
  req.ambient = in.get_f64_vector();
  req.t_days = in.get_f64();
  in.expect_exhausted("ambient request");
  return req;
}

std::string ResurveyRequest::encode(std::uint64_t seq) const {
  ByteWriter out = begin_payload();
  put_string(out, zone);
  out.put_f64(t_days);
  return finish(PacketType::kResurveyRequest, seq, out);
}

ResurveyRequest ResurveyRequest::decode(const storage::Frame& frame) {
  ByteReader in = open_payload(frame, PacketType::kResurveyRequest);
  ResurveyRequest req;
  req.zone = get_string(in);
  req.t_days = in.get_f64();
  in.expect_exhausted("resurvey request");
  return req;
}

std::string StatusRequest::encode(std::uint64_t seq) const {
  ByteWriter out = begin_payload();
  put_string(out, zone);
  return finish(PacketType::kStatusRequest, seq, out);
}

StatusRequest StatusRequest::decode(const storage::Frame& frame) {
  ByteReader in = open_payload(frame, PacketType::kStatusRequest);
  StatusRequest req;
  req.zone = get_string(in);
  in.expect_exhausted("status request");
  return req;
}

std::string AdminRequest::encode(std::uint64_t seq) const {
  ByteWriter out = begin_payload();
  out.put_u8(static_cast<std::uint8_t>(op));
  put_string(out, zone);
  return finish(PacketType::kAdminRequest, seq, out);
}

AdminRequest AdminRequest::decode(const storage::Frame& frame) {
  ByteReader in = open_payload(frame, PacketType::kAdminRequest);
  AdminRequest req;
  const std::uint8_t raw = in.get_u8();
  if (raw < static_cast<std::uint8_t>(AdminOp::kDrain) ||
      raw > static_cast<std::uint8_t>(AdminOp::kShutdown)) {
    throw std::runtime_error("wire: unknown admin op " + std::to_string(raw));
  }
  req.op = static_cast<AdminOp>(raw);
  req.zone = get_string(in);
  in.expect_exhausted("admin request");
  return req;
}

std::string ProbeRequest::encode(std::uint64_t seq) const {
  ByteWriter out = begin_payload();
  put_string(out, zone);
  return finish(PacketType::kProbeRequest, seq, out);
}

ProbeRequest ProbeRequest::decode(const storage::Frame& frame) {
  ByteReader in = open_payload(frame, PacketType::kProbeRequest);
  ProbeRequest req;
  req.zone = get_string(in);
  in.expect_exhausted("probe request");
  return req;
}

std::string MetricsRequest::encode(std::uint64_t seq) const {
  ByteWriter out = begin_payload();
  put_string(out, zone);
  return finish(PacketType::kMetricsRequest, seq, out);
}

MetricsRequest MetricsRequest::decode(const storage::Frame& frame) {
  ByteReader in = open_payload(frame, PacketType::kMetricsRequest);
  MetricsRequest req;
  req.zone = get_string(in);
  in.expect_exhausted("metrics request");
  return req;
}

std::string TraceRequest::encode(std::uint64_t seq) const {
  ByteWriter out = begin_payload();
  put_string(out, zone);
  out.put_u64(max);
  out.put_u8(slow ? 1 : 0);
  return finish(PacketType::kTraceRequest, seq, out);
}

TraceRequest TraceRequest::decode(const storage::Frame& frame) {
  ByteReader in = open_payload(frame, PacketType::kTraceRequest);
  TraceRequest req;
  req.zone = get_string(in);
  req.max = in.get_u64();
  req.slow = in.get_u8() != 0;
  in.expect_exhausted("trace request");
  return req;
}

std::string BatchIngestRequest::encode(std::uint64_t seq) const {
  ByteWriter out = begin_payload();
  put_string(out, zone);
  batch.encode(out);  // the nested payload carries its own format version.
  return finish(PacketType::kBatchIngestRequest, seq, out);
}

BatchIngestRequest BatchIngestRequest::decode(const storage::Frame& frame) {
  ByteReader in = open_payload(frame, PacketType::kBatchIngestRequest);
  BatchIngestRequest req;
  req.zone = get_string(in);
  req.batch = ingest::NodeBatch::decode(in);
  in.expect_exhausted("batch ingest request");
  return req;
}

// -- responses --

std::string ErrorResponse::encode(std::uint64_t seq) const {
  ByteWriter out = begin_payload();
  out.put_u8(static_cast<std::uint8_t>(status));
  put_string(out, message);
  return finish(PacketType::kError, seq, out);
}

ErrorResponse ErrorResponse::decode(const storage::Frame& frame) {
  ByteReader in = open_payload(frame, PacketType::kError);
  ErrorResponse res;
  res.status = get_status(in);
  res.message = get_string(in);
  in.expect_exhausted("error response");
  return res;
}

std::string LocalizeResponse::encode(std::uint64_t seq) const {
  ByteWriter out = begin_payload();
  out.put_u8(static_cast<std::uint8_t>(status));
  put_string(out, message);
  out.put_f64(x);
  out.put_f64(y);
  out.put_f64(confidence);
  out.put_u8(served ? 1 : 0);
  out.put_u8(degraded ? 1 : 0);
  out.put_u64(links_used);
  return finish(PacketType::kLocalizeResponse, seq, out);
}

LocalizeResponse LocalizeResponse::decode(const storage::Frame& frame) {
  ByteReader in = open_payload(frame, PacketType::kLocalizeResponse);
  LocalizeResponse res;
  res.status = get_status(in);
  res.message = get_string(in);
  res.x = in.get_f64();
  res.y = in.get_f64();
  res.confidence = in.get_f64();
  res.served = in.get_u8() != 0;
  res.degraded = in.get_u8() != 0;
  res.links_used = in.get_u64();
  in.expect_exhausted("localize response");
  return res;
}

std::string AmbientResponse::encode(std::uint64_t seq) const {
  ByteWriter out = begin_payload();
  out.put_u8(static_cast<std::uint8_t>(status));
  put_string(out, message);
  out.put_u8(accepted ? 1 : 0);
  out.put_u8(sample_accepted ? 1 : 0);
  out.put_u8(triggered ? 1 : 0);
  out.put_f64(staleness_db);
  return finish(PacketType::kAmbientResponse, seq, out);
}

AmbientResponse AmbientResponse::decode(const storage::Frame& frame) {
  ByteReader in = open_payload(frame, PacketType::kAmbientResponse);
  AmbientResponse res;
  res.status = get_status(in);
  res.message = get_string(in);
  res.accepted = in.get_u8() != 0;
  res.sample_accepted = in.get_u8() != 0;
  res.triggered = in.get_u8() != 0;
  res.staleness_db = in.get_f64();
  in.expect_exhausted("ambient response");
  return res;
}

std::string ResurveyResponse::encode(std::uint64_t seq) const {
  ByteWriter out = begin_payload();
  out.put_u8(static_cast<std::uint8_t>(status));
  put_string(out, message);
  out.put_u8(accepted ? 1 : 0);
  return finish(PacketType::kResurveyResponse, seq, out);
}

ResurveyResponse ResurveyResponse::decode(const storage::Frame& frame) {
  ByteReader in = open_payload(frame, PacketType::kResurveyResponse);
  ResurveyResponse res;
  res.status = get_status(in);
  res.message = get_string(in);
  res.accepted = in.get_u8() != 0;
  in.expect_exhausted("resurvey response");
  return res;
}

std::string StatusResponse::encode(std::uint64_t seq) const {
  ByteWriter out = begin_payload();
  out.put_u8(static_cast<std::uint8_t>(status));
  put_string(out, message);
  out.put_u64(zones.size());
  for (const ZoneStatus& z : zones) {
    put_string(out, z.zone);
    put_string(out, z.state);
    out.put_u64(z.queries);
    out.put_u64(z.updates_committed);
    out.put_u64(z.updates_failed);
    out.put_u8(z.update_in_flight ? 1 : 0);
    out.put_f64(z.staleness_db);
    out.put_f64(z.clock_days);
    out.put_u64(z.wal_sequence);
    put_string(out, z.kernel_backend);
    out.put_u8(z.quantized_tier ? 1 : 0);
    out.put_u64(z.slo_ok);
    out.put_u64(z.slo_violated);
    out.put_f64(z.slo_budget_remaining);
    out.put_u8(z.slo_degraded ? 1 : 0);
    put_string(out, z.last_error);
  }
  return finish(PacketType::kStatusResponse, seq, out);
}

StatusResponse StatusResponse::decode(const storage::Frame& frame) {
  ByteReader in = open_payload(frame, PacketType::kStatusResponse);
  StatusResponse res;
  res.status = get_status(in);
  res.message = get_string(in);
  const std::uint64_t count = in.get_u64();
  in.require_elements(count, 8, "status zone entries");
  res.zones.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    ZoneStatus z;
    z.zone = get_string(in);
    z.state = get_string(in);
    z.queries = in.get_u64();
    z.updates_committed = in.get_u64();
    z.updates_failed = in.get_u64();
    z.update_in_flight = in.get_u8() != 0;
    z.staleness_db = in.get_f64();
    z.clock_days = in.get_f64();
    z.wal_sequence = in.get_u64();
    z.kernel_backend = get_string(in);
    z.quantized_tier = in.get_u8() != 0;
    z.slo_ok = in.get_u64();
    z.slo_violated = in.get_u64();
    z.slo_budget_remaining = in.get_f64();
    z.slo_degraded = in.get_u8() != 0;
    z.last_error = get_string(in);
    res.zones.push_back(std::move(z));
  }
  in.expect_exhausted("status response");
  return res;
}

std::string AdminResponse::encode(std::uint64_t seq) const {
  ByteWriter out = begin_payload();
  out.put_u8(static_cast<std::uint8_t>(status));
  put_string(out, message);
  return finish(PacketType::kAdminResponse, seq, out);
}

AdminResponse AdminResponse::decode(const storage::Frame& frame) {
  ByteReader in = open_payload(frame, PacketType::kAdminResponse);
  AdminResponse res;
  res.status = get_status(in);
  res.message = get_string(in);
  in.expect_exhausted("admin response");
  return res;
}

std::string ProbeResponse::encode(std::uint64_t seq) const {
  ByteWriter out = begin_payload();
  out.put_u8(static_cast<std::uint8_t>(status));
  put_string(out, message);
  out.put_f64(truth_x);
  out.put_f64(truth_y);
  out.put_f64(estimate_x);
  out.put_f64(estimate_y);
  out.put_f64(error_m);
  out.put_u8(degraded ? 1 : 0);
  return finish(PacketType::kProbeResponse, seq, out);
}

ProbeResponse ProbeResponse::decode(const storage::Frame& frame) {
  ByteReader in = open_payload(frame, PacketType::kProbeResponse);
  ProbeResponse res;
  res.status = get_status(in);
  res.message = get_string(in);
  res.truth_x = in.get_f64();
  res.truth_y = in.get_f64();
  res.estimate_x = in.get_f64();
  res.estimate_y = in.get_f64();
  res.error_m = in.get_f64();
  res.degraded = in.get_u8() != 0;
  in.expect_exhausted("probe response");
  return res;
}

std::string MetricsResponse::encode(std::uint64_t seq) const {
  ByteWriter out = begin_payload();
  out.put_u8(static_cast<std::uint8_t>(status));
  put_string(out, message);
  out.put_u64(zones.size());
  for (const ZoneMetrics& z : zones) {
    put_string(out, z.zone);
    put_string(out, z.state);
    out.put_u64(z.uptime_ns);
    out.put_u64(z.spans_recorded);
    out.put_u64(z.spans_dropped);
    out.put_u64(z.counters.size());
    for (const auto& [name, value] : z.counters) {
      put_string(out, name);
      out.put_u64(value);
    }
    out.put_u64(z.gauges.size());
    for (const auto& [name, value] : z.gauges) {
      put_string(out, name);
      out.put_f64(value);
    }
    out.put_u64(z.histograms.size());
    for (const WireHistogram& h : z.histograms) {
      put_string(out, h.name);
      out.put_u64(h.count);
      out.put_f64(h.sum);
      out.put_f64(h.min);
      out.put_f64(h.max);
      out.put_f64(h.p50);
      out.put_f64(h.p95);
      out.put_f64(h.p99);
    }
  }
  return finish(PacketType::kMetricsResponse, seq, out);
}

MetricsResponse MetricsResponse::decode(const storage::Frame& frame) {
  ByteReader in = open_payload(frame, PacketType::kMetricsResponse);
  MetricsResponse res;
  res.status = get_status(in);
  res.message = get_string(in);
  const std::uint64_t zone_count = in.get_u64();
  in.require_elements(zone_count, 8, "metrics zone entries");
  res.zones.reserve(zone_count);
  for (std::uint64_t i = 0; i < zone_count; ++i) {
    ZoneMetrics z;
    z.zone = get_string(in);
    z.state = get_string(in);
    z.uptime_ns = in.get_u64();
    z.spans_recorded = in.get_u64();
    z.spans_dropped = in.get_u64();
    const std::uint64_t counters = in.get_u64();
    in.require_elements(counters, 8, "metrics counters");
    z.counters.reserve(counters);
    for (std::uint64_t c = 0; c < counters; ++c) {
      std::string name = get_string(in);
      z.counters.emplace_back(std::move(name), in.get_u64());
    }
    const std::uint64_t gauges = in.get_u64();
    in.require_elements(gauges, 8, "metrics gauges");
    z.gauges.reserve(gauges);
    for (std::uint64_t g = 0; g < gauges; ++g) {
      std::string name = get_string(in);
      z.gauges.emplace_back(std::move(name), in.get_f64());
    }
    const std::uint64_t histograms = in.get_u64();
    in.require_elements(histograms, 8, "metrics histograms");
    z.histograms.reserve(histograms);
    for (std::uint64_t h = 0; h < histograms; ++h) {
      WireHistogram hist;
      hist.name = get_string(in);
      hist.count = in.get_u64();
      hist.sum = in.get_f64();
      hist.min = in.get_f64();
      hist.max = in.get_f64();
      hist.p50 = in.get_f64();
      hist.p95 = in.get_f64();
      hist.p99 = in.get_f64();
      z.histograms.push_back(std::move(hist));
    }
    res.zones.push_back(std::move(z));
  }
  in.expect_exhausted("metrics response");
  return res;
}

std::string TraceResponse::encode(std::uint64_t seq) const {
  ByteWriter out = begin_payload();
  out.put_u8(static_cast<std::uint8_t>(status));
  put_string(out, message);
  put_string(out, jsonl);
  out.put_u64(total_recorded);
  out.put_u64(dropped);
  return finish(PacketType::kTraceResponse, seq, out);
}

TraceResponse TraceResponse::decode(const storage::Frame& frame) {
  ByteReader in = open_payload(frame, PacketType::kTraceResponse);
  TraceResponse res;
  res.status = get_status(in);
  res.message = get_string(in);
  res.jsonl = get_string(in);
  res.total_recorded = in.get_u64();
  res.dropped = in.get_u64();
  in.expect_exhausted("trace response");
  return res;
}

std::string BatchIngestResponse::encode(std::uint64_t seq) const {
  ByteWriter out = begin_payload();
  out.put_u8(static_cast<std::uint8_t>(status));
  put_string(out, message);
  out.put_u64(readings);
  out.put_u64(dups_dropped);
  out.put_u64(stale_dropped);
  out.put_u64(bad_readings);
  out.put_u64(rounds_completed);
  out.put_u64(gated_ambient);
  out.put_u64(admitted_queries);
  out.put_f64(last_motion_db);
  out.put_u64(queries.size());
  for (const IngestQuery& q : queries) {
    out.put_f64(q.t_days);
    out.put_f64(q.motion_db);
    out.put_f64(q.x);
    out.put_f64(q.y);
    out.put_f64(q.confidence);
    out.put_u8(q.served ? 1 : 0);
    out.put_u8(q.degraded ? 1 : 0);
    out.put_u64(q.links_used);
  }
  return finish(PacketType::kBatchIngestResponse, seq, out);
}

BatchIngestResponse BatchIngestResponse::decode(const storage::Frame& frame) {
  ByteReader in = open_payload(frame, PacketType::kBatchIngestResponse);
  BatchIngestResponse res;
  res.status = get_status(in);
  res.message = get_string(in);
  res.readings = in.get_u64();
  res.dups_dropped = in.get_u64();
  res.stale_dropped = in.get_u64();
  res.bad_readings = in.get_u64();
  res.rounds_completed = in.get_u64();
  res.gated_ambient = in.get_u64();
  res.admitted_queries = in.get_u64();
  res.last_motion_db = in.get_f64();
  const std::uint64_t count = in.get_u64();
  in.require_elements(count, 50, "ingest query entries");
  res.queries.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    IngestQuery q;
    q.t_days = in.get_f64();
    q.motion_db = in.get_f64();
    q.x = in.get_f64();
    q.y = in.get_f64();
    q.confidence = in.get_f64();
    q.served = in.get_u8() != 0;
    q.degraded = in.get_u8() != 0;
    q.links_used = in.get_u64();
    res.queries.push_back(q);
  }
  in.expect_exhausted("batch ingest response");
  return res;
}

ExtractResult extract_packet(std::string& buffer, storage::Frame& out, std::string* error) {
  std::size_t pos = 0;
  const storage::FrameStatus status = storage::decode_frame(buffer, pos, out, error);
  switch (status) {
    case storage::FrameStatus::kOk:
      buffer.erase(0, pos);
      return ExtractResult::kPacket;
    case storage::FrameStatus::kEof:
    case storage::FrameStatus::kTorn:
      return ExtractResult::kNeedMore;
    case storage::FrameStatus::kCorrupt:
      return ExtractResult::kCorrupt;
  }
  return ExtractResult::kCorrupt;
}

}  // namespace tafloc::daemon
