#include "tafloc/daemon/event_loop.h"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>
#include <utility>

#include "tafloc/util/check.h"

namespace tafloc::daemon {

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw std::runtime_error("event loop: fcntl(O_NONBLOCK) failed");
  }
}

}  // namespace

EventLoop::EventLoop() {
  int fds[2] = {-1, -1};
  if (::pipe(fds) != 0) {
    throw std::runtime_error(std::string("event loop: pipe() failed: ") + std::strerror(errno));
  }
  wake_read_fd_ = fds[0];
  wake_write_fd_ = fds[1];
  set_nonblocking(wake_read_fd_);
  set_nonblocking(wake_write_fd_);
}

EventLoop::~EventLoop() {
  if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
  if (wake_write_fd_ >= 0) ::close(wake_write_fd_);
}

void EventLoop::add_fd(int fd, short events, FdHandler handler) {
  TAFLOC_CHECK_ARG(fd >= 0, "event loop: negative fd");
  TAFLOC_CHECK_ARG(handler != nullptr, "event loop: null handler");
  for (const Watch& w : watches_) {
    TAFLOC_CHECK_ARG(w.fd != fd, "event loop: fd already watched");
  }
  watches_.push_back(Watch{fd, events, std::move(handler)});
}

void EventLoop::remove_fd(int fd) {
  for (std::size_t i = 0; i < watches_.size(); ++i) {
    if (watches_[i].fd == fd) {
      // Defuse rather than erase: a handler may remove its own (or a
      // sibling's) watch mid-round while run_once still iterates.
      watches_[i].fd = -1;
      watches_[i].handler = nullptr;
      return;
    }
  }
}

std::size_t EventLoop::watched_fds() const noexcept {
  std::size_t n = 0;
  for (const Watch& w : watches_) {
    if (w.fd >= 0) ++n;
  }
  return n;
}

void EventLoop::post(std::function<void()> task) {
  TAFLOC_CHECK_ARG(task != nullptr, "event loop: null task");
  {
    std::lock_guard<std::mutex> lock(post_mu_);
    posted_.push_back(std::move(task));
  }
  post_from_signal();
}

void EventLoop::post_from_signal() noexcept {
  const char byte = 1;
  // EAGAIN means the pipe already holds unread wakeups -- the loop will
  // wake regardless, so a dropped byte is harmless.
  [[maybe_unused]] const ssize_t rc = ::write(wake_write_fd_, &byte, 1);
}

void EventLoop::drain_wakeup_pipe() {
  char buf[64];
  while (::read(wake_read_fd_, buf, sizeof buf) > 0) {
  }
}

void EventLoop::run_posted() {
  std::vector<std::function<void()>> batch;
  {
    std::lock_guard<std::mutex> lock(post_mu_);
    batch.swap(posted_);
  }
  for (auto& task : batch) task();
}

int EventLoop::run_once(int timeout_ms) {
  // Compact defused watches, then snapshot into pollfds.  Handlers may
  // add watches mid-round (accept); those only join the NEXT round, so
  // the handler loop below must iterate the snapshot's size, never the
  // live watches_.size().
  std::erase_if(watches_, [](const Watch& w) { return w.fd < 0; });
  std::vector<struct pollfd> fds;
  fds.reserve(watches_.size() + 1);
  fds.push_back({wake_read_fd_, POLLIN, 0});
  for (const Watch& w : watches_) fds.push_back({w.fd, w.events, 0});
  const std::size_t snapshot = watches_.size();

  int ready = ::poll(fds.data(), fds.size(), timeout_ms);
  if (ready < 0) {
    if (errno == EINTR) ready = 0;  // signal: fall through to the hooks.
    else throw std::runtime_error(std::string("event loop: poll() failed: ") +
                                  std::strerror(errno));
  }

  int handled = 0;
  if (fds[0].revents != 0) drain_wakeup_pipe();
  for (std::size_t i = 0; i < snapshot; ++i) {
    const short revents = fds[i + 1].revents;
    if (revents == 0) continue;
    // remove_fd during this round defuses the entry; skip it.
    if (watches_[i].fd < 0 || !watches_[i].handler) continue;
    ++handled;
    watches_[i].handler(revents);
  }
  run_posted();
  if (idle_hook_) idle_hook_();
  return handled;
}

void EventLoop::run(int timeout_ms) {
  TAFLOC_CHECK_STATE(!running_, "event loop: run() is not reentrant");
  running_ = true;
  stop_requested_ = false;
  while (!stop_requested_) {
    run_once(timeout_ms);
  }
  running_ = false;
}

void EventLoop::stop() {
  stop_requested_ = true;
  post_from_signal();
}

}  // namespace tafloc::daemon
