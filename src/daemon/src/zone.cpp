#include "tafloc/daemon/zone.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <thread>
#include <utility>

#include "tafloc/linalg/backend.h"
#include "tafloc/util/check.h"
#include "tafloc/util/log.h"

namespace tafloc::daemon {

namespace {

TafLocConfig make_system_config(const ZoneConfig& config) {
  TafLocConfig cfg;
  cfg.telemetry.enabled = config.telemetry;
  cfg.telemetry.zone = config.name;
  return cfg;
}

TracerConfig make_tracer_config(const ZoneConfig& config) {
  TracerConfig cfg;
  cfg.ring_capacity = static_cast<std::size_t>(config.trace_ring_capacity);
  cfg.slow_log_capacity = static_cast<std::size_t>(config.slow_log_capacity);
  cfg.sample_every = config.trace_sample_every;
  cfg.slow_threshold_ms = config.slow_query_ms;
  cfg.zone = config.name;
  return cfg;
}

ingest::AssemblerConfig make_assembler_config(const ZoneConfig& config,
                                              const Scenario& scenario) {
  ingest::AssemblerConfig cfg;
  cfg.num_links = scenario.deployment().num_links();
  cfg.dedup_window = static_cast<std::size_t>(config.ingest.dedup_window);
  cfg.max_pending_rounds = static_cast<std::size_t>(config.ingest.max_pending_rounds);
  return cfg;
}

}  // namespace

const char* zone_state_name(ZoneState state) {
  switch (state) {
    case ZoneState::kLoading: return "loading";
    case ZoneState::kCalibrating: return "calibrating";
    case ZoneState::kServing: return "serving";
    case ZoneState::kDegraded: return "degraded";
    case ZoneState::kResurveying: return "resurveying";
    case ZoneState::kDraining: return "draining";
    case ZoneState::kStopped: return "stopped";
  }
  return "unknown";
}

bool zone_transition_legal(ZoneState from, ZoneState to) noexcept {
  if (from == to) return false;
  switch (from) {
    case ZoneState::kLoading:
      return to == ZoneState::kCalibrating || to == ZoneState::kStopped;
    case ZoneState::kCalibrating:
      return to == ZoneState::kServing || to == ZoneState::kDraining ||
             to == ZoneState::kStopped;
    case ZoneState::kServing:
    case ZoneState::kDegraded:
      return to == ZoneState::kDegraded || to == ZoneState::kServing ||
             to == ZoneState::kResurveying || to == ZoneState::kDraining;
    case ZoneState::kResurveying:
      return to == ZoneState::kServing || to == ZoneState::kDegraded ||
             to == ZoneState::kDraining;
    case ZoneState::kDraining:
      return to == ZoneState::kStopped;
    case ZoneState::kStopped:
      return false;
  }
  return false;
}

Zone::Zone(ZoneConfig config, JobQueue* jobs)
    : config_(std::move(config)),
      jobs_(jobs),
      scenario_(Scenario::paper_room(config_.seed)),
      system_(scenario_.deployment(), make_system_config(config_)),
      rng_(config_.seed ^ 0x5a11ull),
      tracer_(make_tracer_config(config_), &system_.telemetry()),
      assembler_(make_assembler_config(config_, scenario_)) {
  TAFLOC_CHECK_ARG(!config_.name.empty(), "zone needs a name");
  // Millisecond knobs get cast to unsigned nanoseconds / compared as
  // thresholds below; a negative or non-finite value would wrap into a
  // huge deadline (every request an SLO pass) instead of failing --
  // reject it here so a programmatic ZoneConfig is held to the same
  // contract the config parser enforces.
  TAFLOC_CHECK_ARG(std::isfinite(config_.slo_deadline_ms) && config_.slo_deadline_ms >= 0.0,
                   "zone '" + config_.name + "': slo_deadline_ms must be finite and >= 0");
  TAFLOC_CHECK_ARG(config_.slo_target > 0.0 && config_.slo_target <= 1.0,
                   "zone '" + config_.name + "': slo_target must be in (0, 1]");
  TAFLOC_CHECK_ARG(std::isfinite(config_.slow_query_ms) && config_.slow_query_ms >= 0.0,
                   "zone '" + config_.name + "': slow_query_ms must be finite and >= 0");
  TAFLOC_CHECK_ARG(std::isfinite(config_.fault_slow_ms) && config_.fault_slow_ms >= 0.0,
                   "zone '" + config_.name + "': fault_slow_ms must be finite and >= 0");
  TAFLOC_CHECK_ARG(
      std::isfinite(config_.ingest.motion_threshold_db) && config_.ingest.motion_threshold_db >= 0.0,
      "zone '" + config_.name + "': motion_threshold_db must be finite and >= 0");
  slo_deadline_ns_ = static_cast<std::uint64_t>(config_.slo_deadline_ms * 1e6);
  MetricRegistry& reg = system_.telemetry();
  if (reg.enabled()) {
    request_hist_ = &reg.histogram("zone.request_seconds");
    shed_counter_ = &reg.counter("zone.shed");
    ingest_batches_counter_ = &reg.counter("ingest.batches");
    ingest_readings_counter_ = &reg.counter("ingest.readings");
    ingest_dups_counter_ = &reg.counter("ingest.dups_dropped");
    ingest_stale_counter_ = &reg.counter("ingest.stale_dropped");
    ingest_bad_counter_ = &reg.counter("ingest.bad_readings");
    ingest_rounds_counter_ = &reg.counter("ingest.rounds_completed");
    ingest_expired_counter_ = &reg.counter("ingest.rounds_expired");
    ingest_gated_counter_ = &reg.counter("ingest.gated_ambient");
    ingest_admitted_counter_ = &reg.counter("ingest.admitted_queries");
    if (slo_deadline_ns_ > 0) {
      slo_ok_counter_ = &reg.counter("slo.ok");
      slo_violated_counter_ = &reg.counter("slo.violated");
      slo_budget_gauge_ = &reg.gauge("slo.budget_remaining");
    }
  }
}

Zone::~Zone() {
  // The solve job captures `this`; never destroy underneath it.
  while (job_phase_.load(std::memory_order_acquire) == JobPhase::kSolving) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

bool Zone::admissible() const noexcept {
  return state_ == ZoneState::kServing || state_ == ZoneState::kDegraded ||
         state_ == ZoneState::kResurveying;
}

void Zone::transition(ZoneState to) {
  TAFLOC_CHECK_STATE(zone_transition_legal(state_, to),
                     "zone '" + config_.name + "': illegal transition " +
                         zone_state_name(state_) + " -> " + zone_state_name(to));
  TAFLOC_LOG_INFO << "zone '" << config_.name << "': " << zone_state_name(state_) << " -> "
                  << zone_state_name(to);
  state_ = to;
  MetricRegistry& reg = system_.telemetry();
  if (reg.enabled()) {
    reg.counter("zone.transitions").add(1);
    reg.gauge("zone.state").set(static_cast<double>(to));
    reg.record_span(std::string("zone.state.") + zone_state_name(to), 0, reg.now_ns(), 0);
  }
}

void Zone::start() {
  TAFLOC_CHECK_STATE(state_ == ZoneState::kLoading,
                     "zone '" + config_.name + "': start() from " + zone_state_name(state_));
  transition(ZoneState::kCalibrating);

  scheduler_.emplace(Vector(scenario_.deployment().num_links(), 0.0), 0.0, config_.scheduler);
  scheduler_->attach_telemetry(&system_.telemetry());

  bool recovered = false;
  if (!config_.state_dir.empty()) {
    system_.attach_durability({config_.state_dir});
    system_.attach_scheduler(&*scheduler_);
    const RecoveryReport report = system_.recover();
    if (report.outcome != RecoveryReport::Outcome::kUnrecoverable) {
      recovered = true;
      // The recovered clock is the newest time the scheduler vouches
      // for: the last accepted ambient observation (>= the last update;
      // replayed *dropped* samples never moved it).
      clock_days_ = std::max(scheduler_->last_update_days(), scheduler_->last_observation_days());
      TAFLOC_LOG_INFO << "zone '" << config_.name << "': recovered ("
                      << recovery_outcome_name(report.outcome) << ", " << report.replayed_records
                      << " records replayed)";
    } else {
      TAFLOC_LOG_WARN << "zone '" << config_.name
                      << "': no recoverable state, running a full calibration survey";
    }
  }
  if (!recovered) {
    Vector ambient = scenario_.collector().ambient_scan(0.0, rng_);
    system_.calibrate(scenario_.collector().survey_all(0.0, rng_), ambient, 0.0);
    scheduler_->notify_updated(std::move(ambient), 0.0);
    clock_days_ = 0.0;
  }
  transition(ZoneState::kServing);
}

TafLocSystem::DegradedResult Zone::localize(std::span<const double> rss,
                                            const TraceContext& trace,
                                            std::uint64_t queue_wait_ns) {
  TAFLOC_CHECK_STATE(admissible(), "zone '" + config_.name + "' not admitting queries (" +
                                       zone_state_name(state_) + ")");
  TraceScope scope(tracer_, trace, queue_wait_ns);
  scope.record().set_state(zone_state_name(state_));
  const std::uint64_t ordinal = ++queries_;

  // Latency is only measured when someone consumes it (SLO accounting
  // or the zone.request_seconds histogram); otherwise the query path
  // pays no extra clock reads beyond the trace scope itself.
  const bool want_latency = slo_deadline_ns_ > 0 || request_hist_ != nullptr;
  const std::uint64_t t0 = want_latency ? tracer_.now_ns() : 0;

  // Deterministic fault injection for drills: every Nth query (by zone
  // ordinal) is delayed, so tests can predict exactly which requests
  // land in the slow-query log.
  if (config_.fault_slow_every > 0 && config_.fault_slow_ms > 0.0 &&
      ordinal % config_.fault_slow_every == 0) {
    TraceStage fault_stage("zone.fault.delay");
    scope.record().fault_injected = true;
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(config_.fault_slow_ms));
  }

  TafLocSystem::DegradedResult result;
  {
    TraceStage serve_stage("zone.serve");
    result = system_.localize_degraded(rss);
  }

  TraceRecord& rec = scope.record();
  rec.confidence = result.confidence;
  rec.links_used = static_cast<std::uint32_t>(result.links_used);
  rec.links_total = static_cast<std::uint32_t>(result.links_total);
  rec.served = result.served;
  rec.degraded = result.degraded;

  if (want_latency) {
    const std::uint64_t elapsed_ns = tracer_.now_ns() - t0;
    if (request_hist_ != nullptr) {
      request_hist_->observe(static_cast<double>(elapsed_ns) * 1e-9);
    }
    if (slo_deadline_ns_ > 0) {
      if (elapsed_ns <= slo_deadline_ns_) {
        ++slo_ok_;
        if (slo_ok_counter_ != nullptr) slo_ok_counter_->add(1);
      } else {
        ++slo_violated_;
        if (slo_violated_counter_ != nullptr) slo_violated_counter_->add(1);
      }
      if (slo_budget_gauge_ != nullptr) slo_budget_gauge_->set(slo_budget_remaining());
    }
  }

  // The link-health verdict drives the serving <-> degraded edge; a
  // resurveying zone reports through its own state until the commit.
  if (state_ == ZoneState::kServing && result.degraded) {
    transition(ZoneState::kDegraded);
  } else if (state_ == ZoneState::kDegraded && result.served && !result.degraded) {
    transition(ZoneState::kServing);
  }
  return result;
}

void Zone::note_shed() noexcept {
  ++sheds_;
  if (shed_counter_ != nullptr) shed_counter_->add(1);
}

double Zone::slo_budget_remaining() const noexcept {
  const std::uint64_t total = slo_ok_ + slo_violated_;
  const double allowed = static_cast<double>(total) * (1.0 - config_.slo_target);
  return allowed - static_cast<double>(slo_violated_);
}

Zone::AmbientResult Zone::observe_ambient(std::span<const double> ambient, double t_days) {
  AmbientResult out;
  if (!admissible()) return out;
  out.accepted = true;
  // The scheduler is the authority on whether the sample carries any
  // timing information: an out-of-order or all-NaN scan is dropped, and
  // a dropped sample must not move the zone clock that probe() and
  // resurvey admission read (the drop counter delta is exact -- all
  // scheduler mutation happens on this serving thread).
  const std::size_t dropped_before = scheduler_->dropped_observations();
  out.triggered = scheduler_->observe_ambient(ambient, t_days);
  out.sample_accepted = scheduler_->dropped_observations() == dropped_before;
  out.staleness_db = scheduler_->estimated_staleness_db();
  if (out.sample_accepted && t_days > clock_days_) clock_days_ = t_days;
  if (out.triggered) out.resurvey_started = request_resurvey(t_days);
  return out;
}

Zone::IngestResult Zone::ingest_batch(const ingest::NodeBatch& batch) {
  IngestResult out;
  if (!admissible()) return out;
  out.accepted = true;

  // The assembler keeps lifetime totals; this request's contribution is
  // the counter delta (exact -- all ingest runs on the serving thread).
  const ingest::IngestCounters before = assembler_.counters();
  const std::vector<ingest::CompletedRound> rounds = assembler_.ingest(batch);
  const ingest::IngestCounters& after = assembler_.counters();
  out.readings = after.readings - before.readings;
  out.dups_dropped = after.dups_dropped - before.dups_dropped;
  out.stale_dropped = after.stale_dropped - before.stale_dropped;
  out.bad_readings = after.bad_readings - before.bad_readings;
  out.rounds_completed = after.rounds_completed - before.rounds_completed;

  for (const ingest::CompletedRound& round : rounds) {
    const double motion = ingest::movement_db(round.y, scheduler_->baseline());
    out.last_motion_db = motion;
    if (motion < config_.ingest.motion_threshold_db) {
      // Nobody moved: the round is an ambient sample -- the free
      // scheduling signal.  observe_ambient handles the clock, the
      // staleness trigger, and resurvey admission.
      ++out.gated_ambient;
      observe_ambient(round.y, round.t_days);
    } else {
      ++out.admitted_queries;
      IngestResult::Query q;
      q.t_days = round.t_days;
      q.motion_db = motion;
      q.result = localize(round.y);
      out.queries.push_back(std::move(q));
    }
    // A resurvey started by the gated ambient path may have flipped the
    // zone to kResurveying; both paths still admit, so keep draining
    // the completed rounds.
  }

  if (ingest_batches_counter_ != nullptr) {
    ingest_batches_counter_->add(1);
    ingest_readings_counter_->add(out.readings);
    ingest_dups_counter_->add(out.dups_dropped);
    ingest_stale_counter_->add(out.stale_dropped);
    ingest_bad_counter_->add(out.bad_readings);
    ingest_rounds_counter_->add(out.rounds_completed);
    ingest_expired_counter_->add(after.rounds_expired - before.rounds_expired);
    ingest_gated_counter_->add(out.gated_ambient);
    ingest_admitted_counter_->add(out.admitted_queries);
  }
  return out;
}

bool Zone::request_resurvey(double t_days) {
  if (state_ != ZoneState::kServing && state_ != ZoneState::kDegraded) return false;
  if (update_in_flight()) return false;

  // Admission (cheap, serving thread): survey the reference grids
  // through the collector, WAL the raw inputs, build the problem.
  const Matrix cols =
      scenario_.collector().survey_grids(system_.reference_locations(), t_days, rng_);
  Vector ambient = scenario_.collector().ambient_scan(t_days, rng_);
  pending_ambient_ = ambient;
  pending_t_days_ = t_days;
  resume_state_ = state_;
  transition(ZoneState::kResurveying);
  try {
    inflight_ = std::make_unique<TafLocSystem::StagedUpdate>(
        system_.stage_update(cols, std::move(ambient), t_days));
  } catch (const std::exception& e) {
    {
      std::lock_guard<std::mutex> lock(err_mu_);
      last_error_ = std::string("stage_update: ") + e.what();
    }
    TAFLOC_LOG_ERROR << "zone '" << config_.name << "': stage_update failed: " << e.what();
    transition(resume_state_);
    return false;
  }
  if (t_days > clock_days_) clock_days_ = t_days;
  job_phase_.store(JobPhase::kSolving, std::memory_order_release);

  auto solve = [this] {
    try {
      system_.solve_staged_update(*inflight_);
      job_phase_.store(JobPhase::kSolved, std::memory_order_release);
    } catch (const std::exception& e) {
      {
        std::lock_guard<std::mutex> lock(err_mu_);
        last_error_ = std::string("solve: ") + e.what();
      }
      job_phase_.store(JobPhase::kFailed, std::memory_order_release);
    }
    if (wakeup_) wakeup_();
  };
  if (jobs_ == nullptr) {
    solve();
    finish_update();
  } else {
    jobs_->submit(std::move(solve));
  }
  return true;
}

Zone::ProbeResult Zone::probe() {
  TAFLOC_CHECK_STATE(admissible(), "zone '" + config_.name + "' not admitting probes (" +
                                       zone_state_name(state_) + ")");
  const GridMap& grid = scenario_.deployment().grid();
  const std::size_t cell = (probes_ * 17 + 5) % grid.num_cells();
  ++probes_;
  ProbeResult out;
  out.truth = grid.center(cell);
  const Vector rss = scenario_.collector().observe(out.truth, clock_days_, rng_);
  const TafLocSystem::DegradedResult result = localize(rss);
  out.estimate = result.point;
  out.error_m = std::hypot(result.point.x - out.truth.x, result.point.y - out.truth.y);
  out.degraded = result.degraded;
  return out;
}

void Zone::poll() {
  const JobPhase phase = job_phase_.load(std::memory_order_acquire);
  if (phase == JobPhase::kSolved || phase == JobPhase::kFailed) finish_update();
}

void Zone::finish_update() {
  const JobPhase phase = job_phase_.load(std::memory_order_acquire);
  if (inflight_ == nullptr) return;
  if (phase == JobPhase::kSolved) {
    try {
      system_.commit_update(std::move(*inflight_));
      scheduler_->notify_updated(std::move(pending_ambient_), pending_t_days_);
      ++updates_committed_;
    } catch (const std::exception& e) {
      {
        std::lock_guard<std::mutex> lock(err_mu_);
        last_error_ = std::string("commit_update: ") + e.what();
      }
      TAFLOC_LOG_ERROR << "zone '" << config_.name << "': commit failed: " << e.what();
      ++updates_failed_;
    }
  } else if (phase == JobPhase::kFailed) {
    system_.abandon_staged_update(*inflight_);
    ++updates_failed_;
    TAFLOC_LOG_WARN << "zone '" << config_.name
                    << "': update abandoned (solver failed); serving continues on the old matrix";
  } else {
    return;  // still solving; the next poll() will land it.
  }
  inflight_.reset();
  pending_ambient_ = Vector();
  job_phase_.store(JobPhase::kIdle, std::memory_order_release);
  // A drain that arrived mid-solve keeps the zone in kDraining; only a
  // still-resurveying zone takes the return edge.
  if (state_ == ZoneState::kResurveying) transition(resume_state_);
}

void Zone::drain() {
  if (state_ == ZoneState::kStopped) return;
  if (state_ == ZoneState::kLoading) {
    transition(ZoneState::kStopped);
    return;
  }
  if (state_ != ZoneState::kDraining) transition(ZoneState::kDraining);
  // Finish in-flight work: wait out the solve, then commit (or abandon)
  // on this thread.
  while (job_phase_.load(std::memory_order_acquire) == JobPhase::kSolving) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  finish_update();
  if (system_.durable() && system_.calibrated()) {
    try {
      system_.save();  // epilogue snapshot; WAL rotates with it.
    } catch (const std::exception& e) {
      std::lock_guard<std::mutex> lock(err_mu_);
      last_error_ = std::string("drain save: ") + e.what();
      TAFLOC_LOG_ERROR << "zone '" << config_.name << "': epilogue snapshot failed: " << e.what();
    }
  }
  transition(ZoneState::kStopped);
}

bool Zone::update_in_flight() const noexcept {
  return job_phase_.load(std::memory_order_acquire) != JobPhase::kIdle || inflight_ != nullptr;
}

Zone::Status Zone::status() const {
  Status s;
  s.state = state_;
  s.queries = queries_;
  s.updates_committed = updates_committed_;
  s.updates_failed = updates_failed_;
  s.update_in_flight = update_in_flight();
  s.staleness_db = scheduler_ ? scheduler_->estimated_staleness_db() : 0.0;
  s.clock_days = clock_days_;
  s.wal_sequence = system_.durable() ? system_.durable_sequence() : 0;
  s.kernel_backend = kernel_backend_name(active_kernel_backend());
  s.quantized_tier = system_.quantized_tier_active();
  s.slo_ok = slo_ok_;
  s.slo_violated = slo_violated_;
  if (slo_deadline_ns_ > 0) {
    s.slo_budget_remaining = slo_budget_remaining();
    s.slo_degraded = s.slo_budget_remaining < 0.0;
  }
  s.sheds = sheds_;
  {
    std::lock_guard<std::mutex> lock(err_mu_);
    s.last_error = last_error_;
  }
  return s;
}

void Zone::apply_scheduler_config(const SchedulerConfig& config) {
  config_.scheduler = config;
  if (scheduler_) scheduler_->set_config(config);
}

}  // namespace tafloc::daemon
