#include "tafloc/daemon/zone.h"

#include <chrono>
#include <cmath>
#include <stdexcept>
#include <thread>
#include <utility>

#include "tafloc/linalg/backend.h"
#include "tafloc/util/check.h"
#include "tafloc/util/log.h"

namespace tafloc::daemon {

namespace {

TafLocConfig make_system_config(const ZoneConfig& config) {
  TafLocConfig cfg;
  cfg.telemetry.enabled = config.telemetry;
  cfg.telemetry.zone = config.name;
  return cfg;
}

}  // namespace

const char* zone_state_name(ZoneState state) {
  switch (state) {
    case ZoneState::kLoading: return "loading";
    case ZoneState::kCalibrating: return "calibrating";
    case ZoneState::kServing: return "serving";
    case ZoneState::kDegraded: return "degraded";
    case ZoneState::kResurveying: return "resurveying";
    case ZoneState::kDraining: return "draining";
    case ZoneState::kStopped: return "stopped";
  }
  return "unknown";
}

bool zone_transition_legal(ZoneState from, ZoneState to) noexcept {
  if (from == to) return false;
  switch (from) {
    case ZoneState::kLoading:
      return to == ZoneState::kCalibrating || to == ZoneState::kStopped;
    case ZoneState::kCalibrating:
      return to == ZoneState::kServing || to == ZoneState::kDraining ||
             to == ZoneState::kStopped;
    case ZoneState::kServing:
    case ZoneState::kDegraded:
      return to == ZoneState::kDegraded || to == ZoneState::kServing ||
             to == ZoneState::kResurveying || to == ZoneState::kDraining;
    case ZoneState::kResurveying:
      return to == ZoneState::kServing || to == ZoneState::kDegraded ||
             to == ZoneState::kDraining;
    case ZoneState::kDraining:
      return to == ZoneState::kStopped;
    case ZoneState::kStopped:
      return false;
  }
  return false;
}

Zone::Zone(ZoneConfig config, JobQueue* jobs)
    : config_(std::move(config)),
      jobs_(jobs),
      scenario_(Scenario::paper_room(config_.seed)),
      system_(scenario_.deployment(), make_system_config(config_)),
      rng_(config_.seed ^ 0x5a11ull) {
  TAFLOC_CHECK_ARG(!config_.name.empty(), "zone needs a name");
}

Zone::~Zone() {
  // The solve job captures `this`; never destroy underneath it.
  while (job_phase_.load(std::memory_order_acquire) == JobPhase::kSolving) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

bool Zone::admissible() const noexcept {
  return state_ == ZoneState::kServing || state_ == ZoneState::kDegraded ||
         state_ == ZoneState::kResurveying;
}

void Zone::transition(ZoneState to) {
  TAFLOC_CHECK_STATE(zone_transition_legal(state_, to),
                     "zone '" + config_.name + "': illegal transition " +
                         zone_state_name(state_) + " -> " + zone_state_name(to));
  TAFLOC_LOG_INFO << "zone '" << config_.name << "': " << zone_state_name(state_) << " -> "
                  << zone_state_name(to);
  state_ = to;
  MetricRegistry& reg = system_.telemetry();
  if (reg.enabled()) {
    reg.counter("zone.transitions").add(1);
    reg.gauge("zone.state").set(static_cast<double>(to));
    reg.record_span(std::string("zone.state.") + zone_state_name(to), 0, reg.now_ns(), 0);
  }
}

void Zone::start() {
  TAFLOC_CHECK_STATE(state_ == ZoneState::kLoading,
                     "zone '" + config_.name + "': start() from " + zone_state_name(state_));
  transition(ZoneState::kCalibrating);

  scheduler_.emplace(Vector(scenario_.deployment().num_links(), 0.0), 0.0, config_.scheduler);
  scheduler_->attach_telemetry(&system_.telemetry());

  bool recovered = false;
  if (!config_.state_dir.empty()) {
    system_.attach_durability({config_.state_dir});
    system_.attach_scheduler(&*scheduler_);
    const RecoveryReport report = system_.recover();
    if (report.outcome != RecoveryReport::Outcome::kUnrecoverable) {
      recovered = true;
      clock_days_ = scheduler_->last_update_days();
      TAFLOC_LOG_INFO << "zone '" << config_.name << "': recovered ("
                      << recovery_outcome_name(report.outcome) << ", " << report.replayed_records
                      << " records replayed)";
    } else {
      TAFLOC_LOG_WARN << "zone '" << config_.name
                      << "': no recoverable state, running a full calibration survey";
    }
  }
  if (!recovered) {
    Vector ambient = scenario_.collector().ambient_scan(0.0, rng_);
    system_.calibrate(scenario_.collector().survey_all(0.0, rng_), ambient, 0.0);
    scheduler_->notify_updated(std::move(ambient), 0.0);
    clock_days_ = 0.0;
  }
  transition(ZoneState::kServing);
}

TafLocSystem::DegradedResult Zone::localize(std::span<const double> rss) {
  TAFLOC_CHECK_STATE(admissible(), "zone '" + config_.name + "' not admitting queries (" +
                                       zone_state_name(state_) + ")");
  const TafLocSystem::DegradedResult result = system_.localize_degraded(rss);
  ++queries_;
  // The link-health verdict drives the serving <-> degraded edge; a
  // resurveying zone reports through its own state until the commit.
  if (state_ == ZoneState::kServing && result.degraded) {
    transition(ZoneState::kDegraded);
  } else if (state_ == ZoneState::kDegraded && result.served && !result.degraded) {
    transition(ZoneState::kServing);
  }
  return result;
}

Zone::AmbientResult Zone::observe_ambient(std::span<const double> ambient, double t_days) {
  AmbientResult out;
  if (!admissible()) return out;
  out.accepted = true;
  if (t_days > clock_days_) clock_days_ = t_days;
  out.triggered = scheduler_->observe_ambient(ambient, t_days);
  out.staleness_db = scheduler_->estimated_staleness_db();
  if (out.triggered) out.resurvey_started = request_resurvey(t_days);
  return out;
}

bool Zone::request_resurvey(double t_days) {
  if (state_ != ZoneState::kServing && state_ != ZoneState::kDegraded) return false;
  if (update_in_flight()) return false;

  // Admission (cheap, serving thread): survey the reference grids
  // through the collector, WAL the raw inputs, build the problem.
  const Matrix cols =
      scenario_.collector().survey_grids(system_.reference_locations(), t_days, rng_);
  Vector ambient = scenario_.collector().ambient_scan(t_days, rng_);
  pending_ambient_ = ambient;
  pending_t_days_ = t_days;
  resume_state_ = state_;
  transition(ZoneState::kResurveying);
  try {
    inflight_ = std::make_unique<TafLocSystem::StagedUpdate>(
        system_.stage_update(cols, std::move(ambient), t_days));
  } catch (const std::exception& e) {
    {
      std::lock_guard<std::mutex> lock(err_mu_);
      last_error_ = std::string("stage_update: ") + e.what();
    }
    TAFLOC_LOG_ERROR << "zone '" << config_.name << "': stage_update failed: " << e.what();
    transition(resume_state_);
    return false;
  }
  if (t_days > clock_days_) clock_days_ = t_days;
  job_phase_.store(JobPhase::kSolving, std::memory_order_release);

  auto solve = [this] {
    try {
      system_.solve_staged_update(*inflight_);
      job_phase_.store(JobPhase::kSolved, std::memory_order_release);
    } catch (const std::exception& e) {
      {
        std::lock_guard<std::mutex> lock(err_mu_);
        last_error_ = std::string("solve: ") + e.what();
      }
      job_phase_.store(JobPhase::kFailed, std::memory_order_release);
    }
    if (wakeup_) wakeup_();
  };
  if (jobs_ == nullptr) {
    solve();
    finish_update();
  } else {
    jobs_->submit(std::move(solve));
  }
  return true;
}

Zone::ProbeResult Zone::probe() {
  TAFLOC_CHECK_STATE(admissible(), "zone '" + config_.name + "' not admitting probes (" +
                                       zone_state_name(state_) + ")");
  const GridMap& grid = scenario_.deployment().grid();
  const std::size_t cell = (probes_ * 17 + 5) % grid.num_cells();
  ++probes_;
  ProbeResult out;
  out.truth = grid.center(cell);
  const Vector rss = scenario_.collector().observe(out.truth, clock_days_, rng_);
  const TafLocSystem::DegradedResult result = localize(rss);
  out.estimate = result.point;
  out.error_m = std::hypot(result.point.x - out.truth.x, result.point.y - out.truth.y);
  out.degraded = result.degraded;
  return out;
}

void Zone::poll() {
  const JobPhase phase = job_phase_.load(std::memory_order_acquire);
  if (phase == JobPhase::kSolved || phase == JobPhase::kFailed) finish_update();
}

void Zone::finish_update() {
  const JobPhase phase = job_phase_.load(std::memory_order_acquire);
  if (inflight_ == nullptr) return;
  if (phase == JobPhase::kSolved) {
    try {
      system_.commit_update(std::move(*inflight_));
      scheduler_->notify_updated(std::move(pending_ambient_), pending_t_days_);
      ++updates_committed_;
    } catch (const std::exception& e) {
      {
        std::lock_guard<std::mutex> lock(err_mu_);
        last_error_ = std::string("commit_update: ") + e.what();
      }
      TAFLOC_LOG_ERROR << "zone '" << config_.name << "': commit failed: " << e.what();
      ++updates_failed_;
    }
  } else if (phase == JobPhase::kFailed) {
    system_.abandon_staged_update(*inflight_);
    ++updates_failed_;
    TAFLOC_LOG_WARN << "zone '" << config_.name
                    << "': update abandoned (solver failed); serving continues on the old matrix";
  } else {
    return;  // still solving; the next poll() will land it.
  }
  inflight_.reset();
  pending_ambient_ = Vector();
  job_phase_.store(JobPhase::kIdle, std::memory_order_release);
  // A drain that arrived mid-solve keeps the zone in kDraining; only a
  // still-resurveying zone takes the return edge.
  if (state_ == ZoneState::kResurveying) transition(resume_state_);
}

void Zone::drain() {
  if (state_ == ZoneState::kStopped) return;
  if (state_ == ZoneState::kLoading) {
    transition(ZoneState::kStopped);
    return;
  }
  if (state_ != ZoneState::kDraining) transition(ZoneState::kDraining);
  // Finish in-flight work: wait out the solve, then commit (or abandon)
  // on this thread.
  while (job_phase_.load(std::memory_order_acquire) == JobPhase::kSolving) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  finish_update();
  if (system_.durable() && system_.calibrated()) {
    try {
      system_.save();  // epilogue snapshot; WAL rotates with it.
    } catch (const std::exception& e) {
      std::lock_guard<std::mutex> lock(err_mu_);
      last_error_ = std::string("drain save: ") + e.what();
      TAFLOC_LOG_ERROR << "zone '" << config_.name << "': epilogue snapshot failed: " << e.what();
    }
  }
  transition(ZoneState::kStopped);
}

bool Zone::update_in_flight() const noexcept {
  return job_phase_.load(std::memory_order_acquire) != JobPhase::kIdle || inflight_ != nullptr;
}

Zone::Status Zone::status() const {
  Status s;
  s.state = state_;
  s.queries = queries_;
  s.updates_committed = updates_committed_;
  s.updates_failed = updates_failed_;
  s.update_in_flight = update_in_flight();
  s.staleness_db = scheduler_ ? scheduler_->estimated_staleness_db() : 0.0;
  s.clock_days = clock_days_;
  s.wal_sequence = system_.durable() ? system_.durable_sequence() : 0;
  s.kernel_backend = kernel_backend_name(active_kernel_backend());
  s.quantized_tier = system_.quantized_tier_active();
  {
    std::lock_guard<std::mutex> lock(err_mu_);
    s.last_error = last_error_;
  }
  return s;
}

void Zone::apply_scheduler_config(const SchedulerConfig& config) {
  config_.scheduler = config;
  if (scheduler_) scheduler_->set_config(config);
}

}  // namespace tafloc::daemon
