// EventLoop -- a poll(2)-based single-threaded reactor, the serving
// thread of taflocd.
//
// Design (the classic self-pipe pattern, dinit/s6 style): the loop
// owns a pipe whose read end is always polled.  post() -- callable
// from ANY thread, including JobQueue workers and signal handlers via
// post_from_signal() -- appends a task and writes one byte to the
// pipe, so a sleeping poll() wakes immediately.  All registered fd
// handlers and posted tasks run on the loop thread, which is what lets
// Zone keep its single-threaded mutation discipline without locks on
// the serving path.
#pragma once

#include <cstddef>
#include <functional>
#include <mutex>
#include <vector>

namespace tafloc::daemon {

class EventLoop {
 public:
  /// `revents` is the poll(2) result mask for the fd.
  using FdHandler = std::function<void(short revents)>;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Watch `fd` for `events` (POLLIN etc.).  Loop-thread only.
  void add_fd(int fd, short events, FdHandler handler);
  /// Stop watching `fd` (no-op when unknown).  Safe from inside its own
  /// handler; the removal takes effect before the next poll round.
  void remove_fd(int fd);
  std::size_t watched_fds() const noexcept;

  /// Run `task` on the loop thread in the next iteration.  Thread-safe;
  /// wakes a sleeping poll().
  void post(std::function<void()> task);
  /// Async-signal-safe wakeup: just the pipe write, no allocation.  The
  /// loop thread then runs the idle hook, which can inspect
  /// sig_atomic_t flags set by the handler.
  void post_from_signal() noexcept;

  /// Called once per loop iteration, after fd events and posted tasks.
  /// taflocd uses it to poll() every zone for finished update jobs.
  void set_idle_hook(std::function<void()> hook) { idle_hook_ = std::move(hook); }

  /// Run until stop().  `timeout_ms` bounds each poll() sleep so the
  /// idle hook runs at least that often (-1 = only on events).
  void run(int timeout_ms = -1);
  /// One poll round (tests); returns the number of fd events handled.
  int run_once(int timeout_ms);
  /// Thread-safe: the loop returns from run() after the current round.
  void stop();
  bool running() const noexcept { return running_; }

 private:
  void drain_wakeup_pipe();
  void run_posted();

  struct Watch {
    int fd = -1;
    short events = 0;
    FdHandler handler;
  };

  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  std::vector<Watch> watches_;
  bool running_ = false;
  volatile bool stop_requested_ = false;

  std::mutex post_mu_;
  std::vector<std::function<void()>> posted_;

  std::function<void()> idle_hook_;
};

}  // namespace tafloc::daemon
