// taflocd configuration -- one daemon, many zones.
//
// The config file is a minimal INI dialect (comments with '#', blank
// lines ignored):
//
//   # daemon-wide settings come before the first section
//   socket = /run/tafloc/taflocd.sock
//   telemetry_dir = /var/lib/tafloc/telemetry
//
//   [zone office]
//   seed = 4242                 # scenario RNG seed (sim-backed zone)
//   state_dir = /var/lib/tafloc/office   # empty = zone not durable
//   staleness_threshold_db = 3.0
//   min_interval_days = 1.0
//   max_interval_days = 45.0
//   telemetry = true
//   trace_sample_every = 100    # 0 = off, 1 = every query, N = every Nth
//   trace_ring_capacity = 256
//   slow_query_ms = 50.0        # 0 = slow-query log off
//   slow_log_capacity = 64
//   slo_deadline_ms = 100.0     # 0 = no latency SLO
//   slo_target = 0.99           # fraction of queries that must meet it
//   fault_slow_every = 0        # drills: delay every Nth query...
//   fault_slow_ms = 0.0         # ...by this much (0/0 = off)
//   motion_threshold_db = 1.0   # ingest gate: below = ambient, above = query
//   ingest_dedup_window = 1024  # per-node sequence dedup window
//   ingest_max_pending_rounds = 64  # open merge rounds before expiry
//
// Parsing is strict: unknown keys, duplicate zone names, a missing
// socket path, or an unparsable number all throw std::runtime_error
// with the offending line number -- a daemon must refuse a config it
// does not fully understand rather than half-apply it.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "tafloc/tafloc/scheduler.h"

namespace tafloc::daemon {

/// Edge-ingestion knobs (the kBatchIngest path; see src/ingest).
struct IngestConfig {
  /// Symmetric-diff movement gate against the scheduler's ambient
  /// baseline: a completed round whose mean |Y - baseline| stays below
  /// this is classified ambient (feeds the update scheduler); at or
  /// above it the round is admitted as a localize query.
  double motion_threshold_db = 1.0;
  std::uint64_t dedup_window = 1024;      ///< per-node sequence dedup window.
  std::uint64_t max_pending_rounds = 64;  ///< open merge rounds before expiry.
};

struct ZoneConfig {
  std::string name;
  std::uint64_t seed = 1;     ///< Scenario::paper_room seed backing the zone.
  std::string state_dir;      ///< durability directory; empty = in-memory only.
  SchedulerConfig scheduler;  ///< time-adaptive update trigger tuning.
  bool telemetry = true;      ///< per-zone MetricRegistry on/off.

  // -- request tracing --
  std::uint64_t trace_sample_every = 0;   ///< 0 = off, N = every Nth query.
  std::uint64_t trace_ring_capacity = 256;
  double slow_query_ms = 0.0;             ///< slow-query threshold (0 = off).
  std::uint64_t slow_log_capacity = 64;

  // -- latency SLO --
  double slo_deadline_ms = 0.0;  ///< per-query deadline (0 = no SLO).
  double slo_target = 0.99;      ///< fraction that must meet the deadline.

  // -- fault injection (drills/tests only) --
  std::uint64_t fault_slow_every = 0;  ///< delay every Nth query (0 = off).
  double fault_slow_ms = 0.0;          ///< injected delay per hit.

  // -- edge ingestion (kBatchIngest) --
  IngestConfig ingest;
};

struct DaemonConfig {
  std::string socket_path;    ///< Unix domain socket taflocd listens on.
  std::string telemetry_dir;  ///< per-zone JSONL exports on drain; empty = off.
  std::vector<ZoneConfig> zones;

  /// Parse from a stream / file.  Throws std::runtime_error with a
  /// line-numbered message on any malformed or unknown input.
  static DaemonConfig parse(std::istream& in);
  static DaemonConfig load_file(const std::string& path);

  /// The zone config of `name`, or nullptr.
  const ZoneConfig* find_zone(const std::string& name) const;
};

}  // namespace tafloc::daemon
