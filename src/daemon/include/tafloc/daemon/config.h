// taflocd configuration -- one daemon, many zones.
//
// The config file is a minimal INI dialect (comments with '#', blank
// lines ignored):
//
//   # daemon-wide settings come before the first section
//   socket = /run/tafloc/taflocd.sock
//   telemetry_dir = /var/lib/tafloc/telemetry
//
//   [zone office]
//   seed = 4242                 # scenario RNG seed (sim-backed zone)
//   state_dir = /var/lib/tafloc/office   # empty = zone not durable
//   staleness_threshold_db = 3.0
//   min_interval_days = 1.0
//   max_interval_days = 45.0
//   telemetry = true
//
// Parsing is strict: unknown keys, duplicate zone names, a missing
// socket path, or an unparsable number all throw std::runtime_error
// with the offending line number -- a daemon must refuse a config it
// does not fully understand rather than half-apply it.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "tafloc/tafloc/scheduler.h"

namespace tafloc::daemon {

struct ZoneConfig {
  std::string name;
  std::uint64_t seed = 1;     ///< Scenario::paper_room seed backing the zone.
  std::string state_dir;      ///< durability directory; empty = in-memory only.
  SchedulerConfig scheduler;  ///< time-adaptive update trigger tuning.
  bool telemetry = true;      ///< per-zone MetricRegistry on/off.
};

struct DaemonConfig {
  std::string socket_path;    ///< Unix domain socket taflocd listens on.
  std::string telemetry_dir;  ///< per-zone JSONL exports on drain; empty = off.
  std::vector<ZoneConfig> zones;

  /// Parse from a stream / file.  Throws std::runtime_error with a
  /// line-numbered message on any malformed or unknown input.
  static DaemonConfig parse(std::istream& in);
  static DaemonConfig load_file(const std::string& path);

  /// The zone config of `name`, or nullptr.
  const ZoneConfig* find_zone(const std::string& name) const;
};

}  // namespace tafloc::daemon
