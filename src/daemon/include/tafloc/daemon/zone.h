// Zone -- one supervised serving unit inside taflocd: a TafLocSystem,
// its UpdateScheduler, a sim-backed collector, and the per-zone
// durability directory, wrapped in an explicit lifecycle state machine
//
//   loading -> calibrating -> serving <-> degraded
//                 |               |         |
//                 |             resurveying-+
//                 |               |
//                 +--------> draining -> stopped
//
// Transition legality is enforced (zone_transition_legal): an illegal
// transition is a supervisor bug and throws std::logic_error rather
// than silently corrupting the lifecycle.  Every transition lands in
// the zone's telemetry (zone.transitions counter, a zone.state gauge,
// and a timestamped `zone.state.<name>` trace event).
//
// Threading discipline (the whole point of the state machine):
//
//   * ALL TafLocSystem mutation happens on the serving thread -- the
//     thread that runs the daemon event loop and calls localize()/
//     observe_ambient()/poll()/drain().
//   * A recalibration never blocks serving.  request_resurvey() stages
//     the update (WAL append + problem build, cheap) and hands the
//     expensive LoLi-IR solve to the shared JobQueue.  While the worker
//     solves, the zone is kResurveying and keeps answering queries from
//     the old matrix.
//   * The worker's completion hook only flips an atomic and pokes the
//     wakeup callback; the serving thread applies the commit (atomic
//     matrix swap) in the next poll().
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>

#include <vector>

#include "tafloc/daemon/config.h"
#include "tafloc/exec/job_queue.h"
#include "tafloc/ingest/assembler.h"
#include "tafloc/sim/scenario.h"
#include "tafloc/tafloc/scheduler.h"
#include "tafloc/tafloc/system.h"
#include "tafloc/telemetry/trace.h"
#include "tafloc/util/rng.h"

namespace tafloc::daemon {

enum class ZoneState : std::uint8_t {
  kLoading = 0,      ///< constructed, start() not yet run.
  kCalibrating = 1,  ///< recovering from disk or running the full survey.
  kServing = 2,      ///< answering queries, all links healthy.
  kDegraded = 3,     ///< answering queries over a partial link set.
  kResurveying = 4,  ///< update in flight; still answering from the old matrix.
  kDraining = 5,     ///< admissions stopped; finishing in-flight work.
  kStopped = 6,      ///< terminal; state flushed (when durable).
};

const char* zone_state_name(ZoneState state);

/// The supervision table: true when `from -> to` is a legal lifecycle
/// transition.  Self-transitions are illegal (they would hide missed
/// edges); kStopped is terminal.
bool zone_transition_legal(ZoneState from, ZoneState to) noexcept;

class Zone {
 public:
  /// `jobs` is the daemon-wide supervised worker pool; nullptr makes
  /// updates synchronous (tests, single-threaded tools).  The queue
  /// must outlive the zone.
  Zone(ZoneConfig config, JobQueue* jobs);
  /// Finishes any in-flight update job (the worker holds a pointer into
  /// this zone); does NOT save -- call drain() for a graceful stop.
  ~Zone();

  Zone(const Zone&) = delete;
  Zone& operator=(const Zone&) = delete;

  const std::string& name() const noexcept { return config_.name; }
  ZoneState state() const noexcept { return state_; }
  /// True in the states that admit queries (serving, degraded,
  /// resurveying).
  bool admissible() const noexcept;

  /// loading -> calibrating -> serving.  Durable zones first attempt
  /// crash recovery from state_dir; only a zone with no usable snapshot
  /// pays for the full calibration survey.
  void start();

  /// Serve one query through the fault-tolerant path.  Drives the
  /// serving <-> degraded edge from the result's link-health verdict.
  /// Throws std::logic_error when !admissible() (callers gate on it).
  /// `trace` is the client's trace context (id + forced sampling);
  /// `queue_wait_ns` is how long the request sat between socket read
  /// and dispatch, stamped into the trace record.
  TafLocSystem::DegradedResult localize(std::span<const double> rss,
                                        const TraceContext& trace = {},
                                        std::uint64_t queue_wait_ns = 0);

  /// Record one refused admission (the server could not hand the query
  /// to localize()); feeds the zone.shed counter `taflocctl top` shows.
  void note_shed() noexcept;

  struct AmbientResult {
    bool accepted = false;   ///< false: zone not admissible.
    /// The scheduler's verdict on the sample itself: false when it was
    /// dropped (out-of-order timestamp or no finite entry).  A dropped
    /// sample leaves the zone clock untouched.
    bool sample_accepted = false;
    bool triggered = false;  ///< scheduler crossed the staleness threshold.
    bool resurvey_started = false;
    double staleness_db = 0.0;
  };
  /// Feed an ambient scan to the update scheduler; a trigger starts a
  /// supervised resurvey immediately (unless one is already in flight).
  AmbientResult observe_ambient(std::span<const double> ambient, double t_days);

  /// Result of feeding one node batch through the ingest front-end:
  /// exact per-batch accounting deltas plus the outcome of every round
  /// the batch completed (below the movement gate -> ambient into the
  /// scheduler, at/above it -> a localize query served inline).
  struct IngestResult {
    bool accepted = false;  ///< false: zone not admissible.
    std::uint64_t readings = 0;
    std::uint64_t dups_dropped = 0;
    std::uint64_t stale_dropped = 0;
    std::uint64_t bad_readings = 0;
    std::uint64_t rounds_completed = 0;
    std::uint64_t gated_ambient = 0;    ///< rounds classified ambient.
    std::uint64_t admitted_queries = 0; ///< rounds served as queries.
    double last_motion_db = 0.0;  ///< gate metric of the newest completed round.
    struct Query {
      double t_days = 0.0;
      double motion_db = 0.0;
      TafLocSystem::DegradedResult result;
    };
    std::vector<Query> queries;  ///< one per admitted round, oldest first.
  };
  /// Dedup + merge one node batch (see ingest::BatchAssembler), then
  /// gate every completed round on the symmetric diff against the
  /// scheduler baseline.  Ambient rounds flow through observe_ambient()
  /// (clock, staleness trigger, resurvey admission included); admitted
  /// rounds are served through localize().
  IngestResult ingest_batch(const ingest::NodeBatch& batch);

  /// Start a supervised reference re-survey at time `t_days`: survey
  /// through the zone's collector, stage the update, submit the solve
  /// to the job queue.  Returns false (no-op) when the zone is not
  /// admissible or an update is already in flight.
  bool request_resurvey(double t_days);

  /// Synthetic end-to-end check at a known location (see ProbeRequest).
  struct ProbeResult {
    Point2 truth{0.0, 0.0};
    Point2 estimate{0.0, 0.0};
    double error_m = 0.0;
    bool degraded = false;
  };
  ProbeResult probe();

  /// Apply finished background work: commit a solved update (atomic
  /// swap + snapshot) or abandon a failed one.  Serving-thread only;
  /// cheap no-op when nothing is pending.
  void poll();

  /// Graceful stop: refuse new admissions, wait out the in-flight
  /// solve, commit or abandon it, then (durable zones) WAL-flush and
  /// commit the epilogue snapshot.  Idempotent; leaves kStopped.
  void drain();

  /// True while an update is staged/solving/awaiting commit.
  bool update_in_flight() const noexcept;

  struct Status {
    ZoneState state = ZoneState::kLoading;
    std::uint64_t queries = 0;
    std::uint64_t updates_committed = 0;
    std::uint64_t updates_failed = 0;
    bool update_in_flight = false;
    double staleness_db = 0.0;
    double clock_days = 0.0;
    std::uint64_t wal_sequence = 0;  ///< 0 when not durable.
    std::string kernel_backend;      ///< active kernel backend (process-wide).
    bool quantized_tier = false;     ///< int8 scan tier active for this zone.
    // SLO accounting (all zero when slo_deadline_ms == 0).
    std::uint64_t slo_ok = 0;        ///< queries inside the deadline.
    std::uint64_t slo_violated = 0;  ///< queries past the deadline.
    double slo_budget_remaining = 0.0;  ///< violations the target still allows.
    bool slo_degraded = false;       ///< budget exhausted: annotate `degraded-slo`.
    std::uint64_t sheds = 0;         ///< admissions refused by the server.
    std::string last_error;
  };
  Status status() const;

  /// Live-apply new scheduler thresholds (taflocctl reload).
  void apply_scheduler_config(const SchedulerConfig& config);

  /// Called (from the worker thread) when background work finished and
  /// poll() has something to do -- wire this to the event loop's wakeup.
  void set_wakeup(std::function<void()> wakeup) { wakeup_ = std::move(wakeup); }

  /// Zone-labeled JSONL telemetry export (satellite of DESIGN.md §8).
  std::string telemetry_json() const { return system_.telemetry_snapshot_json(); }

  const TafLocSystem& system() const noexcept { return system_; }
  const ZoneConfig& config() const noexcept { return config_; }
  /// The zone's request-trace pipeline (ring + slow log); the server
  /// answers kTraceRequest from it.
  const Tracer& tracer() const noexcept { return tracer_; }

 private:
  enum class JobPhase : std::uint8_t { kIdle, kSolving, kSolved, kFailed };

  /// The one mutation point of state_: enforces the transition table
  /// and publishes the edge to telemetry.
  void transition(ZoneState to);
  /// Commit/abandon the finished update; returns to `resume_state_`
  /// only when still kResurveying (a drain overrides the return edge).
  void finish_update();
  double now_days() const noexcept { return clock_days_; }
  /// Violations the slo_target still allows minus those spent; negative
  /// once the error budget is exhausted.
  double slo_budget_remaining() const noexcept;

  ZoneConfig config_;
  JobQueue* jobs_;  ///< shared, not owned; nullptr = synchronous updates.
  Scenario scenario_;
  TafLocSystem system_;
  std::optional<UpdateScheduler> scheduler_;  ///< constructed in start().
  Rng rng_;
  Tracer tracer_;  ///< per-request tracing; feeds off system_'s registry.
  ingest::BatchAssembler assembler_;  ///< kBatchIngest dedup + merge state.

  // Cached telemetry handles (null when the registry is disabled) and
  // SLO accounting.  All serving-thread only.
  Histogram* request_hist_ = nullptr;    ///< zone.request_seconds.
  Counter* shed_counter_ = nullptr;      ///< zone.shed.
  Counter* ingest_batches_counter_ = nullptr;      ///< ingest.batches.
  Counter* ingest_readings_counter_ = nullptr;     ///< ingest.readings.
  Counter* ingest_dups_counter_ = nullptr;         ///< ingest.dups_dropped.
  Counter* ingest_stale_counter_ = nullptr;        ///< ingest.stale_dropped.
  Counter* ingest_bad_counter_ = nullptr;          ///< ingest.bad_readings.
  Counter* ingest_rounds_counter_ = nullptr;       ///< ingest.rounds_completed.
  Counter* ingest_expired_counter_ = nullptr;      ///< ingest.rounds_expired.
  Counter* ingest_gated_counter_ = nullptr;        ///< ingest.gated_ambient.
  Counter* ingest_admitted_counter_ = nullptr;     ///< ingest.admitted_queries.
  Counter* slo_ok_counter_ = nullptr;    ///< slo.ok.
  Counter* slo_violated_counter_ = nullptr;  ///< slo.violated.
  Gauge* slo_budget_gauge_ = nullptr;    ///< slo.budget_remaining.
  std::uint64_t slo_deadline_ns_ = 0;    ///< 0 = no latency SLO.
  std::uint64_t slo_ok_ = 0;
  std::uint64_t slo_violated_ = 0;
  std::uint64_t sheds_ = 0;

  ZoneState state_ = ZoneState::kLoading;
  ZoneState resume_state_ = ZoneState::kServing;  ///< post-resurvey return edge.
  double clock_days_ = 0.0;
  std::uint64_t queries_ = 0;
  std::uint64_t updates_committed_ = 0;
  std::uint64_t updates_failed_ = 0;
  std::uint64_t probes_ = 0;

  // In-flight update plumbing.  The serving thread owns inflight_ and
  // pending_*; the worker thread only reads inflight_ during the solve
  // and flips job_phase_ when done.  job_phase_ is the cross-thread
  // handshake: kSolving -> (kSolved | kFailed) happens on the worker,
  // every other edge on the serving thread.
  std::atomic<JobPhase> job_phase_{JobPhase::kIdle};
  std::unique_ptr<TafLocSystem::StagedUpdate> inflight_;
  Vector pending_ambient_;  ///< resurvey's ambient scan, for notify_updated.
  double pending_t_days_ = 0.0;
  std::function<void()> wakeup_;

  mutable std::mutex err_mu_;  ///< guards last_error_ (worker writes it).
  std::string last_error_;
};

}  // namespace tafloc::daemon
