// Umbrella header for the taflocd serving core.
#pragma once

#include "tafloc/daemon/config.h"
#include "tafloc/daemon/event_loop.h"
#include "tafloc/daemon/server.h"
#include "tafloc/daemon/wire.h"
#include "tafloc/daemon/zone.h"
