// ZoneManager + ControlServer -- the supervised multi-zone core of
// taflocd.
//
// ZoneManager owns every Zone plus the shared JobQueue their update
// solves run on; ControlServer owns the Unix domain socket, speaks the
// wire protocol (wire.h), and dispatches packets to zones through the
// manager.  Both live on the event-loop (serving) thread.
//
// Fault containment, dinit-style: one connection's malformed or
// version-skewed packets kill only that connection (one kError reply,
// then close); a zone's failure surfaces as a wire status, never as a
// daemon crash; a zone mid-recalibration keeps serving every other
// packet because the solve runs on the JobQueue, off this thread.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "tafloc/daemon/config.h"
#include "tafloc/daemon/event_loop.h"
#include "tafloc/daemon/wire.h"
#include "tafloc/daemon/zone.h"
#include "tafloc/exec/job_queue.h"

namespace tafloc::daemon {

class ZoneManager {
 public:
  explicit ZoneManager(const DaemonConfig& config);
  ~ZoneManager();

  ZoneManager(const ZoneManager&) = delete;
  ZoneManager& operator=(const ZoneManager&) = delete;

  /// start() every zone (recover-or-calibrate).  A zone that throws is
  /// drained and reported; the others keep going.  Returns the number
  /// of zones that reached serving.
  std::size_t start_all();

  Zone* find(const std::string& name);
  const std::vector<std::unique_ptr<Zone>>& zones() const noexcept { return zones_; }

  /// poll() every zone -- the event loop's idle hook.
  void poll_all();

  /// Graceful stop of every zone (finish in-flight, epilogue snapshot).
  void drain_all();

  /// Apply a re-parsed config: scheduler thresholds of matching zones
  /// change live; topology changes (added/removed zones) are refused.
  /// Returns a human-readable summary.
  std::string reload(const DaemonConfig& fresh);

  /// Write each zone's labeled telemetry JSONL to `dir/<zone>.jsonl`,
  /// plus its retained traces to `dir/<zone>.trace.jsonl` and its
  /// slow-query log to `dir/<zone>.slow.jsonl` (trace files only when
  /// the zone recorded anything).  Returns the number of files written;
  /// throws on I/O failure.
  std::size_t export_telemetry(const std::string& dir) const;

  JobQueue& jobs() noexcept { return jobs_; }

 private:
  JobQueue jobs_;
  std::vector<std::unique_ptr<Zone>> zones_;
};

class ControlServer {
 public:
  /// Hard cap on one connection's receive buffer; beyond it the peer
  /// is not speaking the protocol and the connection is closed.
  static constexpr std::size_t kMaxConnectionBuffer = 16u << 20;

  ControlServer(ZoneManager& zones, EventLoop& loop, std::string socket_path);
  ~ControlServer();

  ControlServer(const ControlServer&) = delete;
  ControlServer& operator=(const ControlServer&) = delete;

  /// Bind + listen on the Unix socket (replacing a stale socket file)
  /// and register with the event loop.  Throws std::runtime_error on
  /// any socket failure.
  void open();
  /// Stop accepting new connections (drain mode); established
  /// connections keep being served.
  void stop_admissions();
  /// Close the listener and every connection; removes the socket file.
  void close();

  std::size_t connections() const noexcept { return conns_.size(); }
  bool listening() const noexcept { return listen_fd_ >= 0; }
  const std::string& socket_path() const noexcept { return socket_path_; }

  /// Invoked after a shutdown admin packet has been answered; taflocd
  /// wires this to "drain everything and stop the loop".
  void set_shutdown_handler(std::function<void()> handler) {
    shutdown_handler_ = std::move(handler);
  }
  /// Invoked for a reload admin packet; returns the summary sent back
  /// to the client (e.g. ZoneManager::reload of a re-parsed file).
  void set_reload_handler(std::function<std::string()> handler) {
    reload_handler_ = std::move(handler);
  }

  /// Packet dispatch, exposed for in-process tests: takes one decoded
  /// frame, returns the encoded response packet.  Never throws.
  /// `received_ns` is the steady-clock stamp of the socket read that
  /// delivered the frame (0 = unknown); localize traces report the gap
  /// to dispatch as queue wait.
  std::string dispatch(const storage::Frame& frame, std::uint64_t received_ns = 0);

 private:
  struct Connection {
    std::string buffer;
    std::uint64_t received_ns = 0;  ///< steady-clock stamp of the last read.
  };

  void handle_accept(short revents);
  void handle_connection(int fd, short revents);
  void close_connection(int fd);
  bool send_all(int fd, std::string_view bytes);

  ZoneManager& zones_;
  EventLoop& loop_;
  std::string socket_path_;
  int listen_fd_ = -1;
  std::map<int, Connection> conns_;
  std::function<void()> shutdown_handler_;
  std::function<std::string()> reload_handler_;
};

}  // namespace tafloc::daemon
