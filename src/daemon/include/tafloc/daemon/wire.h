// taflocd wire protocol -- versioned, length-prefixed, checksummed
// packets over a Unix domain socket.
//
// Every packet is one storage::Frame (record.h): the u32 `type` is the
// PacketType, the u64 `seq` is a client-chosen request id echoed in the
// response, and the payload begins with a u32 wire version followed by
// the packet's fields in the bounds-checked ByteWriter/ByteReader
// codec.  The frame CRC32C already rejects torn or bit-flipped packets,
// so the daemon distinguishes exactly three receive outcomes:
//
//   kPacket   -- one complete, checksummed frame extracted;
//   kNeedMore -- the buffer ends mid-frame (keep reading);
//   kCorrupt  -- framing is lost on this connection (the server answers
//                with one kError packet and closes it; other
//                connections and zones are untouched).
//
// A version mismatch or malformed payload inside an intact frame throws
// from decode; the server maps that to a kError response on the same
// connection without crashing.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "tafloc/ingest/batch.h"
#include "tafloc/storage/record.h"

namespace tafloc::daemon {

/// Bumped on any incompatible payload change; packets carrying another
/// version are rejected per-packet (kBadRequest) without harming the
/// connection or any zone.
/// v2: ZoneStatus grew kernel_backend + quantized_tier.
/// v3: LocalizeRequest grew the trace context (trace_id + sampled);
///     ZoneStatus grew the SLO block; new kMetricsRequest/Response and
///     kTraceRequest/Response packets for live introspection.
/// v4: new kBatchIngestRequest/Response (edge node batches through the
///     dedup/merge/movement-gate front-end); AmbientResponse grew the
///     scheduler's sample_accepted verdict.
inline constexpr std::uint32_t kWireVersion = 4;

enum class PacketType : std::uint32_t {
  kError = 0,  ///< server -> client: request rejected (status + message).
  kLocalizeRequest = 1,
  kLocalizeResponse = 2,
  kAmbientRequest = 3,
  kAmbientResponse = 4,
  kResurveyRequest = 5,
  kResurveyResponse = 6,
  kStatusRequest = 7,
  kStatusResponse = 8,
  kAdminRequest = 9,
  kAdminResponse = 10,
  kProbeRequest = 11,
  kProbeResponse = 12,
  kMetricsRequest = 13,
  kMetricsResponse = 14,
  kTraceRequest = 15,
  kTraceResponse = 16,
  kBatchIngestRequest = 17,
  kBatchIngestResponse = 18,
};

const char* packet_type_name(PacketType type);

enum class WireStatus : std::uint8_t {
  kOk = 0,
  kUnknownZone = 1,   ///< no zone of that name in this daemon.
  kNotServing = 2,    ///< zone is draining / stopped; admission refused.
  kBadRequest = 3,    ///< malformed payload or unsupported version.
  kInternalError = 4, ///< zone raised; details in `message`.
};

const char* wire_status_name(WireStatus status);

// -- requests --

struct LocalizeRequest {
  std::string zone;
  std::vector<double> rss;  ///< one reading per deployment link.
  /// Trace context: a client-chosen id echoed into the zone's trace
  /// records (0 = let the zone assign one) and a flag forcing this
  /// request into the sampled trace ring regardless of the zone's
  /// periodic sampler.
  std::uint64_t trace_id = 0;
  bool trace_sampled = false;

  std::string encode(std::uint64_t seq) const;
  static LocalizeRequest decode(const storage::Frame& frame);
};

/// Feed one ambient scan into the zone's update scheduler.
struct AmbientRequest {
  std::string zone;
  std::vector<double> ambient;
  double t_days = 0.0;

  std::string encode(std::uint64_t seq) const;
  static AmbientRequest decode(const storage::Frame& frame);
};

/// Explicitly kick a supervised reference re-survey (LoLi-IR update).
struct ResurveyRequest {
  std::string zone;
  double t_days = 0.0;

  std::string encode(std::uint64_t seq) const;
  static ResurveyRequest decode(const storage::Frame& frame);
};

/// Zone status; empty `zone` means every zone.
struct StatusRequest {
  std::string zone;

  std::string encode(std::uint64_t seq) const;
  static StatusRequest decode(const storage::Frame& frame);
};

enum class AdminOp : std::uint8_t {
  kDrain = 1,     ///< graceful stop of one zone (or all when zone == "").
  kReload = 2,    ///< re-read the config file; apply scheduler changes.
  kShutdown = 3,  ///< drain every zone, then stop the daemon.
};

const char* admin_op_name(AdminOp op);

struct AdminRequest {
  AdminOp op = AdminOp::kDrain;
  std::string zone;  ///< empty = daemon-wide.

  std::string encode(std::uint64_t seq) const;
  static AdminRequest decode(const storage::Frame& frame);
};

/// Synthetic end-to-end check: the (sim-backed) zone generates one
/// observation at a known location, serves it through the localization
/// path, and reports truth vs. estimate.  Lets taflocctl and the CI
/// smoke drive real traffic without shipping RSS vectors.
struct ProbeRequest {
  std::string zone;

  std::string encode(std::uint64_t seq) const;
  static ProbeRequest decode(const storage::Frame& frame);
};

/// Snapshot a zone's metric registry over the wire (empty `zone` =
/// every zone).  Powers `taflocctl top` without touching the JSONL
/// export path.
struct MetricsRequest {
  std::string zone;

  std::string encode(std::uint64_t seq) const;
  static MetricsRequest decode(const storage::Frame& frame);
};

/// Pull retained trace records from a zone: the newest `max` sampled
/// traces, or the slow-query log when `slow` is set.
struct TraceRequest {
  std::string zone;
  std::uint64_t max = 64;  ///< newest-N cap for the sampled ring.
  bool slow = false;       ///< true: return the slow-query log instead.

  std::string encode(std::uint64_t seq) const;
  static TraceRequest decode(const storage::Frame& frame);
};

/// One node batch into a zone's ingest front-end (dedup + merge +
/// movement gate); the batch payload is the shared ingest codec, so a
/// node's store-and-forward file replays over the wire unmodified.
struct BatchIngestRequest {
  std::string zone;
  ingest::NodeBatch batch;

  std::string encode(std::uint64_t seq) const;
  static BatchIngestRequest decode(const storage::Frame& frame);
};

// -- responses --

struct ErrorResponse {
  WireStatus status = WireStatus::kBadRequest;
  std::string message;

  std::string encode(std::uint64_t seq) const;
  static ErrorResponse decode(const storage::Frame& frame);
};

struct LocalizeResponse {
  WireStatus status = WireStatus::kOk;
  std::string message;
  double x = 0.0;
  double y = 0.0;
  double confidence = 0.0;
  bool served = false;
  bool degraded = false;
  std::uint64_t links_used = 0;

  std::string encode(std::uint64_t seq) const;
  static LocalizeResponse decode(const storage::Frame& frame);
};

struct AmbientResponse {
  WireStatus status = WireStatus::kOk;
  std::string message;
  bool accepted = false;        ///< scan admitted into the scheduler.
  bool sample_accepted = false; ///< the scheduler kept it (not out-of-order/NaN).
  bool triggered = false;       ///< it crossed the staleness threshold.
  double staleness_db = 0.0;

  std::string encode(std::uint64_t seq) const;
  static AmbientResponse decode(const storage::Frame& frame);
};

struct ResurveyResponse {
  WireStatus status = WireStatus::kOk;
  std::string message;
  bool accepted = false;  ///< false: another update already in flight.

  std::string encode(std::uint64_t seq) const;
  static ResurveyResponse decode(const storage::Frame& frame);
};

struct ZoneStatus {
  std::string zone;
  std::string state;  ///< zone_state_name() of the lifecycle state.
  std::uint64_t queries = 0;
  std::uint64_t updates_committed = 0;
  std::uint64_t updates_failed = 0;
  bool update_in_flight = false;
  double staleness_db = 0.0;
  double clock_days = 0.0;
  std::uint64_t wal_sequence = 0;  ///< 0 when the zone is not durable.
  std::string kernel_backend;      ///< active process-wide kernel backend name.
  bool quantized_tier = false;     ///< int8 scan tier serving this zone's queries.
  // SLO accounting (all zero when the zone has no latency deadline).
  std::uint64_t slo_ok = 0;        ///< queries inside the deadline.
  std::uint64_t slo_violated = 0;  ///< queries past the deadline.
  double slo_budget_remaining = 0.0;  ///< error budget left (can go negative).
  bool slo_degraded = false;       ///< budget exhausted: `degraded-slo`.
  std::string last_error;
};

struct StatusResponse {
  WireStatus status = WireStatus::kOk;
  std::string message;
  std::vector<ZoneStatus> zones;

  std::string encode(std::uint64_t seq) const;
  static StatusResponse decode(const storage::Frame& frame);
};

struct AdminResponse {
  WireStatus status = WireStatus::kOk;
  std::string message;

  std::string encode(std::uint64_t seq) const;
  static AdminResponse decode(const storage::Frame& frame);
};

struct ProbeResponse {
  WireStatus status = WireStatus::kOk;
  std::string message;
  double truth_x = 0.0;
  double truth_y = 0.0;
  double estimate_x = 0.0;
  double estimate_y = 0.0;
  double error_m = 0.0;
  bool degraded = false;

  std::string encode(std::uint64_t seq) const;
  static ProbeResponse decode(const storage::Frame& frame);
};

/// One histogram's summary, pre-aggregated daemon-side so clients never
/// need the bucket layout.
struct WireHistogram {
  std::string name;
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Point-in-time copy of one zone's metric registry.
struct ZoneMetrics {
  std::string zone;
  std::string state;  ///< lifecycle state at snapshot time.
  std::uint64_t uptime_ns = 0;
  std::uint64_t spans_recorded = 0;
  std::uint64_t spans_dropped = 0;
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<WireHistogram> histograms;
};

struct MetricsResponse {
  WireStatus status = WireStatus::kOk;
  std::string message;
  std::vector<ZoneMetrics> zones;

  std::string encode(std::uint64_t seq) const;
  static MetricsResponse decode(const storage::Frame& frame);
};

/// One localize result served from an ingested round.
struct IngestQuery {
  double t_days = 0.0;
  double motion_db = 0.0;  ///< the gate metric that admitted it.
  double x = 0.0;
  double y = 0.0;
  double confidence = 0.0;
  bool served = false;
  bool degraded = false;
  std::uint64_t links_used = 0;
};

struct BatchIngestResponse {
  WireStatus status = WireStatus::kOk;
  std::string message;
  // This batch's exact accounting deltas (mirrors ingest.* telemetry).
  std::uint64_t readings = 0;
  std::uint64_t dups_dropped = 0;
  std::uint64_t stale_dropped = 0;
  std::uint64_t bad_readings = 0;
  std::uint64_t rounds_completed = 0;
  std::uint64_t gated_ambient = 0;
  std::uint64_t admitted_queries = 0;
  double last_motion_db = 0.0;
  std::vector<IngestQuery> queries;  ///< one per admitted round.

  std::string encode(std::uint64_t seq) const;
  static BatchIngestResponse decode(const storage::Frame& frame);
};

struct TraceResponse {
  WireStatus status = WireStatus::kOk;
  std::string message;
  /// Trace records as JSONL (one `{"type":"trace",...}` object per
  /// line) -- the same codec the daemon writes to disk, so clients and
  /// files share one schema.
  std::string jsonl;
  std::uint64_t total_recorded = 0;  ///< ring pushes (or slow-log size).
  std::uint64_t dropped = 0;         ///< ring overwrites (or slow-log drops).

  std::string encode(std::uint64_t seq) const;
  static TraceResponse decode(const storage::Frame& frame);
};

// -- connection-buffer framing --

enum class ExtractResult { kPacket, kNeedMore, kCorrupt };

/// Pull the first complete frame out of `buffer` (consuming its bytes)
/// into `out`.  kNeedMore leaves the buffer untouched; kCorrupt means
/// this byte stream can no longer be trusted (close the connection) and
/// `error`, when non-null, says why.
ExtractResult extract_packet(std::string& buffer, storage::Frame& out,
                             std::string* error = nullptr);

}  // namespace tafloc::daemon
