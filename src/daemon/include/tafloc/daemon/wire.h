// taflocd wire protocol -- versioned, length-prefixed, checksummed
// packets over a Unix domain socket.
//
// Every packet is one storage::Frame (record.h): the u32 `type` is the
// PacketType, the u64 `seq` is a client-chosen request id echoed in the
// response, and the payload begins with a u32 wire version followed by
// the packet's fields in the bounds-checked ByteWriter/ByteReader
// codec.  The frame CRC32C already rejects torn or bit-flipped packets,
// so the daemon distinguishes exactly three receive outcomes:
//
//   kPacket   -- one complete, checksummed frame extracted;
//   kNeedMore -- the buffer ends mid-frame (keep reading);
//   kCorrupt  -- framing is lost on this connection (the server answers
//                with one kError packet and closes it; other
//                connections and zones are untouched).
//
// A version mismatch or malformed payload inside an intact frame throws
// from decode; the server maps that to a kError response on the same
// connection without crashing.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "tafloc/storage/record.h"

namespace tafloc::daemon {

/// Bumped on any incompatible payload change; packets carrying another
/// version are rejected per-connection.
/// v2: ZoneStatus grew kernel_backend + quantized_tier.
inline constexpr std::uint32_t kWireVersion = 2;

enum class PacketType : std::uint32_t {
  kError = 0,  ///< server -> client: request rejected (status + message).
  kLocalizeRequest = 1,
  kLocalizeResponse = 2,
  kAmbientRequest = 3,
  kAmbientResponse = 4,
  kResurveyRequest = 5,
  kResurveyResponse = 6,
  kStatusRequest = 7,
  kStatusResponse = 8,
  kAdminRequest = 9,
  kAdminResponse = 10,
  kProbeRequest = 11,
  kProbeResponse = 12,
};

const char* packet_type_name(PacketType type);

enum class WireStatus : std::uint8_t {
  kOk = 0,
  kUnknownZone = 1,   ///< no zone of that name in this daemon.
  kNotServing = 2,    ///< zone is draining / stopped; admission refused.
  kBadRequest = 3,    ///< malformed payload or unsupported version.
  kInternalError = 4, ///< zone raised; details in `message`.
};

const char* wire_status_name(WireStatus status);

// -- requests --

struct LocalizeRequest {
  std::string zone;
  std::vector<double> rss;  ///< one reading per deployment link.

  std::string encode(std::uint64_t seq) const;
  static LocalizeRequest decode(const storage::Frame& frame);
};

/// Feed one ambient scan into the zone's update scheduler.
struct AmbientRequest {
  std::string zone;
  std::vector<double> ambient;
  double t_days = 0.0;

  std::string encode(std::uint64_t seq) const;
  static AmbientRequest decode(const storage::Frame& frame);
};

/// Explicitly kick a supervised reference re-survey (LoLi-IR update).
struct ResurveyRequest {
  std::string zone;
  double t_days = 0.0;

  std::string encode(std::uint64_t seq) const;
  static ResurveyRequest decode(const storage::Frame& frame);
};

/// Zone status; empty `zone` means every zone.
struct StatusRequest {
  std::string zone;

  std::string encode(std::uint64_t seq) const;
  static StatusRequest decode(const storage::Frame& frame);
};

enum class AdminOp : std::uint8_t {
  kDrain = 1,     ///< graceful stop of one zone (or all when zone == "").
  kReload = 2,    ///< re-read the config file; apply scheduler changes.
  kShutdown = 3,  ///< drain every zone, then stop the daemon.
};

const char* admin_op_name(AdminOp op);

struct AdminRequest {
  AdminOp op = AdminOp::kDrain;
  std::string zone;  ///< empty = daemon-wide.

  std::string encode(std::uint64_t seq) const;
  static AdminRequest decode(const storage::Frame& frame);
};

/// Synthetic end-to-end check: the (sim-backed) zone generates one
/// observation at a known location, serves it through the localization
/// path, and reports truth vs. estimate.  Lets taflocctl and the CI
/// smoke drive real traffic without shipping RSS vectors.
struct ProbeRequest {
  std::string zone;

  std::string encode(std::uint64_t seq) const;
  static ProbeRequest decode(const storage::Frame& frame);
};

// -- responses --

struct ErrorResponse {
  WireStatus status = WireStatus::kBadRequest;
  std::string message;

  std::string encode(std::uint64_t seq) const;
  static ErrorResponse decode(const storage::Frame& frame);
};

struct LocalizeResponse {
  WireStatus status = WireStatus::kOk;
  std::string message;
  double x = 0.0;
  double y = 0.0;
  double confidence = 0.0;
  bool served = false;
  bool degraded = false;
  std::uint64_t links_used = 0;

  std::string encode(std::uint64_t seq) const;
  static LocalizeResponse decode(const storage::Frame& frame);
};

struct AmbientResponse {
  WireStatus status = WireStatus::kOk;
  std::string message;
  bool accepted = false;   ///< scan admitted into the scheduler.
  bool triggered = false;  ///< it crossed the staleness threshold.
  double staleness_db = 0.0;

  std::string encode(std::uint64_t seq) const;
  static AmbientResponse decode(const storage::Frame& frame);
};

struct ResurveyResponse {
  WireStatus status = WireStatus::kOk;
  std::string message;
  bool accepted = false;  ///< false: another update already in flight.

  std::string encode(std::uint64_t seq) const;
  static ResurveyResponse decode(const storage::Frame& frame);
};

struct ZoneStatus {
  std::string zone;
  std::string state;  ///< zone_state_name() of the lifecycle state.
  std::uint64_t queries = 0;
  std::uint64_t updates_committed = 0;
  std::uint64_t updates_failed = 0;
  bool update_in_flight = false;
  double staleness_db = 0.0;
  double clock_days = 0.0;
  std::uint64_t wal_sequence = 0;  ///< 0 when the zone is not durable.
  std::string kernel_backend;      ///< active process-wide kernel backend name.
  bool quantized_tier = false;     ///< int8 scan tier serving this zone's queries.
  std::string last_error;
};

struct StatusResponse {
  WireStatus status = WireStatus::kOk;
  std::string message;
  std::vector<ZoneStatus> zones;

  std::string encode(std::uint64_t seq) const;
  static StatusResponse decode(const storage::Frame& frame);
};

struct AdminResponse {
  WireStatus status = WireStatus::kOk;
  std::string message;

  std::string encode(std::uint64_t seq) const;
  static AdminResponse decode(const storage::Frame& frame);
};

struct ProbeResponse {
  WireStatus status = WireStatus::kOk;
  std::string message;
  double truth_x = 0.0;
  double truth_y = 0.0;
  double estimate_x = 0.0;
  double estimate_y = 0.0;
  double error_m = 0.0;
  bool degraded = false;

  std::string encode(std::uint64_t seq) const;
  static ProbeResponse decode(const storage::Frame& frame);
};

// -- connection-buffer framing --

enum class ExtractResult { kPacket, kNeedMore, kCorrupt };

/// Pull the first complete frame out of `buffer` (consuming its bytes)
/// into `out`.  kNeedMore leaves the buffer untouched; kCorrupt means
/// this byte stream can no longer be trusted (close the connection) and
/// `error`, when non-null, says why.
ExtractResult extract_packet(std::string& buffer, storage::Frame& out,
                             std::string* error = nullptr);

}  // namespace tafloc::daemon
