#include "tafloc/fingerprint/link_health.h"

#include <cmath>
#include <stdexcept>

#include "tafloc/util/check.h"

namespace tafloc {

LinkHealth::LinkHealth(std::size_t num_links, const LinkHealthConfig& config)
    : config_(config),
      states_(num_links, LinkState::Healthy),
      usable_(num_links, 1),
      pinned_(num_links, 0),
      last_value_(num_links, 0.0),
      has_last_(num_links, 0),
      stuck_streak_(num_links, 0),
      good_streak_(num_links, 0) {
  TAFLOC_CHECK_ARG(num_links > 0, "link health needs at least one link");
  TAFLOC_CHECK_ARG(config.stuck_after > 0, "stuck threshold must be positive");
  TAFLOC_CHECK_ARG(config.stuck_dead_after > config.stuck_after,
                   "stuck-to-dead threshold must exceed the suspect threshold");
  TAFLOC_CHECK_ARG(config.revive_after > 0, "revive threshold must be positive");
}

LinkState LinkHealth::state(std::size_t link) const {
  TAFLOC_CHECK_BOUNDS(link, states_.size(), "link index");
  return states_[link];
}

bool LinkHealth::usable(std::size_t link) const {
  TAFLOC_CHECK_BOUNDS(link, states_.size(), "link index");
  return usable_[link] != 0;
}

std::vector<std::size_t> LinkHealth::dead_links() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < states_.size(); ++i)
    if (states_[i] == LinkState::Dead) out.push_back(i);
  return out;
}

void LinkHealth::set_state(std::size_t link, LinkState next) {
  const LinkState prev = states_[link];
  if (prev == next) return;
  if (prev == LinkState::Dead) --dead_count_;
  if (prev == LinkState::Suspect) --suspect_count_;
  if (next == LinkState::Dead) ++dead_count_;
  if (next == LinkState::Suspect) ++suspect_count_;
  states_[link] = next;
  usable_[link] = next == LinkState::Dead ? 0 : 1;
}

LinkHealth::ObserveReport LinkHealth::observe(std::span<const double> rss) {
  TAFLOC_CHECK_ARG(rss.size() == states_.size(), "observation must have one entry per link");
  ObserveReport report;
  for (std::size_t i = 0; i < rss.size(); ++i) {
    const double v = rss[i];
    if (!std::isfinite(v)) {
      // A NaN/inf sample means the link cannot serve *this* query,
      // whatever its history: straight to Dead.
      good_streak_[i] = 0;
      stuck_streak_[i] = 0;
      has_last_[i] = 0;
      if (states_[i] != LinkState::Dead) {
        set_state(i, LinkState::Dead);
        ++report.newly_dead;
      }
      continue;
    }
    const bool repeat = has_last_[i] != 0 && v == last_value_[i];
    last_value_[i] = v;
    has_last_[i] = 1;
    if (repeat) {
      ++stuck_streak_[i];
      good_streak_[i] = 0;
      if (pinned_[i] != 0) continue;
      if (stuck_streak_[i] >= config_.stuck_dead_after) {
        if (states_[i] != LinkState::Dead) {
          set_state(i, LinkState::Dead);
          ++report.newly_dead;
        }
      } else if (stuck_streak_[i] >= config_.stuck_after) {
        if (states_[i] == LinkState::Healthy) {
          set_state(i, LinkState::Suspect);
          ++report.newly_suspect;
        }
      }
      continue;
    }
    // Finite and moving: a good reading.
    stuck_streak_[i] = 0;
    ++good_streak_[i];
    if (pinned_[i] != 0 || states_[i] == LinkState::Healthy) continue;
    if (good_streak_[i] >= config_.revive_after) {
      set_state(i, LinkState::Healthy);
      ++report.revived;
    }
  }
  return report;
}

void LinkHealth::mark_dead(std::size_t link) {
  TAFLOC_CHECK_BOUNDS(link, states_.size(), "link index");
  pinned_[link] = 1;
  set_state(link, LinkState::Dead);
}

void LinkHealth::mark_suspect(std::size_t link) {
  TAFLOC_CHECK_BOUNDS(link, states_.size(), "link index");
  pinned_[link] = 1;
  set_state(link, LinkState::Suspect);
}

void LinkHealth::save(storage::ByteWriter& out) const {
  out.put_u64(config_.stuck_after);
  out.put_u64(config_.stuck_dead_after);
  out.put_u64(config_.revive_after);
  std::vector<std::uint8_t> state_bytes(states_.size());
  for (std::size_t i = 0; i < states_.size(); ++i)
    state_bytes[i] = static_cast<std::uint8_t>(states_[i]);
  out.put_u8_span(state_bytes);
  out.put_u8_span(pinned_);
  out.put_f64_span(last_value_);
  out.put_u8_span(has_last_);
  out.put_size_span(stuck_streak_);
  out.put_size_span(good_streak_);
}

LinkHealth LinkHealth::load(storage::ByteReader& in) {
  LinkHealthConfig config;
  config.stuck_after = static_cast<std::size_t>(in.get_u64());
  config.stuck_dead_after = static_cast<std::size_t>(in.get_u64());
  config.revive_after = static_cast<std::size_t>(in.get_u64());
  const std::vector<std::uint8_t> state_bytes = in.get_u8_vector();
  if (state_bytes.empty()) throw std::runtime_error("LinkHealth::load: empty state");
  LinkHealth health(state_bytes.size(), config);  // validates the config thresholds.
  for (std::size_t i = 0; i < state_bytes.size(); ++i) {
    if (state_bytes[i] > static_cast<std::uint8_t>(LinkState::Dead))
      throw std::runtime_error("LinkHealth::load: unknown link state byte");
    health.set_state(i, static_cast<LinkState>(state_bytes[i]));
  }
  health.pinned_ = in.get_u8_vector();
  health.last_value_ = in.get_f64_vector();
  health.has_last_ = in.get_u8_vector();
  health.stuck_streak_ = in.get_size_vector();
  health.good_streak_ = in.get_size_vector();
  const std::size_t n = state_bytes.size();
  if (health.pinned_.size() != n || health.last_value_.size() != n ||
      health.has_last_.size() != n || health.stuck_streak_.size() != n ||
      health.good_streak_.size() != n)
    throw std::runtime_error("LinkHealth::load: per-link array sizes disagree");
  return health;
}

bool operator==(const LinkHealth& a, const LinkHealth& b) noexcept {
  const auto eq_last_value = [&] {
    // Exact bitwise sample memory: the stuck detector compares with ==,
    // so the round trip must preserve the bits, but entries without a
    // remembered sample (has_last == 0) are don't-cares.
    for (std::size_t i = 0; i < a.last_value_.size(); ++i) {
      if (a.has_last_[i] != 0 && a.last_value_[i] != b.last_value_[i]) return false;
    }
    return true;
  };
  return a.config_.stuck_after == b.config_.stuck_after &&
         a.config_.stuck_dead_after == b.config_.stuck_dead_after &&
         a.config_.revive_after == b.config_.revive_after && a.states_ == b.states_ &&
         a.usable_ == b.usable_ && a.pinned_ == b.pinned_ && a.has_last_ == b.has_last_ &&
         a.stuck_streak_ == b.stuck_streak_ && a.good_streak_ == b.good_streak_ &&
         a.dead_count_ == b.dead_count_ && a.suspect_count_ == b.suspect_count_ &&
         a.last_value_.size() == b.last_value_.size() && eq_last_value();
}

void LinkHealth::revive(std::size_t link) {
  TAFLOC_CHECK_BOUNDS(link, states_.size(), "link index");
  pinned_[link] = 0;
  stuck_streak_[link] = 0;
  good_streak_[link] = 0;
  has_last_[link] = 0;
  set_state(link, LinkState::Healthy);
}

}  // namespace tafloc
