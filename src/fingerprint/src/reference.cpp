#include "tafloc/fingerprint/reference.h"

#include "tafloc/linalg/qr.h"
#include "tafloc/linalg/svd.h"
#include "tafloc/util/check.h"

namespace tafloc {

std::vector<std::size_t> select_reference_locations(const Matrix& x0, std::size_t count,
                                                    ReferencePolicy policy, Rng* rng) {
  TAFLOC_CHECK_ARG(!x0.empty(), "fingerprint matrix must be non-empty");
  TAFLOC_CHECK_ARG(count > 0 && count <= x0.cols(),
                   "reference count must be in [1, number of grids]");
  switch (policy) {
    case ReferencePolicy::QrPivot: {
      const PivotedQr qr = qr_decompose_pivoted(x0);
      // Pivot order ranks columns by residual norm outside the span of
      // the already-chosen set; the QR yields min(M, N) pivots.  When
      // more references than pivots are requested, extend with the
      // remaining columns in permutation order (they add redundancy,
      // not independence, but honour the caller's budget).
      std::vector<std::size_t> out(qr.permutation.begin(),
                                   qr.permutation.begin() + static_cast<std::ptrdiff_t>(count));
      return out;
    }
    case ReferencePolicy::Random: {
      TAFLOC_CHECK_ARG(rng != nullptr, "random policy needs an Rng");
      return rng->sample_without_replacement(x0.cols(), count);
    }
    case ReferencePolicy::UniformGrid: {
      std::vector<std::size_t> out;
      out.reserve(count);
      const double stride = static_cast<double>(x0.cols()) / static_cast<double>(count);
      for (std::size_t k = 0; k < count; ++k) {
        out.push_back(static_cast<std::size_t>(stride * (static_cast<double>(k) + 0.5)));
      }
      return out;
    }
  }
  TAFLOC_CHECK_STATE(false, "unknown reference policy");
  return {};
}

std::size_t suggest_reference_count(const Matrix& x0, double rel_tol) {
  TAFLOC_CHECK_ARG(!x0.empty(), "fingerprint matrix must be non-empty");
  const std::size_t rank = svd_decompose(x0).numeric_rank(rel_tol);
  return rank == 0 ? 1 : rank;
}

}  // namespace tafloc
