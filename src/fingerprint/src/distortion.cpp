#include "tafloc/fingerprint/distortion.h"

#include "tafloc/rf/geometry.h"
#include "tafloc/util/check.h"

namespace tafloc {

std::size_t DistortionMask::num_distorted() const noexcept {
  std::size_t n = 0;
  for (double v : distorted.data())
    if (v != 0.0) ++n;
  return n;
}

std::size_t DistortionMask::num_undistorted() const noexcept {
  return distorted.size() - num_distorted();
}

double DistortionMask::distorted_fraction() const noexcept {
  if (distorted.size() == 0) return 0.0;
  return static_cast<double>(num_distorted()) / static_cast<double>(distorted.size());
}

DistortionDetector::DistortionDetector(const DistortionConfig& config) : config_(config) {
  TAFLOC_CHECK_ARG(config.rss_drop_threshold_db > 0.0, "RSS drop threshold must be positive");
  TAFLOC_CHECK_ARG(config.excess_path_threshold_m > 0.0,
                   "excess path threshold must be positive");
}

DistortionMask DistortionDetector::detect_geometric(const Deployment& deployment) const {
  const std::size_t m = deployment.num_links();
  const std::size_t n = deployment.num_grids();
  DistortionMask mask{Matrix(m, n), Matrix(m, n)};
  for (std::size_t j = 0; j < n; ++j) {
    const Point2 c = deployment.grid().center(j);
    for (std::size_t i = 0; i < m; ++i) {
      const bool hits =
          excess_path_length(c, deployment.links()[i]) < config_.excess_path_threshold_m;
      mask.distorted(i, j) = hits ? 1.0 : 0.0;
      mask.undistorted(i, j) = hits ? 0.0 : 1.0;
    }
  }
  return mask;
}

DistortionMask DistortionDetector::detect_from_data(const Matrix& x,
                                                    std::span<const double> ambient) const {
  TAFLOC_CHECK_ARG(!x.empty(), "fingerprint matrix must be non-empty");
  TAFLOC_CHECK_ARG(ambient.size() == x.rows(), "ambient vector must have one entry per link");
  DistortionMask mask{Matrix(x.rows(), x.cols()), Matrix(x.rows(), x.cols())};
  for (std::size_t i = 0; i < x.rows(); ++i) {
    for (std::size_t j = 0; j < x.cols(); ++j) {
      const bool hits = (ambient[i] - x(i, j)) > config_.rss_drop_threshold_db;
      mask.distorted(i, j) = hits ? 1.0 : 0.0;
      mask.undistorted(i, j) = hits ? 0.0 : 1.0;
    }
  }
  return mask;
}

Matrix known_entry_matrix(const DistortionMask& mask, std::span<const double> ambient) {
  const Matrix& b = mask.undistorted;
  TAFLOC_CHECK_ARG(ambient.size() == b.rows(), "ambient vector must have one entry per link");
  Matrix known(b.rows(), b.cols());
  for (std::size_t i = 0; i < b.rows(); ++i)
    for (std::size_t j = 0; j < b.cols(); ++j) known(i, j) = b(i, j) != 0.0 ? ambient[i] : 0.0;
  return known;
}

}  // namespace tafloc
