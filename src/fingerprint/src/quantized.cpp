#include "tafloc/fingerprint/quantized.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "tafloc/util/check.h"

namespace tafloc {

void QuantizedTier::clear() {
  links_ = 0;
  grids_ = 0;
  padded_ = 0;
  scale_ = 1.0;
  offsets_.clear();
  cells_.clear();
}

void QuantizedTier::rebuild(ConstMatrixView fingerprints) {
  if (fingerprints.empty()) {
    clear();
    return;
  }
  const std::size_t m = fingerprints.rows();
  const std::size_t n = fingerprints.cols();

  // Pass 1: per-link range.  Any non-finite entry (a faulted row not
  // yet patched) disables the tier -- the float path handles it.
  std::vector<double> lo(m, std::numeric_limits<double>::infinity());
  std::vector<double> hi(m, -std::numeric_limits<double>::infinity());
  for (std::size_t i = 0; i < m; ++i) {
    const double* row = fingerprints.row_ptr(i);
    for (std::size_t j = 0; j < n; ++j) {
      const double v = row[j];
      if (!std::isfinite(v)) {
        clear();
        return;
      }
      lo[i] = std::min(lo[i], v);
      hi[i] = std::max(hi[i], v);
    }
  }

  links_ = m;
  grids_ = n;
  padded_ = (m + kPad - 1) / kPad * kPad;
  offsets_.resize(m);

  // Offsets on the integer grid of the quantizer (see header); the
  // shared scale then has to cover the worst per-link half-range
  // AROUND that snapped offset.
  double half_range = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    offsets_[i] = round_ties_away(0.5 * (lo[i] + hi[i]));
    half_range = std::max({half_range, hi[i] - offsets_[i], offsets_[i] - lo[i]});
  }
  scale_ = half_range > 0.0 ? half_range / 127.0 : 1.0;

  // Pass 2: quantize, grid-major with zeroed padding.
  cells_.assign(grids_ * padded_, 0);
  for (std::size_t i = 0; i < m; ++i) {
    const double* row = fingerprints.row_ptr(i);
    const double off = offsets_[i];
    for (std::size_t j = 0; j < n; ++j)
      cells_[j * padded_ + i] = quantize_level(row[j], off, scale_);
  }
}

void QuantizedTier::quantize_observation(std::span<const double> rss,
                                         std::span<const std::uint8_t> usable,
                                         std::vector<std::int8_t>& values,
                                         std::vector<double>& residual) const {
  TAFLOC_CHECK_ARG(ready(), "quantize_observation on an empty tier");
  TAFLOC_CHECK_ARG(rss.size() == links_, "observation length must match the tier's link count");
  TAFLOC_CHECK_ARG(usable.empty() || usable.size() == links_,
                   "usable mask must be empty or one byte per link");
  values.assign(padded_, 0);
  residual.assign(links_, 0.0);
  for (std::size_t i = 0; i < links_; ++i) {
    if (!usable.empty() && usable[i] == 0) continue;  // masked kernel ignores the entry
    const std::int8_t q = quantize_level(rss[i], offsets_[i], scale_);
    values[i] = q;
    // Exact dequantization error, clamp excess included: out-of-range
    // observations (a target can push RSS outside the surveyed range)
    // stay correct, they just widen the re-rank bound.
    residual[i] = std::abs(rss[i] - (offsets_[i] + scale_ * static_cast<double>(q)));
  }
}

}  // namespace tafloc
