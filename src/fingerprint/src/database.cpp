#include "tafloc/fingerprint/database.h"

#include <stdexcept>
#include <utility>

#include "tafloc/linalg/io.h"
#include "tafloc/util/check.h"
#include "tafloc/util/log.h"

namespace tafloc {

FingerprintDatabase::FingerprintDatabase(Matrix fingerprints, Vector ambient,
                                         double surveyed_at_days)
    : fingerprints_(std::move(fingerprints)),
      ambient_(std::move(ambient)),
      surveyed_at_(surveyed_at_days),
      link_health_(fingerprints_.rows()) {
  TAFLOC_CHECK_ARG(!fingerprints_.empty(), "fingerprint matrix must be non-empty");
  TAFLOC_CHECK_ARG(ambient_.size() == fingerprints_.rows(),
                   "ambient vector must have one entry per link");
  TAFLOC_CHECK_ARG(surveyed_at_days >= 0.0, "survey timestamp must be non-negative");
  quantized_.rebuild(fingerprints_.view());
}

Vector FingerprintDatabase::fingerprint_of(std::size_t grid) const {
  TAFLOC_CHECK_BOUNDS(grid, num_grids(), "fingerprint grid index");
  return fingerprints_.col(grid);
}

void FingerprintDatabase::update(Matrix fingerprints, Vector ambient, double surveyed_at_days) {
  TAFLOC_CHECK_ARG(fingerprints.same_shape(fingerprints_),
                   "updated fingerprint matrix must keep its shape");
  TAFLOC_CHECK_ARG(ambient.size() == ambient_.size(), "updated ambient vector must keep its size");
  TAFLOC_CHECK_ARG(surveyed_at_days >= 0.0, "survey timestamp must be non-negative");
  if (surveyed_at_days < surveyed_at_) {
    // Clock skew between the surveying host and this one: keep the
    // monotone stamp rather than killing the update.
    TAFLOC_LOG_WARN << "fingerprint update stamped " << surveyed_at_ - surveyed_at_days
                    << " days behind the current survey time; clamping to day " << surveyed_at_;
    surveyed_at_days = surveyed_at_;
  }
  fingerprints_ = std::move(fingerprints);
  ambient_ = std::move(ambient);
  surveyed_at_ = surveyed_at_days;
  // The scan tier mirrors the matrix it indexes; rebuilding inside the
  // swap keeps the two consistent at every point a matcher can observe.
  quantized_.rebuild(fingerprints_.view());
}

void FingerprintDatabase::save(storage::ByteWriter& out) const {
  save_matrix_binary(fingerprints_, out);
  save_vector_binary(ambient_, out);
  out.put_f64(surveyed_at_);
  link_health_.save(out);
}

FingerprintDatabase FingerprintDatabase::load(storage::ByteReader& in) {
  Matrix fingerprints = load_matrix_binary(in);
  Vector ambient = load_vector_binary(in);
  const double surveyed_at = in.get_f64();
  if (fingerprints.empty() || ambient.size() != fingerprints.rows() ||
      !(surveyed_at >= 0.0))
    throw std::runtime_error("FingerprintDatabase::load: inconsistent payload shapes");
  FingerprintDatabase db(std::move(fingerprints), std::move(ambient), surveyed_at);
  LinkHealth health = LinkHealth::load(in);
  if (health.num_links() != db.num_links())
    throw std::runtime_error("FingerprintDatabase::load: link-health size mismatch");
  db.link_health_ = std::move(health);
  return db;
}

double FingerprintDatabase::age_days(double now_days) const {
  TAFLOC_CHECK_ARG(now_days >= 0.0, "now must be a non-negative absolute time");
  if (now_days < surveyed_at_) {
    TAFLOC_LOG_WARN << "age query at day " << now_days << " precedes the survey stamp "
                    << surveyed_at_ << " (clock skew); clamping age to 0";
    return 0.0;
  }
  return now_days - surveyed_at_;
}

}  // namespace tafloc
