// LinkHealth -- per-link alive/dead/suspect state for the serving path.
//
// Real deployments decay: a transceiver reboots and its links report
// NaN for a while, a stuck driver repeats the same RSS sample forever,
// a node dies outright.  The paper's premise is that the environment
// drifts (section 1); this mask is the corresponding premise for the
// *hardware*.  Every fault-tolerant consumer (matchers, LoLi-IR/SVT,
// TafLocSystem::localize_degraded) reads the same mask, so "which links
// do we trust right now" has exactly one answer in the process.
//
// State machine (per link):
//
//   Healthy --non-finite reading--------------------> Dead
//   Healthy --reading repeats exactly `stuck_after`--> Suspect
//   Suspect --keeps repeating to `stuck_dead_after`--> Dead
//   Suspect/Dead --`revive_after` good readings-----> Healthy
//   any --mark_dead()/mark_suspect() (pinned)-------> stays until revive()
//
// A *good* reading is finite and differs from the previous sample (RSS
// carries noise, so an exact repeat is a symptom, not physics).  Links
// pinned through the explicit API never auto-recover; links the state
// machine marked on its own do, because NaN bursts and reboots end.
//
// Matching semantics: Dead links are excluded from every distance scan
// (renormalized by the surviving link count); Suspect links still serve
// but are reported, so operators can drain them.  usable() == !dead.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "tafloc/storage/codec.h"

namespace tafloc {

enum class LinkState : std::uint8_t { Healthy = 0, Suspect = 1, Dead = 2 };

struct LinkHealthConfig {
  /// Exact-repeat count after which a link turns Suspect.
  std::size_t stuck_after = 8;
  /// Exact-repeat count after which a stuck link turns Dead.
  std::size_t stuck_dead_after = 16;
  /// Consecutive good readings that heal an auto-flagged link.
  std::size_t revive_after = 3;
};

class LinkHealth {
 public:
  LinkHealth() = default;
  explicit LinkHealth(std::size_t num_links, const LinkHealthConfig& config = {});

  std::size_t num_links() const noexcept { return states_.size(); }
  LinkState state(std::size_t link) const;
  bool usable(std::size_t link) const;  ///< true unless Dead.

  std::size_t dead_count() const noexcept { return dead_count_; }
  std::size_t suspect_count() const noexcept { return suspect_count_; }
  std::size_t usable_count() const noexcept { return states_.size() - dead_count_; }
  /// O(1); the matchers' fast-path test for "mask changes nothing".
  bool all_usable() const noexcept { return dead_count_ == 0; }
  bool all_healthy() const noexcept { return dead_count_ == 0 && suspect_count_ == 0; }

  /// Flat 0/1 byte per link (1 = usable), stable storage for the
  /// duration of the object -- the matchers' hot loop reads this
  /// directly instead of calling state() per element.
  std::span<const std::uint8_t> usable_bytes() const noexcept { return usable_; }

  /// Indices of Dead links, ascending (allocates; diagnostics only).
  std::vector<std::size_t> dead_links() const;

  /// What one observe() call changed.
  struct ObserveReport {
    std::size_t newly_dead = 0;
    std::size_t newly_suspect = 0;
    std::size_t revived = 0;
  };

  /// Feed one real-time reading (one entry per link) through the state
  /// machine described above.  Non-finite entries kill their link
  /// immediately -- a link whose current sample is NaN cannot serve this
  /// query no matter what its history says.
  ObserveReport observe(std::span<const double> rss);

  /// Pin a link Dead/Suspect (operator action; observe() won't heal it).
  void mark_dead(std::size_t link);
  void mark_suspect(std::size_t link);
  /// Clear a pin and restore the link to Healthy.
  void revive(std::size_t link);

  const LinkHealthConfig& config() const noexcept { return config_; }

  /// Serialize the complete state machine -- states, pins, repeat /
  /// revive streaks, last-sample memory -- so a restored instance takes
  /// exactly the same transitions on the same subsequent readings as
  /// the original would have (asserted in test_fingerprint_link_health).
  void save(storage::ByteWriter& out) const;
  /// Inverse of save(); throws std::runtime_error on truncated or
  /// inconsistent payloads (sizes disagreeing, unknown state bytes).
  static LinkHealth load(storage::ByteReader& in);

  /// Exact whole-state equality (persistence tests).
  friend bool operator==(const LinkHealth& a, const LinkHealth& b) noexcept;

 private:
  void set_state(std::size_t link, LinkState next);

  LinkHealthConfig config_;
  std::vector<LinkState> states_;
  std::vector<std::uint8_t> usable_;   ///< 1 unless Dead (hot-path mirror).
  std::vector<std::uint8_t> pinned_;   ///< set by mark_*, cleared by revive().
  std::vector<double> last_value_;
  std::vector<std::uint8_t> has_last_;
  std::vector<std::size_t> stuck_streak_;
  std::vector<std::size_t> good_streak_;
  std::size_t dead_count_ = 0;
  std::size_t suspect_count_ = 0;
};

}  // namespace tafloc
