// Reference-location selection.
//
// TafLoc re-surveys only n << N locations; the paper picks "RSS
// measurements corresponding to the maximum linearly independent
// vectors" of the initial fingerprint matrix.  The greedy realization
// of that is column-pivoted QR: pivot columns are, step by step, the
// columns with the largest residual outside the span of those already
// chosen.  Random and uniform-grid policies are provided for the
// ablation bench.
#pragma once

#include <cstddef>
#include <vector>

#include "tafloc/linalg/matrix.h"
#include "tafloc/sim/grid.h"
#include "tafloc/util/rng.h"

namespace tafloc {

enum class ReferencePolicy {
  QrPivot,     ///< the paper's maximal-linear-independence choice.
  Random,      ///< uniform without replacement (ablation).
  UniformGrid, ///< evenly strided grid indices (ablation).
};

/// Choose `count` reference grid indices from the initial fingerprint
/// matrix `x0` (M x N; count <= N).  `rng` is consumed only by the
/// Random policy (may be null otherwise); returns indices in selection
/// order (for QrPivot: decreasing marginal information).
std::vector<std::size_t> select_reference_locations(const Matrix& x0, std::size_t count,
                                                    ReferencePolicy policy, Rng* rng = nullptr);

/// The natural reference count for `x0`: its numeric rank (the paper
/// uses n ~ rank, e.g. 10 reference locations for the 10-link room).
std::size_t suggest_reference_count(const Matrix& x0, double rel_tol = 1e-3);

}  // namespace tafloc
