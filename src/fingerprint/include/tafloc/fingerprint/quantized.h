// QuantizedTier -- the int8 scan mirror of the fingerprint matrix.
//
// The serving hot loop is "distance from one observation to every
// fingerprint column".  At 10^4-10^5 grids x 10^2-10^3 links the float
// matrix no longer fits in cache and the scan is memory-bound; DorFin
// (PAPERS.md) shows RSS fingerprints carry roughly 0.5 dB of effective
// resolution, so an 8-bit representation loses nothing that the exact
// re-rank (matcher.cpp) cannot restore.  The tier stores, grid-major:
//
//   cell_data(j)[i] = clamp(round((X[i][j] - offset[i]) / scale), +-127)
//
// with links padded to a multiple of kPad (the AVX2 int8 vector width)
// and pad bytes fixed at 0, so a padded query vector (also 0-padded)
// contributes exactly nothing on the padding.
//
// Layout decisions that matter:
//   * per-link OFFSET, shared SCALE.  Each link gets its own offset
//     (links differ by tens of dB of path loss; per-link centering is
//     what makes 8 bits enough), but the scale is the maximum per-link
//     half-range over 127, shared by all links -- the pre-pass sums
//     squared level differences into ONE integer accumulator, which is
//     only meaningful when every link's level means the same number of
//     dB.
//   * offsets snap to the quantizer's own grid (round_ties_away of the
//     link's mid-range).  Costs at most half a level of headroom;
//     buys: integer-dBm surveys quantize with zero residual when the
//     scale resolves to 1 dB (see util/quantize.h, satellite test in
//     test_fingerprint_quantized).
//
// Exactness bookkeeping: quantize_observation() reports each usable
// link's exact quantization residual |x_i - dequantized(x_i)| (clamp
// excess included).  Stored column entries are in-range by
// construction, so their residual is bounded by scale/2; together
// these bound the error of the integer distance, which is what lets
// the matcher's re-rank PROVE its top-k equals the exact float scan's
// (see matcher.cpp).
//
// The tier is derived state: FingerprintDatabase rebuilds it on
// construction and on every update()/load(), never serializes it, and
// excludes it from operator==.  A matrix with non-finite entries
// (possible mid-fault before dead-row patching) leaves the tier
// not-ready and the matcher falls back to exact float scans.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "tafloc/linalg/view.h"
#include "tafloc/util/quantize.h"

namespace tafloc {

class QuantizedTier {
 public:
  /// Link-dimension padding granularity: one AVX2 register of int8.
  static constexpr std::size_t kPad = 32;

  QuantizedTier() = default;

  /// Rebuild the mirror from the current float matrix (rows = links,
  /// cols = grids).  O(links * grids).  A matrix with any non-finite
  /// entry clears the tier instead (ready() == false).
  void rebuild(ConstMatrixView fingerprints);

  void clear();

  bool ready() const noexcept { return grids_ > 0; }
  std::size_t num_links() const noexcept { return links_; }
  std::size_t num_grids() const noexcept { return grids_; }
  std::size_t padded_links() const noexcept { return padded_; }

  /// dB per quantization level (shared by all links).
  double scale() const noexcept { return scale_; }
  /// Per-link centering, on the quantizer grid.
  double offset(std::size_t link) const { return offsets_[link]; }

  /// Quantized column of grid j: padded_links() contiguous bytes.
  const std::int8_t* cell_data(std::size_t grid) const {
    return cells_.data() + grid * padded_;
  }

  /// Level for one value on one link's grid (exposed inline so the
  /// rounding-convention test can pin it against NoiseModel::quantize).
  static std::int8_t quantize_level(double value, double offset, double scale) noexcept {
    const double level = round_ties_away((value - offset) / scale);
    const double clamped = level < -127.0 ? -127.0 : (level > 127.0 ? 127.0 : level);
    return static_cast<std::int8_t>(clamped);
  }

  /// Quantize one observation against the tier: `values` gets
  /// padded_links() bytes (pad bytes 0), `residual` gets num_links()
  /// exact absolute dequantization errors |rss[i] - (offset + scale *
  /// q_i)| -- the matcher's error-bound input.  Both buffers are
  /// resized; reuse them across queries to amortize.  Entries of dead
  /// links (usable[i] == 0; pass an empty span for all-usable) may be
  /// non-finite -- they quantize to 0 with residual 0 and the masked
  /// distance kernel ignores them.
  void quantize_observation(std::span<const double> rss, std::span<const std::uint8_t> usable,
                            std::vector<std::int8_t>& values, std::vector<double>& residual) const;

 private:
  std::size_t links_ = 0;
  std::size_t grids_ = 0;
  std::size_t padded_ = 0;
  double scale_ = 1.0;
  std::vector<double> offsets_;
  std::vector<std::int8_t> cells_;  ///< grids_ * padded_, grid-major.
};

}  // namespace tafloc
