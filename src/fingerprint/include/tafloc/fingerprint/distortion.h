// Distortion classification: which fingerprint entries are
// "largely-distorted" (target blocks / detours the link -> clear RSS
// decrease) and which are undistorted (entry ~= the link's ambient RSS,
// so its fresh value is KNOWN from a cheap ambient scan without any
// human walking the grid).
//
// The paper's B matrix has B(i, j) = 1 when the RSS of link i is
// undistorted by a target at grid j; the complement defines the
// largely-distorted matrix X_D.  Two detectors are provided:
//
//  - geometric: a target at grid j distorts link i when the grid centre
//    falls inside the link's excess-path ellipse (what a deployer can
//    compute from the floor plan alone);
//  - data-driven: an entry is distorted when the surveyed RSS sits more
//    than a threshold below the same link's ambient RSS (what the paper
//    measures; works with no geometry knowledge).
#pragma once

#include <cstddef>
#include <span>

#include "tafloc/linalg/matrix.h"
#include "tafloc/sim/deployment.h"

namespace tafloc {

/// The classification result.  `undistorted` is the paper's B (1.0 /
/// 0.0 entries); `distorted` is its complement (the support of X_D).
struct DistortionMask {
  Matrix undistorted;
  Matrix distorted;

  std::size_t num_distorted() const noexcept;
  std::size_t num_undistorted() const noexcept;
  /// Fraction of entries classified as distorted, in [0, 1].
  double distorted_fraction() const noexcept;
};

/// Detector thresholds.
struct DistortionConfig {
  /// data-driven: RSS decrease below ambient that marks an entry
  /// largely-distorted (paper reports noise of 1-4 dBm, so default 2 dB
  /// keeps noise out while catching LoS blockage of ~6+ dB).
  double rss_drop_threshold_db = 2.0;
  /// geometric: excess path length below which a target position is
  /// considered to distort the link.
  double excess_path_threshold_m = 0.35;
};

class DistortionDetector {
 public:
  explicit DistortionDetector(const DistortionConfig& config = {});

  /// Geometric classification over all (link, grid) pairs.
  DistortionMask detect_geometric(const Deployment& deployment) const;

  /// Data-driven classification of a surveyed fingerprint matrix
  /// against the same-epoch ambient RSS vector (length == x.rows()).
  DistortionMask detect_from_data(const Matrix& x, std::span<const double> ambient) const;

  const DistortionConfig& config() const noexcept { return config_; }

 private:
  DistortionConfig config_;
};

/// The "known" matrix X_I of the reconstruction problem: undistorted
/// entries carry the link's current ambient RSS (mask.undistorted == 1),
/// distorted entries are zero (and excluded by the mask anyway).
Matrix known_entry_matrix(const DistortionMask& mask, std::span<const double> ambient);

}  // namespace tafloc
