// FingerprintDatabase -- the surveyed fingerprint matrix plus the
// metadata needed to use and refresh it.
//
// Rows are links, columns are location grids (the paper's Fig. 1
// layout).  The ambient vector holds each link's target-free RSS from
// the same survey epoch; the paper's distortion test and the known
// (undistorted) entries of the reconstruction both derive from it.
#pragma once

#include <cstddef>

#include "tafloc/fingerprint/link_health.h"
#include "tafloc/fingerprint/quantized.h"
#include "tafloc/linalg/matrix.h"

namespace tafloc {

class FingerprintDatabase {
 public:
  /// `fingerprints` is M x N (links x grids); `ambient` has length M;
  /// `surveyed_at_days` is the elapsed-time stamp of the survey.
  FingerprintDatabase(Matrix fingerprints, Vector ambient, double surveyed_at_days);

  std::size_t num_links() const noexcept { return fingerprints_.rows(); }
  std::size_t num_grids() const noexcept { return fingerprints_.cols(); }

  const Matrix& fingerprints() const noexcept { return fingerprints_; }
  const Vector& ambient() const noexcept { return ambient_; }
  double surveyed_at_days() const noexcept { return surveyed_at_; }

  /// Non-owning view of the fingerprint matrix.  Valid until the next
  /// update() that reallocates the storage (see view.h); consumers that
  /// hold it across updates must be re-pointed afterwards.
  ConstMatrixView fingerprints_view() const noexcept { return fingerprints_.view(); }

  /// Fingerprint column of grid j.
  Vector fingerprint_of(std::size_t grid) const;

  /// Fingerprint column of grid j as a strided view (zero-copy; same
  /// lifetime caveat as fingerprints_view()).
  ConstVectorView col_view(std::size_t grid) const { return fingerprints_.col_view(grid); }

  /// Replace the fingerprint matrix (e.g. with a reconstruction) and
  /// advance the survey timestamp.  Shape must be unchanged.  A
  /// timestamp slightly behind the current one (clock skew between the
  /// surveyor and the serving host) is clamped to the current stamp
  /// with a warning; only negative absolute times are rejected.
  void update(Matrix fingerprints, Vector ambient, double surveyed_at_days);

  /// Age of the database relative to `now_days`.  `now_days` slightly
  /// behind the survey stamp (clock skew) clamps to age 0 with a
  /// warning; only negative absolute times are rejected.
  double age_days(double now_days) const;

  /// The int8 scan mirror of the fingerprint matrix (see quantized.h).
  /// Derived state: rebuilt by the constructor and every update() --
  /// i.e. on load() and on the staged-update commit swap -- so it is
  /// always consistent with fingerprints_view(); never serialized and
  /// not part of operator==.  Same lifetime caveat as
  /// fingerprints_view(): consumers re-attach after an update.
  const QuantizedTier& quantized_tier() const noexcept { return quantized_; }

  /// Per-link serving mask, persisted across update() calls: the
  /// fingerprints are refreshed, but a dead transceiver stays dead.
  /// Mask-aware consumers (matchers, LoLi-IR via row_observed) read
  /// this one instance so the whole serving path agrees on it.
  LinkHealth& link_health() noexcept { return link_health_; }
  const LinkHealth& link_health() const noexcept { return link_health_; }

  /// Serialize the full database -- fingerprint matrix and ambient
  /// vector bit-exact (binary linalg/io), survey timestamp, and the
  /// complete LinkHealth state machine -- into a durability payload.
  void save(storage::ByteWriter& out) const;
  /// Inverse of save(); throws std::runtime_error on truncated,
  /// garbage, or shape-inconsistent payloads.
  static FingerprintDatabase load(storage::ByteReader& in);

  /// Exact whole-state equality (the crash drill's bit-identity check).
  friend bool operator==(const FingerprintDatabase& a, const FingerprintDatabase& b) noexcept {
    return a.fingerprints_ == b.fingerprints_ && a.ambient_ == b.ambient_ &&
           a.surveyed_at_ == b.surveyed_at_ && a.link_health_ == b.link_health_;
  }

 private:
  Matrix fingerprints_;
  Vector ambient_;
  double surveyed_at_;
  LinkHealth link_health_;
  QuantizedTier quantized_;  ///< derived from fingerprints_, never persisted.
};

}  // namespace tafloc
