// Node batch format -- the compact binary unit cheap sensor nodes ship
// to taflocd (kBatchIngest) or park in store-and-forward files.
//
// One batch is everything a single node has to say since its last
// flush: a versioned header (format version + node id), then a run of
// readings, each carrying the link index the node measured, the RSS in
// dBm (NaN = the node saw the link dead), a per-node monotonic
// sequence number (the dedup key: node id + sequence identifies one
// physical measurement forever, however many times the batch is
// retransmitted), and the node-local scan timestamp t_days (the merge
// key: readings sharing a timestamp belong to one scan round).
//
// The payload rides the storage codec (bounds-checked, little-endian,
// bit-exact doubles); on disk it is CRC-framed as one storage::Frame
// of type kBatchRecordType, on the wire it nests inside the daemon's
// own frame -- either way a torn or bit-flipped batch is rejected
// before a single field is trusted.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tafloc/storage/codec.h"
#include "tafloc/storage/record.h"

namespace tafloc::ingest {

/// Bumped on any incompatible layout change; a batch carrying another
/// version is rejected at decode.
inline constexpr std::uint32_t kBatchFormatVersion = 1;

/// Frame `type` for a standalone CRC-framed batch record ("NB").
inline constexpr std::uint32_t kBatchRecordType = 0x4e42;

struct NodeReading {
  std::uint32_t link = 0;      ///< link index within the zone's deployment.
  double rss = 0.0;            ///< mean burst RSS in dBm (NaN = dead link).
  std::uint64_t sequence = 0;  ///< per-node monotonic measurement counter.
  double t_days = 0.0;         ///< node-local scan timestamp (round key).
};

/// Bit-exact equality (rss compares by IEEE bit pattern, so NaN
/// payloads round-trip as equal) -- codec and dedup tests.
bool operator==(const NodeReading& a, const NodeReading& b) noexcept;

struct NodeBatch {
  std::uint32_t node_id = 0;
  std::vector<NodeReading> readings;

  /// Append the versioned payload (header + readings) to `out`.
  void encode(storage::ByteWriter& out) const;
  /// Decode one batch payload; throws std::runtime_error on a version
  /// mismatch, truncation, or an absurd declared count.
  static NodeBatch decode(storage::ByteReader& in);

  /// One standalone CRC-framed record ready to append to a
  /// store-and-forward file (frame type kBatchRecordType).
  std::string to_frame(std::uint64_t seq) const;
  /// Decode from a frame produced by to_frame(); throws on a wrong
  /// frame type or malformed payload.
  static NodeBatch from_frame(const storage::Frame& frame);
};

bool operator==(const NodeBatch& a, const NodeBatch& b) noexcept;

}  // namespace tafloc::ingest
