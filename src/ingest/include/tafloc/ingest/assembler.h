// BatchAssembler -- the per-zone merge point between many cheap nodes
// and one localization pipeline.
//
// Nodes flush independently, retransmit on any doubt, and arrive in
// whatever order the transport felt like, so the assembler's job is to
// turn that into clean, complete per-scan `Y` vectors with exact
// accounting:
//
//   * dedup     -- (node id, sequence) identifies one physical
//                  measurement; a re-seen sequence is dropped and
//                  counted (dups_dropped), so a retransmitted batch
//                  changes nothing downstream.
//   * staleness -- per-node sequences older than the dedup window, and
//                  readings for rounds that already completed or
//                  expired, are dropped and counted (stale_dropped).
//   * merge     -- readings sharing a t_days timestamp form one scan
//                  round; a round completes when every deployment link
//                  is covered.  Rounds may complete out of order: an
//                  older round still open when a newer one finishes
//                  keeps accumulating and is emitted late (the
//                  scheduler's own out-of-order drop then judges its
//                  timestamp -- exactly the PR 5 sanitization rules).
//
// A NaN RSS still *covers* its link (the node affirmatively reported a
// dead read); the fault-tolerant localize/scheduler path downstream
// decides what a NaN entry means.  The assembler is deliberately
// transport- and telemetry-free: plain counters, no sockets, no
// registry -- the Zone maps the counters onto its ingest.* metrics.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <span>
#include <unordered_map>
#include <vector>

#include "tafloc/ingest/batch.h"
#include "tafloc/linalg/matrix.h"

namespace tafloc::ingest {

struct AssemblerConfig {
  std::size_t num_links = 0;          ///< deployment link count (required).
  std::size_t dedup_window = 1024;    ///< per-node sequences kept for exact dedup.
  std::size_t max_pending_rounds = 64;  ///< open rounds before the oldest expires.
};

/// One fully-covered scan round, ready for gating + localization.
struct CompletedRound {
  double t_days = 0.0;
  Vector y;                  ///< one entry per link (NaN = dead-link report).
  std::size_t readings = 0;  ///< readings merged into this round.
};

/// Exact accounting; every ingested reading lands in exactly one of
/// readings / dups_dropped / stale_dropped / bad_readings.
struct IngestCounters {
  std::uint64_t batches = 0;          ///< batches ingested.
  std::uint64_t readings = 0;         ///< readings merged into rounds.
  std::uint64_t dups_dropped = 0;     ///< (node, sequence) or link re-seen.
  std::uint64_t stale_dropped = 0;    ///< below the dedup window / closed round.
  std::uint64_t bad_readings = 0;     ///< link out of range / non-finite t_days.
  std::uint64_t rounds_completed = 0;
  std::uint64_t rounds_expired = 0;   ///< evicted incomplete (pending cap).
};

class BatchAssembler {
 public:
  /// Throws std::invalid_argument when num_links, dedup_window, or
  /// max_pending_rounds is zero.
  explicit BatchAssembler(const AssemblerConfig& config);

  /// Validate, dedup, and merge one node batch; returns the rounds it
  /// completed, oldest first.  Never throws on hostile *content* --
  /// bad readings are counted, not fatal (the codec already rejected
  /// structural garbage).
  std::vector<CompletedRound> ingest(const NodeBatch& batch);

  const IngestCounters& counters() const noexcept { return counters_; }
  const AssemblerConfig& config() const noexcept { return config_; }
  /// Rounds currently open (incomplete link coverage).
  std::size_t pending_rounds() const noexcept { return pending_.size(); }

 private:
  struct NodeState {
    /// Sequences below this are too old to dedup exactly -- dropped as
    /// stale.  Starts at 0 (nothing stale); slides up as the window
    /// fills.
    std::uint64_t low = 0;
    std::set<std::uint64_t> seen;  ///< accepted sequences >= low.
  };
  struct PendingRound {
    Vector y;
    std::vector<char> have;  ///< per-link coverage (vector<bool> is a trap).
    std::size_t filled = 0;
    std::size_t readings = 0;
  };

  AssemblerConfig config_;
  IngestCounters counters_;
  std::unordered_map<std::uint32_t, NodeState> nodes_;
  std::map<double, PendingRound> pending_;  ///< open rounds by timestamp.
  double closed_before_ = 0.0;  ///< rounds at/below this completed or expired.
  bool any_closed_ = false;     ///< closed_before_ is meaningful.
};

/// The symmetric-diff movement detector: mean |y[i] - baseline[i]| over
/// the entries finite in both (0.0 when none are).  Matches the
/// scheduler's staleness mean, so "ambient" means the same thing to the
/// gate and to the update trigger it feeds.
double movement_db(std::span<const double> y, std::span<const double> baseline);

}  // namespace tafloc::ingest
