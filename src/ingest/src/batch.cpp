#include "tafloc/ingest/batch.h"

#include <bit>
#include <stdexcept>

namespace tafloc::ingest {

namespace {

/// Encoded bytes per reading: u32 link + f64 rss + u64 sequence +
/// f64 t_days.
constexpr std::size_t kReadingBytes = 4 + 8 + 8 + 8;

}  // namespace

bool operator==(const NodeReading& a, const NodeReading& b) noexcept {
  return a.link == b.link && a.sequence == b.sequence &&
         std::bit_cast<std::uint64_t>(a.rss) == std::bit_cast<std::uint64_t>(b.rss) &&
         std::bit_cast<std::uint64_t>(a.t_days) == std::bit_cast<std::uint64_t>(b.t_days);
}

bool operator==(const NodeBatch& a, const NodeBatch& b) noexcept {
  return a.node_id == b.node_id && a.readings == b.readings;
}

void NodeBatch::encode(storage::ByteWriter& out) const {
  out.put_u32(kBatchFormatVersion);
  out.put_u32(node_id);
  out.put_u64(readings.size());
  for (const NodeReading& r : readings) {
    out.put_u32(r.link);
    out.put_f64(r.rss);
    out.put_u64(r.sequence);
    out.put_f64(r.t_days);
  }
}

NodeBatch NodeBatch::decode(storage::ByteReader& in) {
  const std::uint32_t version = in.get_u32();
  if (version != kBatchFormatVersion) {
    throw std::runtime_error("node batch: format version " + std::to_string(version) +
                             " not supported (expected " +
                             std::to_string(kBatchFormatVersion) + ")");
  }
  NodeBatch batch;
  batch.node_id = in.get_u32();
  const std::uint64_t count = in.get_u64();
  in.require_elements(count, kReadingBytes, "node batch readings");
  batch.readings.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    NodeReading r;
    r.link = in.get_u32();
    r.rss = in.get_f64();
    r.sequence = in.get_u64();
    r.t_days = in.get_f64();
    batch.readings.push_back(r);
  }
  return batch;
}

std::string NodeBatch::to_frame(std::uint64_t seq) const {
  storage::ByteWriter out;
  encode(out);
  return storage::encode_frame(kBatchRecordType, seq, out.bytes());
}

NodeBatch NodeBatch::from_frame(const storage::Frame& frame) {
  if (frame.type != kBatchRecordType) {
    throw std::runtime_error("node batch: unexpected frame type " + std::to_string(frame.type));
  }
  storage::ByteReader in(frame.payload);
  NodeBatch batch = decode(in);
  in.expect_exhausted("node batch record");
  return batch;
}

}  // namespace tafloc::ingest
