#include "tafloc/ingest/assembler.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "tafloc/util/check.h"

namespace tafloc::ingest {

BatchAssembler::BatchAssembler(const AssemblerConfig& config) : config_(config) {
  TAFLOC_CHECK_ARG(config.num_links > 0, "assembler needs at least one link");
  TAFLOC_CHECK_ARG(config.dedup_window > 0, "dedup window must be >= 1");
  TAFLOC_CHECK_ARG(config.max_pending_rounds > 0, "pending-round cap must be >= 1");
}

std::vector<CompletedRound> BatchAssembler::ingest(const NodeBatch& batch) {
  ++counters_.batches;
  std::vector<CompletedRound> completed;
  NodeState& node = nodes_[batch.node_id];

  for (const NodeReading& r : batch.readings) {
    if (r.link >= config_.num_links || !std::isfinite(r.t_days)) {
      ++counters_.bad_readings;
      continue;
    }

    // Per-node dedup: one sequence number, one physical measurement.
    if (r.sequence < node.low) {
      // Too old to verify against the window -- indistinguishable from
      // a duplicate of an expired sequence, so it is stale either way.
      ++counters_.stale_dropped;
      continue;
    }
    if (!node.seen.insert(r.sequence).second) {
      ++counters_.dups_dropped;
      continue;
    }
    while (node.seen.size() > config_.dedup_window) {
      const auto oldest = node.seen.begin();
      node.low = *oldest + 1;
      node.seen.erase(oldest);
    }

    // Round admission: a reading for a round that already completed or
    // expired carries no information -- unless that round is still
    // open (out-of-order completion), in which case it keeps merging.
    auto it = pending_.find(r.t_days);
    if (it == pending_.end()) {
      if (any_closed_ && r.t_days <= closed_before_) {
        ++counters_.stale_dropped;
        continue;
      }
      PendingRound fresh;
      fresh.y.assign(config_.num_links, std::numeric_limits<double>::quiet_NaN());
      fresh.have.assign(config_.num_links, 0);
      it = pending_.emplace(r.t_days, std::move(fresh)).first;
    }

    PendingRound& round = it->second;
    if (round.have[r.link] != 0) {
      // Two accepted sequences covering one link in one round: the
      // first write wins (deterministic merge), the second is a dup.
      ++counters_.dups_dropped;
      continue;
    }
    round.y[r.link] = r.rss;
    round.have[r.link] = 1;
    ++round.filled;
    ++round.readings;
    ++counters_.readings;

    if (round.filled == config_.num_links) {
      CompletedRound done;
      done.t_days = it->first;
      done.y = std::move(round.y);
      done.readings = round.readings;
      completed.push_back(std::move(done));
      closed_before_ = any_closed_ ? std::max(closed_before_, it->first) : it->first;
      any_closed_ = true;
      pending_.erase(it);
      ++counters_.rounds_completed;
    }
  }

  // Bound memory: evict the oldest open rounds past the cap.  An
  // evicted round's future readings are then stale by the watermark.
  while (pending_.size() > config_.max_pending_rounds) {
    const auto oldest = pending_.begin();
    closed_before_ = any_closed_ ? std::max(closed_before_, oldest->first) : oldest->first;
    any_closed_ = true;
    pending_.erase(oldest);
    ++counters_.rounds_expired;
  }

  std::sort(completed.begin(), completed.end(),
            [](const CompletedRound& a, const CompletedRound& b) { return a.t_days < b.t_days; });
  return completed;
}

double movement_db(std::span<const double> y, std::span<const double> baseline) {
  TAFLOC_CHECK_ARG(y.size() == baseline.size(), "movement_db: size mismatch");
  double sum = 0.0;
  std::size_t finite = 0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    const double d = y[i] - baseline[i];
    if (!std::isfinite(d)) continue;
    sum += std::abs(d);
    ++finite;
  }
  return finite == 0 ? 0.0 : sum / static_cast<double>(finite);
}

}  // namespace tafloc::ingest
