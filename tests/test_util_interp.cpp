#include "tafloc/util/interp.h"

#include <gtest/gtest.h>

#include <vector>

namespace tafloc {
namespace {

TEST(LinearInterpolator, ExactAtKnots) {
  const std::vector<double> xs{0.0, 1.0, 3.0};
  const std::vector<double> ys{2.0, 4.0, -2.0};
  const LinearInterpolator f(xs, ys);
  EXPECT_DOUBLE_EQ(f(0.0), 2.0);
  EXPECT_DOUBLE_EQ(f(1.0), 4.0);
  EXPECT_DOUBLE_EQ(f(3.0), -2.0);
}

TEST(LinearInterpolator, InterpolatesLinearly) {
  const std::vector<double> xs{0.0, 2.0};
  const std::vector<double> ys{0.0, 10.0};
  const LinearInterpolator f(xs, ys);
  EXPECT_DOUBLE_EQ(f(0.5), 2.5);
  EXPECT_DOUBLE_EQ(f(1.0), 5.0);
  EXPECT_DOUBLE_EQ(f(1.5), 7.5);
}

TEST(LinearInterpolator, ClampsOutsideRange) {
  const std::vector<double> xs{1.0, 2.0};
  const std::vector<double> ys{5.0, 6.0};
  const LinearInterpolator f(xs, ys);
  EXPECT_DOUBLE_EQ(f(0.0), 5.0);
  EXPECT_DOUBLE_EQ(f(10.0), 6.0);
}

TEST(LinearInterpolator, SingleKnotIsConstant) {
  const std::vector<double> xs{2.0};
  const std::vector<double> ys{7.0};
  const LinearInterpolator f(xs, ys);
  EXPECT_DOUBLE_EQ(f(-1.0), 7.0);
  EXPECT_DOUBLE_EQ(f(2.0), 7.0);
  EXPECT_DOUBLE_EQ(f(9.0), 7.0);
}

TEST(LinearInterpolator, RejectsEmptyAndMismatched) {
  const std::vector<double> empty;
  const std::vector<double> one{1.0};
  const std::vector<double> two{1.0, 2.0};
  EXPECT_THROW(LinearInterpolator(empty, empty), std::invalid_argument);
  EXPECT_THROW(LinearInterpolator(one, two), std::invalid_argument);
}

TEST(LinearInterpolator, RejectsNonIncreasingKnots) {
  const std::vector<double> xs{0.0, 0.0};
  const std::vector<double> ys{1.0, 2.0};
  EXPECT_THROW(LinearInterpolator(xs, ys), std::invalid_argument);
  const std::vector<double> xs2{1.0, 0.5};
  EXPECT_THROW(LinearInterpolator(xs2, ys), std::invalid_argument);
}

TEST(LinearInterpolator, SizeReportsKnots) {
  const std::vector<double> xs{0.0, 1.0, 2.0};
  const std::vector<double> ys{0.0, 0.0, 0.0};
  EXPECT_EQ(LinearInterpolator(xs, ys).size(), 3u);
}

}  // namespace
}  // namespace tafloc
