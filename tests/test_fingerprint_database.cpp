#include "tafloc/fingerprint/database.h"

#include <gtest/gtest.h>

namespace tafloc {
namespace {

FingerprintDatabase make_db() {
  const Matrix fp = Matrix::from_rows({{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}});
  return FingerprintDatabase(fp, Vector{10.0, 20.0}, 0.0);
}

TEST(FingerprintDatabase, Accessors) {
  const FingerprintDatabase db = make_db();
  EXPECT_EQ(db.num_links(), 2u);
  EXPECT_EQ(db.num_grids(), 3u);
  EXPECT_DOUBLE_EQ(db.surveyed_at_days(), 0.0);
  EXPECT_DOUBLE_EQ(db.ambient()[1], 20.0);
}

TEST(FingerprintDatabase, FingerprintOfGrid) {
  const FingerprintDatabase db = make_db();
  const Vector fp = db.fingerprint_of(1);
  ASSERT_EQ(fp.size(), 2u);
  EXPECT_DOUBLE_EQ(fp[0], 2.0);
  EXPECT_DOUBLE_EQ(fp[1], 5.0);
}

TEST(FingerprintDatabase, FingerprintOfRejectsBadIndex) {
  const FingerprintDatabase db = make_db();
  EXPECT_THROW(db.fingerprint_of(3), std::out_of_range);
}

TEST(FingerprintDatabase, ViewAccessorsAliasStoredMatrix) {
  const FingerprintDatabase db = make_db();
  const ConstMatrixView fp = db.fingerprints_view();
  EXPECT_EQ(fp.data(), db.fingerprints().data().data());
  EXPECT_EQ(fp.rows(), 2u);
  EXPECT_EQ(fp.cols(), 3u);
  const ConstVectorView col = db.col_view(1);
  EXPECT_DOUBLE_EQ(col[0], 2.0);
  EXPECT_DOUBLE_EQ(col[1], 5.0);
  EXPECT_EQ(col.to_vector(), db.fingerprint_of(1));
  EXPECT_THROW(db.col_view(3), std::out_of_range);
}

TEST(FingerprintDatabase, RejectsInconsistentConstruction) {
  const Matrix fp(2, 3, 1.0);
  EXPECT_THROW(FingerprintDatabase(fp, Vector{1.0}, 0.0), std::invalid_argument);
  EXPECT_THROW(FingerprintDatabase(fp, Vector{1.0, 2.0}, -1.0), std::invalid_argument);
  EXPECT_THROW(FingerprintDatabase(Matrix{}, Vector{}, 0.0), std::invalid_argument);
}

TEST(FingerprintDatabase, UpdateSwapsContents) {
  FingerprintDatabase db = make_db();
  const Matrix fresh(2, 3, 9.0);
  db.update(fresh, Vector{11.0, 21.0}, 30.0);
  EXPECT_DOUBLE_EQ(db.fingerprints()(0, 0), 9.0);
  EXPECT_DOUBLE_EQ(db.ambient()[0], 11.0);
  EXPECT_DOUBLE_EQ(db.surveyed_at_days(), 30.0);
}

TEST(FingerprintDatabase, UpdateRejectsShapeChange) {
  FingerprintDatabase db = make_db();
  EXPECT_THROW(db.update(Matrix(2, 4, 0.0), Vector{1.0, 2.0}, 30.0), std::invalid_argument);
  EXPECT_THROW(db.update(Matrix(2, 3, 0.0), Vector{1.0}, 30.0), std::invalid_argument);
}

TEST(FingerprintDatabase, UpdateClampsClockSkewButRejectsNegativeTime) {
  FingerprintDatabase db = make_db();
  db.update(Matrix(2, 3, 1.0), Vector{1.0, 2.0}, 30.0);
  // A surveyor whose clock runs slightly behind the serving host must
  // not crash the update; the stamp clamps to the current one.
  db.update(Matrix(2, 3, 2.0), Vector{3.0, 4.0}, 29.5);
  EXPECT_DOUBLE_EQ(db.surveyed_at_days(), 30.0);
  EXPECT_DOUBLE_EQ(db.fingerprints()(0, 0), 2.0);  // data still accepted
  // Grossly invalid (negative absolute) time is a caller bug: rejected.
  EXPECT_THROW(db.update(Matrix(2, 3, 1.0), Vector{1.0, 2.0}, -1.0), std::invalid_argument);
}

TEST(FingerprintDatabase, AgeComputation) {
  FingerprintDatabase db = make_db();
  EXPECT_DOUBLE_EQ(db.age_days(45.0), 45.0);
  db.update(Matrix(2, 3, 1.0), Vector{1.0, 2.0}, 40.0);
  EXPECT_DOUBLE_EQ(db.age_days(45.0), 5.0);
  // Clock skew: "now" slightly behind the survey stamp clamps to 0.
  EXPECT_DOUBLE_EQ(db.age_days(39.0), 0.0);
  EXPECT_THROW(db.age_days(-1.0), std::invalid_argument);
}

TEST(FingerprintDatabase, LinkHealthPersistsAcrossUpdates) {
  FingerprintDatabase db = make_db();
  EXPECT_TRUE(db.link_health().all_usable());
  db.link_health().mark_dead(1);
  EXPECT_EQ(db.link_health().dead_count(), 1u);
  // A fingerprint refresh does not resurrect a dead transceiver.
  db.update(Matrix(2, 3, 1.0), Vector{1.0, 2.0}, 30.0);
  EXPECT_EQ(db.link_health().dead_count(), 1u);
  EXPECT_FALSE(db.link_health().usable(1));
}

}  // namespace
}  // namespace tafloc
