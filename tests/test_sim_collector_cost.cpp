#include <gtest/gtest.h>

#include <cmath>

#include "tafloc/sim/collector.h"
#include "tafloc/sim/scenario.h"
#include "tafloc/sim/survey_cost.h"

namespace tafloc {
namespace {

// ---------------- survey cost model ----------------

TEST(SurveyCost, PaperInlineNumbers) {
  // Paper section 3: 6 m x 6 m full survey = 100 * (6/0.6)^2 / 3600
  // ~ 2.78 h; TafLoc with 10 reference locations ~ 0.28 h.
  const SurveyCostModel cost;
  EXPECT_NEAR(cost.full_survey_hours(6.0), 2.7778, 1e-3);
  EXPECT_NEAR(cost.reference_survey_hours(10), 0.2778, 1e-3);
}

TEST(SurveyCost, QuadraticInEdgeLength) {
  const SurveyCostModel cost;
  EXPECT_NEAR(cost.full_survey_hours(12.0), 4.0 * cost.full_survey_hours(6.0), 1e-9);
  EXPECT_NEAR(cost.full_survey_hours(36.0), 36.0 * cost.full_survey_hours(6.0), 1e-9);
}

TEST(SurveyCost, LinearInReferenceCount) {
  const SurveyCostModel cost;
  EXPECT_NEAR(cost.reference_survey_hours(20), 2.0 * cost.reference_survey_hours(10), 1e-12);
}

TEST(SurveyCost, WalkOverheadAdds) {
  SurveyCostModel cost;
  cost.walk_overhead_s = 20.0;
  // 100 s sampling + 20 s walking per grid.
  EXPECT_NEAR(cost.hours_for_grids(30), 30.0 * 120.0 / 3600.0, 1e-12);
}

TEST(SurveyCost, PaperTafLocAt36m) {
  // Fig. 4: TafLoc needs ~1.6 h at 36 m edge (60 reference locations).
  const SurveyCostModel cost;
  EXPECT_NEAR(cost.reference_survey_hours(60), 1.67, 0.01);
}

TEST(SurveyCost, RejectsBadArguments) {
  SurveyCostModel cost;
  EXPECT_THROW(cost.full_survey_hours(0.0), std::invalid_argument);
  EXPECT_THROW(cost.full_survey_hours(6.0, 0.0), std::invalid_argument);
  cost.sample_period_s = 0.0;
  EXPECT_THROW(cost.hours_for_grids(1), std::invalid_argument);
}

// ---------------- collector ----------------

/// Survey config with the placement-repeatability noise disabled, for
/// tests that compare surveyed values against the noise-free truth.
SurveyConfig exact_survey_config() {
  SurveyConfig cfg;
  cfg.repeatability_stddev_db = 0.0;
  return cfg;
}

class CollectorTest : public ::testing::Test {
 protected:
  CollectorTest()
      : scenario_(Deployment::paper_room(), ChannelConfig{}, 99, exact_survey_config()) {}
  Scenario scenario_;
};

TEST_F(CollectorTest, SurveyAllShape) {
  Rng rng(1);
  const Matrix x = scenario_.collector().survey_all(0.0, rng);
  EXPECT_EQ(x.rows(), 10u);
  EXPECT_EQ(x.cols(), 96u);
}

TEST_F(CollectorTest, SurveyedValuesNearGroundTruth) {
  Rng rng(2);
  const Matrix x = scenario_.collector().survey_all(0.0, rng);
  const Matrix truth = scenario_.collector().ground_truth(0.0);
  // 100-sample means have sigma ~ 1.2/10 = 0.12 dB.
  EXPECT_LT(max_abs_diff(x, truth), 0.8);
}

TEST_F(CollectorTest, SurveyGridsSubsetMatchesColumns) {
  Rng rng(3);
  const std::vector<std::size_t> grids{5, 17, 40};
  const Matrix sub = scenario_.collector().survey_grids(grids, 0.0, rng);
  EXPECT_EQ(sub.rows(), 10u);
  EXPECT_EQ(sub.cols(), 3u);
  const Matrix truth = scenario_.collector().ground_truth(0.0);
  for (std::size_t k = 0; k < grids.size(); ++k)
    for (std::size_t i = 0; i < 10; ++i)
      EXPECT_NEAR(sub(i, k), truth(i, grids[k]), 0.8);
}

TEST_F(CollectorTest, AmbientScanMatchesTargetFreeRss) {
  Rng rng(4);
  const Vector ambient = scenario_.collector().ambient_scan(0.0, rng);
  ASSERT_EQ(ambient.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i)
    EXPECT_NEAR(ambient[i], scenario_.channel().expected_rss(i, std::nullopt, 0.0), 0.8);
}

TEST_F(CollectorTest, GroundTruthIsNoiseFree) {
  const Matrix a = scenario_.collector().ground_truth(15.0);
  const Matrix b = scenario_.collector().ground_truth(15.0);
  EXPECT_LT(max_abs_diff(a, b), 1e-15);
}

TEST_F(CollectorTest, ObserveLengthAndPlausibility) {
  Rng rng(5);
  const Point2 target{3.0, 2.0};
  const Vector y = scenario_.collector().observe(target, 0.0, rng);
  ASSERT_EQ(y.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i)
    EXPECT_NEAR(y[i], scenario_.channel().expected_rss(i, target, 0.0), 3.0);
}

TEST_F(CollectorTest, ObserveAmbientNoTarget) {
  Rng rng(6);
  const Vector y = scenario_.collector().observe_ambient(0.0, rng);
  ASSERT_EQ(y.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i)
    EXPECT_NEAR(y[i], scenario_.channel().expected_rss(i, std::nullopt, 0.0), 3.0);
}

TEST_F(CollectorTest, SurveyRejectsBadGridIndex) {
  Rng rng(7);
  const std::vector<std::size_t> bad{96};
  EXPECT_THROW(scenario_.collector().survey_grids(bad, 0.0, rng), std::out_of_range);
}

TEST_F(CollectorTest, SurveyRejectsEmptyGridList) {
  Rng rng(8);
  const std::vector<std::size_t> empty;
  EXPECT_THROW(scenario_.collector().survey_grids(empty, 0.0, rng), std::invalid_argument);
}

TEST(Collector, RepeatabilityNoiseAppliedToTargetSurveys) {
  // With the default config, two surveys of the same grid at the same
  // instant differ by placement repeatability (>> the 100-sample mean
  // noise), while ambient scans (no target, no placement) agree tightly.
  const Scenario s = Scenario::paper_room(123);
  Rng rng(5);
  const std::vector<std::size_t> grids{40};
  const Matrix a = s.collector().survey_grids(grids, 0.0, rng);
  const Matrix b = s.collector().survey_grids(grids, 0.0, rng);
  EXPECT_GT(max_abs_diff(a, b), 0.4);

  const Vector amb_a = s.collector().ambient_scan(0.0, rng);
  const Vector amb_b = s.collector().ambient_scan(0.0, rng);
  double worst = 0.0;
  for (std::size_t i = 0; i < amb_a.size(); ++i)
    worst = std::max(worst, std::abs(amb_a[i] - amb_b[i]));
  EXPECT_LT(worst, 0.8);
}

TEST(Collector, RejectsNegativeRepeatability) {
  const Deployment d = Deployment::paper_room();
  const Channel ch(d.links(), ChannelConfig{}, 1);
  SurveyConfig cfg;
  cfg.repeatability_stddev_db = -0.1;
  EXPECT_THROW(FingerprintCollector(d, ch, cfg), std::invalid_argument);
}

TEST(Collector, RejectsMismatchedChannel) {
  const Deployment d10 = Deployment::paper_room();
  const Deployment d4 = Deployment::two_sided(6.0, 6.0, 0.6, 4);
  const Channel ch(d4.links(), ChannelConfig{}, 1);
  EXPECT_THROW(FingerprintCollector(d10, ch), std::invalid_argument);
}

TEST(Collector, RejectsBadSurveyConfig) {
  const Deployment d = Deployment::paper_room();
  const Channel ch(d.links(), ChannelConfig{}, 1);
  SurveyConfig cfg;
  cfg.samples_per_grid = 0;
  EXPECT_THROW(FingerprintCollector(d, ch, cfg), std::invalid_argument);
}

}  // namespace
}  // namespace tafloc
