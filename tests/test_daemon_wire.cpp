// Wire protocol: packet round trips, version negotiation, and the
// rejection paths that keep one bad client from hurting the daemon.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "tafloc/daemon/wire.h"
#include "tafloc/storage/codec.h"
#include "tafloc/storage/record.h"

namespace tafloc::daemon {
namespace {

storage::Frame reframe(const std::string& bytes) {
  storage::Frame frame;
  std::size_t pos = 0;
  EXPECT_EQ(storage::decode_frame(bytes, pos, frame), storage::FrameStatus::kOk);
  EXPECT_EQ(pos, bytes.size());
  return frame;
}

TEST(DaemonWire, LocalizeRoundTrip) {
  LocalizeRequest req{"office", {1.0, -2.5, 3.25}};
  req.trace_id = 0xfeedbeef12345678ull;
  req.trace_sampled = true;
  const storage::Frame frame = reframe(req.encode(42));
  EXPECT_EQ(frame.type, static_cast<std::uint32_t>(PacketType::kLocalizeRequest));
  EXPECT_EQ(frame.seq, 42u);
  const LocalizeRequest back = LocalizeRequest::decode(frame);
  EXPECT_EQ(back.zone, "office");
  EXPECT_EQ(back.rss, req.rss);
  EXPECT_EQ(back.trace_id, 0xfeedbeef12345678ull);
  EXPECT_TRUE(back.trace_sampled);

  LocalizeResponse res;
  res.status = WireStatus::kOk;
  res.x = 2.75;
  res.y = -0.5;
  res.confidence = 0.9;
  res.served = true;
  res.degraded = true;
  res.links_used = 7;
  const LocalizeResponse res_back = LocalizeResponse::decode(reframe(res.encode(42)));
  EXPECT_EQ(res_back.x, 2.75);
  EXPECT_EQ(res_back.y, -0.5);
  EXPECT_EQ(res_back.confidence, 0.9);
  EXPECT_TRUE(res_back.served);
  EXPECT_TRUE(res_back.degraded);
  EXPECT_EQ(res_back.links_used, 7u);
}

TEST(DaemonWire, AmbientAndResurveyRoundTrip) {
  AmbientRequest amb{"lab", {-40.0, -41.5}, 3.25};
  const AmbientRequest amb_back = AmbientRequest::decode(reframe(amb.encode(7)));
  EXPECT_EQ(amb_back.zone, "lab");
  EXPECT_EQ(amb_back.ambient, amb.ambient);
  EXPECT_EQ(amb_back.t_days, 3.25);

  ResurveyRequest sur{"lab", 9.5};
  const ResurveyRequest sur_back = ResurveyRequest::decode(reframe(sur.encode(8)));
  EXPECT_EQ(sur_back.zone, "lab");
  EXPECT_EQ(sur_back.t_days, 9.5);

  AmbientResponse ares;
  ares.accepted = true;
  ares.triggered = true;
  ares.staleness_db = 4.125;
  const AmbientResponse ares_back = AmbientResponse::decode(reframe(ares.encode(7)));
  EXPECT_TRUE(ares_back.accepted);
  EXPECT_TRUE(ares_back.triggered);
  EXPECT_EQ(ares_back.staleness_db, 4.125);
}

TEST(DaemonWire, StatusRoundTripCarriesEveryZoneField) {
  StatusResponse res;
  res.status = WireStatus::kOk;
  ZoneStatus z;
  z.zone = "office";
  z.state = "resurveying";
  z.queries = 12;
  z.updates_committed = 3;
  z.updates_failed = 1;
  z.update_in_flight = true;
  z.staleness_db = 2.5;
  z.clock_days = 14.0;
  z.wal_sequence = 99;
  z.kernel_backend = "avx2";
  z.quantized_tier = true;
  z.slo_ok = 980;
  z.slo_violated = 20;
  z.slo_budget_remaining = -10.25;
  z.slo_degraded = true;
  z.last_error = "solver: diverged";
  res.zones.push_back(z);
  ZoneStatus lab;
  lab.zone = "lab";
  lab.state = "serving";
  lab.kernel_backend = "scalar";
  res.zones.push_back(lab);

  const StatusResponse back = StatusResponse::decode(reframe(res.encode(1)));
  ASSERT_EQ(back.zones.size(), 2u);
  EXPECT_EQ(back.zones[0].zone, "office");
  EXPECT_EQ(back.zones[0].state, "resurveying");
  EXPECT_EQ(back.zones[0].queries, 12u);
  EXPECT_EQ(back.zones[0].updates_committed, 3u);
  EXPECT_EQ(back.zones[0].updates_failed, 1u);
  EXPECT_TRUE(back.zones[0].update_in_flight);
  EXPECT_EQ(back.zones[0].staleness_db, 2.5);
  EXPECT_EQ(back.zones[0].clock_days, 14.0);
  EXPECT_EQ(back.zones[0].wal_sequence, 99u);
  EXPECT_EQ(back.zones[0].kernel_backend, "avx2");
  EXPECT_TRUE(back.zones[0].quantized_tier);
  EXPECT_EQ(back.zones[0].slo_ok, 980u);
  EXPECT_EQ(back.zones[0].slo_violated, 20u);
  EXPECT_EQ(back.zones[0].slo_budget_remaining, -10.25);
  EXPECT_TRUE(back.zones[0].slo_degraded);
  EXPECT_EQ(back.zones[0].last_error, "solver: diverged");
  EXPECT_EQ(back.zones[1].zone, "lab");
  EXPECT_EQ(back.zones[1].kernel_backend, "scalar");
  EXPECT_FALSE(back.zones[1].quantized_tier);
  EXPECT_EQ(back.zones[1].slo_ok, 0u);
  EXPECT_FALSE(back.zones[1].slo_degraded);
}

TEST(DaemonWire, MetricsRoundTripCarriesEveryField) {
  MetricsRequest req{"office"};
  const storage::Frame rframe = reframe(req.encode(5));
  EXPECT_EQ(rframe.type, static_cast<std::uint32_t>(PacketType::kMetricsRequest));
  EXPECT_EQ(MetricsRequest::decode(rframe).zone, "office");

  MetricsResponse res;
  ZoneMetrics m;
  m.zone = "office";
  m.state = "degraded";
  m.uptime_ns = 123456789;
  m.spans_recorded = 40;
  m.spans_dropped = 8;
  m.counters = {{"zone.shed", 3}, {"system.degraded_queries", 11}};
  m.gauges = {{"slo.budget_remaining", -1.5}};
  m.histograms.push_back(WireHistogram{"zone.request_seconds", 100, 0.5, 0.001, 0.09,
                                       0.004, 0.02, 0.05});
  res.zones.push_back(m);

  const MetricsResponse back = MetricsResponse::decode(reframe(res.encode(5)));
  ASSERT_EQ(back.zones.size(), 1u);
  const ZoneMetrics& b = back.zones[0];
  EXPECT_EQ(b.zone, "office");
  EXPECT_EQ(b.state, "degraded");
  EXPECT_EQ(b.uptime_ns, 123456789u);
  EXPECT_EQ(b.spans_recorded, 40u);
  EXPECT_EQ(b.spans_dropped, 8u);
  ASSERT_EQ(b.counters.size(), 2u);
  EXPECT_EQ(b.counters[0].first, "zone.shed");
  EXPECT_EQ(b.counters[0].second, 3u);
  ASSERT_EQ(b.gauges.size(), 1u);
  EXPECT_EQ(b.gauges[0].second, -1.5);
  ASSERT_EQ(b.histograms.size(), 1u);
  EXPECT_EQ(b.histograms[0].name, "zone.request_seconds");
  EXPECT_EQ(b.histograms[0].count, 100u);
  EXPECT_EQ(b.histograms[0].p95, 0.02);
  EXPECT_EQ(b.histograms[0].p99, 0.05);
}

TEST(DaemonWire, TraceRoundTripCarriesEveryField) {
  TraceRequest req{"lab", 32, true};
  const storage::Frame rframe = reframe(req.encode(6));
  EXPECT_EQ(rframe.type, static_cast<std::uint32_t>(PacketType::kTraceRequest));
  const TraceRequest rback = TraceRequest::decode(rframe);
  EXPECT_EQ(rback.zone, "lab");
  EXPECT_EQ(rback.max, 32u);
  EXPECT_TRUE(rback.slow);

  TraceResponse res;
  res.jsonl = "{\"type\":\"trace\",\"trace_id\":1}\n{\"type\":\"trace\",\"trace_id\":2}\n";
  res.total_recorded = 9;
  res.dropped = 2;
  const TraceResponse back = TraceResponse::decode(reframe(res.encode(6)));
  EXPECT_EQ(back.jsonl, res.jsonl);
  EXPECT_EQ(back.total_recorded, 9u);
  EXPECT_EQ(back.dropped, 2u);
}

TEST(DaemonWire, AdminAndProbeRoundTrip) {
  AdminRequest req{AdminOp::kShutdown, ""};
  const AdminRequest back = AdminRequest::decode(reframe(req.encode(3)));
  EXPECT_EQ(back.op, AdminOp::kShutdown);
  EXPECT_EQ(back.zone, "");

  ProbeResponse probe;
  probe.truth_x = 1.5;
  probe.truth_y = 2.5;
  probe.estimate_x = 1.25;
  probe.estimate_y = 2.75;
  probe.error_m = 0.354;
  probe.degraded = false;
  const ProbeResponse probe_back = ProbeResponse::decode(reframe(probe.encode(4)));
  EXPECT_EQ(probe_back.truth_x, 1.5);
  EXPECT_EQ(probe_back.estimate_y, 2.75);
  EXPECT_EQ(probe_back.error_m, 0.354);
}

TEST(DaemonWire, VersionSkewIsRejected) {
  // Hand-build a localize request whose payload claims wire version 99.
  storage::ByteWriter payload;
  payload.put_u32(99);
  const std::string bytes = storage::encode_frame(
      static_cast<std::uint32_t>(PacketType::kLocalizeRequest), 1, payload.bytes());
  const storage::Frame frame = reframe(bytes);
  EXPECT_THROW((void)LocalizeRequest::decode(frame), std::runtime_error);
}

// Build a syntactically valid v2 localize request (zone + rss, no trace
// context -- the pre-v3 payload layout) claiming the given version.
std::string v2_localize_bytes(std::uint32_t version, std::uint64_t seq) {
  storage::ByteWriter payload;
  payload.put_u32(version);
  const std::string zone = "office";
  payload.put_u8_span({reinterpret_cast<const std::uint8_t*>(zone.data()), zone.size()});
  const std::vector<double> rss{1.0, 2.0};
  payload.put_f64_span(rss);
  return storage::encode_frame(static_cast<std::uint32_t>(PacketType::kLocalizeRequest), seq,
                               payload.bytes());
}

TEST(DaemonWire, OldClientAgainstNewServerIsARejectNotAMisparse) {
  // A v2 client's localize request must be rejected on the version
  // field alone -- never half-parsed into a v3 struct (which would read
  // the missing trace context off the end of the payload).
  const storage::Frame frame = reframe(v2_localize_bytes(kWireVersion - 1, 11));
  try {
    (void)LocalizeRequest::decode(frame);
    FAIL() << "v2 payload must not decode on a v3 daemon";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos) << e.what();
  }
}

TEST(DaemonWire, NewClientAgainstOldServerIsARejectNotAMisparse) {
  // The mirror direction: an old daemon applies the same strict
  // equality check to a payload claiming a future version, so a v3+1
  // client gets a clean version error before any field is trusted.
  LocalizeRequest req{"office", {1.0, 2.0}};
  storage::Frame frame = reframe(req.encode(12));
  // Rewrite the leading version word to a future generation in place.
  ASSERT_GE(frame.payload.size(), 4u);
  const std::uint32_t future = kWireVersion + 1;
  std::memcpy(frame.payload.data(), &future, sizeof future);
  const std::string reframed = storage::encode_frame(frame.type, frame.seq, frame.payload);
  try {
    (void)LocalizeRequest::decode(reframe(reframed));
    FAIL() << "future-version payload must not decode";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos) << e.what();
  }
}

TEST(DaemonWire, WrongPacketTypeIsRejected) {
  const storage::Frame frame = reframe(StatusRequest{""}.encode(1));
  EXPECT_THROW((void)LocalizeRequest::decode(frame), std::runtime_error);
}

TEST(DaemonWire, TruncatedPayloadIsRejected) {
  LocalizeRequest req{"office", {1.0, 2.0}};
  std::string bytes = req.encode(1);
  // Chop doubles out of the payload but keep the frame intact by
  // re-framing the truncated payload bytes.
  storage::Frame frame = reframe(bytes);
  frame.payload.resize(frame.payload.size() - 8);
  const std::string reframed = storage::encode_frame(frame.type, frame.seq, frame.payload);
  EXPECT_THROW((void)LocalizeRequest::decode(reframe(reframed)), std::runtime_error);
}

TEST(DaemonWire, ExtractPacketStreamsAndDetectsCorruption) {
  const std::string a = StatusRequest{"office"}.encode(1);
  const std::string b = ProbeRequest{"lab"}.encode(2);
  std::string buffer = a + b;

  storage::Frame frame;
  EXPECT_EQ(extract_packet(buffer, frame), ExtractResult::kPacket);
  EXPECT_EQ(frame.seq, 1u);
  EXPECT_EQ(extract_packet(buffer, frame), ExtractResult::kPacket);
  EXPECT_EQ(frame.seq, 2u);
  EXPECT_TRUE(buffer.empty());
  EXPECT_EQ(extract_packet(buffer, frame), ExtractResult::kNeedMore);

  // A partial frame waits for more bytes...
  buffer = a.substr(0, a.size() - 3);
  EXPECT_EQ(extract_packet(buffer, frame), ExtractResult::kNeedMore);
  EXPECT_EQ(buffer.size(), a.size() - 3);  // untouched.

  // ...a bit flip inside a complete frame is terminal for the stream.
  buffer = a;
  buffer[10] ^= 0x40;
  std::string error;
  EXPECT_EQ(extract_packet(buffer, frame, &error), ExtractResult::kCorrupt);
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace tafloc::daemon
