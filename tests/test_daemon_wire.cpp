// Wire protocol: packet round trips, version negotiation, and the
// rejection paths that keep one bad client from hurting the daemon.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "tafloc/daemon/wire.h"
#include "tafloc/storage/codec.h"
#include "tafloc/storage/record.h"

namespace tafloc::daemon {
namespace {

storage::Frame reframe(const std::string& bytes) {
  storage::Frame frame;
  std::size_t pos = 0;
  EXPECT_EQ(storage::decode_frame(bytes, pos, frame), storage::FrameStatus::kOk);
  EXPECT_EQ(pos, bytes.size());
  return frame;
}

TEST(DaemonWire, LocalizeRoundTrip) {
  LocalizeRequest req{"office", {1.0, -2.5, 3.25}};
  const storage::Frame frame = reframe(req.encode(42));
  EXPECT_EQ(frame.type, static_cast<std::uint32_t>(PacketType::kLocalizeRequest));
  EXPECT_EQ(frame.seq, 42u);
  const LocalizeRequest back = LocalizeRequest::decode(frame);
  EXPECT_EQ(back.zone, "office");
  EXPECT_EQ(back.rss, req.rss);

  LocalizeResponse res;
  res.status = WireStatus::kOk;
  res.x = 2.75;
  res.y = -0.5;
  res.confidence = 0.9;
  res.served = true;
  res.degraded = true;
  res.links_used = 7;
  const LocalizeResponse res_back = LocalizeResponse::decode(reframe(res.encode(42)));
  EXPECT_EQ(res_back.x, 2.75);
  EXPECT_EQ(res_back.y, -0.5);
  EXPECT_EQ(res_back.confidence, 0.9);
  EXPECT_TRUE(res_back.served);
  EXPECT_TRUE(res_back.degraded);
  EXPECT_EQ(res_back.links_used, 7u);
}

TEST(DaemonWire, AmbientAndResurveyRoundTrip) {
  AmbientRequest amb{"lab", {-40.0, -41.5}, 3.25};
  const AmbientRequest amb_back = AmbientRequest::decode(reframe(amb.encode(7)));
  EXPECT_EQ(amb_back.zone, "lab");
  EXPECT_EQ(amb_back.ambient, amb.ambient);
  EXPECT_EQ(amb_back.t_days, 3.25);

  ResurveyRequest sur{"lab", 9.5};
  const ResurveyRequest sur_back = ResurveyRequest::decode(reframe(sur.encode(8)));
  EXPECT_EQ(sur_back.zone, "lab");
  EXPECT_EQ(sur_back.t_days, 9.5);

  AmbientResponse ares;
  ares.accepted = true;
  ares.triggered = true;
  ares.staleness_db = 4.125;
  const AmbientResponse ares_back = AmbientResponse::decode(reframe(ares.encode(7)));
  EXPECT_TRUE(ares_back.accepted);
  EXPECT_TRUE(ares_back.triggered);
  EXPECT_EQ(ares_back.staleness_db, 4.125);
}

TEST(DaemonWire, StatusRoundTripCarriesEveryZoneField) {
  StatusResponse res;
  res.status = WireStatus::kOk;
  ZoneStatus z;
  z.zone = "office";
  z.state = "resurveying";
  z.queries = 12;
  z.updates_committed = 3;
  z.updates_failed = 1;
  z.update_in_flight = true;
  z.staleness_db = 2.5;
  z.clock_days = 14.0;
  z.wal_sequence = 99;
  z.kernel_backend = "avx2";
  z.quantized_tier = true;
  z.last_error = "solver: diverged";
  res.zones.push_back(z);
  res.zones.push_back(ZoneStatus{"lab", "serving", 0, 0, 0, false, 0.0, 0.0, 0, "scalar", false, ""});

  const StatusResponse back = StatusResponse::decode(reframe(res.encode(1)));
  ASSERT_EQ(back.zones.size(), 2u);
  EXPECT_EQ(back.zones[0].zone, "office");
  EXPECT_EQ(back.zones[0].state, "resurveying");
  EXPECT_EQ(back.zones[0].queries, 12u);
  EXPECT_EQ(back.zones[0].updates_committed, 3u);
  EXPECT_EQ(back.zones[0].updates_failed, 1u);
  EXPECT_TRUE(back.zones[0].update_in_flight);
  EXPECT_EQ(back.zones[0].staleness_db, 2.5);
  EXPECT_EQ(back.zones[0].clock_days, 14.0);
  EXPECT_EQ(back.zones[0].wal_sequence, 99u);
  EXPECT_EQ(back.zones[0].kernel_backend, "avx2");
  EXPECT_TRUE(back.zones[0].quantized_tier);
  EXPECT_EQ(back.zones[0].last_error, "solver: diverged");
  EXPECT_EQ(back.zones[1].zone, "lab");
  EXPECT_EQ(back.zones[1].kernel_backend, "scalar");
  EXPECT_FALSE(back.zones[1].quantized_tier);
}

TEST(DaemonWire, AdminAndProbeRoundTrip) {
  AdminRequest req{AdminOp::kShutdown, ""};
  const AdminRequest back = AdminRequest::decode(reframe(req.encode(3)));
  EXPECT_EQ(back.op, AdminOp::kShutdown);
  EXPECT_EQ(back.zone, "");

  ProbeResponse probe;
  probe.truth_x = 1.5;
  probe.truth_y = 2.5;
  probe.estimate_x = 1.25;
  probe.estimate_y = 2.75;
  probe.error_m = 0.354;
  probe.degraded = false;
  const ProbeResponse probe_back = ProbeResponse::decode(reframe(probe.encode(4)));
  EXPECT_EQ(probe_back.truth_x, 1.5);
  EXPECT_EQ(probe_back.estimate_y, 2.75);
  EXPECT_EQ(probe_back.error_m, 0.354);
}

TEST(DaemonWire, VersionSkewIsRejected) {
  // Hand-build a localize request whose payload claims wire version 99.
  storage::ByteWriter payload;
  payload.put_u32(99);
  const std::string bytes = storage::encode_frame(
      static_cast<std::uint32_t>(PacketType::kLocalizeRequest), 1, payload.bytes());
  const storage::Frame frame = reframe(bytes);
  EXPECT_THROW((void)LocalizeRequest::decode(frame), std::runtime_error);
}

TEST(DaemonWire, WrongPacketTypeIsRejected) {
  const storage::Frame frame = reframe(StatusRequest{""}.encode(1));
  EXPECT_THROW((void)LocalizeRequest::decode(frame), std::runtime_error);
}

TEST(DaemonWire, TruncatedPayloadIsRejected) {
  LocalizeRequest req{"office", {1.0, 2.0}};
  std::string bytes = req.encode(1);
  // Chop doubles out of the payload but keep the frame intact by
  // re-framing the truncated payload bytes.
  storage::Frame frame = reframe(bytes);
  frame.payload.resize(frame.payload.size() - 8);
  const std::string reframed = storage::encode_frame(frame.type, frame.seq, frame.payload);
  EXPECT_THROW((void)LocalizeRequest::decode(reframe(reframed)), std::runtime_error);
}

TEST(DaemonWire, ExtractPacketStreamsAndDetectsCorruption) {
  const std::string a = StatusRequest{"office"}.encode(1);
  const std::string b = ProbeRequest{"lab"}.encode(2);
  std::string buffer = a + b;

  storage::Frame frame;
  EXPECT_EQ(extract_packet(buffer, frame), ExtractResult::kPacket);
  EXPECT_EQ(frame.seq, 1u);
  EXPECT_EQ(extract_packet(buffer, frame), ExtractResult::kPacket);
  EXPECT_EQ(frame.seq, 2u);
  EXPECT_TRUE(buffer.empty());
  EXPECT_EQ(extract_packet(buffer, frame), ExtractResult::kNeedMore);

  // A partial frame waits for more bytes...
  buffer = a.substr(0, a.size() - 3);
  EXPECT_EQ(extract_packet(buffer, frame), ExtractResult::kNeedMore);
  EXPECT_EQ(buffer.size(), a.size() - 3);  // untouched.

  // ...a bit flip inside a complete frame is terminal for the stream.
  buffer = a;
  buffer[10] ^= 0x40;
  std::string error;
  EXPECT_EQ(extract_packet(buffer, frame, &error), ExtractResult::kCorrupt);
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace tafloc::daemon
