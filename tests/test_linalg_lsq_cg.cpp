#include <gtest/gtest.h>

#include <cmath>

#include "tafloc/linalg/cg.h"
#include "tafloc/linalg/lsq.h"
#include "tafloc/linalg/ops.h"
#include "tafloc/linalg/vector_ops.h"
#include "tafloc/util/rng.h"

namespace tafloc {
namespace {

// ---------------- least squares ----------------

TEST(LeastSquares, ExactSystemRecovered) {
  const Matrix a = Matrix::from_rows({{1.0, 0.0}, {0.0, 2.0}, {1.0, 1.0}});
  const std::vector<double> x_true{2.0, 3.0};
  const Vector b = multiply(a, x_true);
  const Vector x = solve_least_squares(a, b);
  EXPECT_NEAR(x[0], 2.0, 1e-10);
  EXPECT_NEAR(x[1], 3.0, 1e-10);
}

TEST(LeastSquares, MinimizesResidualForInconsistentSystem) {
  // Fit y = c to points {1, 2, 3}: optimum is the mean, c = 2.
  const Matrix a = Matrix::from_rows({{1.0}, {1.0}, {1.0}});
  const std::vector<double> b{1.0, 2.0, 3.0};
  const Vector x = solve_least_squares(a, b);
  EXPECT_NEAR(x[0], 2.0, 1e-10);
}

TEST(LeastSquares, ResidualOrthogonalToColumnSpace) {
  Rng rng(1);
  const Matrix a = random_gaussian(10, 4, rng);
  Vector b(10);
  for (double& v : b) v = rng.normal();
  const Vector x = solve_least_squares(a, b);
  const Vector ax = multiply(a, x);
  Vector r = subtract(b, ax);
  const Vector atr = multiply_transposed(a, r);
  EXPECT_LT(norm_inf(atr), 1e-9);
}

TEST(LeastSquares, RejectsWideMatrix) {
  const Matrix a(2, 3);
  const std::vector<double> b{1.0, 2.0};
  EXPECT_THROW(solve_least_squares(a, b), std::invalid_argument);
}

TEST(LeastSquares, RejectsLengthMismatch) {
  const Matrix a(3, 2, 1.0);
  const std::vector<double> b{1.0, 2.0};
  EXPECT_THROW(solve_least_squares(a, b), std::invalid_argument);
}

// ---------------- ridge ----------------

TEST(Ridge, ZeroLambdaMatchesLeastSquares) {
  Rng rng(2);
  const Matrix a = random_gaussian(8, 3, rng);
  Vector b(8);
  for (double& v : b) v = rng.normal();
  const Vector x1 = solve_least_squares(a, b);
  const Vector x2 = solve_ridge(a, b, 0.0);
  EXPECT_LT(distance2(x1, x2), 1e-7);
}

TEST(Ridge, ShrinksSolutionNorm) {
  Rng rng(3);
  const Matrix a = random_gaussian(10, 4, rng);
  Vector b(10);
  for (double& v : b) v = rng.normal();
  const Vector x_small = solve_ridge(a, b, 0.01);
  const Vector x_large = solve_ridge(a, b, 100.0);
  EXPECT_LT(norm2(x_large), norm2(x_small));
}

TEST(Ridge, WorksForWideMatrices) {
  Rng rng(4);
  const Matrix a = random_gaussian(3, 8, rng);
  Vector b(3);
  for (double& v : b) v = rng.normal();
  const Vector x = solve_ridge(a, b, 1e-6);
  // Must reproduce b nearly exactly (underdetermined, tiny ridge).
  EXPECT_LT(residual_norm(a, x, b), 1e-3);
}

TEST(Ridge, SatisfiesNormalEquations) {
  Rng rng(5);
  const Matrix a = random_gaussian(9, 4, rng);
  Vector b(9);
  for (double& v : b) v = rng.normal();
  const double lambda = 0.7;
  const Vector x = solve_ridge(a, b, lambda);
  // (A^T A + lambda I) x == A^T b.
  const Vector ax = multiply(a, x);
  Vector lhs = multiply_transposed(a, ax);
  axpy(lambda, x, lhs);
  const Vector rhs = multiply_transposed(a, b);
  EXPECT_LT(distance2(lhs, rhs), 1e-8);
}

TEST(Ridge, RejectsNegativeLambda) {
  const Matrix a(2, 2, 1.0);
  const std::vector<double> b{1.0, 2.0};
  EXPECT_THROW(solve_ridge(a, b, -1.0), std::invalid_argument);
}

TEST(RidgeMatrix, MatchesColumnwiseSolves) {
  Rng rng(6);
  const Matrix a = random_gaussian(7, 3, rng);
  const Matrix b = random_gaussian(7, 4, rng);
  const Matrix x = solve_ridge_matrix(a, b, 0.5);
  for (std::size_t c = 0; c < 4; ++c) {
    const Vector xc = solve_ridge(a, b.col(c), 0.5);
    const Vector got = x.col(c);
    EXPECT_LT(distance2(xc, got), 1e-9);
  }
}

TEST(ResidualNorm, KnownValue) {
  const Matrix a = Matrix::identity(2);
  const std::vector<double> x{1.0, 1.0};
  const std::vector<double> b{1.0, 4.0};
  EXPECT_DOUBLE_EQ(residual_norm(a, x, b), 3.0);
}

// ---------------- conjugate gradient ----------------

TEST(Cg, SolvesSpdSystem) {
  Rng rng(7);
  const Matrix g = random_gaussian(10, 6, rng);
  Matrix a = gram_product(g, g);
  for (std::size_t i = 0; i < 6; ++i) a(i, i) += 0.5;
  Vector x_true(6);
  for (double& v : x_true) v = rng.normal();
  const Vector b = multiply(a, x_true);
  const Vector x0(6, 0.0);
  const CgResult res =
      conjugate_gradient([&](const Vector& v) { return multiply(a, v); }, b, x0);
  EXPECT_TRUE(res.converged);
  EXPECT_LT(distance2(res.x, x_true), 1e-6);
}

TEST(Cg, ConvergesInAtMostNIterationsForExactArithmetic) {
  Rng rng(8);
  const Matrix g = random_gaussian(8, 5, rng);
  Matrix a = gram_product(g, g);
  for (std::size_t i = 0; i < 5; ++i) a(i, i) += 1.0;
  Vector b(5);
  for (double& v : b) v = rng.normal();
  const Vector x0(5, 0.0);
  const CgResult res =
      conjugate_gradient([&](const Vector& v) { return multiply(a, v); }, b, x0);
  EXPECT_TRUE(res.converged);
  EXPECT_LE(res.iterations, 5u + 2u);
}

TEST(Cg, IdentityOperatorConvergesImmediately) {
  const std::vector<double> b{1.0, 2.0, 3.0};
  const std::vector<double> x0{0.0, 0.0, 0.0};
  const CgResult res = conjugate_gradient([](const Vector& v) { return v; }, b, x0);
  EXPECT_TRUE(res.converged);
  EXPECT_LE(res.iterations, 1u);
  EXPECT_LT(distance2(res.x, b), 1e-10);
}

TEST(Cg, WarmStartAtSolutionTakesZeroIterations) {
  const std::vector<double> b{2.0, 4.0};
  const CgResult res =
      conjugate_gradient([](const Vector& v) { return v; }, b, b, CgOptions{});
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.iterations, 0u);
}

TEST(Cg, DiagonalSystem) {
  const std::vector<double> diag{1.0, 10.0, 100.0};
  const Matrix a = Matrix::diagonal(diag);
  const std::vector<double> b{1.0, 10.0, 100.0};
  const std::vector<double> x0{0.0, 0.0, 0.0};
  const CgResult res =
      conjugate_gradient([&](const Vector& v) { return multiply(a, v); }, b, x0);
  EXPECT_TRUE(res.converged);
  for (double v : res.x) EXPECT_NEAR(v, 1.0, 1e-7);
}

TEST(Cg, ZeroRhsGivesZeroSolution) {
  const std::vector<double> b{0.0, 0.0};
  const std::vector<double> x0{0.0, 0.0};
  const CgResult res = conjugate_gradient([](const Vector& v) { return v; }, b, x0);
  EXPECT_TRUE(res.converged);
  EXPECT_DOUBLE_EQ(norm2(res.x), 0.0);
}

TEST(Cg, IterationCapReported) {
  Rng rng(9);
  const Matrix g = random_gaussian(30, 20, rng);
  Matrix a = gram_product(g, g);
  for (std::size_t i = 0; i < 20; ++i) a(i, i) += 1e-4;
  Vector b(20);
  for (double& v : b) v = rng.normal();
  const Vector x0(20, 0.0);
  CgOptions opts;
  opts.max_iterations = 2;  // deliberately too few
  opts.relative_tolerance = 1e-14;
  const CgResult res =
      conjugate_gradient([&](const Vector& v) { return multiply(a, v); }, b, x0, opts);
  EXPECT_FALSE(res.converged);
  EXPECT_EQ(res.iterations, 2u);
}

TEST(Cg, RejectsBadArguments) {
  const std::vector<double> b{1.0};
  const std::vector<double> x0_bad{1.0, 2.0};
  EXPECT_THROW(conjugate_gradient([](const Vector& v) { return v; }, b, x0_bad),
               std::invalid_argument);
  const std::vector<double> empty;
  EXPECT_THROW(conjugate_gradient([](const Vector& v) { return v; }, empty, empty),
               std::invalid_argument);
}

}  // namespace
}  // namespace tafloc
