#include "tafloc/util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace tafloc {
namespace {

TEST(RunningStats, EmptyDefaults) {
  RunningStats st;
  EXPECT_EQ(st.count(), 0u);
  EXPECT_DOUBLE_EQ(st.mean(), 0.0);
  EXPECT_DOUBLE_EQ(st.variance(), 0.0);
  EXPECT_TRUE(std::isinf(st.min()));
  EXPECT_TRUE(std::isinf(st.max()));
}

TEST(RunningStats, SingleValue) {
  RunningStats st;
  st.add(3.0);
  EXPECT_EQ(st.count(), 1u);
  EXPECT_DOUBLE_EQ(st.mean(), 3.0);
  EXPECT_DOUBLE_EQ(st.variance(), 0.0);
  EXPECT_DOUBLE_EQ(st.min(), 3.0);
  EXPECT_DOUBLE_EQ(st.max(), 3.0);
}

TEST(RunningStats, KnownSample) {
  RunningStats st;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) st.add(x);
  EXPECT_DOUBLE_EQ(st.mean(), 5.0);
  EXPECT_NEAR(st.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(st.min(), 2.0);
  EXPECT_DOUBLE_EQ(st.max(), 9.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats whole, a, b;
  const std::vector<double> xs{1.0, -2.0, 3.5, 0.25, 10.0, -7.0, 2.0};
  for (std::size_t i = 0; i < xs.size(); ++i) {
    whole.add(xs[i]);
    (i < 3 ? a : b).add(xs[i]);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean_before = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean_before);
  EXPECT_EQ(a.count(), 2u);
}

TEST(RunningStats, MergeIntoEmptyCopies) {
  RunningStats a, b;
  b.add(5.0);
  b.add(7.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 6.0);
}

TEST(RunningStats, NumericallyStableForLargeOffsets) {
  RunningStats st;
  const double offset = 1e9;
  for (double x : {offset + 1.0, offset + 2.0, offset + 3.0}) st.add(x);
  EXPECT_NEAR(st.variance(), 1.0, 1e-6);
}

TEST(Mean, SimpleAverage) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
}

TEST(Mean, RejectsEmpty) {
  const std::vector<double> xs;
  EXPECT_THROW(mean(xs), std::invalid_argument);
}

TEST(SampleStddev, MatchesKnownValue) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_NEAR(sample_stddev(xs), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(SampleStddev, RejectsSingleton) {
  const std::vector<double> xs{1.0};
  EXPECT_THROW(sample_stddev(xs), std::invalid_argument);
}

TEST(Percentile, MedianOfOddSample) {
  const std::vector<double> xs{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 3.0);
}

TEST(Percentile, MedianOfEvenSampleInterpolates) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 2.5);
}

TEST(Percentile, ExtremesReturnMinMax) {
  const std::vector<double> xs{9.0, -1.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), -1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 9.0);
}

TEST(Percentile, InterpolatesBetweenOrderStatistics) {
  const std::vector<double> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 2.5);
  EXPECT_DOUBLE_EQ(percentile(xs, 75.0), 7.5);
}

TEST(Percentile, SingletonSample) {
  const std::vector<double> xs{7.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 7.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 7.0);
}

TEST(Percentile, RejectsBadInputs) {
  const std::vector<double> empty;
  const std::vector<double> xs{1.0};
  EXPECT_THROW(percentile(empty, 50.0), std::invalid_argument);
  EXPECT_THROW(percentile(xs, -1.0), std::invalid_argument);
  EXPECT_THROW(percentile(xs, 101.0), std::invalid_argument);
}

TEST(Median, MatchesPercentile50) {
  const std::vector<double> xs{4.0, 8.0, 15.0, 16.0, 23.0, 42.0};
  EXPECT_DOUBLE_EQ(median(xs), percentile(xs, 50.0));
}

TEST(Rms, KnownValue) {
  const std::vector<double> xs{3.0, 4.0};
  EXPECT_NEAR(rms(xs), std::sqrt(12.5), 1e-12);
}

TEST(Rms, ZeroVector) {
  const std::vector<double> xs{0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(rms(xs), 0.0);
}

TEST(Rms, RejectsEmpty) {
  const std::vector<double> xs;
  EXPECT_THROW(rms(xs), std::invalid_argument);
}

}  // namespace
}  // namespace tafloc
