#include <gtest/gtest.h>

#include <cmath>

#include "tafloc/rf/drift.h"
#include "tafloc/rf/noise.h"
#include "tafloc/util/stats.h"

namespace tafloc {
namespace {

// ---------------- drift ----------------

TEST(Drift, AnchorsMatchPaper) {
  // The paper: RSS changes 2.5 dBm after 5 days and 6 dBm after 45 days.
  const TemporalDriftModel model(10, DriftConfig{}, 1);
  EXPECT_NEAR(model.expected_magnitude_db(5.0), 2.5, 1e-12);
  EXPECT_NEAR(model.expected_magnitude_db(45.0), 6.0, 1e-12);
}

TEST(Drift, ZeroAtTimeZero) {
  const TemporalDriftModel model(8, DriftConfig{}, 2);
  EXPECT_DOUBLE_EQ(model.expected_magnitude_db(0.0), 0.0);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_DOUBLE_EQ(model.ambient_offset_db(i, 0.0), 0.0);
}

TEST(Drift, MeanAbsOffsetEqualsCalibratedMagnitude) {
  // The per-link directions are normalized so the mean |offset| is
  // exactly g(t) for every t.
  const TemporalDriftModel model(12, DriftConfig{}, 3);
  for (double t : {3.0, 5.0, 15.0, 45.0, 90.0}) {
    double sum_abs = 0.0;
    for (std::size_t i = 0; i < 12; ++i) sum_abs += std::abs(model.ambient_offset_db(i, t));
    EXPECT_NEAR(sum_abs / 12.0, model.expected_magnitude_db(t), 1e-9);
  }
}

TEST(Drift, MagnitudeIsMonotoneInTime) {
  const TemporalDriftModel model(5, DriftConfig{}, 4);
  double prev = 0.0;
  for (double t = 1.0; t <= 90.0; t += 4.0) {
    const double g = model.expected_magnitude_db(t);
    EXPECT_GT(g, prev);
    prev = g;
  }
}

TEST(Drift, PerLinkOffsetScalesWithTime) {
  const TemporalDriftModel model(6, DriftConfig{}, 5);
  for (std::size_t i = 0; i < 6; ++i) {
    const double o5 = model.ambient_offset_db(i, 5.0);
    const double o45 = model.ambient_offset_db(i, 45.0);
    // Same direction, scaled by g(45)/g(5) = 2.4.
    EXPECT_NEAR(o45, o5 * 2.4, 1e-9);
  }
}

TEST(Drift, DeterministicGivenSeed) {
  const TemporalDriftModel a(7, DriftConfig{}, 42);
  const TemporalDriftModel b(7, DriftConfig{}, 42);
  for (std::size_t i = 0; i < 7; ++i)
    EXPECT_DOUBLE_EQ(a.ambient_offset_db(i, 30.0), b.ambient_offset_db(i, 30.0));
}

TEST(Drift, DifferentSeedsDiffer) {
  const TemporalDriftModel a(7, DriftConfig{}, 1);
  const TemporalDriftModel b(7, DriftConfig{}, 2);
  bool any_diff = false;
  for (std::size_t i = 0; i < 7; ++i)
    any_diff |= a.ambient_offset_db(i, 30.0) != b.ambient_offset_db(i, 30.0);
  EXPECT_TRUE(any_diff);
}

TEST(Drift, AttenuationScaleStartsAtOne) {
  const TemporalDriftModel model(9, DriftConfig{}, 6);
  for (std::size_t i = 0; i < 9; ++i) EXPECT_DOUBLE_EQ(model.attenuation_scale(i, 0.0), 1.0);
}

TEST(Drift, AttenuationScaleBounded) {
  DriftConfig cfg;
  cfg.attenuation_drift_fraction = 0.25;
  const TemporalDriftModel model(20, cfg, 7);
  for (std::size_t i = 0; i < 20; ++i) {
    const double s = model.attenuation_scale(i, 90.0);
    EXPECT_GE(s, 0.75 - 1e-12);
    EXPECT_LE(s, 1.25 + 1e-12);
  }
}

TEST(Drift, AttenuationScaleWandersWithTime) {
  const TemporalDriftModel model(30, DriftConfig{}, 8);
  double spread_30 = 0.0, spread_90 = 0.0;
  for (std::size_t i = 0; i < 30; ++i) {
    spread_30 += std::abs(model.attenuation_scale(i, 30.0) - 1.0);
    spread_90 += std::abs(model.attenuation_scale(i, 90.0) - 1.0);
  }
  EXPECT_GT(spread_90, spread_30);
}

TEST(Drift, CustomAnchorsRespected) {
  DriftConfig cfg;
  cfg.magnitude_at_5_days_db = 1.0;
  cfg.magnitude_at_45_days_db = 4.0;
  const TemporalDriftModel model(4, cfg, 9);
  EXPECT_NEAR(model.expected_magnitude_db(5.0), 1.0, 1e-12);
  EXPECT_NEAR(model.expected_magnitude_db(45.0), 4.0, 1e-12);
}

TEST(Drift, RejectsBadConfig) {
  DriftConfig cfg;
  cfg.magnitude_at_5_days_db = 0.0;
  EXPECT_THROW(TemporalDriftModel(3, cfg, 1), std::invalid_argument);
  cfg = DriftConfig{};
  cfg.magnitude_at_45_days_db = 1.0;  // < 5-day anchor
  EXPECT_THROW(TemporalDriftModel(3, cfg, 1), std::invalid_argument);
  cfg = DriftConfig{};
  cfg.shared_fraction = 1.5;
  EXPECT_THROW(TemporalDriftModel(3, cfg, 1), std::invalid_argument);
  EXPECT_THROW(TemporalDriftModel(0, DriftConfig{}, 1), std::invalid_argument);
}

TEST(Drift, RejectsNegativeTime) {
  const TemporalDriftModel model(3, DriftConfig{}, 1);
  EXPECT_THROW(model.expected_magnitude_db(-1.0), std::invalid_argument);
  EXPECT_THROW(model.ambient_offset_db(0, -1.0), std::invalid_argument);
}

TEST(Drift, RejectsBadLinkIndex) {
  const TemporalDriftModel model(3, DriftConfig{}, 1);
  EXPECT_THROW(model.ambient_offset_db(3, 1.0), std::out_of_range);
  EXPECT_THROW(model.attenuation_scale(3, 1.0), std::out_of_range);
}

// ---------------- noise ----------------

TEST(Noise, ZeroSigmaIsDeterministic) {
  NoiseConfig cfg;
  cfg.stddev_db = 0.0;
  const NoiseModel model(cfg);
  Rng rng(1);
  EXPECT_DOUBLE_EQ(model.corrupt(-40.0, rng), -40.0);
}

TEST(Noise, SampleMomentsMatchConfig) {
  NoiseConfig cfg;
  cfg.stddev_db = 1.2;
  const NoiseModel model(cfg);
  Rng rng(2);
  RunningStats st;
  for (int i = 0; i < 20000; ++i) st.add(model.corrupt(-50.0, rng));
  EXPECT_NEAR(st.mean(), -50.0, 0.05);
  EXPECT_NEAR(st.stddev(), 1.2, 0.05);
}

TEST(Noise, QuantizationRounds) {
  NoiseConfig cfg;
  cfg.stddev_db = 0.0;
  cfg.quantization_step_db = 1.0;
  const NoiseModel model(cfg);
  EXPECT_DOUBLE_EQ(model.quantize(-49.4), -49.0);
  EXPECT_DOUBLE_EQ(model.quantize(-49.6), -50.0);
  Rng rng(3);
  EXPECT_DOUBLE_EQ(model.corrupt(-49.4, rng), -49.0);
}

TEST(Noise, NoQuantizationByDefault) {
  const NoiseModel model;
  EXPECT_DOUBLE_EQ(model.quantize(-49.37), -49.37);
}

TEST(Noise, RejectsBadConfig) {
  NoiseConfig cfg;
  cfg.stddev_db = -0.1;
  EXPECT_THROW(NoiseModel{cfg}, std::invalid_argument);
  cfg = NoiseConfig{};
  cfg.quantization_step_db = -1.0;
  EXPECT_THROW(NoiseModel{cfg}, std::invalid_argument);
}

}  // namespace
}  // namespace tafloc
