#include "tafloc/rf/geometry.h"

#include <gtest/gtest.h>

#include <cmath>

namespace tafloc {
namespace {

TEST(Point2, Arithmetic) {
  const Point2 a{1.0, 2.0};
  const Point2 b{3.0, -1.0};
  EXPECT_EQ(a + b, (Point2{4.0, 1.0}));
  EXPECT_EQ(b - a, (Point2{2.0, -3.0}));
  EXPECT_EQ(a * 2.0, (Point2{2.0, 4.0}));
  EXPECT_EQ(2.0 * a, (Point2{2.0, 4.0}));
}

TEST(Distance, KnownValues) {
  EXPECT_DOUBLE_EQ(distance({0.0, 0.0}, {3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(distance({1.0, 1.0}, {1.0, 1.0}), 0.0);
}

TEST(Norm, KnownValues) {
  EXPECT_DOUBLE_EQ(norm({3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(norm({0.0, 0.0}), 0.0);
}

TEST(Midpoint, KnownValue) {
  const Point2 m = midpoint({0.0, 0.0}, {2.0, 4.0});
  EXPECT_DOUBLE_EQ(m.x, 1.0);
  EXPECT_DOUBLE_EQ(m.y, 2.0);
}

TEST(Segment, Length) {
  const Segment s{{0.0, 0.0}, {6.0, 8.0}};
  EXPECT_DOUBLE_EQ(s.length(), 10.0);
}

TEST(PointSegmentDistance, PerpendicularFoot) {
  const Segment s{{0.0, 0.0}, {10.0, 0.0}};
  EXPECT_DOUBLE_EQ(point_segment_distance({5.0, 3.0}, s), 3.0);
}

TEST(PointSegmentDistance, BeyondEndpointsClampsToEndpoint) {
  const Segment s{{0.0, 0.0}, {10.0, 0.0}};
  EXPECT_DOUBLE_EQ(point_segment_distance({-3.0, 4.0}, s), 5.0);
  EXPECT_DOUBLE_EQ(point_segment_distance({13.0, 4.0}, s), 5.0);
}

TEST(PointSegmentDistance, OnSegmentIsZero) {
  const Segment s{{0.0, 0.0}, {10.0, 10.0}};
  EXPECT_NEAR(point_segment_distance({5.0, 5.0}, s), 0.0, 1e-12);
}

TEST(PointSegmentDistance, DegenerateSegmentIsPointDistance) {
  const Segment s{{2.0, 2.0}, {2.0, 2.0}};
  EXPECT_DOUBLE_EQ(point_segment_distance({5.0, 6.0}, s), 5.0);
}

TEST(ExcessPathLength, ZeroOnDirectPath) {
  const Segment link{{0.0, 0.0}, {10.0, 0.0}};
  EXPECT_NEAR(excess_path_length({5.0, 0.0}, link), 0.0, 1e-12);
  EXPECT_NEAR(excess_path_length({0.0, 0.0}, link), 0.0, 1e-12);
}

TEST(ExcessPathLength, GrowsOffPath) {
  const Segment link{{0.0, 0.0}, {10.0, 0.0}};
  const double e1 = excess_path_length({5.0, 1.0}, link);
  const double e2 = excess_path_length({5.0, 2.0}, link);
  EXPECT_GT(e1, 0.0);
  EXPECT_GT(e2, e1);
}

TEST(ExcessPathLength, KnownTriangle) {
  // tx at origin, rx at (6, 0); point at (3, 4): detour = 5 + 5 - 6 = 4.
  const Segment link{{0.0, 0.0}, {6.0, 0.0}};
  EXPECT_NEAR(excess_path_length({3.0, 4.0}, link), 4.0, 1e-12);
}

TEST(ExcessPathLength, SymmetricAcrossLink) {
  const Segment link{{0.0, 0.0}, {8.0, 0.0}};
  EXPECT_NEAR(excess_path_length({4.0, 1.5}, link), excess_path_length({4.0, -1.5}, link),
              1e-12);
}

TEST(WithinLinkEllipse, InsideAndOutside) {
  const Segment link{{0.0, 0.0}, {6.0, 0.0}};
  EXPECT_TRUE(within_link_ellipse({3.0, 0.1}, link, 0.5));
  EXPECT_FALSE(within_link_ellipse({3.0, 4.0}, link, 0.5));  // detour 4 > 0.5
}

TEST(WithinLinkEllipse, BoundaryIsExclusive) {
  const Segment link{{0.0, 0.0}, {6.0, 0.0}};
  // Excess of (3, 4) is exactly 4.
  EXPECT_FALSE(within_link_ellipse({3.0, 4.0}, link, 4.0));
  EXPECT_TRUE(within_link_ellipse({3.0, 4.0}, link, 4.0 + 1e-9));
}

}  // namespace
}  // namespace tafloc
