// Zone lifecycle: the exhaustive transition table, resurvey-while-
// serving correctness, drain with queued work, and recover-on-restart.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "tafloc/daemon/zone.h"
#include "tafloc/sim/scenario.h"
#include "tafloc/util/rng.h"

namespace tafloc::daemon {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  explicit TempDir(const std::string& tag)
      : path_(fs::temp_directory_path() /
              ("tafloc_daemonzone_" + tag + "_" + std::to_string(::getpid()))) {
    fs::remove_all(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  std::string str() const { return path_.string(); }

 private:
  fs::path path_;
};

ZoneConfig zone_config(const std::string& name, std::uint64_t seed) {
  ZoneConfig config;
  config.name = name;
  config.seed = seed;
  return config;
}

/// A query vector the zone's deployment accepts (paper_room layout).
Vector make_query(std::uint64_t seed, double t = 0.0) {
  Scenario scenario = Scenario::paper_room(seed);
  Rng rng(seed ^ 0x9e97u);
  return scenario.collector().observe({2.5, 1.5}, t, rng);
}

TEST(ZoneStateMachine, ExhaustiveTransitionTable) {
  using S = ZoneState;
  const S all[] = {S::kLoading,     S::kCalibrating, S::kServing, S::kDegraded,
                   S::kResurveying, S::kDraining,    S::kStopped};
  // The complete set of legal edges; everything else must be refused.
  const std::set<std::pair<S, S>> legal = {
      {S::kLoading, S::kCalibrating},     {S::kLoading, S::kStopped},
      {S::kCalibrating, S::kServing},     {S::kCalibrating, S::kDraining},
      {S::kCalibrating, S::kStopped},     {S::kServing, S::kDegraded},
      {S::kServing, S::kResurveying},     {S::kServing, S::kDraining},
      {S::kDegraded, S::kServing},        {S::kDegraded, S::kResurveying},
      {S::kDegraded, S::kDraining},       {S::kResurveying, S::kServing},
      {S::kResurveying, S::kDegraded},    {S::kResurveying, S::kDraining},
      {S::kDraining, S::kStopped},
  };
  for (const S from : all) {
    for (const S to : all) {
      EXPECT_EQ(zone_transition_legal(from, to), legal.count({from, to}) == 1)
          << zone_state_name(from) << " -> " << zone_state_name(to);
    }
  }
  // Terminal state and no self-loops, stated explicitly.
  for (const S to : all) EXPECT_FALSE(zone_transition_legal(S::kStopped, to));
  for (const S s : all) EXPECT_FALSE(zone_transition_legal(s, s));
}

TEST(ZoneStateMachine, StateNamesAreDistinct) {
  using S = ZoneState;
  std::set<std::string> names;
  for (const S s : {S::kLoading, S::kCalibrating, S::kServing, S::kDegraded, S::kResurveying,
                    S::kDraining, S::kStopped}) {
    names.insert(zone_state_name(s));
  }
  EXPECT_EQ(names.size(), 7u);
}

TEST(ZoneLifecycle, StartServesAndGuardsReentry) {
  Zone zone(zone_config("alpha", 11), nullptr);
  EXPECT_EQ(zone.state(), ZoneState::kLoading);
  EXPECT_FALSE(zone.admissible());
  zone.start();
  EXPECT_EQ(zone.state(), ZoneState::kServing);
  EXPECT_TRUE(zone.admissible());
  // start() is not reentrant: serving -> calibrating is not an edge.
  EXPECT_THROW(zone.start(), std::logic_error);

  const Vector rss = make_query(11);
  const TafLocSystem::DegradedResult result = zone.localize(rss);
  EXPECT_TRUE(result.served);
  EXPECT_EQ(zone.status().queries, 1u);
}

TEST(ZoneLifecycle, LocalizeBeforeStartAndAfterDrainIsRefused) {
  Zone zone(zone_config("beta", 12), nullptr);
  const Vector rss = make_query(12);
  EXPECT_THROW((void)zone.localize(rss), std::logic_error);
  zone.drain();  // loading -> stopped.
  EXPECT_EQ(zone.state(), ZoneState::kStopped);
  EXPECT_THROW((void)zone.localize(rss), std::logic_error);
  zone.drain();  // idempotent.
  EXPECT_EQ(zone.state(), ZoneState::kStopped);
}

TEST(ZoneLifecycle, ResurveyWhileServingAnswersFromTheOldMatrix) {
  JobQueue jobs("test-zone", 1);
  // Park the single worker so the zone's solve stays queued and the
  // zone is pinned in kResurveying while we query it.
  std::atomic<bool> release{false};
  jobs.submit([&release] {
    while (!release.load()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  });

  Zone zone(zone_config("gamma", 13), &jobs);
  zone.start();
  const Vector rss = make_query(13);
  const TafLocSystem::DegradedResult before = zone.localize(rss);

  ASSERT_TRUE(zone.request_resurvey(2.0));
  EXPECT_EQ(zone.state(), ZoneState::kResurveying);
  EXPECT_TRUE(zone.update_in_flight());
  EXPECT_FALSE(zone.request_resurvey(2.5));  // one update at a time.

  // Mid-recalibration queries are answered, bit-identically to the
  // pre-update matrix (the solve has not swapped anything in).
  const TafLocSystem::DegradedResult during = zone.localize(rss);
  EXPECT_TRUE(during.served);
  EXPECT_EQ(during.point.x, before.point.x);
  EXPECT_EQ(during.point.y, before.point.y);
  // poll() with the solve still queued must not commit anything.
  zone.poll();
  EXPECT_EQ(zone.state(), ZoneState::kResurveying);

  release.store(true);
  jobs.wait_idle();
  zone.poll();
  EXPECT_EQ(zone.state(), ZoneState::kServing);
  EXPECT_FALSE(zone.update_in_flight());
  const Zone::Status status = zone.status();
  EXPECT_EQ(status.updates_committed, 1u);
  EXPECT_EQ(status.updates_failed, 0u);
  EXPECT_EQ(status.clock_days, 2.0);
  zone.drain();
}

TEST(ZoneLifecycle, SynchronousResurveyCommitsInline) {
  Zone zone(zone_config("delta", 14), nullptr);  // no job queue.
  zone.start();
  ASSERT_TRUE(zone.request_resurvey(3.0));
  EXPECT_EQ(zone.state(), ZoneState::kServing);  // already committed.
  EXPECT_EQ(zone.status().updates_committed, 1u);
  EXPECT_FALSE(zone.update_in_flight());
}

TEST(ZoneLifecycle, DrainWithQueuedWorkFinishesTheUpdate) {
  TempDir dir("drainq");
  JobQueue jobs("test-drain", 1);
  std::atomic<bool> release{false};
  jobs.submit([&release] {
    while (!release.load()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  });

  ZoneConfig config = zone_config("epsilon", 15);
  config.state_dir = dir.str();
  Zone zone(config, &jobs);
  zone.start();
  ASSERT_TRUE(zone.request_resurvey(4.0));
  ASSERT_EQ(zone.state(), ZoneState::kResurveying);

  // Drain arrives while the solve is still queued behind the parked
  // worker: it must wait the update out, commit it, snapshot, stop.
  std::thread releaser([&release] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    release.store(true);
  });
  zone.drain();
  releaser.join();

  EXPECT_EQ(zone.state(), ZoneState::kStopped);
  EXPECT_EQ(zone.status().updates_committed, 1u);
  EXPECT_FALSE(zone.update_in_flight());

  // The epilogue snapshot is recoverable and carries the update.
  JobQueue jobs2("test-drain2", 1);
  Zone restarted(config, &jobs2);
  restarted.start();
  EXPECT_EQ(restarted.state(), ZoneState::kServing);
  EXPECT_TRUE(restarted.system().database() == zone.system().database());
  EXPECT_EQ(restarted.status().clock_days, 4.0);
  restarted.drain();
}

TEST(ZoneLifecycle, DegradedEdgeAndResurveyFromDegraded) {
  Zone zone(zone_config("zeta", 16), nullptr);
  zone.start();

  Vector poisoned = make_query(16);
  poisoned[0] = std::nan("");
  (void)zone.localize(poisoned);
  EXPECT_EQ(zone.state(), ZoneState::kDegraded);

  // A resurvey from degraded returns to degraded (synchronous queue).
  ASSERT_TRUE(zone.request_resurvey(2.0));
  EXPECT_EQ(zone.state(), ZoneState::kDegraded);
  EXPECT_EQ(zone.status().updates_committed, 1u);

  // Draining from degraded is legal too.
  zone.drain();
  EXPECT_EQ(zone.state(), ZoneState::kStopped);
}

TEST(ZoneLifecycle, AmbientTriggerStartsResurvey) {
  ZoneConfig config = zone_config("eta", 17);
  config.scheduler.staleness_threshold_db = 1e-9;  // any drift triggers.
  config.scheduler.min_interval_days = 0.0;
  Zone zone(config, nullptr);
  zone.start();

  Scenario scenario = Scenario::paper_room(17);
  Rng rng(99);
  const Vector ambient = scenario.collector().observe_ambient(5.0, rng);
  const Zone::AmbientResult result = zone.observe_ambient(ambient, 5.0);
  EXPECT_TRUE(result.accepted);
  EXPECT_TRUE(result.triggered);
  EXPECT_TRUE(result.resurvey_started);
  EXPECT_EQ(zone.status().updates_committed, 1u);
  EXPECT_EQ(zone.status().clock_days, 5.0);

  zone.drain();
  const Zone::AmbientResult refused = zone.observe_ambient(ambient, 6.0);
  EXPECT_FALSE(refused.accepted);
}

TEST(ZoneClock, DroppedAmbientSampleLeavesClockUntouched) {
  // Regression: the zone used to advance clock_days_ for every admitted
  // ambient request, even when the scheduler dropped the sample as
  // out-of-order or all-NaN -- so one late packet could push the zone
  // clock forward and silently discard every following in-order sample.
  ZoneConfig config = zone_config("clock1", 41);
  config.scheduler.staleness_threshold_db = 1e9;  // never trigger.
  Zone zone(config, nullptr);
  zone.start();

  Scenario scenario = Scenario::paper_room(41);
  Rng rng(7);
  const Vector fresh = scenario.collector().observe_ambient(2.0, rng);
  const Zone::AmbientResult ok = zone.observe_ambient(fresh, 2.0);
  EXPECT_TRUE(ok.accepted);
  EXPECT_TRUE(ok.sample_accepted);
  EXPECT_EQ(zone.status().clock_days, 2.0);

  // Out-of-order: admitted (the zone is serving) but the sample itself
  // is dropped, and the clock must not move.
  const Zone::AmbientResult late = zone.observe_ambient(fresh, 1.0);
  EXPECT_TRUE(late.accepted);
  EXPECT_FALSE(late.sample_accepted);
  EXPECT_EQ(zone.status().clock_days, 2.0);

  // All-NaN: dropped for a different reason, same clock contract.
  const Vector dead(fresh.size(), std::nan(""));
  const Zone::AmbientResult nan_scan = zone.observe_ambient(dead, 3.0);
  EXPECT_TRUE(nan_scan.accepted);
  EXPECT_FALSE(nan_scan.sample_accepted);
  EXPECT_EQ(zone.status().clock_days, 2.0);

  // An in-order successor of the dropped samples is still accepted:
  // the dropped t=3.0 scan did not poison the scheduler's clock either.
  const Vector next = scenario.collector().observe_ambient(2.5, rng);
  const Zone::AmbientResult after = zone.observe_ambient(next, 2.5);
  EXPECT_TRUE(after.sample_accepted);
  EXPECT_EQ(zone.status().clock_days, 2.5);
  zone.drain();
}

TEST(ZoneClock, RecoveryRestoresClockFromReplayedObservations) {
  // The WAL logs every ambient sample (dropped ones included); replay
  // must reproduce the exact clock -- including that dropped samples
  // never advanced it.
  TempDir dir("clockwal");
  ZoneConfig config = zone_config("clock2", 42);
  config.state_dir = dir.str();
  config.scheduler.staleness_threshold_db = 1e9;

  Scenario scenario = Scenario::paper_room(42);
  Rng rng(7);
  const Vector fresh = scenario.collector().observe_ambient(2.0, rng);
  {
    Zone zone(config, nullptr);
    zone.start();
    EXPECT_TRUE(zone.observe_ambient(fresh, 2.0).sample_accepted);
    EXPECT_FALSE(zone.observe_ambient(fresh, 1.0).sample_accepted);  // dropped.
    EXPECT_EQ(zone.status().clock_days, 2.0);
    // No drain: the snapshot predates both observations, recovery has
    // to get the clock from the WAL replay.
  }

  Zone restarted(config, nullptr);
  restarted.start();
  EXPECT_EQ(restarted.status().clock_days, 2.0);
  // The replayed scheduler still holds last_observation = 2.0: an
  // out-of-order sample keeps being dropped, an in-order one lands.
  EXPECT_FALSE(restarted.observe_ambient(fresh, 1.5).sample_accepted);
  EXPECT_EQ(restarted.status().clock_days, 2.0);
  EXPECT_TRUE(restarted.observe_ambient(fresh, 2.5).sample_accepted);
  EXPECT_EQ(restarted.status().clock_days, 2.5);
  restarted.drain();
}

TEST(ZoneConfigValidation, NonFiniteOrNegativeTimingConfigIsRefused) {
  // Regression: a negative slo_deadline_ms survived into the nanosecond
  // conversion and wrapped to a huge uint64 deadline (every query an
  // instant SLO pass); the zone must refuse the config up front.
  const auto with = [](auto mutate) {
    ZoneConfig config;
    config.name = "bad";
    config.seed = 43;
    mutate(config);
    return config;
  };
  EXPECT_THROW(Zone(with([](ZoneConfig& c) { c.slo_deadline_ms = -5.0; }), nullptr),
               std::invalid_argument);
  EXPECT_THROW(Zone(with([](ZoneConfig& c) { c.slo_deadline_ms = std::nan(""); }), nullptr),
               std::invalid_argument);
  EXPECT_THROW(Zone(with([](ZoneConfig& c) { c.slo_target = 0.0; }), nullptr),
               std::invalid_argument);
  EXPECT_THROW(Zone(with([](ZoneConfig& c) { c.slo_target = 1.5; }), nullptr),
               std::invalid_argument);
  EXPECT_THROW(Zone(with([](ZoneConfig& c) { c.slow_query_ms = -1.0; }), nullptr),
               std::invalid_argument);
  EXPECT_THROW(Zone(with([](ZoneConfig& c) { c.fault_slow_ms = -1.0; }), nullptr),
               std::invalid_argument);
  EXPECT_THROW(Zone(with([](ZoneConfig& c) { c.ingest.motion_threshold_db = -1.0; }), nullptr),
               std::invalid_argument);
}

TEST(ZoneLifecycle, TransitionsLandInZoneTelemetry) {
  Zone zone(zone_config("theta", 18), nullptr);
  zone.start();
  zone.drain();
  const std::string json = zone.telemetry_json();
  EXPECT_NE(json.find("\"zone\":\"theta\""), std::string::npos);
  EXPECT_NE(json.find("zone.transitions"), std::string::npos);
  EXPECT_NE(json.find("zone.state.serving"), std::string::npos);
  EXPECT_NE(json.find("zone.state.stopped"), std::string::npos);
}

// ---- tracing, SLO accounting, fault injection (PR 9) ----

TEST(ZoneTracing, ResultsAreBitIdenticalWithTracingOnAndOff) {
  // The determinism contract extended to the zone layer: tracing at
  // 100% sampling (plus slow log and SLO accounting) must not perturb a
  // single bit of any localization result.
  ZoneConfig traced = zone_config("alpha", 33);
  traced.trace_sample_every = 1;
  traced.slow_query_ms = 0.001;  // everything lands in the slow log too.
  traced.slo_deadline_ms = 50.0;
  ZoneConfig plain = zone_config("alpha", 33);
  plain.trace_ring_capacity = 0;
  plain.slow_log_capacity = 0;

  Zone a(traced, nullptr);
  Zone b(plain, nullptr);
  a.start();
  b.start();
  for (int i = 0; i < 20; ++i) {
    const Vector q = make_query(33, 0.01 * i);
    const TafLocSystem::DegradedResult ra = a.localize(q);
    const TafLocSystem::DegradedResult rb = b.localize(q);
    EXPECT_EQ(ra.point.x, rb.point.x);
    EXPECT_EQ(ra.point.y, rb.point.y);
    EXPECT_EQ(ra.confidence, rb.confidence);
    EXPECT_EQ(ra.links_used, rb.links_used);
    EXPECT_EQ(ra.degraded, rb.degraded);
  }
  EXPECT_EQ(a.tracer().ring().pushed(), 20u);
  EXPECT_EQ(b.tracer().ring().pushed(), 0u);
  a.drain();
  b.drain();
}

TEST(ZoneTracing, SampledTraceCarriesStagesAndOutcome) {
  ZoneConfig config = zone_config("beta", 34);
  config.trace_sample_every = 1;
  Zone zone(config, nullptr);
  zone.start();
  TraceContext ctx;
  ctx.trace_id = 4242;
  (void)zone.localize(make_query(34), ctx, 1500);

  const std::vector<TraceRecord> records = zone.tracer().ring().snapshot();
  ASSERT_EQ(records.size(), 1u);
  const TraceRecord& r = records[0];
  EXPECT_EQ(r.trace_id, 4242u);
  EXPECT_EQ(r.queue_wait_ns, 1500u);
  EXPECT_STREQ(r.state, "serving");
  EXPECT_TRUE(r.served);
  EXPECT_GT(r.confidence, 0.0);
  EXPECT_GT(r.links_total, 0u);
  ASSERT_GE(r.stage_count, 2u);
  // zone.serve wraps the system + matcher stages recorded inside it.
  bool saw_serve = false;
  bool saw_nested = false;
  std::uint64_t depth0_ns = 0;
  for (std::uint32_t i = 0; i < r.stage_count; ++i) {
    if (std::string(r.stages[i].name) == "zone.serve") {
      saw_serve = true;
      EXPECT_EQ(r.stages[i].depth, 0u);
    }
    if (r.stages[i].depth > 0) saw_nested = true;
    if (r.stages[i].depth == 0) depth0_ns += r.stages[i].duration_ns;
  }
  EXPECT_TRUE(saw_serve);
  EXPECT_TRUE(saw_nested);  // system.health / system.match under zone.serve.
  EXPECT_LE(depth0_ns, r.total_ns);
  zone.drain();
}

TEST(ZoneTracing, FaultInjectionLandsExactlyInTheSlowLog) {
  ZoneConfig config = zone_config("gamma", 35);
  config.fault_slow_every = 5;
  config.fault_slow_ms = 8.0;
  config.slow_query_ms = 4.0;  // below the injected delay, above normal serve.
  config.slow_log_capacity = 8;
  Zone zone(config, nullptr);
  zone.start();
  for (int i = 0; i < 12; ++i) (void)zone.localize(make_query(35));

  // Queries 5 and 10 (1-based ordinals) were delayed; nothing else may
  // cross the 4 ms threshold.
  const std::vector<TraceRecord> slow = zone.tracer().slow_log().entries();
  ASSERT_EQ(slow.size(), 2u);
  EXPECT_EQ(slow[0].seq, 4u);  // 0-based trace seq of query 5.
  EXPECT_EQ(slow[1].seq, 9u);
  for (const TraceRecord& r : slow) {
    EXPECT_TRUE(r.fault_injected);
    EXPECT_TRUE(r.slow);
    EXPECT_GE(r.total_ns, 8'000'000u);
    bool saw_delay = false;
    for (std::uint32_t i = 0; i < r.stage_count; ++i) {
      if (std::string(r.stages[i].name) == "zone.fault.delay") saw_delay = true;
    }
    EXPECT_TRUE(saw_delay);
  }
  EXPECT_EQ(zone.tracer().slow_log().dropped(), 0u);
  zone.drain();
}

TEST(ZoneSlo, DeadlineAccountingAndErrorBudget) {
  ZoneConfig config = zone_config("delta", 36);
  config.slo_deadline_ms = 4.0;
  config.slo_target = 0.9;  // 10% error budget.
  config.fault_slow_every = 4;
  config.fault_slow_ms = 10.0;  // every 4th query blows the deadline.
  Zone zone(config, nullptr);
  zone.start();
  for (int i = 0; i < 8; ++i) (void)zone.localize(make_query(36));

  const Zone::Status s = zone.status();
  EXPECT_EQ(s.slo_ok + s.slo_violated, 8u);
  EXPECT_EQ(s.slo_violated, 2u);  // queries 4 and 8.
  // Budget: 8 * 0.1 - 2 = -1.2 -> exhausted, degraded-slo.
  EXPECT_LT(s.slo_budget_remaining, 0.0);
  EXPECT_TRUE(s.slo_degraded);

  // The same numbers are visible through the metric registry.
  const std::string json = zone.telemetry_json();
  EXPECT_NE(json.find("slo.violated"), std::string::npos);
  EXPECT_NE(json.find("slo.budget_remaining"), std::string::npos);
  EXPECT_NE(json.find("zone.request_seconds"), std::string::npos);
  zone.drain();
}

TEST(ZoneSlo, NoDeadlineMeansNoSloAccounting) {
  Zone zone(zone_config("epsilon", 37), nullptr);
  zone.start();
  (void)zone.localize(make_query(37));
  const Zone::Status s = zone.status();
  EXPECT_EQ(s.slo_ok, 0u);
  EXPECT_EQ(s.slo_violated, 0u);
  EXPECT_EQ(s.slo_budget_remaining, 0.0);
  EXPECT_FALSE(s.slo_degraded);
  zone.drain();
}

TEST(ZoneShed, RefusedAdmissionsAreCounted) {
  Zone zone(zone_config("zeta", 38), nullptr);
  zone.start();
  zone.drain();
  EXPECT_FALSE(zone.admissible());
  zone.note_shed();
  zone.note_shed();
  EXPECT_EQ(zone.status().sheds, 2u);
  EXPECT_NE(zone.telemetry_json().find("zone.shed"), std::string::npos);
}

}  // namespace
}  // namespace tafloc::daemon
