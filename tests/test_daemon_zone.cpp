// Zone lifecycle: the exhaustive transition table, resurvey-while-
// serving correctness, drain with queued work, and recover-on-restart.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "tafloc/daemon/zone.h"
#include "tafloc/sim/scenario.h"
#include "tafloc/util/rng.h"

namespace tafloc::daemon {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  explicit TempDir(const std::string& tag)
      : path_(fs::temp_directory_path() /
              ("tafloc_daemonzone_" + tag + "_" + std::to_string(::getpid()))) {
    fs::remove_all(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  std::string str() const { return path_.string(); }

 private:
  fs::path path_;
};

ZoneConfig zone_config(const std::string& name, std::uint64_t seed) {
  ZoneConfig config;
  config.name = name;
  config.seed = seed;
  return config;
}

/// A query vector the zone's deployment accepts (paper_room layout).
Vector make_query(std::uint64_t seed, double t = 0.0) {
  Scenario scenario = Scenario::paper_room(seed);
  Rng rng(seed ^ 0x9e97u);
  return scenario.collector().observe({2.5, 1.5}, t, rng);
}

TEST(ZoneStateMachine, ExhaustiveTransitionTable) {
  using S = ZoneState;
  const S all[] = {S::kLoading,     S::kCalibrating, S::kServing, S::kDegraded,
                   S::kResurveying, S::kDraining,    S::kStopped};
  // The complete set of legal edges; everything else must be refused.
  const std::set<std::pair<S, S>> legal = {
      {S::kLoading, S::kCalibrating},     {S::kLoading, S::kStopped},
      {S::kCalibrating, S::kServing},     {S::kCalibrating, S::kDraining},
      {S::kCalibrating, S::kStopped},     {S::kServing, S::kDegraded},
      {S::kServing, S::kResurveying},     {S::kServing, S::kDraining},
      {S::kDegraded, S::kServing},        {S::kDegraded, S::kResurveying},
      {S::kDegraded, S::kDraining},       {S::kResurveying, S::kServing},
      {S::kResurveying, S::kDegraded},    {S::kResurveying, S::kDraining},
      {S::kDraining, S::kStopped},
  };
  for (const S from : all) {
    for (const S to : all) {
      EXPECT_EQ(zone_transition_legal(from, to), legal.count({from, to}) == 1)
          << zone_state_name(from) << " -> " << zone_state_name(to);
    }
  }
  // Terminal state and no self-loops, stated explicitly.
  for (const S to : all) EXPECT_FALSE(zone_transition_legal(S::kStopped, to));
  for (const S s : all) EXPECT_FALSE(zone_transition_legal(s, s));
}

TEST(ZoneStateMachine, StateNamesAreDistinct) {
  using S = ZoneState;
  std::set<std::string> names;
  for (const S s : {S::kLoading, S::kCalibrating, S::kServing, S::kDegraded, S::kResurveying,
                    S::kDraining, S::kStopped}) {
    names.insert(zone_state_name(s));
  }
  EXPECT_EQ(names.size(), 7u);
}

TEST(ZoneLifecycle, StartServesAndGuardsReentry) {
  Zone zone(zone_config("alpha", 11), nullptr);
  EXPECT_EQ(zone.state(), ZoneState::kLoading);
  EXPECT_FALSE(zone.admissible());
  zone.start();
  EXPECT_EQ(zone.state(), ZoneState::kServing);
  EXPECT_TRUE(zone.admissible());
  // start() is not reentrant: serving -> calibrating is not an edge.
  EXPECT_THROW(zone.start(), std::logic_error);

  const Vector rss = make_query(11);
  const TafLocSystem::DegradedResult result = zone.localize(rss);
  EXPECT_TRUE(result.served);
  EXPECT_EQ(zone.status().queries, 1u);
}

TEST(ZoneLifecycle, LocalizeBeforeStartAndAfterDrainIsRefused) {
  Zone zone(zone_config("beta", 12), nullptr);
  const Vector rss = make_query(12);
  EXPECT_THROW((void)zone.localize(rss), std::logic_error);
  zone.drain();  // loading -> stopped.
  EXPECT_EQ(zone.state(), ZoneState::kStopped);
  EXPECT_THROW((void)zone.localize(rss), std::logic_error);
  zone.drain();  // idempotent.
  EXPECT_EQ(zone.state(), ZoneState::kStopped);
}

TEST(ZoneLifecycle, ResurveyWhileServingAnswersFromTheOldMatrix) {
  JobQueue jobs("test-zone", 1);
  // Park the single worker so the zone's solve stays queued and the
  // zone is pinned in kResurveying while we query it.
  std::atomic<bool> release{false};
  jobs.submit([&release] {
    while (!release.load()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  });

  Zone zone(zone_config("gamma", 13), &jobs);
  zone.start();
  const Vector rss = make_query(13);
  const TafLocSystem::DegradedResult before = zone.localize(rss);

  ASSERT_TRUE(zone.request_resurvey(2.0));
  EXPECT_EQ(zone.state(), ZoneState::kResurveying);
  EXPECT_TRUE(zone.update_in_flight());
  EXPECT_FALSE(zone.request_resurvey(2.5));  // one update at a time.

  // Mid-recalibration queries are answered, bit-identically to the
  // pre-update matrix (the solve has not swapped anything in).
  const TafLocSystem::DegradedResult during = zone.localize(rss);
  EXPECT_TRUE(during.served);
  EXPECT_EQ(during.point.x, before.point.x);
  EXPECT_EQ(during.point.y, before.point.y);
  // poll() with the solve still queued must not commit anything.
  zone.poll();
  EXPECT_EQ(zone.state(), ZoneState::kResurveying);

  release.store(true);
  jobs.wait_idle();
  zone.poll();
  EXPECT_EQ(zone.state(), ZoneState::kServing);
  EXPECT_FALSE(zone.update_in_flight());
  const Zone::Status status = zone.status();
  EXPECT_EQ(status.updates_committed, 1u);
  EXPECT_EQ(status.updates_failed, 0u);
  EXPECT_EQ(status.clock_days, 2.0);
  zone.drain();
}

TEST(ZoneLifecycle, SynchronousResurveyCommitsInline) {
  Zone zone(zone_config("delta", 14), nullptr);  // no job queue.
  zone.start();
  ASSERT_TRUE(zone.request_resurvey(3.0));
  EXPECT_EQ(zone.state(), ZoneState::kServing);  // already committed.
  EXPECT_EQ(zone.status().updates_committed, 1u);
  EXPECT_FALSE(zone.update_in_flight());
}

TEST(ZoneLifecycle, DrainWithQueuedWorkFinishesTheUpdate) {
  TempDir dir("drainq");
  JobQueue jobs("test-drain", 1);
  std::atomic<bool> release{false};
  jobs.submit([&release] {
    while (!release.load()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  });

  ZoneConfig config = zone_config("epsilon", 15);
  config.state_dir = dir.str();
  Zone zone(config, &jobs);
  zone.start();
  ASSERT_TRUE(zone.request_resurvey(4.0));
  ASSERT_EQ(zone.state(), ZoneState::kResurveying);

  // Drain arrives while the solve is still queued behind the parked
  // worker: it must wait the update out, commit it, snapshot, stop.
  std::thread releaser([&release] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    release.store(true);
  });
  zone.drain();
  releaser.join();

  EXPECT_EQ(zone.state(), ZoneState::kStopped);
  EXPECT_EQ(zone.status().updates_committed, 1u);
  EXPECT_FALSE(zone.update_in_flight());

  // The epilogue snapshot is recoverable and carries the update.
  JobQueue jobs2("test-drain2", 1);
  Zone restarted(config, &jobs2);
  restarted.start();
  EXPECT_EQ(restarted.state(), ZoneState::kServing);
  EXPECT_TRUE(restarted.system().database() == zone.system().database());
  EXPECT_EQ(restarted.status().clock_days, 4.0);
  restarted.drain();
}

TEST(ZoneLifecycle, DegradedEdgeAndResurveyFromDegraded) {
  Zone zone(zone_config("zeta", 16), nullptr);
  zone.start();

  Vector poisoned = make_query(16);
  poisoned[0] = std::nan("");
  (void)zone.localize(poisoned);
  EXPECT_EQ(zone.state(), ZoneState::kDegraded);

  // A resurvey from degraded returns to degraded (synchronous queue).
  ASSERT_TRUE(zone.request_resurvey(2.0));
  EXPECT_EQ(zone.state(), ZoneState::kDegraded);
  EXPECT_EQ(zone.status().updates_committed, 1u);

  // Draining from degraded is legal too.
  zone.drain();
  EXPECT_EQ(zone.state(), ZoneState::kStopped);
}

TEST(ZoneLifecycle, AmbientTriggerStartsResurvey) {
  ZoneConfig config = zone_config("eta", 17);
  config.scheduler.staleness_threshold_db = 1e-9;  // any drift triggers.
  config.scheduler.min_interval_days = 0.0;
  Zone zone(config, nullptr);
  zone.start();

  Scenario scenario = Scenario::paper_room(17);
  Rng rng(99);
  const Vector ambient = scenario.collector().observe_ambient(5.0, rng);
  const Zone::AmbientResult result = zone.observe_ambient(ambient, 5.0);
  EXPECT_TRUE(result.accepted);
  EXPECT_TRUE(result.triggered);
  EXPECT_TRUE(result.resurvey_started);
  EXPECT_EQ(zone.status().updates_committed, 1u);
  EXPECT_EQ(zone.status().clock_days, 5.0);

  zone.drain();
  const Zone::AmbientResult refused = zone.observe_ambient(ambient, 6.0);
  EXPECT_FALSE(refused.accepted);
}

TEST(ZoneLifecycle, TransitionsLandInZoneTelemetry) {
  Zone zone(zone_config("theta", 18), nullptr);
  zone.start();
  zone.drain();
  const std::string json = zone.telemetry_json();
  EXPECT_NE(json.find("\"zone\":\"theta\""), std::string::npos);
  EXPECT_NE(json.find("zone.transitions"), std::string::npos);
  EXPECT_NE(json.find("zone.state.serving"), std::string::npos);
  EXPECT_NE(json.find("zone.state.stopped"), std::string::npos);
}

}  // namespace
}  // namespace tafloc::daemon
