// Fault injection, two regimes:
//
//  - strict paths: corrupted measurements (NaN / infinity / absurd
//    magnitudes) must surface as exceptions or explicit non-convergence
//    -- never as silently wrong localization output;
//  - degraded paths: with a LinkHealth mask in the loop, the serving
//    pipeline (localize_degraded, masked matchers, row_observed
//    reconstruction) must survive the same faults without aborting and
//    with bounded accuracy loss.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "tafloc/linalg/cholesky.h"
#include "tafloc/linalg/lu.h"
#include "tafloc/linalg/ops.h"
#include "tafloc/linalg/svd.h"
#include "tafloc/loc/matcher.h"
#include "tafloc/loc/presence.h"
#include "tafloc/recon/loli_ir.h"
#include "tafloc/recon/svt.h"
#include "tafloc/sim/fault.h"
#include "tafloc/sim/scenario.h"
#include "tafloc/tafloc/system.h"
#include "tafloc/util/stats.h"

namespace tafloc {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(FaultInjection, SvdOfNanMatrixThrowsRatherThanReturningGarbage) {
  Matrix a(4, 4, 1.0);
  a(1, 2) = kNan;
  EXPECT_THROW(svd_decompose(a), std::invalid_argument);
  a(1, 2) = kInf;
  EXPECT_THROW(svd_decompose(a), std::invalid_argument);
}

TEST(FaultInjection, CholeskyOfNanMatrixThrows) {
  Matrix a = Matrix::identity(3);
  a(1, 1) = kNan;
  EXPECT_THROW(cholesky_factor(a), std::invalid_argument);
}

TEST(FaultInjection, LuOfAllNanThrows) {
  Matrix a(2, 2, kNan);
  EXPECT_THROW(LuDecomposition{a}, std::invalid_argument);
}

TEST(FaultInjection, MatchersRejectNanObservations) {
  const GridMap grid(1.8, 0.6, 0.6);
  const Matrix fp = Matrix::from_rows({{-30.0, -40.0, -50.0}});
  const std::vector<double> y{kNan};
  EXPECT_THROW(KnnMatcher(fp, grid, 2).localize(y), std::invalid_argument);
  EXPECT_THROW(NnMatcher(fp, grid).localize(y), std::invalid_argument);
  EXPECT_THROW(BayesMatcher(fp, grid).localize(y), std::invalid_argument);
}

TEST(FaultInjection, PresencePipelineFlagsAbsurdObservation) {
  // A receiver fault reporting +inf RSS shows up as an enormous
  // presence score -- the natural guard point for real deployments.
  const Scenario s = Scenario::paper_room(3);
  Rng rng(3);
  Vector ambient = s.collector().ambient_scan(0.0, rng);
  const std::size_t m = ambient.size();
  PresenceDetector det(std::move(ambient));
  for (int i = 0; i < 6; ++i) det.calibrate_empty(s.collector().observe_ambient(0.0, rng));
  Vector faulty(m, -40.0);
  faulty[2] = kInf;
  EXPECT_TRUE(std::isinf(det.score(faulty)));
}

TEST(FaultInjection, LoliIrRejectsNanMaskEntries) {
  const Scenario s = Scenario::paper_room(4);
  Rng rng(4);
  const Matrix x0 = s.collector().survey_all(0.0, rng);
  const Vector amb = s.collector().ambient_scan(0.0, rng);
  const DistortionMask mask = DistortionDetector().detect_from_data(x0, amb);

  LoliIrProblem p;
  p.mask_undistorted = mask.undistorted;
  p.mask_undistorted(0, 0) = kNan;  // corrupt
  p.known = known_entry_matrix(mask, amb);
  p.prediction = x0;
  p.reference_columns = x0.select_columns(std::vector<std::size_t>{0});
  p.reference_indices = {0};
  EXPECT_THROW(loli_ir_reconstruct(p), std::invalid_argument);
}

TEST(FaultInjection, SystemRejectsWrongSizedRealtimeVector) {
  const Scenario s = Scenario::paper_room(5);
  Rng rng(5);
  TafLocSystem system(s.deployment());
  system.calibrate(s.collector().survey_all(0.0, rng), s.collector().ambient_scan(0.0, rng),
                   0.0);
  const std::vector<double> too_short(5, -40.0);
  EXPECT_THROW(system.localize(too_short), std::invalid_argument);
  const std::vector<double> too_long(20, -40.0);
  EXPECT_THROW(system.localize(too_long), std::invalid_argument);
}

TEST(FaultInjection, SoftThresholdHandlesInfinities) {
  EXPECT_DOUBLE_EQ(soft_threshold(kInf, 5.0), kInf);
  EXPECT_DOUBLE_EQ(soft_threshold(-kInf, 5.0), -kInf);
}

TEST(FaultInjection, RunningStatsPropagateNanVisibly) {
  // A NaN observation must poison the mean (visible), not vanish.
  RunningStats st;
  st.add(1.0);
  st.add(kNan);
  EXPECT_TRUE(std::isnan(st.mean()));
}

// ---------------- degraded-mode serving ----------------

double median_of(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v.empty() ? 0.0 : v[v.size() / 2];
}

TEST(DegradedServing, AllHealthyPathIsBitIdenticalToLocalize) {
  const Scenario s = Scenario::paper_room(21);
  Rng rng(21);
  TafLocSystem system(s.deployment());
  system.calibrate(s.collector().survey_all(0.0, rng), s.collector().ambient_scan(0.0, rng),
                   0.0);
  for (int q = 0; q < 10; ++q) {
    const Point2 truth{1.0 + 0.3 * q, 2.0};
    const Vector rss = s.collector().observe(truth, 0.0, rng);
    const Point2 strict = system.localize(rss);
    const auto degraded = system.localize_degraded(rss);
    EXPECT_EQ(strict.x, degraded.point.x);
    EXPECT_EQ(strict.y, degraded.point.y);
    EXPECT_FALSE(degraded.degraded);
    EXPECT_TRUE(degraded.served);
    EXPECT_EQ(degraded.links_used, s.deployment().num_links());
    EXPECT_DOUBLE_EQ(degraded.confidence, 1.0);
  }
}

TEST(DegradedServing, SurvivesThirtyPercentDeadLinksWithBoundedError) {
  const Scenario s = Scenario::paper_room(22);
  const std::size_t m = s.deployment().num_links();

  // Two identical systems; one serves clean readings, one serves the
  // same readings through a 30%-dead fault schedule.
  Rng rng(22);
  TafLocSystem clean(s.deployment());
  TafLocSystem faulty(s.deployment());
  {
    const Matrix survey = s.collector().survey_all(0.0, rng);
    Vector amb = s.collector().ambient_scan(0.0, rng);
    clean.calibrate(survey, Vector(amb), 0.0);
    faulty.calibrate(survey, std::move(amb), 0.0);
  }

  FaultConfig faults;
  faults.dead_fraction = 0.3;
  FaultInjector injector(m, faults, 23);

  Rng targets = rng.fork();
  std::vector<double> clean_err, faulty_err;
  for (int q = 0; q < 150; ++q) {
    const Point2 truth{targets.uniform(0.0, s.deployment().grid().width()),
                       targets.uniform(0.0, s.deployment().grid().height())};
    const Vector rss = s.collector().observe(truth, 0.0, rng);
    Vector corrupted = rss;
    injector.apply(corrupted);

    clean_err.push_back(distance(clean.localize(rss), truth));
    const auto result = faulty.localize_degraded(corrupted);  // must not throw
    ASSERT_TRUE(result.served);
    EXPECT_TRUE(result.degraded);
    EXPECT_EQ(result.links_used, m - injector.dead_links().size());
    faulty_err.push_back(distance(result.point, truth));
  }
  EXPECT_EQ(faulty.link_health().dead_count(), injector.dead_links().size());

  // Acceptance bound: median degraded error within 2x the fault-free
  // baseline (small additive slack keeps the bound meaningful when the
  // clean median is tiny).
  const double clean_median = median_of(clean_err);
  const double faulty_median = median_of(faulty_err);
  EXPECT_LE(faulty_median, 2.0 * clean_median + 0.05)
      << "clean median " << clean_median << " m, degraded median " << faulty_median << " m";
}

TEST(DegradedServing, AllLinksDeadIsUnservableNotFatal) {
  const Scenario s = Scenario::paper_room(24);
  Rng rng(24);
  TafLocSystem system(s.deployment());
  system.calibrate(s.collector().survey_all(0.0, rng), s.collector().ambient_scan(0.0, rng),
                   0.0);
  const Vector all_nan(s.deployment().num_links(), kNan);
  const auto result = system.localize_degraded(all_nan);
  EXPECT_FALSE(result.served);
  EXPECT_TRUE(result.degraded);
  EXPECT_EQ(result.links_used, 0u);
  EXPECT_DOUBLE_EQ(result.confidence, 0.0);
  // The answer carries no signal but must still be a point in the area.
  EXPECT_GE(result.point.x, 0.0);
  EXPECT_LE(result.point.x, s.deployment().grid().width());
  // The strict path still enforces its contract.
  EXPECT_THROW(system.localize(all_nan), std::invalid_argument);
}

TEST(DegradedServing, UpdateCompletesWithDeadLinksAndStaysFinite) {
  const Scenario s = Scenario::paper_room(25);
  Rng rng(25);
  TafLocSystem system(s.deployment());
  system.calibrate(s.collector().survey_all(0.0, rng), s.collector().ambient_scan(0.0, rng),
                   0.0);
  const std::size_t m = s.deployment().num_links();

  // Fresh survey data arrives with two links reporting NaN everywhere.
  Matrix fresh = s.collector().survey_grids(system.reference_locations(), 20.0, rng);
  Vector ambient = s.collector().ambient_scan(20.0, rng);
  for (std::size_t i : {std::size_t{1}, m - 1}) {
    ambient[i] = kNan;
    for (std::size_t j = 0; j < fresh.cols(); ++j) fresh(i, j) = kNan;
  }

  const auto report = system.update(fresh, std::move(ambient), 20.0);  // must not throw
  EXPECT_EQ(system.link_health().dead_count(), 2u);
  EXPECT_FALSE(system.link_health().usable(1));
  for (double v : system.database().fingerprints().data()) EXPECT_TRUE(std::isfinite(v));
  for (double v : system.database().ambient()) EXPECT_TRUE(std::isfinite(v));
  EXPECT_GT(report.solver.outer_iterations, 0u);

  // The refreshed system still serves degraded queries.
  Vector rss = s.collector().observe({2.0, 2.0}, 20.0, rng);
  rss[1] = kNan;
  rss[m - 1] = kNan;
  const auto result = system.localize_degraded(rss);
  EXPECT_TRUE(result.served);
  EXPECT_EQ(result.links_used, m - 2);
}

TEST(DegradedServing, MaskedMatchersIgnoreDeadLinkGarbage) {
  // Two links; link 1 carries garbage that inverts the match unless it
  // is masked out.  Columns: grid 0 = (-30, 0), grid 1 = (-50, -999).
  const GridMap grid(1.2, 0.6, 0.6);
  const Matrix fp = Matrix::from_rows({{-30.0, -50.0}, {0.0, -999.0}});
  LinkHealth health(2);
  health.mark_dead(1);

  const std::vector<double> y{-49.0, kNan};  // near grid 1 on the live link
  NnMatcher nn(fp, grid);
  EXPECT_THROW(nn.localize(y), std::invalid_argument);  // strict path still throws
  nn.attach_link_health(&health);
  EXPECT_EQ(nn.nearest_grid(y), 1u);

  KnnMatcher knn(fp, grid, 1);
  knn.attach_link_health(&health);
  MatchStats stats;
  const Point2 p = knn.localize(y, &stats);
  EXPECT_EQ(stats.links_used, 1u);
  EXPECT_DOUBLE_EQ(p.x, grid.center(1).x);
}

TEST(DegradedServing, LoliIrRowObservedEmptyAndAllOnesAreBitIdentical) {
  const Scenario s = Scenario::paper_room(26);
  Rng rng(26);
  const Matrix x0 = s.collector().survey_all(0.0, rng);
  const Vector amb = s.collector().ambient_scan(0.0, rng);
  const DistortionMask mask = DistortionDetector().detect_from_data(x0, amb);
  const std::vector<std::size_t> refs{0, 3, 7};

  LoliIrProblem p;
  p.mask_undistorted = mask.undistorted;
  p.known = known_entry_matrix(mask, amb);
  p.prediction = x0;
  p.reference_columns = x0.select_columns(refs);
  p.reference_indices = refs;

  const LoliIrResult base = loli_ir_reconstruct(p);
  p.row_observed.assign(x0.rows(), 1);
  const LoliIrResult all_ones = loli_ir_reconstruct(p);
  ASSERT_EQ(base.x.rows(), all_ones.x.rows());
  for (std::size_t i = 0; i < base.x.size(); ++i)
    EXPECT_EQ(base.x.data()[i], all_ones.x.data()[i]);
}

TEST(DegradedServing, LoliIrExcludesDeadRowsFromAnchors) {
  // A dead row full of garbage "known" entries must not anchor the
  // reconstruction when row_observed masks it out.
  const Scenario s = Scenario::paper_room(27);
  Rng rng(27);
  const Matrix x0 = s.collector().survey_all(0.0, rng);
  const Vector amb = s.collector().ambient_scan(0.0, rng);
  const DistortionMask mask = DistortionDetector().detect_from_data(x0, amb);
  const std::vector<std::size_t> refs{0, 3, 7};

  LoliIrProblem p;
  p.mask_undistorted = mask.undistorted;
  p.known = known_entry_matrix(mask, amb);
  p.prediction = x0;
  p.reference_columns = x0.select_columns(refs);
  p.reference_indices = refs;
  p.row_observed.assign(x0.rows(), 1);
  p.row_observed[2] = 0;
  // Poison the dead row's inputs the way a dead radio would.
  for (std::size_t j = 0; j < p.known.cols(); ++j) p.known(2, j) = kNan;
  for (std::size_t j = 0; j < p.reference_columns.cols(); ++j)
    p.reference_columns(2, j) = kNan;
  // The caller-patches-prediction contract: dead rows of the prediction
  // hold the previous fingerprints (already true: prediction = x0).

  const LoliIrResult r = loli_ir_reconstruct(p);
  for (double v : r.x.data()) EXPECT_TRUE(std::isfinite(v));
}

TEST(DegradedServing, SvtRowObservedMasksDeadRows) {
  // Rank-1 matrix, one row dead with NaN garbage: the masked solve must
  // stay finite and recover the healthy structure.
  const std::size_t m = 6, n = 8;
  Matrix truth(m, n);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j)
      truth(i, j) = (1.0 + static_cast<double>(i)) * (1.0 + 0.5 * static_cast<double>(j));
  Matrix known = truth;
  Matrix mask(m, n, 1.0);
  for (std::size_t j = 0; j < n; ++j) known(3, j) = kNan;

  SvtOptions opt;
  opt.row_observed.assign(m, 1);
  opt.row_observed[3] = 0;
  const SvtResult r = svt_complete(known, mask, opt);
  for (double v : r.x.data()) EXPECT_TRUE(std::isfinite(v));

  // And the empty / all-ones configurations agree bit-for-bit.
  Matrix clean = truth;
  SvtOptions none;
  const SvtResult base = svt_complete(clean, mask, none);
  SvtOptions ones;
  ones.row_observed.assign(m, 1);
  const SvtResult same = svt_complete(clean, mask, ones);
  ASSERT_EQ(base.iterations, same.iterations);
  for (std::size_t i = 0; i < base.x.size(); ++i)
    EXPECT_EQ(base.x.data()[i], same.x.data()[i]);
}

TEST(DegradedServing, TelemetryCountsDegradedQueries) {
  const Scenario s = Scenario::paper_room(28);
  Rng rng(28);
  TafLocSystem system(s.deployment());
  system.calibrate(s.collector().survey_all(0.0, rng), s.collector().ambient_scan(0.0, rng),
                   0.0);
  Vector rss = s.collector().observe({1.0, 1.0}, 0.0, rng);
  system.localize_degraded(rss);  // healthy
  rss[0] = kNan;
  system.localize_degraded(rss);  // degraded
  const std::string json = system.telemetry_snapshot_json();
  EXPECT_NE(json.find("system.degraded_queries"), std::string::npos);
  EXPECT_NE(json.find("system.links_dead"), std::string::npos);
  EXPECT_NE(json.find("system.degraded_fraction"), std::string::npos);
}

}  // namespace
}  // namespace tafloc
