// Fault injection: corrupted measurements (NaN / infinity / absurd
// magnitudes) must surface as exceptions or explicit non-convergence --
// never as silently wrong localization output.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "tafloc/linalg/cholesky.h"
#include "tafloc/linalg/lu.h"
#include "tafloc/linalg/ops.h"
#include "tafloc/linalg/svd.h"
#include "tafloc/loc/matcher.h"
#include "tafloc/recon/loli_ir.h"
#include "tafloc/loc/presence.h"
#include "tafloc/sim/scenario.h"
#include "tafloc/tafloc/system.h"
#include "tafloc/util/stats.h"

namespace tafloc {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(FaultInjection, SvdOfNanMatrixThrowsRatherThanReturningGarbage) {
  Matrix a(4, 4, 1.0);
  a(1, 2) = kNan;
  EXPECT_THROW(svd_decompose(a), std::invalid_argument);
  a(1, 2) = kInf;
  EXPECT_THROW(svd_decompose(a), std::invalid_argument);
}

TEST(FaultInjection, CholeskyOfNanMatrixThrows) {
  Matrix a = Matrix::identity(3);
  a(1, 1) = kNan;
  EXPECT_THROW(cholesky_factor(a), std::invalid_argument);
}

TEST(FaultInjection, LuOfAllNanThrows) {
  Matrix a(2, 2, kNan);
  EXPECT_THROW(LuDecomposition{a}, std::invalid_argument);
}

TEST(FaultInjection, MatchersRejectNanObservations) {
  const GridMap grid(1.8, 0.6, 0.6);
  const Matrix fp = Matrix::from_rows({{-30.0, -40.0, -50.0}});
  const std::vector<double> y{kNan};
  EXPECT_THROW(KnnMatcher(fp, grid, 2).localize(y), std::invalid_argument);
  EXPECT_THROW(NnMatcher(fp, grid).localize(y), std::invalid_argument);
  EXPECT_THROW(BayesMatcher(fp, grid).localize(y), std::invalid_argument);
}

TEST(FaultInjection, PresencePipelineFlagsAbsurdObservation) {
  // A receiver fault reporting +inf RSS shows up as an enormous
  // presence score -- the natural guard point for real deployments.
  const Scenario s = Scenario::paper_room(3);
  Rng rng(3);
  Vector ambient = s.collector().ambient_scan(0.0, rng);
  const std::size_t m = ambient.size();
  PresenceDetector det(std::move(ambient));
  for (int i = 0; i < 6; ++i) det.calibrate_empty(s.collector().observe_ambient(0.0, rng));
  Vector faulty(m, -40.0);
  faulty[2] = kInf;
  EXPECT_TRUE(std::isinf(det.score(faulty)));
}

TEST(FaultInjection, LoliIrRejectsNanMaskEntries) {
  const Scenario s = Scenario::paper_room(4);
  Rng rng(4);
  const Matrix x0 = s.collector().survey_all(0.0, rng);
  const Vector amb = s.collector().ambient_scan(0.0, rng);
  const DistortionMask mask = DistortionDetector().detect_from_data(x0, amb);

  LoliIrProblem p;
  p.mask_undistorted = mask.undistorted;
  p.mask_undistorted(0, 0) = kNan;  // corrupt
  p.known = known_entry_matrix(mask, amb);
  p.prediction = x0;
  p.reference_columns = x0.select_columns(std::vector<std::size_t>{0});
  p.reference_indices = {0};
  EXPECT_THROW(loli_ir_reconstruct(p), std::invalid_argument);
}

TEST(FaultInjection, SystemRejectsWrongSizedRealtimeVector) {
  const Scenario s = Scenario::paper_room(5);
  Rng rng(5);
  TafLocSystem system(s.deployment());
  system.calibrate(s.collector().survey_all(0.0, rng), s.collector().ambient_scan(0.0, rng),
                   0.0);
  const std::vector<double> too_short(5, -40.0);
  EXPECT_THROW(system.localize(too_short), std::invalid_argument);
  const std::vector<double> too_long(20, -40.0);
  EXPECT_THROW(system.localize(too_long), std::invalid_argument);
}

TEST(FaultInjection, SoftThresholdHandlesInfinities) {
  EXPECT_DOUBLE_EQ(soft_threshold(kInf, 5.0), kInf);
  EXPECT_DOUBLE_EQ(soft_threshold(-kInf, 5.0), -kInf);
}

TEST(FaultInjection, RunningStatsPropagateNanVisibly) {
  // A NaN observation must poison the mean (visible), not vanish.
  RunningStats st;
  st.add(1.0);
  st.add(kNan);
  EXPECT_TRUE(std::isnan(st.mean()));
}

}  // namespace
}  // namespace tafloc
