#include "tafloc/recon/loli_ir.h"

#include <gtest/gtest.h>

#include "tafloc/fingerprint/distortion.h"
#include "tafloc/fingerprint/reference.h"
#include "tafloc/recon/error.h"
#include "tafloc/recon/lrr.h"
#include "tafloc/sim/scenario.h"
#include "tafloc/util/stats.h"

namespace tafloc {
namespace {

/// Everything one reconstruction experiment needs, assembled from the
/// simulated paper room the way TafLocSystem does it.
struct Workbench {
  Scenario scenario;
  Matrix x0;                 // initial survey
  Vector ambient0;
  DistortionMask mask;
  std::vector<std::size_t> refs;
  LrrModel lrr;
  Matrix truth_t;            // ground truth at update time
  LoliIrProblem problem;     // ready-to-solve instance at time t

  Workbench(std::uint64_t seed, double t_days, std::size_t n_refs = 10)
      : scenario(Scenario::paper_room(seed)),
        x0(make_x0(scenario, seed)),
        ambient0(make_ambient(scenario, seed)),
        mask(DistortionDetector().detect_from_data(x0, ambient0)),
        refs(select_reference_locations(x0, n_refs, ReferencePolicy::QrPivot)),
        lrr(x0, refs),
        truth_t(scenario.collector().ground_truth(t_days)) {
    Rng rng(seed + 1000);
    const Matrix fresh_refs = scenario.collector().survey_grids(refs, t_days, rng);
    const Vector fresh_ambient = scenario.collector().ambient_scan(t_days, rng);
    problem.mask_undistorted = mask.undistorted;
    problem.known = known_entry_matrix(mask, fresh_ambient);
    problem.prediction = lrr.predict(fresh_refs);
    problem.reference_columns = fresh_refs;
    problem.reference_indices = refs;
    problem.continuity = continuity_pairs(scenario.deployment(), &mask);
    problem.similarity = similarity_pairs(scenario.deployment(), &mask);
  }

 private:
  static Matrix make_x0(const Scenario& s, std::uint64_t seed) {
    Rng rng(seed + 500);
    return s.collector().survey_all(0.0, rng);
  }
  static Vector make_ambient(const Scenario& s, std::uint64_t seed) {
    Rng rng(seed + 501);
    return s.collector().ambient_scan(0.0, rng);
  }
};

TEST(LoliIr, ConvergesOnPaperRoom) {
  Workbench wb(1, 45.0);
  const LoliIrResult res = loli_ir_reconstruct(wb.problem);
  EXPECT_TRUE(res.converged);
  EXPECT_GT(res.rank, 0u);
  EXPECT_EQ(res.x.rows(), 10u);
  EXPECT_EQ(res.x.cols(), 96u);
}

TEST(LoliIr, ObjectiveDecreasesMonotonically) {
  Workbench wb(2, 45.0);
  const LoliIrResult res = loli_ir_reconstruct(wb.problem);
  ASSERT_GE(res.objective_trace.size(), 2u);
  for (std::size_t i = 1; i < res.objective_trace.size(); ++i) {
    EXPECT_LE(res.objective_trace[i], res.objective_trace[i - 1] * (1.0 + 1e-9))
        << "objective increased at outer iteration " << i;
  }
}

TEST(LoliIr, ReconstructionErrorWithinPaperBand) {
  // Paper Fig. 3: ~3.6 dBm average at 45 days.  Allow generous slack --
  // our substrate is a simulator -- but insist on the same order.
  Workbench wb(3, 45.0);
  const LoliIrResult res = loli_ir_reconstruct(wb.problem);
  const double err = mean_abs_error(res.x, wb.truth_t);
  EXPECT_LT(err, 5.0);
}

TEST(LoliIr, BeatsStaleDatabase) {
  // Using the 0-day survey at day 45 must be worse than reconstructing.
  Workbench wb(4, 45.0);
  const LoliIrResult res = loli_ir_reconstruct(wb.problem);
  const double recon_err = mean_abs_error(res.x, wb.truth_t);
  const double stale_err = mean_abs_error(wb.x0, wb.truth_t);
  EXPECT_LT(recon_err, stale_err);
}

TEST(LoliIr, BeatsPredictionAlone) {
  // The full objective (known entries + reference pinning + priors)
  // should not be worse than the raw LRR prediction it starts from.
  Workbench wb(5, 90.0);
  const LoliIrResult res = loli_ir_reconstruct(wb.problem);
  const double full = mean_abs_error(res.x, wb.truth_t);
  const double pred_only = mean_abs_error(wb.problem.prediction, wb.truth_t);
  EXPECT_LE(full, pred_only * 1.05);
}

TEST(LoliIr, ReferenceColumnsPinnedToFreshMeasurements) {
  Workbench wb(6, 45.0);
  const LoliIrResult res = loli_ir_reconstruct(wb.problem);
  for (std::size_t k = 0; k < wb.refs.size(); ++k) {
    const std::size_t g = wb.refs[k];
    for (std::size_t i = 0; i < res.x.rows(); ++i) {
      EXPECT_NEAR(res.x(i, g), wb.problem.reference_columns(i, k), 1.5)
          << "reference column " << g << " drifted from its measurement";
    }
  }
}

TEST(LoliIr, RespectsExplicitRank) {
  Workbench wb(7, 15.0);
  LoliIrConfig cfg;
  cfg.rank = 3;
  const LoliIrResult res = loli_ir_reconstruct(wb.problem, cfg);
  EXPECT_EQ(res.rank, 3u);
  EXPECT_EQ(res.l.cols(), 3u);
  EXPECT_EQ(res.r.cols(), 3u);
}

TEST(LoliIr, RankCappedByMaxRank) {
  Workbench wb(8, 15.0);
  LoliIrConfig cfg;
  cfg.rank = 50;
  cfg.max_rank = 4;
  const LoliIrResult res = loli_ir_reconstruct(wb.problem, cfg);
  EXPECT_EQ(res.rank, 4u);
}

TEST(LoliIr, FactorizationConsistent) {
  Workbench wb(9, 15.0);
  const LoliIrResult res = loli_ir_reconstruct(wb.problem);
  EXPECT_LT(max_abs_diff(res.x, outer_product(res.l, res.r)), 1e-9);
}

TEST(LoliIr, ObjectiveFunctionMatchesResult) {
  Workbench wb(10, 15.0);
  const LoliIrResult res = loli_ir_reconstruct(wb.problem);
  EXPECT_NEAR(res.objective, loli_ir_objective(wb.problem, LoliIrConfig{}, res.l, res.r),
              1e-6 * (1.0 + res.objective));
}

TEST(LoliIr, ErrorGrowsWithElapsedTime) {
  // Fig. 3's qualitative shape: reconstruction error increases with the
  // age of the correlation model.
  Workbench early(11, 3.0);
  Workbench late(11, 90.0);
  const double err_early = mean_abs_error(loli_ir_reconstruct(early.problem).x, early.truth_t);
  const double err_late = mean_abs_error(loli_ir_reconstruct(late.problem).x, late.truth_t);
  EXPECT_LT(err_early, err_late);
}

TEST(LoliIr, ValidatesProblemShapes) {
  Workbench wb(12, 15.0);
  LoliIrProblem bad = wb.problem;
  bad.prediction = Matrix(3, 3, 0.0);
  EXPECT_THROW(loli_ir_reconstruct(bad), std::invalid_argument);

  bad = wb.problem;
  bad.mask_undistorted(0, 0) = 0.5;
  EXPECT_THROW(loli_ir_reconstruct(bad), std::invalid_argument);

  bad = wb.problem;
  bad.reference_indices.back() = 500;
  EXPECT_THROW(loli_ir_reconstruct(bad), std::out_of_range);

  bad = wb.problem;
  bad.reference_indices.pop_back();
  EXPECT_THROW(loli_ir_reconstruct(bad), std::invalid_argument);
}

TEST(LoliIr, ValidatesConfig) {
  Workbench wb(13, 15.0);
  LoliIrConfig cfg;
  cfg.lambda = 0.0;
  EXPECT_THROW(loli_ir_reconstruct(wb.problem, cfg), std::invalid_argument);
  cfg = LoliIrConfig{};
  cfg.lrr_weight = -1.0;
  EXPECT_THROW(loli_ir_reconstruct(wb.problem, cfg), std::invalid_argument);
  cfg = LoliIrConfig{};
  cfg.max_outer_iterations = 0;
  EXPECT_THROW(loli_ir_reconstruct(wb.problem, cfg), std::invalid_argument);
}

TEST(LoliIr, PairwisePriorsImproveDistortedEntries) {
  // Ablation invariant: with continuity+similarity ON the error on the
  // distorted support should not be worse than with both OFF.
  Workbench wb(14, 90.0);
  LoliIrConfig with = LoliIrConfig{};
  LoliIrConfig without = LoliIrConfig{};
  without.continuity_weight = 0.0;
  without.similarity_weight = 0.0;
  const Matrix x_with = loli_ir_reconstruct(wb.problem, with).x;
  const Matrix x_without = loli_ir_reconstruct(wb.problem, without).x;
  const auto err_with = entrywise_abs_errors_distorted(x_with, wb.truth_t, wb.mask);
  const auto err_without = entrywise_abs_errors_distorted(x_without, wb.truth_t, wb.mask);
  const double mean_with = mean(err_with);
  const double mean_without = mean(err_without);
  EXPECT_LE(mean_with, mean_without * 1.1);
}

TEST(LoliIr, DeterministicGivenSameProblem) {
  Workbench wb(15, 45.0);
  const LoliIrResult a = loli_ir_reconstruct(wb.problem);
  const LoliIrResult b = loli_ir_reconstruct(wb.problem);
  EXPECT_LT(max_abs_diff(a.x, b.x), 1e-12);
}

// Sweep: reconstruction stays sane across elapsed times (Fig. 3 grid).
class LoliIrTimeSweep : public ::testing::TestWithParam<double> {};

TEST_P(LoliIrTimeSweep, ErrorBoundedAtAllElapsedTimes) {
  const double t = GetParam();
  Workbench wb(100, t);
  const LoliIrResult res = loli_ir_reconstruct(wb.problem);
  EXPECT_TRUE(res.converged || res.outer_iterations == LoliIrConfig{}.max_outer_iterations);
  const double err = mean_abs_error(res.x, wb.truth_t);
  EXPECT_LT(err, 6.0) << "at t = " << t << " days";
}

INSTANTIATE_TEST_SUITE_P(ElapsedDays, LoliIrTimeSweep,
                         ::testing::Values(3.0, 5.0, 15.0, 45.0, 90.0));

}  // namespace
}  // namespace tafloc
