#include <gtest/gtest.h>

#include "tafloc/loc/matcher.h"
#include "tafloc/loc/metrics.h"
#include "tafloc/loc/tracker.h"

namespace tafloc {
namespace {

TEST(LocalizationError, IsEuclideanDistance) {
  EXPECT_DOUBLE_EQ(localization_error({0.0, 0.0}, {3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(localization_error({1.0, 1.0}, {1.0, 1.0}), 0.0);
}

TEST(EvaluateLocalizer, PairsObservationsWithTruths) {
  const GridMap grid(1.8, 0.6, 0.6);
  const Matrix fp = Matrix::from_rows({{-30.0, -40.0, -50.0}});
  const NnMatcher nn(fp, grid);
  const std::vector<std::vector<double>> obs{{-30.0}, {-50.0}};
  const std::vector<Point2> truths{grid.center(0), grid.center(2)};
  const auto errors = evaluate_localizer(nn, obs, truths);
  ASSERT_EQ(errors.size(), 2u);
  EXPECT_NEAR(errors[0], 0.0, 1e-12);
  EXPECT_NEAR(errors[1], 0.0, 1e-12);
}

TEST(EvaluateLocalizer, NonZeroErrorForWrongGrid) {
  const GridMap grid(1.8, 0.6, 0.6);
  const Matrix fp = Matrix::from_rows({{-30.0, -40.0, -50.0}});
  const NnMatcher nn(fp, grid);
  const std::vector<std::vector<double>> obs{{-30.0}};
  const std::vector<Point2> truths{grid.center(2)};  // truth is elsewhere
  const auto errors = evaluate_localizer(nn, obs, truths);
  EXPECT_NEAR(errors[0], 1.2, 1e-12);
}

TEST(EvaluateLocalizer, RejectsMismatchedSizes) {
  const GridMap grid(1.8, 0.6, 0.6);
  const Matrix fp = Matrix::from_rows({{-30.0, -40.0, -50.0}});
  const NnMatcher nn(fp, grid);
  const std::vector<std::vector<double>> obs{{-30.0}};
  const std::vector<Point2> truths;
  EXPECT_THROW(evaluate_localizer(nn, obs, truths), std::invalid_argument);
}

TEST(SummarizeErrors, KnownSample) {
  const std::vector<double> errors{1.0, 2.0, 3.0, 4.0, 5.0};
  const ErrorSummary s = summarize_errors(errors);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_GE(s.p95, s.p80);
  EXPECT_GE(s.p80, s.median);
}

TEST(SummarizeErrors, RejectsEmpty) {
  const std::vector<double> empty;
  EXPECT_THROW(summarize_errors(empty), std::invalid_argument);
}

TEST(EmaTracker, FirstUpdatePassesThrough) {
  EmaTracker tracker(0.5);
  EXPECT_FALSE(tracker.position().has_value());
  const Point2 p = tracker.update({2.0, 4.0});
  EXPECT_DOUBLE_EQ(p.x, 2.0);
  EXPECT_DOUBLE_EQ(p.y, 4.0);
}

TEST(EmaTracker, BlendsSubsequentUpdates) {
  EmaTracker tracker(0.5);
  tracker.update({0.0, 0.0});
  const Point2 p = tracker.update({2.0, 4.0});
  EXPECT_DOUBLE_EQ(p.x, 1.0);
  EXPECT_DOUBLE_EQ(p.y, 2.0);
}

TEST(EmaTracker, AlphaOneIsNoSmoothing) {
  EmaTracker tracker(1.0);
  tracker.update({0.0, 0.0});
  const Point2 p = tracker.update({5.0, -1.0});
  EXPECT_DOUBLE_EQ(p.x, 5.0);
  EXPECT_DOUBLE_EQ(p.y, -1.0);
}

TEST(EmaTracker, SmoothsJitter) {
  EmaTracker tracker(0.3);
  tracker.update({1.0, 1.0});
  Point2 p{0.0, 0.0};
  // Alternating jitter around (1, 1) must stay near (1, 1).
  for (int i = 0; i < 50; ++i) {
    const double jitter = (i % 2 == 0) ? 0.5 : -0.5;
    p = tracker.update({1.0 + jitter, 1.0 - jitter});
  }
  EXPECT_NEAR(p.x, 1.0, 0.5);
  EXPECT_NEAR(p.y, 1.0, 0.5);
}

TEST(EmaTracker, ResetForgetsState) {
  EmaTracker tracker(0.5);
  tracker.update({1.0, 1.0});
  tracker.reset();
  EXPECT_FALSE(tracker.position().has_value());
  const Point2 p = tracker.update({9.0, 9.0});
  EXPECT_DOUBLE_EQ(p.x, 9.0);
}

TEST(EmaTracker, RejectsBadAlpha) {
  EXPECT_THROW(EmaTracker(0.0), std::invalid_argument);
  EXPECT_THROW(EmaTracker(1.5), std::invalid_argument);
}

}  // namespace
}  // namespace tafloc
