// QuantizedTier (fingerprint/quantized.h): layout, residual bounds,
// derived-state lifecycle, and the shared ties-away rounding convention
// with NoiseModel::quantize (util/quantize.h).
#include "tafloc/fingerprint/quantized.h"

#include <gtest/gtest.h>

#include <cmath>

#include "tafloc/fingerprint/database.h"
#include "tafloc/linalg/ops.h"
#include "tafloc/rf/noise.h"
#include "tafloc/util/quantize.h"
#include "tafloc/util/rng.h"

namespace tafloc {
namespace {

Matrix fixture(std::size_t links, std::size_t grids, std::uint64_t seed) {
  Rng rng(seed);
  Matrix m = random_gaussian(links, grids, rng);
  for (std::size_t i = 0; i < links; ++i) {
    const double offset = -70.0 + 4.0 * static_cast<double>(i);
    for (std::size_t j = 0; j < grids; ++j) m(i, j) = offset + 6.0 * m(i, j);
  }
  return m;
}

TEST(QuantizedTier, ShapeAndZeroPadding) {
  QuantizedTier tier;
  EXPECT_FALSE(tier.ready());
  const Matrix fp = fixture(5, 7, 1);
  tier.rebuild(fp.view());
  ASSERT_TRUE(tier.ready());
  EXPECT_EQ(tier.num_links(), 5u);
  EXPECT_EQ(tier.num_grids(), 7u);
  EXPECT_EQ(tier.padded_links(), QuantizedTier::kPad);
  for (std::size_t j = 0; j < 7; ++j) {
    const std::int8_t* cell = tier.cell_data(j);
    for (std::size_t i = 5; i < tier.padded_links(); ++i) EXPECT_EQ(cell[i], 0) << j << " " << i;
  }
  tier.clear();
  EXPECT_FALSE(tier.ready());
}

TEST(QuantizedTier, StoredEntriesWithinHalfLevel) {
  // Stored levels are in-range by construction of the shared scale, so
  // dequantization error is bounded by scale / 2 everywhere.
  const Matrix fp = fixture(9, 40, 2);
  QuantizedTier tier;
  tier.rebuild(fp.view());
  ASSERT_TRUE(tier.ready());
  const double s = tier.scale();
  EXPECT_GT(s, 0.0);
  for (std::size_t j = 0; j < fp.cols(); ++j) {
    const std::int8_t* cell = tier.cell_data(j);
    for (std::size_t i = 0; i < fp.rows(); ++i) {
      const double dequant = tier.offset(i) + s * static_cast<double>(cell[i]);
      EXPECT_LE(std::abs(fp(i, j) - dequant), 0.5 * s + 1e-12) << i << " " << j;
    }
  }
}

TEST(QuantizedTier, ObservationResidualsAreExact) {
  const Matrix fp = fixture(9, 40, 3);
  QuantizedTier tier;
  tier.rebuild(fp.view());
  Rng rng(33);
  std::vector<double> rss(9);
  for (double& v : rss) v = -60.0 + 25.0 * rng.normal();  // includes out-of-range values
  std::vector<std::int8_t> values;
  std::vector<double> residual;
  tier.quantize_observation(rss, {}, values, residual);
  ASSERT_EQ(values.size(), tier.padded_links());
  ASSERT_EQ(residual.size(), 9u);
  for (std::size_t i = 0; i < 9; ++i) {
    const double dequant = tier.offset(i) + tier.scale() * static_cast<double>(values[i]);
    EXPECT_EQ(residual[i], std::abs(rss[i] - dequant)) << i;  // exact, clamp excess included
  }
  for (std::size_t i = 9; i < values.size(); ++i) EXPECT_EQ(values[i], 0);
}

TEST(QuantizedTier, MaskedObservationSkipsDeadLinks) {
  const Matrix fp = fixture(6, 12, 4);
  QuantizedTier tier;
  tier.rebuild(fp.view());
  std::vector<double> rss = {-50.0, std::nan(""), -55.0, -60.0, -65.0, -70.0};
  const std::vector<std::uint8_t> usable = {1, 0, 1, 1, 0, 1};
  std::vector<std::int8_t> values;
  std::vector<double> residual;
  tier.quantize_observation(rss, usable, values, residual);
  EXPECT_EQ(values[1], 0);  // the NaN on the dead link never touched the quantizer
  EXPECT_EQ(residual[1], 0.0);
  EXPECT_EQ(residual[4], 0.0);
}

TEST(QuantizedTier, NonFiniteMatrixDisablesTier) {
  Matrix fp = fixture(4, 6, 5);
  fp(2, 3) = std::numeric_limits<double>::quiet_NaN();
  QuantizedTier tier;
  tier.rebuild(fp.view());
  EXPECT_FALSE(tier.ready());
  fp(2, 3) = -55.0;
  tier.rebuild(fp.view());
  EXPECT_TRUE(tier.ready());
}

TEST(QuantizedTier, ConstantMatrixDegeneratesGracefully) {
  const Matrix fp(3, 5, -48.0);
  QuantizedTier tier;
  tier.rebuild(fp.view());
  ASSERT_TRUE(tier.ready());
  EXPECT_EQ(tier.scale(), 1.0);  // fallback scale; all levels 0
  for (std::size_t j = 0; j < 5; ++j)
    for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(tier.cell_data(j)[i], 0);
  std::vector<std::int8_t> values;
  std::vector<double> residual;
  tier.quantize_observation(std::vector<double>(3, -48.0), {}, values, residual);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(residual[i], 0.0);
}

TEST(QuantizedTier, DatabaseRebuildsTierOnUpdate) {
  Matrix fp = fixture(5, 10, 6);
  FingerprintDatabase db(fp, Vector(5, -80.0), 0.0);
  ASSERT_TRUE(db.quantized_tier().ready());
  const double scale_before = db.quantized_tier().scale();
  // Stretch the dynamic range: the rebuilt tier must see the new data.
  Matrix wider = fp;
  wider(0, 0) += 40.0;
  db.update(wider, Vector(5, -80.0), 1.0);
  ASSERT_TRUE(db.quantized_tier().ready());
  EXPECT_GT(db.quantized_tier().scale(), scale_before);
  // And the mirror matches a fresh quantization of the new matrix.
  QuantizedTier fresh;
  fresh.rebuild(wider.view());
  for (std::size_t j = 0; j < wider.cols(); ++j)
    for (std::size_t i = 0; i < fresh.padded_links(); ++i)
      ASSERT_EQ(db.quantized_tier().cell_data(j)[i], fresh.cell_data(j)[i]);
}

// ---- the shared rounding convention (util/quantize.h) ----

TEST(RoundingConvention, TiesRoundAwayFromZero) {
  // Ties-away, NOT banker's rounding: 0.5 -> 1 (ties-even would say 0).
  EXPECT_EQ(round_ties_away(0.5), 1.0);
  EXPECT_EQ(round_ties_away(1.5), 2.0);
  EXPECT_EQ(round_ties_away(2.5), 3.0);
  EXPECT_EQ(round_ties_away(-0.5), -1.0);
  EXPECT_EQ(round_ties_away(-1.5), -2.0);
  EXPECT_EQ(round_ties_away(0.49), 0.0);
  EXPECT_EQ(round_ties_away(-0.49), 0.0);
}

TEST(RoundingConvention, NoiseModelUsesSharedHelper) {
  NoiseModel model(NoiseConfig{.stddev_db = 0.0, .quantization_step_db = 1.0});
  EXPECT_EQ(model.quantize(-59.5), -60.0);  // away from zero
  EXPECT_EQ(model.quantize(-58.5), -59.0);
  EXPECT_EQ(model.quantize(-59.49), -59.0);
  EXPECT_EQ(model.quantize(-59.0), -59.0);
  // Step 0 disables quantization entirely.
  NoiseModel off(NoiseConfig{.stddev_db = 0.0, .quantization_step_db = 0.0});
  EXPECT_EQ(off.quantize(-59.37), -59.37);
  // Half-dB step, same convention.
  NoiseModel half(NoiseConfig{.stddev_db = 0.0, .quantization_step_db = 0.5});
  EXPECT_EQ(half.quantize(-59.25), -59.5);  // tie at half a step, away from zero
}

TEST(RoundingConvention, IntegerDbmSurveyRoundTripsExactly) {
  // An integer-dBm survey (NoiseModel quantization_step_db = 1) whose
  // per-link range spans exactly 254 integer levels gives the tier
  // integer offsets and scale 1.0 -- every stored level then
  // dequantizes to the original integer with ZERO residual.  This is
  // the satellite guarantee: the two quantizers' shared ties-away
  // convention means integer readings never drift one LSB through the
  // chain NoiseModel -> survey -> tier -> dequantize.
  const std::size_t links = 4, grids = 257;
  NoiseModel reporting(NoiseConfig{.stddev_db = 0.0, .quantization_step_db = 1.0});
  Matrix fp(links, grids);
  Rng rng(7);
  for (std::size_t i = 0; i < links; ++i) {
    for (std::size_t j = 0; j < grids; ++j) {
      // Integer dBm in [-80 - 127, -80 + 127]; endpoints planted so the
      // half-range is exactly 127 around the snapped offset.
      const double raw = j == 0 ? -80.0 - 127.0
                                : (j == 1 ? -80.0 + 127.0
                                          : std::floor(-80.0 + rng.uniform(-127.0, 128.0)));
      fp(i, j) = reporting.quantize(raw);
      ASSERT_EQ(fp(i, j), std::round(fp(i, j)));  // integer by construction
    }
  }
  QuantizedTier tier;
  tier.rebuild(fp.view());
  ASSERT_TRUE(tier.ready());
  EXPECT_EQ(tier.scale(), 1.0);
  for (std::size_t i = 0; i < links; ++i) EXPECT_EQ(tier.offset(i), std::round(tier.offset(i)));
  for (std::size_t j = 0; j < grids; ++j) {
    for (std::size_t i = 0; i < links; ++i) {
      const double dequant = tier.offset(i) + static_cast<double>(tier.cell_data(j)[i]);
      EXPECT_EQ(dequant, fp(i, j)) << "LSB drift at " << i << "," << j;
    }
  }
  // Observation side of the same guarantee: integer readings quantize
  // with zero residual, so the matcher's error bound stays tight.
  std::vector<std::int8_t> values;
  std::vector<double> residual;
  for (std::size_t j = 0; j < 5; ++j) {
    tier.quantize_observation(fp.col(j), {}, values, residual);
    for (std::size_t i = 0; i < links; ++i) EXPECT_EQ(residual[i], 0.0);
  }
}

TEST(RoundingConvention, RequantizationIsStable) {
  // Quantize -> dequantize -> quantize must be a fixed point for any
  // scale (the "no off-by-one-LSB drift" half of the satellite).
  Rng rng(8);
  for (double scale : {1.0, 0.5, 0.37}) {
    for (int trial = 0; trial < 200; ++trial) {
      const double offset = std::round(rng.uniform(-90.0, -30.0));
      const double v = rng.uniform(-130.0, 130.0) * scale + offset;
      const std::int8_t q1 = QuantizedTier::quantize_level(v, offset, scale);
      const double dequant = offset + scale * static_cast<double>(q1);
      const std::int8_t q2 = QuantizedTier::quantize_level(dequant, offset, scale);
      EXPECT_EQ(q1, q2) << "scale=" << scale << " v=" << v;
    }
  }
}

}  // namespace
}  // namespace tafloc
