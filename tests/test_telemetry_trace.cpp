// Request tracing: record/ring/slow-log semantics, sampling decisions,
// scope + stage capture, JSONL export, and the accounting counters the
// daemon's introspection surfaces are built on.
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "tafloc/telemetry/metrics.h"
#include "tafloc/telemetry/trace.h"

namespace tafloc {
namespace {

TraceRecord make_record(std::uint64_t seq, std::uint64_t total_ns = 1000) {
  TraceRecord r;
  r.trace_id = seq + 1;
  r.seq = seq;
  r.total_ns = total_ns;
  r.set_state("serving");
  return r;
}

TEST(TraceRecord, StateIsTruncatedNotOverrun) {
  TraceRecord r;
  r.set_state("a-zone-state-name-much-longer-than-the-inline-buffer");
  EXPECT_LT(std::strlen(r.state), sizeof r.state);
  r.set_state("serving");
  EXPECT_STREQ(r.state, "serving");
}

TEST(TraceRecord, StageOverflowIsCountedNeverSilent) {
  TraceRecord r;
  for (std::uint32_t i = 0; i < kTraceMaxStages + 5; ++i) {
    r.add_stage("stage", 0, i, 1);
  }
  EXPECT_EQ(r.stage_count, kTraceMaxStages);
  EXPECT_EQ(r.stages_dropped, 5u);
}

TEST(TraceRing, RetainsNewestAndCountsOverwrites) {
  TraceRing ring(4);  // already a power of two.
  EXPECT_EQ(ring.capacity(), 4u);
  for (std::uint64_t i = 0; i < 10; ++i) ring.push(make_record(i));
  EXPECT_EQ(ring.pushed(), 10u);
  EXPECT_EQ(ring.overwritten(), 6u);

  const std::vector<TraceRecord> all = ring.snapshot();
  ASSERT_EQ(all.size(), 4u);
  // Oldest first, and only the newest four survive.
  for (std::size_t i = 0; i < all.size(); ++i) EXPECT_EQ(all[i].seq, 6u + i);

  const std::vector<TraceRecord> two = ring.snapshot(2);
  ASSERT_EQ(two.size(), 2u);
  EXPECT_EQ(two[0].seq, 8u);
  EXPECT_EQ(two[1].seq, 9u);
}

TEST(TraceRing, CapacityRoundsUpToPowerOfTwo) {
  TraceRing ring(5);
  EXPECT_EQ(ring.capacity(), 8u);
}

TEST(TraceRing, ZeroCapacityIsInert) {
  TraceRing ring(0);
  ring.push(make_record(0));
  EXPECT_EQ(ring.pushed(), 0u);
  EXPECT_TRUE(ring.snapshot().empty());
}

TEST(SlowLog, AppendOnlyBoundedWithDropCounter) {
  SlowLog log(2);
  EXPECT_TRUE(log.append(make_record(0)));
  EXPECT_TRUE(log.append(make_record(1)));
  EXPECT_FALSE(log.append(make_record(2)));  // full: dropped, not evicted.
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.dropped(), 1u);
  const std::vector<TraceRecord> entries = log.entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].seq, 0u);  // earliest evidence is preserved.
  EXPECT_EQ(entries[1].seq, 1u);
}

TEST(Tracer, PeriodicSamplerTakesEveryNth) {
  TracerConfig config;
  config.sample_every = 3;
  Tracer tracer(config);
  EXPECT_TRUE(tracer.active());
  EXPECT_TRUE(tracer.should_sample({}, 0));
  EXPECT_FALSE(tracer.should_sample({}, 1));
  EXPECT_FALSE(tracer.should_sample({}, 2));
  EXPECT_TRUE(tracer.should_sample({}, 3));
}

TEST(Tracer, ClientForcedSamplingBeatsThePeriodicSampler) {
  TracerConfig config;
  config.sample_every = 0;  // server-side sampling off...
  Tracer tracer(config);
  TraceContext forced;
  forced.sampled = true;
  EXPECT_TRUE(tracer.should_sample(forced, 1));  // ...client still wins.
  EXPECT_FALSE(tracer.should_sample({}, 1));

  TracerConfig no_ring;
  no_ring.ring_capacity = 0;
  no_ring.slow_log_capacity = 0;
  Tracer inert(no_ring);
  EXPECT_FALSE(inert.should_sample(forced, 1));  // nowhere to put it.
  EXPECT_FALSE(inert.active());
}

TEST(Tracer, FinishRoutesToRingAndSlowLog) {
  MetricRegistry reg;  // enabled by default.
  TracerConfig config;
  config.sample_every = 1;
  config.slow_threshold_ms = 1.0;
  config.slow_log_capacity = 4;
  Tracer tracer(config, &reg);

  TraceRecord fast = make_record(0, 100'000);  // 0.1 ms.
  fast.sampled = true;
  tracer.finish(fast);
  TraceRecord slow = make_record(1, 5'000'000);  // 5 ms > 1 ms threshold.
  slow.sampled = true;
  tracer.finish(slow);

  EXPECT_EQ(tracer.ring().pushed(), 2u);
  ASSERT_EQ(tracer.slow_log().size(), 1u);
  EXPECT_EQ(tracer.slow_log().entries()[0].seq, 1u);
  EXPECT_TRUE(tracer.slow_log().entries()[0].slow);
  EXPECT_EQ(reg.counter("trace.sampled").value(), 2u);
  EXPECT_EQ(reg.counter("trace.slow").value(), 1u);
}

TEST(Tracer, ScopeCapturesStagesWithNestingDepth) {
  TracerConfig config;
  config.sample_every = 1;
  Tracer tracer(config);
  {
    TraceScope scope(tracer, {}, 250);
    ASSERT_TRUE(scope.capturing());
    {
      TraceStage outer("outer");
      TraceStage inner("inner");
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    scope.record().served = true;
  }
  const std::vector<TraceRecord> records = tracer.ring().snapshot();
  ASSERT_EQ(records.size(), 1u);
  const TraceRecord& r = records[0];
  EXPECT_EQ(r.queue_wait_ns, 250u);
  EXPECT_TRUE(r.served);
  EXPECT_GT(r.total_ns, 0u);
  ASSERT_EQ(r.stage_count, 2u);
  // Destruction order closes inner first.
  EXPECT_STREQ(r.stages[0].name, "inner");
  EXPECT_EQ(r.stages[0].depth, 1u);
  EXPECT_STREQ(r.stages[1].name, "outer");
  EXPECT_EQ(r.stages[1].depth, 0u);
  EXPECT_LE(r.stages[1].start_ns + r.stages[1].duration_ns, r.total_ns);
}

TEST(Tracer, InactiveTracerRecordsNothingAndInstallsNoThreadState) {
  TracerConfig config;
  config.ring_capacity = 0;
  config.slow_log_capacity = 0;
  Tracer tracer(config);
  ASSERT_FALSE(tracer.active());
  {
    TraceScope scope(tracer, {}, 0);
    EXPECT_FALSE(scope.capturing());
    TraceStage stage("ignored");  // must be a no-op, not a crash.
  }
  EXPECT_EQ(tracer.ring().pushed(), 0u);
  EXPECT_EQ(tracer.requests(), 0u);
}

TEST(Tracer, UnsampledRequestStillFeedsTheSlowLog) {
  TracerConfig config;
  config.sample_every = 0;          // ring sampling off...
  config.slow_threshold_ms = 0.001; // ...but everything is "slow".
  Tracer tracer(config);
  {
    TraceScope scope(tracer, {}, 0);
    EXPECT_TRUE(scope.capturing());  // stages wanted for the slow log.
    TraceStage stage("work");
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  EXPECT_EQ(tracer.ring().pushed(), 0u);
  ASSERT_EQ(tracer.slow_log().size(), 1u);
  EXPECT_GE(tracer.slow_log().entries()[0].stage_count, 1u);
}

TEST(Tracer, TraceIdDefaultsToOrdinalPlusOne) {
  TracerConfig config;
  config.sample_every = 1;
  Tracer tracer(config);
  { TraceScope scope(tracer, {}, 0); }
  TraceContext ctx;
  ctx.trace_id = 777;
  { TraceScope scope(tracer, ctx, 0); }
  const std::vector<TraceRecord> records = tracer.ring().snapshot();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].trace_id, 1u);    // seq 0 -> id 1, never 0.
  EXPECT_EQ(records[1].trace_id, 777u);  // client id wins.
}

// Minimal structural JSON check: balanced braces/brackets outside
// strings, no raw control bytes.  The CI smoke runs every exported line
// through a real JSON parser; this keeps unit feedback local.
void expect_plausible_json_line(const std::string& line) {
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    ASSERT_GE(static_cast<unsigned char>(c), 0x20u) << "raw control byte at " << i;
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_FALSE(in_string);
  EXPECT_EQ(depth, 0);
}

TEST(TraceJson, RecordLineIsSelfContainedAndEscaped) {
  TraceRecord r = make_record(3, 42'000);
  r.queue_wait_ns = 77;
  r.fault_injected = true;
  r.add_stage("zone.serve", 0, 10, 30'000);
  const std::string line = Tracer::record_json(r, "office \"A\"\n");
  ASSERT_FALSE(line.empty());
  EXPECT_EQ(line.back(), '\n');
  expect_plausible_json_line(line.substr(0, line.size() - 1));
  EXPECT_NE(line.find("\"type\":\"trace\""), std::string::npos);
  EXPECT_NE(line.find("\"zone\":\"office \\\"A\\\"\\n\""), std::string::npos);
  EXPECT_NE(line.find("\"trace_id\":4"), std::string::npos);
  EXPECT_NE(line.find("\"queue_wait_ns\":77"), std::string::npos);
  EXPECT_NE(line.find("\"fault_injected\":true"), std::string::npos);
  EXPECT_NE(line.find("\"name\":\"zone.serve\""), std::string::npos);
}

TEST(TraceJson, RingAndSlowExportsAreOneLinePerRecord) {
  TracerConfig config;
  config.sample_every = 1;
  config.slow_threshold_ms = 0.0005;
  config.zone = "lab";
  Tracer tracer(config);
  for (int i = 0; i < 3; ++i) {
    TraceScope scope(tracer, {}, 0);
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  const std::string ring = tracer.ring_json();
  const std::string slow = tracer.slow_json();
  int ring_lines = 0;
  for (char c : ring) ring_lines += c == '\n';
  int slow_lines = 0;
  for (char c : slow) slow_lines += c == '\n';
  EXPECT_EQ(ring_lines, 3);
  EXPECT_EQ(slow_lines, 3);
  EXPECT_NE(ring.find("\"zone\":\"lab\""), std::string::npos);
}

TEST(Tracer, AccountingCountersLandInTheRegistry) {
  MetricRegistry reg;  // enabled by default.
  TracerConfig config;
  config.sample_every = 2;
  Tracer tracer(config, &reg);
  for (int i = 0; i < 4; ++i) {
    TraceScope scope(tracer, {}, 0);
  }
  EXPECT_EQ(reg.counter("trace.requests").value(), 4u);
  EXPECT_EQ(reg.counter("trace.sampled").value(), 2u);  // seqs 0 and 2.
  EXPECT_EQ(tracer.requests(), 4u);
}

}  // namespace
}  // namespace tafloc
