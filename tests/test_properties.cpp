// Property-based sweeps over seeds and sizes: invariants that must hold
// for every draw, not just the fixtures used elsewhere.
#include <gtest/gtest.h>

#include <cmath>

#include "tafloc/fingerprint/distortion.h"
#include "tafloc/fingerprint/reference.h"
#include "tafloc/linalg/ops.h"
#include "tafloc/linalg/svd.h"
#include "tafloc/recon/lrr.h"
#include "tafloc/rf/drift.h"
#include "tafloc/sim/scenario.h"

namespace tafloc {
namespace {

// ---------- property: fingerprint matrices are approximately low rank ----------

class FingerprintRankProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FingerprintRankProperty, PaperRoomMatrixIsApproxLowRank) {
  const Scenario s = Scenario::paper_room(GetParam());
  Rng rng(GetParam());
  const Matrix x0 = s.collector().survey_all(0.0, rng);
  const SvdResult svd = svd_decompose(x0);
  // Energy captured by the top-6 singular values must dominate
  // (the paper's property i: X is approximately low rank).
  double total = 0.0, top = 0.0;
  for (std::size_t i = 0; i < svd.sigma.size(); ++i) {
    total += svd.sigma[i] * svd.sigma[i];
    if (i < 6) top += svd.sigma[i] * svd.sigma[i];
  }
  EXPECT_GT(top / total, 0.99);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FingerprintRankProperty,
                         ::testing::Values(1u, 7u, 13u, 101u, 999u));

// ---------- property: drift anchors hold for every seed ----------

class DriftAnchorProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DriftAnchorProperty, MeanDriftHitsPaperAnchors) {
  const TemporalDriftModel model(10, DriftConfig{}, GetParam());
  double mean5 = 0.0, mean45 = 0.0;
  for (std::size_t i = 0; i < 10; ++i) {
    mean5 += std::abs(model.ambient_offset_db(i, 5.0));
    mean45 += std::abs(model.ambient_offset_db(i, 45.0));
  }
  EXPECT_NEAR(mean5 / 10.0, 2.5, 1e-9);
  EXPECT_NEAR(mean45 / 10.0, 6.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DriftAnchorProperty,
                         ::testing::Values(1u, 2u, 3u, 42u, 1234u, 99999u));

// ---------- property: SVD of random matrices (size sweep) ----------

struct SizeCase {
  std::size_t rows, cols;
};

class SvdRandomProperty : public ::testing::TestWithParam<SizeCase> {};

TEST_P(SvdRandomProperty, DecompositionIsExact) {
  const SizeCase c = GetParam();
  for (std::uint64_t seed : {5u, 55u, 555u}) {
    Rng rng(seed);
    const Matrix a = random_gaussian(c.rows, c.cols, rng);
    const SvdResult svd = svd_decompose(a);
    EXPECT_LT(max_abs_diff(svd.reconstruct(), a), 1e-8)
        << c.rows << "x" << c.cols << " seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SvdRandomProperty,
                         ::testing::Values(SizeCase{2, 2}, SizeCase{3, 8}, SizeCase{8, 3},
                                           SizeCase{10, 10}, SizeCase{10, 96}));

// ---------- property: QR-pivot references reconstruct better than random ----------

class ReferenceQualityProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReferenceQualityProperty, QrPivotAtLeastAsGoodAsUniform) {
  const Scenario s = Scenario::paper_room(GetParam());
  Rng rng(GetParam());
  const Matrix x0 = s.collector().survey_all(0.0, rng);
  const std::size_t n = 10;

  auto residual_for = [&](ReferencePolicy policy) {
    Rng policy_rng(GetParam() + 1);
    const auto refs = select_reference_locations(x0, n, policy, &policy_rng);
    return LrrModel(x0, refs).training_residual();
  };

  const double qr = residual_for(ReferencePolicy::QrPivot);
  const double uniform = residual_for(ReferencePolicy::UniformGrid);
  EXPECT_LE(qr, uniform * 1.35);  // QR pivots should not be clearly worse
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReferenceQualityProperty, ::testing::Values(3u, 17u, 71u));

// ---------- property: distortion fraction is stable across seeds ----------

class DistortionFractionProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DistortionFractionProperty, FractionInPhysicalBand) {
  const Scenario s = Scenario::paper_room(GetParam());
  Rng rng(GetParam() + 7);
  const Matrix x0 = s.collector().survey_all(0.0, rng);
  const Vector ambient = s.collector().ambient_scan(0.0, rng);
  const DistortionMask mask = DistortionDetector().detect_from_data(x0, ambient);
  EXPECT_GT(mask.distorted_fraction(), 0.02);
  EXPECT_LT(mask.distorted_fraction(), 0.5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DistortionFractionProperty,
                         ::testing::Values(11u, 22u, 33u, 44u));

// ---------- property: singular value shrink never increases any sigma ----------

class ShrinkProperty : public ::testing::TestWithParam<double> {};

TEST_P(ShrinkProperty, ShrinkReducesEverySingularValueByTau) {
  const double tau = GetParam();
  Rng rng(31);
  const Matrix a = random_gaussian(7, 9, rng);
  const SvdResult before = svd_decompose(a);
  const SvdResult after = svd_decompose(singular_value_shrink(a, tau));
  for (std::size_t i = 0; i < before.sigma.size(); ++i) {
    EXPECT_NEAR(after.sigma[i], std::max(before.sigma[i] - tau, 0.0), 1e-7);
  }
}

INSTANTIATE_TEST_SUITE_P(Taus, ShrinkProperty, ::testing::Values(0.0, 0.5, 1.5, 4.0, 100.0));

}  // namespace
}  // namespace tafloc
