#include "tafloc/rf/channel.h"

#include <gtest/gtest.h>

#include <cmath>

#include "tafloc/util/stats.h"

namespace tafloc {
namespace {

std::vector<Segment> two_links() {
  return {Segment{{0.0, 1.0}, {6.0, 1.0}}, Segment{{0.0, 2.0}, {6.0, 2.0}}};
}

TEST(Channel, RejectsEmptyLinkSet) {
  EXPECT_THROW(Channel({}, ChannelConfig{}, 1), std::invalid_argument);
}

TEST(Channel, RejectsZeroLengthLink) {
  std::vector<Segment> links{Segment{{1.0, 1.0}, {1.0, 1.0}}};
  EXPECT_THROW(Channel(std::move(links), ChannelConfig{}, 1), std::invalid_argument);
}

TEST(Channel, AmbientMatchesPathLossAtTimeZero) {
  const Channel ch(two_links(), ChannelConfig{}, 1);
  const LogDistancePathLoss pl;
  EXPECT_NEAR(ch.expected_rss(0, std::nullopt, 0.0), pl.rss_dbm(6.0), 1e-12);
}

TEST(Channel, TargetAlwaysAttenuates) {
  const Channel ch(two_links(), ChannelConfig{}, 2);
  const Point2 on_link{3.0, 1.0};
  EXPECT_LT(ch.expected_rss(0, on_link, 0.0), ch.expected_rss(0, std::nullopt, 0.0));
}

TEST(Channel, LosTargetCausesClearDecrease) {
  // The paper's "largely-distorted" premise: blocking the direct path
  // drops RSS well beyond the noise floor.
  const Channel ch(two_links(), ChannelConfig{}, 3);
  const double drop =
      ch.expected_rss(0, std::nullopt, 0.0) - ch.expected_rss(0, Point2{3.0, 1.0}, 0.0);
  EXPECT_GT(drop, 5.0);
}

TEST(Channel, FarTargetAffectsOnlyThroughGhosts) {
  // Far from the LoS the geometric shadowing vanishes; what remains is
  // the multipath ghost response, bounded by its configured amplitude.
  const Channel ch(two_links(), ChannelConfig{}, 4);
  const double drop =
      ch.expected_rss(0, std::nullopt, 0.0) - ch.expected_rss(0, Point2{3.0, 5.5}, 0.0);
  EXPECT_LE(std::abs(drop), ChannelConfig{}.multipath_ghost_db + 0.1);
}

TEST(Channel, FarTargetBarelyAffectsWithoutGhosts) {
  ChannelConfig cfg;
  cfg.multipath_ghost_db = 0.0;
  const Channel ch(two_links(), cfg, 4);
  const double drop =
      ch.expected_rss(0, std::nullopt, 0.0) - ch.expected_rss(0, Point2{3.0, 5.5}, 0.0);
  EXPECT_LT(std::abs(drop), 0.05);
}

TEST(Channel, DriftShiftsAmbientOverTime) {
  const Channel ch(two_links(), ChannelConfig{}, 5);
  const double t0 = ch.expected_rss(0, std::nullopt, 0.0);
  const double t45 = ch.expected_rss(0, std::nullopt, 45.0);
  EXPECT_NE(t0, t45);
  // Mean drift magnitude across links should be ~6 dB at 45 days.
  double mean_abs = 0.0;
  for (std::size_t i = 0; i < ch.num_links(); ++i)
    mean_abs += std::abs(ch.expected_rss(i, std::nullopt, 45.0) -
                         ch.expected_rss(i, std::nullopt, 0.0));
  mean_abs /= static_cast<double>(ch.num_links());
  EXPECT_NEAR(mean_abs, 6.0, 1e-9);
}

TEST(Channel, MeasurementNoiseHasConfiguredSpread) {
  ChannelConfig cfg;
  cfg.noise.stddev_db = 1.2;
  const Channel ch(two_links(), cfg, 6);
  Rng rng(7);
  RunningStats st;
  for (int i = 0; i < 10000; ++i) st.add(ch.measure(0, std::nullopt, 0.0, rng));
  EXPECT_NEAR(st.mean(), ch.expected_rss(0, std::nullopt, 0.0), 0.05);
  EXPECT_NEAR(st.stddev(), 1.2, 0.05);
}

TEST(Channel, MeasureMeanConvergesToExpected) {
  const Channel ch(two_links(), ChannelConfig{}, 8);
  Rng rng(9);
  const double mean100 = ch.measure_mean(0, Point2{2.0, 1.3}, 0.0, 2000, rng);
  EXPECT_NEAR(mean100, ch.expected_rss(0, Point2{2.0, 1.3}, 0.0), 0.1);
}

TEST(Channel, MeasureMeanRejectsZeroSamples) {
  const Channel ch(two_links(), ChannelConfig{}, 10);
  Rng rng(1);
  EXPECT_THROW(ch.measure_mean(0, std::nullopt, 0.0, 0, rng), std::invalid_argument);
}

TEST(Channel, RejectsBadLinkIndex) {
  const Channel ch(two_links(), ChannelConfig{}, 11);
  Rng rng(1);
  EXPECT_THROW(ch.expected_rss(2, std::nullopt, 0.0), std::out_of_range);
  EXPECT_THROW(ch.link(2), std::out_of_range);
}

TEST(Channel, DeterministicAcrossInstances) {
  const Channel a(two_links(), ChannelConfig{}, 12);
  const Channel b(two_links(), ChannelConfig{}, 12);
  EXPECT_DOUBLE_EQ(a.expected_rss(1, Point2{1.0, 1.5}, 30.0),
                   b.expected_rss(1, Point2{1.0, 1.5}, 30.0));
}

TEST(Channel, AttenuationDriftChangesTargetEffectOverTime) {
  // The target-induced part of the fingerprint is NOT a pure row offset:
  // its magnitude wanders with time (what LoLi-IR's priors must absorb).
  const Channel ch(two_links(), ChannelConfig{}, 13);
  const Point2 target{3.0, 1.0};
  const double effect_0 =
      ch.expected_rss(0, std::nullopt, 0.0) - ch.expected_rss(0, target, 0.0);
  const double effect_90 =
      ch.expected_rss(0, std::nullopt, 90.0) - ch.expected_rss(0, target, 90.0);
  EXPECT_NE(effect_0, effect_90);
}

TEST(Channel, PerturbationZeroAtTimeZero) {
  const Channel ch(two_links(), ChannelConfig{}, 20);
  EXPECT_DOUBLE_EQ(ch.perturbation_db(0, {3.0, 1.0}, 0.0), 0.0);
}

TEST(Channel, PerturbationAmplitudeGrowsWithTime) {
  const Channel ch(two_links(), ChannelConfig{}, 21);
  // Sample the field widely; its max amplitude must follow the power law.
  auto max_abs_at = [&](double t) {
    double m = 0.0;
    for (double x = 0.0; x <= 6.0; x += 0.25)
      for (double y = 0.0; y <= 3.0; y += 0.25)
        m = std::max(m, std::abs(ch.perturbation_db(0, {x, y}, t)));
    return m;
  };
  const double a15 = max_abs_at(15.0);
  const double a90 = max_abs_at(90.0);
  EXPECT_GT(a90, a15);
  EXPECT_LE(a90, ChannelConfig{}.perturbation.at_45_days_db * std::pow(2.0, 0.5) + 1e-9);
}

TEST(Channel, PerturbationBoundedByConfiguredAmplitude) {
  ChannelConfig cfg;
  cfg.perturbation.at_45_days_db = 1.0;
  const Channel ch(two_links(), cfg, 22);
  for (double x = 0.0; x <= 6.0; x += 0.5)
    EXPECT_LE(std::abs(ch.perturbation_db(0, {x, 1.5}, 45.0)), 1.0 + 1e-12);
}

TEST(Channel, TargetResponseNonNegativeNearLos) {
  const Channel ch(two_links(), ChannelConfig{}, 23);
  for (double t : {0.0, 45.0, 90.0}) {
    const double resp = ch.target_response_db(0, {3.0, 1.0}, t);
    EXPECT_GT(resp, 2.0);  // LoS blockage always dominates the ripple
  }
}

TEST(Channel, MultiTargetResponsesAdd) {
  const Channel ch(two_links(), ChannelConfig{}, 24);
  const Point2 a{2.0, 1.0};
  const Point2 b{4.5, 1.0};
  const std::vector<Point2> both{a, b};
  const double ambient = ch.expected_rss(0, std::nullopt, 0.0);
  const double with_both = ch.expected_rss_multi(0, both, 0.0);
  const double resp_a = ambient - ch.expected_rss(0, a, 0.0);
  const double resp_b = ambient - ch.expected_rss(0, b, 0.0);
  EXPECT_NEAR(ambient - with_both, resp_a + resp_b, 1e-9);
}

TEST(Channel, MultiTargetEmptyEqualsAmbient) {
  const Channel ch(two_links(), ChannelConfig{}, 25);
  const std::vector<Point2> none;
  EXPECT_DOUBLE_EQ(ch.expected_rss_multi(1, none, 30.0),
                   ch.expected_rss(1, std::nullopt, 30.0));
}

TEST(Channel, SensitivitySpreadWithinBounds) {
  // Responses across links to the same on-LoS geometry differ by at
  // most the configured spread (plus ripple).
  ChannelConfig cfg;
  cfg.static_ripple_db = 0.0;
  cfg.multipath_ghost_db = 0.0;
  cfg.link_sensitivity_spread = 0.3;
  const Channel ch(two_links(), cfg, 26);
  const double r0 = ch.target_response_db(0, {3.0, 1.0}, 0.0);
  const double r1 = ch.target_response_db(1, {3.0, 2.0}, 0.0);
  const double base = 11.0;  // phi 8 + LoS block 3
  EXPECT_GE(r0, base * 0.7 - 1e-9);
  EXPECT_LE(r0, base * 1.3 + 1e-9);
  EXPECT_GE(r1, base * 0.7 - 1e-9);
  EXPECT_LE(r1, base * 1.3 + 1e-9);
}

TEST(Channel, GhostsActFarFromLos) {
  ChannelConfig cfg;
  cfg.multipath_ghost_db = 3.0;
  const Channel ch(two_links(), cfg, 27);
  // Find some far position where the ghost field is non-trivial.
  double best = 0.0;
  for (double x = 0.5; x < 6.0; x += 0.5) {
    const double resp = std::abs(ch.target_response_db(0, {x, 5.5}, 0.0));
    best = std::max(best, resp);
  }
  EXPECT_GT(best, 0.5);
  EXPECT_LE(best, 3.0 + 0.1);
}

TEST(Channel, RejectsBadExtendedConfig) {
  ChannelConfig cfg;
  cfg.link_sensitivity_spread = 1.0;
  EXPECT_THROW(Channel(two_links(), cfg, 1), std::invalid_argument);
  cfg = ChannelConfig{};
  cfg.static_ripple_db = -1.0;
  EXPECT_THROW(Channel(two_links(), cfg, 1), std::invalid_argument);
  cfg = ChannelConfig{};
  cfg.perturbation.spatial_period_m = 0.0;
  EXPECT_THROW(Channel(two_links(), cfg, 1), std::invalid_argument);
}

TEST(Channel, AccessorsExposeComponents) {
  const Channel ch(two_links(), ChannelConfig{}, 14);
  EXPECT_EQ(ch.num_links(), 2u);
  EXPECT_EQ(ch.links().size(), 2u);
  EXPECT_DOUBLE_EQ(ch.link(0).length(), 6.0);
  EXPECT_EQ(ch.drift().num_links(), 2u);
}

}  // namespace
}  // namespace tafloc
