#include "tafloc/exec/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "tafloc/exec/exec_config.h"

namespace tafloc {
namespace {

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, hits.size(), 7, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < hits.size(); ++i)
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ParallelForHandlesEmptyAndTinyRanges) {
  ThreadPool pool(4);
  int calls = 0;
  pool.parallel_for(5, 5, 1, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::vector<int> one(1, 0);
  pool.parallel_for(0, 1, 100, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) one[i] = 1;
  });
  EXPECT_EQ(one[0], 1);
}

TEST(ThreadPool, SizeOnePoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  const auto caller = std::this_thread::get_id();
  pool.parallel_for(0, 10, 1, [&](std::size_t, std::size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

TEST(ThreadPool, NestedLoopsRunInlineWithoutDeadlock) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64 * 8);
  pool.parallel_for(0, 64, 1, [&](std::size_t b0, std::size_t b1) {
    EXPECT_TRUE(ThreadPool::in_pool_task());
    for (std::size_t i = b0; i < b1; ++i) {
      pool.parallel_for(0, 8, 1, [&](std::size_t j0, std::size_t j1) {
        for (std::size_t j = j0; j < j1; ++j) hits[i * 8 + j].fetch_add(1);
      });
    }
  });
  for (std::size_t i = 0; i < hits.size(); ++i)
    EXPECT_EQ(hits[i].load(), 1) << "slot " << i;
  EXPECT_FALSE(ThreadPool::in_pool_task());
}

TEST(ThreadPool, ExceptionsPropagateToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(0, 100, 1,
                                 [&](std::size_t b, std::size_t) {
                                   if (b >= 50) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  // The pool must remain usable after a failed batch.
  std::atomic<int> count{0};
  pool.parallel_for(0, 10, 1, [&](std::size_t b, std::size_t e) {
    count.fetch_add(static_cast<int>(e - b));
  });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, ReduceMatchesSequentialSumAtAnyPoolSize) {
  std::vector<double> v(997);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = std::sin(static_cast<double>(i)) * 1e3;
  const auto map = [&](std::size_t lo, std::size_t hi) {
    double s = 0.0;
    for (std::size_t i = lo; i < hi; ++i) s += v[i];
    return s;
  };
  const auto combine = [](double a, double b) { return a + b; };

  ThreadPool p1(1);
  const double r1 = p1.parallel_reduce(0, v.size(), 64, 0.0, map, combine);
  ThreadPool p8(8);
  const double r8 = p8.parallel_reduce(0, v.size(), 64, 0.0, map, combine);
  // Chunk boundaries depend only on the grain: bitwise-equal results.
  EXPECT_EQ(r1, r8);
}

TEST(ThreadPool, GlobalPoolResizes) {
  const std::size_t before = global_thread_count();
  set_global_threads(3);
  EXPECT_EQ(global_thread_count(), 3u);
  EXPECT_EQ(ThreadPool::global().size(), 3u);
  set_global_threads(1);
  EXPECT_EQ(global_thread_count(), 1u);
  set_global_threads(before);
}

TEST(ExecConfig, ExplicitThreadCountWins) {
  ExecConfig c;
  c.threads = 5;
  EXPECT_EQ(resolve_thread_count(c), 5u);
}

TEST(ExecConfig, AutomaticCountIsAtLeastOne) {
  EXPECT_GE(resolve_thread_count(ExecConfig{}), 1u);
}

}  // namespace
}  // namespace tafloc
