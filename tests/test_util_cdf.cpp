#include "tafloc/util/cdf.h"

#include <gtest/gtest.h>

#include <vector>

#include "tafloc/util/rng.h"

namespace tafloc {
namespace {

TEST(EmpiricalCdf, RejectsEmptySample) {
  const std::vector<double> xs;
  EXPECT_THROW(EmpiricalCdf{xs}, std::invalid_argument);
}

TEST(EmpiricalCdf, StepValues) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  const EmpiricalCdf cdf(xs);
  EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.at(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.at(4.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.at(100.0), 1.0);
}

TEST(EmpiricalCdf, HandlesDuplicates) {
  const std::vector<double> xs{2.0, 2.0, 2.0, 5.0};
  const EmpiricalCdf cdf(xs);
  EXPECT_DOUBLE_EQ(cdf.at(2.0), 0.75);
  EXPECT_DOUBLE_EQ(cdf.at(1.9), 0.0);
}

TEST(EmpiricalCdf, MeanMinMax) {
  const std::vector<double> xs{3.0, 1.0, 2.0};
  const EmpiricalCdf cdf(xs);
  EXPECT_DOUBLE_EQ(cdf.mean(), 2.0);
  EXPECT_DOUBLE_EQ(cdf.min(), 1.0);
  EXPECT_DOUBLE_EQ(cdf.max(), 3.0);
  EXPECT_EQ(cdf.size(), 3u);
}

TEST(EmpiricalCdf, QuantileInvertsAt) {
  const std::vector<double> xs{10.0, 20.0, 30.0, 40.0, 50.0};
  const EmpiricalCdf cdf(xs);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.2), 10.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 30.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 50.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 10.0);
}

TEST(EmpiricalCdf, MedianOfKnownSample) {
  const std::vector<double> xs{1.0, 5.0, 9.0};
  EXPECT_DOUBLE_EQ(EmpiricalCdf(xs).median(), 5.0);
}

TEST(EmpiricalCdf, QuantileRejectsOutOfRange) {
  const std::vector<double> xs{1.0};
  const EmpiricalCdf cdf(xs);
  EXPECT_THROW(cdf.quantile(-0.1), std::invalid_argument);
  EXPECT_THROW(cdf.quantile(1.1), std::invalid_argument);
}

TEST(EmpiricalCdf, CurveIsMonotoneAndCoversRange) {
  Rng rng(5);
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) xs.push_back(rng.normal(0.0, 2.0));
  const EmpiricalCdf cdf(xs);
  const auto curve = cdf.curve(-8.0, 8.0, 33);
  ASSERT_EQ(curve.size(), 33u);
  EXPECT_DOUBLE_EQ(curve.front().first, -8.0);
  EXPECT_DOUBLE_EQ(curve.back().first, 8.0);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i - 1].second, curve[i].second);
  }
  EXPECT_NEAR(curve.back().second, 1.0, 1e-12);
}

TEST(EmpiricalCdf, CurveRejectsBadArguments) {
  const std::vector<double> xs{1.0, 2.0};
  const EmpiricalCdf cdf(xs);
  EXPECT_THROW(cdf.curve(0.0, 1.0, 1), std::invalid_argument);
  EXPECT_THROW(cdf.curve(1.0, 1.0, 10), std::invalid_argument);
}

TEST(EmpiricalCdf, SortedSamplesAreSorted) {
  const std::vector<double> xs{4.0, -1.0, 2.5};
  const EmpiricalCdf cdf(xs);
  const auto& s = cdf.sorted_samples();
  EXPECT_DOUBLE_EQ(s[0], -1.0);
  EXPECT_DOUBLE_EQ(s[1], 2.5);
  EXPECT_DOUBLE_EQ(s[2], 4.0);
}

TEST(EmpiricalCdf, QuantileAtMatchesRoundTrip) {
  Rng rng(77);
  std::vector<double> xs;
  for (int i = 0; i < 200; ++i) xs.push_back(rng.uniform(0.0, 1.0));
  const EmpiricalCdf cdf(xs);
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    const double v = cdf.quantile(q);
    EXPECT_GE(cdf.at(v), q - 1e-12);
  }
}

}  // namespace
}  // namespace tafloc
