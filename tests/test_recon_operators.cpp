#include "tafloc/recon/operators.h"

#include <gtest/gtest.h>

#include "tafloc/linalg/ops.h"
#include "tafloc/util/rng.h"

namespace tafloc {
namespace {

/// All-horizontal deployment (two_sided): continuity reduces to
/// east-west pairs for every link, similarity to consecutive links.
Deployment horizontal_deployment(std::size_t num_links = 4) {
  return Deployment::two_sided(1.8, 1.2, 0.6, num_links);
}

TEST(ContinuityPairs, CountForHorizontalLinks) {
  // 3x2 grid: 2 east-west pairs per cell row * 2 rows; per link.
  const Deployment d = horizontal_deployment(5);
  const auto pairs = continuity_pairs(d);
  EXPECT_EQ(pairs.size(), 2u * 2u * 5u);
}

TEST(ContinuityPairs, HorizontalPairsAreEastWestNeighbours) {
  const Deployment d = horizontal_deployment(2);
  const auto pairs = continuity_pairs(d);
  const GridMap& grid = d.grid();
  for (const PairwiseTerm& p : pairs) {
    EXPECT_EQ(p.row1, p.row2);                          // same link
    EXPECT_EQ(p.col2, p.col1 + 1);                      // east neighbour
    EXPECT_EQ(grid.iy_of(p.col1), grid.iy_of(p.col2));  // same cell row
  }
}

TEST(ContinuityPairs, VerticalLinksGetNorthSouthPairs) {
  const Deployment d = Deployment::perimeter(1.8, 1.2, 0.6, 4);
  const GridMap& grid = d.grid();
  const auto pairs = continuity_pairs(d);
  bool saw_vertical_pair = false;
  for (const PairwiseTerm& p : pairs) {
    EXPECT_EQ(p.row1, p.row2);
    if (!d.link_is_horizontal(p.row1)) {
      saw_vertical_pair = true;
      EXPECT_EQ(grid.ix_of(p.col1), grid.ix_of(p.col2));      // same column
      EXPECT_EQ(grid.iy_of(p.col2), grid.iy_of(p.col1) + 1);  // north neighbour
    }
  }
  EXPECT_TRUE(saw_vertical_pair);
}

TEST(ContinuityPairs, MaskRestrictsToDistortedSupport) {
  const Deployment d = Deployment::two_sided(1.8, 0.6, 0.6, 2);  // 3x1 grid
  DistortionMask mask{Matrix(2, 3, 1.0), Matrix(2, 3, 0.0)};
  mask.distorted(0, 0) = 1.0;
  mask.distorted(0, 1) = 1.0;  // only link 0's pair (0,1) fully distorted
  const auto pairs = continuity_pairs(d, &mask);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].row1, 0u);
  EXPECT_EQ(pairs[0].col1, 0u);
  EXPECT_EQ(pairs[0].col2, 1u);
}

TEST(ContinuityPairs, MaskShapeValidated) {
  const Deployment d = horizontal_deployment(2);
  DistortionMask mask{Matrix(3, 3, 1.0), Matrix(3, 3, 0.0)};
  EXPECT_THROW(continuity_pairs(d, &mask), std::invalid_argument);
}

TEST(SimilarityPairs, UsesAdjacentParallelLinks) {
  const Deployment d = horizontal_deployment(4);  // 4 parallel links
  const auto pairs = similarity_pairs(d);
  // adjacent pairs: (0,1), (1,2), (2,3); 6 grids each.
  EXPECT_EQ(pairs.size(), 3u * d.num_grids());
  for (const PairwiseTerm& p : pairs) {
    EXPECT_EQ(p.col1, p.col2);
    EXPECT_EQ(p.row2, p.row1 + 1);
  }
}

TEST(SimilarityPairs, NeverMixesOrientations) {
  const Deployment d = Deployment::perimeter(2.4, 2.4, 0.6, 6);
  for (const PairwiseTerm& p : similarity_pairs(d)) {
    EXPECT_EQ(d.link_is_horizontal(p.row1), d.link_is_horizontal(p.row2));
  }
}

TEST(SimilarityPairs, MaskRestricts) {
  const Deployment d = horizontal_deployment(3);
  const std::size_t n = d.num_grids();
  DistortionMask mask{Matrix(3, n, 1.0), Matrix(3, n, 0.0)};
  mask.distorted(0, 0) = 1.0;
  mask.distorted(1, 0) = 1.0;
  const auto pairs = similarity_pairs(d, &mask);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].row1, 0u);
  EXPECT_EQ(pairs[0].row2, 1u);
  EXPECT_EQ(pairs[0].col1, 0u);
}

TEST(AdjacentLinkPairs, TwoSidedChain) {
  const Deployment d = horizontal_deployment(4);
  const auto pairs = d.adjacent_link_pairs();
  // Links evenly spaced: nearest parallel neighbour chains them.
  ASSERT_EQ(pairs.size(), 3u);
  for (const auto& [a, b] : pairs) EXPECT_EQ(b, a + 1);
}

TEST(AdjacentLinkPairs, PerimeterSeparatesGroups) {
  const Deployment d = Deployment::perimeter(2.4, 2.4, 0.6, 8);  // 4 h + 4 v
  for (const auto& [a, b] : d.adjacent_link_pairs()) {
    EXPECT_EQ(d.link_is_horizontal(a), d.link_is_horizontal(b));
  }
}

TEST(ContinuityOperator, EnergyMatchesPairwiseSumForHorizontalLinks) {
  const Deployment d = horizontal_deployment(4);
  Rng rng(1);
  const Matrix x = random_gaussian(4, d.num_grids(), rng);
  const Matrix g = continuity_operator(d.grid());
  const Matrix xg = x * g;
  const double op_energy = xg.frobenius_norm() * xg.frobenius_norm();
  const double pair_energy = pairwise_energy(x, continuity_pairs(d));
  EXPECT_NEAR(op_energy, pair_energy, 1e-9);
}

TEST(SimilarityOperator, EnergyMatchesPairwiseSumForParallelLinks) {
  const Deployment d = horizontal_deployment(5);
  Rng rng(2);
  const Matrix x = random_gaussian(5, d.num_grids(), rng);
  const Matrix h = similarity_operator(5);
  const Matrix hx = h * x;
  const double op_energy = hx.frobenius_norm() * hx.frobenius_norm();
  const double pair_energy = pairwise_energy(x, similarity_pairs(d));
  EXPECT_NEAR(op_energy, pair_energy, 1e-9);
}

TEST(ContinuityOperator, AnnihilatesRowConstantMatrices) {
  const GridMap grid(2.4, 1.2, 0.6);
  Matrix x(3, grid.num_cells());
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < grid.num_cells(); ++j) x(i, j) = static_cast<double>(i);
  const Matrix xg = x * continuity_operator(grid);
  EXPECT_LT(xg.max_abs(), 1e-12);
}

TEST(SimilarityOperator, AnnihilatesColumnConstantMatrices) {
  Matrix x(4, 5);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 5; ++j) x(i, j) = static_cast<double>(j);
  const Matrix hx = similarity_operator(4) * x;
  EXPECT_LT(hx.max_abs(), 1e-12);
}

TEST(PairwiseEnergy, KnownValue) {
  const Matrix x = Matrix::from_rows({{1.0, 4.0}});
  const std::vector<PairwiseTerm> pairs{{0, 0, 0, 1}};
  EXPECT_DOUBLE_EQ(pairwise_energy(x, pairs), 9.0);
}

TEST(PairwiseEnergy, EmptyPairsIsZero) {
  const Matrix x(2, 2, 1.0);
  EXPECT_DOUBLE_EQ(pairwise_energy(x, {}), 0.0);
}

TEST(Operators, SimilarityOperatorRejectsSingleLink) {
  EXPECT_THROW(similarity_operator(1), std::invalid_argument);
}

}  // namespace
}  // namespace tafloc
