// Non-owning view layer: construction, slicing, and the view-based
// destination-passing kernels.  Bit-identity across thread counts is
// covered in test_exec_determinism.cpp; this file pins shapes, strides,
// values and the copy/gather utilities.
//
// Dangling safety is a contract, not a runtime check: a view is valid
// only while the viewed storage is alive and unreallocated (view.h).
// Tests here therefore only take views of matrices that outlive them.
#include "tafloc/linalg/view.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "tafloc/linalg/matrix.h"

namespace tafloc {
namespace {

Matrix iota_matrix(std::size_t rows, std::size_t cols) {
  Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c) m(r, c) = static_cast<double>(r * cols + c);
  return m;
}

TEST(MatrixView, WholeMatrixViewSharesStorage) {
  Matrix m = iota_matrix(3, 4);
  ConstMatrixView v = m.view();
  EXPECT_EQ(v.rows(), 3u);
  EXPECT_EQ(v.cols(), 4u);
  EXPECT_EQ(v.row_stride(), 4u);
  EXPECT_TRUE(v.contiguous());
  EXPECT_EQ(v.data(), m.data().data());
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 4; ++c) EXPECT_DOUBLE_EQ(v(r, c), m(r, c));
}

TEST(MatrixView, MutableViewWritesThrough) {
  Matrix m(2, 2, 0.0);
  MatrixView v = m.view();
  v(1, 0) = 7.0;
  v.fill(3.0);
  EXPECT_DOUBLE_EQ(m(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 3.0);
}

TEST(MatrixView, BlockViewIsStrided) {
  const Matrix m = iota_matrix(4, 5);
  ConstMatrixView b = m.block_view(1, 2, 2, 3);
  EXPECT_EQ(b.rows(), 2u);
  EXPECT_EQ(b.cols(), 3u);
  EXPECT_EQ(b.row_stride(), 5u);
  EXPECT_FALSE(b.contiguous());
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(b(r, c), m(1 + r, 2 + c));
  EXPECT_THROW(m.block_view(1, 2, 4, 3), std::invalid_argument);
}

TEST(MatrixView, ColumnsViewCoversContiguousRange) {
  const Matrix m = iota_matrix(3, 6);
  ConstMatrixView v = m.columns_view(2, 3);
  EXPECT_EQ(v.rows(), 3u);
  EXPECT_EQ(v.cols(), 3u);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(v(r, c), m(r, 2 + c));
}

TEST(MatrixView, ColViewStridesDownTheColumn) {
  const Matrix m = iota_matrix(4, 3);
  ConstVectorView col = m.col_view(1);
  EXPECT_EQ(col.size(), 4u);
  EXPECT_EQ(col.stride(), 3u);
  EXPECT_FALSE(col.contiguous());
  const Vector copy = m.col(1);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(col[i], copy[i]);
  EXPECT_EQ(col.to_vector(), copy);
}

TEST(MatrixView, RowSpanIsContiguous) {
  const Matrix m = iota_matrix(3, 4);
  const std::span<const double> row = m.row_span(2);
  ASSERT_EQ(row.size(), 4u);
  for (std::size_t c = 0; c < 4; ++c) EXPECT_DOUBLE_EQ(row[c], m(2, c));
}

TEST(MatrixView, OwningCopyFromStridedView) {
  const Matrix m = iota_matrix(4, 5);
  const Matrix copy(m.block_view(1, 1, 2, 3));
  EXPECT_EQ(copy, m.submatrix(1, 1, 2, 3));
}

TEST(MatrixView, SetColFromStridedView) {
  const Matrix src = iota_matrix(3, 4);
  Matrix dst(3, 2, 0.0);
  dst.set_col(1, src.col_view(2));
  for (std::size_t r = 0; r < 3; ++r) EXPECT_DOUBLE_EQ(dst(r, 1), src(r, 2));
}

TEST(MatrixView, VectorViewFromSpanAndFill) {
  std::vector<double> buf = {1.0, 2.0, 3.0};
  VectorView v{std::span<double>(buf)};
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v.stride(), 1u);
  v.fill(9.0);
  EXPECT_DOUBLE_EQ(buf[2], 9.0);
  ConstVectorView cv = v;
  EXPECT_DOUBLE_EQ(cv[0], 9.0);
}

TEST(ViewKernels, CopyIntoHandlesStridedBothSides) {
  const Matrix src = iota_matrix(5, 6);
  Matrix dst(5, 6, -1.0);
  copy_into(src.block_view(1, 1, 3, 4), dst.block_view(2, 0, 3, 4));
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 4; ++c) EXPECT_DOUBLE_EQ(dst(2 + r, c), src(1 + r, 1 + c));
  EXPECT_DOUBLE_EQ(dst(0, 0), -1.0);  // untouched outside the block
  Matrix wrong(2, 2);
  EXPECT_THROW(copy_into(src.view(), wrong.view()), std::invalid_argument);
}

TEST(ViewKernels, GatherColumnsMatchesSelectColumns) {
  const Matrix src = iota_matrix(4, 7);
  const std::vector<std::size_t> idx = {6, 0, 3, 3};
  Matrix gathered;
  gather_columns_into(src, idx, gathered);
  EXPECT_EQ(gathered, src.select_columns(idx));
  EXPECT_THROW(gather_columns_into(src, std::vector<std::size_t>{9}, gathered),
               std::out_of_range);
}

TEST(ViewKernels, MultiplyOnColumnRangeViewMatchesCopyPath) {
  const Matrix a = iota_matrix(4, 6);
  const Matrix b = iota_matrix(3, 5);
  // a's middle 3 columns times b, through views -- vs the copy route.
  const Matrix a_mid(a.columns_view(2, 3));
  Matrix via_copy;
  multiply_into(a_mid, b, via_copy);
  Matrix via_view(4, 5);
  multiply_into(a.columns_view(2, 3), b.view(), via_view.view());
  EXPECT_EQ(via_copy, via_view);  // bitwise, not approximate
}

TEST(ViewKernels, GemmCanWriteIntoBlockOfLargerMatrix) {
  const Matrix a = iota_matrix(2, 3);
  const Matrix b = iota_matrix(3, 2);
  Matrix big(4, 4, -5.0);
  multiply_into(a.view(), b.view(), big.block_view(1, 1, 2, 2));
  Matrix direct;
  multiply_into(a, b, direct);
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 2; ++c) EXPECT_DOUBLE_EQ(big(1 + r, 1 + c), direct(r, c));
  EXPECT_DOUBLE_EQ(big(0, 0), -5.0);
  EXPECT_DOUBLE_EQ(big(3, 3), -5.0);
}

TEST(ViewKernels, ShapeMismatchedDestinationThrows) {
  const Matrix a = iota_matrix(2, 3);
  const Matrix b = iota_matrix(3, 2);
  Matrix wrong(3, 3);
  EXPECT_THROW(multiply_into(a.view(), b.view(), wrong.view()), std::invalid_argument);
  EXPECT_THROW(transposed_into(a.view(), wrong.view()), std::invalid_argument);
}

TEST(ViewKernels, FrobeniusDiffNormOnViewsMatchesMatrices) {
  const Matrix a = iota_matrix(4, 4);
  Matrix b = iota_matrix(4, 4);
  b(2, 2) += 0.5;
  const double whole = frobenius_diff_norm(a, b);
  const double via_view = frobenius_diff_norm(a.view(), b.view());
  EXPECT_EQ(whole, via_view);  // same accumulation order -> bitwise equal
}

}  // namespace
}  // namespace tafloc
