#include "tafloc/linalg/eig.h"

#include <gtest/gtest.h>

#include <cmath>

#include "tafloc/linalg/ops.h"
#include "tafloc/linalg/svd.h"
#include "tafloc/linalg/vector_ops.h"
#include "tafloc/util/rng.h"

namespace tafloc {
namespace {

Matrix random_symmetric(std::size_t n, Rng& rng) {
  const Matrix g = random_gaussian(n, n, rng);
  Matrix s = g + g.transposed();
  s *= 0.5;
  return s;
}

// ---------------- eig_symmetric ----------------

TEST(EigSymmetric, DiagonalMatrix) {
  const std::vector<double> d{3.0, -1.0, 5.0};
  const EigResult res = eig_symmetric(Matrix::diagonal(d));
  EXPECT_NEAR(res.eigenvalues[0], 5.0, 1e-12);
  EXPECT_NEAR(res.eigenvalues[1], 3.0, 1e-12);
  EXPECT_NEAR(res.eigenvalues[2], -1.0, 1e-12);
}

TEST(EigSymmetric, ReconstructsMatrix) {
  Rng rng(1);
  const Matrix a = random_symmetric(7, rng);
  const EigResult res = eig_symmetric(a);
  // A == V diag(lambda) V^T.
  const Matrix lambda = Matrix::diagonal(res.eigenvalues);
  const Matrix recon = res.eigenvectors * lambda * res.eigenvectors.transposed();
  EXPECT_LT(max_abs_diff(recon, a), 1e-9);
}

TEST(EigSymmetric, EigenvectorsOrthonormal) {
  Rng rng(2);
  const Matrix a = random_symmetric(6, rng);
  const EigResult res = eig_symmetric(a);
  EXPECT_LT(max_abs_diff(gram_product(res.eigenvectors, res.eigenvectors),
                         Matrix::identity(6)),
            1e-9);
}

TEST(EigSymmetric, SatisfiesEigenEquation) {
  Rng rng(3);
  const Matrix a = random_symmetric(5, rng);
  const EigResult res = eig_symmetric(a);
  for (std::size_t j = 0; j < 5; ++j) {
    const Vector v = res.eigenvectors.col(j);
    const Vector av = multiply(a, v);
    for (std::size_t i = 0; i < 5; ++i)
      EXPECT_NEAR(av[i], res.eigenvalues[j] * v[i], 1e-8);
  }
}

TEST(EigSymmetric, EigenvaluesSortedDescending) {
  Rng rng(4);
  const Matrix a = random_symmetric(8, rng);
  const EigResult res = eig_symmetric(a);
  for (std::size_t i = 1; i < 8; ++i)
    EXPECT_LE(res.eigenvalues[i], res.eigenvalues[i - 1] + 1e-12);
}

TEST(EigSymmetric, AgreesWithSvdOnGramMatrix) {
  // Eigenvalues of A^T A are squared singular values of A.
  Rng rng(5);
  const Matrix a = random_gaussian(9, 4, rng);
  const Matrix gram = gram_product(a, a);
  const EigResult eig = eig_symmetric(gram);
  const SvdResult svd = svd_decompose(a);
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_NEAR(eig.eigenvalues[i], svd.sigma[i] * svd.sigma[i], 1e-7);
}

TEST(EigSymmetric, RejectsAsymmetric) {
  const Matrix a = Matrix::from_rows({{1.0, 2.0}, {0.0, 1.0}});
  EXPECT_THROW(eig_symmetric(a), std::invalid_argument);
}

TEST(EigSymmetric, RejectsNonSquare) {
  const Matrix a(2, 3, 1.0);
  EXPECT_THROW(eig_symmetric(a), std::invalid_argument);
}

TEST(EigSymmetric, IdentityHasUnitEigenvalues) {
  const EigResult res = eig_symmetric(Matrix::identity(4));
  for (double l : res.eigenvalues) EXPECT_NEAR(l, 1.0, 1e-12);
}

// ---------------- power iteration ----------------

TEST(PowerIteration, FindsDominantEigenpair) {
  const std::vector<double> d{5.0, 2.0, 1.0};
  const PowerIterationResult res = power_iteration(Matrix::diagonal(d));
  EXPECT_TRUE(res.converged);
  EXPECT_NEAR(res.eigenvalue, 5.0, 1e-7);
  EXPECT_NEAR(std::abs(res.eigenvector[0]), 1.0, 1e-5);
}

TEST(PowerIteration, MatchesEigOnRandomSymmetric) {
  Rng rng(6);
  // SPD matrix so the dominant eigenvalue is positive and separated.
  const Matrix g = random_gaussian(8, 6, rng);
  const Matrix a = gram_product(g, g);
  const PowerIterationResult pi = power_iteration(a);
  const EigResult eig = eig_symmetric(a);
  EXPECT_TRUE(pi.converged);
  EXPECT_NEAR(pi.eigenvalue, eig.eigenvalues[0], 1e-5 * eig.eigenvalues[0]);
}

TEST(PowerIteration, ZeroMatrixConverges) {
  const Matrix z(3, 3);
  const PowerIterationResult res = power_iteration(z);
  EXPECT_TRUE(res.converged);
  EXPECT_DOUBLE_EQ(res.eigenvalue, 0.0);
}

TEST(PowerIteration, RejectsNonSquare) {
  const Matrix a(2, 3, 1.0);
  EXPECT_THROW(power_iteration(a), std::invalid_argument);
}

// ---------------- pseudo-inverse ----------------

TEST(PseudoInverse, InvertsFullRankSquare) {
  Rng rng(7);
  const Matrix a = random_gaussian(5, 5, rng);
  const Matrix pinv = pseudo_inverse(a);
  EXPECT_LT(max_abs_diff(a * pinv, Matrix::identity(5)), 1e-8);
}

TEST(PseudoInverse, LeftInverseOfTallFullRank) {
  Rng rng(8);
  const Matrix a = random_gaussian(8, 3, rng);
  const Matrix pinv = pseudo_inverse(a);
  EXPECT_EQ(pinv.rows(), 3u);
  EXPECT_EQ(pinv.cols(), 8u);
  EXPECT_LT(max_abs_diff(pinv * a, Matrix::identity(3)), 1e-8);
}

TEST(PseudoInverse, MoorePenroseConditions) {
  Rng rng(9);
  const Matrix a = random_low_rank(6, 8, 3, rng);  // rank deficient
  const Matrix p = pseudo_inverse(a, 1e-10);
  EXPECT_LT(max_abs_diff(a * p * a, a), 1e-7);       // A P A == A
  EXPECT_LT(max_abs_diff(p * a * p, p), 1e-7);       // P A P == P
  const Matrix ap = a * p;                           // symmetric
  EXPECT_LT(max_abs_diff(ap, ap.transposed()), 1e-7);
  const Matrix pa = p * a;                           // symmetric
  EXPECT_LT(max_abs_diff(pa, pa.transposed()), 1e-7);
}

TEST(PseudoInverse, ZeroMatrixGivesZero) {
  const Matrix z(3, 4);
  const Matrix p = pseudo_inverse(z);
  EXPECT_LT(p.max_abs(), 1e-12);
}

// ---------------- condition number ----------------

TEST(ConditionNumber, IdentityIsOne) {
  EXPECT_NEAR(condition_number(Matrix::identity(5)), 1.0, 1e-9);
}

TEST(ConditionNumber, DiagonalKnownValue) {
  const std::vector<double> d{10.0, 2.0, 0.5};
  EXPECT_NEAR(condition_number(Matrix::diagonal(d)), 20.0, 1e-9);
}

TEST(ConditionNumber, SingularIsInfinite) {
  Rng rng(10);
  const Matrix a = random_low_rank(5, 5, 2, rng);
  EXPECT_TRUE(std::isinf(condition_number(a)));
}

}  // namespace
}  // namespace tafloc
