#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "tafloc/util/cli.h"
#include "tafloc/util/csv.h"
#include "tafloc/util/log.h"
#include "tafloc/util/table.h"

namespace tafloc {
namespace {

std::string read_all(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream oss;
  oss << in.rdbuf();
  return oss.str();
}

class TempFile {
 public:
  TempFile() : path_(std::string(::testing::TempDir()) + "tafloc_test_tmp.csv") {}
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// ---------------- CsvWriter ----------------

TEST(CsvWriter, WritesSimpleRows) {
  TempFile tmp;
  {
    CsvWriter w(tmp.path());
    w.write_row({"a", "b", "c"});
    w.write_row({"1", "2", "3"});
    w.flush();
  }
  EXPECT_EQ(read_all(tmp.path()), "a,b,c\n1,2,3\n");
}

TEST(CsvWriter, EscapesSpecialCharacters) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvWriter, NumericRowKeepsPrecision) {
  TempFile tmp;
  {
    CsvWriter w(tmp.path());
    w.write_numeric_row({0.1, 2.0});
    w.flush();
  }
  const std::string content = read_all(tmp.path());
  EXPECT_NE(content.find("0.1"), std::string::npos);
  EXPECT_NE(content.find(","), std::string::npos);
}

TEST(CsvWriter, ThrowsOnUnopenablePath) {
  EXPECT_THROW(CsvWriter("/nonexistent_dir_xyz/file.csv"), std::runtime_error);
}

// ---------------- AsciiTable ----------------

TEST(AsciiTable, RendersHeaderAndRows) {
  AsciiTable t;
  t.set_header({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string s = t.render();
  EXPECT_NE(s.find("| name "), std::string::npos);
  EXPECT_NE(s.find("| alpha "), std::string::npos);
  EXPECT_NE(s.find("| 22 "), std::string::npos);
  // Four horizontal rules: top, under header, ... actually 3: top, after header, bottom.
  std::size_t rules = 0;
  for (std::size_t pos = s.find("+--"); pos != std::string::npos; pos = s.find("+--", pos + 1))
    ++rules;
  EXPECT_GE(rules, 3u);
}

TEST(AsciiTable, HandlesRaggedRows) {
  AsciiTable t;
  t.set_header({"a"});
  t.add_row({"1", "2", "3"});
  t.add_row({});
  const std::string s = t.render();
  EXPECT_NE(s.find("| 3 "), std::string::npos);
}

TEST(AsciiTable, EmptyRendersPlaceholder) {
  AsciiTable t;
  EXPECT_EQ(t.render(), "(empty table)\n");
}

TEST(AsciiTable, NumFormatsDecimals) {
  EXPECT_EQ(AsciiTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(AsciiTable::num(2.0, 0), "2");
  EXPECT_EQ(AsciiTable::num(-0.5, 1), "-0.5");
}

// ---------------- ArgParser ----------------

TEST(ArgParser, ParsesKeyValuePairs) {
  const char* argv[] = {"prog", "--alpha=1.5", "--name=test", "--flag"};
  ArgParser args(4, argv);
  EXPECT_TRUE(args.has("alpha"));
  EXPECT_TRUE(args.has("flag"));
  EXPECT_FALSE(args.has("missing"));
  EXPECT_DOUBLE_EQ(args.get_double("alpha", 0.0), 1.5);
  EXPECT_EQ(args.get_string("name", ""), "test");
}

TEST(ArgParser, FallbacksWhenAbsent) {
  const char* argv[] = {"prog"};
  ArgParser args(1, argv);
  EXPECT_DOUBLE_EQ(args.get_double("x", 2.5), 2.5);
  EXPECT_EQ(args.get_long("n", 7), 7);
  EXPECT_EQ(args.get_string("s", "dflt"), "dflt");
  EXPECT_TRUE(args.get_bool("b", true));
}

TEST(ArgParser, ParsesBooleans) {
  const char* argv[] = {"prog", "--on", "--off=false", "--yes=1", "--no=0"};
  ArgParser args(5, argv);
  EXPECT_TRUE(args.get_bool("on", false));
  EXPECT_FALSE(args.get_bool("off", true));
  EXPECT_TRUE(args.get_bool("yes", false));
  EXPECT_FALSE(args.get_bool("no", true));
}

TEST(ArgParser, ThrowsOnUnparsableNumber) {
  const char* argv[] = {"prog", "--x=abc"};
  ArgParser args(2, argv);
  EXPECT_THROW(args.get_double("x", 0.0), std::invalid_argument);
  EXPECT_THROW(args.get_long("x", 0), std::invalid_argument);
}

TEST(ArgParser, CollectsPositionals) {
  const char* argv[] = {"prog", "file1", "--k=v", "file2"};
  ArgParser args(4, argv);
  ASSERT_EQ(args.positionals().size(), 2u);
  EXPECT_EQ(args.positionals()[0], "file1");
  EXPECT_EQ(args.positionals()[1], "file2");
}

TEST(ArgParser, LongValues) {
  const char* argv[] = {"prog", "--n=123456"};
  ArgParser args(2, argv);
  EXPECT_EQ(args.get_long("n", 0), 123456);
}

// ---------------- Log ----------------

TEST(Log, LevelFiltering) {
  const LogLevel saved = log_level();
  set_log_level(LogLevel::Error);
  EXPECT_EQ(log_level(), LogLevel::Error);
  // Below-threshold messages are dropped without touching the sink;
  // nothing observable to assert beyond "does not crash".
  TAFLOC_LOG_DEBUG << "dropped";
  TAFLOC_LOG_INFO << "dropped";
  set_log_level(saved);
}

TEST(Log, OffSilencesEverything) {
  const LogLevel saved = log_level();
  set_log_level(LogLevel::Off);
  TAFLOC_LOG_ERROR << "dropped even at error level";
  set_log_level(saved);
}

}  // namespace
}  // namespace tafloc
