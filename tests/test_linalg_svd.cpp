#include "tafloc/linalg/svd.h"

#include <gtest/gtest.h>

#include <cmath>

#include "tafloc/linalg/ops.h"
#include "tafloc/util/rng.h"

namespace tafloc {
namespace {

double orthogonality_defect(const Matrix& q) {
  return max_abs_diff(gram_product(q, q), Matrix::identity(q.cols()));
}

TEST(Svd, ReconstructsSquareMatrix) {
  Rng rng(1);
  const Matrix a = random_gaussian(6, 6, rng);
  const SvdResult svd = svd_decompose(a);
  EXPECT_LT(max_abs_diff(svd.reconstruct(), a), 1e-9);
}

TEST(Svd, ReconstructsTallMatrix) {
  Rng rng(2);
  const Matrix a = random_gaussian(12, 4, rng);
  const SvdResult svd = svd_decompose(a);
  EXPECT_EQ(svd.u.rows(), 12u);
  EXPECT_EQ(svd.u.cols(), 4u);
  EXPECT_EQ(svd.v.rows(), 4u);
  EXPECT_LT(max_abs_diff(svd.reconstruct(), a), 1e-9);
}

TEST(Svd, ReconstructsWideMatrix) {
  Rng rng(3);
  const Matrix a = random_gaussian(4, 12, rng);
  const SvdResult svd = svd_decompose(a);
  EXPECT_EQ(svd.u.rows(), 4u);
  EXPECT_EQ(svd.v.rows(), 12u);
  EXPECT_EQ(svd.sigma.size(), 4u);
  EXPECT_LT(max_abs_diff(svd.reconstruct(), a), 1e-9);
}

TEST(Svd, FactorsAreOrthonormal) {
  Rng rng(4);
  const Matrix a = random_gaussian(8, 5, rng);
  const SvdResult svd = svd_decompose(a);
  EXPECT_LT(orthogonality_defect(svd.u), 1e-9);
  EXPECT_LT(orthogonality_defect(svd.v), 1e-9);
}

TEST(Svd, SingularValuesSortedAndNonNegative) {
  Rng rng(5);
  const Matrix a = random_gaussian(7, 7, rng);
  const SvdResult svd = svd_decompose(a);
  for (std::size_t i = 0; i < svd.sigma.size(); ++i) {
    EXPECT_GE(svd.sigma[i], 0.0);
    if (i > 0) EXPECT_LE(svd.sigma[i], svd.sigma[i - 1]);
  }
}

TEST(Svd, DiagonalMatrixGivesItsEntries) {
  const std::vector<double> d{3.0, 1.0, 2.0};
  const Matrix a = Matrix::diagonal(d);
  const SvdResult svd = svd_decompose(a);
  EXPECT_NEAR(svd.sigma[0], 3.0, 1e-12);
  EXPECT_NEAR(svd.sigma[1], 2.0, 1e-12);
  EXPECT_NEAR(svd.sigma[2], 1.0, 1e-12);
}

TEST(Svd, KnownRankOneMatrix) {
  // a = u v^T with ||u|| = 5, ||v|| = sqrt(2): sigma_1 = 5 sqrt(2).
  const Matrix a = Matrix::from_rows({{3.0, 3.0}, {4.0, 4.0}});
  const SvdResult svd = svd_decompose(a);
  EXPECT_NEAR(svd.sigma[0], 5.0 * std::sqrt(2.0), 1e-10);
  EXPECT_NEAR(svd.sigma[1], 0.0, 1e-10);
  EXPECT_EQ(svd.numeric_rank(), 1u);
}

TEST(Svd, NumericRankOfLowRankMatrix) {
  Rng rng(6);
  const Matrix a = random_low_rank(10, 14, 4, rng);
  EXPECT_EQ(svd_decompose(a).numeric_rank(1e-8), 4u);
}

TEST(Svd, NumericRankOfZeroMatrix) {
  const Matrix z(3, 5);
  EXPECT_EQ(svd_decompose(z).numeric_rank(), 0u);
}

TEST(Svd, ZeroMatrixFactorsStillOrthonormal) {
  const Matrix z(4, 3);
  const SvdResult svd = svd_decompose(z);
  EXPECT_LT(orthogonality_defect(svd.u), 1e-9);
  EXPECT_LT(orthogonality_defect(svd.v), 1e-9);
}

TEST(Svd, RankDeficientFactorsCompleted) {
  Rng rng(7);
  const Matrix a = random_low_rank(6, 6, 2, rng);
  const SvdResult svd = svd_decompose(a);
  // U columns beyond the rank must still be unit and orthogonal.
  EXPECT_LT(orthogonality_defect(svd.u), 1e-8);
}

TEST(Svd, FrobeniusNormMatchesSigma) {
  Rng rng(8);
  const Matrix a = random_gaussian(5, 9, rng);
  const SvdResult svd = svd_decompose(a);
  double sum_sq = 0.0;
  for (double s : svd.sigma) sum_sq += s * s;
  EXPECT_NEAR(std::sqrt(sum_sq), a.frobenius_norm(), 1e-9);
}

TEST(Svd, NuclearNorm) {
  const std::vector<double> d{2.0, 3.0};
  const Matrix a = Matrix::diagonal(d);
  EXPECT_NEAR(svd_decompose(a).nuclear_norm(), 5.0, 1e-12);
}

TEST(Svd, TruncatedReconstructionIsBestApproximation) {
  Rng rng(9);
  const Matrix a = random_gaussian(8, 8, rng);
  const SvdResult svd = svd_decompose(a);
  const Matrix rank3 = svd.reconstruct(3);
  // Eckart-Young: residual Frobenius norm equals sqrt(sum of trailing sigma^2).
  double expect_sq = 0.0;
  for (std::size_t i = 3; i < svd.sigma.size(); ++i) expect_sq += svd.sigma[i] * svd.sigma[i];
  EXPECT_NEAR((a - rank3).frobenius_norm(), std::sqrt(expect_sq), 1e-8);
}

TEST(Svd, TruncatedHelperMatchesManualTruncation) {
  Rng rng(10);
  const Matrix a = random_gaussian(6, 4, rng);
  const Matrix t1 = truncated_svd_approximation(a, 2);
  const Matrix t2 = svd_decompose(a).reconstruct(2);
  EXPECT_LT(max_abs_diff(t1, t2), 1e-9);
}

TEST(Svd, RejectsEmptyMatrix) {
  Matrix empty;
  EXPECT_THROW(svd_decompose(empty), std::invalid_argument);
}

TEST(Svd, RejectsBadOptions) {
  const Matrix a(2, 2, 1.0);
  SvdOptions bad;
  bad.tolerance = 0.0;
  EXPECT_THROW(svd_decompose(a, bad), std::invalid_argument);
  bad = SvdOptions{};
  bad.max_sweeps = 0;
  EXPECT_THROW(svd_decompose(a, bad), std::invalid_argument);
}

TEST(Svd, OrthogonalMatrixHasUnitSingularValues) {
  Rng rng(11);
  const Matrix q = random_orthonormal(6, 6, rng);
  const SvdResult svd = svd_decompose(q);
  for (double s : svd.sigma) EXPECT_NEAR(s, 1.0, 1e-9);
}

TEST(Svd, ScalingMatrixScalesSigma) {
  Rng rng(12);
  const Matrix a = random_gaussian(5, 5, rng);
  const SvdResult s1 = svd_decompose(a);
  const SvdResult s2 = svd_decompose(a * 3.0);
  for (std::size_t i = 0; i < s1.sigma.size(); ++i)
    EXPECT_NEAR(s2.sigma[i], 3.0 * s1.sigma[i], 1e-8);
}

// Parameterized sweep over shapes and ranks: decomposition invariants.
struct SvdCase {
  std::size_t rows, cols, rank;
};

class SvdSweep : public ::testing::TestWithParam<SvdCase> {};

TEST_P(SvdSweep, Invariants) {
  const SvdCase c = GetParam();
  Rng rng(200 + c.rows * 7 + c.cols * 3 + c.rank);
  const Matrix a = random_low_rank(c.rows, c.cols, c.rank, rng);
  const SvdResult svd = svd_decompose(a);
  EXPECT_LT(max_abs_diff(svd.reconstruct(), a), 1e-8);
  EXPECT_LT(orthogonality_defect(svd.u), 1e-8);
  EXPECT_LT(orthogonality_defect(svd.v), 1e-8);
  EXPECT_EQ(svd.numeric_rank(1e-7), c.rank);
}

INSTANTIATE_TEST_SUITE_P(ShapesAndRanks, SvdSweep,
                         ::testing::Values(SvdCase{4, 4, 1}, SvdCase{4, 4, 4},
                                           SvdCase{10, 3, 2}, SvdCase{3, 10, 2},
                                           SvdCase{16, 16, 5}, SvdCase{10, 96, 6},
                                           SvdCase{2, 2, 1}, SvdCase{25, 8, 8}));

}  // namespace
}  // namespace tafloc
