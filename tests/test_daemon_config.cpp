// Daemon config parser: the happy path and the strictness contract
// (a config the daemon does not fully understand must be refused).
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "tafloc/daemon/config.h"

namespace tafloc::daemon {
namespace {

DaemonConfig parse(const std::string& text) {
  std::istringstream in(text);
  return DaemonConfig::parse(in);
}

TEST(DaemonConfig, ParsesDaemonAndZoneSections) {
  const DaemonConfig config = parse(R"(
# daemon-wide
socket = /run/tafloc/taflocd.sock
telemetry_dir = /var/lib/tafloc/telemetry

[zone office]
seed = 4242
state_dir = /var/lib/tafloc/office
staleness_threshold_db = 2.5
min_interval_days = 0.5
max_interval_days = 30
telemetry = true

[zone lab]
seed = 7
telemetry = off
)");
  EXPECT_EQ(config.socket_path, "/run/tafloc/taflocd.sock");
  EXPECT_EQ(config.telemetry_dir, "/var/lib/tafloc/telemetry");
  ASSERT_EQ(config.zones.size(), 2u);

  const ZoneConfig* office = config.find_zone("office");
  ASSERT_NE(office, nullptr);
  EXPECT_EQ(office->seed, 4242u);
  EXPECT_EQ(office->state_dir, "/var/lib/tafloc/office");
  EXPECT_EQ(office->scheduler.staleness_threshold_db, 2.5);
  EXPECT_EQ(office->scheduler.min_interval_days, 0.5);
  EXPECT_EQ(office->scheduler.max_interval_days, 30.0);
  EXPECT_TRUE(office->telemetry);

  const ZoneConfig* lab = config.find_zone("lab");
  ASSERT_NE(lab, nullptr);
  EXPECT_EQ(lab->seed, 7u);
  EXPECT_TRUE(lab->state_dir.empty());  // in-memory zone.
  EXPECT_FALSE(lab->telemetry);

  EXPECT_EQ(config.find_zone("warehouse"), nullptr);
}

TEST(DaemonConfig, DefaultsMatchSchedulerDefaults) {
  const DaemonConfig config = parse("socket = /tmp/t.sock\n[zone a]\n");
  const SchedulerConfig defaults;
  EXPECT_EQ(config.zones[0].scheduler.staleness_threshold_db, defaults.staleness_threshold_db);
  EXPECT_EQ(config.zones[0].scheduler.min_interval_days, defaults.min_interval_days);
  EXPECT_EQ(config.zones[0].scheduler.max_interval_days, defaults.max_interval_days);
}

TEST(DaemonConfig, RejectsMissingSocket) {
  EXPECT_THROW(parse("[zone a]\nseed = 1\n"), std::runtime_error);
}

TEST(DaemonConfig, RejectsZeroZones) {
  EXPECT_THROW(parse("socket = /tmp/t.sock\n"), std::runtime_error);
}

TEST(DaemonConfig, RejectsDuplicateZones) {
  EXPECT_THROW(parse("socket = /tmp/t.sock\n[zone a]\n[zone a]\n"), std::runtime_error);
}

TEST(DaemonConfig, RejectsUnknownKeysAtBothLevels) {
  EXPECT_THROW(parse("socket = /tmp/t.sock\nspeed = 11\n[zone a]\n"), std::runtime_error);
  EXPECT_THROW(parse("socket = /tmp/t.sock\n[zone a]\nwarp = 9\n"), std::runtime_error);
}

TEST(DaemonConfig, RejectsMalformedLines) {
  EXPECT_THROW(parse("socket = /tmp/t.sock\n[zone a\n"), std::runtime_error);
  EXPECT_THROW(parse("socket = /tmp/t.sock\n[zone a]\njust words\n"), std::runtime_error);
  EXPECT_THROW(parse("socket = /tmp/t.sock\n[section]\n"), std::runtime_error);
  EXPECT_THROW(parse("socket = /tmp/t.sock\n[zone ]\n"), std::runtime_error);
}

TEST(DaemonConfig, RejectsBadNumbersWithLineInfo) {
  try {
    parse("socket = /tmp/t.sock\n[zone a]\nseed = twelve\n");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos) << e.what();
  }
  EXPECT_THROW(parse("socket = /tmp/t.sock\n[zone a]\nmin_interval_days = 1.5x\n"),
               std::runtime_error);
  EXPECT_THROW(parse("socket = /tmp/t.sock\n[zone a]\ntelemetry = maybe\n"), std::runtime_error);
}

TEST(DaemonConfig, ParsesIngestKeys) {
  const DaemonConfig config = parse(R"(
socket = /tmp/t.sock
[zone a]
motion_threshold_db = 1.5
ingest_dedup_window = 512
ingest_max_pending_rounds = 16
)");
  EXPECT_EQ(config.zones[0].ingest.motion_threshold_db, 1.5);
  EXPECT_EQ(config.zones[0].ingest.dedup_window, 512u);
  EXPECT_EQ(config.zones[0].ingest.max_pending_rounds, 16u);
}

TEST(DaemonConfig, RejectsNegativeTimingAndSloValues) {
  // A negative value fed through stoull wraps to a huge unsigned -- the
  // parser must refuse it as a bad number, never accept the wrap; the
  // float keys in the same family must refuse negatives explicitly.
  EXPECT_THROW(parse("socket = /tmp/t.sock\n[zone a]\ntrace_sample_every = -1\n"),
               std::runtime_error);
  EXPECT_THROW(parse("socket = /tmp/t.sock\n[zone a]\nfault_slow_every = -5\n"),
               std::runtime_error);
  EXPECT_THROW(parse("socket = /tmp/t.sock\n[zone a]\nseed = -2\n"), std::runtime_error);
  EXPECT_THROW(parse("socket = /tmp/t.sock\n[zone a]\nslo_deadline_ms = -10\n"),
               std::runtime_error);
  EXPECT_THROW(parse("socket = /tmp/t.sock\n[zone a]\nfault_slow_ms = -3\n"),
               std::runtime_error);
  EXPECT_THROW(parse("socket = /tmp/t.sock\n[zone a]\nslow_query_ms = -3\n"),
               std::runtime_error);
  EXPECT_THROW(parse("socket = /tmp/t.sock\n[zone a]\nmotion_threshold_db = -1\n"),
               std::runtime_error);
  EXPECT_THROW(parse("socket = /tmp/t.sock\n[zone a]\ningest_dedup_window = 0\n"),
               std::runtime_error);
  EXPECT_THROW(parse("socket = /tmp/t.sock\n[zone a]\ningest_max_pending_rounds = 0\n"),
               std::runtime_error);
}

TEST(DaemonConfig, LoadFileMissingThrows) {
  EXPECT_THROW(DaemonConfig::load_file("/nonexistent/taflocd.conf"), std::runtime_error);
}

}  // namespace
}  // namespace tafloc::daemon
