// Telemetry substrate tests: exact counters under concurrency,
// histogram percentiles against a sorted reference, JSONL snapshot
// round-trips through a strict JSON parser, disabled-mode inertness,
// span nesting, the atomic logger, and the end-to-end system snapshot
// after a scheduler-driven update cycle.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cmath>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "tafloc/sim/scenario.h"
#include "tafloc/tafloc/scheduler.h"
#include "tafloc/tafloc/system.h"
#include "tafloc/telemetry/metrics.h"
#include "tafloc/telemetry/span.h"
#include "tafloc/util/log.h"
#include "tafloc/util/rng.h"

namespace tafloc {
namespace {

// ---------------- a minimal strict JSON parser ----------------
// Enough of RFC 8259 to validate every snapshot line standalone (the CI
// smoke step re-checks with python3 -m json.tool; this keeps the
// guarantee inside ctest).

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  /// True when the whole input is exactly one valid JSON value.
  bool valid() {
    pos_ = 0;
    ok_ = true;
    skip_ws();
    parse_value();
    skip_ws();
    return ok_ && pos_ == text_.size();
  }

 private:
  void fail() { ok_ = false; }
  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  bool consume(char c) {
    if (peek() != c) return false;
    ++pos_;
    return true;
  }
  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }

  void parse_value() {
    if (!ok_) return;
    switch (peek()) {
      case '{': parse_object(); return;
      case '[': parse_array(); return;
      case '"': parse_string(); return;
      case 't': parse_literal("true"); return;
      case 'f': parse_literal("false"); return;
      case 'n': parse_literal("null"); return;
      default: parse_number(); return;
    }
  }

  void parse_object() {
    consume('{');
    skip_ws();
    if (consume('}')) return;
    for (;;) {
      skip_ws();
      parse_string();
      skip_ws();
      if (!consume(':')) return fail();
      skip_ws();
      parse_value();
      skip_ws();
      if (consume('}')) return;
      if (!consume(',')) return fail();
      if (!ok_) return;
    }
  }

  void parse_array() {
    consume('[');
    skip_ws();
    if (consume(']')) return;
    for (;;) {
      skip_ws();
      parse_value();
      skip_ws();
      if (consume(']')) return;
      if (!consume(',')) return fail();
      if (!ok_) return;
    }
  }

  void parse_string() {
    if (!consume('"')) return fail();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return;
      if (static_cast<unsigned char>(c) < 0x20) return fail();
      if (c == '\\') {
        if (pos_ >= text_.size()) return fail();
        const char esc = text_[pos_++];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (pos_ >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_++])))
              return fail();
          }
        } else if (std::string_view("\"\\/bfnrt").find(esc) == std::string_view::npos) {
          return fail();
        }
      }
    }
    fail();  // unterminated
  }

  void parse_number() {
    const std::size_t start = pos_;
    consume('-');
    if (!std::isdigit(static_cast<unsigned char>(peek()))) return fail();
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (consume('.')) {
      if (!std::isdigit(static_cast<unsigned char>(peek()))) return fail();
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) return fail();
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (pos_ == start) fail();
  }

  void parse_literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return fail();
    pos_ += word.size();
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line))
    if (!line.empty()) lines.push_back(line);
  return lines;
}

// ---------------- counters and gauges ----------------

TEST(Telemetry, CounterConcurrentAddsAreExact) {
  MetricRegistry registry;
  Counter& counter = registry.counter("test.hits");
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kAddsPerThread = 20000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kAddsPerThread; ++i) counter.add();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.value(), kThreads * kAddsPerThread);
}

TEST(Telemetry, RegistryLookupIsStableAndIdempotent) {
  MetricRegistry registry;
  Counter& a = registry.counter("x.same");
  registry.counter("x.other").add(5);
  Counter& b = registry.counter("x.same");
  EXPECT_EQ(&a, &b) << "same name must resolve to the same metric";
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
  EXPECT_EQ(registry.size(), 2u);
}

TEST(Telemetry, GaugeSetMaxOnlyRaises) {
  MetricRegistry registry;
  Gauge& g = registry.gauge("test.highwater");
  g.set_max(5.0);
  g.set_max(2.0);
  EXPECT_EQ(g.value(), 5.0);
  g.set_max(9.0);
  EXPECT_EQ(g.value(), 9.0);
  g.set(1.0);  // plain set may lower
  EXPECT_EQ(g.value(), 1.0);
}

// ---------------- histograms ----------------

TEST(Telemetry, HistogramConcurrentObservationsKeepExactTotals) {
  MetricRegistry registry;
  Histogram& h = registry.histogram("test.latency");
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 5000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (std::size_t i = 0; i < kPerThread; ++i)
        h.observe(1e-6 * static_cast<double>(t * kPerThread + i + 1));
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(h.count(), kThreads * kPerThread);
  const double n = static_cast<double>(kThreads * kPerThread);
  const double expected_sum = 1e-6 * n * (n + 1.0) / 2.0;
  EXPECT_NEAR(h.sum(), expected_sum, 1e-9 * expected_sum);
  EXPECT_EQ(h.min(), 1e-6);
  EXPECT_EQ(h.max(), 1e-6 * n);
  std::uint64_t bucket_total = 0;
  for (std::size_t i = 0; i < h.num_buckets(); ++i) bucket_total += h.bucket_count(i);
  EXPECT_EQ(bucket_total, h.count()) << "every observation lands in exactly one bucket";
}

TEST(Telemetry, HistogramQuantilesMatchSortedReferenceWithinBucketWidth) {
  MetricRegistry registry;
  Histogram& h = registry.histogram("test.dist");
  Rng rng(2024);
  std::vector<double> values;
  for (std::size_t i = 0; i < 20000; ++i) {
    // Log-uniform over ~6 decades: exercises many buckets.
    values.push_back(std::pow(10.0, -6.0 + 6.0 * rng.uniform01()));
    h.observe(values.back());
  }
  std::sort(values.begin(), values.end());

  const std::vector<double>& bounds = h.bounds();
  for (const double q : {0.5, 0.95, 0.99}) {
    const double est = h.quantile(q);
    const double ref = values[static_cast<std::size_t>(
        q * static_cast<double>(values.size() - 1))];
    // Accuracy contract: the estimate lives in the same bucket as the
    // true quantile, so it is within one bucket width of the reference.
    const auto it = std::lower_bound(bounds.begin(), bounds.end(), ref);
    const double hi = it != bounds.end() ? *it : values.back();
    const double lo = it != bounds.begin() ? *(it - 1) : 0.0;
    EXPECT_GE(est, lo) << "q=" << q;
    EXPECT_LE(est, hi * (1.0 + 1e-12)) << "q=" << q;
  }
  EXPECT_EQ(h.quantile(0.0), h.min());
  EXPECT_EQ(h.quantile(1.0), h.max());
}

TEST(Telemetry, HistogramEmptyAndSingleValueEdgeCases) {
  MetricRegistry registry;
  Histogram& h = registry.histogram("test.edge");
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);

  h.observe(0.0042);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 0.0042);
  EXPECT_EQ(h.max(), 0.0042);
  // Quantiles clamp to observed min/max, never outside.
  EXPECT_EQ(h.quantile(0.5), 0.0042);
  EXPECT_EQ(h.quantile(0.99), 0.0042);
  // Extreme q on a single sample behaves like min/max too.
  EXPECT_EQ(h.quantile(0.0), 0.0042);
  EXPECT_EQ(h.quantile(1.0), 0.0042);
}

TEST(Telemetry, HistogramAllSamplesInOneBucketStayInsideObservedRange) {
  // Every observation lands in the same bucket: the within-bucket
  // interpolation must never extrapolate outside [min, max], at any q.
  MetricRegistry registry;
  Histogram& h = registry.histogram("test.onebucket");
  for (int i = 0; i < 1000; ++i) h.observe(0.00107);  // identical samples
  EXPECT_EQ(h.count(), 1000u);
  for (const double q : {0.0, 0.01, 0.25, 0.5, 0.75, 0.99, 1.0}) {
    const double est = h.quantile(q);
    EXPECT_GE(est, h.min()) << "q=" << q;
    EXPECT_LE(est, h.max()) << "q=" << q;
  }
  EXPECT_EQ(h.quantile(0.0), h.min());
  EXPECT_EQ(h.quantile(1.0), h.max());
}

// ---------------- spans ----------------

TEST(Telemetry, ScopedSpansNestAndRecordDepth) {
  MetricRegistry registry;
  {
    ScopedSpan outer(&registry, "stage.outer");
    EXPECT_TRUE(outer.active());
    EXPECT_EQ(ScopedSpan::current_depth(), 1u);
    {
      ScopedSpan inner(&registry, "stage.inner");
      EXPECT_EQ(ScopedSpan::current_depth(), 2u);
    }
    EXPECT_EQ(ScopedSpan::current_depth(), 1u);
  }
  EXPECT_EQ(ScopedSpan::current_depth(), 0u);
  EXPECT_EQ(registry.spans_recorded(), 2u);

  const std::vector<SpanRecord> trace = registry.trace();
  ASSERT_EQ(trace.size(), 2u);
  // Spans complete inner-first.
  EXPECT_EQ(trace[0].name, "stage.inner");
  EXPECT_EQ(trace[0].depth, 1u);
  EXPECT_EQ(trace[1].name, "stage.outer");
  EXPECT_EQ(trace[1].depth, 0u);
  EXPECT_GE(trace[1].duration_ns, trace[0].duration_ns)
      << "the enclosing span cannot be shorter than its child";
  // Each span also fed the same-named histogram.
  EXPECT_EQ(registry.histogram("stage.outer").count(), 1u);
  EXPECT_EQ(registry.histogram("stage.inner").count(), 1u);
}

TEST(Telemetry, TraceRingEvictsOldestBeyondCapacity) {
  TelemetryConfig config;
  config.trace_capacity = 4;
  MetricRegistry registry(config);
  for (int i = 0; i < 10; ++i)
    registry.record_span("event." + std::to_string(i), 0, static_cast<std::uint64_t>(i), 0);
  EXPECT_EQ(registry.spans_recorded(), 10u);
  const std::vector<SpanRecord> trace = registry.trace();
  ASSERT_EQ(trace.size(), 4u);
  EXPECT_EQ(trace.front().name, "event.6");
  EXPECT_EQ(trace.back().name, "event.9");
}

// ---------------- disabled mode ----------------

TEST(Telemetry, DisabledRegistryStaysInert) {
  TelemetryConfig config;
  config.enabled = false;
  MetricRegistry registry(config);
  EXPECT_FALSE(registry.enabled());

  registry.counter("a").add(41);
  registry.gauge("b").set(1.0);
  registry.histogram("c").observe(2.0);
  EXPECT_EQ(registry.size(), 0u) << "disabled lookups must not register metrics";

  {
    ScopedSpan span(&registry, "stage.ignored");
    EXPECT_FALSE(span.active());
    EXPECT_EQ(ScopedSpan::current_depth(), 0u) << "disabled spans must not nest";
  }
  EXPECT_EQ(registry.spans_recorded(), 0u);
  EXPECT_TRUE(registry.trace().empty());

  EXPECT_EQ(registry_counter(&registry, "a"), nullptr);
  EXPECT_EQ(registry_gauge(&registry, "b"), nullptr);
  EXPECT_EQ(registry_histogram(&registry, "c"), nullptr);
  EXPECT_EQ(registry_counter(nullptr, "a"), nullptr);

  // The snapshot is just the header line.
  const std::vector<std::string> lines = split_lines(registry.snapshot_json());
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"enabled\":false"), std::string::npos);
  EXPECT_NE(lines[0].find("\"metrics\":0"), std::string::npos);
}

TEST(Telemetry, NullRegistrySpanIsANoop) {
  ScopedSpan span(nullptr, "anything");
  EXPECT_FALSE(span.active());
  EXPECT_EQ(ScopedSpan::current_depth(), 0u);
}

// ---------------- exporters ----------------

TEST(Telemetry, SnapshotJsonLinesAllParseStandalone) {
  MetricRegistry registry;
  registry.counter("layer.comp.events").add(7);
  registry.gauge("layer.comp.level").set(-3.25);
  registry.gauge("layer.weird\"name\\with\tescapes").set(1.0);
  Histogram& h = registry.histogram("layer.comp.latency_seconds");
  for (int i = 1; i <= 100; ++i) h.observe(1e-4 * i);
  {
    ScopedSpan span(&registry, "layer.comp.op_seconds");
  }

  const std::vector<std::string> lines = split_lines(registry.snapshot_json());
  // header + 1 counter + 2 gauges + 2 histograms (latency + span) + 1 span.
  ASSERT_EQ(lines.size(), 7u);
  for (const std::string& line : lines) {
    JsonParser parser(line);
    EXPECT_TRUE(parser.valid()) << "not valid JSON: " << line;
  }
  EXPECT_NE(lines[0].find("\"type\":\"snapshot\""), std::string::npos);
  const std::string all = registry.snapshot_json();
  EXPECT_NE(all.find("\"type\":\"counter\",\"name\":\"layer.comp.events\",\"value\":7"),
            std::string::npos);
  EXPECT_NE(all.find("\"type\":\"span\",\"name\":\"layer.comp.op_seconds\""),
            std::string::npos);
}

TEST(Telemetry, SnapshotJsonHandlesNonFiniteGauges) {
  MetricRegistry registry;
  registry.gauge("test.nan").set(std::nan(""));
  registry.gauge("test.inf").set(std::numeric_limits<double>::infinity());
  const std::vector<std::string> lines = split_lines(registry.snapshot_json());
  for (const std::string& line : lines) {
    JsonParser parser(line);
    EXPECT_TRUE(parser.valid()) << "not valid JSON: " << line;
  }
  EXPECT_NE(registry.snapshot_json().find("\"name\":\"test.nan\",\"value\":null"),
            std::string::npos);
}

TEST(Telemetry, TextDumpListsEveryMetric) {
  MetricRegistry registry;
  registry.counter("a.count").add(3);
  registry.gauge("b.gauge").set(2.5);
  registry.histogram("c.hist").observe(0.5);
  const std::string dump = registry.text_dump();
  EXPECT_NE(dump.find("a.count"), std::string::npos);
  EXPECT_NE(dump.find("b.gauge"), std::string::npos);
  EXPECT_NE(dump.find("c.hist"), std::string::npos);
}

// ---------------- zone attribution labels ----------------

TEST(Telemetry, ZoneLabelTagsEveryExportLine) {
  TelemetryConfig config;
  config.zone = "lobby";
  MetricRegistry registry(config);
  EXPECT_EQ(registry.zone(), "lobby");
  registry.counter("zone.queries").add(2);
  registry.gauge("zone.staleness_db").set(1.5);
  registry.histogram("zone.latency_seconds").observe(0.01);
  {
    ScopedSpan span(&registry, "zone.update_seconds");
  }
  const std::vector<std::string> lines = split_lines(registry.snapshot_json());
  ASSERT_GE(lines.size(), 5u);  // header + counter + gauge + 2 histograms + span.
  for (const std::string& line : lines) {
    JsonParser parser(line);
    EXPECT_TRUE(parser.valid()) << "not valid JSON: " << line;
    EXPECT_NE(line.find("\"zone\":\"lobby\""), std::string::npos)
        << "unlabeled line: " << line;
  }
  EXPECT_NE(registry.text_dump().find("zone=lobby"), std::string::npos);
}

TEST(Telemetry, EmptyZoneLabelKeepsLibraryExportUnlabeled) {
  MetricRegistry registry;  // default config: no zone.
  registry.counter("a.count").add(1);
  registry.gauge("b.gauge").set(0.5);
  {
    ScopedSpan span(&registry, "c.op_seconds");
  }
  const std::string snapshot = registry.snapshot_json();
  EXPECT_EQ(snapshot.find("\"zone\""), std::string::npos)
      << "no-label export must stay byte-identical to the historical format";
  EXPECT_EQ(registry.text_dump().find("zone="), std::string::npos);
}

TEST(Telemetry, ZoneLabelWithSpecialCharactersStaysValidJson) {
  TelemetryConfig config;
  config.zone = "lab\"2\\north";
  MetricRegistry registry(config);
  registry.counter("a.count").add(1);
  for (const std::string& line : split_lines(registry.snapshot_json())) {
    JsonParser parser(line);
    EXPECT_TRUE(parser.valid()) << "not valid JSON: " << line;
  }
}

// ---------------- atomic logging ----------------

TEST(Telemetry, ConcurrentLogLinesNeverInterleave) {
  const LogLevel previous = log_level();
  set_log_level(LogLevel::Info);
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kLines = 50;

  testing::internal::CaptureStderr();
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (std::size_t i = 0; i < kLines; ++i) {
        log_message(LogLevel::Info, "thread-" + std::to_string(t) + "-line-" +
                                        std::to_string(i) + "-end");
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const std::string captured = testing::internal::GetCapturedStderr();
  set_log_level(previous);

  const std::vector<std::string> lines = split_lines(captured);
  ASSERT_EQ(lines.size(), kThreads * kLines);
  std::vector<std::size_t> seen(kThreads, 0);
  for (const std::string& line : lines) {
    // Prefix: "[tafloc INFO  <ISO-8601>Z +<seconds>s] thread-T-line-I-end"
    // -- one complete message per line, never split or merged, with
    // wall-clock UTC next to the monotonic offset.
    ASSERT_EQ(line.rfind("[tafloc INFO  ", 0), 0u) << "bad prefix: " << line;
    const std::size_t close = line.find("] ");
    ASSERT_NE(close, std::string::npos) << line;
    const std::string stamp = line.substr(14, close - 14);
    const std::size_t space = stamp.find(' ');
    ASSERT_NE(space, std::string::npos) << "missing wall clock: " << line;
    const std::string wall = stamp.substr(0, space);
    // 2026-08-09T12:34:56.789Z -- fixed-width ISO-8601 UTC.
    ASSERT_EQ(wall.size(), 24u) << "bad wall clock: " << line;
    EXPECT_EQ(wall[4], '-');
    EXPECT_EQ(wall[10], 'T');
    EXPECT_EQ(wall[19], '.');
    EXPECT_EQ(wall.back(), 'Z');
    const std::string mono = stamp.substr(space + 1);
    ASSERT_EQ(mono.rfind('+', 0), 0u) << "missing monotonic offset: " << line;
    EXPECT_EQ(mono.back(), 's') << "missing timestamp unit: " << line;
    const std::string payload = line.substr(close + 2);
    ASSERT_EQ(payload.rfind("thread-", 0), 0u) << "torn line: " << line;
    ASSERT_EQ(payload.size() - payload.rfind("-end"), 4u) << "torn line: " << line;
    const std::size_t thread_id = static_cast<std::size_t>(std::stoul(payload.substr(7)));
    ASSERT_LT(thread_id, kThreads);
    ++seen[thread_id];
  }
  for (std::size_t t = 0; t < kThreads; ++t)
    EXPECT_EQ(seen[t], kLines) << "thread " << t << " lost lines";
}

// ---------------- end-to-end system snapshot ----------------

TEST(Telemetry, SystemSnapshotCoversSchedulerReconAndLocalization) {
  Scenario scenario = Scenario::paper_room(5);
  TafLocConfig config;
  config.exec.threads = 1;
  TafLocSystem system(scenario.deployment(), config);
  EXPECT_TRUE(system.telemetry().enabled());

  Rng rng(77);
  const Matrix survey = scenario.collector().survey_all(0.0, rng);
  const Vector ambient = scenario.collector().ambient_scan(0.0, rng);
  system.calibrate(survey, ambient, 0.0);

  UpdateScheduler scheduler(ambient, 0.0);
  scheduler.attach_telemetry(&system.telemetry());

  // Drive cheap ambient scans forward until the scheduler triggers (the
  // max-interval clamp guarantees it within the scan horizon).
  double t = 0.0;
  bool triggered = false;
  for (t = 5.0; t <= 50.0; t += 5.0) {
    const Vector scan = scenario.collector().ambient_scan(t, rng);
    if (scheduler.observe_ambient(scan, t)) {
      triggered = true;
      break;
    }
  }
  ASSERT_TRUE(triggered);
  const TafLocSystem::UpdateReport report =
      system.update_with_collector(scenario.collector(), t, rng);
  scheduler.notify_updated(system.database().ambient(), t);
  EXPECT_GT(report.solver.outer_iterations, 0u);

  Vector rss(survey.rows());
  for (std::size_t q = 0; q < 8; ++q) {
    for (double& v : rss) v = rng.normal(-50.0, 5.0);
    (void)system.localize(rss);
  }

  const std::string snapshot = system.telemetry_snapshot_json();
  for (const std::string& line : split_lines(snapshot)) {
    JsonParser parser(line);
    EXPECT_TRUE(parser.valid()) << "not valid JSON: " << line;
  }
  // The acceptance surface: scheduler staleness gauge, the trigger
  // event, recon iteration/residual metrics, a populated per-query
  // latency histogram, and the sampled pool gauges.
  EXPECT_NE(snapshot.find("\"name\":\"scheduler.staleness_db\""), std::string::npos);
  EXPECT_NE(snapshot.find("\"type\":\"span\",\"name\":\"scheduler.update_trigger\""),
            std::string::npos);
  EXPECT_NE(snapshot.find("\"name\":\"recon.loli_ir.outer_iterations\""), std::string::npos);
  EXPECT_NE(snapshot.find("\"name\":\"recon.loli_ir.sweep_rel_change\""), std::string::npos);
  EXPECT_NE(snapshot.find("\"name\":\"loc.knn.query_seconds\",\"count\":8"),
            std::string::npos);
  EXPECT_NE(snapshot.find("\"name\":\"exec.pool.threads\""), std::string::npos);
  EXPECT_NE(snapshot.find("\"name\":\"system.update_seconds\""), std::string::npos);
  EXPECT_EQ(system.telemetry().counter("system.updates").value(), 1u);
  EXPECT_EQ(system.telemetry().counter("scheduler.update_triggers").value(), 1u);
}

TEST(Telemetry, DisabledSystemRecordsNothing) {
  Scenario scenario = Scenario::paper_room(6);
  TafLocConfig config;
  config.exec.threads = 1;
  config.telemetry.enabled = false;
  TafLocSystem system(scenario.deployment(), config);
  EXPECT_FALSE(system.telemetry().enabled());

  Rng rng(78);
  const Matrix survey = scenario.collector().survey_all(0.0, rng);
  const Vector ambient = scenario.collector().ambient_scan(0.0, rng);
  system.calibrate(survey, ambient, 0.0);
  Vector rss(survey.rows());
  for (double& v : rss) v = rng.normal(-50.0, 5.0);
  (void)system.localize(rss);

  EXPECT_EQ(system.telemetry().size(), 0u);
  EXPECT_EQ(system.telemetry().spans_recorded(), 0u);
}

}  // namespace
}  // namespace tafloc
