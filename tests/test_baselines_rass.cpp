#include "tafloc/baselines/rass.h"

#include <gtest/gtest.h>

#include "tafloc/sim/scenario.h"

namespace tafloc {
namespace {

class RassTest : public ::testing::Test {
 protected:
  RassTest() : scenario_(Scenario::paper_room(41)), rng_(41) {
    x0_ = scenario_.collector().survey_all(0.0, rng_);
    ambient0_ = scenario_.collector().ambient_scan(0.0, rng_);
  }

  FingerprintDatabase fresh_db() { return FingerprintDatabase(x0_, ambient0_, 0.0); }

  Scenario scenario_;
  Rng rng_;
  Matrix x0_;
  Vector ambient0_;
};

TEST_F(RassTest, CoarseEstimateNearAffectedLinks) {
  const FingerprintDatabase db = fresh_db();
  const RassLocalizer rass(scenario_.deployment(), db, ambient0_);
  // Target on link 4 (y ~ 2.16): coarse estimate must land at a similar y.
  const Point2 target{3.6, 2.16};
  const Vector y = scenario_.collector().observe(target, 0.0, rng_);
  const Point2 coarse = rass.coarse_estimate(y);
  EXPECT_NEAR(coarse.y, target.y, 1.2);
}

TEST_F(RassTest, LocalizesFreshDatabaseWell) {
  const FingerprintDatabase db = fresh_db();
  const RassLocalizer rass(scenario_.deployment(), db, ambient0_);
  double total = 0.0;
  for (std::size_t j : {12u, 37u, 61u, 85u}) {
    const Point2 target = scenario_.deployment().grid().center(j);
    const Vector y = scenario_.collector().observe(target, 0.0, rng_);
    total += distance(rass.localize(y), target);
  }
  EXPECT_LT(total / 4.0, 2.2);
}

TEST_F(RassTest, StaleDatabaseDegradesAccuracy) {
  // The Fig. 5 phenomenon: RASS w/o reconstruction at 90 days is worse
  // than RASS with a fresh (reconstruction-quality) database.
  const double t = 90.0;
  Vector ambient_now = scenario_.collector().ambient_scan(t, rng_);

  const FingerprintDatabase stale_db = fresh_db();
  Rng rng_fresh(42);
  const Matrix x_now = scenario_.collector().survey_all(t, rng_fresh);
  const FingerprintDatabase current_db(x_now, ambient_now, t);

  const RassLocalizer rass_stale(scenario_.deployment(), stale_db, ambient_now, RassConfig{},
                                 "RASS w/o rec.");
  const RassLocalizer rass_fresh(scenario_.deployment(), current_db, ambient_now, RassConfig{},
                                 "RASS w/ rec.");

  double err_stale = 0.0, err_fresh = 0.0;
  for (std::size_t j = 4; j < 96; j += 7) {
    const Point2 target = scenario_.deployment().grid().center(j);
    const Vector y = scenario_.collector().observe(target, t, rng_);
    err_stale += distance(rass_stale.localize(y), target);
    err_fresh += distance(rass_fresh.localize(y), target);
  }
  EXPECT_LT(err_fresh, err_stale);
}

TEST_F(RassTest, FallsBackWhenNoLinkCrossesThreshold) {
  const FingerprintDatabase db = fresh_db();
  RassConfig cfg;
  cfg.dynamic_threshold_db = 50.0;  // nothing will cross it
  const RassLocalizer rass(scenario_.deployment(), db, ambient0_, cfg);
  const Point2 target = scenario_.deployment().grid().center(40);
  const Vector y = scenario_.collector().observe(target, 0.0, rng_);
  // Falls back to the most-affected link's midpoint: still inside the room.
  const Point2 est = rass.localize(y);
  EXPECT_GE(est.y, 0.0);
  EXPECT_LE(est.y, 4.8);
}

TEST_F(RassTest, VariantNameIsReported) {
  const FingerprintDatabase db = fresh_db();
  const RassLocalizer rass(scenario_.deployment(), db, ambient0_, RassConfig{}, "RASS w/ rec.");
  EXPECT_EQ(rass.name(), "RASS w/ rec.");
}

TEST_F(RassTest, RejectsBadConfig) {
  const FingerprintDatabase db = fresh_db();
  RassConfig cfg;
  cfg.dynamic_threshold_db = 0.0;
  EXPECT_THROW(RassLocalizer(scenario_.deployment(), db, ambient0_, cfg),
               std::invalid_argument);
  cfg = RassConfig{};
  cfg.knn_k = 0;
  EXPECT_THROW(RassLocalizer(scenario_.deployment(), db, ambient0_, cfg),
               std::invalid_argument);
  cfg = RassConfig{};
  cfg.coarse_weight = 1.5;
  EXPECT_THROW(RassLocalizer(scenario_.deployment(), db, ambient0_, cfg),
               std::invalid_argument);
}

TEST_F(RassTest, RejectsMismatchedShapes) {
  const FingerprintDatabase db = fresh_db();
  Vector bad_ambient{1.0};
  EXPECT_THROW(RassLocalizer(scenario_.deployment(), db, bad_ambient), std::invalid_argument);
}

TEST_F(RassTest, RejectsWrongObservationLength) {
  const FingerprintDatabase db = fresh_db();
  const RassLocalizer rass(scenario_.deployment(), db, ambient0_);
  const std::vector<double> bad{1.0, 2.0};
  EXPECT_THROW(rass.localize(bad), std::invalid_argument);
}

}  // namespace
}  // namespace tafloc
