// ZoneManager + ControlServer: in-process dispatch across every packet
// type and fault-containment path, plus a socket-level round trip over
// a live event loop.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>

#include "tafloc/daemon/daemon.h"
#include "tafloc/sim/scenario.h"
#include "tafloc/util/rng.h"

namespace tafloc::daemon {
namespace {

namespace fs = std::filesystem;

DaemonConfig two_zone_config() {
  std::istringstream in(
      "socket = /tmp/unused.sock\n"
      "[zone office]\n"
      "seed = 21\n"
      "[zone lab]\n"
      "seed = 22\n");
  return DaemonConfig::parse(in);
}

storage::Frame reframe(const std::string& bytes) {
  storage::Frame frame;
  std::size_t pos = 0;
  EXPECT_EQ(storage::decode_frame(bytes, pos, frame), storage::FrameStatus::kOk);
  return frame;
}

Vector office_query() {
  Scenario scenario = Scenario::paper_room(21);
  Rng rng(5);
  return scenario.collector().observe({2.0, 2.0}, 0.0, rng);
}

class DispatchTest : public ::testing::Test {
 protected:
  DispatchTest()
      : config_(two_zone_config()),
        zones_(config_),
        server_(zones_, loop_, "/tmp/tafloc_dispatch_unused.sock") {
    zones_.start_all();
  }
  ~DispatchTest() override { zones_.drain_all(); }

  DaemonConfig config_;
  EventLoop loop_;
  ZoneManager zones_;
  ControlServer server_;
};

TEST_F(DispatchTest, StartAllBringsEveryZoneToServing) {
  ASSERT_EQ(zones_.zones().size(), 2u);
  for (const auto& zone : zones_.zones()) {
    EXPECT_EQ(zone->state(), ZoneState::kServing) << zone->name();
  }
  EXPECT_NE(zones_.find("office"), nullptr);
  EXPECT_NE(zones_.find("lab"), nullptr);
  EXPECT_EQ(zones_.find("warehouse"), nullptr);
}

TEST_F(DispatchTest, LocalizeDispatch) {
  LocalizeRequest req{"office", office_query()};
  const LocalizeResponse res = LocalizeResponse::decode(reframe(server_.dispatch(reframe(req.encode(1)))));
  EXPECT_EQ(res.status, WireStatus::kOk);
  EXPECT_TRUE(res.served);
  EXPECT_GT(res.confidence, 0.0);
  EXPECT_EQ(zones_.find("office")->status().queries, 1u);
}

TEST_F(DispatchTest, UnknownZoneIsAWireStatusNotACrash) {
  LocalizeRequest req{"warehouse", office_query()};
  const LocalizeResponse res = LocalizeResponse::decode(reframe(server_.dispatch(reframe(req.encode(1)))));
  EXPECT_EQ(res.status, WireStatus::kUnknownZone);
  EXPECT_FALSE(res.served);
}

TEST_F(DispatchTest, BadQueryIsABadRequestNotACrash) {
  // Wrong-length RSS vector: the zone throws invalid_argument; dispatch
  // must map it to a kError packet with kBadRequest.
  LocalizeRequest req{"office", {1.0, 2.0, 3.0}};
  const storage::Frame reply = reframe(server_.dispatch(reframe(req.encode(1))));
  ASSERT_EQ(reply.type, static_cast<std::uint32_t>(PacketType::kError));
  const ErrorResponse err = ErrorResponse::decode(reply);
  EXPECT_EQ(err.status, WireStatus::kBadRequest);
  EXPECT_FALSE(err.message.empty());
}

TEST_F(DispatchTest, DrainedZoneReportsNotServing) {
  AdminRequest drain{AdminOp::kDrain, "lab"};
  const AdminResponse ack = AdminResponse::decode(reframe(server_.dispatch(reframe(drain.encode(1)))));
  EXPECT_EQ(ack.status, WireStatus::kOk);
  EXPECT_EQ(zones_.find("lab")->state(), ZoneState::kStopped);

  LocalizeRequest req{"lab", office_query()};
  const LocalizeResponse res = LocalizeResponse::decode(reframe(server_.dispatch(reframe(req.encode(2)))));
  EXPECT_EQ(res.status, WireStatus::kNotServing);
}

TEST_F(DispatchTest, StatusCoversAllZonesOrOne) {
  const StatusResponse all = StatusResponse::decode(reframe(server_.dispatch(reframe(StatusRequest{""}.encode(1)))));
  EXPECT_EQ(all.status, WireStatus::kOk);
  ASSERT_EQ(all.zones.size(), 2u);

  const StatusResponse one = StatusResponse::decode(reframe(server_.dispatch(reframe(StatusRequest{"lab"}.encode(2)))));
  ASSERT_EQ(one.zones.size(), 1u);
  EXPECT_EQ(one.zones[0].zone, "lab");
  EXPECT_EQ(one.zones[0].state, "serving");

  const StatusResponse none = StatusResponse::decode(reframe(server_.dispatch(reframe(StatusRequest{"warehouse"}.encode(3)))));
  EXPECT_EQ(none.status, WireStatus::kUnknownZone);
}

TEST_F(DispatchTest, ProbeAndResurveyAndAmbientDispatch) {
  const ProbeResponse probe = ProbeResponse::decode(reframe(server_.dispatch(reframe(ProbeRequest{"office"}.encode(1)))));
  EXPECT_EQ(probe.status, WireStatus::kOk);
  EXPECT_LT(probe.error_m, 2.0);  // sanity, not an accuracy benchmark.

  const ResurveyResponse sur = ResurveyResponse::decode(reframe(server_.dispatch(reframe(ResurveyRequest{"office", 2.0}.encode(2)))));
  EXPECT_EQ(sur.status, WireStatus::kOk);
  EXPECT_TRUE(sur.accepted);
  EXPECT_EQ(zones_.find("office")->state(), ZoneState::kResurveying);
  zones_.jobs().wait_idle();  // let the supervised solve land...
  zones_.poll_all();          // ...and the serving thread commit it.
  EXPECT_EQ(zones_.find("office")->state(), ZoneState::kServing);
  EXPECT_EQ(zones_.find("office")->status().updates_committed, 1u);

  Scenario scenario = Scenario::paper_room(21);
  Rng rng(6);
  AmbientRequest amb{"office", scenario.collector().ambient_scan(3.0, rng), 3.0};
  const AmbientResponse ares = AmbientResponse::decode(reframe(server_.dispatch(reframe(amb.encode(3)))));
  EXPECT_EQ(ares.status, WireStatus::kOk);
  EXPECT_TRUE(ares.accepted);
}

TEST_F(DispatchTest, MetricsDispatchSnapshotsEveryZoneOrOne) {
  // Drive a little traffic so the snapshot has something to show.
  for (int i = 0; i < 3; ++i) {
    LocalizeRequest req{"office", office_query()};
    (void)server_.dispatch(reframe(req.encode(1)));
  }
  const MetricsResponse all =
      MetricsResponse::decode(reframe(server_.dispatch(reframe(MetricsRequest{""}.encode(2)))));
  EXPECT_EQ(all.status, WireStatus::kOk);
  ASSERT_EQ(all.zones.size(), 2u);

  const MetricsResponse one = MetricsResponse::decode(
      reframe(server_.dispatch(reframe(MetricsRequest{"office"}.encode(3)))));
  ASSERT_EQ(one.zones.size(), 1u);
  const ZoneMetrics& m = one.zones[0];
  EXPECT_EQ(m.zone, "office");
  EXPECT_EQ(m.state, "serving");
  EXPECT_GT(m.uptime_ns, 0u);
  bool saw_latency = false;
  for (const WireHistogram& h : m.histograms) {
    if (h.name == "zone.request_seconds") {
      saw_latency = true;
      EXPECT_EQ(h.count, 3u);
      EXPECT_GT(h.p50, 0.0);
      EXPECT_LE(h.p50, h.p95);
      EXPECT_LE(h.p95, h.p99);
    }
  }
  EXPECT_TRUE(saw_latency);

  const MetricsResponse none = MetricsResponse::decode(
      reframe(server_.dispatch(reframe(MetricsRequest{"warehouse"}.encode(4)))));
  EXPECT_EQ(none.status, WireStatus::kUnknownZone);
}

TEST_F(DispatchTest, TraceDispatchReturnsClientForcedSamples) {
  LocalizeRequest req{"office", office_query()};
  req.trace_id = 9001;
  req.trace_sampled = true;  // zone has no periodic sampler configured.
  (void)server_.dispatch(reframe(req.encode(1)));

  const TraceResponse res = TraceResponse::decode(
      reframe(server_.dispatch(reframe(TraceRequest{"office", 16, false}.encode(2)))));
  EXPECT_EQ(res.status, WireStatus::kOk);
  EXPECT_EQ(res.total_recorded, 1u);
  EXPECT_EQ(res.dropped, 0u);
  EXPECT_NE(res.jsonl.find("\"trace_id\":9001"), std::string::npos) << res.jsonl;
  EXPECT_NE(res.jsonl.find("\"name\":\"zone.serve\""), std::string::npos) << res.jsonl;

  const TraceResponse missing = TraceResponse::decode(
      reframe(server_.dispatch(reframe(TraceRequest{"warehouse", 16, false}.encode(3)))));
  EXPECT_EQ(missing.status, WireStatus::kUnknownZone);
}

TEST_F(DispatchTest, ShedsAreCountedWhenAdmissionIsRefused) {
  AdminRequest drain{AdminOp::kDrain, "lab"};
  (void)server_.dispatch(reframe(drain.encode(1)));
  LocalizeRequest req{"lab", office_query()};
  (void)server_.dispatch(reframe(req.encode(2)));
  (void)server_.dispatch(reframe(ProbeRequest{"lab"}.encode(3)));
  EXPECT_EQ(zones_.find("lab")->status().sheds, 2u);
}

TEST_F(DispatchTest, VersionSkewedLocalizeLeavesZonesAndDispatchUntouched) {
  // A v2 client's localize payload (zone + rss, no trace context): the
  // daemon must answer kBadRequest for THAT packet and keep serving --
  // no zone leaves its lifecycle state, no query is counted.
  storage::ByteWriter payload;
  payload.put_u32(kWireVersion - 1);
  const std::string zone = "office";
  payload.put_u8_span({reinterpret_cast<const std::uint8_t*>(zone.data()), zone.size()});
  const Vector rss = office_query();
  payload.put_f64_span(rss);
  const std::string bytes = storage::encode_frame(
      static_cast<std::uint32_t>(PacketType::kLocalizeRequest), 7, payload.bytes());

  const storage::Frame reply = reframe(server_.dispatch(reframe(bytes)));
  ASSERT_EQ(reply.type, static_cast<std::uint32_t>(PacketType::kError));
  const ErrorResponse err = ErrorResponse::decode(reply);
  EXPECT_EQ(err.status, WireStatus::kBadRequest);
  EXPECT_NE(err.message.find("version"), std::string::npos) << err.message;
  EXPECT_EQ(zones_.find("office")->state(), ZoneState::kServing);
  EXPECT_EQ(zones_.find("office")->status().queries, 0u);

  // The very next well-formed packet on the same dispatch path serves.
  LocalizeRequest good{"office", office_query()};
  const LocalizeResponse res =
      LocalizeResponse::decode(reframe(server_.dispatch(reframe(good.encode(8)))));
  EXPECT_EQ(res.status, WireStatus::kOk);
  EXPECT_TRUE(res.served);
}

TEST_F(DispatchTest, VersionSkewGetsAnErrorPacketBack) {
  storage::ByteWriter payload;
  payload.put_u32(99);  // future wire version.
  const std::string bytes = storage::encode_frame(
      static_cast<std::uint32_t>(PacketType::kLocalizeRequest), 9, payload.bytes());
  const storage::Frame reply = reframe(server_.dispatch(reframe(bytes)));
  ASSERT_EQ(reply.type, static_cast<std::uint32_t>(PacketType::kError));
  const ErrorResponse err = ErrorResponse::decode(reply);
  EXPECT_EQ(err.status, WireStatus::kBadRequest);
  EXPECT_FALSE(err.message.empty());
}

TEST_F(DispatchTest, UnexpectedPacketTypeGetsAnErrorPacketBack) {
  // A client must never send a *response* type at the daemon.
  AdminResponse rogue;
  const storage::Frame reply = reframe(server_.dispatch(reframe(rogue.encode(1))));
  EXPECT_EQ(reply.type, static_cast<std::uint32_t>(PacketType::kError));
}

TEST_F(DispatchTest, ReloadWithoutHandlerIsRefusedWithHandlerRuns) {
  AdminRequest reload{AdminOp::kReload, ""};
  const AdminResponse refused = AdminResponse::decode(reframe(server_.dispatch(reframe(reload.encode(1)))));
  EXPECT_EQ(refused.status, WireStatus::kBadRequest);

  server_.set_reload_handler([] { return std::string("2 zone(s) updated"); });
  const AdminResponse ok = AdminResponse::decode(reframe(server_.dispatch(reframe(reload.encode(2)))));
  EXPECT_EQ(ok.status, WireStatus::kOk);
  EXPECT_NE(ok.message.find("2 zone(s)"), std::string::npos);
}

TEST(ZoneManagerReload, AppliesSchedulerChangesAndRefusesTopology) {
  DaemonConfig config = two_zone_config();
  ZoneManager zones(config);
  zones.start_all();

  std::istringstream in(
      "socket = /tmp/unused.sock\n"
      "[zone office]\n"
      "seed = 21\n"
      "staleness_threshold_db = 9.5\n"
      "[zone forge]\n"
      "seed = 99\n");
  const std::string summary = zones.reload(DaemonConfig::parse(in));
  EXPECT_EQ(zones.find("office")->config().scheduler.staleness_threshold_db, 9.5);
  EXPECT_NE(summary.find("forge"), std::string::npos);  // new zone refused, reported.
  EXPECT_NE(summary.find("lab"), std::string::npos);    // removed zone reported.
  zones.drain_all();
}

TEST(ZoneManagerTelemetry, ExportWritesOneLabeledFilePerZone) {
  const fs::path dir =
      fs::temp_directory_path() / ("tafloc_daemon_telemetry_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  DaemonConfig config = two_zone_config();
  {
    ZoneManager zones(config);
    zones.start_all();
    EXPECT_EQ(zones.export_telemetry(dir.string()), 2u);
    zones.drain_all();
  }
  for (const char* name : {"office", "lab"}) {
    std::ifstream in(dir / (std::string(name) + ".jsonl"));
    ASSERT_TRUE(in.good()) << name;
    std::string line;
    ASSERT_TRUE(std::getline(in, line)) << name;
    EXPECT_NE(line.find("\"zone\":\"" + std::string(name) + "\""), std::string::npos) << line;
  }
  fs::remove_all(dir);
}

// ---- socket level: the full loop -> accept -> frame -> dispatch path.

class RawClient {
 public:
  explicit RawClient(const std::string& path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) throw std::runtime_error("socket() failed");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd_);
      throw std::runtime_error("connect() failed: " + path);
    }
  }
  ~RawClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  void send(const std::string& bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = ::write(fd_, bytes.data() + off, bytes.size() - off);
      ASSERT_GT(n, 0);
      off += static_cast<std::size_t>(n);
    }
  }

  /// Blocking read until one whole frame (or peer close -> kEof).
  bool recv_frame(storage::Frame& out) {
    std::string buffer;
    char chunk[4096];
    while (true) {
      ExtractResult r = extract_packet(buffer, out);
      if (r == ExtractResult::kPacket) return true;
      if (r == ExtractResult::kCorrupt) return false;
      const ssize_t n = ::read(fd_, chunk, sizeof chunk);
      if (n <= 0) return false;
      buffer.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_ = -1;
};

TEST(ControlServerSocket, ServesFramesAndSurvivesGarbage) {
  const std::string socket_path =
      (fs::temp_directory_path() / ("tafloc_daemon_sock_" + std::to_string(::getpid()))).string();
  std::istringstream in("socket = " + socket_path + "\n[zone office]\nseed = 21\n");
  const DaemonConfig config = DaemonConfig::parse(in);

  EventLoop loop;
  ZoneManager zones(config);
  ASSERT_EQ(zones.start_all(), 1u);
  ControlServer server(zones, loop, socket_path);
  server.open();
  std::thread loop_thread([&loop] { loop.run(50); });

  {
    RawClient client(socket_path);
    client.send(StatusRequest{""}.encode(1));
    storage::Frame frame;
    ASSERT_TRUE(client.recv_frame(frame));
    const StatusResponse status = StatusResponse::decode(frame);
    ASSERT_EQ(status.zones.size(), 1u);
    EXPECT_EQ(status.zones[0].zone, "office");

    // Two packets in one write: both must be answered, in order.
    client.send(ProbeRequest{"office"}.encode(2) + StatusRequest{"office"}.encode(3));
    ASSERT_TRUE(client.recv_frame(frame));
    EXPECT_EQ(frame.seq, 2u);
    ASSERT_TRUE(client.recv_frame(frame));
    EXPECT_EQ(frame.seq, 3u);
  }

  {
    // Garbage bytes: the daemon replies with one error packet (best
    // effort) and closes this connection -- and only this connection.
    RawClient garbage(socket_path);
    garbage.send(std::string(64, '\xfe'));
    storage::Frame frame;
    while (garbage.recv_frame(frame)) {
    }  // drain until the daemon closes on us.
  }

  {
    // The daemon is still healthy for a fresh client.
    RawClient again(socket_path);
    again.send(ProbeRequest{"office"}.encode(9));
    storage::Frame frame;
    ASSERT_TRUE(again.recv_frame(frame));
    const ProbeResponse probe = ProbeResponse::decode(frame);
    EXPECT_EQ(probe.status, WireStatus::kOk);
  }

  loop.post([&] {
    server.close();
    loop.stop();
  });
  loop_thread.join();
  zones.drain_all();
  fs::remove(socket_path);
}

}  // namespace
}  // namespace tafloc::daemon
