#include "tafloc/loc/presence.h"

#include <gtest/gtest.h>

#include "tafloc/sim/scenario.h"
#include "tafloc/sim/trace.h"

namespace tafloc {
namespace {

TEST(PresenceDetector, ScoreIsRmsDynamics) {
  PresenceDetector det(Vector{-30.0, -40.0});
  const std::vector<double> rss{-33.0, -44.0};  // dynamics 3 and 4
  EXPECT_NEAR(det.score(rss), std::sqrt((9.0 + 16.0) / 2.0), 1e-12);
}

TEST(PresenceDetector, ZeroScoreOnBaseline) {
  PresenceDetector det(Vector{-30.0, -40.0});
  const std::vector<double> rss{-30.0, -40.0};
  EXPECT_DOUBLE_EQ(det.score(rss), 0.0);
}

TEST(PresenceDetector, ThresholdRequiresCalibration) {
  PresenceDetector det(Vector{-30.0});
  EXPECT_FALSE(det.calibrated());
  EXPECT_THROW(det.threshold(), std::logic_error);
}

TEST(PresenceDetector, CalibrationSetsThresholdAboveEmptyScores) {
  PresenceDetector det(Vector{-30.0, -40.0});
  for (double eps : {0.1, -0.2, 0.15, -0.05, 0.12}) {
    const std::vector<double> rss{-30.0 + eps, -40.0 - eps};
    det.calibrate_empty(rss);
  }
  EXPECT_TRUE(det.calibrated());
  const double thr = det.threshold();
  for (double eps : {0.1, -0.2, 0.15}) {
    const std::vector<double> rss{-30.0 + eps, -40.0 - eps};
    EXPECT_LT(det.score(rss), thr);
  }
}

TEST(PresenceDetector, HysteresisPreventsChattering) {
  PresenceConfig cfg;
  cfg.hysteresis_db = 0.5;
  cfg.min_calibration_samples = 2;
  PresenceDetector det(Vector{0.0}, cfg);
  // Empty-room scores 0.1 and 0.3: threshold = 0.2 + 4 * 0.1414 ~ 0.77,
  // release level ~ 0.27.  (The observation is a single-link RSS; its
  // score against the 0 baseline is its absolute value.)
  det.calibrate_empty(std::vector<double>{0.1});
  det.calibrate_empty(std::vector<double>{0.3});
  const double thr = det.threshold();
  ASSERT_GT(thr, 0.6);

  // Cross the set threshold: present.
  EXPECT_TRUE(det.update(std::vector<double>{thr + 0.2}));
  // Drop slightly below the set level but above release: still present.
  EXPECT_TRUE(det.update(std::vector<double>{thr - 0.2}));
  // Drop below the release level: absent.
  EXPECT_FALSE(det.update(std::vector<double>{0.1}));
}

TEST(PresenceDetector, RejectsBadConfig) {
  PresenceConfig cfg;
  cfg.sigma_multiplier = 0.0;
  EXPECT_THROW(PresenceDetector(Vector{0.0}, cfg), std::invalid_argument);
  cfg = PresenceConfig{};
  cfg.min_calibration_samples = 1;
  EXPECT_THROW(PresenceDetector(Vector{0.0}, cfg), std::invalid_argument);
  EXPECT_THROW(PresenceDetector(Vector{}), std::invalid_argument);
}

TEST(PresenceDetector, RejectsWrongLengths) {
  PresenceDetector det(Vector{0.0, 0.0});
  const std::vector<double> bad{1.0};
  EXPECT_THROW(det.score(bad), std::invalid_argument);
  EXPECT_THROW(det.set_ambient(Vector{1.0}), std::invalid_argument);
}

TEST(PresenceDetector, SetAmbientKeepsCalibration) {
  PresenceConfig cfg;
  cfg.min_calibration_samples = 2;
  PresenceDetector det(Vector{0.0}, cfg);
  det.calibrate_empty(std::vector<double>{0.1});
  det.calibrate_empty(std::vector<double>{-0.1});
  det.set_ambient(Vector{5.0});
  EXPECT_TRUE(det.calibrated());
  // Score is now relative to the new baseline.
  EXPECT_DOUBLE_EQ(det.score(std::vector<double>{5.0}), 0.0);
}

TEST(PresenceDetector, EndToEndOnSimulatedRoom) {
  const Scenario s = Scenario::paper_room(9);
  Rng rng(9);
  Vector ambient = s.collector().ambient_scan(0.0, rng);
  PresenceDetector det(std::move(ambient));

  // Calibrate from empty-room observations.
  for (int i = 0; i < 10; ++i) det.calibrate_empty(s.collector().observe_ambient(0.0, rng));
  ASSERT_TRUE(det.calibrated());

  // Empty observations stay below threshold; occupied ones cross it.
  int false_alarms = 0, misses = 0;
  for (int i = 0; i < 20; ++i) {
    if (det.is_present(s.collector().observe_ambient(0.0, rng))) ++false_alarms;
    const Point2 p = random_positions(s.deployment().grid(), 1, rng).front();
    if (!det.is_present(s.collector().observe(p, 0.0, rng))) ++misses;
  }
  EXPECT_LE(false_alarms, 2);
  EXPECT_LE(misses, 2);
}

TEST(PresenceDetector, StatefulUpdateTracksOccupancy) {
  const Scenario s = Scenario::paper_room(10);
  Rng rng(10);
  PresenceDetector det(s.collector().ambient_scan(0.0, rng));
  for (int i = 0; i < 8; ++i) det.calibrate_empty(s.collector().observe_ambient(0.0, rng));

  EXPECT_FALSE(det.present());
  const Point2 p{3.6, 2.4};
  det.update(s.collector().observe(p, 0.0, rng));
  EXPECT_TRUE(det.present());
  for (int i = 0; i < 3; ++i) det.update(s.collector().observe_ambient(0.0, rng));
  EXPECT_FALSE(det.present());
}

}  // namespace
}  // namespace tafloc
