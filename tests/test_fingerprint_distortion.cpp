#include "tafloc/fingerprint/distortion.h"

#include <gtest/gtest.h>

#include "tafloc/sim/scenario.h"

namespace tafloc {
namespace {

TEST(DistortionMask, CountsAndFraction) {
  DistortionMask mask{Matrix::from_rows({{1.0, 0.0}, {1.0, 1.0}}),
                      Matrix::from_rows({{0.0, 1.0}, {0.0, 0.0}})};
  EXPECT_EQ(mask.num_distorted(), 1u);
  EXPECT_EQ(mask.num_undistorted(), 3u);
  EXPECT_DOUBLE_EQ(mask.distorted_fraction(), 0.25);
}

TEST(DistortionDetector, RejectsBadConfig) {
  DistortionConfig cfg;
  cfg.rss_drop_threshold_db = 0.0;
  EXPECT_THROW(DistortionDetector{cfg}, std::invalid_argument);
  cfg = DistortionConfig{};
  cfg.excess_path_threshold_m = -1.0;
  EXPECT_THROW(DistortionDetector{cfg}, std::invalid_argument);
}

TEST(DistortionDetector, DataDrivenFlagsClearDrops) {
  // Link ambient = -30; entries more than 2 dB below are distorted.
  const Matrix x = Matrix::from_rows({{-30.1, -36.0, -29.0}});
  const Vector ambient{-30.0};
  const DistortionDetector det;
  const DistortionMask mask = det.detect_from_data(x, ambient);
  EXPECT_DOUBLE_EQ(mask.distorted(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(mask.distorted(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(mask.distorted(0, 2), 0.0);
}

TEST(DistortionDetector, MasksAreComplementary) {
  const Scenario s = Scenario::paper_room(1);
  Rng rng(1);
  const Matrix x = s.collector().survey_all(0.0, rng);
  const Vector ambient = s.collector().ambient_scan(0.0, rng);
  const DistortionMask mask = DistortionDetector().detect_from_data(x, ambient);
  for (std::size_t i = 0; i < x.rows(); ++i)
    for (std::size_t j = 0; j < x.cols(); ++j)
      EXPECT_DOUBLE_EQ(mask.distorted(i, j) + mask.undistorted(i, j), 1.0);
}

TEST(DistortionDetector, GeometricMatchesEllipseMembership) {
  const Deployment d = Deployment::paper_room();
  DistortionConfig cfg;
  cfg.excess_path_threshold_m = 0.35;
  const DistortionMask mask = DistortionDetector(cfg).detect_geometric(d);
  for (std::size_t i = 0; i < d.num_links(); ++i)
    for (std::size_t j = 0; j < d.num_grids(); ++j) {
      const bool inside =
          excess_path_length(d.grid().center(j), d.links()[i]) < 0.35;
      EXPECT_DOUBLE_EQ(mask.distorted(i, j), inside ? 1.0 : 0.0);
    }
}

TEST(DistortionDetector, GeometricAndDataDrivenLargelyAgree) {
  // On clean simulated data the two classifications should coincide for
  // the overwhelming majority of entries.
  const Scenario s = Scenario::paper_room(2);
  Rng rng(2);
  const Matrix x = s.collector().survey_all(0.0, rng);
  const Vector ambient = s.collector().ambient_scan(0.0, rng);
  const DistortionMask from_data = DistortionDetector().detect_from_data(x, ambient);
  const DistortionMask from_geom = DistortionDetector().detect_geometric(s.deployment());
  std::size_t disagreements = 0;
  for (std::size_t i = 0; i < x.rows(); ++i)
    for (std::size_t j = 0; j < x.cols(); ++j)
      if (from_data.distorted(i, j) != from_geom.distorted(i, j)) ++disagreements;
  // Multipath ghost responses make the data-driven detector flag some
  // far-from-LoS entries the geometric test cannot see, so agreement is
  // majority-level, not exact.
  EXPECT_LT(static_cast<double>(disagreements) / static_cast<double>(x.size()), 0.40);
}

TEST(DistortionDetector, EveryGridDistortsSomeLink) {
  // The deployment covers the area: a target anywhere must largely
  // distort at least one link, or it would be invisible.
  const Scenario s = Scenario::paper_room(3);
  Rng rng(3);
  const Matrix x = s.collector().survey_all(0.0, rng);
  const Vector ambient = s.collector().ambient_scan(0.0, rng);
  const DistortionMask mask = DistortionDetector().detect_from_data(x, ambient);
  for (std::size_t j = 0; j < x.cols(); ++j) {
    double col_sum = 0.0;
    for (std::size_t i = 0; i < x.rows(); ++i) col_sum += mask.distorted(i, j);
    EXPECT_GE(col_sum, 1.0) << "grid " << j << " distorts no link";
  }
}

TEST(DistortionDetector, MostEntriesAreUndistorted) {
  // M >> footprint of one target: the mask must be mostly undistorted --
  // that is exactly why the known entries carry so much information.
  const Scenario s = Scenario::paper_room(4);
  Rng rng(4);
  const Matrix x = s.collector().survey_all(0.0, rng);
  const Vector ambient = s.collector().ambient_scan(0.0, rng);
  const DistortionMask mask = DistortionDetector().detect_from_data(x, ambient);
  EXPECT_LT(mask.distorted_fraction(), 0.5);
  EXPECT_GT(mask.distorted_fraction(), 0.02);
}

TEST(DistortionDetector, DetectFromDataValidatesShapes) {
  const DistortionDetector det;
  const Matrix x(2, 3, -30.0);
  const Vector bad_ambient{1.0};
  EXPECT_THROW(det.detect_from_data(x, bad_ambient), std::invalid_argument);
  Matrix empty;
  EXPECT_THROW(det.detect_from_data(empty, bad_ambient), std::invalid_argument);
}

TEST(KnownEntryMatrix, FillsAmbientWhereUndistorted) {
  DistortionMask mask{Matrix::from_rows({{1.0, 0.0}, {0.0, 1.0}}),
                      Matrix::from_rows({{0.0, 1.0}, {1.0, 0.0}})};
  const Vector ambient{-30.0, -40.0};
  const Matrix known = known_entry_matrix(mask, ambient);
  EXPECT_DOUBLE_EQ(known(0, 0), -30.0);
  EXPECT_DOUBLE_EQ(known(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(known(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(known(1, 1), -40.0);
}

TEST(KnownEntryMatrix, RejectsMismatchedAmbient) {
  DistortionMask mask{Matrix(2, 2, 1.0), Matrix(2, 2, 0.0)};
  const Vector bad{1.0};
  EXPECT_THROW(known_entry_matrix(mask, bad), std::invalid_argument);
}

TEST(KnownEntryMatrix, KnownEntriesApproximateTruth) {
  // The whole premise of property (i): undistorted entries of the true
  // fingerprint matrix equal the link ambient RSS (within noise).
  const Scenario s = Scenario::paper_room(5);
  Rng rng(5);
  const Matrix x = s.collector().survey_all(0.0, rng);
  const Vector ambient = s.collector().ambient_scan(0.0, rng);
  const DistortionMask mask = DistortionDetector().detect_from_data(x, ambient);
  const Matrix known = known_entry_matrix(mask, ambient);
  double worst = 0.0;
  for (std::size_t i = 0; i < x.rows(); ++i)
    for (std::size_t j = 0; j < x.cols(); ++j)
      if (mask.undistorted(i, j) == 1.0)
        worst = std::max(worst, std::abs(known(i, j) - x(i, j)));
  EXPECT_LT(worst, 7.0);  // bounded by threshold + ghost amplitude + noise tails
}

}  // namespace
}  // namespace tafloc
