#include "tafloc/sim/grid.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace tafloc {
namespace {

TEST(GridMap, PaperRoomDimensions) {
  // 7.2 m x 4.8 m at 0.6 m cells: 12 x 8 = 96 grids (paper Fig. 2).
  const GridMap g(7.2, 4.8, 0.6);
  EXPECT_EQ(g.nx(), 12u);
  EXPECT_EQ(g.ny(), 8u);
  EXPECT_EQ(g.num_cells(), 96u);
}

TEST(GridMap, RejectsNonMultipleExtent) {
  EXPECT_THROW(GridMap(7.0, 4.8, 0.6), std::invalid_argument);
  EXPECT_THROW(GridMap(7.2, 4.7, 0.6), std::invalid_argument);
}

TEST(GridMap, RejectsBadSizes) {
  EXPECT_THROW(GridMap(6.0, 6.0, 0.0), std::invalid_argument);
  EXPECT_THROW(GridMap(0.0, 6.0, 0.6), std::invalid_argument);
  EXPECT_THROW(GridMap(6.0, -1.0, 0.6), std::invalid_argument);
}

TEST(GridMap, CenterOfFirstAndLastCells) {
  const GridMap g(1.2, 1.2, 0.6);  // 2x2
  const Point2 c0 = g.center(0);
  EXPECT_DOUBLE_EQ(c0.x, 0.3);
  EXPECT_DOUBLE_EQ(c0.y, 0.3);
  const Point2 c3 = g.center(3);
  EXPECT_DOUBLE_EQ(c3.x, 0.9);
  EXPECT_DOUBLE_EQ(c3.y, 0.9);
}

TEST(GridMap, RowMajorIndexing) {
  const GridMap g(1.8, 1.2, 0.6);  // 3x2
  EXPECT_EQ(g.index(0, 0), 0u);
  EXPECT_EQ(g.index(2, 0), 2u);
  EXPECT_EQ(g.index(0, 1), 3u);
  EXPECT_EQ(g.ix_of(4), 1u);
  EXPECT_EQ(g.iy_of(4), 1u);
}

TEST(GridMap, IndexRoundTrip) {
  const GridMap g(3.0, 2.4, 0.6);
  for (std::size_t j = 0; j < g.num_cells(); ++j)
    EXPECT_EQ(g.index(g.ix_of(j), g.iy_of(j)), j);
}

TEST(GridMap, CellOfContainsItsCenter) {
  const GridMap g(7.2, 4.8, 0.6);
  for (std::size_t j = 0; j < g.num_cells(); ++j) {
    const auto cell = g.cell_of(g.center(j));
    ASSERT_TRUE(cell.has_value());
    EXPECT_EQ(*cell, j);
  }
}

TEST(GridMap, CellOfOutsideReturnsNullopt) {
  const GridMap g(6.0, 6.0, 0.6);
  EXPECT_FALSE(g.cell_of({-0.1, 3.0}).has_value());
  EXPECT_FALSE(g.cell_of({3.0, -0.1}).has_value());
  EXPECT_FALSE(g.cell_of({6.0, 3.0}).has_value());  // right edge exclusive
  EXPECT_FALSE(g.cell_of({3.0, 6.0}).has_value());
  EXPECT_TRUE(g.cell_of({0.0, 0.0}).has_value());   // left edge inclusive
}

TEST(GridMap, Neighbors4Interior) {
  const GridMap g(1.8, 1.8, 0.6);  // 3x3
  auto nb = g.neighbors4(4);       // center cell
  std::sort(nb.begin(), nb.end());
  const std::vector<std::size_t> expect{1, 3, 5, 7};
  EXPECT_EQ(nb, expect);
}

TEST(GridMap, Neighbors4Corner) {
  const GridMap g(1.8, 1.8, 0.6);
  auto nb = g.neighbors4(0);
  std::sort(nb.begin(), nb.end());
  const std::vector<std::size_t> expect{1, 3};
  EXPECT_EQ(nb, expect);
}

TEST(GridMap, AdjacencySymmetric) {
  const GridMap g(2.4, 1.8, 0.6);
  for (std::size_t a = 0; a < g.num_cells(); ++a)
    for (std::size_t b = 0; b < g.num_cells(); ++b)
      EXPECT_EQ(g.adjacent(a, b), g.adjacent(b, a));
}

TEST(GridMap, AdjacentExcludesDiagonalAndSelf) {
  const GridMap g(1.8, 1.8, 0.6);
  EXPECT_FALSE(g.adjacent(0, 0));
  EXPECT_FALSE(g.adjacent(0, 4));  // diagonal
  EXPECT_TRUE(g.adjacent(0, 1));
  EXPECT_TRUE(g.adjacent(0, 3));
}

TEST(GridMap, AdjacentDoesNotWrapRows) {
  const GridMap g(1.8, 1.2, 0.6);  // 3x2: cells 2 and 3 are on different rows
  EXPECT_FALSE(g.adjacent(2, 3));
}

TEST(GridMap, AllCentersCountAndOrder) {
  const GridMap g(1.2, 0.6, 0.6);  // 2x1
  const auto centers = g.all_centers();
  ASSERT_EQ(centers.size(), 2u);
  EXPECT_LT(centers[0].x, centers[1].x);
}

TEST(GridMap, BoundsChecks) {
  const GridMap g(1.2, 1.2, 0.6);
  EXPECT_THROW(g.center(4), std::out_of_range);
  EXPECT_THROW(g.index(2, 0), std::out_of_range);
  EXPECT_THROW(g.neighbors4(4), std::out_of_range);
}

}  // namespace
}  // namespace tafloc
