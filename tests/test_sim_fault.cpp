#include "tafloc/sim/fault.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace tafloc {
namespace {

TEST(FaultInjector, DeadFractionSilencesTheRightNumberOfLinks) {
  FaultConfig cfg;
  cfg.dead_fraction = 0.3;
  FaultInjector inj(10, cfg, 7);
  EXPECT_EQ(inj.dead_links().size(), 3u);
  std::vector<double> rss(10, -40.0);
  inj.apply(rss);
  std::size_t nans = 0;
  for (double v : rss)
    if (std::isnan(v)) ++nans;
  EXPECT_EQ(nans, 3u);
  for (std::size_t i : inj.dead_links()) EXPECT_TRUE(std::isnan(rss[i]));
  EXPECT_EQ(inj.queries_seen(), 1u);
  EXPECT_EQ(inj.corrupted_entries(), 3u);
}

TEST(FaultInjector, SameSeedSameSchedule) {
  FaultConfig cfg;
  cfg.dead_fraction = 0.2;
  cfg.nan_burst_rate = 0.1;
  cfg.spike_rate = 0.1;
  FaultInjector a(20, cfg, 99);
  FaultInjector b(20, cfg, 99);
  for (int q = 0; q < 20; ++q) {
    std::vector<double> ra(20, -40.0 - q), rb(20, -40.0 - q);
    a.apply(ra);
    b.apply(rb);
    for (std::size_t i = 0; i < ra.size(); ++i) {
      if (std::isnan(ra[i]))
        EXPECT_TRUE(std::isnan(rb[i]));
      else
        EXPECT_DOUBLE_EQ(ra[i], rb[i]);
    }
  }
}

TEST(FaultInjector, StuckLinksRepeatTheirFirstReading) {
  FaultConfig cfg;
  cfg.stuck_fraction = 0.5;
  FaultInjector inj(4, cfg, 3);
  ASSERT_EQ(inj.stuck_links().size(), 2u);
  std::vector<double> first(4);
  for (std::size_t i = 0; i < 4; ++i) first[i] = -40.0 - static_cast<double>(i);
  std::vector<double> rss = first;
  inj.apply(rss);
  // First reading passes through verbatim, later ones freeze at it.
  for (std::size_t i : inj.stuck_links()) EXPECT_DOUBLE_EQ(rss[i], first[i]);
  std::vector<double> later(4, -70.0);
  inj.apply(later);
  for (std::size_t i : inj.stuck_links()) EXPECT_DOUBLE_EQ(later[i], first[i]);
}

TEST(FaultInjector, NanBurstsEndAndDeadStuckSetsAreDisjoint) {
  FaultConfig cfg;
  cfg.dead_fraction = 0.25;
  cfg.stuck_fraction = 0.25;
  cfg.nan_burst_rate = 0.3;
  cfg.nan_burst_length = 2;
  FaultInjector inj(8, cfg, 11);
  for (std::size_t d : inj.dead_links())
    for (std::size_t s : inj.stuck_links()) EXPECT_NE(d, s);
  // Over many queries, non-dead links must emit finite readings again
  // after every burst (bursts have finite length).
  std::vector<std::size_t> finite_seen(8, 0);
  for (int q = 0; q < 200; ++q) {
    std::vector<double> rss(8, -40.0 - 0.01 * q);
    inj.apply(rss);
    for (std::size_t i = 0; i < 8; ++i)
      if (std::isfinite(rss[i])) ++finite_seen[i];
  }
  for (std::size_t i = 0; i < 8; ++i) {
    const bool dead = std::find(inj.dead_links().begin(), inj.dead_links().end(), i) !=
                      inj.dead_links().end();
    if (dead)
      EXPECT_EQ(finite_seen[i], 0u);
    else
      EXPECT_GT(finite_seen[i], 50u);  // bursts at rate 0.3 x length 2 leave ~60% finite
  }
}

TEST(FaultInjector, RejectsBadArguments) {
  FaultConfig cfg;
  cfg.dead_fraction = 1.5;
  EXPECT_THROW(FaultInjector(4, cfg, 1), std::invalid_argument);
  cfg = FaultConfig{};
  EXPECT_THROW(FaultInjector(0, cfg, 1), std::invalid_argument);
  FaultInjector inj(4, cfg, 1);
  std::vector<double> wrong(3, 0.0);
  EXPECT_THROW(inj.apply(wrong), std::invalid_argument);
}

}  // namespace
}  // namespace tafloc
