#include <gtest/gtest.h>

#include <set>

#include "tafloc/sim/scenario.h"
#include "tafloc/sim/trace.h"

namespace tafloc {
namespace {

TEST(Trace, RandomPositionsInsideArea) {
  const GridMap g(7.2, 4.8, 0.6);
  Rng rng(1);
  const auto pts = random_positions(g, 200, rng);
  ASSERT_EQ(pts.size(), 200u);
  for (const Point2& p : pts) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LT(p.x, 7.2);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LT(p.y, 4.8);
  }
}

TEST(Trace, RandomPositionsAreContinuous) {
  // Fine-grained evaluation: positions should generally NOT coincide
  // with grid centres.
  const GridMap g(6.0, 6.0, 0.6);
  Rng rng(2);
  const auto pts = random_positions(g, 50, rng);
  int on_center = 0;
  for (const Point2& p : pts) {
    const auto cell = g.cell_of(p);
    ASSERT_TRUE(cell.has_value());
    if (distance(p, g.center(*cell)) < 1e-9) ++on_center;
  }
  EXPECT_EQ(on_center, 0);
}

TEST(Trace, RandomPositionsRejectsZeroCount) {
  const GridMap g(6.0, 6.0, 0.6);
  Rng rng(1);
  EXPECT_THROW(random_positions(g, 0, rng), std::invalid_argument);
}

TEST(Trace, RandomGridSequenceDistinctAndInRange) {
  const GridMap g(6.0, 6.0, 0.6);
  Rng rng(3);
  const auto seq = random_grid_sequence(g, 30, rng);
  ASSERT_EQ(seq.size(), 30u);
  std::set<std::size_t> unique(seq.begin(), seq.end());
  EXPECT_EQ(unique.size(), 30u);
  for (std::size_t j : seq) EXPECT_LT(j, g.num_cells());
}

TEST(Trace, WaypointWalkStaysInsideAndMovesSmoothly) {
  const GridMap g(7.2, 4.8, 0.6);
  Rng rng(4);
  const double speed = 1.0, dt = 0.5;
  const auto walk = waypoint_walk(g, 100, speed, dt, rng);
  ASSERT_EQ(walk.size(), 100u);
  for (std::size_t i = 0; i < walk.size(); ++i) {
    EXPECT_GE(walk[i].x, 0.0);
    EXPECT_LE(walk[i].x, 7.2);
    EXPECT_GE(walk[i].y, 0.0);
    EXPECT_LE(walk[i].y, 4.8);
    if (i > 0) EXPECT_LE(distance(walk[i], walk[i - 1]), speed * dt + 1e-9);
  }
}

TEST(Trace, WaypointWalkRejectsBadParameters) {
  const GridMap g(6.0, 6.0, 0.6);
  Rng rng(5);
  EXPECT_THROW(waypoint_walk(g, 0, 1.0, 0.5, rng), std::invalid_argument);
  EXPECT_THROW(waypoint_walk(g, 10, 0.0, 0.5, rng), std::invalid_argument);
  EXPECT_THROW(waypoint_walk(g, 10, 1.0, 0.0, rng), std::invalid_argument);
}

TEST(Scenario, PaperRoomBundleIsConsistent) {
  const Scenario s = Scenario::paper_room(7);
  EXPECT_EQ(s.deployment().num_links(), 10u);
  EXPECT_EQ(s.channel().num_links(), 10u);
  EXPECT_EQ(&s.collector().deployment(), &s.deployment());
  EXPECT_EQ(&s.collector().channel(), &s.channel());
}

TEST(Scenario, SquareAreaBundle) {
  const Scenario s = Scenario::square_area(12.0, 7);
  EXPECT_EQ(s.deployment().num_links(), 20u);
  EXPECT_EQ(s.deployment().num_grids(), 400u);
}

TEST(Scenario, SameSeedSameChannel) {
  const Scenario a = Scenario::paper_room(5);
  const Scenario b = Scenario::paper_room(5);
  EXPECT_DOUBLE_EQ(a.channel().expected_rss(3, Point2{1.0, 1.0}, 20.0),
                   b.channel().expected_rss(3, Point2{1.0, 1.0}, 20.0));
}

TEST(Scenario, DifferentSeedDifferentDrift) {
  const Scenario a = Scenario::paper_room(5);
  const Scenario b = Scenario::paper_room(6);
  EXPECT_NE(a.channel().expected_rss(3, std::nullopt, 45.0),
            b.channel().expected_rss(3, std::nullopt, 45.0));
}

}  // namespace
}  // namespace tafloc
